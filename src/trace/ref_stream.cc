#include "trace/ref_stream.hh"

#include <algorithm>
#include <unordered_set>

namespace tlbpf
{

std::size_t
RefStream::nextBatch(MemRef *buf, std::size_t n)
{
    std::size_t filled = 0;
    while (filled < n && next(buf[filled]))
        ++filled;
    return filled;
}

VectorStream::VectorStream(std::vector<MemRef> refs)
    : _refs(std::move(refs))
{
}

bool
VectorStream::next(MemRef &ref)
{
    if (_pos >= _refs.size())
        return false;
    ref = _refs[_pos++];
    return true;
}

std::size_t
VectorStream::nextBatch(MemRef *buf, std::size_t n)
{
    std::size_t take = std::min(n, _refs.size() - _pos);
    std::copy_n(_refs.begin() + static_cast<std::ptrdiff_t>(_pos),
                take, buf);
    _pos += take;
    return take;
}

std::string
VectorStream::describe() const
{
    return "vector[" + std::to_string(_refs.size()) + "]";
}

std::vector<MemRef>
collect(RefStream &stream, std::size_t max_refs)
{
    std::vector<MemRef> out;
    MemRef ref;
    while (out.size() < max_refs && stream.next(ref))
        out.push_back(ref);
    return out;
}

std::uint64_t
distinctPages(RefStream &stream, std::uint64_t page_bytes)
{
    std::unordered_set<Vpn> pages;
    MemRef ref;
    while (stream.next(ref))
        pages.insert(ref.vpn(page_bytes));
    return pages.size();
}

} // namespace tlbpf
