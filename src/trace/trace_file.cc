#include "trace/trace_file.hh"

#include <cstring>
#include <stdexcept>

#include "util/bits.hh"
#include "util/logging.hh"

namespace tlbpf
{

namespace
{

constexpr char kMagic[4] = {'T', 'P', 'F', 'T'};
constexpr std::uint32_t kVersion = 1;

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::uint64_t count;
};

/**
 * The one header validator both the probe and the reader use:
 * "" when @p hdr is valid (@p read_ok says the fread succeeded),
 * otherwise a description.
 */
std::string
checkHeader(const std::string &path, const Header &hdr, bool read_ok)
{
    if (!read_ok)
        return "trace file '" + path + "' truncated header";
    if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0)
        return "trace file '" + path + "' has bad magic";
    if (hdr.version != kVersion)
        return "trace file '" + path + "' has unsupported version " +
               std::to_string(hdr.version);
    return "";
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : _path(path)
{
    _file = std::fopen(path.c_str(), "wb");
    if (!_file)
        tlbpf_fatal("cannot open trace file '", path, "' for writing");
    _open = true;
    Header hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.version = kVersion;
    hdr.count = 0; // patched in close()
    if (std::fwrite(&hdr, sizeof(hdr), 1, _file) != 1)
        tlbpf_fatal("cannot write trace header to '", path, "'");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::putVarint(std::uint64_t v)
{
    while (v >= 0x80) {
        std::fputc(static_cast<int>(v & 0x7f) | 0x80, _file);
        v >>= 7;
    }
    std::fputc(static_cast<int>(v), _file);
}

void
TraceWriter::write(const MemRef &ref)
{
    tlbpf_assert(_open, "write to closed TraceWriter");
    // Record: flags byte, then zigzag deltas of vaddr/pc and icount
    // delta.  Flag bit 0 = write access.
    std::uint8_t flags = ref.isWrite ? 1 : 0;
    std::fputc(flags, _file);
    putVarint(zigZagEncode(static_cast<std::int64_t>(ref.vaddr) -
                           static_cast<std::int64_t>(_prev.vaddr)));
    putVarint(zigZagEncode(static_cast<std::int64_t>(ref.pc) -
                           static_cast<std::int64_t>(_prev.pc)));
    putVarint(ref.icount - _prev.icount);
    _prev = ref;
    ++_count;
}

void
TraceWriter::close()
{
    if (!_open)
        return;
    Header hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.version = kVersion;
    hdr.count = _count;
    std::fseek(_file, 0, SEEK_SET);
    if (std::fwrite(&hdr, sizeof(hdr), 1, _file) != 1)
        tlbpf_fatal("cannot patch trace header in '", _path, "'");
    std::fclose(_file);
    _file = nullptr;
    _open = false;
}

TraceReader::TraceReader(const std::string &path, ErrorPolicy policy)
    : _path(path), _policy(policy)
{
    _file = std::fopen(path.c_str(), "rb");
    if (!_file)
        fail("cannot open trace file '" + path + "'");
    readHeader();
}

void
TraceReader::fail(const std::string &why)
{
    if (_policy == ErrorPolicy::Throw) {
        // The constructor may throw before the destructor can ever
        // run; release the handle here so a rejected trace does not
        // leak one fd per attempted cell.
        if (_file) {
            std::fclose(_file);
            _file = nullptr;
        }
        throw std::invalid_argument(why);
    }
    tlbpf_fatal(why);
}

TraceReader::~TraceReader()
{
    if (_file)
        std::fclose(_file);
}

void
TraceReader::readHeader()
{
    Header hdr{};
    bool read_ok = std::fread(&hdr, sizeof(hdr), 1, _file) == 1;
    std::string error = checkHeader(_path, hdr, read_ok);
    if (!error.empty())
        fail(error);
    _count = hdr.count;
}

bool
TraceReader::getVarint(std::uint64_t &v)
{
    v = 0;
    int shift = 0;
    while (true) {
        int byte = std::fgetc(_file);
        if (byte == EOF)
            return false;
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
        shift += 7;
        if (shift > 63)
            fail("trace file '" + _path + "' has malformed varint");
    }
}

bool
TraceReader::next(MemRef &ref)
{
    if (_readSoFar >= _count)
        return false;
    int flags = std::fgetc(_file);
    if (flags == EOF)
        fail("trace file '" + _path + "' truncated at record " +
             std::to_string(_readSoFar));
    std::uint64_t dv = 0;
    std::uint64_t dp = 0;
    std::uint64_t di = 0;
    if (!getVarint(dv) || !getVarint(dp) || !getVarint(di))
        fail("trace file '" + _path + "' truncated at record " +
             std::to_string(_readSoFar));
    ref.isWrite = (flags & 1) != 0;
    ref.vaddr = static_cast<Addr>(static_cast<std::int64_t>(_prev.vaddr) +
                                  zigZagDecode(dv));
    ref.pc = static_cast<Addr>(static_cast<std::int64_t>(_prev.pc) +
                               zigZagDecode(dp));
    ref.icount = _prev.icount + di;
    _prev = ref;
    ++_readSoFar;
    return true;
}

void
TraceReader::reset()
{
    std::fseek(_file, 0, SEEK_SET);
    readHeader();
    _readSoFar = 0;
    _prev = MemRef{};
}

std::string
TraceReader::describe() const
{
    return "trace(" + _path + ", " + std::to_string(_count) + ")";
}

std::string
probeTraceFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return "cannot open trace file '" + path + "'";
    Header hdr{};
    bool read_ok = std::fread(&hdr, sizeof(hdr), 1, file) == 1;
    std::fclose(file);
    return checkHeader(path, hdr, read_ok);
}

std::uint64_t
dumpTrace(RefStream &stream, const std::string &path)
{
    TraceWriter writer(path);
    MemRef ref;
    while (stream.next(ref))
        writer.write(ref);
    writer.close();
    return writer.written();
}

} // namespace tlbpf
