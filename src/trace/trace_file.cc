#include "trace/trace_file.hh"

#include <cstring>
#include <stdexcept>

#include "util/bits.hh"
#include "util/logging.hh"

namespace tlbpf
{

namespace
{

constexpr char kMagic[4] = {'T', 'P', 'F', 'T'};
constexpr std::uint32_t kVersion = 1;

// The header is serialized field-by-field as explicit little-endian
// bytes (matching the snapshot format), never as a raw struct image,
// so a trace written on any host decodes on any other.  Layout:
// bytes 0-3 magic "TPFT", 4-7 version (LE u32), 8-15 count (LE u64).

void
putLe32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putLe64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
getLe32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getLe64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

struct Header
{
    bool magicOk = false;
    std::uint32_t version = 0;
    std::uint64_t count = 0;
};

void
encodeHeader(std::uint8_t (&bytes)[kTraceHeaderBytes], std::uint64_t count)
{
    std::memcpy(bytes, kMagic, sizeof(kMagic));
    putLe32(bytes + 4, kVersion);
    putLe64(bytes + 8, count);
}

Header
decodeHeader(const std::uint8_t (&bytes)[kTraceHeaderBytes])
{
    Header hdr;
    hdr.magicOk = std::memcmp(bytes, kMagic, sizeof(kMagic)) == 0;
    hdr.version = getLe32(bytes + 4);
    hdr.count = getLe64(bytes + 8);
    return hdr;
}

/**
 * The one header validator both the probe and the reader use:
 * "" when @p hdr is valid (@p read_ok says the fread succeeded),
 * otherwise a description.
 */
std::string
checkHeader(const std::string &path, const Header &hdr, bool read_ok)
{
    if (!read_ok)
        return "trace file '" + path + "' truncated header";
    if (!hdr.magicOk)
        return "trace file '" + path + "' has bad magic";
    if (hdr.version != kVersion)
        return "trace file '" + path + "' has unsupported version " +
               std::to_string(hdr.version);
    return "";
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : _path(path)
{
    _file = std::fopen(path.c_str(), "wb");
    if (!_file)
        tlbpf_fatal("cannot open trace file '", path, "' for writing");
    _open = true;
    writeHeader(); // count patched in close()
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::writeHeader()
{
    std::uint8_t bytes[kTraceHeaderBytes];
    encodeHeader(bytes, _count);
    if (std::fwrite(bytes, sizeof(bytes), 1, _file) != 1)
        tlbpf_fatal("cannot write trace header to '", _path, "'");
}

void
TraceWriter::putByte(int byte)
{
    if (std::fputc(byte, _file) == EOF)
        tlbpf_fatal("write error on trace file '", _path, "'");
}

void
TraceWriter::putVarint(std::uint64_t v)
{
    while (v >= 0x80) {
        putByte(static_cast<int>(v & 0x7f) | 0x80);
        v >>= 7;
    }
    putByte(static_cast<int>(v));
}

void
TraceWriter::write(const MemRef &ref)
{
    tlbpf_assert(_open, "write to closed TraceWriter");
    // Record: flags byte, then zigzag deltas of vaddr/pc and icount
    // delta.  Flag bit 0 = write access.
    std::uint8_t flags = ref.isWrite ? 1 : 0;
    putByte(flags);
    putVarint(zigZagEncode(static_cast<std::int64_t>(ref.vaddr) -
                           static_cast<std::int64_t>(_prev.vaddr)));
    putVarint(zigZagEncode(static_cast<std::int64_t>(ref.pc) -
                           static_cast<std::int64_t>(_prev.pc)));
    putVarint(ref.icount - _prev.icount);
    _prev = ref;
    ++_count;
}

void
TraceWriter::close()
{
    if (!_open)
        return;
    // stdio buffers writes, so a disk-full condition may only surface
    // at flush time — flush explicitly before patching the header so
    // a truncated body cannot end up behind a valid record count.
    if (std::fflush(_file) != 0)
        tlbpf_fatal("write error on trace file '", _path, "'");
    if (std::fseek(_file, 0, SEEK_SET) != 0)
        tlbpf_fatal("cannot seek in trace file '", _path, "'");
    writeHeader();
    std::FILE *file = _file;
    _file = nullptr;
    _open = false;
    if (std::fclose(file) != 0)
        tlbpf_fatal("write error closing trace file '", _path, "'");
}

TraceReader::TraceReader(const std::string &path, ErrorPolicy policy)
    : _path(path), _policy(policy), _buf(1 << 16)
{
    _file = std::fopen(path.c_str(), "rb");
    if (!_file)
        fail("cannot open trace file '" + path + "'");
    readHeader();
}

void
TraceReader::fail(const std::string &why)
{
    if (_policy == ErrorPolicy::Throw) {
        // The constructor may throw before the destructor can ever
        // run; release the handle here so a rejected trace does not
        // leak one fd per attempted cell.
        if (_file) {
            std::fclose(_file);
            _file = nullptr;
        }
        throw std::invalid_argument(why);
    }
    tlbpf_fatal(why);
}

TraceReader::~TraceReader()
{
    if (_file)
        std::fclose(_file);
}

void
TraceReader::readHeader()
{
    // Called with the decode buffer empty (constructor and reset()),
    // so reading the file directly here cannot skip buffered bytes.
    std::uint8_t bytes[kTraceHeaderBytes];
    bool read_ok = std::fread(bytes, sizeof(bytes), 1, _file) == 1;
    Header hdr = read_ok ? decodeHeader(bytes) : Header{};
    std::string error = checkHeader(_path, hdr, read_ok);
    if (!error.empty())
        fail(error);
    _count = hdr.count;
}

int
TraceReader::getByte()
{
    if (_bufPos == _bufLen) {
        _bufLen = std::fread(_buf.data(), 1, _buf.size(), _file);
        _bufPos = 0;
        if (_bufLen == 0)
            return EOF;
    }
    return _buf[_bufPos++];
}

bool
TraceReader::getVarint(std::uint64_t &v)
{
    v = 0;
    int shift = 0;
    while (true) {
        int byte = getByte();
        if (byte == EOF)
            return false;
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
        shift += 7;
        if (shift > 63)
            fail("trace file '" + _path + "' has malformed varint");
    }
}

bool
TraceReader::next(MemRef &ref)
{
    if (_readSoFar >= _count)
        return false;
    int flags = getByte();
    if (flags == EOF)
        fail("trace file '" + _path + "' truncated at record " +
             std::to_string(_readSoFar));
    std::uint64_t dv = 0;
    std::uint64_t dp = 0;
    std::uint64_t di = 0;
    if (!getVarint(dv) || !getVarint(dp) || !getVarint(di))
        fail("trace file '" + _path + "' truncated at record " +
             std::to_string(_readSoFar));
    ref.isWrite = (flags & 1) != 0;
    ref.vaddr = static_cast<Addr>(static_cast<std::int64_t>(_prev.vaddr) +
                                  zigZagDecode(dv));
    ref.pc = static_cast<Addr>(static_cast<std::int64_t>(_prev.pc) +
                               zigZagDecode(dp));
    ref.icount = _prev.icount + di;
    _prev = ref;
    ++_readSoFar;
    return true;
}

std::size_t
TraceReader::nextBatch(MemRef *buf, std::size_t n)
{
    // Qualified call so the decode loop inlines instead of dispatching
    // through the vtable once per record.
    std::size_t filled = 0;
    while (filled < n && TraceReader::next(buf[filled]))
        ++filled;
    return filled;
}

void
TraceReader::reset()
{
    std::fseek(_file, 0, SEEK_SET);
    _bufPos = 0;
    _bufLen = 0;
    readHeader();
    _readSoFar = 0;
    _prev = MemRef{};
}

std::string
TraceReader::describe() const
{
    return "trace(" + _path + ", " + std::to_string(_count) + ")";
}

std::string
probeTraceFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return "cannot open trace file '" + path + "'";
    std::uint8_t bytes[kTraceHeaderBytes];
    bool read_ok = std::fread(bytes, sizeof(bytes), 1, file) == 1;
    std::fclose(file);
    Header hdr = read_ok ? decodeHeader(bytes) : Header{};
    return checkHeader(path, hdr, read_ok);
}

std::uint64_t
dumpTrace(RefStream &stream, const std::string &path)
{
    TraceWriter writer(path);
    MemRef ref;
    while (stream.next(ref))
        writer.write(ref);
    writer.close();
    return writer.written();
}

} // namespace tlbpf
