/**
 * @file
 * Memory-reference records and the pull-based stream abstraction that
 * feeds the simulators.
 *
 * The paper drives its evaluation with the data-reference streams of 56
 * applications (SimpleScalar sim-cache for SPEC, Shade for the rest).
 * Here a reference stream is anything implementing RefStream: synthetic
 * workload generators, in-memory vectors, or binary trace files.
 */

#ifndef TLBPF_TRACE_REF_STREAM_HH
#define TLBPF_TRACE_REF_STREAM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tlbpf
{

/** Virtual address type. */
using Addr = std::uint64_t;

/** Virtual page number type. */
using Vpn = std::uint64_t;

/** Default page size used throughout the paper's evaluation. */
constexpr std::uint64_t kDefaultPageBytes = 4096;

/** One data memory reference. */
struct MemRef
{
    Addr vaddr = 0;      ///< virtual byte address referenced
    Addr pc = 0;         ///< program counter of the access instruction
    bool isWrite = false;///< load vs store
    /**
     * Dynamic instruction count at this reference; lets the timing
     * model convert a reference stream back into instruction counts.
     */
    std::uint64_t icount = 0;

    /** Virtual page number under the given page size. */
    Vpn
    vpn(std::uint64_t page_bytes = kDefaultPageBytes) const
    {
        return vaddr / page_bytes;
    }

    bool operator==(const MemRef &other) const = default;
};

/**
 * Pull-based reference stream.
 *
 * next() fills @p ref and returns true, or returns false at end of
 * stream.  Streams are single-pass; use reset() to rewind when the
 * concrete stream supports it (all synthetic generators do).
 *
 * nextBatch() is the bulk form the hot simulate loop uses: it fills a
 * caller-owned flat buffer so the per-reference cost is one array
 * iteration, not one virtual call.  The two forms are interchangeable
 * mid-stream — a batch picks up exactly where next() left off and
 * vice versa.
 */
class RefStream
{
  public:
    virtual ~RefStream() = default;

    /** Produce the next reference; false at end of stream. */
    virtual bool next(MemRef &ref) = 0;

    /**
     * Fill up to @p n entries of @p buf; returns how many were
     * produced, 0 at end of stream.  Semantically identical to
     * calling next() @p n times (the base implementation does exactly
     * that); concrete streams override it with devirtualised
     * flat-buffer fills.  A short count (< @p n) is returned only at
     * end of stream, so callers may loop on `nextBatch(...) > 0`.
     */
    virtual std::size_t nextBatch(MemRef *buf, std::size_t n);

    /** Rewind to the beginning (regenerates identically). */
    virtual void reset() = 0;

    /** Short human-readable description for logs. */
    virtual std::string describe() const = 0;
};

/** Stream over an in-memory vector of references. */
class VectorStream : public RefStream
{
  public:
    explicit VectorStream(std::vector<MemRef> refs);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *buf, std::size_t n) override;
    void reset() override { _pos = 0; }
    std::string describe() const override;

    std::size_t size() const { return _refs.size(); }

  private:
    std::vector<MemRef> _refs;
    std::size_t _pos = 0;
};

/** Drain a stream into a vector (testing convenience). */
std::vector<MemRef> collect(RefStream &stream,
                            std::size_t max_refs = SIZE_MAX);

/** Count the distinct pages touched by a stream (consumes it). */
std::uint64_t distinctPages(RefStream &stream,
                            std::uint64_t page_bytes = kDefaultPageBytes);

} // namespace tlbpf

#endif // TLBPF_TRACE_REF_STREAM_HH
