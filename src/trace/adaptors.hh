/**
 * @file
 * Stream adaptors: take/skip prefixes (the paper fast-forwards 2B
 * instructions and simulates 1B) and deterministic interleaving of
 * multiple streams.
 */

#ifndef TLBPF_TRACE_ADAPTORS_HH
#define TLBPF_TRACE_ADAPTORS_HH

#include <memory>
#include <vector>

#include "trace/ref_stream.hh"

namespace tlbpf
{

/** Yields at most @p limit references from the underlying stream. */
class TakeStream : public RefStream
{
  public:
    TakeStream(std::unique_ptr<RefStream> inner, std::uint64_t limit);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string describe() const override;

  private:
    std::unique_ptr<RefStream> _inner;
    std::uint64_t _limit;
    std::uint64_t _taken = 0;
};

/** Discards the first @p count references (fast-forward). */
class SkipStream : public RefStream
{
  public:
    SkipStream(std::unique_ptr<RefStream> inner, std::uint64_t count);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string describe() const override;

  private:
    void ensureSkipped();

    std::unique_ptr<RefStream> _inner;
    std::uint64_t _count;
    bool _skipped = false;
};

/**
 * Round-robin interleaving of several streams with per-stream weights
 * (stream i contributes weight[i] consecutive references per round).
 * Ends when every inner stream is exhausted.
 */
class InterleaveStream : public RefStream
{
  public:
    InterleaveStream(std::vector<std::unique_ptr<RefStream>> inners,
                     std::vector<std::uint32_t> weights);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string describe() const override;

  private:
    void advanceCursor();

    std::vector<std::unique_ptr<RefStream>> _inners;
    std::vector<std::uint32_t> _weights;
    std::vector<bool> _done;
    std::size_t _cursor = 0;
    std::uint32_t _emitted = 0;
};

/** Concatenates streams back to back. */
class ConcatStream : public RefStream
{
  public:
    explicit ConcatStream(std::vector<std::unique_ptr<RefStream>> inners);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string describe() const override;

  private:
    std::vector<std::unique_ptr<RefStream>> _inners;
    std::size_t _cursor = 0;
};

} // namespace tlbpf

#endif // TLBPF_TRACE_ADAPTORS_HH
