#include "trace/adaptors.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tlbpf
{

TakeStream::TakeStream(std::unique_ptr<RefStream> inner,
                       std::uint64_t limit)
    : _inner(std::move(inner)), _limit(limit)
{
    tlbpf_assert(_inner != nullptr, "TakeStream needs a stream");
}

bool
TakeStream::next(MemRef &ref)
{
    if (_taken >= _limit)
        return false;
    if (!_inner->next(ref))
        return false;
    ++_taken;
    return true;
}

std::size_t
TakeStream::nextBatch(MemRef *buf, std::size_t n)
{
    std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(n, _limit - _taken));
    std::size_t got = _inner->nextBatch(buf, want);
    _taken += got;
    return got;
}

void
TakeStream::reset()
{
    _inner->reset();
    _taken = 0;
}

std::string
TakeStream::describe() const
{
    return "take(" + std::to_string(_limit) + ", " + _inner->describe() +
           ")";
}

SkipStream::SkipStream(std::unique_ptr<RefStream> inner,
                       std::uint64_t count)
    : _inner(std::move(inner)), _count(count)
{
    tlbpf_assert(_inner != nullptr, "SkipStream needs a stream");
}

void
SkipStream::ensureSkipped()
{
    if (_skipped)
        return;
    MemRef scratch[256];
    std::uint64_t remaining = _count;
    while (remaining > 0) {
        std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, std::size(scratch)));
        std::size_t got = _inner->nextBatch(scratch, want);
        remaining -= got;
        if (got < want)
            break; // inner exhausted inside the skip window
    }
    _skipped = true;
}

bool
SkipStream::next(MemRef &ref)
{
    ensureSkipped();
    return _inner->next(ref);
}

std::size_t
SkipStream::nextBatch(MemRef *buf, std::size_t n)
{
    ensureSkipped();
    return _inner->nextBatch(buf, n);
}

void
SkipStream::reset()
{
    _inner->reset();
    _skipped = false;
}

std::string
SkipStream::describe() const
{
    return "skip(" + std::to_string(_count) + ", " + _inner->describe() +
           ")";
}

InterleaveStream::InterleaveStream(
    std::vector<std::unique_ptr<RefStream>> inners,
    std::vector<std::uint32_t> weights)
    : _inners(std::move(inners)), _weights(std::move(weights))
{
    tlbpf_assert(!_inners.empty(), "InterleaveStream needs streams");
    tlbpf_assert(_inners.size() == _weights.size(),
                 "one weight per stream required");
    for (auto w : _weights)
        tlbpf_assert(w > 0, "weights must be positive");
    _done.assign(_inners.size(), false);
}

void
InterleaveStream::advanceCursor()
{
    _cursor = (_cursor + 1) % _inners.size();
    _emitted = 0;
}

bool
InterleaveStream::next(MemRef &ref)
{
    for (std::size_t attempts = 0; attempts < _inners.size();) {
        if (_done[_cursor]) {
            advanceCursor();
            ++attempts;
            continue;
        }
        if (_emitted >= _weights[_cursor]) {
            advanceCursor();
            // A full weight quantum was emitted; this is rotation, not
            // failure, so the exhaustion counter restarts.
            attempts = 0;
            continue;
        }
        if (_inners[_cursor]->next(ref)) {
            ++_emitted;
            return true;
        }
        _done[_cursor] = true;
        advanceCursor();
        ++attempts;
    }
    return false;
}

std::size_t
InterleaveStream::nextBatch(MemRef *buf, std::size_t n)
{
    // Same rotation logic as next(), but each visit to a live stream
    // pulls a whole weight quantum (or what fits in @p buf) in one
    // inner nextBatch call.
    std::size_t filled = 0;
    std::size_t attempts = 0;
    while (filled < n && attempts < _inners.size()) {
        if (_done[_cursor]) {
            advanceCursor();
            ++attempts;
            continue;
        }
        if (_emitted >= _weights[_cursor]) {
            advanceCursor();
            attempts = 0;
            continue;
        }
        std::size_t want = std::min<std::size_t>(
            n - filled, _weights[_cursor] - _emitted);
        std::size_t got = _inners[_cursor]->nextBatch(buf + filled, want);
        filled += got;
        _emitted += static_cast<std::uint32_t>(got);
        if (got < want) {
            _done[_cursor] = true;
            advanceCursor();
            ++attempts;
        } else {
            attempts = 0;
        }
    }
    return filled;
}

void
InterleaveStream::reset()
{
    for (auto &inner : _inners)
        inner->reset();
    _done.assign(_inners.size(), false);
    _cursor = 0;
    _emitted = 0;
}

std::string
InterleaveStream::describe() const
{
    std::string out = "interleave(";
    for (std::size_t i = 0; i < _inners.size(); ++i) {
        if (i)
            out += ", ";
        out += _inners[i]->describe();
    }
    return out + ")";
}

ConcatStream::ConcatStream(std::vector<std::unique_ptr<RefStream>> inners)
    : _inners(std::move(inners))
{
    tlbpf_assert(!_inners.empty(), "ConcatStream needs streams");
}

bool
ConcatStream::next(MemRef &ref)
{
    while (_cursor < _inners.size()) {
        if (_inners[_cursor]->next(ref))
            return true;
        ++_cursor;
    }
    return false;
}

std::size_t
ConcatStream::nextBatch(MemRef *buf, std::size_t n)
{
    std::size_t filled = 0;
    while (filled < n && _cursor < _inners.size()) {
        filled += _inners[_cursor]->nextBatch(buf + filled, n - filled);
        if (filled < n)
            ++_cursor; // current inner is exhausted
    }
    return filled;
}

void
ConcatStream::reset()
{
    for (auto &inner : _inners)
        inner->reset();
    _cursor = 0;
}

std::string
ConcatStream::describe() const
{
    std::string out = "concat(";
    for (std::size_t i = 0; i < _inners.size(); ++i) {
        if (i)
            out += ", ";
        out += _inners[i]->describe();
    }
    return out + ")";
}

} // namespace tlbpf
