/**
 * @file
 * Binary trace file format so reference streams can be captured once
 * and replayed (the Etch-traces analogue in this reproduction).
 *
 * Format: 16-byte header (magic "TPFT", version, page size, count)
 * followed by delta-encoded varint records.  Delta/varint encoding
 * keeps strided traces compact (~2-4 bytes per reference).
 */

#ifndef TLBPF_TRACE_TRACE_FILE_HH
#define TLBPF_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/ref_stream.hh"

namespace tlbpf
{

/** On-disk size of the trace header (magic, version, record count). */
constexpr std::size_t kTraceHeaderBytes = 16;

/**
 * Writes a reference stream to a binary trace file.
 *
 * The header is serialized field-by-field as explicit little-endian
 * bytes (never a raw struct image), so traces written on any host
 * decode on any other.  Every write is error-checked: a full disk or
 * I/O error is a fatal exit naming the path, never a silently
 * truncated trace that happens to carry a valid header.
 */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append a record. */
    void write(const MemRef &ref);

    /** Finalize the header and close; safe to call twice. */
    void close();

    std::uint64_t written() const { return _count; }

  private:
    void putByte(int byte);
    void putVarint(std::uint64_t v);
    void writeHeader();

    std::FILE *_file = nullptr;
    std::string _path;
    std::uint64_t _count = 0;
    MemRef _prev;
    bool _open = false;
};

/** Replays a binary trace file as a RefStream. */
class TraceReader : public RefStream
{
  public:
    /**
     * What to do about a missing/corrupt file: Fatal exits the
     * process (the historical behaviour, right for examples and
     * direct tools); Throw raises std::invalid_argument so engine
     * worker threads surface a bad trace as a batch failure instead
     * of exiting mid-pool.
     */
    enum class ErrorPolicy
    {
        Fatal,
        Throw
    };

    /** Open @p path; fatal or throwing per @p policy. */
    explicit TraceReader(const std::string &path,
                         ErrorPolicy policy = ErrorPolicy::Fatal);
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string describe() const override;

    std::uint64_t count() const { return _count; }

  private:
    int getByte();
    bool getVarint(std::uint64_t &v);
    void readHeader();
    [[noreturn]] void fail(const std::string &why);

    std::FILE *_file = nullptr;
    std::string _path;
    ErrorPolicy _policy = ErrorPolicy::Fatal;
    std::uint64_t _count = 0;
    std::uint64_t _readSoFar = 0;
    MemRef _prev;
    // Decode buffer: stdio's fgetc locks the stream per byte, which
    // dominates replay cost; bulk fread into this buffer instead.
    std::vector<std::uint8_t> _buf;
    std::size_t _bufPos = 0;
    std::size_t _bufLen = 0;
};

/** Copy an entire stream into a trace file; returns records written. */
std::uint64_t dumpTrace(RefStream &stream, const std::string &path);

/**
 * Non-fatal validity probe: "" when @p path opens and carries a valid
 * trace header, otherwise a description of what is wrong.  For tools
 * and tests that want to check a file without constructing a reader;
 * the sweep engine itself uses TraceReader's ErrorPolicy::Throw,
 * which reports the same conditions as std::invalid_argument.
 */
std::string probeTraceFile(const std::string &path);

} // namespace tlbpf

#endif // TLBPF_TRACE_TRACE_FILE_HH
