#include "tlb/prefetch_buffer.hh"

#include <iterator>

#include "util/logging.hh"

namespace tlbpf
{

PrefetchBuffer::PrefetchBuffer(std::uint32_t entries)
    : _capacity(entries)
{
    if (entries == 0)
        tlbpf_fatal("prefetch buffer needs at least one entry");
}

bool
PrefetchBuffer::hitAndPromote(Vpn vpn, Tick &ready_at)
{
    auto it = _index.find(vpn);
    if (it == _index.end())
        return false;
    ready_at = it->second->readyAt;
    _lru.erase(it->second);
    _index.erase(it);
    ++_hits;
    return true;
}

bool
PrefetchBuffer::contains(Vpn vpn) const
{
    return _index.count(vpn) > 0;
}

void
PrefetchBuffer::insert(Vpn vpn, Tick ready_at)
{
    auto it = _index.find(vpn);
    if (it != _index.end()) {
        // Refresh: move to MRU and keep the earlier ready time (the
        // data is already on its way).
        it->second->readyAt = std::min(it->second->readyAt, ready_at);
        _lru.splice(_lru.begin(), _lru, it->second);
        return;
    }
    if (_lru.size() >= _capacity) {
        const Node &victim = _lru.back();
        _index.erase(victim.vpn);
        _lru.pop_back();
        ++_evictedUnused;
    }
    _lru.push_front(Node{vpn, ready_at});
    _index[vpn] = _lru.begin();
    ++_inserts;
}

void
PrefetchBuffer::flush()
{
    _lru.clear();
    _index.clear();
}

void
PrefetchBuffer::snapshotState(SnapshotWriter &out) const
{
    out.u32(_capacity);
    out.u64(_inserts);
    out.u64(_hits);
    out.u64(_evictedUnused);
    out.u64(_lru.size());
    for (const Node &node : _lru) { // front (MRU) first
        out.u64(node.vpn);
        out.u64(node.readyAt);
    }
}

void
PrefetchBuffer::restoreState(SnapshotReader &in)
{
    std::uint32_t capacity = in.u32();
    if (capacity != _capacity)
        SnapshotReader::fail(
            "prefetch buffer capacity " + std::to_string(capacity) +
            ", expected " + std::to_string(_capacity));
    _inserts = in.u64();
    _hits = in.u64();
    _evictedUnused = in.u64();
    std::uint64_t count = in.u64();
    if (count > _capacity)
        SnapshotReader::fail("prefetch buffer overfull in checkpoint");
    _lru.clear();
    _index.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        Vpn vpn = in.u64();
        Tick ready_at = in.u64();
        _lru.push_back(Node{vpn, ready_at});
        if (!_index.emplace(vpn, std::prev(_lru.end())).second)
            SnapshotReader::fail(
                "duplicate prefetch buffer entry in checkpoint");
    }
}

} // namespace tlbpf
