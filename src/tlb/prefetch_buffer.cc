#include "tlb/prefetch_buffer.hh"

#include "util/logging.hh"

namespace tlbpf
{

PrefetchBuffer::PrefetchBuffer(std::uint32_t entries)
    : _capacity(entries)
{
    if (entries == 0)
        tlbpf_fatal("prefetch buffer needs at least one entry");
}

bool
PrefetchBuffer::hitAndPromote(Vpn vpn, Tick &ready_at)
{
    auto it = _index.find(vpn);
    if (it == _index.end())
        return false;
    ready_at = it->second->readyAt;
    _lru.erase(it->second);
    _index.erase(it);
    ++_hits;
    return true;
}

bool
PrefetchBuffer::contains(Vpn vpn) const
{
    return _index.count(vpn) > 0;
}

void
PrefetchBuffer::insert(Vpn vpn, Tick ready_at)
{
    auto it = _index.find(vpn);
    if (it != _index.end()) {
        // Refresh: move to MRU and keep the earlier ready time (the
        // data is already on its way).
        it->second->readyAt = std::min(it->second->readyAt, ready_at);
        _lru.splice(_lru.begin(), _lru, it->second);
        return;
    }
    if (_lru.size() >= _capacity) {
        const Node &victim = _lru.back();
        _index.erase(victim.vpn);
        _lru.pop_back();
        ++_evictedUnused;
    }
    _lru.push_front(Node{vpn, ready_at});
    _index[vpn] = _lru.begin();
    ++_inserts;
}

void
PrefetchBuffer::flush()
{
    _lru.clear();
    _index.clear();
}

} // namespace tlbpf
