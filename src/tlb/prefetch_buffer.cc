#include "tlb/prefetch_buffer.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tlbpf
{

PrefetchBuffer::PrefetchBuffer(std::uint32_t entries)
    : _capacity(entries)
{
    if (entries == 0)
        tlbpf_fatal("prefetch buffer needs at least one entry");
    _nodes.reserve(entries);
}

bool
PrefetchBuffer::hitAndPromote(Vpn vpn, Tick &ready_at)
{
    for (std::size_t i = 0; i < _nodes.size(); ++i) {
        if (_nodes[i].vpn == vpn) {
            ready_at = _nodes[i].readyAt;
            _nodes.erase(_nodes.begin() +
                         static_cast<std::ptrdiff_t>(i));
            ++_hits;
            return true;
        }
    }
    return false;
}

bool
PrefetchBuffer::contains(Vpn vpn) const
{
    for (const Node &node : _nodes)
        if (node.vpn == vpn)
            return true;
    return false;
}

void
PrefetchBuffer::insert(Vpn vpn, Tick ready_at)
{
    for (std::size_t i = 0; i < _nodes.size(); ++i) {
        if (_nodes[i].vpn == vpn) {
            // Refresh: move to MRU and keep the earlier ready time (the
            // data is already on its way).
            Node node = _nodes[i];
            node.readyAt = std::min(node.readyAt, ready_at);
            _nodes.erase(_nodes.begin() +
                         static_cast<std::ptrdiff_t>(i));
            _nodes.insert(_nodes.begin(), node);
            return;
        }
    }
    if (_nodes.size() >= _capacity) {
        _nodes.pop_back();
        ++_evictedUnused;
    }
    _nodes.insert(_nodes.begin(), Node{vpn, ready_at});
    ++_inserts;
}

void
PrefetchBuffer::flush()
{
    _nodes.clear();
}

void
PrefetchBuffer::snapshotState(SnapshotWriter &out) const
{
    out.u32(_capacity);
    out.u64(_inserts);
    out.u64(_hits);
    out.u64(_evictedUnused);
    out.u64(_nodes.size());
    for (const Node &node : _nodes) { // front (MRU) first
        out.u64(node.vpn);
        out.u64(node.readyAt);
    }
}

void
PrefetchBuffer::restoreState(SnapshotReader &in)
{
    std::uint32_t capacity = in.u32();
    if (capacity != _capacity)
        SnapshotReader::fail(
            "prefetch buffer capacity " + std::to_string(capacity) +
            ", expected " + std::to_string(_capacity));
    _inserts = in.u64();
    _hits = in.u64();
    _evictedUnused = in.u64();
    std::uint64_t count = in.u64();
    if (count > _capacity)
        SnapshotReader::fail("prefetch buffer overfull in checkpoint");
    _nodes.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        Vpn vpn = in.u64();
        Tick ready_at = in.u64();
        if (contains(vpn))
            SnapshotReader::fail(
                "duplicate prefetch buffer entry in checkpoint");
        _nodes.push_back(Node{vpn, ready_at});
    }
}

} // namespace tlbpf
