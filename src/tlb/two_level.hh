/**
 * @file
 * Two-level d-TLB hierarchy.
 *
 * The paper lists multilevel TLB hierarchies among the hardware
 * approaches to TLB performance (Section 1) and evaluates prefetching
 * at a single level; this substrate lets the benches explore where a
 * prefetcher should sit in a two-level organisation.  The L2 is
 * inclusive of the L1: an L1 victim remains in the L2, an L2 victim is
 * back-invalidated from the L1.
 */

#ifndef TLBPF_TLB_TWO_LEVEL_HH
#define TLBPF_TLB_TWO_LEVEL_HH

#include <optional>

#include "tlb/tlb.hh"

namespace tlbpf
{

/** Outcome of a two-level lookup. */
enum class TlbLevelHit
{
    L1,  ///< hit in the first level
    L2,  ///< missed L1, hit L2 (entry promoted to L1)
    Miss ///< missed both levels
};

/** Inclusive two-level TLB. */
class TwoLevelTlb
{
  public:
    TwoLevelTlb(const TlbConfig &l1, const TlbConfig &l2);

    /**
     * Probe both levels, promoting on an L2 hit.
     * @return where the translation was found.
     */
    TlbLevelHit access(Vpn vpn);

    /**
     * Install a missing translation in both levels.
     * @return the page evicted from the L2 (the hierarchy's true
     *         eviction, which RP's stack should observe), if any.
     */
    std::optional<Vpn> insert(Vpn vpn);

    /** Resident in either level, without recency updates. */
    bool contains(Vpn vpn) const;

    void flush();

    const Tlb &l1() const { return _l1; }
    const Tlb &l2() const { return _l2; }

    std::uint64_t l1Misses() const { return _l1Misses; }
    std::uint64_t l2Misses() const { return _l2Misses; }
    std::uint64_t accesses() const { return _accesses; }

  private:
    /** Move @p vpn into the L1, handling the L1 victim (stays in L2). */
    void promote(Vpn vpn);

    Tlb _l1;
    Tlb _l2;
    std::uint64_t _accesses = 0;
    std::uint64_t _l1Misses = 0;
    std::uint64_t _l2Misses = 0;
};

} // namespace tlbpf

#endif // TLBPF_TLB_TWO_LEVEL_HH
