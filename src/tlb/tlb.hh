/**
 * @file
 * Set-associative / fully-associative data TLB with true-LRU
 * replacement, matching the configurations evaluated in the paper
 * (64/128/256 entries; 2-way, 4-way and fully associative).
 */

#ifndef TLBPF_TLB_TLB_HH
#define TLBPF_TLB_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/ref_stream.hh"
#include "util/snapshot.hh"

namespace tlbpf
{

/** TLB geometry. */
struct TlbConfig
{
    std::uint32_t entries = 128; ///< total entries
    /** Ways per set; 0 means fully associative. */
    std::uint32_t assoc = 0;

    /** Number of sets implied by the geometry. */
    std::uint32_t
    numSets() const
    {
        return assoc == 0 ? 1 : entries / assoc;
    }

    bool operator==(const TlbConfig &other) const = default;
};

/**
 * The TLB proper.  Tracks only which translations are resident — the
 * translation payload lives in the page table.
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /**
     * Probe for @p vpn; updates recency on a hit.
     * @return true on hit.
     */
    bool access(Vpn vpn);

    /** Probe without touching replacement state. */
    bool contains(Vpn vpn) const;

    /**
     * Install @p vpn, evicting the set's LRU victim if full.
     * @return the evicted VPN, or std::nullopt if a free slot existed.
     *
     * Installing a VPN that is already resident is a caller bug.
     */
    std::optional<Vpn> insert(Vpn vpn);

    /**
     * Drop one entry if resident (back-invalidation from an outer
     * level).
     * @return true if the entry was present.
     */
    bool invalidate(Vpn vpn);

    /** Drop every entry (context-switch flush). */
    void flush();

    const TlbConfig &config() const { return _config; }
    std::uint32_t residentCount() const { return _resident; }

    /** Serialize entries (set order) and the recency clock. */
    void snapshotState(SnapshotWriter &out) const;

    /**
     * Restore state written by snapshotState() into a TLB of the same
     * geometry; throws std::invalid_argument on a mismatch.
     */
    void restoreState(SnapshotReader &in);

  private:
    struct Entry
    {
        Vpn vpn = 0;
        std::uint64_t lastUse = 0;
        /** Intrusive per-set recency-list links (slot indices). */
        std::uint32_t lruPrev = UINT32_MAX;
        std::uint32_t lruNext = UINT32_MAX;
        bool valid = false;
    };

    /** Recency list endpoints and fill level of one set. */
    struct SetLru
    {
        std::uint32_t head = UINT32_MAX; ///< most recently used
        std::uint32_t tail = UINT32_MAX; ///< LRU victim candidate
        std::uint32_t resident = 0;
    };

    std::size_t setIndex(Vpn vpn) const;
    Entry *findEntry(Vpn vpn);
    const Entry *findEntry(Vpn vpn) const;

    void indexInsert(Vpn vpn, std::uint32_t slot);
    void indexErase(Vpn vpn);
    void rebuildIndex();

    void lruUnlink(std::uint32_t idx);
    void lruPushFront(std::uint32_t idx);
    void rebuildLru();

    TlbConfig _config;
    std::uint32_t _ways;
    std::vector<Entry> _entries; // sets * ways, row-major by set
    std::uint64_t _clock = 0;
    std::uint32_t _resident = 0;
    /**
     * Open-addressing vpn -> entry-slot index (linear probing,
     * backward-shift deletion), used instead of the per-set linear
     * scan when sets are wide (the paper's fully-associative default
     * is a 128-entry scan per reference otherwise).  Pure lookup
     * acceleration: _entries stays authoritative, so replacement
     * semantics and the snapshot byte format are unchanged.  Empty
     * when the geometry's sets are narrow enough to scan.
     */
    std::vector<std::uint32_t> _index;
    /**
     * Per-set recency lists threaded through the entries, kept in the
     * same order as the lastUse clocks, so eviction picks the list
     * tail instead of scanning every way for the minimum clock (the
     * fully-associative default would scan 128 ways per miss).  Like
     * _index, pure acceleration: lastUse stays authoritative and is
     * what the snapshot serializes, so the byte format is unchanged.
     * Empty for narrow sets, where the scan is cheaper than the
     * bookkeeping.
     */
    std::vector<SetLru> _lru;
    /**
     * Slot of the most recent hit or fill: consecutive references to
     * the same page short-circuit the probe entirely.  The cached
     * entry is by construction at the head of its set's recency list,
     * so only its use clock needs touching.
     */
    std::uint32_t _lastHit = UINT32_MAX;
};

} // namespace tlbpf

#endif // TLBPF_TLB_TLB_HH
