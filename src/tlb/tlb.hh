/**
 * @file
 * Set-associative / fully-associative data TLB with true-LRU
 * replacement, matching the configurations evaluated in the paper
 * (64/128/256 entries; 2-way, 4-way and fully associative).
 */

#ifndef TLBPF_TLB_TLB_HH
#define TLBPF_TLB_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/ref_stream.hh"
#include "util/snapshot.hh"

namespace tlbpf
{

/** TLB geometry. */
struct TlbConfig
{
    std::uint32_t entries = 128; ///< total entries
    /** Ways per set; 0 means fully associative. */
    std::uint32_t assoc = 0;

    /** Number of sets implied by the geometry. */
    std::uint32_t
    numSets() const
    {
        return assoc == 0 ? 1 : entries / assoc;
    }
};

/**
 * The TLB proper.  Tracks only which translations are resident — the
 * translation payload lives in the page table.
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /**
     * Probe for @p vpn; updates recency on a hit.
     * @return true on hit.
     */
    bool access(Vpn vpn);

    /** Probe without touching replacement state. */
    bool contains(Vpn vpn) const;

    /**
     * Install @p vpn, evicting the set's LRU victim if full.
     * @return the evicted VPN, or std::nullopt if a free slot existed.
     *
     * Installing a VPN that is already resident is a caller bug.
     */
    std::optional<Vpn> insert(Vpn vpn);

    /**
     * Drop one entry if resident (back-invalidation from an outer
     * level).
     * @return true if the entry was present.
     */
    bool invalidate(Vpn vpn);

    /** Drop every entry (context-switch flush). */
    void flush();

    const TlbConfig &config() const { return _config; }
    std::uint32_t residentCount() const { return _resident; }

    /** Serialize entries (set order) and the recency clock. */
    void snapshotState(SnapshotWriter &out) const;

    /**
     * Restore state written by snapshotState() into a TLB of the same
     * geometry; throws std::invalid_argument on a mismatch.
     */
    void restoreState(SnapshotReader &in);

  private:
    struct Entry
    {
        Vpn vpn = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::size_t setIndex(Vpn vpn) const;
    Entry *findEntry(Vpn vpn);
    const Entry *findEntry(Vpn vpn) const;

    TlbConfig _config;
    std::uint32_t _ways;
    std::vector<Entry> _entries; // sets * ways, row-major by set
    std::uint64_t _clock = 0;
    std::uint32_t _resident = 0;
};

} // namespace tlbpf

#endif // TLBPF_TLB_TLB_HH
