#include "tlb/two_level.hh"

#include "util/logging.hh"

namespace tlbpf
{

TwoLevelTlb::TwoLevelTlb(const TlbConfig &l1, const TlbConfig &l2)
    : _l1(l1), _l2(l2)
{
    if (l2.entries < l1.entries)
        tlbpf_fatal(
            "inclusive hierarchy needs L2 at least as large as L1");
}

void
TwoLevelTlb::promote(Vpn vpn)
{
    // The L1 victim simply falls back to the L2, where it already
    // resides (inclusion).
    _l1.insert(vpn);
}

TlbLevelHit
TwoLevelTlb::access(Vpn vpn)
{
    ++_accesses;
    if (_l1.access(vpn))
        return TlbLevelHit::L1;
    ++_l1Misses;
    if (_l2.access(vpn)) {
        promote(vpn);
        return TlbLevelHit::L2;
    }
    ++_l2Misses;
    return TlbLevelHit::Miss;
}

std::optional<Vpn>
TwoLevelTlb::insert(Vpn vpn)
{
    std::optional<Vpn> l2_victim = _l2.insert(vpn);
    if (l2_victim)
        _l1.invalidate(*l2_victim); // preserve inclusion
    promote(vpn);
    return l2_victim;
}

bool
TwoLevelTlb::contains(Vpn vpn) const
{
    return _l1.contains(vpn) || _l2.contains(vpn);
}

void
TwoLevelTlb::flush()
{
    _l1.flush();
    _l2.flush();
}

} // namespace tlbpf
