/**
 * @file
 * The prefetch buffer shared by every mechanism (paper Section 2).
 *
 * Prefetched translations land here, not in the TLB, so prefetching can
 * never raise the TLB miss rate.  The buffer is probed concurrently
 * with the TLB; on a hit the entry is promoted into the TLB and removed
 * from the buffer.  It is small (default 16 entries) and fully
 * associative with LRU replacement, so an over-aggressive prefetcher
 * evicts its own entries before they are used — the effect the paper
 * observes for ASP at r=1024.
 */

#ifndef TLBPF_TLB_PREFETCH_BUFFER_HH
#define TLBPF_TLB_PREFETCH_BUFFER_HH

#include <cstdint>
#include <vector>

#include "mem/prefetch_channel.hh"
#include "trace/ref_stream.hh"
#include "util/snapshot.hh"

namespace tlbpf
{

/** Fully-associative LRU buffer of prefetched translations. */
class PrefetchBuffer
{
  public:
    explicit PrefetchBuffer(std::uint32_t entries);

    /**
     * Probe for @p vpn and, on a hit, remove the entry (it moves to the
     * TLB).
     *
     * @param[out] ready_at completion time of the prefetch that brought
     *                      the entry in (timing model), 0 if untimed.
     * @return true on hit.
     */
    bool hitAndPromote(Vpn vpn, Tick &ready_at);

    /** Probe without removal (duplicate suppression). */
    bool contains(Vpn vpn) const;

    /**
     * Insert a prefetched translation that will be ready at
     * @p ready_at; evicts the LRU entry if full.  Inserting a vpn that
     * is already buffered refreshes its recency and ready time.
     */
    void insert(Vpn vpn, Tick ready_at = 0);

    void flush();

    std::uint32_t capacity() const { return _capacity; }
    std::size_t size() const { return _nodes.size(); }

    /** Lifetime counters for prefetch-efficiency metrics. */
    std::uint64_t inserts() const { return _inserts; }
    std::uint64_t hits() const { return _hits; }
    std::uint64_t evictedUnused() const { return _evictedUnused; }

    /** Serialize contents in LRU order plus the lifetime counters. */
    void snapshotState(SnapshotWriter &out) const;

    /**
     * Restore state written by snapshotState() into a buffer of the
     * same capacity; throws std::invalid_argument on a mismatch.
     */
    void restoreState(SnapshotReader &in);

  private:
    struct Node
    {
        Vpn vpn;
        Tick readyAt;
    };

    std::uint32_t _capacity;
    /**
     * MRU-first flat array.  The buffer is probed on every reference
     * and mutated on every miss and prefetch, and at the default 16
     * entries the whole thing is four cache lines: linear scans and
     * memmove-style shifts are far cheaper than the list/hash-map pair
     * they replace, which paid an allocation per insert.
     */
    std::vector<Node> _nodes;

    std::uint64_t _inserts = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _evictedUnused = 0;
};

} // namespace tlbpf

#endif // TLBPF_TLB_PREFETCH_BUFFER_HH
