#include "tlb/tlb.hh"

#include <algorithm>
#include <unordered_set>

#include "util/bits.hh"
#include "util/logging.hh"

namespace tlbpf
{

namespace
{

/** Index slot sentinel for "no entry hashed here". */
constexpr std::uint32_t kEmptySlot = UINT32_MAX;

/** Entry-slot sentinel for "no slot" (list ends, cold hit cache). */
constexpr std::uint32_t kNoSlot = UINT32_MAX;

/** Sets narrower than this are cheaper to scan than to hash. */
constexpr std::uint32_t kIndexMinWays = 16;

/** splitmix64 finalizer: strong enough that probes stay short. */
inline std::uint64_t
hashVpn(Vpn vpn)
{
    std::uint64_t x = vpn + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

Tlb::Tlb(const TlbConfig &config)
    : _config(config)
{
    if (config.entries == 0)
        tlbpf_fatal("TLB needs at least one entry");
    if (config.assoc == 0) {
        _ways = config.entries;
    } else {
        if (config.entries % config.assoc != 0) {
            tlbpf_fatal("TLB entries (", config.entries,
                        ") must be a multiple of associativity (",
                        config.assoc, ")");
        }
        if (!isPowerOfTwo(config.numSets()))
            tlbpf_fatal("number of TLB sets must be a power of two");
        _ways = config.assoc;
    }
    _entries.resize(static_cast<std::size_t>(_config.numSets()) * _ways);
    if (_ways >= kIndexMinWays) {
        // Power-of-two capacity at least 4x the entry count keeps the
        // load factor under 25%, so linear probes terminate quickly.
        std::size_t cap = 64;
        while (cap < static_cast<std::size_t>(_config.entries) * 4)
            cap *= 2;
        _index.assign(cap, kEmptySlot);
        _lru.assign(_config.numSets(), SetLru{});
    }
}

void
Tlb::lruUnlink(std::uint32_t idx)
{
    SetLru &set = _lru[idx / _ways];
    Entry &e = _entries[idx];
    if (e.lruPrev != kNoSlot)
        _entries[e.lruPrev].lruNext = e.lruNext;
    else
        set.head = e.lruNext;
    if (e.lruNext != kNoSlot)
        _entries[e.lruNext].lruPrev = e.lruPrev;
    else
        set.tail = e.lruPrev;
    e.lruPrev = kNoSlot;
    e.lruNext = kNoSlot;
}

void
Tlb::lruPushFront(std::uint32_t idx)
{
    SetLru &set = _lru[idx / _ways];
    Entry &e = _entries[idx];
    e.lruPrev = kNoSlot;
    e.lruNext = set.head;
    if (set.head != kNoSlot)
        _entries[set.head].lruPrev = idx;
    set.head = idx;
    if (set.tail == kNoSlot)
        set.tail = idx;
}

void
Tlb::rebuildLru()
{
    if (_lru.empty())
        return;
    std::fill(_lru.begin(), _lru.end(), SetLru{});
    std::vector<std::uint32_t> order;
    order.reserve(_entries.size());
    for (std::uint32_t i = 0; i < _entries.size(); ++i) {
        _entries[i].lruPrev = kNoSlot;
        _entries[i].lruNext = kNoSlot;
        if (_entries[i].valid)
            order.push_back(i);
    }
    // Push in ascending use-clock order so each set's head ends up
    // being its most recently used entry.
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return _entries[a].lastUse < _entries[b].lastUse;
              });
    for (std::uint32_t idx : order) {
        lruPushFront(idx);
        ++_lru[idx / _ways].resident;
    }
}

void
Tlb::indexInsert(Vpn vpn, std::uint32_t slot)
{
    std::size_t mask = _index.size() - 1;
    std::size_t b = hashVpn(vpn) & mask;
    while (_index[b] != kEmptySlot)
        b = (b + 1) & mask;
    _index[b] = slot;
}

void
Tlb::indexErase(Vpn vpn)
{
    std::size_t mask = _index.size() - 1;
    std::size_t b = hashVpn(vpn) & mask;
    while (true) {
        std::uint32_t slot = _index[b];
        tlbpf_assert(slot != kEmptySlot,
                     "TLB index missing VPN ", vpn, " on erase");
        if (_entries[slot].vpn == vpn)
            break;
        b = (b + 1) & mask;
    }
    // Backward-shift deletion: walk the probe chain after the hole and
    // rehome any element whose probe path crossed it, so lookups never
    // need tombstones.
    std::size_t hole = b;
    std::size_t i = (b + 1) & mask;
    while (_index[i] != kEmptySlot) {
        std::size_t home = hashVpn(_entries[_index[i]].vpn) & mask;
        if (((i - home) & mask) >= ((i - hole) & mask)) {
            _index[hole] = _index[i];
            hole = i;
        }
        i = (i + 1) & mask;
    }
    _index[hole] = kEmptySlot;
}

void
Tlb::rebuildIndex()
{
    if (_index.empty())
        return;
    std::fill(_index.begin(), _index.end(), kEmptySlot);
    for (std::size_t slot = 0; slot < _entries.size(); ++slot) {
        if (_entries[slot].valid)
            indexInsert(_entries[slot].vpn,
                        static_cast<std::uint32_t>(slot));
    }
}

std::size_t
Tlb::setIndex(Vpn vpn) const
{
    return (vpn & (_config.numSets() - 1)) * _ways;
}

Tlb::Entry *
Tlb::findEntry(Vpn vpn)
{
    if (!_index.empty()) {
        std::size_t mask = _index.size() - 1;
        std::size_t b = hashVpn(vpn) & mask;
        while (_index[b] != kEmptySlot) {
            Entry &e = _entries[_index[b]];
            if (e.vpn == vpn)
                return &e;
            b = (b + 1) & mask;
        }
        return nullptr;
    }
    std::size_t base = setIndex(vpn);
    for (std::size_t w = 0; w < _ways; ++w) {
        Entry &e = _entries[base + w];
        if (e.valid && e.vpn == vpn)
            return &e;
    }
    return nullptr;
}

const Tlb::Entry *
Tlb::findEntry(Vpn vpn) const
{
    return const_cast<Tlb *>(this)->findEntry(vpn);
}

bool
Tlb::access(Vpn vpn)
{
    // Last-hit fast path: back-to-back references to the same page
    // are the overwhelmingly common case, and the cached entry is
    // already at the head of its recency list.
    if (_lastHit != kNoSlot) {
        Entry &cached = _entries[_lastHit];
        if (cached.valid && cached.vpn == vpn) {
            cached.lastUse = ++_clock;
            return true;
        }
    }
    Entry *e = findEntry(vpn);
    if (!e)
        return false;
    e->lastUse = ++_clock;
    std::uint32_t idx =
        static_cast<std::uint32_t>(e - _entries.data());
    if (!_lru.empty()) {
        lruUnlink(idx);
        lruPushFront(idx);
    }
    _lastHit = idx;
    return true;
}

bool
Tlb::contains(Vpn vpn) const
{
    return findEntry(vpn) != nullptr;
}

std::optional<Vpn>
Tlb::insert(Vpn vpn)
{
    tlbpf_assert(!contains(vpn), "double insert of VPN ", vpn);
    std::size_t base = setIndex(vpn);
    Entry *victim = nullptr;
    if (!_lru.empty()) {
        SetLru &set = _lru[base / _ways];
        if (set.resident < _ways) {
            // Free slots are consumed in way order, exactly like the
            // scan below, so fills land in the same slots either way.
            for (std::size_t w = 0; w < _ways; ++w) {
                if (!_entries[base + w].valid) {
                    victim = &_entries[base + w];
                    break;
                }
            }
        } else {
            // The list tail is the unique minimum-clock entry: the
            // same victim the scan would pick.
            victim = &_entries[set.tail];
        }
    } else {
        for (std::size_t w = 0; w < _ways; ++w) {
            Entry &e = _entries[base + w];
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (!victim || e.lastUse < victim->lastUse)
                victim = &e;
        }
    }
    std::uint32_t idx =
        static_cast<std::uint32_t>(victim - _entries.data());
    std::optional<Vpn> evicted;
    if (victim->valid) {
        evicted = victim->vpn;
        if (!_index.empty())
            indexErase(victim->vpn);
        if (!_lru.empty())
            lruUnlink(idx);
    } else {
        ++_resident;
        if (!_lru.empty())
            ++_lru[base / _ways].resident;
    }
    victim->vpn = vpn;
    victim->valid = true;
    victim->lastUse = ++_clock;
    if (!_lru.empty())
        lruPushFront(idx);
    if (!_index.empty())
        indexInsert(vpn, idx);
    _lastHit = idx;
    return evicted;
}

bool
Tlb::invalidate(Vpn vpn)
{
    Entry *e = findEntry(vpn);
    if (!e)
        return false;
    if (!_index.empty())
        indexErase(vpn);
    std::uint32_t idx =
        static_cast<std::uint32_t>(e - _entries.data());
    if (!_lru.empty()) {
        lruUnlink(idx);
        --_lru[idx / _ways].resident;
    }
    e->valid = false;
    --_resident;
    return true;
}

void
Tlb::snapshotState(SnapshotWriter &out) const
{
    // _resident is not serialized: it is derivable from the valid
    // flags, and recomputing it on restore closes a corruption hole.
    out.u64(_clock);
    out.u64(_entries.size());
    for (const Entry &e : _entries) {
        out.boolean(e.valid);
        if (!e.valid)
            continue;
        out.u64(e.vpn);
        out.u64(e.lastUse);
    }
}

void
Tlb::restoreState(SnapshotReader &in)
{
    _clock = in.u64();
    std::uint64_t count = in.u64();
    if (count != _entries.size())
        SnapshotReader::fail(
            "TLB has " + std::to_string(count) +
            " entry slots, expected " +
            std::to_string(_entries.size()));
    _resident = 0;
    std::unordered_set<Vpn> seen;
    seen.reserve(_entries.size());
    for (std::size_t i = 0; i < _entries.size(); ++i) {
        Entry &e = _entries[i];
        e.valid = in.boolean();
        if (!e.valid) {
            e.vpn = 0;
            e.lastUse = 0;
            continue;
        }
        e.vpn = in.u64();
        e.lastUse = in.u64();
        if (setIndex(e.vpn) != (i / _ways) * _ways)
            SnapshotReader::fail(
                "TLB checkpoint places VPN " + std::to_string(e.vpn) +
                " in the wrong set");
        if (!seen.insert(e.vpn).second)
            SnapshotReader::fail("duplicate TLB entry in checkpoint");
        ++_resident;
    }
    rebuildIndex();
    rebuildLru();
    _lastHit = kNoSlot;
}

void
Tlb::flush()
{
    for (Entry &e : _entries) {
        e.valid = false;
        e.lruPrev = kNoSlot;
        e.lruNext = kNoSlot;
    }
    _resident = 0;
    _lastHit = kNoSlot;
    if (!_index.empty())
        std::fill(_index.begin(), _index.end(), kEmptySlot);
    if (!_lru.empty())
        std::fill(_lru.begin(), _lru.end(), SetLru{});
}

} // namespace tlbpf
