#include "tlb/tlb.hh"

#include <unordered_set>

#include "util/bits.hh"
#include "util/logging.hh"

namespace tlbpf
{

Tlb::Tlb(const TlbConfig &config)
    : _config(config)
{
    if (config.entries == 0)
        tlbpf_fatal("TLB needs at least one entry");
    if (config.assoc == 0) {
        _ways = config.entries;
    } else {
        if (config.entries % config.assoc != 0) {
            tlbpf_fatal("TLB entries (", config.entries,
                        ") must be a multiple of associativity (",
                        config.assoc, ")");
        }
        if (!isPowerOfTwo(config.numSets()))
            tlbpf_fatal("number of TLB sets must be a power of two");
        _ways = config.assoc;
    }
    _entries.resize(static_cast<std::size_t>(_config.numSets()) * _ways);
}

std::size_t
Tlb::setIndex(Vpn vpn) const
{
    return (vpn & (_config.numSets() - 1)) * _ways;
}

Tlb::Entry *
Tlb::findEntry(Vpn vpn)
{
    std::size_t base = setIndex(vpn);
    for (std::size_t w = 0; w < _ways; ++w) {
        Entry &e = _entries[base + w];
        if (e.valid && e.vpn == vpn)
            return &e;
    }
    return nullptr;
}

const Tlb::Entry *
Tlb::findEntry(Vpn vpn) const
{
    return const_cast<Tlb *>(this)->findEntry(vpn);
}

bool
Tlb::access(Vpn vpn)
{
    Entry *e = findEntry(vpn);
    if (!e)
        return false;
    e->lastUse = ++_clock;
    return true;
}

bool
Tlb::contains(Vpn vpn) const
{
    return findEntry(vpn) != nullptr;
}

std::optional<Vpn>
Tlb::insert(Vpn vpn)
{
    tlbpf_assert(!contains(vpn), "double insert of VPN ", vpn);
    std::size_t base = setIndex(vpn);
    Entry *victim = nullptr;
    for (std::size_t w = 0; w < _ways; ++w) {
        Entry &e = _entries[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.lastUse < victim->lastUse)
            victim = &e;
    }
    std::optional<Vpn> evicted;
    if (victim->valid) {
        evicted = victim->vpn;
    } else {
        ++_resident;
    }
    victim->vpn = vpn;
    victim->valid = true;
    victim->lastUse = ++_clock;
    return evicted;
}

bool
Tlb::invalidate(Vpn vpn)
{
    Entry *e = findEntry(vpn);
    if (!e)
        return false;
    e->valid = false;
    --_resident;
    return true;
}

void
Tlb::snapshotState(SnapshotWriter &out) const
{
    // _resident is not serialized: it is derivable from the valid
    // flags, and recomputing it on restore closes a corruption hole.
    out.u64(_clock);
    out.u64(_entries.size());
    for (const Entry &e : _entries) {
        out.boolean(e.valid);
        if (!e.valid)
            continue;
        out.u64(e.vpn);
        out.u64(e.lastUse);
    }
}

void
Tlb::restoreState(SnapshotReader &in)
{
    _clock = in.u64();
    std::uint64_t count = in.u64();
    if (count != _entries.size())
        SnapshotReader::fail(
            "TLB has " + std::to_string(count) +
            " entry slots, expected " +
            std::to_string(_entries.size()));
    _resident = 0;
    std::unordered_set<Vpn> seen;
    seen.reserve(_entries.size());
    for (std::size_t i = 0; i < _entries.size(); ++i) {
        Entry &e = _entries[i];
        e.valid = in.boolean();
        if (!e.valid) {
            e.vpn = 0;
            e.lastUse = 0;
            continue;
        }
        e.vpn = in.u64();
        e.lastUse = in.u64();
        if (setIndex(e.vpn) != (i / _ways) * _ways)
            SnapshotReader::fail(
                "TLB checkpoint places VPN " + std::to_string(e.vpn) +
                " in the wrong set");
        if (!seen.insert(e.vpn).second)
            SnapshotReader::fail("duplicate TLB entry in checkpoint");
        ++_resident;
    }
}

void
Tlb::flush()
{
    for (Entry &e : _entries)
        e.valid = false;
    _resident = 0;
}

} // namespace tlbpf
