#include "util/logging.hh"

#include <cstdio>
#include <exception>

namespace tlbpf
{

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::emit(const char *label, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", label, msg.c_str());
    std::fflush(stderr);
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    Logger::instance().emit(
        "panic", format(msg, " @ ", file, ":", line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    Logger::instance().emit(
        "fatal", format(msg, " @ ", file, ":", line));
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    auto &logger = Logger::instance();
    logger.countWarning();
    if (logger.level() != LogLevel::Quiet)
        logger.emit("warn", msg);
}

void
informImpl(const std::string &msg)
{
    auto &logger = Logger::instance();
    if (logger.level() != LogLevel::Quiet)
        logger.emit("info", msg);
}

} // namespace detail

} // namespace tlbpf
