#include "util/thread_pool.hh"

namespace tlbpf
{

unsigned
ThreadPool::defaultThreadCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : _threads(threads ? threads : defaultThreadCount())
{
    _workers.reserve(_threads - 1);
    for (unsigned i = 1; i < _threads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _wake.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

void
ThreadPool::runIndices(const std::function<void(std::size_t)> &fn)
{
    for (;;) {
        std::size_t i = _cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= _batchSize)
            return;
        try {
            fn(i);
        } catch (...) {
            // Slot i is this invocation's alone; no lock needed.
            _errors[i] = std::current_exception();
        }
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *fn = nullptr;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock, [&] {
                return _stopping || _generation != seen;
            });
            if (_stopping)
                return;
            seen = _generation;
            fn = _batchFn;
        }
        runIndices(*fn);
        {
            std::lock_guard<std::mutex> lock(_mutex);
            if (--_active == 0)
                _done.notify_all();
        }
    }
}

void
ThreadPool::rethrowFirstError()
{
    for (std::exception_ptr &error : _errors) {
        if (error) {
            std::exception_ptr first = error;
            _errors.clear();
            std::rethrow_exception(first);
        }
    }
    _errors.clear();
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    _errors.assign(n, nullptr);

    if (_workers.empty()) {
        // Serial pool: run inline, no synchronisation at all.
        _batchSize = n;
        _cursor.store(0, std::memory_order_relaxed);
        runIndices(fn);
        rethrowFirstError();
        return;
    }

    {
        std::lock_guard<std::mutex> lock(_mutex);
        _batchSize = n;
        _batchFn = &fn;
        _cursor.store(0, std::memory_order_relaxed);
        _active = static_cast<unsigned>(_workers.size());
        ++_generation;
    }
    _wake.notify_all();

    // The calling thread pulls indices alongside the workers.
    runIndices(fn);

    {
        std::unique_lock<std::mutex> lock(_mutex);
        _done.wait(lock, [&] { return _active == 0; });
        _batchFn = nullptr;
    }
    rethrowFirstError();
}

} // namespace tlbpf
