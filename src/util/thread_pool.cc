#include "util/thread_pool.hh"

#include <algorithm>
#include <chrono>

namespace tlbpf
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** xorshift64: cheap, stateless-feeling victim randomization. */
std::uint64_t
nextRandom(std::uint64_t &state)
{
    std::uint64_t x = state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state = x;
    return x;
}

} // namespace

std::uint64_t
ThreadPool::BatchStats::stealEvents() const
{
    std::uint64_t total = 0;
    for (const WorkerStats &w : workers)
        total += w.steals;
    return total;
}

std::uint64_t
ThreadPool::BatchStats::backoffEvents() const
{
    std::uint64_t total = 0;
    for (const WorkerStats &w : workers)
        total += w.backoffs;
    return total;
}

double
ThreadPool::BatchStats::busyFractionMin() const
{
    if (workers.empty() || seconds <= 0)
        return 0;
    double best = 1;
    for (const WorkerStats &w : workers)
        best = std::min(best, w.busySeconds / seconds);
    return best;
}

double
ThreadPool::BatchStats::busyFractionMax() const
{
    if (workers.empty() || seconds <= 0)
        return 0;
    double best = 0;
    for (const WorkerStats &w : workers)
        best = std::max(best, w.busySeconds / seconds);
    return best;
}

unsigned
ThreadPool::defaultThreadCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : _threads(threads ? threads : defaultThreadCount()),
      _slots(_threads)
{
    for (unsigned i = 0; i < _threads; ++i)
        _slots[i].rng = 0x9e3779b97f4a7c15ull * (i + 1) + 1;
    _workers.reserve(_threads - 1);
    for (unsigned i = 1; i < _threads; ++i)
        _workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _wake.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

/**
 * Place batch indices into the per-worker deques.
 *
 * Uniform batches (no weights) are dealt round-robin, pushed in
 * descending index order so each owner pops its indices *ascending* —
 * the cache-friendly order of the old cursor hand-out.
 *
 * Weighted batches get the classic longest-processing-time greedy:
 * indices sorted by descending weight, each assigned to the
 * currently least-loaded worker.  Each deque is then seeded
 * lightest-first, so the owner pops heaviest-first (the LPT execution
 * order) while thieves steal the lightest leftovers from the top —
 * cheap fill-in work that rebalances the tail without delaying
 * anyone's big cells.
 */
void
ThreadPool::seedDeques(std::size_t n, const std::uint64_t *weights)
{
    if (!weights) {
        std::size_t per = (n + _threads - 1) / _threads;
        for (unsigned w = 0; w < _threads; ++w)
            _slots[w].deque.reset(per);
        for (std::size_t i = n; i-- > 0;)
            _slots[i % _threads].deque.push(i);
        _stats.lptImbalance =
            n == 0 ? 1.0
                   : static_cast<double>(per) * _threads /
                         static_cast<double>(n);
        return;
    }

    _order.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        _order[i] = i;
    std::stable_sort(_order.begin(), _order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return weights[a] > weights[b];
                     });

    _loads.assign(_threads, 0);
    for (WorkerSlot &slot : _slots)
        slot.seed.clear();
    std::uint64_t total = 0;
    for (std::size_t i : _order) {
        unsigned target = 0;
        for (unsigned w = 1; w < _threads; ++w)
            if (_loads[w] < _loads[target])
                target = w;
        std::uint64_t weight = weights[i] ? weights[i] : 1;
        _loads[target] += weight;
        total += weight;
        _slots[target].seed.push_back(i);
    }
    for (WorkerSlot &slot : _slots) {
        slot.deque.reset(slot.seed.size());
        for (std::size_t k = slot.seed.size(); k-- > 0;)
            slot.deque.push(slot.seed[k]);
    }
    std::uint64_t max_load =
        *std::max_element(_loads.begin(), _loads.end());
    _stats.lptImbalance =
        total == 0 ? 1.0
                   : static_cast<double>(max_load) * _threads /
                         static_cast<double>(total);
}

void
ThreadPool::runOne(unsigned self, std::size_t index, bool stolen)
{
    WorkerSlot &me = _slots[self];
    auto start = Clock::now();
    try {
        _invoke(_ctx, index);
    } catch (...) {
        if (index < me.errorIndex) {
            me.errorIndex = index;
            me.error = std::current_exception();
        }
    }
    me.busySeconds += secondsSince(start);
    ++me.jobs;
    me.steals += stolen;
    _remaining.fetch_sub(1, std::memory_order_acq_rel);
}

/** One randomized sweep over every other worker's deque. */
bool
ThreadPool::stealOne(unsigned self, std::size_t &index)
{
    WorkerSlot &me = _slots[self];
    unsigned victims = _threads - 1;
    unsigned start = static_cast<unsigned>(nextRandom(me.rng) % victims);
    for (unsigned k = 0; k < victims; ++k) {
        unsigned victim = self + 1 + (start + k) % victims;
        if (victim >= _threads)
            victim -= _threads;
        if (_slots[victim].deque.steal(index))
            return true;
    }
    return false;
}

/**
 * The scheduler loop every thread runs for the duration of a batch:
 * drain the own deque, then steal, then back off exponentially while
 * other workers still hold in-flight jobs.
 */
void
ThreadPool::schedLoop(unsigned self)
{
    WorkerSlot &me = _slots[self];
    unsigned backoff = 0;
    std::size_t index;
    while (_remaining.load(std::memory_order_acquire) != 0) {
        if (me.deque.pop(index)) {
            runOne(self, index, false);
            backoff = 0;
            continue;
        }
        if (_threads > 1 && stealOne(self, index)) {
            runOne(self, index, true);
            backoff = 0;
            continue;
        }
        if (_threads == 1)
            return; // own deque dry and nobody else holds work
        if (_remaining.load(std::memory_order_acquire) == 0)
            return;
        // Every deque is dry but jobs are still running elsewhere
        // (or a steal race was lost): back off so the straggler's
        // core is not stolen by a busy-spinning thief.
        ++me.backoffs;
        if (backoff < 2) {
            std::this_thread::yield();
        } else {
            unsigned shift = std::min(backoff - 2, 9u);
            std::this_thread::sleep_for(
                std::chrono::microseconds(1u << shift));
        }
        ++backoff;
    }
}

void
ThreadPool::workerLoop(unsigned self)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock, [&] {
                return _stopping || _generation != seen;
            });
            if (_stopping)
                return;
            seen = _generation;
        }
        schedLoop(self);
        {
            std::lock_guard<std::mutex> lock(_mutex);
            if (--_active == 0)
                _done.notify_all();
        }
    }
}

void
ThreadPool::collectStats(std::size_t n, double seconds)
{
    _stats.jobs = n;
    _stats.seconds = seconds;
    _stats.workers.resize(_threads);
    for (unsigned w = 0; w < _threads; ++w) {
        _stats.workers[w].jobs = _slots[w].jobs;
        _stats.workers[w].steals = _slots[w].steals;
        _stats.workers[w].backoffs = _slots[w].backoffs;
        _stats.workers[w].busySeconds = _slots[w].busySeconds;
    }
}

void
ThreadPool::rethrowLowestIndexError()
{
    std::size_t best = std::numeric_limits<std::size_t>::max();
    unsigned who = 0;
    for (unsigned w = 0; w < _threads; ++w) {
        if (_slots[w].errorIndex < best) {
            best = _slots[w].errorIndex;
            who = w;
        }
    }
    if (best == std::numeric_limits<std::size_t>::max())
        return;
    std::exception_ptr first = _slots[who].error;
    for (WorkerSlot &slot : _slots)
        slot.error = nullptr;
    std::rethrow_exception(first);
}

void
ThreadPool::runBatch(std::size_t n, const std::uint64_t *weights,
                     BatchThunk invoke, const void *ctx)
{
    if (n == 0) {
        _stats = BatchStats{};
        _stats.workers.assign(_threads, WorkerStats{});
        return;
    }
    auto start = Clock::now();
    for (WorkerSlot &slot : _slots) {
        slot.jobs = 0;
        slot.steals = 0;
        slot.backoffs = 0;
        slot.busySeconds = 0;
        slot.errorIndex = std::numeric_limits<std::size_t>::max();
        slot.error = nullptr;
    }
    seedDeques(n, weights);
    _invoke = invoke;
    _ctx = ctx;
    _remaining.store(n, std::memory_order_seq_cst);

    if (_workers.empty()) {
        // Serial pool: the same deque-driven scheduler, run inline
        // with no synchronisation — so the per-job scheduling cost a
        // 1-worker engine pays is exactly what the benches measure
        // as serial_vs_parallel_overhead.
        schedLoop(0);
    } else {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _active = static_cast<unsigned>(_workers.size());
            ++_generation;
        }
        _wake.notify_all();
        schedLoop(0);
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _done.wait(lock, [&] { return _active == 0; });
        }
    }
    _invoke = nullptr;
    _ctx = nullptr;
    collectStats(n, secondsSince(start));
    rethrowLowestIndexError();
}

} // namespace tlbpf
