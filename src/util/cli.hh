/**
 * @file
 * Minimal command-line option parser for bench/example binaries.
 *
 * Supports --name=value, --name value, and bare --flag forms.  Unknown
 * options are fatal so that typos in sweep scripts fail loudly.
 */

#ifndef TLBPF_UTIL_CLI_HH
#define TLBPF_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tlbpf
{

/** Parsed command line with typed accessors and defaults. */
class CliArgs
{
  public:
    /**
     * Parse argv.  @p known lists the accepted option names (without the
     * leading dashes); anything else is a fatal error.
     */
    CliArgs(int argc, const char *const *argv,
            const std::vector<std::string> &known);

    /** True if --name was present (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name, or @p dflt if absent. */
    std::string get(const std::string &name,
                    const std::string &dflt = "") const;

    /** Integer value of --name, or @p dflt if absent. */
    std::int64_t getInt(const std::string &name, std::int64_t dflt) const;

    /** Double value of --name, or @p dflt if absent. */
    double getDouble(const std::string &name, double dflt) const;

    /** Positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return _positional;
    }

  private:
    std::map<std::string, std::string> _options;
    std::vector<std::string> _positional;
};

/** Split a comma-separated list like "32,64,128" into integers. */
std::vector<std::int64_t> parseIntList(const std::string &spec);

/** Split a comma-separated list into strings. */
std::vector<std::string> parseStringList(const std::string &spec);

} // namespace tlbpf

#endif // TLBPF_UTIL_CLI_HH
