/**
 * @file
 * The TLBPF_DCHECK invariant layer: debug-build assertions for the
 * invariants the concurrent subsystems otherwise assume silently.
 *
 * tlbpf_assert (logging.hh) is for invariants cheap enough to keep in
 * every build.  TLBPF_DCHECK is the tier below it: checks that sit on
 * hot paths (the work-stealing deque, the ordered-emission frontier,
 * the lease state machine, snapshot restore) where the cost is only
 * acceptable in builds that exist to find bugs.  The macros compile
 * to nothing unless TLBPF_ENABLE_DCHECKS is defined, which the build
 * system does for Debug builds, every TLBPF_SANITIZE flavor, and the
 * fuzz harnesses (see the top-level CMakeLists) — so a sanitizer run
 * checks the logical invariants *and* the memory/race ones in a
 * single pass, and plain Release carries zero overhead.
 *
 * A failed check formats "<expr> (<detail>)" with its file:line and
 * hands it to the installed failure handler.  The default handler
 * prints to stderr and aborts (a core/sanitizer report captures the
 * state, matching tlbpf_panic's discipline).  Tests install a
 * throwing handler via ScopedCheckFailThrow so the guarded error
 * paths are testable deterministically, without death tests — which
 * do not mix with the TSan builds these checks are alive in.
 */

#ifndef TLBPF_UTIL_CHECK_HH
#define TLBPF_UTIL_CHECK_HH

#include <stdexcept>
#include <string>

#include "util/logging.hh"

namespace tlbpf
{

/** True in builds where TLBPF_DCHECK is alive (Debug/sanitized);
 *  tests use it to skip checks that Release compiles out. */
constexpr bool
dchecksEnabled()
{
#if defined(TLBPF_ENABLE_DCHECKS)
    return true;
#else
    return false;
#endif
}

/** What a throwing check-failure handler throws (see below). */
class CheckFailure : public std::logic_error
{
  public:
    explicit CheckFailure(const std::string &what)
        : std::logic_error(what)
    {
    }
};

namespace detail
{

/** Receives every failed TLBPF_DCHECK; must not return normally. */
using CheckFailHandler = void (*)(const char *file, int line,
                                  const std::string &msg);

/**
 * Install @p handler (nullptr restores the abort default); returns
 * the previous handler.  Not thread-safe — install before spawning
 * the threads whose checks you intend to capture.
 */
CheckFailHandler setCheckFailHandler(CheckFailHandler handler);

/** Routes to the installed handler; aborts by default. */
[[noreturn]] void checkFail(const char *file, int line,
                            const std::string &msg);

} // namespace detail

/**
 * RAII test helper: while alive, a failed TLBPF_DCHECK throws
 * CheckFailure instead of aborting.  Only meaningful in builds where
 * dchecksEnabled(); harmless (and useless) elsewhere.
 */
class ScopedCheckFailThrow
{
  public:
    ScopedCheckFailThrow();
    ~ScopedCheckFailThrow();
    ScopedCheckFailThrow(const ScopedCheckFailThrow &) = delete;
    ScopedCheckFailThrow &
    operator=(const ScopedCheckFailThrow &) = delete;

  private:
    detail::CheckFailHandler _previous;
};

} // namespace tlbpf

#if defined(TLBPF_ENABLE_DCHECKS)

/** Debug-build invariant; compiled out of plain Release. */
#define TLBPF_DCHECK(cond)                                            \
    do {                                                              \
        if (!(cond))                                                  \
            ::tlbpf::detail::checkFail(                               \
                __FILE__, __LINE__,                                   \
                "TLBPF_DCHECK failed: " #cond);                       \
    } while (0)

/** TLBPF_DCHECK with an operator<<-formatted detail message. */
#define TLBPF_DCHECK_MSG(cond, ...)                                   \
    do {                                                              \
        if (!(cond))                                                  \
            ::tlbpf::detail::checkFail(                               \
                __FILE__, __LINE__,                                   \
                "TLBPF_DCHECK failed: " #cond " (" +                  \
                    ::tlbpf::detail::format(__VA_ARGS__) + ")");      \
    } while (0)

#else

/* Compiled out: operands are not evaluated, but stay visible to the
 * compiler so a Release build cannot rot a check expression. */
#define TLBPF_DCHECK(cond)                                            \
    do {                                                              \
        if (false && !(cond)) {                                       \
        }                                                             \
    } while (0)

#define TLBPF_DCHECK_MSG(cond, ...)                                   \
    do {                                                              \
        if (false && !(cond)) {                                       \
        }                                                             \
    } while (0)

#endif // TLBPF_ENABLE_DCHECKS

#endif // TLBPF_UTIL_CHECK_HH
