#include "util/cli.hh"

#include <algorithm>
#include <cstdlib>

#include "util/logging.hh"

namespace tlbpf
{

CliArgs::CliArgs(int argc, const char *const *argv,
                 const std::vector<std::string> &known)
{
    auto is_known = [&known](const std::string &name) {
        return std::find(known.begin(), known.end(), name) != known.end();
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            _positional.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string name;
        std::string value;
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
        } else {
            name = body;
            // Consume a following value token if it is not an option.
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            }
        }
        if (!is_known(name))
            tlbpf_fatal("unknown option --", name);
        _options[name] = value;
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return _options.contains(name);
}

std::string
CliArgs::get(const std::string &name, const std::string &dflt) const
{
    auto it = _options.find(name);
    return it == _options.end() ? dflt : it->second;
}

std::int64_t
CliArgs::getInt(const std::string &name, std::int64_t dflt) const
{
    auto it = _options.find(name);
    if (it == _options.end())
        return dflt;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        tlbpf_fatal("option --", name, " expects an integer, got '",
                    it->second, "'");
    return v;
}

double
CliArgs::getDouble(const std::string &name, double dflt) const
{
    auto it = _options.find(name);
    if (it == _options.end())
        return dflt;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        tlbpf_fatal("option --", name, " expects a number, got '",
                    it->second, "'");
    return v;
}

std::vector<std::int64_t>
parseIntList(const std::string &spec)
{
    std::vector<std::int64_t> out;
    std::string token;
    for (std::size_t i = 0; i <= spec.size(); ++i) {
        if (i == spec.size() || spec[i] == ',') {
            if (!token.empty()) {
                out.push_back(std::strtoll(token.c_str(), nullptr, 0));
                token.clear();
            }
        } else {
            token.push_back(spec[i]);
        }
    }
    return out;
}

std::vector<std::string>
parseStringList(const std::string &spec)
{
    std::vector<std::string> out;
    std::string token;
    for (std::size_t i = 0; i <= spec.size(); ++i) {
        if (i == spec.size() || spec[i] == ',') {
            if (!token.empty()) {
                out.push_back(token);
                token.clear();
            }
        } else {
            token.push_back(spec[i]);
        }
    }
    return out;
}

} // namespace tlbpf
