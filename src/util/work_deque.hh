/**
 * @file
 * A Chase–Lev-style work-stealing deque over job indices.
 *
 * One WorkDeque belongs to one worker.  The owner pushes and pops at
 * the *bottom* (LIFO), thieves steal from the *top* (FIFO), so the
 * owner and a thief only contend on the very last element.  The
 * element type is a plain job index (std::size_t): the scheduler's
 * unit of hand-out is "run batch index i", which keeps the deque
 * trivially copyable and the steal path a single CAS.
 *
 * This is deliberately a *seeded* variant of Chase–Lev, matching how
 * the thread pool uses it: every element is pushed while the deque is
 * quiescent (during batch seeding, before the workers are released —
 * the pool's generation handshake provides the happens-before edge),
 * and during the batch the owner only pops while thieves only steal.
 * Because no push ever runs concurrently with a pop or steal, the
 * ring buffer itself needs no atomics and never grows; only top and
 * bottom are atomic.  Dropping the concurrent-push case removes the
 * hardest part of the classic algorithm (buffer growth + the
 * fence-dependent slot reads that ThreadSanitizer cannot model) while
 * keeping the owner/thief race handling intact — pop and steal
 * resolve the one-element race with a seq_cst CAS on top, exactly as
 * in the original.
 *
 * Memory ordering is seq_cst on top/bottom throughout.  The deque
 * hands out a few thousand indices per batch while each job runs for
 * micro- to milliseconds, so the cost of seq_cst over the
 * fence-based weak-memory formulation is unmeasurable here — and the
 * seq_cst form is exactly representable to ThreadSanitizer, which
 * the CI TSan job relies on.
 */

#ifndef TLBPF_UTIL_WORK_DEQUE_HH
#define TLBPF_UTIL_WORK_DEQUE_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/check.hh"

namespace tlbpf
{

/** Single-owner, multi-thief deque of job indices (see file docs). */
class WorkDeque
{
  public:
    /**
     * Empty the deque and make room for @p capacity elements.  Must
     * only be called while the deque is quiescent (no concurrent
     * owner or thief).  Keeps the old ring buffer when it is already
     * big enough, so a pool reusing deques across batches allocates
     * only when a batch outgrows every previous one.
     */
    void
    reset(std::size_t capacity)
    {
        std::size_t need = 1;
        while (need < capacity)
            need <<= 1;
        if (_ring.size() < need)
            _ring.resize(need);
        _mask = _ring.size() - 1;
        _top.store(0, std::memory_order_relaxed);
        _bottom.store(0, std::memory_order_relaxed);
    }

    /**
     * Push one index at the bottom.  Seeding-time only: must not run
     * concurrently with pop() or steal(), and the total number of
     * pushes since reset() must not exceed the reset capacity.
     */
    void
    push(std::size_t index)
    {
        std::int64_t b = _bottom.load(std::memory_order_relaxed);
        // Seeding-time contract: reset() ran, and the batch fits the
        // ring — overflowing the ring would silently overwrite the
        // oldest unclaimed index and lose a job.
        TLBPF_DCHECK_MSG(!_ring.empty(),
                         "push on a WorkDeque that was never reset");
        TLBPF_DCHECK_MSG(
            static_cast<std::size_t>(
                b - _top.load(std::memory_order_relaxed)) <
                _ring.size(),
            "push overflows the ring capacity of ", _ring.size());
        _ring[static_cast<std::size_t>(b) & _mask] = index;
        _bottom.store(b + 1, std::memory_order_relaxed);
    }

    /**
     * Owner-only: pop the most recently pushed remaining index.
     * Returns false when the deque is empty (including losing the
     * last-element race to a thief).
     */
    bool
    pop(std::size_t &out)
    {
        std::int64_t b = _bottom.load(std::memory_order_relaxed) - 1;
        _bottom.store(b, std::memory_order_seq_cst);
        std::int64_t t = _top.load(std::memory_order_seq_cst);
        if (t > b) {
            // Already empty; undo the claim.
            _bottom.store(b + 1, std::memory_order_relaxed);
            return false;
        }
        out = _ring[static_cast<std::size_t>(b) & _mask];
        if (t == b) {
            // Last element: race a concurrent thief for it via top.
            bool won = _top.compare_exchange_strong(
                t, t + 1, std::memory_order_seq_cst,
                std::memory_order_relaxed);
            // Losing the race means a thief advanced top past our
            // claim; top at or below b here would mean the element
            // was handed out twice (the one-element race invariant).
            TLBPF_DCHECK_MSG(won || t > b,
                             "lost the one-element race but top ", t,
                             " never passed bottom claim ", b);
            _bottom.store(b + 1, std::memory_order_relaxed);
            return won;
        }
        return true;
    }

    /**
     * Thief: steal the oldest remaining index.  One attempt; returns
     * false when the deque looks empty or another thief (or the
     * owner, on the last element) won the race — callers move on to
     * the next victim rather than spinning here.
     */
    bool
    steal(std::size_t &out)
    {
        std::int64_t t = _top.load(std::memory_order_seq_cst);
        std::int64_t b = _bottom.load(std::memory_order_seq_cst);
        if (t >= b)
            return false;
        out = _ring[static_cast<std::size_t>(t) & _mask];
        return _top.compare_exchange_strong(t, t + 1,
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed);
    }

    /** Approximate emptiness (exact only while quiescent). */
    bool
    empty() const
    {
        return _top.load(std::memory_order_seq_cst) >=
               _bottom.load(std::memory_order_seq_cst);
    }

  private:
    std::atomic<std::int64_t> _top{0};
    std::atomic<std::int64_t> _bottom{0};
    // Plain (non-atomic) ring: every write happens before the batch's
    // readers start (see file docs), so slot accesses never race.
    std::vector<std::size_t> _ring;
    std::size_t _mask = 0;
};

} // namespace tlbpf

#endif // TLBPF_UTIL_WORK_DEQUE_HH
