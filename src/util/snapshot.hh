/**
 * @file
 * Byte-stream serialization for simulator-state checkpoints.
 *
 * A checkpoint ("SimState") is the exact microarchitectural state of a
 * functional simulation at one point in its reference stream: TLB
 * entries and recency clocks, prefetch-buffer LRU order, page-table
 * contents, and every mechanism's prediction state.  Components
 * serialize themselves field by field through a SnapshotWriter and
 * reconstruct through a SnapshotReader; the encoding is explicit
 * little-endian, so a snapshot is a stable byte string independent of
 * host struct layout (padding, endianness) and of unordered-container
 * iteration order — producers with such containers must emit entries
 * in a canonical (sorted) order.
 *
 * The format favours exactness over schema evolution: a reader that
 * runs out of bytes, or a restore() that finds a mismatched geometry,
 * throws std::invalid_argument — the same clean-failure policy the
 * sweep engine uses for malformed jobs, so a stale or foreign
 * checkpoint surfaces as a batch failure, never a worker-thread abort.
 */

#ifndef TLBPF_UTIL_SNAPSHOT_HH
#define TLBPF_UTIL_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tlbpf
{

/** Appends primitive values to a growing byte buffer. */
class SnapshotWriter
{
  public:
    /** Pre-size the buffer (checkpoint producers know their bulk). */
    void reserve(std::size_t bytes) { _bytes.reserve(bytes); }

    void u8(std::uint8_t value) { _bytes.push_back(value); }

    void
    u32(std::uint32_t value)
    {
        std::size_t at = _bytes.size();
        _bytes.resize(at + 4);
        for (int i = 0; i < 4; ++i)
            _bytes[at + i] =
                static_cast<std::uint8_t>(value >> (8 * i));
    }

    void
    u64(std::uint64_t value)
    {
        std::size_t at = _bytes.size();
        _bytes.resize(at + 8);
        for (int i = 0; i < 8; ++i)
            _bytes[at + i] =
                static_cast<std::uint8_t>(value >> (8 * i));
    }

    void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }

    void boolean(bool value) { u8(value ? 1 : 0); }

    void
    str(const std::string &value)
    {
        u64(value.size());
        _bytes.insert(_bytes.end(), value.begin(), value.end());
    }

    const std::vector<std::uint8_t> &bytes() const { return _bytes; }
    std::vector<std::uint8_t> take() { return std::move(_bytes); }

  private:
    std::vector<std::uint8_t> _bytes;
};

/**
 * Consumes a byte buffer written by SnapshotWriter.  Reading past the
 * end throws std::invalid_argument ("snapshot truncated"); callers
 * that expect to consume everything can assert atEnd().
 */
class SnapshotReader
{
  public:
    explicit SnapshotReader(const std::vector<std::uint8_t> &bytes)
        : _bytes(bytes)
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool boolean() { return u8() != 0; }
    std::string str();

    bool atEnd() const { return _cursor == _bytes.size(); }

    /** Bytes left to read — lets producers sanity-check element
     *  counts before sizing containers from hostile length fields. */
    std::size_t remaining() const { return _bytes.size() - _cursor; }

    /**
     * Throw std::invalid_argument with @p why; restore()
     * implementations use this for geometry/identity mismatches so
     * every checkpoint failure carries an actionable message.
     */
    [[noreturn]] static void fail(const std::string &why);

  private:
    void need(std::size_t count) const;

    const std::vector<std::uint8_t> &_bytes;
    std::size_t _cursor = 0;
};

} // namespace tlbpf

#endif // TLBPF_UTIL_SNAPSHOT_HH
