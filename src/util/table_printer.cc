#include "util/table_printer.hh"

#include <cstdio>
#include <iostream>

#include "util/logging.hh"

namespace tlbpf
{

TablePrinter::TablePrinter(std::vector<std::string> header)
    : _header(std::move(header))
{
    tlbpf_assert(!_header.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    tlbpf_assert(cells.size() == _header.size(),
                 "row arity ", cells.size(), " != header arity ",
                 _header.size());
    _rows.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(_header.size());
    for (std::size_t c = 0; c < _header.size(); ++c)
        width[c] = _header[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << " " << row[c]
               << std::string(width[c] - row[c].size(), ' ') << " |";
        }
        os << "\n";
    };

    if (!_caption.empty())
        os << _caption << "\n";
    emit_row(_header);
    os << "|";
    for (std::size_t c = 0; c < _header.size(); ++c)
        os << std::string(width[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : _rows)
        emit_row(row);
}

void
TablePrinter::print() const
{
    print(std::cout);
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::num(std::int64_t v)
{
    return std::to_string(v);
}

std::string
TablePrinter::num(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace tlbpf
