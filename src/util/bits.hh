/**
 * @file
 * Small bit-manipulation helpers shared across the simulator.
 */

#ifndef TLBPF_UTIL_BITS_HH
#define TLBPF_UTIL_BITS_HH

#include <bit>
#include <cstdint>

namespace tlbpf
{

/** True iff x is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x | 1));
}

/** Smallest power of two >= x (x > 0). */
constexpr std::uint64_t
ceilPowerOfTwo(std::uint64_t x)
{
    return std::bit_ceil(x);
}

/**
 * ZigZag-encode a signed value into an unsigned one so that small
 * magnitudes (positive or negative) map to small codes.  Used to index
 * prediction tables by signed page distances.
 */
constexpr std::uint64_t
zigZagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigZagEncode. */
constexpr std::int64_t
zigZagDecode(std::uint64_t u)
{
    return static_cast<std::int64_t>(u >> 1) ^
           -static_cast<std::int64_t>(u & 1);
}

} // namespace tlbpf

#endif // TLBPF_UTIL_BITS_HH
