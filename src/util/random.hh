/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * workload synthesis.
 *
 * All workload generators draw from Rng so that every experiment is
 * bit-for-bit reproducible given the seed recorded in the app registry.
 * The implementation is xoshiro256** seeded through SplitMix64, which is
 * fast, has a 2^256-1 period, and passes BigCrush.
 */

#ifndef TLBPF_UTIL_RANDOM_HH
#define TLBPF_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace tlbpf
{

/** SplitMix64 step; used for seeding and as a cheap hash. */
std::uint64_t splitMix64(std::uint64_t &state);

/** Stateless 64-bit mix (Stafford variant 13); good avalanche. */
std::uint64_t mix64(std::uint64_t x);

/** xoshiro256** generator. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound); bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBelow(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t _s[4];
};

/**
 * Zipf-distributed integer sampler over [0, n).
 *
 * Uses the rejection-inversion method of Hormann & Derflinger so that
 * construction is O(1) and sampling is O(1) expected, independent of n.
 */
class ZipfSampler
{
  public:
    /**
     * @param n    number of items (ranks 0..n-1, rank 0 most popular)
     * @param skew Zipf exponent (typical 0.8-1.2)
     */
    ZipfSampler(std::uint64_t n, double skew);

    /** Draw one rank. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t n() const { return _n; }
    double skew() const { return _skew; }

  private:
    double h(double x) const;
    double hInv(double x) const;

    std::uint64_t _n;
    double _skew;
    double _hx0;
    double _hxn;
    double _cut;
};

} // namespace tlbpf

#endif // TLBPF_UTIL_RANDOM_HH
