#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace tlbpf
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : _s)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;

    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    tlbpf_assert(bound > 0, "nextBelow bound must be positive");
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    tlbpf_assert(lo <= hi, "nextRange requires lo <= hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double skew)
    : _n(n), _skew(skew)
{
    tlbpf_assert(n > 0, "ZipfSampler requires n > 0");
    tlbpf_assert(skew > 0.0 && skew != 1.0,
                 "ZipfSampler skew must be positive and != 1");
    _hx0 = h(0.5) - 1.0;
    _hxn = h(_n + 0.5);
    _cut = 1.0 - hInv(h(1.5) - 1.0);
}

double
ZipfSampler::h(double x) const
{
    return std::pow(x, 1.0 - _skew) / (1.0 - _skew);
}

double
ZipfSampler::hInv(double x) const
{
    return std::pow((1.0 - _skew) * x, 1.0 / (1.0 - _skew));
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    while (true) {
        double u = _hxn + rng.nextDouble() * (_hx0 - _hxn);
        double x = hInv(u);
        auto k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > _n)
            k = _n;
        if (k - x <= _cut || u >= h(k + 0.5) - std::pow(k, -_skew))
            return k - 1; // ranks are zero-based
    }
}

} // namespace tlbpf
