#include "util/check.hh"

#include <cstdio>
#include <cstdlib>

namespace tlbpf
{

namespace detail
{

namespace
{

[[noreturn]] void
abortingHandler(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "%s:%d: %s\n", file, line, msg.c_str());
    std::fflush(stderr);
    std::abort();
}

CheckFailHandler g_handler = nullptr;

} // namespace

CheckFailHandler
setCheckFailHandler(CheckFailHandler handler)
{
    CheckFailHandler previous = g_handler;
    g_handler = handler;
    return previous;
}

void
checkFail(const char *file, int line, const std::string &msg)
{
    if (g_handler)
        g_handler(file, line, msg);
    abortingHandler(file, line, msg);
}

} // namespace detail

namespace
{

[[noreturn]] void
throwingHandler(const char *file, int line, const std::string &msg)
{
    throw CheckFailure(std::string(file) + ":" + std::to_string(line) +
                       ": " + msg);
}

} // namespace

ScopedCheckFailThrow::ScopedCheckFailThrow()
    : _previous(detail::setCheckFailHandler(&throwingHandler))
{
}

ScopedCheckFailThrow::~ScopedCheckFailThrow()
{
    detail::setCheckFailHandler(_previous);
}

} // namespace tlbpf
