/**
 * @file
 * gem5-style status/error reporting for the tlbpf library.
 *
 * Severity discipline (mirrors gem5's base/logging.hh):
 *  - panic():  an internal invariant was violated — a bug in tlbpf itself.
 *              Aborts so a debugger/core dump can capture the state.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments).  Exits with code 1.
 *  - warn():   something is questionable but the run can continue.
 *  - inform(): normal operational status.
 */

#ifndef TLBPF_UTIL_LOGGING_HH
#define TLBPF_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace tlbpf
{

/** Verbosity levels for the global logger. */
enum class LogLevel
{
    Quiet,   ///< only fatal/panic output
    Normal,  ///< warnings and informational messages
    Verbose  ///< additionally, debug messages
};

/** Process-wide logging configuration. */
class Logger
{
  public:
    /** Returns the singleton logger. */
    static Logger &instance();

    LogLevel level() const { return _level; }
    void level(LogLevel lvl) { _level = lvl; }

    /** Emit a message at the given severity label. */
    void emit(const char *label, const std::string &msg);

    /** Number of warnings emitted so far (used by tests). */
    std::uint64_t warnCount() const { return _warnCount; }
    void countWarning() { ++_warnCount; }

  private:
    Logger() = default;

    LogLevel _level = LogLevel::Normal;
    std::uint64_t _warnCount = 0;
};

namespace detail
{

/** Formats a parameter pack into a string via operator<<. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    ((oss << std::forward<Args>(args)), ...);
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace tlbpf

/** Abort on an internal tlbpf bug; never returns. */
#define tlbpf_panic(...) \
    ::tlbpf::detail::panicImpl(__FILE__, __LINE__, \
                               ::tlbpf::detail::format(__VA_ARGS__))

/** Exit(1) on an unrecoverable user/configuration error; never returns. */
#define tlbpf_fatal(...) \
    ::tlbpf::detail::fatalImpl(__FILE__, __LINE__, \
                               ::tlbpf::detail::format(__VA_ARGS__))

/** Warn but continue. */
#define tlbpf_warn(...) \
    ::tlbpf::detail::warnImpl(::tlbpf::detail::format(__VA_ARGS__))

/** Informational status message. */
#define tlbpf_inform(...) \
    ::tlbpf::detail::informImpl(::tlbpf::detail::format(__VA_ARGS__))

/** Panic if an invariant does not hold. */
#define tlbpf_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            tlbpf_panic("assertion '" #cond "' failed: ", \
                        ::tlbpf::detail::format(__VA_ARGS__)); \
        } \
    } while (0)

#endif // TLBPF_UTIL_LOGGING_HH
