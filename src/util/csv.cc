#include "util/csv.hh"

#include "util/logging.hh"

namespace tlbpf
{

CsvWriter::CsvWriter(const std::string &path)
    : _out(path)
{
    if (!_out)
        tlbpf_fatal("cannot open CSV output file '", path, "'");
    _open = true;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    tlbpf_assert(_open, "write to closed CsvWriter");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            _out << ',';
        _out << quote(cells[i]);
    }
    _out << '\n';
}

void
CsvWriter::close()
{
    if (_open) {
        _out.flush();
        _out.close();
        _open = false;
    }
}

CsvWriter::~CsvWriter()
{
    close();
}

std::string
CsvWriter::quote(const std::string &cell)
{
    bool needs = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace tlbpf
