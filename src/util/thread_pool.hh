/**
 * @file
 * A fixed-size worker pool with a work-stealing scheduler for
 * deterministic fan-out.
 *
 * The pool exposes two primitives:
 *
 *   parallelFor(n, fn)                   invoke fn(i) for every index
 *                                        in [0, n), assuming all
 *                                        indices cost about the same
 *   parallelForWeighted(n, weights, fn)  the same, with a per-index
 *                                        relative cost estimate that
 *                                        seeds the schedule
 *
 * Scheduling: every thread (the calling thread participates as worker
 * 0) owns a Chase–Lev-style WorkDeque.  Batch indices are placed into
 * the deques up front — round-robin for uniform batches, a
 * longest-processing-time greedy placement (heaviest index to the
 * least-loaded worker) for weighted ones — and each worker drains its
 * own deque LIFO from the bottom, heaviest first.  A worker whose
 * deque runs dry *steals* the oldest (lightest) index from a
 * randomized sequence of victims, so tail imbalance — one worker
 * stuck with a 50x cell while the others idle — self-corrects.  When
 * every deque is dry but jobs are still in flight, the thief backs
 * off exponentially (yield, then escalating micro-sleeps) instead of
 * burning a core.
 *
 * Determinism is the *caller's* contract exactly as before: fn must
 * write only to per-index state (e.g. slot i of a pre-sized results
 * vector), so the outcome is identical for any thread count and any
 * steal interleaving, including a pool of 1 — which spawns no workers
 * and drains the (single) deque inline.  Exceptions thrown by fn are
 * captured and the one with the lowest index is rethrown on the
 * calling thread after the batch drains, which keeps error reporting
 * deterministic under stealing too; every per-index slot is still
 * written.  The callable is taken by const reference all the way down
 * (a function-pointer thunk, not std::function), so a batch
 * submission allocates nothing for the callable.
 *
 * Telemetry: the pool records per-worker executed-job counts, busy
 * time, steal counts and backoff events for the most recent batch,
 * plus the seeded-load imbalance of the LPT placement — see
 * BatchStats.  Reading lastBatchStats() is only valid between
 * batches.
 */

#ifndef TLBPF_UTIL_THREAD_POOL_HH
#define TLBPF_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "util/work_deque.hh"

namespace tlbpf
{

/** Fixed-size worker pool with work-stealing parallel-for. */
class ThreadPool
{
  public:
    /** Per-worker telemetry for the most recent batch. */
    struct WorkerStats
    {
        std::uint64_t jobs = 0;     ///< indices this worker executed
        std::uint64_t steals = 0;   ///< of which were stolen
        std::uint64_t backoffs = 0; ///< dry sweeps over every deque
        double busySeconds = 0;     ///< time spent inside fn
    };

    /** Whole-batch telemetry (see lastBatchStats()). */
    struct BatchStats
    {
        std::size_t jobs = 0;      ///< batch size n
        double seconds = 0;        ///< wall-clock of the batch
        /**
         * Max over workers of seeded weight / ideal (total/threads):
         * 1.0 is a perfectly balanced placement; stealing is what
         * covers the gap between this estimate and reality.
         */
        double lptImbalance = 1.0;
        std::vector<WorkerStats> workers; ///< one per thread

        std::uint64_t stealEvents() const;
        std::uint64_t backoffEvents() const;
        /** Min/max over workers of busySeconds / batch seconds. */
        double busyFractionMin() const;
        double busyFractionMax() const;
    };

    /**
     * @param threads total concurrency including the calling thread;
     *                0 selects defaultThreadCount().  A pool of size
     *                1 spawns no workers at all and both primitives
     *                run inline.
     */
    explicit ThreadPool(unsigned threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Concurrency (calling thread + workers). */
    unsigned threadCount() const { return _threads; }

    /**
     * Run fn(0) .. fn(n-1) across the pool and block until all have
     * returned.  The calling thread participates.  If any invocation
     * throws, the remaining indices still run and the lowest-index
     * exception is rethrown here.
     */
    template <typename Fn>
    void
    parallelFor(std::size_t n, const Fn &fn)
    {
        runBatch(n, nullptr, &invokeThunk<Fn>, &fn);
    }

    /**
     * parallelFor with a per-index relative cost estimate:
     * @p weights[i] is the expected cost of fn(i) in any consistent
     * unit (a zero weight is treated as 1).  The estimates seed the
     * deques with an LPT placement so wildly uneven batches start
     * balanced; stealing corrects whatever the estimate gets wrong.
     * @p weights must stay valid until the call returns.
     */
    template <typename Fn>
    void
    parallelForWeighted(std::size_t n, const std::uint64_t *weights,
                        const Fn &fn)
    {
        runBatch(n, weights, &invokeThunk<Fn>, &fn);
    }

    /** Convenience: weights as a vector sized to the batch. */
    template <typename Fn>
    void
    parallelForWeighted(const std::vector<std::uint64_t> &weights,
                        const Fn &fn)
    {
        runBatch(weights.size(), weights.data(), &invokeThunk<Fn>,
                 &fn);
    }

    /**
     * Telemetry of the most recent batch.  Valid from the return of
     * the batch that produced it until the next batch is submitted;
     * never touch it concurrently with a running batch.
     */
    const BatchStats &lastBatchStats() const { return _stats; }

    /** std::thread::hardware_concurrency(), clamped to at least 1. */
    static unsigned defaultThreadCount();

  private:
    /** Type-erased, non-owning view of the batch callable. */
    using BatchThunk = void (*)(const void *, std::size_t);

    template <typename Fn>
    static void
    invokeThunk(const void *ctx, std::size_t index)
    {
        (*static_cast<const Fn *>(ctx))(index);
    }

    /**
     * One worker's scheduler state, padded so two workers never share
     * a cache line of hot metadata.  Slot 0 belongs to the calling
     * thread; slots 1.. to the spawned workers.
     */
    struct alignas(64) WorkerSlot
    {
        WorkDeque deque;
        // Telemetry, written only by the owning worker during a
        // batch and read by the caller after the drain.
        std::uint64_t jobs = 0;
        std::uint64_t steals = 0;
        std::uint64_t backoffs = 0;
        double busySeconds = 0;
        // Lowest failing index this worker has seen, SIZE_MAX if
        // none; exceptions are aggregated across slots after the
        // batch so the lowest submission index wins globally.
        std::size_t errorIndex =
            std::numeric_limits<std::size_t>::max();
        std::exception_ptr error;
        std::uint64_t rng = 0; ///< xorshift state for victim choice
        std::vector<std::size_t> seed; ///< LPT staging, reused
    };

    void runBatch(std::size_t n, const std::uint64_t *weights,
                  BatchThunk invoke, const void *ctx);
    void seedDeques(std::size_t n, const std::uint64_t *weights);
    void schedLoop(unsigned self);
    void runOne(unsigned self, std::size_t index, bool stolen);
    bool stealOne(unsigned self, std::size_t &index);
    void workerLoop(unsigned self);
    void collectStats(std::size_t n, double seconds);
    void rethrowLowestIndexError();

    unsigned _threads;
    std::vector<std::thread> _workers;
    std::vector<WorkerSlot> _slots; ///< one per thread, 0 = caller

    std::mutex _mutex;
    std::condition_variable _wake; ///< workers wait for a batch
    std::condition_variable _done; ///< caller waits for the drain

    // In-flight batch state.  _generation bumps once per batch so
    // sleeping workers can tell a new batch from a spurious wakeup;
    // _remaining counts not-yet-finished indices and doubles as the
    // batch-done signal for thieves in backoff.
    std::uint64_t _generation = 0;
    bool _stopping = false;
    BatchThunk _invoke = nullptr;
    const void *_ctx = nullptr;
    std::atomic<std::size_t> _remaining{0};
    unsigned _active = 0; ///< workers still inside the current batch

    BatchStats _stats;
    std::vector<std::uint64_t> _loads; ///< LPT scratch, reused
    std::vector<std::size_t> _order;   ///< LPT scratch, reused
};

} // namespace tlbpf

#endif // TLBPF_UTIL_THREAD_POOL_HH
