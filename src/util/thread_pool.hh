/**
 * @file
 * A small fixed-size worker pool for deterministic fan-out.
 *
 * The pool exposes one primitive, parallelFor(n, fn): invoke fn(i)
 * for every index in [0, n), spread across the pool's threads, and
 * block until all indices are done.  Work is handed out through an
 * atomic cursor, so threads never contend on a lock in the steady
 * state; determinism is the *caller's* contract — fn must write only
 * to per-index state (e.g. slot i of a pre-sized results vector) so
 * that the outcome is identical for any thread count, including 1.
 *
 * Exceptions thrown by fn are captured per index and the one with the
 * lowest index is rethrown on the calling thread after the batch
 * drains, which keeps error reporting deterministic too.
 */

#ifndef TLBPF_UTIL_THREAD_POOL_HH
#define TLBPF_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tlbpf
{

/** Fixed-size pool of worker threads with a parallel-for primitive. */
class ThreadPool
{
  public:
    /**
     * @param threads total concurrency including the calling thread;
     *                0 selects defaultThreadCount().  A pool of size
     *                1 spawns no workers at all and parallelFor runs
     *                inline, byte-for-byte the serial loop.
     */
    explicit ThreadPool(unsigned threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Concurrency (calling thread + workers). */
    unsigned threadCount() const { return _threads; }

    /**
     * Run fn(0) .. fn(n-1) across the pool and block until all have
     * returned.  The calling thread participates.  If any invocation
     * throws, the remaining indices still run and the lowest-index
     * exception is rethrown here.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** std::thread::hardware_concurrency(), clamped to at least 1. */
    static unsigned defaultThreadCount();

  private:
    void workerLoop();
    void runIndices(const std::function<void(std::size_t)> &fn);
    void rethrowFirstError();

    unsigned _threads;
    std::vector<std::thread> _workers;

    std::mutex _mutex;
    std::condition_variable _wake; ///< workers wait for a batch
    std::condition_variable _done; ///< caller waits for the drain

    // State of the in-flight batch, guarded by _mutex except where
    // noted.  _generation bumps once per batch so sleeping workers
    // can tell a new batch from a spurious wakeup.
    std::uint64_t _generation = 0;
    bool _stopping = false;
    std::size_t _batchSize = 0;
    const std::function<void(std::size_t)> *_batchFn = nullptr;
    std::atomic<std::size_t> _cursor{0};
    unsigned _active = 0; ///< workers still inside the current batch
    std::vector<std::exception_ptr> _errors;
};

} // namespace tlbpf

#endif // TLBPF_UTIL_THREAD_POOL_HH
