#include "util/snapshot.hh"

#include <stdexcept>

namespace tlbpf
{

void
SnapshotReader::need(std::size_t count) const
{
    // Overflow-safe: _cursor <= size() always holds, so the
    // subtraction cannot wrap even for hostile length fields.
    if (count > _bytes.size() - _cursor)
        fail("snapshot truncated (needed " + std::to_string(count) +
             " more bytes at offset " + std::to_string(_cursor) +
             " of " + std::to_string(_bytes.size()) + ")");
}

std::uint8_t
SnapshotReader::u8()
{
    need(1);
    return _bytes[_cursor++];
}

std::uint32_t
SnapshotReader::u32()
{
    need(4);
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8)
        value |= static_cast<std::uint32_t>(_bytes[_cursor++]) << shift;
    return value;
}

std::uint64_t
SnapshotReader::u64()
{
    need(8);
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8)
        value |= static_cast<std::uint64_t>(_bytes[_cursor++]) << shift;
    return value;
}

std::string
SnapshotReader::str()
{
    std::uint64_t size = u64();
    need(size);
    std::string out(_bytes.begin() + static_cast<std::ptrdiff_t>(_cursor),
                    _bytes.begin() +
                        static_cast<std::ptrdiff_t>(_cursor + size));
    _cursor += size;
    return out;
}

void
SnapshotReader::fail(const std::string &why)
{
    throw std::invalid_argument("invalid simulator checkpoint: " + why);
}

} // namespace tlbpf
