/**
 * @file
 * ASCII table emitter used by the bench binaries to print paper-style
 * tables and figure series.
 */

#ifndef TLBPF_UTIL_TABLE_PRINTER_HH
#define TLBPF_UTIL_TABLE_PRINTER_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace tlbpf
{

/**
 * Accumulates rows of string cells and renders them with aligned
 * columns, a header rule and an optional caption.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header);

    /** Set a caption printed above the table. */
    void caption(std::string text) { _caption = std::move(text); }

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render to a stream. */
    void print(std::ostream &os) const;

    /** Render to stdout. */
    void print() const;

    std::size_t rows() const { return _rows.size(); }

    /** Format a double with @p precision fractional digits. */
    static std::string num(double v, int precision = 3);

    /** Format an integer. */
    static std::string num(std::int64_t v);
    static std::string num(std::uint64_t v);

  private:
    std::string _caption;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace tlbpf

#endif // TLBPF_UTIL_TABLE_PRINTER_HH
