/**
 * @file
 * CSV emission for machine-readable experiment output alongside the
 * human-readable tables.
 */

#ifndef TLBPF_UTIL_CSV_HH
#define TLBPF_UTIL_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace tlbpf
{

/** Streams rows of cells into a CSV file with RFC-4180 quoting. */
class CsvWriter
{
  public:
    /** Opens @p path for writing; fatal on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write one row. */
    void writeRow(const std::vector<std::string> &cells);

    /** Flush and close. Safe to call more than once. */
    void close();

    ~CsvWriter();

    /** Quote a cell if it contains a comma, quote or newline. */
    static std::string quote(const std::string &cell);

  private:
    std::ofstream _out;
    bool _open = false;
};

} // namespace tlbpf

#endif // TLBPF_UTIL_CSV_HH
