#include "mem/page_table.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"
#include "util/random.hh"

namespace tlbpf
{

PageTableEntry &
PageTable::lookup(Vpn vpn)
{
    auto [it, inserted] = _entries.try_emplace(vpn);
    if (inserted) {
        // Deterministic pseudo-random frame assignment; the frame value
        // itself never feeds back into prefetching decisions.
        it->second.pfn = mix64(vpn) & ((1ull << 40) - 1);
        it->second.next = kNoPage;
        it->second.prev = kNoPage;
        it->second.inStack = false;
    }
    return it->second;
}

const PageTableEntry *
PageTable::find(Vpn vpn) const
{
    auto it = _entries.find(vpn);
    return it == _entries.end() ? nullptr : &it->second;
}

PageTableEntry *
PageTable::find(Vpn vpn)
{
    auto it = _entries.find(vpn);
    return it == _entries.end() ? nullptr : &it->second;
}

void
PageTable::clear()
{
    _entries.clear();
}

void
PageTable::snapshotState(SnapshotWriter &out) const
{
    std::vector<std::pair<Vpn, const PageTableEntry *>> entries;
    entries.reserve(_entries.size());
    for (const auto &[vpn, pte] : _entries)
        entries.emplace_back(vpn, &pte);
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    out.u64(entries.size());
    for (const auto &[vpn, pte] : entries) {
        out.u64(vpn);
        out.u64(pte->pfn);
        out.u64(pte->next);
        out.u64(pte->prev);
        out.boolean(pte->inStack);
    }
}

void
PageTable::restoreState(SnapshotReader &in)
{
    _entries.clear();
    std::uint64_t count = in.u64();
    // 33 bytes per serialized PTE: a corrupt count field must fail
    // with the clean checkpoint error, not a length_error/bad_alloc
    // from reserve().
    if (count > in.remaining() / 33)
        SnapshotReader::fail(
            "page table entry count " + std::to_string(count) +
            " exceeds the checkpoint's remaining bytes");
    _entries.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Vpn vpn = in.u64();
        PageTableEntry pte;
        pte.pfn = in.u64();
        pte.next = in.u64();
        pte.prev = in.u64();
        pte.inStack = in.boolean();
        if (!_entries.emplace(vpn, pte).second)
            SnapshotReader::fail("duplicate page table entry in "
                                 "checkpoint");
    }
}

bool
RecencyStack::contains(Vpn vpn) const
{
    const PageTableEntry *pte = _pt.find(vpn);
    return pte && pte->inStack;
}

void
RecencyStack::unlink(Vpn vpn, UpdateResult &res)
{
    PageTableEntry &pte = _pt.lookup(vpn);
    tlbpf_assert(pte.inStack, "unlink of page not in recency stack");

    if (pte.prev != kNoPage) {
        res.neighbors[res.numNeighbors++] = pte.prev;
        _pt.lookup(pte.prev).next = pte.next;
        ++res.pointerOps;
    } else {
        tlbpf_assert(_top == vpn, "stack head corrupted");
        _top = pte.next;
        ++res.pointerOps;
    }
    if (pte.next != kNoPage) {
        res.neighbors[res.numNeighbors++] = pte.next;
        _pt.lookup(pte.next).prev = pte.prev;
        ++res.pointerOps;
    }

    pte.next = kNoPage;
    pte.prev = kNoPage;
    pte.inStack = false;
    --_linked;
}

void
RecencyStack::push(Vpn vpn, UpdateResult &res)
{
    PageTableEntry &pte = _pt.lookup(vpn);
    tlbpf_assert(!pte.inStack,
                 "push of page already in recency stack: ", vpn);

    pte.prev = kNoPage;
    pte.next = _top;
    ++res.pointerOps;
    if (_top != kNoPage) {
        _pt.lookup(_top).prev = vpn;
        ++res.pointerOps;
    }
    _top = vpn;
    pte.inStack = true;
    ++_linked;
}

RecencyStack::UpdateResult
RecencyStack::onMiss(Vpn missed, Vpn evicted, unsigned reach)
{
    tlbpf_assert(reach >= 1 && 2 * reach <= kMaxNeighbors,
                 "unsupported recency reach ", reach);
    UpdateResult res;
    PageTableEntry &pte = _pt.lookup(missed);
    if (pte.inStack && reach > 1) {
        // Record the wider neighbourhood (closest first per side)
        // before unlink() rewires and reports the immediate pair.
        Vpn up = pte.prev;
        Vpn down = pte.next;
        for (unsigned step = 1; step < reach; ++step) {
            if (up != kNoPage)
                up = _pt.lookup(up).prev;
            if (down != kNoPage)
                down = _pt.lookup(down).next;
        }
        unlink(missed, res);
        if (up != kNoPage)
            res.neighbors[res.numNeighbors++] = up;
        if (down != kNoPage)
            res.neighbors[res.numNeighbors++] = down;
    } else if (pte.inStack) {
        unlink(missed, res);
    }
    if (evicted != kNoPage) {
        // A page evicted from the TLB cannot already be linked: it left
        // the stack when it last missed into the TLB.
        push(evicted, res);
    }
    return res;
}

void
RecencyStack::snapshotState(SnapshotWriter &out) const
{
    out.u64(_top);
    out.u64(_linked);
}

void
RecencyStack::restoreState(SnapshotReader &in)
{
    _top = in.u64();
    _linked = static_cast<std::size_t>(in.u64());
}

void
RecencyStack::reset()
{
    // Walk the stack unlinking everything.
    Vpn cur = _top;
    while (cur != kNoPage) {
        PageTableEntry &pte = _pt.lookup(cur);
        Vpn next = pte.next;
        pte.next = kNoPage;
        pte.prev = kNoPage;
        pte.inStack = false;
        cur = next;
    }
    _top = kNoPage;
    _linked = 0;
}

} // namespace tlbpf
