#include "mem/page_table.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"
#include "util/random.hh"

namespace tlbpf
{

namespace
{

/** Map bucket sentinel for "no entry hashed here". */
constexpr std::uint32_t kEmptySlot = UINT32_MAX;

/** Initial bucket count; grown by doubling to keep load under 50%. */
constexpr std::size_t kInitialBuckets = 1024;

/** splitmix64 finalizer: strong enough that probes stay short. */
inline std::uint64_t
hashVpn(Vpn vpn)
{
    std::uint64_t x = vpn + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

PageTable::PageTable()
    : _map(kInitialBuckets, kEmptySlot)
{
}

std::size_t
PageTable::probe(Vpn vpn) const
{
    std::size_t mask = _map.size() - 1;
    std::size_t b = hashVpn(vpn) & mask;
    while (_map[b] != kEmptySlot && _pool[_map[b]].vpn != vpn)
        b = (b + 1) & mask;
    return b;
}

void
PageTable::grow()
{
    std::vector<std::uint32_t> bigger(_map.size() * 2, kEmptySlot);
    std::size_t mask = bigger.size() - 1;
    for (std::size_t idx = 0; idx < _pool.size(); ++idx) {
        std::size_t b = hashVpn(_pool[idx].vpn) & mask;
        while (bigger[b] != kEmptySlot)
            b = (b + 1) & mask;
        bigger[b] = static_cast<std::uint32_t>(idx);
    }
    _map.swap(bigger);
}

PageTableEntry &
PageTable::lookup(Vpn vpn)
{
    std::size_t b = probe(vpn);
    if (_map[b] != kEmptySlot)
        return _pool[_map[b]].pte;
    if ((_pool.size() + 1) * 2 > _map.size()) {
        grow();
        b = probe(vpn);
    }
    if (_pool.size() >= kEmptySlot)
        tlbpf_fatal("page table footprint exceeds 2^32 - 1 pages");
    _map[b] = static_cast<std::uint32_t>(_pool.size());
    Slot &slot = _pool.emplace_back();
    slot.vpn = vpn;
    // Deterministic pseudo-random frame assignment; the frame value
    // itself never feeds back into prefetching decisions.
    slot.pte.pfn = mix64(vpn) & ((1ull << 40) - 1);
    return slot.pte;
}

const PageTableEntry *
PageTable::find(Vpn vpn) const
{
    std::size_t b = probe(vpn);
    return _map[b] == kEmptySlot ? nullptr : &_pool[_map[b]].pte;
}

PageTableEntry *
PageTable::find(Vpn vpn)
{
    std::size_t b = probe(vpn);
    return _map[b] == kEmptySlot ? nullptr : &_pool[_map[b]].pte;
}

void
PageTable::clear()
{
    _pool.clear();
    _map.assign(kInitialBuckets, kEmptySlot);
}

void
PageTable::snapshotState(SnapshotWriter &out) const
{
    std::vector<const Slot *> slots;
    slots.reserve(_pool.size());
    for (const Slot &slot : _pool)
        slots.push_back(&slot);
    std::sort(slots.begin(), slots.end(),
              [](const Slot *a, const Slot *b) {
                  return a->vpn < b->vpn;
              });
    out.u64(slots.size());
    for (const Slot *slot : slots) {
        out.u64(slot->vpn);
        out.u64(slot->pte.pfn);
        out.u64(slot->pte.next);
        out.u64(slot->pte.prev);
        out.boolean(slot->pte.inStack);
    }
}

void
PageTable::restoreState(SnapshotReader &in)
{
    clear();
    std::uint64_t count = in.u64();
    // 33 bytes per serialized PTE: a corrupt count field must fail
    // with the clean checkpoint error, not a length_error/bad_alloc
    // from an oversized allocation.
    if (count > in.remaining() / 33)
        SnapshotReader::fail(
            "page table entry count " + std::to_string(count) +
            " exceeds the checkpoint's remaining bytes");
    for (std::uint64_t i = 0; i < count; ++i) {
        Vpn vpn = in.u64();
        if (find(vpn))
            SnapshotReader::fail("duplicate page table entry in "
                                 "checkpoint");
        PageTableEntry &pte = lookup(vpn);
        pte.pfn = in.u64();
        pte.next = in.u64();
        pte.prev = in.u64();
        pte.inStack = in.boolean();
    }
}

bool
RecencyStack::contains(Vpn vpn) const
{
    const PageTableEntry *pte = _pt.find(vpn);
    return pte && pte->inStack;
}

void
RecencyStack::unlink(Vpn vpn, UpdateResult &res)
{
    PageTableEntry &pte = _pt.lookup(vpn);
    tlbpf_assert(pte.inStack, "unlink of page not in recency stack");

    if (pte.prev != kNoPage) {
        res.neighbors[res.numNeighbors++] = pte.prev;
        _pt.lookup(pte.prev).next = pte.next;
        ++res.pointerOps;
    } else {
        tlbpf_assert(_top == vpn, "stack head corrupted");
        _top = pte.next;
        ++res.pointerOps;
    }
    if (pte.next != kNoPage) {
        res.neighbors[res.numNeighbors++] = pte.next;
        _pt.lookup(pte.next).prev = pte.prev;
        ++res.pointerOps;
    }

    pte.next = kNoPage;
    pte.prev = kNoPage;
    pte.inStack = false;
    --_linked;
}

void
RecencyStack::push(Vpn vpn, UpdateResult &res)
{
    PageTableEntry &pte = _pt.lookup(vpn);
    tlbpf_assert(!pte.inStack,
                 "push of page already in recency stack: ", vpn);

    pte.prev = kNoPage;
    pte.next = _top;
    ++res.pointerOps;
    if (_top != kNoPage) {
        _pt.lookup(_top).prev = vpn;
        ++res.pointerOps;
    }
    _top = vpn;
    pte.inStack = true;
    ++_linked;
}

RecencyStack::UpdateResult
RecencyStack::onMiss(Vpn missed, Vpn evicted, unsigned reach)
{
    tlbpf_assert(reach >= 1 && 2 * reach <= kMaxNeighbors,
                 "unsupported recency reach ", reach);
    UpdateResult res;
    PageTableEntry &pte = _pt.lookup(missed);
    if (pte.inStack && reach > 1) {
        // Record the wider neighbourhood (closest first per side)
        // before unlink() rewires and reports the immediate pair.
        Vpn up = pte.prev;
        Vpn down = pte.next;
        for (unsigned step = 1; step < reach; ++step) {
            if (up != kNoPage)
                up = _pt.lookup(up).prev;
            if (down != kNoPage)
                down = _pt.lookup(down).next;
        }
        unlink(missed, res);
        if (up != kNoPage)
            res.neighbors[res.numNeighbors++] = up;
        if (down != kNoPage)
            res.neighbors[res.numNeighbors++] = down;
    } else if (pte.inStack) {
        unlink(missed, res);
    }
    if (evicted != kNoPage) {
        // A page evicted from the TLB cannot already be linked: it left
        // the stack when it last missed into the TLB.
        push(evicted, res);
    }
    return res;
}

void
RecencyStack::snapshotState(SnapshotWriter &out) const
{
    out.u64(_top);
    out.u64(_linked);
}

void
RecencyStack::restoreState(SnapshotReader &in)
{
    _top = in.u64();
    _linked = static_cast<std::size_t>(in.u64());
}

void
RecencyStack::reset()
{
    // Walk the stack unlinking everything.
    Vpn cur = _top;
    while (cur != kNoPage) {
        PageTableEntry &pte = _pt.lookup(cur);
        Vpn next = pte.next;
        pte.next = kNoPage;
        pte.prev = kNoPage;
        pte.inStack = false;
        cur = next;
    }
    _top = kNoPage;
    _linked = 0;
}

} // namespace tlbpf
