/**
 * @file
 * Serialising memory port for prefetch and prefetch-state traffic.
 *
 * Models the paper's Table 3 experiment: prefetch memory operations
 * (PTE fetches and RP's pointer updates) cost a fixed latency each and
 * serialise with one another, but — per the paper's deliberately
 * RP-favouring bias — do not contend with normal data traffic.
 */

#ifndef TLBPF_MEM_PREFETCH_CHANNEL_HH
#define TLBPF_MEM_PREFETCH_CHANNEL_HH

#include <cstdint>

namespace tlbpf
{

/** Simulation time in CPU cycles. */
using Tick = std::uint64_t;

/** A busy-until serialising channel with fixed per-operation cost. */
class PrefetchChannel
{
  public:
    /** @param op_cost cycles per memory operation (paper: 50). */
    explicit PrefetchChannel(Tick op_cost = 50) : _opCost(op_cost) {}

    /** Completion times of an issued batch. */
    struct Issue
    {
        Tick start = 0; ///< when the first op begins service
        Tick done = 0;  ///< when the last op completes
    };

    /**
     * Enqueue @p num_ops operations at time @p now.  Operations start
     * when the channel frees up and serialise.
     */
    Issue issue(Tick now, unsigned num_ops);

    /** True if the channel is still servicing earlier ops at @p now. */
    bool busyAt(Tick now) const { return _busyUntil > now; }

    Tick busyUntil() const { return _busyUntil; }
    Tick opCost() const { return _opCost; }

    /** Total operations ever issued (memory traffic metric). */
    std::uint64_t totalOps() const { return _totalOps; }

    /** Total cycles the channel spent busy. */
    Tick busyCycles() const { return _busyCycles; }

    void reset();

  private:
    Tick _opCost;
    Tick _busyUntil = 0;
    std::uint64_t _totalOps = 0;
    Tick _busyCycles = 0;
};

} // namespace tlbpf

#endif // TLBPF_MEM_PREFETCH_CHANNEL_HH
