/**
 * @file
 * Demand-populated page table plus the recency-stack links that the RP
 * mechanism stores inside the page table entries (Saulsbury et al.).
 *
 * RP is the only mechanism whose prediction state lives in memory: each
 * PTE carries two extra words (next/prev) threading an LRU stack of
 * pages evicted from the TLB.  The stack operations and their memory
 * cost accounting live in RecencyStack; the prefetcher in
 * prefetch/recency.cc is a thin client.
 */

#ifndef TLBPF_MEM_PAGE_TABLE_HH
#define TLBPF_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "trace/ref_stream.hh"
#include "util/snapshot.hh"

namespace tlbpf
{

/** Physical frame number. */
using Pfn = std::uint64_t;

/** One page table entry: translation plus RP's stack link words. */
struct PageTableEntry
{
    Pfn pfn = 0;
    /** RP recency-stack links; kNoPage when unlinked. */
    Vpn next = UINT64_MAX;
    Vpn prev = UINT64_MAX;
    bool inStack = false;
};

/** Sentinel meaning "no page". */
constexpr Vpn kNoPage = UINT64_MAX;

/**
 * Single-address-space page table.  Translations are allocated on first
 * touch with a deterministic VPN->PFN mapping (identity permuted by a
 * mix function, which is irrelevant to prefetching behaviour but keeps
 * the model honest about translation existence).
 */
class PageTable
{
  public:
    PageTable();

    /** Translate, allocating the PTE on first touch. */
    PageTableEntry &lookup(Vpn vpn);

    /** Translation without allocation; nullptr if never touched. */
    const PageTableEntry *find(Vpn vpn) const;
    PageTableEntry *find(Vpn vpn);

    /** Number of PTEs materialised (the footprint in pages). */
    std::size_t size() const { return _pool.size(); }

    /**
     * Bytes of extra page-table storage RP's two link words cost,
     * assuming 8-byte words (used by the Table 1 bench).
     */
    std::uint64_t recencyOverheadBytes() const { return size() * 16; }

    void clear();

    /**
     * Serialize every PTE (translation plus RP's stack links) in
     * ascending-VPN order, so the byte string is canonical even
     * though the backing container is unordered.
     */
    void snapshotState(SnapshotWriter &out) const;

    /** Restore state written by snapshotState(). */
    void restoreState(SnapshotReader &in);

  private:
    struct Slot
    {
        Vpn vpn = kNoPage;
        PageTableEntry pte;
    };

    /** Map bucket holding @p vpn, or the empty bucket it would use. */
    std::size_t probe(Vpn vpn) const;
    /** Double the bucket array and rehome every pool index. */
    void grow();

    /**
     * Entry pool plus an open-addressing vpn -> pool-index map (linear
     * probing, load kept under 50%).  A deque grows without relocating
     * elements, so the PageTableEntry references lookup()/find() hand
     * out stay valid for the table's lifetime — RecencyStack holds one
     * across further lookups.  Replaces unordered_map: translation is
     * on the per-miss path, and RP's stack maintenance does several
     * translations per miss, so the node-chasing bucket lists showed
     * up hard in the simulate-loop profile.
     */
    std::deque<Slot> _pool;
    std::vector<std::uint32_t> _map;
};

/**
 * The LRU stack of TLB-evicted pages used by Recency Prefetching,
 * threaded through the page table.  Tracks the number of memory word
 * operations performed so the timing model can charge them.
 *
 * Per the paper (Section 3.2): unlinking the missing page costs 2
 * references, pushing the evicted TLB entry costs 2, and fetching the
 * two stack neighbours for prefetching costs 2 more — up to 6 per miss.
 */
class RecencyStack
{
  public:
    explicit RecencyStack(PageTable &pt) : _pt(pt) {}

    /** Widest neighbourhood the 3-entry RP variant may request. */
    static constexpr unsigned kMaxNeighbors = 4;

    /** Result of a miss-time stack update. */
    struct UpdateResult
    {
        /** Stack neighbours of the missed page (prefetch candidates). */
        Vpn neighbors[kMaxNeighbors] = {kNoPage, kNoPage, kNoPage,
                                        kNoPage};
        unsigned numNeighbors = 0;
        /** Pointer-word memory operations performed (excl. prefetch). */
        unsigned pointerOps = 0;
    };

    /**
     * Handle a TLB miss to @p missed while the TLB evicted
     * @p evicted (kNoPage if the TLB had a free slot).
     *
     * Removes @p missed from the stack (recording its neighbours as
     * prefetch candidates) and pushes @p evicted on top.
     *
     * @param reach neighbours to record per side (1 = the paper's
     *              default two-entry RP; 2 enables the wider variant
     *              Saulsbury et al. discuss).  Closest first.
     */
    UpdateResult onMiss(Vpn missed, Vpn evicted, unsigned reach = 1);

    /** Stack top (most recently evicted page), kNoPage if empty. */
    Vpn top() const { return _top; }

    /** Number of pages currently linked in the stack. */
    std::size_t linkedCount() const { return _linked; }

    /** True if @p vpn is currently linked. */
    bool contains(Vpn vpn) const;

    void reset();

    /**
     * Serialize the stack head and link count.  The links themselves
     * live in the page table entries, so a full checkpoint must pair
     * this with PageTable::snapshotState().
     */
    void snapshotState(SnapshotWriter &out) const;

    /** Restore state written by snapshotState(). */
    void restoreState(SnapshotReader &in);

  private:
    void unlink(Vpn vpn, UpdateResult &res);
    void push(Vpn vpn, UpdateResult &res);

    PageTable &_pt;
    Vpn _top = kNoPage;
    std::size_t _linked = 0;
};

} // namespace tlbpf

#endif // TLBPF_MEM_PAGE_TABLE_HH
