#include "mem/prefetch_channel.hh"

#include "util/logging.hh"

namespace tlbpf
{

PrefetchChannel::Issue
PrefetchChannel::issue(Tick now, unsigned num_ops)
{
    Issue res;
    res.start = std::max(now, _busyUntil);
    res.done = res.start + static_cast<Tick>(num_ops) * _opCost;
    _busyUntil = res.done;
    _totalOps += num_ops;
    _busyCycles += res.done - res.start;
    return res;
}

void
PrefetchChannel::reset()
{
    _busyUntil = 0;
    _totalOps = 0;
    _busyCycles = 0;
}

} // namespace tlbpf
