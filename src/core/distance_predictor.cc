#include "core/distance_predictor.hh"

#include "util/bits.hh"

namespace tlbpf
{

DistancePredictor::DistancePredictor(
    const DistancePredictorConfig &config)
    : _config(config), _table(config.table)
{
    if (config.slots < 1 || config.slots > 8)
        tlbpf_fatal("distance predictor slots must be in [1, 8]");
}

void
DistancePredictor::observe(std::uint64_t unit,
                           std::vector<std::uint64_t> &predictions)
{
    ++_observations;
    if (!_hasPrevUnit) {
        _prevUnit = unit;
        _hasPrevUnit = true;
        return;
    }

    std::int64_t dist = static_cast<std::int64_t>(unit) -
                        static_cast<std::int64_t>(_prevUnit);

    // Step 4 of Figure 6: the previous distance's row learns the
    // current distance as a follower.  Done before the lookup so a
    // self-following distance (pure sequential) predicts from the
    // second miss onwards.
    if (_hasPrevDist) {
        Slots &slots = _table.findOrInsert(zigZagEncode(_prevDist));
        slots.setCapacity(_config.slots);
        slots.addOrPromote(dist);
    }

    // Steps 2-3: the current distance's row supplies predictions.
    if (Slots *slots = _table.find(zigZagEncode(dist))) {
        std::size_t n = std::min<std::size_t>(slots->size(),
                                              _config.slots);
        for (std::size_t i = 0; i < n; ++i) {
            std::int64_t predicted = (*slots)[i];
            std::int64_t target = static_cast<std::int64_t>(unit) +
                                  predicted;
            if (target >= 0)
                predictions.push_back(
                    static_cast<std::uint64_t>(target));
        }
    }

    _prevUnit = unit;
    _prevDist = dist;
    _hasPrevDist = true;
}

void
DistancePredictor::reset()
{
    _table.reset();
    _prevUnit = 0;
    _prevDist = 0;
    _hasPrevUnit = false;
    _hasPrevDist = false;
    _observations = 0;
}

void
DistancePredictor::snapshotState(SnapshotWriter &out) const
{
    _table.snapshotSlotState(out);
    out.u64(_prevUnit);
    out.i64(_prevDist);
    out.boolean(_hasPrevUnit);
    out.boolean(_hasPrevDist);
    out.u64(_observations);
}

void
DistancePredictor::restoreState(SnapshotReader &in)
{
    _table.restoreSlotState(in, _config.slots);
    _prevUnit = in.u64();
    _prevDist = in.i64();
    _hasPrevUnit = in.boolean();
    _hasPrevDist = in.boolean();
    _observations = in.u64();
}

std::uint64_t
DistancePredictor::storageBits() const
{
    const std::uint64_t tag_bits = 32;
    const std::uint64_t slot_bits = 32ull * _config.slots;
    return static_cast<std::uint64_t>(_config.table.rows) *
           (1 + tag_bits + slot_bits);
}

} // namespace tlbpf
