/**
 * @file
 * Generic on-chip prediction table used by the ASP, MP and DP engines.
 *
 * The table has @c r rows organised as direct-mapped, set-associative
 * (2/4-way) or fully-associative storage with true-LRU replacement
 * within a set, exactly the configurations swept in the paper's
 * Figures 7-9.  Rows are tagged with the full key so aliasing behaves
 * like hardware would.
 */

#ifndef TLBPF_CORE_PREDICTION_TABLE_HH
#define TLBPF_CORE_PREDICTION_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/bits.hh"
#include "util/logging.hh"
#include "util/snapshot.hh"

namespace tlbpf
{

/** Table indexing policy. */
enum class TableAssoc : std::uint32_t
{
    Direct = 1,
    TwoWay = 2,
    FourWay = 4,
    Full = 0
};

/** Short label used in figure legends: D, 2, 4, F. */
std::string assocLabel(TableAssoc assoc);

/** Parse "D"/"2"/"4"/"F" (fatal on anything else). */
TableAssoc parseAssoc(const std::string &label);

/** Geometry of a prediction table. */
struct TableConfig
{
    std::uint32_t rows = 256;
    TableAssoc assoc = TableAssoc::Direct;

    std::uint32_t
    ways() const
    {
        return assoc == TableAssoc::Full
                   ? rows
                   : static_cast<std::uint32_t>(assoc);
    }

    std::uint32_t numSets() const { return rows / ways(); }
};

/**
 * Tagged prediction table storing one Payload per row.
 *
 * @tparam Payload per-row prediction state (POD-ish, default
 *                 constructible).
 */
template <typename Payload>
class PredictionTable
{
  public:
    explicit PredictionTable(const TableConfig &config)
        : _config(config), _ways(config.ways())
    {
        if (config.rows == 0)
            tlbpf_fatal("prediction table needs rows");
        if (config.rows % _ways != 0) {
            tlbpf_fatal("rows (", config.rows,
                        ") not a multiple of ways (", _ways, ")");
        }
        if (!isPowerOfTwo(config.numSets()))
            tlbpf_fatal("prediction table sets must be a power of two");
        _rows.resize(config.rows);
    }

    /**
     * Look up @p key; returns the payload and refreshes LRU on a hit,
     * nullptr on a miss.
     */
    Payload *
    find(std::uint64_t key)
    {
        Row *row = findRow(key);
        if (!row)
            return nullptr;
        row->lastUse = ++_clock;
        ++_hits;
        return &row->payload;
    }

    /** Look up without disturbing LRU or counters. */
    const Payload *
    peek(std::uint64_t key) const
    {
        const Row *row =
            const_cast<PredictionTable *>(this)->findRow(key);
        return row ? &row->payload : nullptr;
    }

    /**
     * Look up @p key, allocating (and default-initialising) the row if
     * absent, evicting the set's LRU victim when full.
     */
    Payload &
    findOrInsert(std::uint64_t key)
    {
        if (Payload *p = find(key))
            return *p;
        ++_misses;
        std::size_t base = setBase(key);
        Row *victim = nullptr;
        for (std::size_t w = 0; w < _ways; ++w) {
            Row &row = _rows[base + w];
            if (!row.valid) {
                victim = &row;
                break;
            }
            if (!victim || row.lastUse < victim->lastUse)
                victim = &row;
        }
        if (victim->valid)
            ++_evictions;
        victim->valid = true;
        victim->key = key;
        victim->lastUse = ++_clock;
        victim->payload = Payload{};
        return victim->payload;
    }

    /** True if a row for @p key is resident. */
    bool contains(std::uint64_t key) const { return peek(key) != nullptr; }

    void
    reset()
    {
        for (Row &row : _rows)
            row.valid = false;
        _clock = 0;
        _hits = 0;
        _misses = 0;
        _evictions = 0;
    }

    const TableConfig &config() const { return _config; }
    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t evictions() const { return _evictions; }

    /** Number of valid rows (for occupancy diagnostics). */
    std::size_t
    occupancy() const
    {
        std::size_t n = 0;
        for (const Row &row : _rows)
            n += row.valid ? 1 : 0;
        return n;
    }

    /**
     * Serialize the table (LRU clock, hit/miss/eviction counters and
     * every valid row) into @p out.  @p write_payload emits one row's
     * Payload; rows are visited in physical order, so the byte string
     * is canonical for a given table state.
     */
    template <typename WritePayload>
    void
    snapshotState(SnapshotWriter &out, WritePayload &&write_payload) const
    {
        out.u64(_clock);
        out.u64(_hits);
        out.u64(_misses);
        out.u64(_evictions);
        out.u64(_rows.size());
        for (const Row &row : _rows) {
            out.boolean(row.valid);
            if (!row.valid)
                continue;
            out.u64(row.key);
            out.u64(row.lastUse);
            write_payload(out, row.payload);
        }
    }

    /**
     * Restore state written by snapshotState() into a table of the
     * same geometry; throws std::invalid_argument (via
     * SnapshotReader::fail) if the row count differs.
     */
    template <typename ReadPayload>
    void
    restoreState(SnapshotReader &in, ReadPayload &&read_payload)
    {
        _clock = in.u64();
        _hits = in.u64();
        _misses = in.u64();
        _evictions = in.u64();
        std::uint64_t rows = in.u64();
        if (rows != _rows.size())
            SnapshotReader::fail(
                "prediction table has " + std::to_string(rows) +
                " rows, expected " + std::to_string(_rows.size()));
        for (Row &row : _rows) {
            row.valid = in.boolean();
            if (!row.valid) {
                row.key = 0;
                row.lastUse = 0;
                row.payload = Payload{};
                continue;
            }
            row.key = in.u64();
            row.lastUse = in.u64();
            read_payload(in, row.payload);
        }
    }

    /**
     * snapshotState()/restoreState() for the common case of a SlotLru
     * payload (MP's successor pages, DP's distances): forwards each
     * row to the payload's own serializer, with @p slots as the
     * capacity every allocated row must carry.  Only instantiated by
     * tables whose Payload provides the methods.
     */
    void
    snapshotSlotState(SnapshotWriter &out) const
    {
        snapshotState(out, [](SnapshotWriter &w, const Payload &p) {
            p.snapshotState(w);
        });
    }

    void
    restoreSlotState(SnapshotReader &in, std::size_t slots)
    {
        restoreState(in, [slots](SnapshotReader &r, Payload &p) {
            p.restoreState(r, slots);
        });
    }

  private:
    struct Row
    {
        std::uint64_t key = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        Payload payload{};
    };

    std::size_t
    setBase(std::uint64_t key) const
    {
        return (key & (_config.numSets() - 1)) *
               static_cast<std::size_t>(_ways);
    }

    Row *
    findRow(std::uint64_t key)
    {
        std::size_t base = setBase(key);
        for (std::size_t w = 0; w < _ways; ++w) {
            Row &row = _rows[base + w];
            if (row.valid && row.key == key)
                return &row;
        }
        return nullptr;
    }

    TableConfig _config;
    std::uint32_t _ways;
    std::vector<Row> _rows;
    std::uint64_t _clock = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _evictions = 0;
};

/**
 * Fixed-capacity LRU-ordered slot list: the per-row payload used by MP
 * (predicted pages) and DP (predicted distances).  Front = MRU.
 */
template <typename T, std::size_t MaxSlots = 8>
class SlotLru
{
  public:
    explicit SlotLru(std::size_t capacity) : _capacity(capacity)
    {
        tlbpf_assert(capacity >= 1 && capacity <= MaxSlots,
                     "slot capacity out of range");
    }

    SlotLru() : _capacity(2) {}

    /**
     * Record @p value: promote to MRU if present, otherwise insert at
     * MRU evicting the LRU slot when full.
     */
    void
    addOrPromote(const T &value)
    {
        for (std::size_t i = 0; i < _size; ++i) {
            if (_slots[i] == value) {
                // rotate [0, i] right so value lands at front
                for (std::size_t j = i; j > 0; --j)
                    _slots[j] = _slots[j - 1];
                _slots[0] = value;
                return;
            }
        }
        std::size_t limit = std::min(_size + 1, _capacity);
        for (std::size_t j = limit - 1; j > 0; --j)
            _slots[j] = _slots[j - 1];
        _slots[0] = value;
        _size = limit;
    }

    std::size_t size() const { return _size; }
    std::size_t capacity() const { return _capacity; }
    const T &operator[](std::size_t i) const { return _slots[i]; }

    /**
     * Adjust capacity (used right after a row is allocated, since the
     * table default-constructs payloads).  Shrinking drops LRU slots.
     */
    void
    setCapacity(std::size_t capacity)
    {
        tlbpf_assert(capacity >= 1 && capacity <= MaxSlots,
                     "slot capacity out of range");
        _capacity = capacity;
        if (_size > _capacity)
            _size = _capacity;
    }

    void clear() { _size = 0; }

    /** Serialize capacity, occupancy and slots in LRU order. */
    void
    snapshotState(SnapshotWriter &out) const
    {
        out.u64(_capacity);
        out.u64(_size);
        for (std::size_t i = 0; i < _size; ++i)
            out.u64(static_cast<std::uint64_t>(_slots[i]));
    }

    /**
     * Restore state written by snapshotState().  The serialized
     * capacity must equal @p expected_capacity (the owning
     * mechanism's slots parameter) — like every other component,
     * restoring into a different geometry throws rather than silently
     * reshaping the table.
     */
    void
    restoreState(SnapshotReader &in, std::size_t expected_capacity)
    {
        std::uint64_t capacity = in.u64();
        std::uint64_t size = in.u64();
        if (capacity != expected_capacity)
            SnapshotReader::fail(
                "slot list capacity " + std::to_string(capacity) +
                ", expected " + std::to_string(expected_capacity));
        if (capacity < 1 || capacity > MaxSlots || size > capacity)
            SnapshotReader::fail("slot list shape out of range");
        _capacity = static_cast<std::size_t>(capacity);
        _size = static_cast<std::size_t>(size);
        for (std::size_t i = 0; i < MaxSlots; ++i)
            _slots[i] = i < _size ? static_cast<T>(in.u64()) : T{};
    }

  private:
    std::size_t _capacity;
    std::size_t _size = 0;
    T _slots[MaxSlots]{};
};

} // namespace tlbpf

#endif // TLBPF_CORE_PREDICTION_TABLE_HH
