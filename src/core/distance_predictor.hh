/**
 * @file
 * The paper's primary contribution, packaged as a reusable component.
 *
 * DistancePredictor observes a stream of unit numbers (TLB pages here,
 * but equally cache lines or disk blocks — the paper notes DP "can
 * possibly be used in the context of caches, I/O etc.") and predicts
 * the units likely to be needed next.
 *
 * State: the previous unit and the previous distance, plus a prediction
 * table indexed by *distance* whose rows hold the distances that
 * historically followed that distance (LRU-ordered, up to @c s slots).
 *
 * On observing unit u (paper Figure 6):
 *   1. dist = u - prevUnit
 *   2. the row for prevDist learns dist as a follower
 *   3. the row for dist supplies up to s predicted distances d_i;
 *      predictions are u + d_i
 *   4. prevUnit = u, prevDist = dist
 *
 * A sequential scan therefore needs exactly one row (1 -> 1); a Markov
 * predictor would need one row per unit touched.
 */

#ifndef TLBPF_CORE_DISTANCE_PREDICTOR_HH
#define TLBPF_CORE_DISTANCE_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "core/prediction_table.hh"

namespace tlbpf
{

/** Configuration of a distance predictor. */
struct DistancePredictorConfig
{
    TableConfig table{256, TableAssoc::Direct};
    /** Prediction slots per row (the paper's s, typically 2-4). */
    std::uint32_t slots = 2;
};

/** Generic distance-based next-unit predictor. */
class DistancePredictor
{
  public:
    explicit DistancePredictor(const DistancePredictorConfig &config);

    /**
     * Observe the next unit in the stream and append predicted future
     * units to @p predictions (not cleared; at most @c slots added).
     */
    void observe(std::uint64_t unit,
                 std::vector<std::uint64_t> &predictions);

    /** Forget all history (e.g. on context switch). */
    void reset();

    /** Serialize the table and the prev-unit/prev-distance history. */
    void snapshotState(SnapshotWriter &out) const;

    /** Restore state written by snapshotState(); throws on mismatch. */
    void restoreState(SnapshotReader &in);

    const DistancePredictorConfig &config() const { return _config; }

    /** Diagnostics. */
    std::uint64_t observations() const { return _observations; }
    std::uint64_t tableHits() const { return _table.hits(); }
    std::uint64_t tableEvictions() const { return _table.evictions(); }
    std::size_t tableOccupancy() const { return _table.occupancy(); }

    /**
     * Estimated on-chip storage in bits: per row a valid bit, a
     * distance tag and s distance slots (32-bit distances).
     */
    std::uint64_t storageBits() const;

  private:
    using Slots = SlotLru<std::int64_t>;

    DistancePredictorConfig _config;
    PredictionTable<Slots> _table;

    std::uint64_t _prevUnit = 0;
    std::int64_t _prevDist = 0;
    bool _hasPrevUnit = false;
    bool _hasPrevDist = false;
    std::uint64_t _observations = 0;
};

} // namespace tlbpf

#endif // TLBPF_CORE_DISTANCE_PREDICTOR_HH
