#include "core/prediction_table.hh"

namespace tlbpf
{

std::string
assocLabel(TableAssoc assoc)
{
    switch (assoc) {
      case TableAssoc::Direct:
        return "D";
      case TableAssoc::TwoWay:
        return "2";
      case TableAssoc::FourWay:
        return "4";
      case TableAssoc::Full:
        return "F";
    }
    tlbpf_panic("unreachable assoc value");
}

TableAssoc
parseAssoc(const std::string &label)
{
    if (label == "D" || label == "d" || label == "1")
        return TableAssoc::Direct;
    if (label == "2")
        return TableAssoc::TwoWay;
    if (label == "4")
        return TableAssoc::FourWay;
    if (label == "F" || label == "f")
        return TableAssoc::Full;
    tlbpf_fatal("bad table associativity '", label,
                "' (expected D, 2, 4 or F)");
}

} // namespace tlbpf
