/**
 * @file
 * The unit of work of the sweep engine: one simulation cell.
 *
 * Every figure and table in the paper is a sweep over
 * (application × mechanism × geometry) cells.  A SweepJob captures
 * one such cell as a plain value — application model name, prefetcher
 * spec, reference budget, simulator geometry, and whether the cell
 * runs under the functional or the timing model — so a whole figure
 * is just a std::vector<SweepJob> that can be executed in any order
 * on any number of threads.  Each job builds its own stream and
 * simulator state when it runs; nothing is shared mutably between
 * cells.
 */

#ifndef TLBPF_RUN_JOB_HH
#define TLBPF_RUN_JOB_HH

#include <string>

#include "prefetch/factory.hh"
#include "sim/functional_sim.hh"
#include "sim/timing_sim.hh"

namespace tlbpf
{

/** Which simulator a cell runs under. */
enum class JobMode
{
    Functional, ///< fast sim: accuracy/miss-rate counters only
    Timed       ///< cycle model: additionally TimingResult counters
};

/** One simulation cell, ready to execute on any thread. */
struct SweepJob
{
    std::string app;          ///< app-registry model name
    PrefetcherSpec spec;      ///< mechanism + geometry
    std::uint64_t refs = 0;   ///< reference budget (must be > 0)
    SimConfig config{};       ///< TLB/buffer geometry, ablation flags
    TimingConfig timing{};    ///< cycle model (Timed mode only)
    JobMode mode = JobMode::Functional;

    /** Functional-mode cell. */
    static SweepJob
    functional(std::string app, const PrefetcherSpec &spec,
               std::uint64_t refs, const SimConfig &config = SimConfig{})
    {
        SweepJob job;
        job.app = std::move(app);
        job.spec = spec;
        job.refs = refs;
        job.config = config;
        job.mode = JobMode::Functional;
        return job;
    }

    /** Timing-mode cell. */
    static SweepJob
    timed(std::string app, const PrefetcherSpec &spec,
          std::uint64_t refs, const SimConfig &config = SimConfig{},
          const TimingConfig &timing = TimingConfig{})
    {
        SweepJob job;
        job.app = std::move(app);
        job.spec = spec;
        job.refs = refs;
        job.config = config;
        job.timing = timing;
        job.mode = JobMode::Timed;
        return job;
    }
};

/** Outcome of one cell, in the submission slot of its job. */
struct SweepResult
{
    JobMode mode = JobMode::Functional;
    SimResult functional; ///< valid in both modes
    TimingResult timed;   ///< valid only when mode == Timed

    double accuracy() const { return functional.accuracy(); }
    double missRate() const { return functional.missRate(); }
};

} // namespace tlbpf

#endif // TLBPF_RUN_JOB_HH
