/**
 * @file
 * The unit of work of the sweep engine: one simulation cell.
 *
 * Every figure and table in the paper is a sweep over
 * (workload × mechanism × geometry) cells.  A SweepJob captures one
 * such cell as a plain value — a WorkloadSpec naming the reference
 * stream (registry app, trace file, multi-programmed mix, or a shard
 * of any of those), a MechanismSpec naming the prefetching mechanism
 * (a registry entry with resolved parameters, or a composite), a
 * reference budget, simulator geometry, and whether the cell runs
 * under the functional or the timing model — so a whole figure is
 * just a std::vector<SweepJob> that can be executed in any order on
 * any number of threads.  Each job builds its own stream and
 * simulator state when it runs; nothing is shared mutably between
 * cells.  A cell is therefore fully addressed by the string pair
 * (WorkloadSpec::label(), MechanismSpec::label()).
 *
 * Cells are embarrassingly parallel but wildly uneven in cost — a
 * checkpoint-chained shard task or a single-pass multi-mechanism
 * group can be 10–50x a plain functional cell — so a job also knows
 * its own rough relative cost (costWeight()), which the engine feeds
 * to the thread pool's weighted work-stealing scheduler.
 */

#ifndef TLBPF_RUN_JOB_HH
#define TLBPF_RUN_JOB_HH

#include <string>

#include "prefetch/mech_spec.hh"
#include "sim/functional_sim.hh"
#include "sim/timing_sim.hh"
#include "workload/workload_spec.hh"

namespace tlbpf
{

/** Which simulator a cell runs under. */
enum class JobMode
{
    Functional, ///< fast sim: accuracy/miss-rate counters only
    Timed       ///< cycle model: additionally TimingResult counters
};

/** One simulation cell, ready to execute on any thread. */
struct SweepJob
{
    WorkloadSpec workload;    ///< what reference stream to simulate
    MechanismSpec spec;       ///< mechanism + geometry
    std::uint64_t refs = 0;   ///< reference budget (must be > 0)
    SimConfig config{};       ///< TLB/buffer geometry, ablation flags
    TimingConfig timing{};    ///< cycle model (Timed mode only)
    JobMode mode = JobMode::Functional;

    /** Functional-mode cell. */
    static SweepJob
    functional(WorkloadSpec workload, const MechanismSpec &spec,
               std::uint64_t refs, const SimConfig &config = SimConfig{})
    {
        SweepJob job;
        job.workload = std::move(workload);
        job.spec = spec;
        job.refs = refs;
        job.config = config;
        job.mode = JobMode::Functional;
        return job;
    }

    /** Timing-mode cell. */
    static SweepJob
    timed(WorkloadSpec workload, const MechanismSpec &spec,
          std::uint64_t refs, const SimConfig &config = SimConfig{},
          const TimingConfig &timing = TimingConfig{})
    {
        SweepJob job;
        job.workload = std::move(workload);
        job.spec = spec;
        job.refs = refs;
        job.config = config;
        job.timing = timing;
        job.mode = JobMode::Timed;
        return job;
    }

    /** Rough cost multiplier of the cycle model over functional. */
    static constexpr std::uint64_t kTimedCostFactor = 2;

    /**
     * Relative execution-cost estimate of this cell, in "references
     * simulated" units, for the pool's weighted scheduler.  A plain
     * cell costs its reference budget; a `spec#k/N` shard costs its
     * stream position at window end (replay warm-up simulates the
     * whole prefix [0, begin) before recording the window); a timed
     * cell pays the cycle model's constant factor.  Only relative
     * magnitudes matter — stealing corrects what the estimate gets
     * wrong — so the estimate stays deliberately crude.
     */
    std::uint64_t
    costWeight() const
    {
        if (refs == 0)
            return 1; // malformed; it throws immediately when run
        std::uint64_t cost = refs;
        if (workload.sharded())
            cost = workload.shardWindow(refs).second;
        if (mode == JobMode::Timed)
            cost *= kTimedCostFactor;
        return cost ? cost : 1;
    }
};

/** Outcome of one cell, in the submission slot of its job. */
struct SweepResult
{
    JobMode mode = JobMode::Functional;
    std::string workload;  ///< resolved workload label of the cell
    std::string mechanism; ///< figure-legend mechanism label
    SimResult functional;  ///< valid in both modes
    TimingResult timed;    ///< valid only when mode == Timed

    double accuracy() const { return functional.accuracy(); }
    double missRate() const { return functional.missRate(); }
};

} // namespace tlbpf

#endif // TLBPF_RUN_JOB_HH
