/**
 * @file
 * Unified rendering of sweep results: one header + rows of cells fed
 * to any combination of an ASCII table, a CSV file and a JSON file.
 *
 * The bench binaries used to carry their own TablePrinter + CsvWriter
 * plumbing, each re-stating the header and the row loop once per
 * format.  A ResultSink receives the header once and each row once;
 * concrete sinks decide how to persist it.  Rows must be emitted in
 * the final (submission) order — the sinks are sequential renderers,
 * not thread-safe collectors; render *after* the engine returns its
 * ordered results.
 */

#ifndef TLBPF_RUN_RESULT_SINK_HH
#define TLBPF_RUN_RESULT_SINK_HH

#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/table_printer.hh"

namespace tlbpf
{

/** Receives one header and then rows, all in final order. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** Set the column names; call exactly once, before any row. */
    virtual void header(const std::vector<std::string> &cells) = 0;

    /** Emit one row; arity must match the header. */
    virtual void row(const std::vector<std::string> &cells) = 0;

    /** Flush/close/print.  Called once; also invoked by destructors. */
    virtual void finish() = 0;
};

/** Renders to stdout as a paper-style aligned table. */
class TableSink : public ResultSink
{
  public:
    explicit TableSink(std::string caption = "");
    ~TableSink() override;

    void header(const std::vector<std::string> &cells) override;
    void row(const std::vector<std::string> &cells) override;
    void finish() override;

  private:
    std::string _caption;
    std::unique_ptr<TablePrinter> _table;
    bool _finished = false;
};

/** Streams RFC-4180 CSV to a file (or a caller-owned stream). */
class CsvSink : public ResultSink
{
  public:
    /** Opens @p path for writing; fatal on failure. */
    explicit CsvSink(const std::string &path);

    /** Writes to @p os, which the caller keeps alive (tests). */
    explicit CsvSink(std::ostream &os);

    ~CsvSink() override;

    void header(const std::vector<std::string> &cells) override;
    void row(const std::vector<std::string> &cells) override;
    void finish() override;

  private:
    std::ofstream _file;
    std::ostream *_out;
};

/**
 * Streams a JSON array of row objects keyed by the header.  Cells
 * that parse fully as numbers are emitted as JSON numbers, the
 * literals "null"/"true"/"false" pass through as JSON literals, and
 * everything else is a string — so downstream tooling gets typed
 * values without the sink needing a schema.
 */
class JsonSink : public ResultSink
{
  public:
    /** Opens @p path for writing; fatal on failure. */
    explicit JsonSink(const std::string &path);

    /** Writes to @p os, which the caller keeps alive (tests). */
    explicit JsonSink(std::ostream &os);

    ~JsonSink() override;

    void header(const std::vector<std::string> &cells) override;
    void row(const std::vector<std::string> &cells) override;
    void finish() override;

    /** Quote + escape per RFC 8259. */
    static std::string quote(const std::string &s);

    /** Raw JSON for one cell: number if it parses as one, else string. */
    static std::string cellValue(const std::string &cell);

  private:
    std::ofstream _file;
    std::ostream *_out;
    std::vector<std::string> _keys;
    bool _firstRow = true;
    bool _finished = false;
};

/** Fans header/row/finish out to any number of sinks. */
class MultiSink : public ResultSink
{
  public:
    void add(std::unique_ptr<ResultSink> sink);

    bool empty() const { return _sinks.empty(); }

    void header(const std::vector<std::string> &cells) override;
    void row(const std::vector<std::string> &cells) override;
    void finish() override;

  private:
    std::vector<std::unique_ptr<ResultSink>> _sinks;
};

} // namespace tlbpf

#endif // TLBPF_RUN_RESULT_SINK_HH
