/**
 * @file
 * Deterministic multi-threaded executor for batches of SweepJobs.
 *
 * The engine's contract: results come back in *submission order* and
 * are bit-identical to a serial run regardless of thread count.  That
 * holds because every job owns its entire simulation state (stream,
 * TLB, buffer, prefetcher, RNG) and writes only to its own result
 * slot; threads share nothing mutable.  `--threads 1` constructs a
 * pool with no workers and runs the whole batch inline.
 *
 * Scheduling: cells are submitted to the pool's work-stealing
 * scheduler (per-worker deques, randomized stealing) with a
 * per-task cost estimate — SweepJob::costWeight() scaled by the
 * task's shape (a checkpoint chain covers its whole cell once, a
 * single-pass group multiplies by its width) — so a batch that mixes
 * 50x shard chains with trivial cells starts from a balanced
 * longest-processing-time placement and stealing mops up the
 * estimate's error.  Neither the placement nor any steal
 * interleaving can change a result byte: workers still write only
 * their pre-assigned result slots and the lowest-submission-index
 * exception still wins.  lastBatchStats() exposes the pool's
 * per-worker utilization telemetry for the most recent batch.
 *
 * A job that cannot run (zero reference budget, unknown application
 * model, unreadable trace file, malformed mix, a sharded timing cell)
 * throws std::invalid_argument; the engine propagates the
 * lowest-submission-index exception to the caller of run() after the
 * batch drains.  Workload resolution inside a worker never calls the
 * fatal-exit registry path, so a bad workload surfaces as a clean
 * batch failure, not a process exit from mid-pool.
 *
 * Sharding: expandShards() splits each functional cell into N
 * per-shard jobs (shard k records only its window of the counters),
 * and mergeShardResults() is the reduce step that folds the per-shard
 * counter deltas back into one result per original cell —
 * bit-identical to the unsharded run.  How a shard reconstructs the
 * simulator state at its window start is the warm-up mode:
 *
 *   ShardWarmup::Replay      every shard simulates the whole prefix
 *                            [0, begin_k) itself.  Shards are fully
 *                            independent (best wall-clock on many
 *                            cores) but total CPU grows ~(N+1)/2x.
 *   ShardWarmup::Checkpoint  shard k restores shard k-1's
 *                            end-of-window SimState snapshot, so the
 *                            chain does ~1x total work plus snapshot
 *                            cost.  The chain serialises the shards
 *                            of one cell (different cells still run
 *                            concurrently); counters are bit-identical
 *                            to replay mode and to the unsharded run.
 *
 * A mechanism that has not opted into checkpointing
 * (Prefetcher::checkpointable() == false) silently falls back to
 * replay warm-up for its cells, preserving correctness for
 * open-registry mechanisms that never implemented the hooks.
 */

#ifndef TLBPF_RUN_SWEEP_ENGINE_HH
#define TLBPF_RUN_SWEEP_ENGINE_HH

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "run/job.hh"
#include "util/check.hh"
#include "util/thread_pool.hh"

namespace tlbpf
{

/**
 * Load/store interface for *persistent* shard checkpoints — the
 * bridge between the engine and a durable SimState store (the sweep
 * service's on-disk CheckpointStore).  A key names the exact
 * simulator state of one cell identity at one stream position
 * (checkpointKey()); load() fills @p out and returns true when the
 * store holds that state.  Implementations must be thread-safe: the
 * engine calls the hook from its worker threads concurrently.  The
 * hook is an accelerator, never an oracle — a state it serves must
 * be byte-exact for its key, and the engine still verifies geometry
 * and mechanism identity on restore, so a stale or foreign entry
 * surfaces as a clean batch failure.
 */
class CheckpointHook
{
  public:
    virtual ~CheckpointHook() = default;

    /** Fetch the state for @p key; false when the store lacks it. */
    virtual bool load(const std::string &key, SimState &out) = 0;

    /** Persist @p state under @p key (best-effort). */
    virtual void store(const std::string &key,
                       const SimState &state) = 0;
};

/**
 * Compact textual signature of a cell's geometry, stable across
 * processes — one segment of the canonical cache identity of a cell.
 */
std::string configSignature(const SimConfig &config);

/**
 * Canonical cache identity of a cell: the
 * (workload, mechanism, geometry, refs, mode) tuple rendered through
 * WorkloadSpec::label() and MechanismSpec::canonical(), so every
 * alias spelling of the same experiment ("ASQ" vs "sp(adaptive)",
 * legend vs canonical mechanism forms) maps to the same key.
 */
std::string cellKey(const SweepJob &job);

/**
 * Identity of @p job's simulator state at stream position @p pos.
 * Deliberately excludes the reference budget and the shard suffix:
 * the state after [0, pos) depends only on the stream content, the
 * geometry and the mechanism, so a checkpoint taken by an 8-shard
 * run warms the matching boundary of a 4-shard (or bigger-budget)
 * run of the same cell.
 */
std::string checkpointKey(const SweepJob &job, std::uint64_t pos);

/**
 * Execute one cell on the calling thread.  Throws
 * std::invalid_argument if the job is malformed — unlike the bench
 * entry points, which tlbpf_fatal, so that the engine can report a
 * failing cell without tearing down the process from a worker thread.
 */
SweepResult runSweepJob(const SweepJob &job);

/**
 * runSweepJob() with a persistent-checkpoint store.  For an explicit
 * `spec#k/N` functional cell whose mechanism supports checkpointing,
 * the warm-up replay of the stream prefix [0, begin) is replaced by
 * restoring the stored state at `begin` when the hook has one (the
 * stream itself is fast-forwarded without simulating), and the
 * window-boundary states this run produces are stored back — so a
 * distributed sweep whose shards arrive as separate requests (or
 * after a server restart) pays the prefix cost once, not once per
 * shard.  Counters are bit-identical to the hookless path either
 * way.  A null @p hook, an unsharded cell, a timed cell or an
 * uncheckpointable mechanism all fall through to plain runSweepJob().
 */
SweepResult runSweepJob(const SweepJob &job, CheckpointHook *hook);

/** How sharded cells reconstruct simulator state at a window start. */
enum class ShardWarmup
{
    Replay,    ///< each shard replays its stream prefix (independent)
    Checkpoint ///< shards chain end-of-window snapshots (~1x work)
};

/**
 * How a batch with several mechanisms over the same stream executes.
 *
 *   PassMode::PerMechanism  every cell builds and drains its own
 *                           stream (the historical behaviour; maximal
 *                           cross-cell parallelism).
 *   PassMode::SinglePass    consecutive functional cells that share a
 *                           workload, reference budget and geometry
 *                           run as ONE stream pass feeding one
 *                           independent simulator per mechanism
 *                           (simulateMany), so the stream is
 *                           generated/decoded once instead of N
 *                           times.  Results are bit-identical to
 *                           PerMechanism in the same submission
 *                           order; cells that cannot batch (timing
 *                           mode, sharded workloads, singletons) fall
 *                           through to runSweepJob unchanged.
 */
enum class PassMode
{
    PerMechanism,
    SinglePass
};

/** Canonical flag value: "per-mechanism" or "single-pass". */
const char *passModeName(PassMode mode);

/**
 * Parse a pass-mode value ("per-mechanism"/"single-pass"); throws
 * std::invalid_argument on anything else.
 */
PassMode parsePassMode(const std::string &text);

/** Canonical flag value: "replay" or "checkpoint". */
const char *shardWarmupName(ShardWarmup warmup);

/**
 * Parse a --shard-warmup value ("replay"/"checkpoint"); throws
 * std::invalid_argument on anything else.
 */
ShardWarmup parseShardWarmup(const std::string &text);

/**
 * The expanded batch of a sharded run plus the explicit grouping the
 * reduce step folds.  groupSizes has one entry per pre-expansion job:
 * how many consecutive entries of jobs belong to it (shards of a
 * fanned-out cell, or 1 for a job that passed through).  Groups are
 * recorded explicitly rather than inferred from job shapes, so
 * caller-submitted `spec#k/N` cells are never confused with the
 * expansion of a neighbouring cell.
 */
struct ShardPlan
{
    std::vector<SweepJob> jobs;
    std::vector<std::uint32_t> groupSizes;
};

/**
 * Map phase of a sharded run: expand every unsharded functional job
 * into per-shard jobs (consecutive, shard order); timing cells and
 * jobs that already name an explicit shard pass through unchanged as
 * groups of one.  @p shards <= 1 keeps every job as-is.  The fan-out
 * of one job is clamped to its reference budget, so the shard windows
 * always partition [0, refs) exactly with no empty shard — asking for
 * more shards than references yields refs single-reference windows,
 * not empty ones.
 */
ShardPlan expandShards(const std::vector<SweepJob> &jobs,
                       std::uint32_t shards);

/**
 * Reduce phase: fold the results of @p plan.jobs back into one
 * result per pre-expansion job by summing the counter windows of
 * each plan group; a merged result carries the unsharded workload
 * label.  Jobs in singleton groups (including explicit `spec#k/N`
 * cells a caller submitted to run one slice of a distributed sweep)
 * pass through unchanged.  Throws std::invalid_argument if
 * @p results does not match the plan.
 */
std::vector<SweepResult>
mergeShardResults(const ShardPlan &plan,
                  const std::vector<SweepResult> &results);

/**
 * Number of independently schedulable tasks runSharded() will create
 * for @p plan: the plan size under replay warm-up, one task per
 * chained group (plus the replay-fallback singles) under checkpoint
 * warm-up.  Callers sizing a worker pool can clamp to this instead of
 * over-provisioning threads that would only park.
 */
std::size_t shardTaskCount(const ShardPlan &plan, ShardWarmup warmup);

/** Multi-threaded batch runner with ordered, deterministic results. */
class SweepEngine
{
  public:
    /**
     * Incremental result delivery: invoked once per cell *in
     * submission order* while the batch is still running, as soon as
     * the cell and every cell before it have completed — the
     * streaming pipe the sweep service feeds per-cell frames from.
     * Invocations come from worker threads but are serialized (never
     * concurrent with each other), and the result reference is the
     * same slot the batch later returns.  If a cell fails, delivery
     * stops just before its index and the batch call rethrows as
     * usual.  The callback must not throw.
     */
    using ResultCallback =
        std::function<void(std::size_t index, const SweepResult &)>;

    /** @param threads worker count; 0 = hardware concurrency. */
    explicit SweepEngine(unsigned threads = 0) : _pool(threads) {}

    unsigned threads() const { return _pool.threadCount(); }

    /**
     * Run every job and return results in submission order.  Blocks
     * until the batch drains; rethrows the lowest-index job failure.
     */
    std::vector<SweepResult> run(const std::vector<SweepJob> &jobs);

    /**
     * run() with an explicit pass mode.  PassMode::SinglePass batches
     * consecutive same-stream functional cells into one stream pass
     * each (see PassMode); results are bit-identical to
     * PassMode::PerMechanism.
     */
    std::vector<SweepResult> run(const std::vector<SweepJob> &jobs,
                                 PassMode mode);

    /**
     * run() that additionally streams each result through
     * @p on_result in submission order as the batch progresses; the
     * returned vector is unchanged.  An empty callback degrades to
     * plain run().
     */
    std::vector<SweepResult> run(const std::vector<SweepJob> &jobs,
                                 PassMode mode,
                                 const ResultCallback &on_result);

    /**
     * Map-reduce over shards: expandShards -> execute -> merge;
     * returns one merged result per entry of @p jobs, bit-identical
     * to run() for any shard count and either warm-up mode.  Under
     * ShardWarmup::Checkpoint (the default) each cell's shards run as
     * one chained task — shard k warms up by restoring shard k-1's
     * end-of-window snapshot — so the whole fan-out costs ~1x the
     * unsharded work instead of replay's ~(N+1)/2x.
     */
    std::vector<SweepResult>
    runSharded(const std::vector<SweepJob> &jobs, std::uint32_t shards,
               ShardWarmup warmup = ShardWarmup::Checkpoint);

    /**
     * runSharded() over a plan the caller already expanded (e.g. to
     * size this engine's pool via shardTaskCount() without paying
     * for a second expansion).
     */
    std::vector<SweepResult>
    runSharded(const ShardPlan &plan,
               ShardWarmup warmup = ShardWarmup::Checkpoint);

    /**
     * runSharded() that streams each *merged* (pre-expansion) result
     * through @p on_result in pre-expansion submission order as its
     * shard group completes; the returned vector is unchanged.
     */
    std::vector<SweepResult>
    runSharded(const ShardPlan &plan, ShardWarmup warmup,
               const ResultCallback &on_result);

    /**
     * Attach a persistent-checkpoint store consulted by every
     * subsequently run cell (see runSweepJob(job, hook) for exactly
     * which cells benefit; checkpoint-mode shard chains additionally
     * persist each window-boundary state they pass through).  The
     * hook must stay alive across runs and be thread-safe; nullptr
     * detaches.  Never affects result bytes.
     */
    void setCheckpointHook(CheckpointHook *hook)
    {
        _checkpointHook = hook;
    }

    CheckpointHook *checkpointHook() const { return _checkpointHook; }

    /** The underlying pool, for callers with custom cell loops. */
    ThreadPool &pool() { return _pool; }

    /**
     * Scheduler telemetry of the most recent run()/runSharded()
     * batch: per-worker job counts and busy time, steal/backoff
     * events, and the LPT placement imbalance.  Valid until the next
     * batch starts.
     */
    const ThreadPool::BatchStats &
    lastBatchStats() const
    {
        return _pool.lastBatchStats();
    }

  private:
    ThreadPool _pool;
    CheckpointHook *_checkpointHook = nullptr;
};

/**
 * Serialized, submission-ordered streaming delivery.  Workers mark
 * their result slots complete as they finish; whichever worker
 * advances the frontier emits every consecutive completed result
 * under the mutex, so callback invocations are ordered, never
 * concurrent, and see fully-written results (the slot write
 * happens-before the mutexed completion mark).  A slot whose task
 * failed is never marked, so delivery stalls just before the failing
 * index and the batch call's rethrow takes over — exactly the
 * documented ResultCallback contract.  Shared by the engine's batch
 * runners and the dispatch subsystem, whose remote completions flow
 * through the same frontier so a distributed batch streams in the
 * same order as a local one.
 */
class OrderedEmitter
{
  public:
    OrderedEmitter(const SweepEngine::ResultCallback &cb,
                   const std::vector<SweepResult> &results)
        : _cb(cb), _results(results), _done(results.size(), 0)
    {
    }

    /** Mark @p count consecutive slots at @p start complete. */
    void
    complete(std::size_t start, std::size_t count)
    {
        // Without a callback nothing observes the frontier, so plain
        // Release skips the bookkeeping entirely; checking builds
        // still track completions so the invariants below stay armed.
        if (!_cb && !dchecksEnabled())
            return;
        std::lock_guard<std::mutex> lock(_mutex);
        TLBPF_DCHECK_MSG(start <= _done.size() &&
                             count <= _done.size() - start,
                         "completion [", start, ", ", start + count,
                         ") overruns a batch of ", _done.size());
        for (std::size_t k = 0; k < count; ++k) {
            // A slot completing twice means some cell was computed
            // (and would be delivered) twice — the double-counting
            // the dispatcher's lease discard exists to prevent.
            TLBPF_DCHECK_MSG(!_done[start + k],
                             "slot ", start + k, " completed twice");
            _done[start + k] = 1;
        }
        std::size_t before = _frontier;
        while (_frontier < _done.size() && _done[_frontier]) {
            if (_cb)
                _cb(_frontier, _results[_frontier]);
            ++_frontier;
        }
        // The frontier only ever advances (delivery order is the
        // submission order); regression would re-deliver a result.
        TLBPF_DCHECK_MSG(_frontier >= before,
                         "emission frontier regressed from ", before,
                         " to ", _frontier);
    }

  private:
    const SweepEngine::ResultCallback &_cb;
    const std::vector<SweepResult> &_results;
    std::vector<char> _done;
    std::mutex _mutex;
    std::size_t _frontier = 0;
};

} // namespace tlbpf

#endif // TLBPF_RUN_SWEEP_ENGINE_HH
