/**
 * @file
 * Deterministic multi-threaded executor for batches of SweepJobs.
 *
 * The engine's contract: results come back in *submission order* and
 * are bit-identical to a serial run regardless of thread count.  That
 * holds because every job owns its entire simulation state (stream,
 * TLB, buffer, prefetcher, RNG) and writes only to its own result
 * slot; threads share nothing mutable.  `--threads 1` constructs a
 * pool with no workers, so the serial path is literally the old
 * serial loop.
 *
 * A job that cannot run (zero reference budget, unknown application
 * model) throws std::invalid_argument; the engine propagates the
 * lowest-submission-index exception to the caller of run() after the
 * batch drains.
 */

#ifndef TLBPF_RUN_SWEEP_ENGINE_HH
#define TLBPF_RUN_SWEEP_ENGINE_HH

#include <vector>

#include "run/job.hh"
#include "util/thread_pool.hh"

namespace tlbpf
{

/**
 * Execute one cell on the calling thread.  Throws
 * std::invalid_argument if the job is malformed (refs == 0 or an app
 * name the registry does not know) — unlike the bench entry points,
 * which tlbpf_fatal, so that the engine can report a failing cell
 * without tearing down the process from a worker thread.
 */
SweepResult runSweepJob(const SweepJob &job);

/** Multi-threaded batch runner with ordered, deterministic results. */
class SweepEngine
{
  public:
    /** @param threads worker count; 0 = hardware concurrency. */
    explicit SweepEngine(unsigned threads = 0) : _pool(threads) {}

    unsigned threads() const { return _pool.threadCount(); }

    /**
     * Run every job and return results in submission order.  Blocks
     * until the batch drains; rethrows the lowest-index job failure.
     */
    std::vector<SweepResult> run(const std::vector<SweepJob> &jobs);

    /** The underlying pool, for callers with custom cell loops. */
    ThreadPool &pool() { return _pool; }

  private:
    ThreadPool _pool;
};

} // namespace tlbpf

#endif // TLBPF_RUN_SWEEP_ENGINE_HH
