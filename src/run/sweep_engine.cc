#include "run/sweep_engine.hh"

#include <stdexcept>

namespace tlbpf
{

SweepResult
runSweepJob(const SweepJob &job)
{
    if (job.refs == 0)
        throw std::invalid_argument(
            "sweep job for '" + job.workload.label() +
            "' needs a positive reference budget");

    SweepResult result;
    result.mode = job.mode;
    result.workload = job.workload.label();
    result.mechanism = job.spec.label();

    if (job.workload.sharded()) {
        if (job.mode != JobMode::Functional)
            throw std::invalid_argument(
                "sharded workload '" + job.workload.label() +
                "' requires a functional cell (timing cells cannot "
                "be sharded)");
        auto [begin, end] = job.workload.shardWindow(job.refs);
        auto stream = job.workload.base().build(job.refs);
        result.functional = simulateWindow(job.config, job.spec,
                                           *stream, begin, end - begin);
        return result;
    }

    auto stream = job.workload.build(job.refs);
    if (job.mode == JobMode::Timed) {
        result.timed =
            simulateTimed(job.config, job.timing, job.spec, *stream);
        result.functional = result.timed.functional;
    } else {
        result.functional = simulate(job.config, job.spec, *stream);
    }
    return result;
}

ShardPlan
expandShards(const std::vector<SweepJob> &jobs, std::uint32_t shards)
{
    ShardPlan plan;
    plan.groupSizes.reserve(jobs.size());
    plan.jobs.reserve(shards <= 1 ? jobs.size()
                                  : jobs.size() * shards);
    for (const SweepJob &job : jobs) {
        if (shards <= 1 || job.mode != JobMode::Functional ||
            job.workload.sharded()) {
            plan.jobs.push_back(job);
            plan.groupSizes.push_back(1);
            continue;
        }
        for (std::uint32_t k = 0; k < shards; ++k) {
            SweepJob shard = job;
            shard.workload = job.workload.withShard(k, shards);
            plan.jobs.push_back(std::move(shard));
        }
        plan.groupSizes.push_back(shards);
    }
    return plan;
}

std::vector<SweepResult>
mergeShardResults(const ShardPlan &plan,
                  const std::vector<SweepResult> &results)
{
    if (plan.jobs.size() != results.size())
        throw std::invalid_argument(
            "shard merge: plan/result batch size mismatch");

    std::vector<SweepResult> merged;
    merged.reserve(plan.groupSizes.size());
    std::size_t i = 0;
    for (std::uint32_t count : plan.groupSizes) {
        if (i + count > results.size())
            throw std::invalid_argument(
                "shard merge: plan group sizes exceed the result "
                "batch");
        if (count == 1) {
            merged.push_back(results[i]);
            ++i;
            continue;
        }
        SweepResult folded;
        folded.mode = plan.jobs[i].mode;
        folded.workload = plan.jobs[i].workload.base().label();
        folded.mechanism = plan.jobs[i].spec.label();
        for (std::uint32_t k = 0; k < count; ++k, ++i)
            addCounters(folded.functional, results[i].functional);
        merged.push_back(std::move(folded));
    }
    if (i != results.size())
        throw std::invalid_argument(
            "shard merge: plan group sizes do not cover the result "
            "batch");
    return merged;
}

std::vector<SweepResult>
SweepEngine::run(const std::vector<SweepJob> &jobs)
{
    std::vector<SweepResult> results(jobs.size());
    _pool.parallelFor(jobs.size(), [&](std::size_t i) {
        results[i] = runSweepJob(jobs[i]);
    });
    return results;
}

std::vector<SweepResult>
SweepEngine::runSharded(const std::vector<SweepJob> &jobs,
                        std::uint32_t shards)
{
    ShardPlan plan = expandShards(jobs, shards);
    return mergeShardResults(plan, run(plan.jobs));
}

} // namespace tlbpf
