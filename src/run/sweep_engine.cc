#include "run/sweep_engine.hh"

#include <stdexcept>

namespace tlbpf
{

SweepResult
runSweepJob(const SweepJob &job)
{
    if (job.refs == 0)
        throw std::invalid_argument(
            "sweep job for '" + job.workload.label() +
            "' needs a positive reference budget");

    SweepResult result;
    result.mode = job.mode;
    result.workload = job.workload.label();
    result.mechanism = job.spec.label();

    if (job.workload.sharded()) {
        if (job.mode != JobMode::Functional)
            throw std::invalid_argument(
                "sharded workload '" + job.workload.label() +
                "' requires a functional cell (timing cells cannot "
                "be sharded)");
        auto [begin, end] = job.workload.shardWindow(job.refs);
        auto stream = job.workload.base().build(job.refs);
        result.functional = simulateWindow(job.config, job.spec,
                                           *stream, begin, end - begin);
        return result;
    }

    auto stream = job.workload.build(job.refs);
    if (job.mode == JobMode::Timed) {
        result.timed =
            simulateTimed(job.config, job.timing, job.spec, *stream);
        result.functional = result.timed.functional;
    } else {
        result.functional = simulate(job.config, job.spec, *stream);
    }
    return result;
}

ShardPlan
expandShards(const std::vector<SweepJob> &jobs, std::uint32_t shards)
{
    ShardPlan plan;
    plan.groupSizes.reserve(jobs.size());
    plan.jobs.reserve(shards <= 1 ? jobs.size()
                                  : jobs.size() * shards);
    for (const SweepJob &job : jobs) {
        // Never fan a cell out wider than its reference budget:
        // shardWindow() would hand the surplus shards empty windows,
        // which burn a full warm-up replay each to record nothing.
        std::uint32_t fanout = shards;
        if (job.refs < fanout)
            fanout = static_cast<std::uint32_t>(job.refs);
        if (fanout <= 1 || job.mode != JobMode::Functional ||
            job.workload.sharded()) {
            plan.jobs.push_back(job);
            plan.groupSizes.push_back(1);
            continue;
        }
        for (std::uint32_t k = 0; k < fanout; ++k) {
            SweepJob shard = job;
            shard.workload = job.workload.withShard(k, fanout);
            plan.jobs.push_back(std::move(shard));
        }
        plan.groupSizes.push_back(fanout);
    }
    return plan;
}

std::vector<SweepResult>
mergeShardResults(const ShardPlan &plan,
                  const std::vector<SweepResult> &results)
{
    if (plan.jobs.size() != results.size())
        throw std::invalid_argument(
            "shard merge: plan/result batch size mismatch");

    std::vector<SweepResult> merged;
    merged.reserve(plan.groupSizes.size());
    std::size_t i = 0;
    for (std::uint32_t count : plan.groupSizes) {
        if (i + count > results.size())
            throw std::invalid_argument(
                "shard merge: plan group sizes exceed the result "
                "batch");
        if (count == 1) {
            merged.push_back(results[i]);
            ++i;
            continue;
        }
        SweepResult folded;
        folded.mode = plan.jobs[i].mode;
        folded.workload = plan.jobs[i].workload.base().label();
        folded.mechanism = plan.jobs[i].spec.label();
        for (std::uint32_t k = 0; k < count; ++k, ++i)
            addCounters(folded.functional, results[i].functional);
        merged.push_back(std::move(folded));
    }
    if (i != results.size())
        throw std::invalid_argument(
            "shard merge: plan group sizes do not cover the result "
            "batch");
    return merged;
}

const char *
passModeName(PassMode mode)
{
    return mode == PassMode::PerMechanism ? "per-mechanism"
                                          : "single-pass";
}

PassMode
parsePassMode(const std::string &text)
{
    if (text == "per-mechanism")
        return PassMode::PerMechanism;
    if (text == "single-pass")
        return PassMode::SinglePass;
    throw std::invalid_argument(
        "unknown pass mode '" + text +
        "' (expected per-mechanism or single-pass)");
}

const char *
shardWarmupName(ShardWarmup warmup)
{
    return warmup == ShardWarmup::Replay ? "replay" : "checkpoint";
}

ShardWarmup
parseShardWarmup(const std::string &text)
{
    if (text == "replay")
        return ShardWarmup::Replay;
    if (text == "checkpoint")
        return ShardWarmup::Checkpoint;
    throw std::invalid_argument(
        "unknown shard warm-up mode '" + text +
        "' (expected replay or checkpoint)");
}

namespace
{

/** One checkpoint-schedule task: a chained group or a lone plan job. */
struct ShardUnit
{
    std::size_t start = 0;   ///< first index into plan.jobs
    std::uint32_t count = 1; ///< consecutive jobs in the chain
};

/**
 * Whether a cell's mechanism supports exact snapshot/restore.  Probes
 * a throwaway build (cheap: registry construction is microseconds) so
 * the scheduler can fall back to replay warm-up for open-registry
 * mechanisms that never implemented the checkpoint hooks.
 */
bool
mechanismCheckpointable(const SweepJob &job)
{
    PageTable pt;
    std::unique_ptr<Prefetcher> built = job.spec.build(pt);
    return !built || built->checkpointable();
}

/**
 * Execute one cell's shards as a checkpoint chain: a single stream
 * pass where shard k's warm-up is the restore of shard k-1's
 * end-of-window snapshot.  Per-shard results are identical to what
 * replay-mode jobs would produce (same labels, same counter windows),
 * so the caller's merge step cannot tell the modes apart.
 */
std::vector<SweepResult>
runShardChain(const std::vector<SweepJob> &jobs, std::size_t start,
              std::uint32_t count)
{
    const SweepJob &first = jobs[start];
    auto stream = first.workload.base().build(first.refs);
    std::vector<SweepResult> out(count);
    SimState state;
    std::uint64_t pos = 0;
    for (std::uint32_t k = 0; k < count; ++k) {
        const SweepJob &job = jobs[start + k];
        auto [begin, end] = job.workload.shardWindow(job.refs);
        if (begin != pos)
            throw std::invalid_argument(
                "shard chain windows are not contiguous (window "
                "starts at " +
                std::to_string(begin) + ", stream is at " +
                std::to_string(pos) + ")");
        SweepResult &result = out[k];
        result.mode = job.mode;
        result.workload = job.workload.label();
        result.mechanism = job.spec.label();
        bool last = k + 1 == count;
        result.functional = simulateWindowFrom(
            job.config, job.spec, *stream, k > 0 ? &state : nullptr,
            end - begin, last ? nullptr : &state);
        pos = end;
    }
    return out;
}

/**
 * The checkpoint-mode schedule for an expanded plan: each group
 * becomes one chained task; groups of one (timing cells, explicit
 * spec#k/N jobs) and groups whose mechanism cannot checkpoint
 * decompose into independent replay jobs.
 */
std::vector<ShardUnit>
buildShardUnits(const ShardPlan &plan)
{
    std::vector<ShardUnit> units;
    units.reserve(plan.groupSizes.size());
    std::size_t start = 0;
    for (std::uint32_t count : plan.groupSizes) {
        if (count > 1 && mechanismCheckpointable(plan.jobs[start])) {
            units.push_back(ShardUnit{start, count});
        } else {
            for (std::uint32_t k = 0; k < count; ++k)
                units.push_back(ShardUnit{start + k, 1});
        }
        start += count;
    }
    return units;
}

/** One single-pass task: consecutive same-stream jobs (or a single). */
struct PassUnit
{
    std::size_t start = 0;
    std::size_t count = 1;
};

/** Whether a cell is eligible for single-pass batching at all. */
bool
passBatchable(const SweepJob &job)
{
    return job.mode == JobMode::Functional && !job.workload.sharded() &&
           job.refs > 0;
}

/** Whether two eligible cells would drain the very same stream. */
bool
sameStream(const SweepJob &a, const SweepJob &b)
{
    return a.workload == b.workload && a.refs == b.refs &&
           a.config == b.config;
}

/**
 * Greedy grouping of consecutive same-stream cells.  Only adjacent
 * jobs group, so submission order — and therefore the result order
 * and the lowest-index error contract — is preserved trivially.
 */
std::vector<PassUnit>
buildPassUnits(const std::vector<SweepJob> &jobs)
{
    std::vector<PassUnit> units;
    std::size_t i = 0;
    while (i < jobs.size()) {
        std::size_t j = i + 1;
        if (passBatchable(jobs[i])) {
            while (j < jobs.size() && passBatchable(jobs[j]) &&
                   sameStream(jobs[i], jobs[j]))
                ++j;
        }
        units.push_back(PassUnit{i, j - i});
        i = j;
    }
    return units;
}

} // namespace

std::size_t
shardTaskCount(const ShardPlan &plan, ShardWarmup warmup)
{
    if (warmup == ShardWarmup::Replay)
        return plan.jobs.size();
    return buildShardUnits(plan).size();
}

namespace
{

/** Per-job scheduler weights for a plain (one task = one job) run. */
std::vector<std::uint64_t>
jobWeights(const std::vector<SweepJob> &jobs)
{
    std::vector<std::uint64_t> weights;
    weights.reserve(jobs.size());
    for (const SweepJob &job : jobs)
        weights.push_back(job.costWeight());
    return weights;
}

} // namespace

std::vector<SweepResult>
SweepEngine::run(const std::vector<SweepJob> &jobs)
{
    std::vector<SweepResult> results(jobs.size());
    _pool.parallelForWeighted(jobWeights(jobs), [&](std::size_t i) {
        results[i] = runSweepJob(jobs[i]);
    });
    return results;
}

std::vector<SweepResult>
SweepEngine::run(const std::vector<SweepJob> &jobs, PassMode mode)
{
    if (mode == PassMode::PerMechanism)
        return run(jobs);

    std::vector<PassUnit> units = buildPassUnits(jobs);
    // A single-pass group drives its group-width simulators through
    // one stream: cost ~ stream length x width.
    std::vector<std::uint64_t> weights;
    weights.reserve(units.size());
    for (const PassUnit &unit : units)
        weights.push_back(jobs[unit.start].costWeight() * unit.count);
    std::vector<SweepResult> results(jobs.size());
    _pool.parallelForWeighted(weights, [&](std::size_t u) {
        const PassUnit &unit = units[u];
        if (unit.count == 1) {
            results[unit.start] = runSweepJob(jobs[unit.start]);
            return;
        }
        const SweepJob &first = jobs[unit.start];
        std::vector<MechanismSpec> specs;
        specs.reserve(unit.count);
        for (std::size_t k = 0; k < unit.count; ++k)
            specs.push_back(jobs[unit.start + k].spec);
        auto stream = first.workload.build(first.refs);
        std::vector<SimResult> counters =
            simulateMany(first.config, specs, *stream);
        for (std::size_t k = 0; k < unit.count; ++k) {
            const SweepJob &job = jobs[unit.start + k];
            SweepResult &result = results[unit.start + k];
            result.mode = job.mode;
            result.workload = job.workload.label();
            result.mechanism = job.spec.label();
            result.functional = counters[k];
        }
    });
    return results;
}

std::vector<SweepResult>
SweepEngine::runSharded(const std::vector<SweepJob> &jobs,
                        std::uint32_t shards, ShardWarmup warmup)
{
    return runSharded(expandShards(jobs, shards), warmup);
}

std::vector<SweepResult>
SweepEngine::runSharded(const ShardPlan &plan, ShardWarmup warmup)
{
    if (warmup == ShardWarmup::Replay)
        return mergeShardResults(plan, run(plan.jobs));

    std::vector<ShardUnit> units = buildShardUnits(plan);
    // A checkpoint chain simulates its cell's whole stream exactly
    // once, so its cost is the cell's full budget — typically 10-50x
    // the replay singles and trivial cells it shares a batch with;
    // the weight is what keeps such chains from landing on one
    // worker's deque.
    std::vector<std::uint64_t> weights;
    weights.reserve(units.size());
    for (const ShardUnit &unit : units) {
        const SweepJob &first = plan.jobs[unit.start];
        weights.push_back(unit.count > 1 ? std::max<std::uint64_t>(
                                               first.refs, 1)
                                         : first.costWeight());
    }
    std::vector<SweepResult> results(plan.jobs.size());
    _pool.parallelForWeighted(weights, [&](std::size_t i) {
        const ShardUnit &unit = units[i];
        if (unit.count == 1) {
            results[unit.start] = runSweepJob(plan.jobs[unit.start]);
            return;
        }
        std::vector<SweepResult> chained =
            runShardChain(plan.jobs, unit.start, unit.count);
        for (std::uint32_t k = 0; k < unit.count; ++k)
            results[unit.start + k] = std::move(chained[k]);
    });
    return mergeShardResults(plan, results);
}

} // namespace tlbpf
