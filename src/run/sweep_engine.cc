#include "run/sweep_engine.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace tlbpf
{

std::string
configSignature(const SimConfig &config)
{
    std::string sig;
    sig += "tlb=";
    sig += std::to_string(config.tlb.entries);
    sig += "/";
    sig += std::to_string(config.tlb.assoc);
    sig += ",pb=";
    sig += std::to_string(config.pbEntries);
    sig += ",page=";
    sig += std::to_string(config.pageBytes);
    sig += ",allrefs=";
    sig += config.trainOnAllRefs ? "1" : "0";
    sig += ",cs=";
    sig += std::to_string(config.contextSwitchInterval);
    return sig;
}

std::string
cellKey(const SweepJob &job)
{
    std::string key = job.workload.label();
    key += "|";
    key += job.spec.canonical();
    key += "|";
    key += configSignature(job.config);
    key += "|refs=";
    key += std::to_string(job.refs);
    if (job.mode == JobMode::Timed) {
        char timing[96];
        std::snprintf(timing, sizeof(timing),
                      "|timed:cpi=%.17g,miss=%llu,mem=%llu",
                      job.timing.baseCpi,
                      static_cast<unsigned long long>(
                          job.timing.missPenalty),
                      static_cast<unsigned long long>(
                          job.timing.memOpCost));
        key += timing;
    }
    return key;
}

std::string
checkpointKey(const SweepJob &job, std::uint64_t pos)
{
    std::string key = job.workload.base().label();
    key += "|";
    key += job.spec.canonical();
    key += "|";
    key += configSignature(job.config);
    key += "|pos=";
    key += std::to_string(pos);
    return key;
}

SweepResult
runSweepJob(const SweepJob &job)
{
    if (job.refs == 0)
        throw std::invalid_argument(
            "sweep job for '" + job.workload.label() +
            "' needs a positive reference budget");

    SweepResult result;
    result.mode = job.mode;
    result.workload = job.workload.label();
    result.mechanism = job.spec.label();

    if (job.workload.sharded()) {
        if (job.mode != JobMode::Functional)
            throw std::invalid_argument(
                "sharded workload '" + job.workload.label() +
                "' requires a functional cell (timing cells cannot "
                "be sharded)");
        auto [begin, end] = job.workload.shardWindow(job.refs);
        auto stream = job.workload.base().build(job.refs);
        result.functional = simulateWindow(job.config, job.spec,
                                           *stream, begin, end - begin);
        return result;
    }

    auto stream = job.workload.build(job.refs);
    if (job.mode == JobMode::Timed) {
        result.timed =
            simulateTimed(job.config, job.timing, job.spec, *stream);
        result.functional = result.timed.functional;
    } else {
        result.functional = simulate(job.config, job.spec, *stream);
    }
    return result;
}

ShardPlan
expandShards(const std::vector<SweepJob> &jobs, std::uint32_t shards)
{
    ShardPlan plan;
    plan.groupSizes.reserve(jobs.size());
    plan.jobs.reserve(shards <= 1 ? jobs.size()
                                  : jobs.size() * shards);
    for (const SweepJob &job : jobs) {
        // Never fan a cell out wider than its reference budget:
        // shardWindow() would hand the surplus shards empty windows,
        // which burn a full warm-up replay each to record nothing.
        std::uint32_t fanout = shards;
        if (job.refs < fanout)
            fanout = static_cast<std::uint32_t>(job.refs);
        if (fanout <= 1 || job.mode != JobMode::Functional ||
            job.workload.sharded()) {
            plan.jobs.push_back(job);
            plan.groupSizes.push_back(1);
            continue;
        }
        for (std::uint32_t k = 0; k < fanout; ++k) {
            SweepJob shard = job;
            shard.workload = job.workload.withShard(k, fanout);
            plan.jobs.push_back(std::move(shard));
        }
        plan.groupSizes.push_back(fanout);
    }
    return plan;
}

namespace
{

/** Fold one plan group's per-shard windows into its merged result. */
SweepResult
foldGroup(const ShardPlan &plan, const std::vector<SweepResult> &results,
          std::size_t start, std::uint32_t count)
{
    if (count == 1)
        return results[start];
    SweepResult folded;
    folded.mode = plan.jobs[start].mode;
    folded.workload = plan.jobs[start].workload.base().label();
    folded.mechanism = plan.jobs[start].spec.label();
    for (std::uint32_t k = 0; k < count; ++k)
        addCounters(folded.functional, results[start + k].functional);
    return folded;
}

} // namespace

std::vector<SweepResult>
mergeShardResults(const ShardPlan &plan,
                  const std::vector<SweepResult> &results)
{
    if (plan.jobs.size() != results.size())
        throw std::invalid_argument(
            "shard merge: plan/result batch size mismatch");

    std::vector<SweepResult> merged;
    merged.reserve(plan.groupSizes.size());
    std::size_t i = 0;
    for (std::uint32_t count : plan.groupSizes) {
        if (i + count > results.size())
            throw std::invalid_argument(
                "shard merge: plan group sizes exceed the result "
                "batch");
        merged.push_back(foldGroup(plan, results, i, count));
        i += count;
    }
    if (i != results.size())
        throw std::invalid_argument(
            "shard merge: plan group sizes do not cover the result "
            "batch");
    return merged;
}

const char *
passModeName(PassMode mode)
{
    return mode == PassMode::PerMechanism ? "per-mechanism"
                                          : "single-pass";
}

PassMode
parsePassMode(const std::string &text)
{
    if (text == "per-mechanism")
        return PassMode::PerMechanism;
    if (text == "single-pass")
        return PassMode::SinglePass;
    throw std::invalid_argument(
        "unknown pass mode '" + text +
        "' (expected per-mechanism or single-pass)");
}

const char *
shardWarmupName(ShardWarmup warmup)
{
    return warmup == ShardWarmup::Replay ? "replay" : "checkpoint";
}

ShardWarmup
parseShardWarmup(const std::string &text)
{
    if (text == "replay")
        return ShardWarmup::Replay;
    if (text == "checkpoint")
        return ShardWarmup::Checkpoint;
    throw std::invalid_argument(
        "unknown shard warm-up mode '" + text +
        "' (expected replay or checkpoint)");
}

namespace
{

/** One checkpoint-schedule task: a chained group or a lone plan job. */
struct ShardUnit
{
    std::size_t start = 0;   ///< first index into plan.jobs
    std::uint32_t count = 1; ///< consecutive jobs in the chain
};

/**
 * Whether a cell's mechanism supports exact snapshot/restore.  Probes
 * a throwaway build (cheap: registry construction is microseconds) so
 * the scheduler can fall back to replay warm-up for open-registry
 * mechanisms that never implemented the checkpoint hooks.
 */
bool
mechanismCheckpointable(const SweepJob &job)
{
    PageTable pt;
    std::unique_ptr<Prefetcher> built = job.spec.build(pt);
    return !built || built->checkpointable();
}

/**
 * Fast-forward @p stream by @p count references without simulating
 * them (the references land in a scratch buffer and are dropped).
 * Used when a persisted checkpoint replaces the prefix *simulation*:
 * the stream still has to be advanced to the window start.
 */
void
skipRefs(RefStream &stream, std::uint64_t count)
{
    std::vector<MemRef> scratch(
        std::min<std::uint64_t>(count, kSimBatchRefs));
    while (count > 0) {
        std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(count, scratch.size()));
        std::size_t got = stream.nextBatch(scratch.data(), want);
        if (got == 0)
            return; // stream shorter than the prefix; window is empty
        count -= got;
    }
}

/**
 * Execute one cell's shards as a checkpoint chain: a single stream
 * pass where shard k's warm-up is the restore of shard k-1's
 * end-of-window snapshot.  Per-shard results are identical to what
 * replay-mode jobs would produce (same labels, same counter windows),
 * so the caller's merge step cannot tell the modes apart.  A non-null
 * @p hook additionally receives every window-boundary state the chain
 * passes through, so a persistent store warms future explicit-shard
 * requests for this cell.
 */
std::vector<SweepResult>
runShardChain(const std::vector<SweepJob> &jobs, std::size_t start,
              std::uint32_t count, CheckpointHook *hook)
{
    const SweepJob &first = jobs[start];
    auto stream = first.workload.base().build(first.refs);
    std::vector<SweepResult> out(count);
    SimState state;
    std::uint64_t pos = 0;
    for (std::uint32_t k = 0; k < count; ++k) {
        const SweepJob &job = jobs[start + k];
        auto [begin, end] = job.workload.shardWindow(job.refs);
        if (begin != pos)
            throw std::invalid_argument(
                "shard chain windows are not contiguous (window "
                "starts at " +
                std::to_string(begin) + ", stream is at " +
                std::to_string(pos) + ")");
        SweepResult &result = out[k];
        result.mode = job.mode;
        result.workload = job.workload.label();
        result.mechanism = job.spec.label();
        bool last = k + 1 == count;
        bool want_state = !last || hook;
        result.functional = simulateWindowFrom(
            job.config, job.spec, *stream, k > 0 ? &state : nullptr,
            end - begin, want_state ? &state : nullptr);
        if (hook)
            hook->store(checkpointKey(job, end), state);
        pos = end;
    }
    return out;
}

/**
 * The checkpoint-mode schedule for an expanded plan: each group
 * becomes one chained task; groups of one (timing cells, explicit
 * spec#k/N jobs) and groups whose mechanism cannot checkpoint
 * decompose into independent replay jobs.
 */
std::vector<ShardUnit>
buildShardUnits(const ShardPlan &plan)
{
    std::vector<ShardUnit> units;
    units.reserve(plan.groupSizes.size());
    std::size_t start = 0;
    for (std::uint32_t count : plan.groupSizes) {
        if (count > 1 && mechanismCheckpointable(plan.jobs[start])) {
            units.push_back(ShardUnit{start, count});
        } else {
            for (std::uint32_t k = 0; k < count; ++k)
                units.push_back(ShardUnit{start + k, 1});
        }
        start += count;
    }
    return units;
}

/** One single-pass task: consecutive same-stream jobs (or a single). */
struct PassUnit
{
    std::size_t start = 0;
    std::size_t count = 1;
};

/** Whether a cell is eligible for single-pass batching at all. */
bool
passBatchable(const SweepJob &job)
{
    return job.mode == JobMode::Functional && !job.workload.sharded() &&
           job.refs > 0;
}

/** Whether two eligible cells would drain the very same stream. */
bool
sameStream(const SweepJob &a, const SweepJob &b)
{
    return a.workload == b.workload && a.refs == b.refs &&
           a.config == b.config;
}

/**
 * Greedy grouping of consecutive same-stream cells.  Only adjacent
 * jobs group, so submission order — and therefore the result order
 * and the lowest-index error contract — is preserved trivially.
 */
std::vector<PassUnit>
buildPassUnits(const std::vector<SweepJob> &jobs)
{
    std::vector<PassUnit> units;
    std::size_t i = 0;
    while (i < jobs.size()) {
        std::size_t j = i + 1;
        if (passBatchable(jobs[i])) {
            while (j < jobs.size() && passBatchable(jobs[j]) &&
                   sameStream(jobs[i], jobs[j]))
                ++j;
        }
        units.push_back(PassUnit{i, j - i});
        i = j;
    }
    return units;
}

} // namespace

std::size_t
shardTaskCount(const ShardPlan &plan, ShardWarmup warmup)
{
    if (warmup == ShardWarmup::Replay)
        return plan.jobs.size();
    return buildShardUnits(plan).size();
}

SweepResult
runSweepJob(const SweepJob &job, CheckpointHook *hook)
{
    if (!hook || !job.workload.sharded() ||
        job.mode != JobMode::Functional || job.refs == 0 ||
        !mechanismCheckpointable(job))
        return runSweepJob(job);

    auto [begin, end] = job.workload.shardWindow(job.refs);
    SweepResult result;
    result.mode = job.mode;
    result.workload = job.workload.label();
    result.mechanism = job.spec.label();

    if (begin > 0) {
        SimState warm;
        if (hook->load(checkpointKey(job, begin), warm)) {
            auto stream = job.workload.base().build(job.refs);
            try {
                skipRefs(*stream, begin);
                SimState end_state;
                result.functional = simulateWindowFrom(
                    job.config, job.spec, *stream, &warm, end - begin,
                    &end_state);
                hook->store(checkpointKey(job, end), end_state);
                return result;
            } catch (const std::invalid_argument &) {
                // A stale or foreign store entry must never fail the
                // batch: fall through to the replay path below, which
                // rebuilds the stream from scratch.
            }
        }
    }

    auto stream = job.workload.base().build(job.refs);
    SimState end_state;
    if (begin > 0) {
        // Replay the prefix once, but bank the warm state it produces
        // so the *next* request for any shard starting at `begin`
        // skips this replay entirely.
        SimState warm;
        simulateWindowFrom(job.config, job.spec, *stream, nullptr,
                           begin, &warm);
        hook->store(checkpointKey(job, begin), warm);
        result.functional = simulateWindowFrom(
            job.config, job.spec, *stream, &warm, end - begin,
            &end_state);
    } else {
        result.functional = simulateWindowFrom(
            job.config, job.spec, *stream, nullptr, end - begin,
            &end_state);
    }
    hook->store(checkpointKey(job, end), end_state);
    return result;
}

namespace
{

/** Per-job scheduler weights for a plain (one task = one job) run. */
std::vector<std::uint64_t>
jobWeights(const std::vector<SweepJob> &jobs)
{
    std::vector<std::uint64_t> weights;
    weights.reserve(jobs.size());
    for (const SweepJob &job : jobs)
        weights.push_back(job.costWeight());
    return weights;
}

} // namespace

std::vector<SweepResult>
SweepEngine::run(const std::vector<SweepJob> &jobs)
{
    return run(jobs, PassMode::PerMechanism, ResultCallback());
}

std::vector<SweepResult>
SweepEngine::run(const std::vector<SweepJob> &jobs, PassMode mode)
{
    return run(jobs, mode, ResultCallback());
}

std::vector<SweepResult>
SweepEngine::run(const std::vector<SweepJob> &jobs, PassMode mode,
                 const ResultCallback &on_result)
{
    std::vector<SweepResult> results(jobs.size());
    OrderedEmitter emitter(on_result, results);
    CheckpointHook *hook = _checkpointHook;

    if (mode == PassMode::PerMechanism) {
        _pool.parallelForWeighted(jobWeights(jobs),
                                  [&](std::size_t i) {
                                      results[i] =
                                          runSweepJob(jobs[i], hook);
                                      emitter.complete(i, 1);
                                  });
        return results;
    }

    std::vector<PassUnit> units = buildPassUnits(jobs);
    // A single-pass group drives its group-width simulators through
    // one stream: cost ~ stream length x width.
    std::vector<std::uint64_t> weights;
    weights.reserve(units.size());
    for (const PassUnit &unit : units)
        weights.push_back(jobs[unit.start].costWeight() * unit.count);
    _pool.parallelForWeighted(weights, [&](std::size_t u) {
        const PassUnit &unit = units[u];
        if (unit.count == 1) {
            results[unit.start] =
                runSweepJob(jobs[unit.start], hook);
            emitter.complete(unit.start, 1);
            return;
        }
        const SweepJob &first = jobs[unit.start];
        std::vector<MechanismSpec> specs;
        specs.reserve(unit.count);
        for (std::size_t k = 0; k < unit.count; ++k)
            specs.push_back(jobs[unit.start + k].spec);
        auto stream = first.workload.build(first.refs);
        std::vector<SimResult> counters =
            simulateMany(first.config, specs, *stream);
        for (std::size_t k = 0; k < unit.count; ++k) {
            const SweepJob &job = jobs[unit.start + k];
            SweepResult &result = results[unit.start + k];
            result.mode = job.mode;
            result.workload = job.workload.label();
            result.mechanism = job.spec.label();
            result.functional = counters[k];
        }
        emitter.complete(unit.start, unit.count);
    });
    return results;
}

std::vector<SweepResult>
SweepEngine::runSharded(const std::vector<SweepJob> &jobs,
                        std::uint32_t shards, ShardWarmup warmup)
{
    return runSharded(expandShards(jobs, shards), warmup);
}

std::vector<SweepResult>
SweepEngine::runSharded(const ShardPlan &plan, ShardWarmup warmup)
{
    return runSharded(plan, warmup, ResultCallback());
}

std::vector<SweepResult>
SweepEngine::runSharded(const ShardPlan &plan, ShardWarmup warmup,
                        const ResultCallback &on_result)
{
    // Group geometry: where each pre-expansion cell's shard run
    // starts, and which cell each plan job belongs to.
    std::size_t ngroups = plan.groupSizes.size();
    std::vector<std::size_t> groupStart(ngroups);
    std::vector<std::size_t> groupOf(plan.jobs.size());
    std::size_t covered = 0;
    for (std::size_t g = 0; g < ngroups; ++g) {
        groupStart[g] = covered;
        if (covered + plan.groupSizes[g] > plan.jobs.size())
            throw std::invalid_argument(
                "shard plan group sizes exceed the job batch");
        for (std::uint32_t k = 0; k < plan.groupSizes[g]; ++k)
            groupOf[covered + k] = g;
        covered += plan.groupSizes[g];
    }
    if (covered != plan.jobs.size())
        throw std::invalid_argument(
            "shard plan group sizes do not cover the job batch");

    std::vector<SweepResult> results(plan.jobs.size());
    std::vector<SweepResult> merged(ngroups);
    OrderedEmitter emitter(on_result, merged);
    // Fold a group eagerly (on whichever worker finishes its last
    // shard) so merged results stream out while later cells still run.
    // acq_rel on the countdown orders every shard's slot write before
    // the fold that reads them.
    std::vector<std::atomic<std::uint32_t>> remaining(ngroups);
    for (std::size_t g = 0; g < ngroups; ++g)
        remaining[g].store(plan.groupSizes[g],
                           std::memory_order_relaxed);
    auto finishJobs = [&](std::size_t start, std::uint32_t count) {
        std::size_t g = groupOf[start];
        if (remaining[g].fetch_sub(count,
                                   std::memory_order_acq_rel) ==
            count) {
            merged[g] = foldGroup(plan, results, groupStart[g],
                                  plan.groupSizes[g]);
            emitter.complete(g, 1);
        }
    };
    CheckpointHook *hook = _checkpointHook;

    if (warmup == ShardWarmup::Replay) {
        _pool.parallelForWeighted(
            jobWeights(plan.jobs), [&](std::size_t i) {
                results[i] = runSweepJob(plan.jobs[i], hook);
                finishJobs(i, 1);
            });
        return merged;
    }

    std::vector<ShardUnit> units = buildShardUnits(plan);
    // A checkpoint chain simulates its cell's whole stream exactly
    // once, so its cost is the cell's full budget — typically 10-50x
    // the replay singles and trivial cells it shares a batch with;
    // the weight is what keeps such chains from landing on one
    // worker's deque.
    std::vector<std::uint64_t> weights;
    weights.reserve(units.size());
    for (const ShardUnit &unit : units) {
        const SweepJob &first = plan.jobs[unit.start];
        weights.push_back(unit.count > 1 ? std::max<std::uint64_t>(
                                               first.refs, 1)
                                         : first.costWeight());
    }
    _pool.parallelForWeighted(weights, [&](std::size_t i) {
        const ShardUnit &unit = units[i];
        if (unit.count == 1) {
            results[unit.start] =
                runSweepJob(plan.jobs[unit.start], hook);
            finishJobs(unit.start, 1);
            return;
        }
        std::vector<SweepResult> chained =
            runShardChain(plan.jobs, unit.start, unit.count, hook);
        for (std::uint32_t k = 0; k < unit.count; ++k)
            results[unit.start + k] = std::move(chained[k]);
        finishJobs(unit.start, unit.count);
    });
    return merged;
}

} // namespace tlbpf
