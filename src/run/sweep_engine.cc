#include "run/sweep_engine.hh"

#include <stdexcept>

#include "workload/app_registry.hh"

namespace tlbpf
{

SweepResult
runSweepJob(const SweepJob &job)
{
    if (job.refs == 0)
        throw std::invalid_argument(
            "sweep job for '" + job.app +
            "' needs a positive reference budget");
    const AppModel *app = findAppOrNull(job.app);
    if (!app)
        throw std::invalid_argument("unknown application model '" +
                                    job.app + "'");

    SweepResult result;
    result.mode = job.mode;
    auto stream = buildApp(*app, job.refs);
    if (job.mode == JobMode::Timed) {
        result.timed =
            simulateTimed(job.config, job.timing, job.spec, *stream);
        result.functional = result.timed.functional;
    } else {
        result.functional = simulate(job.config, job.spec, *stream);
    }
    return result;
}

std::vector<SweepResult>
SweepEngine::run(const std::vector<SweepJob> &jobs)
{
    std::vector<SweepResult> results(jobs.size());
    _pool.parallelFor(jobs.size(), [&](std::size_t i) {
        results[i] = runSweepJob(jobs[i]);
    });
    return results;
}

} // namespace tlbpf
