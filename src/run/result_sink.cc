#include "run/result_sink.hh"

#include <cstdio>

#include "util/csv.hh"
#include "util/logging.hh"

namespace tlbpf
{

// --- TableSink -------------------------------------------------------

TableSink::TableSink(std::string caption)
    : _caption(std::move(caption))
{
}

TableSink::~TableSink()
{
    finish();
}

void
TableSink::header(const std::vector<std::string> &cells)
{
    tlbpf_assert(!_table, "TableSink header set twice");
    _table = std::make_unique<TablePrinter>(cells);
    if (!_caption.empty())
        _table->caption(_caption);
}

void
TableSink::row(const std::vector<std::string> &cells)
{
    tlbpf_assert(_table, "TableSink row before header");
    _table->addRow(cells);
}

void
TableSink::finish()
{
    if (_finished || !_table)
        return;
    _finished = true;
    _table->print();
    std::fflush(stdout);
}

// --- CsvSink ---------------------------------------------------------

CsvSink::CsvSink(const std::string &path)
    : _file(path), _out(&_file)
{
    if (!_file)
        tlbpf_fatal("cannot open CSV output file '", path, "'");
}

CsvSink::CsvSink(std::ostream &os)
    : _out(&os)
{
}

CsvSink::~CsvSink()
{
    finish();
}

void
CsvSink::header(const std::vector<std::string> &cells)
{
    row(cells);
}

void
CsvSink::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            *_out << ',';
        *_out << CsvWriter::quote(cells[i]);
    }
    *_out << '\n';
}

void
CsvSink::finish()
{
    _out->flush();
}

// --- JsonSink --------------------------------------------------------

JsonSink::JsonSink(const std::string &path)
    : _file(path), _out(&_file)
{
    if (!_file)
        tlbpf_fatal("cannot open JSON output file '", path, "'");
}

JsonSink::JsonSink(std::ostream &os)
    : _out(&os)
{
}

JsonSink::~JsonSink()
{
    finish();
}

std::string
JsonSink::quote(const std::string &s)
{
    std::string out = "\"";
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
    return out;
}

namespace
{

/**
 * Exact RFC 8259 number grammar:
 *   -? (0 | [1-9][0-9]*) ('.' [0-9]+)? ([eE] [+-]? [0-9]+)?
 * Strtod is deliberately not used: it also accepts hex, inf/nan
 * (signed or not), leading zeros and trailing dots, all of which
 * JSON forbids.
 */
bool
isJsonNumber(const std::string &s)
{
    std::size_t i = 0;
    auto digits = [&] {
        std::size_t start = i;
        while (i < s.size() && s[i] >= '0' && s[i] <= '9')
            ++i;
        return i > start;
    };
    if (i < s.size() && s[i] == '-')
        ++i;
    if (i >= s.size())
        return false;
    if (s[i] == '0') {
        ++i;
    } else if (s[i] >= '1' && s[i] <= '9') {
        digits();
    } else {
        return false;
    }
    if (i < s.size() && s[i] == '.') {
        ++i;
        if (!digits())
            return false;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
        ++i;
        if (i < s.size() && (s[i] == '+' || s[i] == '-'))
            ++i;
        if (!digits())
            return false;
    }
    return i == s.size();
}

} // namespace

std::string
JsonSink::cellValue(const std::string &cell)
{
    // The JSON literals pass through unquoted so producers can emit
    // null (e.g. an unmeasurable speedup) and real booleans.
    if (cell == "null" || cell == "true" || cell == "false")
        return cell;
    return isJsonNumber(cell) ? cell : quote(cell);
}

void
JsonSink::header(const std::vector<std::string> &cells)
{
    tlbpf_assert(_keys.empty(), "JsonSink header set twice");
    tlbpf_assert(!cells.empty(), "JsonSink needs at least one column");
    _keys = cells;
    *_out << "[";
}

void
JsonSink::row(const std::vector<std::string> &cells)
{
    tlbpf_assert(cells.size() == _keys.size(),
                 "JSON row arity ", cells.size(), " != header arity ",
                 _keys.size());
    if (!_firstRow)
        *_out << ',';
    _firstRow = false;
    *_out << "\n  {";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            *_out << ", ";
        *_out << quote(_keys[i]) << ": " << cellValue(cells[i]);
    }
    *_out << "}";
}

void
JsonSink::finish()
{
    if (_finished)
        return;
    _finished = true;
    if (!_keys.empty())
        *_out << "\n]\n";
    _out->flush();
}

// --- MultiSink -------------------------------------------------------

void
MultiSink::add(std::unique_ptr<ResultSink> sink)
{
    _sinks.push_back(std::move(sink));
}

void
MultiSink::header(const std::vector<std::string> &cells)
{
    for (auto &sink : _sinks)
        sink->header(cells);
}

void
MultiSink::row(const std::vector<std::string> &cells)
{
    for (auto &sink : _sinks)
        sink->row(cells);
}

void
MultiSink::finish()
{
    for (auto &sink : _sinks)
        sink->finish();
}

} // namespace tlbpf
