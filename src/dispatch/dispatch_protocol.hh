/**
 * @file
 * Wire verbs of the distributed dispatch subsystem — the worker side
 * of the sweep service's framed-JSON protocol.
 *
 * A tlbpf-worker process connects to the same port clients use and
 * promotes its connection to a worker session with one handshake:
 *
 *   worker -> server   {"type":"worker_hello","protocol":1,
 *                       "threads":N}
 *   server -> worker   {"type":"worker_welcome","worker":ID,
 *                       "heartbeat_ms":H}
 *
 * after which the worker pulls work with a polling lease loop:
 *
 *   {"type":"lease","worker":ID}
 *     -> {"type":"lease_grant","lease":L,"chain":B,"jobs":[...]}
 *        when the dispatcher has leasable cells (a block of plain
 *        cells, or one checkpoint-chained shard group when "chain"
 *        is true — run those jobs sequentially, in order), or
 *     -> {"type":"lease_idle"} when it does not (sleep briefly, ask
 *        again).
 *   {"type":"cell_result","lease":L,"results":[...]}
 *     -> {"type":"result_ok","accepted":B}  accepted=false means the
 *        lease had already expired or been reclaimed and the payload
 *        was discarded (never double-counted).
 *   {"type":"cell_result","lease":L,"error":MSG}
 *        the worker could not run the lease (e.g. a trace file that
 *        only exists on the server's filesystem); the dispatcher
 *        requeues those cells local-only.
 *   {"type":"heartbeat","worker":ID}
 *        one-way (no reply): refreshes the deadline of every lease
 *        the worker holds, so a slow-but-alive worker keeps its work
 *        while a stalled or dead one is reclaimed at the deadline.
 *
 * Only functional cells cross the wire: counters are exact u64
 * integers end to end (the byte-identity contract), while timed
 * cells carry double-valued TimingConfig knobs, so the dispatcher
 * simply never offers them for lease — they run on the server's
 * local engine.
 *
 * Decoding follows the service protocol's strictness rules
 * (requireKnownKeys, exact counters); a malformed frame from a
 * worker drops only that worker's connection and its leases are
 * re-leased locally.
 */

#ifndef TLBPF_DISPATCH_DISPATCH_PROTOCOL_HH
#define TLBPF_DISPATCH_DISPATCH_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "run/job.hh"
#include "service/protocol.hh"

namespace tlbpf
{

/** Bumped on any incompatible change to the worker verbs. */
constexpr std::uint32_t kDispatchProtocolVersion = 1;

/** Worker registration handshake (worker -> server). */
struct WorkerHello
{
    std::uint32_t protocol = kDispatchProtocolVersion;
    unsigned threads = 1; ///< worker engine width (sizes lease blocks)

    std::string encode() const;
    static WorkerHello decode(const JsonValue &message);
};

/** Registration acknowledgement (server -> worker). */
struct WorkerWelcome
{
    std::uint64_t worker = 0;     ///< the worker's id for this session
    std::uint64_t heartbeatMs = 0; ///< send heartbeats this often

    std::string encode() const;
    static WorkerWelcome decode(const JsonValue &message);
};

/**
 * One leased unit of work: a block of independent functional cells,
 * or (chain == true) the shards of one cell in stream order, to be
 * run sequentially so shard k warms from shard k-1's checkpoint.
 */
struct LeaseGrant
{
    std::uint64_t lease = 0;
    bool chain = false;
    std::vector<SweepJob> jobs;

    std::string encode() const;
    /** Strict decode; rebuilds each SweepJob from its spec labels. */
    static LeaseGrant decode(const JsonValue &message);
};

/** {"type":"lease","worker":ID} */
std::string encodeLeaseRequest(std::uint64_t worker);

/** Strict decode of a lease request's worker id. */
std::uint64_t decodeLeaseRequest(const JsonValue &message);

/** {"type":"lease_idle"} */
std::string encodeLeaseIdle();

/** {"type":"heartbeat","worker":ID} — one-way, never answered. */
std::string encodeHeartbeat(std::uint64_t worker);

/** Strict decode of a heartbeat's worker id. */
std::uint64_t decodeHeartbeat(const JsonValue &message);

/** Completed (or failed) lease payload (worker -> server). */
struct CellResultMsg
{
    std::uint64_t lease = 0;
    /** One result per granted job, in grant order (success path). */
    std::vector<SweepResult> results;
    /** Non-empty when the worker could not run the lease. */
    std::string error;

    bool failed() const { return !error.empty(); }

    std::string encode() const;
    static CellResultMsg decode(const JsonValue &message);
};

/** {"type":"result_ok","accepted":B} */
std::string encodeResultAck(bool accepted);

/** Strict decode of a result acknowledgement. */
bool decodeResultAck(const JsonValue &message);

} // namespace tlbpf

#endif // TLBPF_DISPATCH_DISPATCH_PROTOCOL_HH
