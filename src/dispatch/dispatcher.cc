#include "dispatch/dispatcher.hh"

#include <algorithm>
#include <stdexcept>

#include "util/check.hh"

namespace tlbpf
{

namespace
{

std::chrono::milliseconds
leaseWindow(const DispatcherOptions &options)
{
    return std::chrono::milliseconds(
        options.leaseTimeoutMs ? options.leaseTimeoutMs : 1);
}

} // namespace

Dispatcher::Dispatcher(SweepEngine &engine,
                       const DispatcherOptions &options)
    : _engine(engine), _options(options)
{
}

std::uint64_t
Dispatcher::registerWorker(unsigned threads)
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::uint64_t id = _nextWorker++;
    _workers.emplace(id, threads ? threads : 1);
    return id;
}

void
Dispatcher::unregisterWorker(std::uint64_t worker)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_workers.erase(worker) == 0)
        return;
    // A dead worker's leases go straight back in the queue: the CI
    // kill-a-worker smoke relies on this being immediate, not
    // deadline-paced.
    for (auto it = _leases.begin(); it != _leases.end();) {
        if (it->second.worker != worker) {
            ++it;
            continue;
        }
        if (_batch) {
            for (const Unit &unit : it->second.units)
                _batch->queue.push_back(unit);
            _batch->reclaims += 1;
        }
        _counters.leaseReclaims += 1;
        it = _leases.erase(it);
    }
    _cv.notify_all();
}

void
Dispatcher::heartbeat(std::uint64_t worker)
{
    std::lock_guard<std::mutex> lock(_mutex);
    Clock::time_point deadline = Clock::now() + leaseWindow(_options);
    for (auto &entry : _leases)
        if (entry.second.worker == worker)
            entry.second.deadline = deadline;
}

bool
Dispatcher::lease(std::uint64_t worker, LeaseGrant &out)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto wit = _workers.find(worker);
    if (wit == _workers.end())
        throw std::invalid_argument("lease: unknown worker id " +
                                    std::to_string(worker));
    if (!_batch)
        return false;
    Clock::time_point now = Clock::now();
    reclaimExpiredLocked(now);

    auto takeNext = [&](bool plainOnly) -> bool {
        auto &queue = _batch->queue;
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (!it->remoteable || (plainOnly && it->chain))
                continue;
            Unit unit = *it;
            queue.erase(it);
            LeaseState &state = _leases[out.lease];
            state.units.push_back(unit);
            state.jobCount += unit.count;
            for (std::uint32_t k = 0; k < unit.count; ++k)
                out.jobs.push_back(
                    _batch->plan->jobs[unit.first + k]);
            out.chain = unit.chain;
            return true;
        }
        return false;
    };

    out.lease = _nextLease; // reserved; only consumed on a grant
    out.chain = false;
    out.jobs.clear();
    if (!takeNext(/*plainOnly=*/false)) {
        _leases.erase(out.lease);
        return false;
    }
    if (!out.chain) {
        // Fill the block with more plain cells, up to the worker's
        // own width; a chain is always granted alone (it is one
        // sequential task however many shards it spans).
        std::size_t cap =
            std::min<std::size_t>(wit->second, _options.maxLeaseCells);
        while (out.jobs.size() < cap && takeNext(/*plainOnly=*/true))
            ;
    }
    _nextLease += 1;
    LeaseState &state = _leases[out.lease];
    state.worker = worker;
    state.granted = now;
    state.deadline = now + leaseWindow(_options);
    _counters.leasesGranted += 1;
    // Grant-shape invariants: the payload the worker must send back
    // is one result per job, so the recorded jobCount has to match
    // what crossed the wire, and a chain is never block-filled.
    TLBPF_DCHECK(!out.jobs.empty());
    TLBPF_DCHECK_MSG(state.jobCount == out.jobs.size(),
                     "lease ", out.lease, " records ", state.jobCount,
                     " jobs but grants ", out.jobs.size());
    TLBPF_DCHECK(!out.chain || state.units.size() == 1);
    return true;
}

bool
Dispatcher::completeLease(std::uint64_t lease,
                          std::vector<SweepResult> results)
{
    Batch *batch = nullptr;
    std::vector<Unit> units;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _leases.find(lease);
        if (it == _leases.end() || !_batch)
            return false; // expired, reclaimed, or a stale batch
        if (results.size() != it->second.jobCount)
            throw std::invalid_argument(
                "cell result carries " +
                std::to_string(results.size()) +
                " results for a lease of " +
                std::to_string(it->second.jobCount) + " cells");
        units = std::move(it->second.units);
        double busy = std::chrono::duration<double>(
                          Clock::now() - it->second.granted)
                          .count();
        batch = _batch;
        batch->remoteCells += results.size();
        batch->busy[it->second.worker] += busy;
        batch->finishers += 1; // keeps the batch alive while we emit
        _counters.cellsDispatched += results.size();
        _leases.erase(it);
    }
    std::size_t offset = 0;
    for (const Unit &unit : units) {
        std::vector<SweepResult> slice(
            std::make_move_iterator(results.begin() + offset),
            std::make_move_iterator(results.begin() + offset +
                                    unit.count));
        offset += unit.count;
        finishUnit(*batch, unit, std::move(slice));
    }
    // The jobCount equality checked above guarantees the unit slices
    // tile the payload exactly; a remainder would mean a unit was
    // reclaimed out from under a live lease entry.
    TLBPF_DCHECK_MSG(offset == results.size(),
                     "lease ", lease, " units consumed ", offset,
                     " of ", results.size(), " results");
    {
        std::lock_guard<std::mutex> lock(_mutex);
        batch->finishers -= 1;
    }
    // `batch` may be destroyed by runBatch() the moment the count
    // hits zero — nothing below may touch it.
    _cv.notify_all();
    return true;
}

void
Dispatcher::failLease(std::uint64_t lease)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _leases.find(lease);
    if (it == _leases.end())
        return;
    if (_batch) {
        for (Unit unit : it->second.units) {
            unit.remoteable = false; // this work is local-only now
            _batch->queue.push_back(unit);
        }
    }
    _counters.remoteFailures += 1;
    _leases.erase(it);
    _cv.notify_all();
}

bool
Dispatcher::hasWorkers() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return !_workers.empty();
}

Dispatcher::Counters
Dispatcher::counters() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Counters out = _counters;
    out.workers = _workers.size();
    return out;
}

Dispatcher::BatchStats
Dispatcher::lastBatchStats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _lastBatch;
}

void
Dispatcher::reclaimExpiredLocked(Clock::time_point now)
{
    for (auto it = _leases.begin(); it != _leases.end();) {
        if (it->second.deadline > now) {
            ++it;
            continue;
        }
        if (_batch) {
            for (const Unit &unit : it->second.units)
                _batch->queue.push_back(unit);
            _batch->reclaims += 1;
        }
        _counters.leaseReclaims += 1;
        it = _leases.erase(it);
    }
}

void
Dispatcher::finishUnit(Batch &batch, const Unit &unit,
                       std::vector<SweepResult> results)
{
    // Fold the unit's shard windows into its pre-expansion cell via
    // the engine's own reduce step, so a remotely-run chain merges
    // byte-identically to runSharded().
    TLBPF_DCHECK_MSG(unit.group < batch.merged.size(),
                     "unit group ", unit.group, " outside a batch of ",
                     batch.merged.size(), " groups");
    TLBPF_DCHECK(unit.first + unit.count <= batch.plan->jobs.size());
    ShardPlan sub;
    sub.jobs.assign(batch.plan->jobs.begin() + unit.first,
                    batch.plan->jobs.begin() + unit.first + unit.count);
    sub.groupSizes = {unit.count};
    std::vector<SweepResult> merged = mergeShardResults(sub, results);
    {
        std::lock_guard<std::mutex> lock(_mutex);
        // Every group resolves exactly once; overshooting means a
        // reclaimed lease's result was integrated after the local
        // re-run — double completion (the emitter would also catch
        // the slot, but this names the lease machinery directly).
        TLBPF_DCHECK_MSG(batch.groupsDone < batch.merged.size(),
                         "group completion overshoots: ",
                         batch.groupsDone + 1, " of ",
                         batch.merged.size());
        batch.merged[unit.group] = std::move(merged.front());
        batch.groupsDone += 1;
    }
    // The emitter serializes delivery itself; calling it outside
    // _mutex keeps the client-write path off the scheduler lock.
    batch.emitter->complete(unit.group, 1);
}

void
Dispatcher::runUnitLocal(Batch &batch, const Unit &unit)
{
    CheckpointHook *hook = _engine.checkpointHook();
    std::vector<SweepResult> results(unit.count);
    try {
        // Chain units run their shards in stream order on this one
        // thread, so shard k warms from the k-1 boundary state the
        // hook just stored (or replays when checkpointing is off).
        for (std::uint32_t k = 0; k < unit.count; ++k)
            results[k] =
                runSweepJob(batch.plan->jobs[unit.first + k], hook);
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            if (!batch.failed || unit.first < batch.failIndex) {
                batch.failed = true;
                batch.failIndex = unit.first;
                batch.error = std::current_exception();
            }
            batch.groupsDone += 1; // resolved, albeit by failing
        }
        _cv.notify_all();
        return;
    }
    finishUnit(batch, unit, std::move(results));
    _cv.notify_all();
}

void
Dispatcher::localDrain(Batch &batch)
{
    for (;;) {
        Unit unit;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            for (;;) {
                if (batch.groupsDone == batch.merged.size())
                    return;
                reclaimExpiredLocked(Clock::now());
                if (!batch.queue.empty()) {
                    // Locals take the back; leases take the front.
                    // The two ends only meet when the queue is nearly
                    // empty, which keeps the tail of a batch local
                    // (no waiting out a lease on the last cell).
                    unit = batch.queue.back();
                    batch.queue.pop_back();
                    break;
                }
                // Everything is in flight.  Sleep until the earliest
                // lease deadline (to reclaim a stalled worker) or a
                // completion wakes us.
                Clock::time_point wake =
                    Clock::now() + std::chrono::milliseconds(200);
                for (const auto &entry : _leases)
                    wake = std::min(wake, entry.second.deadline);
                _cv.wait_until(lock, wake +
                                         std::chrono::milliseconds(1));
            }
        }
        runUnitLocal(batch, unit);
    }
}

std::vector<SweepResult>
Dispatcher::runBatch(const ShardPlan &plan, ShardWarmup warmup,
                     PassMode mode,
                     const SweepEngine::ResultCallback &on_result)
{
    bool dispatch;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_batch)
            throw std::logic_error(
                "Dispatcher::runBatch is not reentrant");
        dispatch = !_workers.empty();
    }
    if (!dispatch) {
        // No fleet: the engine's own paths (including single-pass
        // stream batching) are both faster and byte-identical, and
        // they ARE the behaviour the 0-worker CI baseline captures.
        if (plan.jobs.size() == plan.groupSizes.size())
            return _engine.run(plan.jobs, mode, on_result);
        return _engine.runSharded(plan, warmup, on_result);
    }

    Batch batch;
    batch.plan = &plan;
    batch.merged.resize(plan.groupSizes.size());
    std::size_t first = 0;
    for (std::size_t g = 0; g < plan.groupSizes.size(); ++g) {
        Unit unit;
        unit.group = g;
        unit.first = first;
        unit.count = plan.groupSizes[g];
        unit.chain = unit.count > 1;
        unit.remoteable = true;
        for (std::uint32_t k = 0; k < unit.count; ++k)
            if (plan.jobs[first + k].mode != JobMode::Functional)
                unit.remoteable = false;
        batch.queue.push_back(unit);
        first += unit.count;
    }
    OrderedEmitter emitter(on_result, batch.merged);
    batch.emitter = &emitter;
    batch.start = Clock::now();

    {
        std::lock_guard<std::mutex> lock(_mutex);
        _batch = &batch;
    }
    _cv.notify_all();

    unsigned width = std::max(1u, _engine.threads());
    _engine.pool().parallelFor(
        width, [&](std::size_t) { localDrain(batch); });

    {
        std::unique_lock<std::mutex> lock(_mutex);
        // The local drain loops are done, but a worker session may
        // still be inside completeLease() emitting its last results;
        // the batch (and its emitter) must outlive that.
        _cv.wait(lock, [&] { return batch.finishers == 0; });
        // Drain postcondition: every group resolved (completed or
        // failed) and no unit left behind in the queue.
        TLBPF_DCHECK_MSG(batch.groupsDone == batch.merged.size(),
                         "batch drained with ", batch.groupsDone,
                         " of ", batch.merged.size(),
                         " groups resolved");
        TLBPF_DCHECK(batch.queue.empty() || batch.failed);
        _batch = nullptr;
        // Any lease still out refers to units the batch already
        // resolved (its holder went quiet and was reclaimed past the
        // deadline, or the batch beat it locally).  Drop them so a
        // late result is discarded, not misapplied to a later batch.
        _leases.clear();
        _lastBatch = BatchStats{};
        _lastBatch.seconds = std::chrono::duration<double>(
                                 Clock::now() - batch.start)
                                 .count();
        _lastBatch.cells = plan.jobs.size();
        _lastBatch.remoteCells = batch.remoteCells;
        _lastBatch.leaseReclaims = batch.reclaims;
        for (const auto &entry : _workers) {
            auto busy = batch.busy.find(entry.first);
            _lastBatch.workerBusy.emplace_back(
                entry.first,
                busy == batch.busy.end() ? 0.0 : busy->second);
        }
    }
    _cv.notify_all();

    if (batch.failed)
        std::rethrow_exception(batch.error);
    return batch.merged;
}

} // namespace tlbpf
