/**
 * @file
 * The pull side of the dispatch subsystem: a DispatchWorker connects
 * to a tlbpf-server, registers with worker_hello, and then loops —
 * lease, simulate, cell_result — on its own SweepEngine until told to
 * stop.  One background thread sends one-way heartbeats so a lease
 * held across a long cell is never reclaimed while the worker is
 * merely busy; the main thread is the only frame *reader*, so replies
 * never interleave.
 *
 * Chains (the shards of one cell) run sequentially in grant order on
 * one thread, warming each shard from its predecessor's boundary
 * state via the worker's own CheckpointStore — pointed at the same
 * --cache-dir as the server's, it restores boundaries the server (or
 * an earlier worker) already deposited and deposits the ones it
 * crosses.  Plain-cell blocks fan out across the worker engine's
 * pool.  Either way the counters are the engine's own, so a leased
 * cell is bit-identical to a local one.
 *
 * A cell the worker cannot run (e.g. a trace path that only exists on
 * the server's filesystem) is answered with a cell_result error frame
 * and the server requeues it local-only.  A lost connection triggers
 * reconnect-with-backoff; the server reclaims the dead session's
 * leases immediately, so a kill -9 mid-lease costs latency, never a
 * batch.
 */

#ifndef TLBPF_DISPATCH_WORKER_HH
#define TLBPF_DISPATCH_WORKER_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "dispatch/dispatch_protocol.hh"
#include "run/sweep_engine.hh"
#include "service/checkpoint_store.hh"

namespace tlbpf
{

struct DispatchWorkerOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = kDefaultServicePort;
    unsigned threads = 1; ///< worker engine width (0 = hardware)
    /** Shared persistence root (same layout as the server's). */
    std::string cacheDir;
    std::size_t checkpointCapacity = 256;
    std::uint64_t idlePollMs = 20;   ///< sleep between idle leases
    std::uint64_t reconnectMs = 500; ///< backoff between connects
    /** Give up after this many failed connects in a row (0 = never). */
    std::uint64_t maxReconnectAttempts = 0;
};

class DispatchWorker
{
  public:
    explicit DispatchWorker(const DispatchWorkerOptions &options);

    /**
     * Serve until requestStop() — connect, register, pull leases;
     * reconnect with backoff whenever the server goes away.  Returns
     * normally on stop, throws TransportError only when the connect
     * retry budget (maxReconnectAttempts) is exhausted.
     */
    void run();

    /**
     * End run() soon: async-signal-safe (atomic flag + shutdown(2) on
     * the live socket, both signal-safe), so it pairs with SIGTERM.
     */
    void requestStop();

    /** Cells whose results the server accepted. */
    std::uint64_t cellsCompleted() const { return _cells.load(); }

    /** Results the server discarded (lease expired/reclaimed). */
    std::uint64_t cellsDiscarded() const { return _discarded.load(); }

    /** Leases answered, accepted or not. */
    std::uint64_t leasesCompleted() const { return _leases.load(); }

    /** Sessions established (minus one = reconnects). */
    std::uint64_t sessions() const { return _sessions.load(); }

  private:
    /** One connection's lifetime; returns when it ends or on stop. */
    void session(int fd);

    DispatchWorkerOptions _options;
    SweepEngine _engine;
    CheckpointStore _checkpoints;
    std::atomic<bool> _stop{false};
    std::atomic<int> _activeFd{-1};
    std::atomic<std::uint64_t> _cells{0};
    std::atomic<std::uint64_t> _discarded{0};
    std::atomic<std::uint64_t> _leases{0};
    std::atomic<std::uint64_t> _sessions{0};
};

} // namespace tlbpf

#endif // TLBPF_DISPATCH_WORKER_HH
