#include "dispatch/dispatch_protocol.hh"

#include <stdexcept>

namespace tlbpf
{

namespace
{

/**
 * One functional cell on the wire.  The workload label and canonical
 * mechanism string round-trip through their parsers, so a leased
 * `spec#k/N` shard re-derives the same window — and the same
 * checkpointKey() — on the worker as on the server.
 */
std::string
encodeWireJob(const SweepJob &job)
{
    if (job.mode != JobMode::Functional)
        throw std::invalid_argument(
            "only functional cells are leasable");
    JsonObjectWriter out;
    out.str("workload", job.workload.label());
    out.str("mechanism", job.spec.canonical());
    out.u64("refs", job.refs);
    out.raw("config", encodeConfig(job.config));
    return out.take();
}

SweepJob
decodeWireJob(const JsonValue &object)
{
    requireKnownKeys(object, "lease job",
                     {"workload", "mechanism", "refs", "config"});
    WorkloadSpec workload =
        WorkloadSpec::parse(object.at("workload").asString());
    MechanismSpec spec =
        MechanismSpec::parse(object.at("mechanism").asString());
    std::uint64_t refs = object.at("refs").asU64();
    if (refs == 0)
        throw std::invalid_argument(
            "lease job needs a positive reference budget");
    return SweepJob::functional(std::move(workload), spec, refs,
                                decodeConfig(object.at("config")));
}

std::string
encodeWireResult(const SweepResult &result)
{
    JsonObjectWriter out;
    out.str("workload", result.workload);
    out.str("mechanism", result.mechanism);
    out.raw("counters", encodeCounters(result.functional));
    return out.take();
}

SweepResult
decodeWireResult(const JsonValue &object)
{
    requireKnownKeys(object, "cell result entry",
                     {"workload", "mechanism", "counters"});
    SweepResult result;
    result.mode = JobMode::Functional;
    result.workload = object.at("workload").asString();
    result.mechanism = object.at("mechanism").asString();
    result.functional = decodeCounters(object.at("counters"));
    return result;
}

} // namespace

std::string
WorkerHello::encode() const
{
    JsonObjectWriter out;
    out.str("type", "worker_hello");
    out.u64("protocol", protocol);
    out.u64("threads", threads);
    return out.take();
}

WorkerHello
WorkerHello::decode(const JsonValue &message)
{
    requireKnownKeys(message, "worker hello",
                     {"type", "protocol", "threads"});
    WorkerHello hello;
    hello.protocol =
        static_cast<std::uint32_t>(message.at("protocol").asU64());
    if (hello.protocol != kDispatchProtocolVersion)
        throw std::invalid_argument(
            "worker speaks dispatch protocol " +
            std::to_string(hello.protocol) + ", server speaks " +
            std::to_string(kDispatchProtocolVersion));
    std::uint64_t threads = message.at("threads").asU64();
    if (threads < 1 || threads > 4096)
        throw std::invalid_argument(
            "worker hello: threads must be in [1, 4096], got " +
            std::to_string(threads));
    hello.threads = static_cast<unsigned>(threads);
    return hello;
}

std::string
WorkerWelcome::encode() const
{
    JsonObjectWriter out;
    out.str("type", "worker_welcome");
    out.u64("worker", worker);
    out.u64("heartbeat_ms", heartbeatMs);
    return out.take();
}

WorkerWelcome
WorkerWelcome::decode(const JsonValue &message)
{
    requireKnownKeys(message, "worker welcome",
                     {"type", "worker", "heartbeat_ms"});
    WorkerWelcome welcome;
    welcome.worker = message.at("worker").asU64();
    welcome.heartbeatMs = message.at("heartbeat_ms").asU64();
    return welcome;
}

std::string
LeaseGrant::encode() const
{
    JsonObjectWriter out;
    out.str("type", "lease_grant");
    out.u64("lease", lease);
    out.boolean("chain", chain);
    std::string array = "[";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i)
            array += ",";
        array += encodeWireJob(jobs[i]);
    }
    array += "]";
    out.raw("jobs", array);
    return out.take();
}

LeaseGrant
LeaseGrant::decode(const JsonValue &message)
{
    requireKnownKeys(message, "lease grant",
                     {"type", "lease", "chain", "jobs"});
    LeaseGrant grant;
    grant.lease = message.at("lease").asU64();
    grant.chain = message.at("chain").asBool();
    for (const JsonValue &item : message.at("jobs").asArray())
        grant.jobs.push_back(decodeWireJob(item));
    if (grant.jobs.empty())
        throw std::invalid_argument("lease grant carries no jobs");
    return grant;
}

std::string
encodeLeaseRequest(std::uint64_t worker)
{
    JsonObjectWriter out;
    out.str("type", "lease");
    out.u64("worker", worker);
    return out.take();
}

std::uint64_t
decodeLeaseRequest(const JsonValue &message)
{
    requireKnownKeys(message, "lease request", {"type", "worker"});
    return message.at("worker").asU64();
}

std::string
encodeLeaseIdle()
{
    return "{\"type\":\"lease_idle\"}";
}

std::string
encodeHeartbeat(std::uint64_t worker)
{
    JsonObjectWriter out;
    out.str("type", "heartbeat");
    out.u64("worker", worker);
    return out.take();
}

std::uint64_t
decodeHeartbeat(const JsonValue &message)
{
    requireKnownKeys(message, "heartbeat", {"type", "worker"});
    return message.at("worker").asU64();
}

std::string
CellResultMsg::encode() const
{
    JsonObjectWriter out;
    out.str("type", "cell_result");
    out.u64("lease", lease);
    if (failed()) {
        out.str("error", error);
        return out.take();
    }
    std::string array = "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            array += ",";
        array += encodeWireResult(results[i]);
    }
    array += "]";
    out.raw("results", array);
    return out.take();
}

CellResultMsg
CellResultMsg::decode(const JsonValue &message)
{
    requireKnownKeys(message, "cell result",
                     {"type", "lease", "results", "error"});
    CellResultMsg msg;
    msg.lease = message.at("lease").asU64();
    if (const JsonValue *v = message.find("error")) {
        msg.error = v->asString();
        if (msg.error.empty())
            throw std::invalid_argument(
                "cell result: error must be a non-empty message");
        if (message.find("results"))
            throw std::invalid_argument(
                "cell result: a failed lease carries no results");
        return msg;
    }
    for (const JsonValue &item : message.at("results").asArray())
        msg.results.push_back(decodeWireResult(item));
    if (msg.results.empty())
        throw std::invalid_argument("cell result carries no results");
    return msg;
}

std::string
encodeResultAck(bool accepted)
{
    JsonObjectWriter out;
    out.str("type", "result_ok");
    out.boolean("accepted", accepted);
    return out.take();
}

bool
decodeResultAck(const JsonValue &message)
{
    requireKnownKeys(message, "result ack", {"type", "accepted"});
    return message.at("accepted").asBool();
}

} // namespace tlbpf
