#include "dispatch/worker.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <netinet/in.h>
#include <stdexcept>
#include <sys/socket.h>
#include <thread>
#include <cstdio>
#include <cstdlib>
#include <unistd.h>

namespace tlbpf
{

namespace
{

/** "<root>/checkpoints" (the server's layout); "" = memory only. */
std::string
checkpointSubdir(const std::string &root)
{
    return root.empty() ? "" : root + "/checkpoints";
}

int
connectTo(const std::string &host, std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw std::invalid_argument(
            "'" + host + "' is not a dotted-quad IPv4 address");
    int raw = ::socket(AF_INET, SOCK_STREAM, 0);
    if (raw < 0)
        throw TransportError(std::string("cannot create socket: ") +
                             std::strerror(errno));
    OwnedFd sock(raw);
    if (::connect(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return -1; // retryable; the caller backs off
    return sock.release();
}

/**
 * The heartbeat sender: a tiny thread that shares the socket's
 * *write* side (under a mutex) with the session loop.  One-way by
 * design — the session loop stays the only reader, so a heartbeat
 * can never swallow a lease reply.
 */
class HeartbeatThread
{
  public:
    HeartbeatThread(int fd, std::mutex &write_mutex,
                    std::uint64_t worker, std::uint64_t interval_ms)
        : _fd(fd), _writeMutex(write_mutex),
          _frame(encodeHeartbeat(worker)),
          _interval(interval_ms ? interval_ms : 1)
    {
        _thread = std::thread([this] { loop(); });
    }

    ~HeartbeatThread()
    {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _done = true;
        }
        _cv.notify_all();
        _thread.join();
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(_mutex);
        while (!_done) {
            _cv.wait_for(lock, std::chrono::milliseconds(_interval));
            if (_done)
                return;
            lock.unlock();
            try {
                std::lock_guard<std::mutex> write(_writeMutex);
                writeFrame(_fd, _frame);
            } catch (const TransportError &) {
                // The session loop will hit the dead socket itself.
            }
            lock.lock();
        }
    }

    int _fd;
    std::mutex &_writeMutex;
    std::string _frame;
    std::uint64_t _interval;
    std::mutex _mutex;
    std::condition_variable _cv;
    bool _done = false;
    std::thread _thread;
};

} // namespace

DispatchWorker::DispatchWorker(const DispatchWorkerOptions &options)
    : _options(options), _engine(options.threads),
      _checkpoints(checkpointSubdir(options.cacheDir),
                   options.checkpointCapacity)
{
    if (!options.cacheDir.empty())
        _engine.setCheckpointHook(&_checkpoints);
}

void
DispatchWorker::requestStop()
{
    _stop.store(true);
    int fd = _activeFd.load();
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR); // unblocks a reader mid-frame
}

void
DispatchWorker::run()
{
    std::uint64_t failures = 0;
    while (!_stop.load()) {
        int raw = connectTo(_options.host, _options.port);
        if (raw < 0) {
            failures += 1;
            if (_options.maxReconnectAttempts &&
                failures >= _options.maxReconnectAttempts)
                throw TransportError(
                    "cannot reach " + _options.host + ":" +
                    std::to_string(_options.port) + " after " +
                    std::to_string(failures) + " attempts");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(_options.reconnectMs));
            continue;
        }
        failures = 0;
        OwnedFd fd(raw);
        _activeFd.store(fd.fd());
        try {
            session(fd.fd());
        } catch (const TransportError &) {
            // Server went away (or requestStop() shut the socket);
            // fall through to the reconnect loop.
        } catch (const std::invalid_argument &) {
            // The server answered with something this worker cannot
            // parse (or an error frame): drop the session and try a
            // fresh one rather than loop on a confused connection.
        }
        _activeFd.store(-1);
        if (!_stop.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(_options.reconnectMs));
    }
}

void
DispatchWorker::session(int fd)
{
    std::mutex write_mutex;

    WorkerHello hello;
    hello.threads = std::max(1u, _engine.threads());
    {
        std::lock_guard<std::mutex> lock(write_mutex);
        writeFrame(fd, hello.encode());
    }
    JsonValue message;
    std::string type;
    if (!readMessage(fd, message, type))
        throw TransportError("server closed during registration");
    if (type == "error")
        throw std::invalid_argument(
            "server refused registration"); // e.g. --max-clients shed
    if (type != "worker_welcome")
        throw std::invalid_argument("expected worker_welcome, got '" +
                                    type + "'");
    WorkerWelcome welcome = WorkerWelcome::decode(message);
    _sessions.fetch_add(1);

    HeartbeatThread heartbeat(fd, write_mutex, welcome.worker,
                              welcome.heartbeatMs);

    while (!_stop.load()) {
        {
            std::lock_guard<std::mutex> lock(write_mutex);
            writeFrame(fd, encodeLeaseRequest(welcome.worker));
        }
        if (!readMessage(fd, message, type))
            throw TransportError("server closed the connection");
        if (std::getenv("TLBPF_WIRE_TRACE")) std::fprintf(stderr, "[wrk] reply %s\n", type.c_str());
        if (type == "lease_idle") {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(_options.idlePollMs));
            continue;
        }
        if (type != "lease_grant")
            throw std::invalid_argument("expected a lease, got '" +
                                        type + "'");
        LeaseGrant grant = LeaseGrant::decode(message);
        if (std::getenv("TLBPF_WIRE_TRACE")) std::fprintf(stderr, "[wrk] grant %llu: %zu jobs chain=%d\n", (unsigned long long)grant.lease, grant.jobs.size(), (int)grant.chain);

        CellResultMsg answer;
        answer.lease = grant.lease;
        try {
            if (grant.chain) {
                // Shards of one cell: sequential, in stream order,
                // so each warms from the boundary the previous one
                // just stored.
                answer.results.reserve(grant.jobs.size());
                for (const SweepJob &job : grant.jobs)
                    answer.results.push_back(
                        runSweepJob(job, _engine.checkpointHook()));
            } else {
                answer.results = _engine.run(grant.jobs);
            }
        } catch (const std::exception &e) {
            // E.g. a trace file that only exists server-side: tell
            // the server so it requeues these cells local-only.
            answer.results.clear();
            answer.error = e.what();
        }
        if (std::getenv("TLBPF_WIRE_TRACE")) std::fprintf(stderr, "[wrk] computed (%zu results, err='%s')\n", answer.results.size(), answer.error.c_str());
        {
            std::lock_guard<std::mutex> lock(write_mutex);
            writeFrame(fd, answer.encode());
        }
        if (std::getenv("TLBPF_WIRE_TRACE")) std::fprintf(stderr, "[wrk] result sent, reading ack\n");
        if (!readMessage(fd, message, type))
            throw TransportError("server closed the connection");
        if (std::getenv("TLBPF_WIRE_TRACE")) std::fprintf(stderr, "[wrk] ack read: %s\n", type.c_str());
        if (type != "result_ok")
            throw std::invalid_argument(
                "expected a result acknowledgement, got '" + type +
                "'");
        bool accepted = decodeResultAck(message);
        _leases.fetch_add(1);
        if (answer.failed())
            continue;
        if (accepted)
            _cells.fetch_add(answer.results.size());
        else
            _discarded.fetch_add(answer.results.size());
    }
}

} // namespace tlbpf
