/**
 * @file
 * The dispatch subsystem's core: a lease-based work pool that fans a
 * sweep batch out across the server's local engine and any number of
 * registered remote workers, with the same determinism contract as a
 * purely local run.
 *
 * Execution model.  One batch (a ShardPlan) is active at a time — the
 * server serializes sweeps across connections.  runBatch() turns the
 * plan's groups into work units (one unit per pre-expansion cell: a
 * singleton job, or the checkpoint-chained shards of one cell run in
 * stream order) and puts them in a shared queue.  Local drain loops —
 * one per engine pool thread — pull units from the back; worker
 * sessions lease units from the front (a block of up to
 * `worker threads` plain cells, or one chain).  Whoever completes a
 * unit folds its shard window counters into the pre-expansion cell
 * result (mergeShardResults) and marks the cell's slot in the shared
 * OrderedEmitter, so the client-facing stream arrives in submission
 * order no matter which side — or which machine — simulated a cell.
 *
 * Leases carry a deadline.  A worker refreshes its deadlines with
 * one-way heartbeats; a worker whose connection drops is reclaimed
 * immediately (unregisterWorker), and one that stalls past its
 * deadline is reclaimed by whichever local drain loop notices — its
 * units go back in the queue and the batch always completes.  A
 * result arriving for a reclaimed lease is discarded (completeLease
 * returns false), so no cell is ever double-counted.
 *
 * Determinism.  Every unit's result is bit-identical wherever it
 * runs: cells and counters cross the wire as exact integers, shard
 * windows depend only on (stream, geometry, mechanism), and slots
 * are pre-assigned — so the lease/reclaim interleaving can change
 * *who* computes a cell but never a byte of the ordered stream.
 * With no workers registered at batch start, runBatch() degrades to
 * the engine's own run()/runSharded() paths (including single-pass
 * batching), exactly the pre-dispatch server behaviour.
 *
 * Only functional cells are leased; timed cells always run locally
 * (their TimingConfig carries doubles the integer-exact wire format
 * deliberately does not).
 */

#ifndef TLBPF_DISPATCH_DISPATCHER_HH
#define TLBPF_DISPATCH_DISPATCHER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "dispatch/dispatch_protocol.hh"
#include "run/sweep_engine.hh"

namespace tlbpf
{

struct DispatcherOptions
{
    /** A lease not refreshed within this window is reclaimed. */
    std::uint64_t leaseTimeoutMs = 2000;
    /** Hard cap on plain cells granted in one lease. */
    std::size_t maxLeaseCells = 16;
};

class Dispatcher
{
  public:
    /** Lifetime counters (surface through the server's "stats"). */
    struct Counters
    {
        std::uint64_t workers = 0;        ///< registered right now
        std::uint64_t leasesGranted = 0;
        std::uint64_t leaseReclaims = 0;  ///< deadline + dead-worker
        std::uint64_t cellsDispatched = 0; ///< plan jobs run remotely
        std::uint64_t remoteFailures = 0; ///< leases failed by workers
    };

    /** Telemetry of the most recent dispatched batch. */
    struct BatchStats
    {
        double seconds = 0;          ///< batch wall-clock
        std::uint64_t cells = 0;     ///< plan jobs in the batch
        std::uint64_t remoteCells = 0;
        std::uint64_t leaseReclaims = 0;
        /** (worker id, seconds that worker held completed leases). */
        std::vector<std::pair<std::uint64_t, double>> workerBusy;
    };

    explicit Dispatcher(SweepEngine &engine,
                        const DispatcherOptions &options = {});

    /* ---- worker-session side (any thread) ---- */

    /** Register a worker; returns its id for this session. */
    std::uint64_t registerWorker(unsigned threads);

    /**
     * Drop a worker (its connection ended); every lease it still
     * holds is reclaimed into the local queue immediately.
     */
    void unregisterWorker(std::uint64_t worker);

    /** Refresh the deadline of every lease @p worker holds. */
    void heartbeat(std::uint64_t worker);

    /**
     * Lease the next block of work to @p worker.  Returns false when
     * no leasable work is queued right now (idle).  Throws
     * std::invalid_argument for an unregistered worker id.
     */
    bool lease(std::uint64_t worker, LeaseGrant &out);

    /**
     * Integrate a completed lease: one result per granted job, in
     * grant order.  Returns false (payload discarded) when the lease
     * already expired or was reclaimed.  Throws
     * std::invalid_argument when the payload does not match the
     * grant's shape — the session drops that worker.
     */
    bool completeLease(std::uint64_t lease,
                       std::vector<SweepResult> results);

    /**
     * The worker could not run the lease (e.g. a server-local trace
     * path); its cells are requeued local-only.  Unknown or expired
     * leases are ignored.
     */
    void failLease(std::uint64_t lease);

    /** True when at least one worker is registered. */
    bool hasWorkers() const;

    Counters counters() const;
    BatchStats lastBatchStats() const;

    /* ---- batch side (one caller at a time) ---- */

    /**
     * Run @p plan to completion across the local engine and any
     * registered workers, streaming merged pre-expansion results
     * through @p on_result in submission order (the engine's
     * ResultCallback contract).  Returns the merged results.  Callers
     * must serialize runBatch() invocations (the server holds its
     * batch mutex across this call).  Rethrows the lowest-index cell
     * failure after the batch drains, like SweepEngine::run.
     */
    std::vector<SweepResult>
    runBatch(const ShardPlan &plan, ShardWarmup warmup, PassMode mode,
             const SweepEngine::ResultCallback &on_result);

  private:
    using Clock = std::chrono::steady_clock;

    /** One schedulable unit: a whole pre-expansion group. */
    struct Unit
    {
        std::size_t group = 0; ///< index into plan.groupSizes
        std::size_t first = 0; ///< first index into plan.jobs
        std::uint32_t count = 1;
        bool remoteable = false;
        bool chain = false;
    };

    struct LeaseState
    {
        std::uint64_t worker = 0;
        std::vector<Unit> units;
        std::size_t jobCount = 0;
        Clock::time_point granted;
        Clock::time_point deadline;
    };

    struct Batch
    {
        const ShardPlan *plan = nullptr;
        std::vector<SweepResult> merged; ///< one slot per group
        std::deque<Unit> queue;
        std::size_t groupsDone = 0;
        std::size_t finishers = 0; ///< remote completions mid-emit
        bool failed = false;
        std::size_t failIndex = 0; ///< lowest failing plan-job index
        std::exception_ptr error;
        OrderedEmitter *emitter = nullptr;
        Clock::time_point start;
        std::uint64_t remoteCells = 0;
        std::uint64_t reclaims = 0;
        std::map<std::uint64_t, double> busy; ///< worker -> seconds
    };

    void localDrain(Batch &batch);
    void runUnitLocal(Batch &batch, const Unit &unit);
    /** Fold a unit's per-shard results into its group slot + emit. */
    void finishUnit(Batch &batch, const Unit &unit,
                    std::vector<SweepResult> results);
    /** Requeue every lease whose deadline passed (under _mutex). */
    void reclaimExpiredLocked(Clock::time_point now);

    SweepEngine &_engine;
    DispatcherOptions _options;

    mutable std::mutex _mutex;
    std::condition_variable _cv;
    std::map<std::uint64_t, unsigned> _workers; ///< id -> threads
    std::map<std::uint64_t, LeaseState> _leases;
    std::uint64_t _nextWorker = 1;
    std::uint64_t _nextLease = 1;
    Batch *_batch = nullptr;
    Counters _counters;
    BatchStats _lastBatch;
};

} // namespace tlbpf

#endif // TLBPF_DISPATCH_DISPATCHER_HH
