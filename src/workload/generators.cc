#include "workload/generators.hh"

#include <cmath>

#include "trace/adaptors.hh"
#include "util/logging.hh"

namespace tlbpf
{

namespace
{

/** Deterministic within-page dwell offsets (8-byte aligned). */
inline Addr
dwellOffset(std::uint32_t j)
{
    return (static_cast<Addr>(j) * 264) % kDefaultPageBytes & ~7ull;
}

/** Wrap a signed page cursor into [base, base + region). */
inline Vpn
wrapPage(std::int64_t page, Vpn base, std::uint64_t region)
{
    std::int64_t rel = page - static_cast<std::int64_t>(base);
    std::int64_t span = static_cast<std::int64_t>(region);
    rel %= span;
    if (rel < 0)
        rel += span;
    return base + static_cast<Vpn>(rel);
}

} // namespace

// ---------------------------------------------------------------------
// StridedScan

StridedScan::StridedScan(const Config &config)
    : _config(config)
{
    tlbpf_assert(_config.count > 0, "StridedScan needs count > 0");
    tlbpf_assert(_config.passes > 0, "StridedScan needs passes > 0");
    if (_config.strideBytes < 0) {
        std::int64_t extent =
            -_config.strideBytes * static_cast<std::int64_t>(_config.count);
        tlbpf_assert(static_cast<std::int64_t>(_config.base) >= extent,
                     "negative-stride scan would underflow");
    }
    if (_config.shuffleBlockPages > 0) {
        tlbpf_assert(_config.strideBytes > 0,
                     "block shuffling needs a positive stride");
        std::uint64_t footprint_pages =
            (_config.count * static_cast<std::uint64_t>(
                                 _config.strideBytes)) /
                kDefaultPageBytes +
            1;
        std::uint64_t num_blocks =
            footprint_pages / _config.shuffleBlockPages + 1;
        _blockPerm.resize(num_blocks);
        for (std::uint64_t b = 0; b < num_blocks; ++b)
            _blockPerm[b] = static_cast<std::uint32_t>(b);
        Rng rng(_config.seed);
        rng.shuffle(_blockPerm);
    }
}

Addr
StridedScan::remap(Addr vaddr) const
{
    if (_blockPerm.empty())
        return vaddr;
    Addr offset = vaddr - _config.base;
    Addr page = offset / kDefaultPageBytes;
    Addr in_page = offset % kDefaultPageBytes;
    Addr block = page / _config.shuffleBlockPages;
    Addr in_block = page % _config.shuffleBlockPages;
    Addr new_page = static_cast<Addr>(_blockPerm[block]) *
                        _config.shuffleBlockPages +
                    in_block;
    return _config.base + new_page * kDefaultPageBytes + in_page;
}

bool
StridedScan::next(MemRef &ref)
{
    if (_pass >= _config.passes)
        return false;
    ref.vaddr = remap(static_cast<Addr>(
        static_cast<std::int64_t>(_config.base) +
        _config.strideBytes * static_cast<std::int64_t>(_i)));
    ref.pc = _config.pc;
    ref.isWrite = false;
    ref.icount = 0;
    if (++_i >= _config.count) {
        _i = 0;
        ++_pass;
    }
    return true;
}


// Generator nextBatch overrides use a qualified next() call so the
// per-reference step inlines into one flat loop instead of a virtual
// dispatch per reference.
std::size_t
StridedScan::nextBatch(MemRef *buf, std::size_t n)
{
    std::size_t filled = 0;
    while (filled < n && StridedScan::next(buf[filled]))
        ++filled;
    return filled;
}

void
StridedScan::reset()
{
    _i = 0;
    _pass = 0;
}

std::string
StridedScan::describe() const
{
    return "strided(stride=" + std::to_string(_config.strideBytes) +
           ",count=" + std::to_string(_config.count) + ",passes=" +
           std::to_string(_config.passes) + ")";
}

// ---------------------------------------------------------------------
// ChangingStrideScan

ChangingStrideScan::ChangingStrideScan(const Config &config)
    : _config(config), _cursor(config.base)
{
    tlbpf_assert(!_config.phases.empty(),
                 "ChangingStrideScan needs phases");
    for (const Phase &phase : _config.phases)
        tlbpf_assert(phase.count > 0, "phase count must be positive");
}

bool
ChangingStrideScan::next(MemRef &ref)
{
    if (_pass >= _config.passes)
        return false;
    const Phase &phase = _config.phases[_phase];
    ref.vaddr = _cursor;
    ref.pc = _config.pc;
    ref.isWrite = false;
    ref.icount = 0;
    _cursor = static_cast<Addr>(static_cast<std::int64_t>(_cursor) +
                                phase.strideBytes);
    if (++_inPhase >= phase.count) {
        _inPhase = 0;
        if (++_phase >= _config.phases.size()) {
            _phase = 0;
            _cursor = _config.base;
            ++_pass;
        }
    }
    return true;
}


std::size_t
ChangingStrideScan::nextBatch(MemRef *buf, std::size_t n)
{
    std::size_t filled = 0;
    while (filled < n && ChangingStrideScan::next(buf[filled]))
        ++filled;
    return filled;
}

void
ChangingStrideScan::reset()
{
    _cursor = _config.base;
    _phase = 0;
    _inPhase = 0;
    _pass = 0;
}

std::string
ChangingStrideScan::describe() const
{
    return "changing-stride(" + std::to_string(_config.phases.size()) +
           " phases)";
}

// ---------------------------------------------------------------------
// DistancePatternWalk

DistancePatternWalk::DistancePatternWalk(const Config &config)
    : _config(config), _rng(config.seed), _page(config.basePage)
{
    tlbpf_assert(!_config.pattern.empty(),
                 "DistancePatternWalk needs a pattern");
    tlbpf_assert(_config.refsPerStep > 0, "refsPerStep must be positive");
    tlbpf_assert(_config.regionPages > 1, "region must exceed one page");
}

void
DistancePatternWalk::advancePage()
{
    std::int64_t delta = _config.pattern[_patternPos];
    _patternPos = (_patternPos + 1) % _config.pattern.size();
    if (_config.noise > 0.0 && _rng.chance(_config.noise)) {
        std::int64_t mag =
            static_cast<std::int64_t>(_rng.nextBelow(16)) + 1;
        delta = _rng.chance(0.5) ? mag : -mag;
    }
    _page = wrapPage(static_cast<std::int64_t>(_page) + delta,
                     _config.basePage, _config.regionPages);
}

bool
DistancePatternWalk::next(MemRef &ref)
{
    if (_pass >= _config.passes)
        return false;
    ref.vaddr = _page * kDefaultPageBytes + dwellOffset(_dwell);
    ref.pc = _config.pcBase + 4 * _dwell;
    ref.isWrite = false;
    ref.icount = 0;
    if (++_dwell >= _config.refsPerStep) {
        _dwell = 0;
        advancePage();
        if (++_step >= _config.steps) {
            _step = 0;
            _page = _config.basePage;
            _patternPos = 0;
            ++_pass;
        }
    }
    return true;
}


std::size_t
DistancePatternWalk::nextBatch(MemRef *buf, std::size_t n)
{
    std::size_t filled = 0;
    while (filled < n && DistancePatternWalk::next(buf[filled]))
        ++filled;
    return filled;
}

void
DistancePatternWalk::reset()
{
    _rng = Rng(_config.seed);
    _page = _config.basePage;
    _step = 0;
    _dwell = 0;
    _pass = 0;
    _patternPos = 0;
}

std::string
DistancePatternWalk::describe() const
{
    return "distance-pattern(k=" + std::to_string(_config.pattern.size()) +
           ",steps=" + std::to_string(_config.steps) + ")";
}

// ---------------------------------------------------------------------
// HistoryLoop

HistoryLoop::HistoryLoop(const Config &config)
    : _config(config), _dwellRng(config.seed ^ 0xd3e11ull)
{
    tlbpf_assert(_config.footprintPages >= 4, "footprint too small");
    tlbpf_assert(_config.seqLen >= 2, "sequence too short");
    tlbpf_assert(_config.alphabetSize >= 2, "alphabet too small");
    tlbpf_assert(_config.refsPerStep > 0, "refsPerStep must be positive");
    buildSequence();
    _dwellTarget = stepDwell();
}

std::uint32_t
HistoryLoop::stepDwell()
{
    if (_config.burstiness <= 0.0 || _config.refsPerStep < 4)
        return _config.refsPerStep;
    if (_dwellRng.chance(_config.burstiness))
        return 1 + static_cast<std::uint32_t>(_dwellRng.nextBelow(3));
    // Keep the mean dwell (hence the miss rate) at ~refsPerStep:
    // solve p*2 + (1-p)*m = refsPerStep for the non-burst dwell m.
    double p = _config.burstiness;
    double m = (static_cast<double>(_config.refsPerStep) - 2.0 * p) /
               (1.0 - p);
    std::uint32_t lo = static_cast<std::uint32_t>(m * 0.6);
    std::uint32_t hi = static_cast<std::uint32_t>(m * 1.4) + 1;
    return lo + static_cast<std::uint32_t>(
                    _dwellRng.nextBelow(hi - lo + 1));
}

void
HistoryLoop::buildSequence()
{
    Rng rng(_config.seed);

    // Distance alphabet: distinct non-zero signed page deltas bounded
    // by a small multiple of the alphabet size, so distances collide
    // heavily across the sequence (that is what separates DP's
    // distance-indexed table from MP's page-indexed one here).
    std::vector<std::int64_t> alphabet;
    std::int64_t bound =
        static_cast<std::int64_t>(_config.alphabetSize) * 3;
    while (alphabet.size() < _config.alphabetSize) {
        std::int64_t d = rng.nextRange(-bound, bound);
        if (d == 0)
            continue;
        bool dup = false;
        for (std::int64_t existing : alphabet)
            dup = dup || existing == d;
        if (!dup)
            alphabet.push_back(d);
    }

    // Canonical successor structure over the alphabet: with probability
    // skew, distance a is followed by succ[a]; otherwise by a random
    // element.  DP's attainable accuracy is governed by skew (plus what
    // its second LRU slot picks up); RP/MP see the *pages*, whose exact
    // sequence repeats every pass, so they can approach 100% once
    // history is built.
    std::vector<std::uint32_t> succ(_config.alphabetSize);
    for (auto &s : succ)
        s = static_cast<std::uint32_t>(
            rng.nextBelow(_config.alphabetSize));

    // The walk visits each page at most once per sweep of the
    // footprint (a near-permutation): a page revisited in *different*
    // sequence contexts would poison the recency stack's and the
    // Markov table's learned successors, and the paper's history
    // applications are precisely the ones where "the next reference
    // after a given address is very likely to remain the same".  When
    // every alphabet distance lands on a visited page, fall back to
    // the nearest unvisited page (an out-of-alphabet distance that DP
    // cannot learn, which is part of what keeps DP below RP here).
    _sequence.clear();
    _sequence.reserve(_config.seqLen);
    std::vector<bool> visited(_config.footprintPages, false);
    std::uint64_t visited_count = 0;

    std::int64_t page = static_cast<std::int64_t>(_config.basePage) +
                        static_cast<std::int64_t>(
                            _config.footprintPages / 2);
    std::uint32_t prev = 0;
    auto rel = [this](Vpn vpn) { return vpn - _config.basePage; };

    for (std::uint64_t i = 0; i < _config.seqLen; ++i) {
        if (visited_count >= _config.footprintPages) {
            std::fill(visited.begin(), visited.end(), false);
            visited_count = 0;
        }
        std::uint32_t pick =
            rng.chance(_config.skew)
                ? succ[prev]
                : static_cast<std::uint32_t>(
                      rng.nextBelow(_config.alphabetSize));
        Vpn target = wrapPage(page + alphabet[pick], _config.basePage,
                              _config.footprintPages);
        // Retry with random alphabet distances if already visited.
        for (unsigned attempt = 0;
             visited[rel(target)] && attempt < _config.alphabetSize;
             ++attempt) {
            pick = static_cast<std::uint32_t>(
                rng.nextBelow(_config.alphabetSize));
            target = wrapPage(page + alphabet[pick], _config.basePage,
                              _config.footprintPages);
        }
        // Last resort: nearest unvisited page scanning upwards.
        while (visited[rel(target)]) {
            target = wrapPage(static_cast<std::int64_t>(target) + 1,
                              _config.basePage, _config.footprintPages);
        }
        visited[rel(target)] = true;
        ++visited_count;
        page = static_cast<std::int64_t>(target);
        _sequence.push_back(target);
        prev = pick;
    }
}

bool
HistoryLoop::next(MemRef &ref)
{
    if (_pass >= _config.passes)
        return false;
    ref.vaddr = _sequence[_pos] * kDefaultPageBytes + dwellOffset(_dwell);
    ref.pc = _config.pcBase + 4 * (_dwell % 8);
    ref.isWrite = false;
    ref.icount = 0;
    if (++_dwell >= _dwellTarget) {
        _dwell = 0;
        _dwellTarget = stepDwell();
        if (++_pos >= _sequence.size()) {
            _pos = 0;
            ++_pass;
        }
    }
    return true;
}


std::size_t
HistoryLoop::nextBatch(MemRef *buf, std::size_t n)
{
    std::size_t filled = 0;
    while (filled < n && HistoryLoop::next(buf[filled]))
        ++filled;
    return filled;
}

void
HistoryLoop::reset()
{
    _dwellRng = Rng(_config.seed ^ 0xd3e11ull);
    _pos = 0;
    _dwell = 0;
    _dwellTarget = stepDwell();
    _pass = 0;
}

std::string
HistoryLoop::describe() const
{
    return "history-loop(fp=" + std::to_string(_config.footprintPages) +
           ",skew=" + std::to_string(_config.skew) + ")";
}

// ---------------------------------------------------------------------
// AlternatingPermutations

AlternatingPermutations::AlternatingPermutations(const Config &config)
    : _config(config)
{
    tlbpf_assert(_config.numPages >= 2, "need at least two pages");
    Rng rng(config.seed);
    for (auto &perm : _perm) {
        perm.resize(_config.numPages);
        for (std::uint64_t i = 0; i < _config.numPages; ++i)
            perm[i] = _config.basePage + i;
        rng.shuffle(perm);
    }
}

bool
AlternatingPermutations::next(MemRef &ref)
{
    if (_round >= _config.rounds)
        return false;
    const std::vector<Vpn> &perm = _perm[_round % 2];
    ref.vaddr = perm[_pos] * kDefaultPageBytes + dwellOffset(_dwell);
    ref.pc = _config.pcBase + 4 * _dwell;
    ref.isWrite = false;
    ref.icount = 0;
    if (++_dwell >= _config.refsPerStep) {
        _dwell = 0;
        if (++_pos >= perm.size()) {
            _pos = 0;
            ++_round;
        }
    }
    return true;
}


std::size_t
AlternatingPermutations::nextBatch(MemRef *buf, std::size_t n)
{
    std::size_t filled = 0;
    while (filled < n && AlternatingPermutations::next(buf[filled]))
        ++filled;
    return filled;
}

void
AlternatingPermutations::reset()
{
    _pos = 0;
    _dwell = 0;
    _round = 0;
}

std::string
AlternatingPermutations::describe() const
{
    return "alternating-perms(n=" + std::to_string(_config.numPages) +
           ",rounds=" + std::to_string(_config.rounds) + ")";
}

// ---------------------------------------------------------------------
// ZipfMix

ZipfMix::ZipfMix(const Config &config)
    : _config(config),
      _rng(config.seed),
      _zipf(config.numPages, config.zipfSkew),
      _page(config.basePage)
{
    tlbpf_assert(_config.refsPerStep > 0, "refsPerStep must be positive");
    _pageMap.resize(_config.numPages);
    for (std::uint64_t i = 0; i < _config.numPages; ++i)
        _pageMap[i] = _config.basePage + i;
    Rng shuffler(config.seed ^ 0xa5a5a5a5ull);
    shuffler.shuffle(_pageMap);
    _page = _pageMap[_zipf.sample(_rng)];
}

bool
ZipfMix::next(MemRef &ref)
{
    if (_step >= _config.steps)
        return false;
    ref.vaddr = _page * kDefaultPageBytes + dwellOffset(_dwell);
    ref.pc = _config.pcBase + 4 * _dwell;
    ref.isWrite = false;
    ref.icount = 0;
    if (++_dwell >= _config.refsPerStep) {
        _dwell = 0;
        ++_step;
        _page = _pageMap[_zipf.sample(_rng)];
    }
    return true;
}


std::size_t
ZipfMix::nextBatch(MemRef *buf, std::size_t n)
{
    std::size_t filled = 0;
    while (filled < n && ZipfMix::next(buf[filled]))
        ++filled;
    return filled;
}

void
ZipfMix::reset()
{
    _rng = Rng(_config.seed);
    _step = 0;
    _dwell = 0;
    _page = _pageMap.empty() ? _config.basePage
                             : _pageMap[_zipf.sample(_rng)];
}

std::string
ZipfMix::describe() const
{
    return "zipf(n=" + std::to_string(_config.numPages) + ",skew=" +
           std::to_string(_config.zipfSkew) + ")";
}

// ---------------------------------------------------------------------
// PaceStream

PaceStream::PaceStream(std::unique_ptr<RefStream> inner,
                       double instr_per_ref)
    : _inner(std::move(inner)), _instrPerRef(instr_per_ref)
{
    tlbpf_assert(_inner != nullptr, "PaceStream needs a stream");
    tlbpf_assert(instr_per_ref >= 1.0,
                 "each reference needs at least one instruction");
}

bool
PaceStream::next(MemRef &ref)
{
    if (!_inner->next(ref))
        return false;
    ref.icount = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(_emitted) * _instrPerRef));
    ++_emitted;
    return true;
}


std::size_t
PaceStream::nextBatch(MemRef *buf, std::size_t n)
{
    std::size_t got = _inner->nextBatch(buf, n);
    for (std::size_t i = 0; i < got; ++i) {
        buf[i].icount = static_cast<std::uint64_t>(std::llround(
            static_cast<double>(_emitted) * _instrPerRef));
        ++_emitted;
    }
    return got;
}

void
PaceStream::reset()
{
    _inner->reset();
    _emitted = 0;
}

std::string
PaceStream::describe() const
{
    return "paced(" + _inner->describe() + ")";
}

// ---------------------------------------------------------------------

std::unique_ptr<RefStream>
makeMultiStreamScan(std::vector<StridedScan::Config> streams,
                    std::uint32_t chunk)
{
    tlbpf_assert(!streams.empty(), "need at least one stream");
    std::vector<std::unique_ptr<RefStream>> inners;
    std::vector<std::uint32_t> weights;
    for (const auto &config : streams) {
        inners.push_back(std::make_unique<StridedScan>(config));
        weights.push_back(chunk);
    }
    return std::make_unique<InterleaveStream>(std::move(inners),
                                              std::move(weights));
}

} // namespace tlbpf
