/**
 * @file
 * Models for the 20 MediaBench applications (paper Figure 8, top four
 * rows).  Calibration per the paper's narrative:
 *  - adpcm-enc/dec: RP best, ASP/DP very good, MP very poor (streaming
 *    footprint far larger than its table); adpcm-enc miss rate ~0.192;
 *  - epic/unepic, mipmap, pgp-enc: cold strided first-touch (ASP/DP);
 *  - gsm-enc/dec, jpeg-enc/dec: DP is the only mechanism making
 *    noticeable predictions (<= ~40%);
 *  - gs, texgen: RP best with strided regularity (ASP also good);
 *  - mpeg-dec: DP clearly best; mpeg-enc moderate;
 *  - g721-enc/dec, pgp-dec: too few misses for anything.
 */

#include "util/logging.hh"
#include "workload/app_registry.hh"
#include "workload/generators.hh"
#include "workload/phase_mix.hh"

namespace tlbpf
{
namespace detail
{

namespace
{

Vpn
region(unsigned idx)
{
    return (1ull << 28) + static_cast<Vpn>(idx) * (1ull << 23);
}

constexpr Addr kPc = 0x500000;

/** DP-only pattern: noisy repeating distance cycle over fresh pages. */
std::unique_ptr<RefStream>
noisyPattern(Vpn base, std::vector<std::int64_t> pattern, double noise,
             std::uint32_t refs_per_step, std::uint64_t seed,
             std::uint64_t refs)
{
    DistancePatternWalk::Config config;
    config.basePage = base;
    config.regionPages = 1ull << 22;
    config.pattern = std::move(pattern);
    config.steps = refs / refs_per_step + 8;
    config.refsPerStep = refs_per_step;
    config.noise = noise;
    config.seed = seed;
    config.pcBase = kPc;
    return makePattern(config, refs);
}

/**
 * TLB-resident working set with a shuffled page layout: the only
 * misses are cold ones in random order, so no mechanism predicts.
 */
std::unique_ptr<RefStream>
tinyFootprint(Vpn base, std::uint64_t pages, std::uint64_t refs)
{
    AlternatingPermutations::Config config;
    config.basePage = base;
    config.numPages = pages;
    config.refsPerStep = 16;
    config.seed = base * 0x9e37 + pages;
    config.pcBase = kPc;
    return makeAlternating(config, refs);
}

} // namespace

void
addMediaModels(std::vector<AppModel> &models)
{
    models.push_back(AppModel{
        "adpcm-enc", kSuiteMedia, "rp-best-streaming", 2.5,
        [](std::uint64_t refs) {
            // 768B stride -> ~5.3 refs/page -> miss rate ~0.19.
            return makeLoopedScan(region(0), 768, 1500, refs, kPc, 8,
                                  0xadc0e1);
        },
        "streaming over a footprint far larger than MP's table; RP "
        "best, ASP/DP equal it, MP near zero; miss rate ~0.192"});

    models.push_back(AppModel{
        "adpcm-dec", kSuiteMedia, "rp-best-streaming", 2.5,
        [](std::uint64_t refs) {
            return makeLoopedScan(region(1), 768, 1400, refs, kPc, 8,
                                  0xadc0e2);
        },
        "as adpcm-enc"});

    models.push_back(AppModel{
        "epic", kSuiteMedia, "cold-strided", 2.5,
        [](std::uint64_t refs) {
            std::vector<StridedScan::Config> streams;
            for (unsigned s = 0; s < 2; ++s) {
                StridedScan::Config config;
                config.base =
                    (region(2) + static_cast<Vpn>(s) * (1ull << 22)) *
                    kDefaultPageBytes;
                config.strideBytes = 64;
                config.count = refs / 2 + 16;
                config.passes = 1;
                config.pc = kPc + 16 * s;
                streams.push_back(config);
            }
            return makeMultiStreamScan(std::move(streams), 8);
        },
        "wavelet image pass; cold strided (working sets small, cold "
        "misses prominent)"});

    models.push_back(AppModel{
        "unepic", kSuiteMedia, "cold-strided", 2.5,
        [](std::uint64_t refs) {
            StridedScan::Config config;
            config.base = region(3) * kDefaultPageBytes;
            config.strideBytes = 56;
            config.count = refs + 16;
            config.passes = 1;
            config.pc = kPc;
            return std::unique_ptr<RefStream>(
                std::make_unique<StridedScan>(config));
        },
        "inverse wavelet pass; cold strided"});

    models.push_back(AppModel{
        "gsm-enc", kSuiteMedia, "dp-only", 2.5,
        [](std::uint64_t refs) {
            return noisyPattern(region(4), {1, 7, -3, 5, 1, 9}, 0.45,
                                44, 0x95e1c, refs);
        },
        "frame/window juggling: noisy but repeating distance cycle; "
        "DP alone makes (modest) predictions"});

    models.push_back(AppModel{
        "gsm-dec", kSuiteMedia, "dp-only", 2.5,
        [](std::uint64_t refs) {
            return noisyPattern(region(5), {2, 5, -1, 7, 2}, 0.45, 46,
                                0x95dec, refs);
        },
        "as gsm-enc"});

    models.push_back(AppModel{
        "rasta", kSuiteMedia, "mixed", 2.5,
        [](std::uint64_t refs) {
            std::vector<std::unique_ptr<RefStream>> parts;
            HistoryLoop::Config history;
            history.basePage = region(6);
            history.footprintPages = 200;
            history.seqLen = 200;
            history.alphabetSize = 10;
            history.skew = 0.6;
            history.refsPerStep = 35;
            history.seed = 0x4a57a;
            history.pcBase = kPc;
            parts.push_back(makeHistory(history, refs / 2));
            parts.push_back(makeLoopedScan(region(6) + (1ull << 22),
                                           384, 150, refs / 2,
                                           kPc + 64));
            return mixed(std::move(parts), {5000, 5000});
        },
        "speech feature pipeline; moderate mix of history and strided "
        "phases"});

    models.push_back(AppModel{
        "gs", kSuiteMedia, "rp-best-streaming", 2.5,
        [](std::uint64_t refs) {
            std::vector<std::unique_ptr<RefStream>> parts;
            parts.push_back(makeLoopedScan(region(7), 1024, 1100,
                                           refs / 2, kPc, 8, 0x9507));
            HistoryLoop::Config history;
            history.basePage = region(7) + (1ull << 22);
            history.footprintPages = 300;
            history.seqLen = 300;
            history.alphabetSize = 10;
            history.skew = 0.7;
            history.refsPerStep = 30;
            history.seed = 0x6705;
            history.pcBase = kPc + 64;
            parts.push_back(makeHistory(history, refs / 2));
            return mixed(std::move(parts), {5000, 5000});
        },
        "ghostscript page render; history repeats, RP close to best"});

    models.push_back(AppModel{
        "g721-enc", kSuiteMedia, "few-misses", 2.5,
        [](std::uint64_t refs) {
            return tinyFootprint(region(8), 40, refs);
        },
        "tables fit in the TLB; too few misses for any predictor"});

    models.push_back(AppModel{
        "g721-dec", kSuiteMedia, "few-misses", 2.5,
        [](std::uint64_t refs) {
            return tinyFootprint(region(9), 45, refs);
        },
        "as g721-enc"});

    models.push_back(AppModel{
        "mipmap-mesa", kSuiteMedia, "cold-strided", 2.5,
        [](std::uint64_t refs) {
            std::vector<StridedScan::Config> streams;
            for (unsigned s = 0; s < 2; ++s) {
                StridedScan::Config config;
                config.base =
                    (region(10) + static_cast<Vpn>(s) * (1ull << 22)) *
                    kDefaultPageBytes;
                config.strideBytes = s == 0 ? 96 : 64;
                config.count = refs / 2 + 16;
                config.passes = 1;
                config.pc = kPc + 16 * s;
                streams.push_back(config);
            }
            return makeMultiStreamScan(std::move(streams), 4);
        },
        "texture level generation; cold strided, ASP/DP good"});

    models.push_back(AppModel{
        "jpeg-enc", kSuiteMedia, "dp-only", 2.5,
        [](std::uint64_t refs) {
            return noisyPattern(region(11), {1, 1, 1, -2, 17, 1}, 0.38,
                                40, 0x19e6c, refs);
        },
        "8x8 block zig-zag over rows; DP alone catches the distance "
        "cycle"});

    models.push_back(AppModel{
        "jpeg-dec", kSuiteMedia, "dp-only", 2.5,
        [](std::uint64_t refs) {
            return noisyPattern(region(12), {1, 1, -1, 18, 1}, 0.38, 42,
                                0x19dec, refs);
        },
        "as jpeg-enc"});

    models.push_back(AppModel{
        "texgen-mesa", kSuiteMedia, "rp-best-streaming", 2.5,
        [](std::uint64_t refs) {
            return makeLoopedScan(region(13), 512, 1200, refs, kPc, 8,
                                  0x7e39e1);
        },
        "texture synthesis sweep; RP/ASP/DP all strong, MP's table too "
        "small"});

    models.push_back(AppModel{
        "mpeg-enc", kSuiteMedia, "mixed", 2.5,
        [](std::uint64_t refs) {
            std::vector<std::unique_ptr<RefStream>> parts;
            parts.push_back(noisyPattern(region(14), {1, 22, -20, 1},
                                         0.3, 20, 0x37e6c, refs / 2));
            parts.push_back(makeLoopedScan(region(14) + (1ull << 22),
                                           512, 250, refs / 2,
                                           kPc + 64));
            return mixed(std::move(parts), {5000, 5000});
        },
        "motion search over reference frames; moderate for everyone"});

    models.push_back(AppModel{
        "mpeg-dec", kSuiteMedia, "dp-best", 2.5,
        [](std::uint64_t refs) {
            return noisyPattern(region(15), {1, 45, 1, -43, 90}, 0.1,
                                46, 0x37dec, refs);
        },
        "macroblock reconstruction strides across frame planes; DP "
        "clearly best"});

    models.push_back(AppModel{
        "pgp-enc", kSuiteMedia, "cold-strided", 2.5,
        [](std::uint64_t refs) {
            StridedScan::Config config;
            config.base = region(16) * kDefaultPageBytes;
            config.strideBytes = 56;
            config.count = refs + 16;
            config.passes = 1;
            config.pc = kPc;
            return std::unique_ptr<RefStream>(
                std::make_unique<StridedScan>(config));
        },
        "bulk cipher over a fresh buffer; cold strided"});

    models.push_back(AppModel{
        "pgp-dec", kSuiteMedia, "few-misses", 2.5,
        [](std::uint64_t refs) {
            return tinyFootprint(region(17), 80, refs);
        },
        "small resident state; too few misses"});

    models.push_back(AppModel{
        "pegwit-enc", kSuiteMedia, "mixed", 2.5,
        [](std::uint64_t refs) {
            std::vector<std::unique_ptr<RefStream>> parts;
            StridedScan::Config scan;
            scan.base = region(18) * kDefaultPageBytes;
            scan.strideBytes = 64;
            scan.count = refs / 2 + 16;
            scan.passes = 1;
            scan.pc = kPc;
            parts.push_back(std::make_unique<StridedScan>(scan));
            parts.push_back(tinyFootprint(region(18) + (1ull << 22), 70,
                                          refs / 2));
            return mixed(std::move(parts), {5000, 5000});
        },
        "elliptic-curve ops on a small state plus a strided payload "
        "pass"});

    models.push_back(AppModel{
        "pegwit-dec", kSuiteMedia, "mixed", 2.5,
        [](std::uint64_t refs) {
            std::vector<std::unique_ptr<RefStream>> parts;
            StridedScan::Config scan;
            scan.base = region(19) * kDefaultPageBytes;
            scan.strideBytes = 64;
            scan.count = refs / 2 + 16;
            scan.passes = 1;
            scan.pc = kPc;
            parts.push_back(std::make_unique<StridedScan>(scan));
            parts.push_back(tinyFootprint(region(19) + (1ull << 22), 60,
                                          refs / 2));
            return mixed(std::move(parts), {5000, 5000});
        },
        "as pegwit-enc"});

    tlbpf_assert(models.size() == 26 + 20,
                 "expected 20 MediaBench models");
}

} // namespace detail
} // namespace tlbpf
