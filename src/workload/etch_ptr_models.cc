/**
 * @file
 * Models for the 5 Etch desktop-application traces and the 5
 * Pointer-Intensive benchmarks (paper Figure 8, bottom two rows).
 *
 * Paper narrative: DP does much better than the others for mpegply,
 * msvc and perl4 (and is the only scheme with noticeable predictions
 * for msvc and bc/ks); anagram and yacr2 are cold-strided (ASP/DP);
 * bc and ks miss too rarely to build history, with DP catching their
 * occasional bursts.
 */

#include "util/logging.hh"
#include "workload/app_registry.hh"
#include "workload/generators.hh"
#include "workload/phase_mix.hh"

namespace tlbpf
{
namespace detail
{

namespace
{

Vpn
region(unsigned idx)
{
    return (1ull << 30) + static_cast<Vpn>(idx) * (1ull << 23);
}

constexpr Addr kPc = 0x600000;

std::unique_ptr<RefStream>
burstyTiny(Vpn base, std::uint64_t loop_pages,
           std::vector<std::int64_t> pattern, double noise,
           std::uint64_t seed, std::uint64_t refs)
{
    // A TLB-resident loop interleaved with occasional pattern-walk
    // bursts: total misses stay low, and the bursts (the only misses)
    // follow a distance pattern only DP can catch.
    std::vector<std::unique_ptr<RefStream>> parts;
    parts.push_back(makeLoopedScan(base, 128, loop_pages,
                                   refs * 24 / 25, kPc));
    DistancePatternWalk::Config burst;
    burst.basePage = base + (1ull << 22);
    burst.regionPages = 1ull << 21;
    burst.pattern = std::move(pattern);
    burst.refsPerStep = 4;
    burst.noise = noise;
    burst.seed = seed;
    burst.pcBase = kPc + 128;
    burst.steps = (refs / 25) / burst.refsPerStep + 8;
    parts.push_back(makePattern(burst, refs / 25));
    return mixed(std::move(parts), {24000, 1000});
}

} // namespace

void
addEtchAndPtrModels(std::vector<AppModel> &models)
{
    // ----- Etch desktop traces -------------------------------------------

    models.push_back(AppModel{
        "bcc", kSuiteEtch, "mixed", 3.5,
        [](std::uint64_t refs) {
            std::vector<std::unique_ptr<RefStream>> parts;
            HistoryLoop::Config history;
            history.basePage = region(0);
            history.footprintPages = 600;
            history.seqLen = 600;
            history.alphabetSize = 12;
            history.skew = 0.6;
            history.refsPerStep = 40;
            history.seed = 0xbcc01;
            history.pcBase = kPc;
            parts.push_back(makeHistory(history, refs / 2));
            parts.push_back(makeLoopedScan(region(0) + (1ull << 22),
                                           256, 350, refs / 2,
                                           kPc + 64));
            return mixed(std::move(parts), {5000, 5000});
        },
        "compiler: symbol-table history plus source scan phases"});

    models.push_back(AppModel{
        "mpegply", kSuiteEtch, "dp-best", 3.5,
        [](std::uint64_t refs) {
            DistancePatternWalk::Config config;
            config.basePage = region(1);
            config.regionPages = 1ull << 22;
            config.pattern = {1, 30, 1, -28, 60};
            config.steps = refs / 40 + 8;
            config.refsPerStep = 40;
            config.noise = 0.15;
            config.seed = 0x37e91;
            config.pcBase = kPc;
            return makePattern(config, refs);
        },
        "video player frame plane walk; DP much better than the rest"});

    models.push_back(AppModel{
        "msvc", kSuiteEtch, "dp-only", 3.5,
        [](std::uint64_t refs) {
            std::vector<std::unique_ptr<RefStream>> parts;
            DistancePatternWalk::Config pattern;
            pattern.basePage = region(2);
            pattern.regionPages = 1ull << 22;
            pattern.pattern = {1, 9, -4, 6, 1, 11};
            pattern.steps = refs / 30 + 8;
            pattern.refsPerStep = 30;
            pattern.noise = 0.4;
            pattern.seed = 0x35c01;
            pattern.pcBase = kPc;
            parts.push_back(makePattern(pattern, refs / 2));
            ZipfMix::Config zipf;
            zipf.basePage = region(2) + (1ull << 22);
            zipf.numPages = 2500;
            zipf.zipfSkew = 0.9;
            zipf.refsPerStep = 30;
            zipf.seed = 0x35c02;
            zipf.pcBase = kPc + 64;
            parts.push_back(makeZipf(zipf, refs / 2));
            return mixed(std::move(parts), {5000, 5000});
        },
        "IDE build: noisy pattern plus irregular UI state; only DP "
        "makes noticeable predictions"});

    models.push_back(AppModel{
        "perl4", kSuiteEtch, "dp-best", 3.5,
        [](std::uint64_t refs) {
            std::vector<std::unique_ptr<RefStream>> parts;
            parts.push_back([&] {
                DistancePatternWalk::Config config;
                config.basePage = region(3);
                config.regionPages = 1ull << 22;
                config.pattern = {1, 5, -2, 7};
                config.steps = refs / 24 + 8;
                config.refsPerStep = 24;
                config.noise = 0.2;
                config.seed = 0x9e241;
                config.pcBase = kPc;
                return makePattern(config, refs / 2);
            }());
            HistoryLoop::Config history;
            history.basePage = region(3) + (1ull << 22);
            history.footprintPages = 300;
            history.seqLen = 300;
            history.alphabetSize = 10;
            history.skew = 0.5;
            history.refsPerStep = 30;
            history.seed = 0x9e242;
            history.pcBase = kPc + 64;
            parts.push_back(makeHistory(history, refs / 2));
            return mixed(std::move(parts), {5000, 5000});
        },
        "interpreter arenas; DP ahead of the history schemes"});

    models.push_back(AppModel{
        "winword", kSuiteEtch, "mixed", 3.5,
        [](std::uint64_t refs) {
            std::vector<std::unique_ptr<RefStream>> parts;
            ZipfMix::Config zipf;
            zipf.basePage = region(4);
            zipf.numPages = 2000;
            zipf.zipfSkew = 0.95;
            zipf.refsPerStep = 25;
            zipf.seed = 0x33d01;
            zipf.pcBase = kPc;
            parts.push_back(makeZipf(zipf, refs / 3));
            HistoryLoop::Config history;
            history.basePage = region(4) + (1ull << 22);
            history.footprintPages = 350;
            history.seqLen = 350;
            history.alphabetSize = 12;
            history.skew = 0.6;
            history.refsPerStep = 35;
            history.seed = 0x33d02;
            history.pcBase = kPc + 64;
            parts.push_back(makeHistory(history, refs / 3));
            parts.push_back(makeLoopedScan(region(4) + (1ull << 23),
                                           384, 250, refs / 3,
                                           kPc + 128));
            return mixed(std::move(parts), {4000, 4000, 4000});
        },
        "word processor: document model history, UI irregularity and "
        "redraw scans"});

    // ----- Pointer-Intensive suite ----------------------------------------

    models.push_back(AppModel{
        "anagram", kSuitePtr, "cold-strided", 3.0,
        [](std::uint64_t refs) {
            std::vector<std::unique_ptr<RefStream>> parts;
            StridedScan::Config scan;
            scan.base = region(8) * kDefaultPageBytes;
            scan.strideBytes = 160;
            scan.count = refs * 2 / 3 + 16;
            scan.passes = 1;
            scan.pc = kPc;
            parts.push_back(std::make_unique<StridedScan>(scan));
            parts.push_back(makeLoopedScan(region(8) + (1ull << 22), 96,
                                           50, refs / 3, kPc + 64));
            return mixed(std::move(parts), {8000, 4000});
        },
        "dictionary scan dominates; cold strided first-touch"});

    models.push_back(AppModel{
        "bc", kSuitePtr, "dp-only-bursty", 3.0,
        [](std::uint64_t refs) {
            return burstyTiny(region(9), 55, {1, 4, -2, 6}, 0.3,
                              0xbc001, refs);
        },
        "calculator: tiny resident state, rare allocation bursts only "
        "DP catches"});

    models.push_back(AppModel{
        "ft", kSuitePtr, "rp-best", 3.0,
        [](std::uint64_t refs) {
            HistoryLoop::Config config;
            config.basePage = region(10);
            config.footprintPages = 700;
            config.seqLen = 700;
            config.alphabetSize = 14;
            config.skew = 0.65;
            config.refsPerStep = 30;
            config.seed = 0xf7001;
            config.pcBase = kPc;
            return makeHistory(config, refs);
        },
        "minimum spanning tree pointer chase; history-based schemes "
        "lead"});

    models.push_back(AppModel{
        "ks", kSuitePtr, "dp-only-bursty", 3.0,
        [](std::uint64_t refs) {
            return burstyTiny(region(11), 60, {2, 5, -1, 7, 2}, 0.35,
                              0x45001, refs);
        },
        "graph partitioning: small resident state with DP-visible "
        "bursts"});

    models.push_back(AppModel{
        "yacr2", kSuitePtr, "cold-strided", 3.0,
        [](std::uint64_t refs) {
            std::vector<StridedScan::Config> streams;
            for (unsigned s = 0; s < 2; ++s) {
                StridedScan::Config config;
                config.base =
                    (region(12) + static_cast<Vpn>(s) * (1ull << 22)) *
                    kDefaultPageBytes;
                config.strideBytes = 96;
                config.count = refs / 2 + 16;
                config.passes = 1;
                config.pc = kPc + 16 * s;
                streams.push_back(config);
            }
            return makeMultiStreamScan(std::move(streams), 6);
        },
        "channel routing grids walked once; cold strided"});

    tlbpf_assert(models.size() == 56, "expected 56 models in total");
}

} // namespace detail
} // namespace tlbpf
