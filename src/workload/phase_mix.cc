#include "workload/phase_mix.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace tlbpf
{

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    tlbpf_assert(b > 0, "division by zero");
    return (a + b - 1) / b;
}

std::unique_ptr<RefStream>
makeLoopedScan(Vpn base_page, std::int64_t stride_bytes,
               std::uint64_t footprint_pages, std::uint64_t total_refs,
               Addr pc, std::uint32_t shuffle_block_pages,
               std::uint64_t seed)
{
    tlbpf_assert(stride_bytes != 0, "scan stride cannot be zero");
    std::uint64_t footprint_bytes = footprint_pages * kDefaultPageBytes;
    std::uint64_t count =
        footprint_bytes /
        static_cast<std::uint64_t>(std::llabs(stride_bytes));
    tlbpf_assert(count > 0, "footprint smaller than one stride");

    StridedScan::Config config;
    config.strideBytes = stride_bytes;
    config.count = count;
    config.passes =
        static_cast<std::uint32_t>(ceilDiv(total_refs, count));
    config.pc = pc;
    config.shuffleBlockPages = shuffle_block_pages;
    config.seed = seed;
    if (stride_bytes > 0) {
        config.base = base_page * kDefaultPageBytes;
    } else {
        config.base = (base_page + footprint_pages) * kDefaultPageBytes -
                      kDefaultPageBytes;
    }
    return std::make_unique<StridedScan>(config);
}

std::unique_ptr<RefStream>
makeHistory(HistoryLoop::Config config, std::uint64_t total_refs)
{
    std::uint64_t per_pass = config.seqLen * config.refsPerStep;
    config.passes =
        static_cast<std::uint32_t>(ceilDiv(total_refs, per_pass));
    return std::make_unique<HistoryLoop>(config);
}

std::unique_ptr<RefStream>
makePattern(DistancePatternWalk::Config config, std::uint64_t total_refs)
{
    std::uint64_t per_pass = config.steps * config.refsPerStep;
    config.passes =
        static_cast<std::uint32_t>(ceilDiv(total_refs, per_pass));
    return std::make_unique<DistancePatternWalk>(config);
}

std::unique_ptr<RefStream>
makeAlternating(AlternatingPermutations::Config config,
                std::uint64_t total_refs)
{
    std::uint64_t per_round = config.numPages * config.refsPerStep;
    std::uint64_t rounds = ceilDiv(total_refs, per_round);
    if (rounds < 4)
        rounds = 4;
    if (rounds % 2)
        ++rounds;
    config.rounds = static_cast<std::uint32_t>(rounds);
    return std::make_unique<AlternatingPermutations>(config);
}

std::unique_ptr<RefStream>
makeZipf(ZipfMix::Config config, std::uint64_t total_refs)
{
    config.steps = ceilDiv(total_refs, config.refsPerStep);
    return std::make_unique<ZipfMix>(config);
}

std::unique_ptr<RefStream>
phases(std::vector<std::unique_ptr<RefStream>> streams)
{
    return std::make_unique<ConcatStream>(std::move(streams));
}

std::unique_ptr<RefStream>
mixed(std::vector<std::unique_ptr<RefStream>> streams,
      std::vector<std::uint32_t> weights)
{
    return std::make_unique<InterleaveStream>(std::move(streams),
                                              std::move(weights));
}

} // namespace tlbpf
