/**
 * @file
 * Registry of the 56 application models the paper evaluates: all 26
 * SPEC CPU2000 applications, 20 MediaBench applications, 5 Etch traces
 * and 5 Pointer-Intensive benchmarks.
 *
 * Each model is a parameterised composition of the synthetic
 * generators, calibrated to reproduce the *pattern class* the paper
 * reports for that application (which mechanisms succeed, roughly what
 * the TLB miss rate is).  See DESIGN.md Section 5 for the taxonomy and
 * the per-group calibration targets.
 */

#ifndef TLBPF_WORKLOAD_APP_REGISTRY_HH
#define TLBPF_WORKLOAD_APP_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trace/ref_stream.hh"

namespace tlbpf
{

/** One synthetic application model. */
struct AppModel
{
    std::string name;     ///< paper's benchmark name, e.g. "mcf"
    std::string suite;    ///< SPEC2000 / MediaBench / Etch / PtrIntensive
    std::string category; ///< narrative group from the paper's analysis
    double instrPerRef;   ///< instructions per data reference (pacing)

    /**
     * Build the raw (unpaced, unbounded-ish) stream sized for roughly
     * @p refs references.
     */
    std::function<std::unique_ptr<RefStream>(std::uint64_t refs)> build;

    std::string notes; ///< what the paper says about this application
};

/** Suite name constants. */
inline constexpr const char *kSuiteSpec = "SPEC2000";
inline constexpr const char *kSuiteMedia = "MediaBench";
inline constexpr const char *kSuiteEtch = "Etch";
inline constexpr const char *kSuitePtr = "PtrIntensive";

/** All 56 models, SPEC first, in the paper's figure order. */
const std::vector<AppModel> &appRegistry();

/** Find a model by name (fatal if unknown). */
const AppModel &findApp(const std::string &name);

/** Find a model by name; nullptr if unknown (for throwing callers). */
const AppModel *findAppOrNull(const std::string &name);

/** Models belonging to @p suite, in registry order. */
std::vector<const AppModel *> appsInSuite(const std::string &suite);

/**
 * Build a ready-to-simulate stream for @p app: the raw composition,
 * truncated to exactly @p refs references and paced with the model's
 * instructions-per-reference ratio.
 */
std::unique_ptr<RefStream> buildApp(const AppModel &app,
                                    std::uint64_t refs);

/** Convenience: buildApp(findApp(name), refs). */
std::unique_ptr<RefStream> buildApp(const std::string &name,
                                    std::uint64_t refs);

/** The 8 highest-TLB-miss-rate applications used in Figure 9. */
const std::vector<std::string> &highMissRateApps();

/** The 5 applications in the paper's Table 3 cycle comparison. */
const std::vector<std::string> &table3Apps();

namespace detail
{
/** Per-suite model providers (one translation unit each). */
void addSpecModels(std::vector<AppModel> &models);
void addMediaModels(std::vector<AppModel> &models);
void addEtchAndPtrModels(std::vector<AppModel> &models);
} // namespace detail

} // namespace tlbpf

#endif // TLBPF_WORKLOAD_APP_REGISTRY_HH
