/**
 * @file
 * Models for the 26 SPEC CPU2000 applications (paper Figure 7).
 *
 * Calibration sources, all from the paper's Section 3.2 narrative:
 *  - all-schemes-good (strided re-touch): facerec galgel art gap mesa,
 *    with MP degraded at small r for galgel/art/mesa (large data sets);
 *  - RP best/near-best (history repeats): gcc crafty ammp lucas
 *    sixtrack apsi;
 *  - MP beats RP (alternation): parser vortex;
 *  - ASP strong on cold strided first-touch: gzip perlbmk equake;
 *  - DP clearly best (repeating distance patterns): wupwise swim mgrid
 *    applu;
 *  - nobody predicts: eon (too few misses), fma3d (irregular);
 *  - Table 3 high-miss history apps (RP accuracy slightly above DP):
 *    ammp mcf vpr twolf lucas.
 *
 * Miss-rate targets for the Figure 9 set (128-entry FA TLB):
 *  galgel 0.228, mcf 0.090, apsi 0.018, vpr 0.016, lucas 0.016,
 *  twolf 0.013, ammp 0.0113 (adpcm-enc 0.192 lives in MediaBench).
 *  With footprint >> TLB reach, a dwell of k refs/page gives a miss
 *  rate of ~1/k, and a byte stride s gives ~s/4096.
 */

#include "util/logging.hh"
#include "workload/app_registry.hh"
#include "workload/generators.hh"
#include "workload/phase_mix.hh"

namespace tlbpf
{
namespace detail
{

namespace
{

/** Distinct address regions per app, far apart. */
Vpn
region(unsigned idx)
{
    return (1ull << 20) + static_cast<Vpn>(idx) * (1ull << 23);
}

constexpr Addr kPc = 0x400000;

} // namespace

void
addSpecModels(std::vector<AppModel> &models)
{
    // ----- integer suite -------------------------------------------------

    models.push_back(AppModel{
        "gzip", kSuiteSpec, "cold-strided", 3.0,
        [](std::uint64_t refs) {
            // Compression: streaming single-pass input/output/window
            // buffers.  First-touch strided -> ASP and DP good, no
            // history for MP/RP.
            std::vector<StridedScan::Config> streams;
            for (unsigned s = 0; s < 3; ++s) {
                StridedScan::Config config;
                config.base = region(0 + 60 * s) * kDefaultPageBytes;
                config.strideBytes = 64;
                config.count = refs / 3 + 16;
                config.passes = 1;
                config.pc = kPc + 16 * s;
                streams.push_back(config);
            }
            return makeMultiStreamScan(std::move(streams), 4);
        },
        "first-time strided refs; ASP/DP capture, history schemes do "
        "not"});

    models.push_back(AppModel{
        "vpr", kSuiteSpec, "table3-history", 3.0,
        [](std::uint64_t refs) {
            HistoryLoop::Config config;
            config.basePage = region(1);
            config.footprintPages = 1200;
            config.seqLen = 1200;
            config.alphabetSize = 5;
            config.skew = 0.8;
            config.refsPerStep = 62; // miss rate ~0.016
            config.burstiness = 0.4;
            config.seed = 0x5e301;
            config.pcBase = kPc;
            return makeHistory(config, refs);
        },
        "place-and-route graph walk; history repeats, RP accuracy "
        "slightly above DP (Table 3)"});

    models.push_back(AppModel{
        "gcc", kSuiteSpec, "rp-best", 3.0,
        [](std::uint64_t refs) {
            HistoryLoop::Config config;
            config.basePage = region(2);
            config.footprintPages = 700;
            config.seqLen = 700;
            config.alphabetSize = 14;
            config.skew = 0.55;
            config.refsPerStep = 25;
            config.burstiness = 0.3;
            config.seed = 0x9cc01;
            config.pcBase = kPc;
            return makeHistory(config, refs);
        },
        "pointer-heavy IR walks; RP best, MP needs r >= footprint, "
        "ASP poor"});

    models.push_back(AppModel{
        "mcf", kSuiteSpec, "table3-history", 3.0,
        [](std::uint64_t refs) {
            HistoryLoop::Config config;
            config.basePage = region(3);
            config.footprintPages = 5000;
            config.seqLen = 5000;
            config.alphabetSize = 6;
            config.skew = 0.78;
            config.refsPerStep = 11; // miss rate ~0.090
            config.burstiness = 0.4;
            config.seed = 0x3cf01;
            config.pcBase = kPc;
            return makeHistory(config, refs);
        },
        "network-simplex pointer chasing over a huge arc array; "
        "highest integer miss rate"});

    models.push_back(AppModel{
        "crafty", kSuiteSpec, "rp-best", 3.0,
        [](std::uint64_t refs) {
            HistoryLoop::Config config;
            config.basePage = region(4);
            config.footprintPages = 500;
            config.seqLen = 500;
            config.alphabetSize = 16;
            config.skew = 0.52;
            config.refsPerStep = 40;
            config.burstiness = 0.3;
            config.seed = 0xc4af1;
            config.pcBase = kPc;
            return makeHistory(config, refs);
        },
        "hash/board tables; not strided enough for ASP, history helps "
        "RP/MP"});

    models.push_back(AppModel{
        "parser", kSuiteSpec, "mp-alternation", 3.0,
        [](std::uint64_t refs) {
            AlternatingPermutations::Config config;
            config.basePage = region(5);
            config.numPages = 180;
            config.refsPerStep = 30;
            config.seed = 0x9a25e;
            config.pcBase = kPc;
            return makeAlternating(config, refs);
        },
        "dictionary walks alternate between two orders; MP's two slots "
        "beat RP's single neighbourhood"});

    models.push_back(AppModel{
        "perlbmk", kSuiteSpec, "cold-strided", 3.0,
        [](std::uint64_t refs) {
            // Interpreter arenas: cold strided allocation sweeps plus a
            // small hot working set.
            std::vector<std::unique_ptr<RefStream>> parts;
            std::vector<StridedScan::Config> streams;
            for (unsigned s = 0; s < 2; ++s) {
                StridedScan::Config config;
                config.base = region(6 + 60 * s) * kDefaultPageBytes;
                config.strideBytes = 64;
                config.count = refs / 3 + 16;
                config.passes = 1;
                config.pc = kPc + 16 * s;
                streams.push_back(config);
            }
            parts.push_back(makeMultiStreamScan(std::move(streams), 8));
            parts.push_back(makeLoopedScan(region(6) + (1ull << 22), 64,
                                           48, refs / 3, kPc + 64));
            return mixed(std::move(parts), {8000, 4000});
        },
        "arena sweeps are first-touch strided; ASP and DP capture the "
        "cold misses"});

    models.push_back(AppModel{
        "eon", kSuiteSpec, "few-misses", 3.0,
        [](std::uint64_t refs) {
            // Ray tracer with a cache-resident working set: the TLB
            // covers it, so the only misses are the (randomly laid
            // out) cold ones -- nothing to predict from.
            AlternatingPermutations::Config config;
            config.basePage = region(7);
            config.numPages = 60;
            config.refsPerStep = 16;
            config.seed = 0xe0e01;
            config.pcBase = kPc;
            return makeAlternating(config, refs);
        },
        "so few TLB misses that no predictor matters (paper: nobody "
        "predicts)"});

    // ----- floating point suite -----------------------------------------

    models.push_back(AppModel{
        "wupwise", kSuiteSpec, "dp-best", 3.0,
        [](std::uint64_t refs) {
            DistancePatternWalk::Config config;
            config.basePage = region(8);
            config.regionPages = 1ull << 22;
            config.pattern = {1, 12, 1, -8, 3, 12};
            config.steps = refs / 60 + 8;
            config.refsPerStep = 60;
            config.noise = 0.04;
            config.seed = 0x30b1;
            config.pcBase = kPc;
            return makePattern(config, refs);
        },
        "lattice QCD multi-array sweep; stride keeps changing but the "
        "changes repeat (DP's case (d))"});

    models.push_back(AppModel{
        "swim", kSuiteSpec, "dp-best", 3.0,
        [](std::uint64_t refs) {
            DistancePatternWalk::Config config;
            config.basePage = region(9);
            config.regionPages = 1ull << 22;
            config.pattern = {1, 110, -109, 1, 110, -109, 2};
            config.steps = refs / 60 + 8;
            config.refsPerStep = 60;
            config.noise = 0.02;
            config.seed = 0x5317;
            config.pcBase = kPc;
            return makePattern(config, refs);
        },
        "shallow-water stencil across three grids; repeating distance "
        "cycle, per-PC strides incoherent"});

    models.push_back(AppModel{
        "mgrid", kSuiteSpec, "dp-best", 3.0,
        [](std::uint64_t refs) {
            DistancePatternWalk::Config config;
            config.basePage = region(10);
            config.regionPages = 1ull << 22;
            config.pattern = {1, 33, 1, -31, 65};
            config.steps = refs / 58 + 8;
            config.refsPerStep = 58;
            config.noise = 0.03;
            config.seed = 0x36d1;
            config.pcBase = kPc;
            return makePattern(config, refs);
        },
        "multigrid V-cycle: level-dependent strides with a repeating "
        "change pattern"});

    models.push_back(AppModel{
        "applu", kSuiteSpec, "dp-best", 3.0,
        [](std::uint64_t refs) {
            DistancePatternWalk::Config config;
            config.basePage = region(11);
            config.regionPages = 1ull << 22;
            config.pattern = {2, 47, -45, 2, 47, -45, 94};
            config.steps = refs / 62 + 8;
            config.refsPerStep = 62;
            config.noise = 0.03;
            config.seed = 0xa991;
            config.pcBase = kPc;
            return makePattern(config, refs);
        },
        "SSOR sweeps over pencils; DP much better than the rest"});

    models.push_back(AppModel{
        "mesa", kSuiteSpec, "all-good", 3.0,
        [](std::uint64_t refs) {
            // Rasteriser re-walking frame/texture buffers.
            return makeLoopedScan(region(12), 256, 400, refs, kPc);
        },
        "regular strided re-touch; everything works, MP needs r >= "
        "footprint (400 pages)"});

    models.push_back(AppModel{
        "galgel", kSuiteSpec, "all-good", 3.0,
        [](std::uint64_t refs) {
            // Large dense-matrix sweeps: highest miss rate of the
            // suite (~0.23); every mechanism predicts well except MP
            // with small tables (footprint 900 pages).
            return makeLoopedScan(region(13), 1024, 900, refs, kPc, 8,
                                  0x9a19e1);
        },
        "miss rate ~0.228; MP poor below r=1024 (data set larger than "
        "the table)"});

    models.push_back(AppModel{
        "art", kSuiteSpec, "all-good", 3.0,
        [](std::uint64_t refs) {
            return makeLoopedScan(region(14), 256, 300, refs, kPc);
        },
        "neural-net weight sweeps; all mechanisms good, MP degraded at "
        "r=32..256"});

    models.push_back(AppModel{
        "gap", kSuiteSpec, "all-good", 3.0,
        [](std::uint64_t refs) {
            return makeLoopedScan(region(15), 256, 200, refs, kPc);
        },
        "group-theory workspace sweeps; small footprint, everything "
        "predicts well"});

    models.push_back(AppModel{
        "vortex", kSuiteSpec, "mp-alternation", 3.0,
        [](std::uint64_t refs) {
            AlternatingPermutations::Config config;
            config.basePage = region(16);
            config.numPages = 220;
            config.refsPerStep = 45;
            config.seed = 0x0f7e;
            config.pcBase = kPc;
            return makeAlternating(config, refs);
        },
        "OO database transactions alternate access orders; MP better "
        "than RP"});

    models.push_back(AppModel{
        "bzip", kSuiteSpec, "mixed", 3.0,
        [](std::uint64_t refs) {
            // Block-sort compressor: strided block scans plus a
            // history-driven suffix structure.
            std::vector<std::unique_ptr<RefStream>> parts;
            HistoryLoop::Config history;
            history.basePage = region(17);
            history.footprintPages = 400;
            history.seqLen = 400;
            history.alphabetSize = 12;
            history.skew = 0.6;
            history.refsPerStep = 30;
            history.seed = 0xb21b;
            history.pcBase = kPc;
            parts.push_back(makeHistory(history, refs / 2));
            parts.push_back(makeLoopedScan(region(17) + (1ull << 22),
                                           256, 500, refs / 2,
                                           kPc + 64));
            return mixed(std::move(parts), {6000, 6000});
        },
        "mixed history and strided phases; moderate accuracy for all"});

    models.push_back(AppModel{
        "twolf", kSuiteSpec, "table3-history", 3.0,
        [](std::uint64_t refs) {
            HistoryLoop::Config config;
            config.basePage = region(18);
            config.footprintPages = 900;
            config.seqLen = 900;
            config.alphabetSize = 5;
            config.skew = 0.82;
            config.refsPerStep = 77; // miss rate ~0.013
            config.burstiness = 0.4;
            config.seed = 0x201f;
            config.pcBase = kPc;
            return makeHistory(config, refs);
        },
        "standard-cell placement; history repeats, RP slightly above "
        "DP in accuracy"});

    models.push_back(AppModel{
        "equake", kSuiteSpec, "cold-strided", 3.0,
        [](std::uint64_t refs) {
            // Sparse matrix-vector products over fresh index/value
            // arrays.
            std::vector<StridedScan::Config> streams;
            for (unsigned s = 0; s < 3; ++s) {
                StridedScan::Config config;
                config.base =
                    (region(19) + static_cast<Vpn>(s) * (1ull << 22)) *
                    kDefaultPageBytes;
                config.strideBytes = 48 + 16 * s;
                config.count = refs / 3 + 16;
                config.passes = 1;
                config.pc = kPc + 16 * s;
                streams.push_back(config);
            }
            return makeMultiStreamScan(std::move(streams), 6);
        },
        "first-time strided references; ASP captures them, so does "
        "DP"});

    models.push_back(AppModel{
        "facerec", kSuiteSpec, "all-good", 3.0,
        [](std::uint64_t refs) {
            return makeLoopedScan(region(20), 320, 180, refs, kPc);
        },
        "gallery image sweeps; regular strided re-touch, everything "
        "predicts"});

    models.push_back(AppModel{
        "ammp", kSuiteSpec, "table3-history", 3.0,
        [](std::uint64_t refs) {
            HistoryLoop::Config config;
            config.basePage = region(21);
            config.footprintPages = 1600;
            config.seqLen = 1600;
            config.alphabetSize = 5;
            config.skew = 0.84;
            config.refsPerStep = 88; // miss rate ~0.0113
            config.burstiness = 0.4;
            config.seed = 0xa347;
            config.pcBase = kPc;
            return makeHistory(config, refs);
        },
        "molecular dynamics neighbour lists; RP best, DP close and "
        "cheaper (Table 3 headline)"});

    models.push_back(AppModel{
        "lucas", kSuiteSpec, "table3-history", 3.0,
        [](std::uint64_t refs) {
            HistoryLoop::Config config;
            config.basePage = region(22);
            config.footprintPages = 1100;
            config.seqLen = 1100;
            config.alphabetSize = 5;
            config.skew = 0.84;
            config.refsPerStep = 62; // miss rate ~0.016
            config.burstiness = 0.4;
            config.seed = 0x17ca5;
            config.pcBase = kPc;
            return makeHistory(config, refs);
        },
        "FFT butterflies with history-repeating page order; RP "
        "marginally ahead of DP"});

    models.push_back(AppModel{
        "fma3d", kSuiteSpec, "irregular", 3.0,
        [](std::uint64_t refs) {
            ZipfMix::Config config;
            config.basePage = region(23);
            config.numPages = 6000;
            config.zipfSkew = 0.8;
            config.refsPerStep = 20;
            config.seed = 0xf3a3d;
            config.pcBase = kPc;
            return makeZipf(config, refs);
        },
        "irregular finite-element contact search; no mechanism "
        "predicts (paper's case (e))"});

    models.push_back(AppModel{
        "sixtrack", kSuiteSpec, "rp-best", 3.0,
        [](std::uint64_t refs) {
            HistoryLoop::Config config;
            config.basePage = region(24);
            config.footprintPages = 600;
            config.seqLen = 600;
            config.alphabetSize = 12;
            config.skew = 0.75;
            config.refsPerStep = 45;
            config.seed = 0x51617;
            config.pcBase = kPc;
            return makeHistory(config, refs);
        },
        "particle tracking through a fixed lattice; history repeats"});

    models.push_back(AppModel{
        "apsi", kSuiteSpec, "rp-best", 3.0,
        [](std::uint64_t refs) {
            HistoryLoop::Config config;
            config.basePage = region(25);
            config.footprintPages = 2200;
            config.seqLen = 2200;
            config.alphabetSize = 10;
            config.skew = 0.7;
            config.refsPerStep = 55; // miss rate ~0.018
            config.burstiness = 0.3;
            config.seed = 0xa9051;
            config.pcBase = kPc;
            return makeHistory(config, refs);
        },
        "meteorology grids walked in a repeating irregular order"});

    tlbpf_assert(models.size() == 26, "expected 26 SPEC models");
}

} // namespace detail
} // namespace tlbpf
