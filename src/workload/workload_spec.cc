#include "workload/workload_spec.hh"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "trace/adaptors.hh"
#include "trace/trace_file.hh"
#include "util/logging.hh"
#include "workload/app_registry.hh"

namespace tlbpf
{

namespace
{

[[noreturn]] void
malformed(const std::string &text, const std::string &why)
{
    throw std::invalid_argument("malformed workload spec '" + text +
                                "': " + why);
}

/** Parse a mix quantum: digits with an optional k/m suffix. */
std::uint64_t
parseQuantum(const std::string &text, const std::string &whole)
{
    if (text.empty())
        malformed(whole, "mix quantum is empty");
    std::uint64_t multiplier = 1;
    std::string digits = text;
    switch (std::tolower(static_cast<unsigned char>(text.back()))) {
      case 'k':
        multiplier = 1000;
        digits.pop_back();
        break;
      case 'm':
        multiplier = 1000000;
        digits.pop_back();
        break;
      default:
        break;
    }
    if (digits.empty())
        malformed(whole, "mix quantum '" + text + "' has no digits");
    std::uint64_t value = 0;
    for (char c : digits) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            malformed(whole, "mix quantum '" + text +
                                 "' is not a number");
        std::uint64_t next = value * 10 + static_cast<std::uint64_t>(c - '0');
        if (next < value)
            malformed(whole, "mix quantum '" + text + "' overflows");
        value = next;
    }
    if (value == 0 || value > (~0ull) / multiplier)
        malformed(whole, "mix quantum must be positive and sane, got '" +
                             text + "'");
    return value * multiplier;
}

/** Parse a base-10 uint32 field of a shard suffix. */
std::uint32_t
parseShardNumber(const std::string &text, const std::string &whole)
{
    if (text.empty())
        malformed(whole, "shard suffix needs the form #k/N");
    std::uint64_t value = 0;
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            malformed(whole, "shard field '" + text +
                                 "' is not a number");
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
        if (value > 0xffffffffull)
            malformed(whole, "shard field '" + text + "' is too large");
    }
    return static_cast<std::uint32_t>(value);
}

WorkloadSpec
parsePart(const std::string &text, const std::string &whole,
          bool allow_composite)
{
    if (text.empty())
        malformed(whole, "empty workload");

    std::string body = text;
    std::uint32_t shard_index = 0;
    std::uint32_t shard_count = 1;

    std::size_t hash = body.rfind('#');
    if (hash != std::string::npos) {
        if (!allow_composite)
            malformed(whole, "shard suffixes are not allowed inside "
                             "mix parts");
        std::string suffix = body.substr(hash + 1);
        std::size_t slash = suffix.find('/');
        if (slash == std::string::npos)
            malformed(whole, "shard suffix '" + suffix +
                                 "' needs the form #k/N");
        shard_index = parseShardNumber(suffix.substr(0, slash), whole);
        shard_count = parseShardNumber(suffix.substr(slash + 1), whole);
        if (shard_count == 0)
            malformed(whole, "shard count must be positive");
        if (shard_index >= shard_count)
            malformed(whole, "shard " + std::to_string(shard_index) +
                                 "/" + std::to_string(shard_count) +
                                 " is out of range (need k < N)");
        body = body.substr(0, hash);
        if (body.empty())
            malformed(whole, "shard suffix on an empty workload");
    }

    WorkloadSpec spec;
    std::size_t colon = body.find(':');
    if (colon == std::string::npos) {
        spec = WorkloadSpec::app(body);
    } else {
        std::string scheme = body.substr(0, colon);
        std::string rest = body.substr(colon + 1);
        if (scheme == "app") {
            if (rest.empty())
                malformed(whole, "app: needs a model name");
            // A ':' inside the name would make the label ambiguous
            // with the scheme grammar ("app:app:x" labels as "app:x"
            // which re-parses as the app "x") — found by fuzz_spec's
            // round-trip check.
            if (rest.find(':') != std::string::npos)
                malformed(whole, "app name '" + rest +
                                     "' cannot contain ':'");
            spec = WorkloadSpec::app(rest);
        } else if (scheme == "trace") {
            if (rest.empty())
                malformed(whole, "trace: needs a file path");
            spec = WorkloadSpec::trace(rest);
        } else if (scheme == "mix") {
            if (!allow_composite)
                malformed(whole, "mixes cannot nest");
            std::size_t at = rest.rfind('@');
            if (at == std::string::npos)
                malformed(whole,
                          "mix needs a context-switch quantum "
                          "(mix:a+b@100k)");
            std::uint64_t quantum =
                parseQuantum(rest.substr(at + 1), whole);
            std::string part_list = rest.substr(0, at);
            std::vector<WorkloadSpec> parts;
            std::string token;
            for (std::size_t i = 0; i <= part_list.size(); ++i) {
                if (i == part_list.size() || part_list[i] == '+') {
                    if (token.empty())
                        malformed(whole, "mix has an empty part");
                    parts.push_back(parsePart(token, whole, false));
                    token.clear();
                    continue;
                }
                token.push_back(part_list[i]);
            }
            if (parts.size() < 2)
                malformed(whole, "mix needs at least two parts, got " +
                                     std::to_string(parts.size()));
            spec = WorkloadSpec::mix(std::move(parts), quantum);
        } else {
            malformed(whole, "unknown workload scheme '" + scheme +
                                 ":' (expected app:, trace: or mix:)");
        }
    }

    spec.shardIndex = shard_index;
    spec.shardCount = shard_count;
    return spec;
}

std::string
quantumLabel(std::uint64_t quantum)
{
    if (quantum % 1000000 == 0)
        return std::to_string(quantum / 1000000) + "m";
    if (quantum % 1000 == 0)
        return std::to_string(quantum / 1000) + "k";
    return std::to_string(quantum);
}

/**
 * The multi-programmed interleaver: schedules its parts round-robin,
 * `quantum` references per slice, in disjoint address spaces, with a
 * single global (monotone) instruction counter accumulated from each
 * part's own instruction progress — the stream a time-shared CPU
 * would observe.  Ends when every part is exhausted.
 */
class MixStream : public RefStream
{
  public:
    MixStream(std::vector<std::unique_ptr<RefStream>> parts,
              std::uint64_t quantum, std::string label)
        : _parts(std::move(parts)), _quantum(quantum),
          _label(std::move(label)), _done(_parts.size(), false),
          _prevIcount(_parts.size(), 0)
    {
        tlbpf_assert(_quantum > 0, "mix quantum must be positive");
        tlbpf_assert(_parts.size() >= 2, "mix needs >= 2 parts");
    }

    bool
    next(MemRef &ref) override
    {
        std::size_t exhausted = 0;
        while (exhausted < _parts.size()) {
            if (_done[_cursor]) {
                rotate();
                ++exhausted;
                continue;
            }
            MemRef inner;
            if (!_parts[_cursor]->next(inner)) {
                _done[_cursor] = true;
                rotate();
                ++exhausted;
                continue;
            }
            Addr offset = static_cast<Addr>(_cursor) * kMixAddressStride;
            ref = inner;
            ref.vaddr += offset;
            ref.pc += offset;
            _globalIcount += inner.icount - _prevIcount[_cursor];
            _prevIcount[_cursor] = inner.icount;
            ref.icount = _globalIcount;
            if (++_emitted >= _quantum)
                rotate();
            return true;
        }
        return false;
    }

    std::size_t
    nextBatch(MemRef *buf, std::size_t n) override
    {
        // Qualified call: the per-slice bookkeeping inlines into one
        // flat loop instead of a virtual dispatch per reference.
        std::size_t filled = 0;
        while (filled < n && MixStream::next(buf[filled]))
            ++filled;
        return filled;
    }

    void
    reset() override
    {
        for (auto &part : _parts)
            part->reset();
        std::fill(_done.begin(), _done.end(), false);
        std::fill(_prevIcount.begin(), _prevIcount.end(), 0);
        _cursor = 0;
        _emitted = 0;
        _globalIcount = 0;
    }

    std::string describe() const override { return _label; }

  private:
    void
    rotate()
    {
        _cursor = (_cursor + 1) % _parts.size();
        _emitted = 0;
    }

    std::vector<std::unique_ptr<RefStream>> _parts;
    std::uint64_t _quantum;
    std::string _label;
    std::vector<bool> _done;
    std::vector<std::uint64_t> _prevIcount;
    std::size_t _cursor = 0;
    std::uint64_t _emitted = 0;
    std::uint64_t _globalIcount = 0;
};

} // namespace

WorkloadSpec
WorkloadSpec::app(std::string name)
{
    WorkloadSpec spec;
    spec.kind = Kind::App;
    spec.appName = std::move(name);
    return spec;
}

WorkloadSpec
WorkloadSpec::trace(std::string path)
{
    WorkloadSpec spec;
    spec.kind = Kind::Trace;
    spec.tracePath = std::move(path);
    return spec;
}

WorkloadSpec
WorkloadSpec::mix(std::vector<WorkloadSpec> mix_parts,
                  std::uint64_t quantum)
{
    // Reject degenerate mixes at construction, not first build():
    // a single-part "mix" is just that workload with extra labelling,
    // and quantum 0 would never rotate the schedule — both are
    // almost certainly caller mistakes.
    if (mix_parts.size() < 2)
        throw std::invalid_argument(
            "mix workload needs at least two parts, got " +
            std::to_string(mix_parts.size()) +
            " (a single-part mix is just that workload; drop the "
            "mix: wrapper)");
    if (quantum == 0)
        throw std::invalid_argument(
            "mix workload needs a positive context-switch quantum "
            "(refs per schedule slice), got 0");
    WorkloadSpec spec;
    spec.kind = Kind::Mix;
    spec.parts = std::move(mix_parts);
    spec.quantum = quantum;
    return spec;
}

WorkloadSpec
WorkloadSpec::withShard(std::uint32_t k, std::uint32_t n) const
{
    if (n == 0)
        throw std::invalid_argument("shard count must be positive");
    if (k >= n)
        throw std::invalid_argument(
            "shard " + std::to_string(k) + "/" + std::to_string(n) +
            " is out of range (need k < N)");
    WorkloadSpec spec = *this;
    spec.shardIndex = n == 1 ? 0 : k;
    spec.shardCount = n;
    return spec;
}

WorkloadSpec
WorkloadSpec::base() const
{
    WorkloadSpec spec = *this;
    spec.shardIndex = 0;
    spec.shardCount = 1;
    return spec;
}

WorkloadSpec
WorkloadSpec::parse(const std::string &text)
{
    WorkloadSpec spec = parsePart(text, text, true);
    spec.validate();
    return spec;
}

std::string
WorkloadSpec::label() const
{
    std::string core;
    switch (kind) {
      case Kind::App:
        core = appName;
        break;
      case Kind::Trace:
        core = "trace:" + tracePath;
        break;
      case Kind::Mix:
        core = "mix:";
        for (std::size_t i = 0; i < parts.size(); ++i) {
            if (i > 0)
                core += '+';
            core += parts[i].label();
        }
        core += '@';
        core += quantumLabel(quantum);
        break;
    }
    if (sharded()) {
        core += '#';
        core += std::to_string(shardIndex);
        core += '/';
        core += std::to_string(shardCount);
    }
    return core;
}

void
WorkloadSpec::validate() const
{
    if (shardCount == 0)
        throw std::invalid_argument("workload '" + label() +
                                    "' has a zero shard count");
    if (shardIndex >= shardCount)
        throw std::invalid_argument(
            "workload '" + label() + "' shard index " +
            std::to_string(shardIndex) + " is out of range (N = " +
            std::to_string(shardCount) + ")");
    switch (kind) {
      case Kind::App:
        if (appName.empty())
            throw std::invalid_argument(
                "workload has an empty application name");
        break;
      case Kind::Trace:
        if (tracePath.empty())
            throw std::invalid_argument(
                "workload has an empty trace path");
        break;
      case Kind::Mix:
        if (parts.size() < 2)
            throw std::invalid_argument(
                "mix workload '" + label() +
                "' needs at least two parts");
        if (quantum == 0)
            throw std::invalid_argument(
                "mix workload '" + label() +
                "' needs a positive quantum");
        for (const WorkloadSpec &part : parts) {
            if (part.kind == Kind::Mix)
                throw std::invalid_argument(
                    "mix workload '" + label() + "' nests a mix");
            if (part.sharded())
                throw std::invalid_argument(
                    "mix workload '" + label() +
                    "' shards an inner part");
            part.validate();
        }
        break;
    }
}

std::unique_ptr<RefStream>
WorkloadSpec::build(std::uint64_t refs) const
{
    validate();
    if (refs == 0)
        throw std::invalid_argument(
            "workload '" + label() +
            "' needs a positive reference budget");
    switch (kind) {
      case Kind::App: {
          const AppModel *model = findAppOrNull(appName);
          if (!model)
              throw std::invalid_argument(
                  "unknown application model '" + appName + "'");
          return buildApp(*model, refs);
      }
      case Kind::Trace: {
          // Throw-policy reader: corruption discovered mid-replay
          // (truncated body, malformed varint) also surfaces as
          // std::invalid_argument, never a worker-thread exit.
          return std::make_unique<TakeStream>(
              std::make_unique<TraceReader>(
                  tracePath, TraceReader::ErrorPolicy::Throw),
              refs);
      }
      case Kind::Mix: {
          std::vector<std::unique_ptr<RefStream>> streams;
          streams.reserve(parts.size());
          for (const WorkloadSpec &part : parts)
              streams.push_back(part.build(refs));
          return std::make_unique<TakeStream>(
              std::make_unique<MixStream>(std::move(streams), quantum,
                                          base().label()),
              refs);
      }
    }
    throw std::invalid_argument("workload '" + label() +
                                "' has an unknown kind");
}

std::pair<std::uint64_t, std::uint64_t>
WorkloadSpec::shardWindow(std::uint64_t refs) const
{
    std::uint64_t size = refs / shardCount;
    std::uint64_t remainder = refs % shardCount;
    std::uint64_t begin =
        shardIndex * size +
        std::min<std::uint64_t>(shardIndex, remainder);
    std::uint64_t end = begin + size + (shardIndex < remainder ? 1 : 0);
    return {begin, end};
}

WorkloadSpec
parseWorkloadOrDie(const std::string &text)
{
    try {
        return WorkloadSpec::parse(text);
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }
}

} // namespace tlbpf
