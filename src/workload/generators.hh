/**
 * @file
 * Synthetic reference-behaviour generators.
 *
 * The paper drives its evaluation with traced SPEC CPU2000 /
 * MediaBench / Etch / Pointer-Intensive binaries.  Those traces are not
 * redistributable, so this reproduction synthesises reference streams
 * from the paper's own taxonomy of behaviours (Section 1):
 *
 *  (a) strided first-touch      -> StridedScan (passes = 1)
 *  (b) strided re-touch         -> StridedScan (passes > 1)
 *  (c) stride changes over time -> ChangingStrideScan
 *  (d) irregular but repeating
 *      distance sequences       -> DistancePatternWalk
 *  history-repeating walks      -> HistoryLoop
 *  MP-favouring alternation     -> AlternatingPermutations
 *  (e) no regularity            -> ZipfMix
 *
 * All generators are deterministic given their seed and support
 * reset(), so every experiment replays identically.
 */

#ifndef TLBPF_WORKLOAD_GENERATORS_HH
#define TLBPF_WORKLOAD_GENERATORS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/ref_stream.hh"
#include "util/random.hh"

namespace tlbpf
{

/**
 * Linear scan: passes over [base, base + count*stride) touching every
 * stride-th byte with a single access PC (a tight copy/scan loop).
 */
class StridedScan : public RefStream
{
  public:
    struct Config
    {
        Addr base = 1ull << 32;      ///< starting byte address
        std::int64_t strideBytes = 64; ///< signed per-reference stride
        std::uint64_t count = 1024;  ///< references per pass
        std::uint32_t passes = 1;    ///< times to repeat the scan
        Addr pc = 0x400000;          ///< PC of the access instruction
        /**
         * When non-zero, the scanned pages are visited in a fixed
         * block-shuffled order: blocks of this many pages are walked
         * sequentially inside, but the block order is a fixed
         * pseudo-random permutation (identical every pass).  Models
         * blocked/tiled array traversals: history mechanisms learn the
         * block jumps after one pass, while the jump *distances* are
         * irregular, so stride- and distance-based schemes miss them.
         * Requires a positive stride.
         */
        std::uint32_t shuffleBlockPages = 0;
        std::uint64_t seed = 1; ///< block-permutation seed
    };

    explicit StridedScan(const Config &config);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string describe() const override;

  private:
    Addr remap(Addr vaddr) const;

    Config _config;
    std::vector<std::uint32_t> _blockPerm;
    std::uint64_t _i = 0;
    std::uint32_t _pass = 0;
};

/**
 * A scan whose stride changes between phases while the PC stays the
 * same (the paper's category (c): the stride itself changes over time
 * for the same data item).
 */
class ChangingStrideScan : public RefStream
{
  public:
    struct Phase
    {
        std::int64_t strideBytes;
        std::uint64_t count;
    };

    struct Config
    {
        Addr base = 1ull << 32;
        std::vector<Phase> phases;
        std::uint32_t passes = 1;
        Addr pc = 0x400000;
    };

    explicit ChangingStrideScan(const Config &config);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string describe() const override;

  private:
    Config _config;
    Addr _cursor;
    std::size_t _phase = 0;
    std::uint64_t _inPhase = 0;
    std::uint32_t _pass = 0;
};

/**
 * Page-granular walk following a repeating *distance pattern* over a
 * large region: the stride keeps changing but the changes themselves
 * repeat (the paper's category (d), DP's home turf).  Each step dwells
 * in the page for refsPerStep references so the TLB miss rate is
 * roughly 1/refsPerStep.
 */
class DistancePatternWalk : public RefStream
{
  public:
    struct Config
    {
        Vpn basePage = 1ull << 20;
        std::uint64_t regionPages = 1ull << 22; ///< wrap-around window
        std::vector<std::int64_t> pattern{1, 3, 1, 5}; ///< page deltas
        std::uint64_t steps = 100000; ///< page moves per pass
        std::uint32_t refsPerStep = 4; ///< dwell references per page
        std::uint32_t passes = 1;
        double noise = 0.0; ///< probability of a random delta instead
        std::uint64_t seed = 1;
        Addr pcBase = 0x400000;
    };

    explicit DistancePatternWalk(const Config &config);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string describe() const override;

  private:
    void advancePage();

    Config _config;
    Rng _rng;
    Vpn _page;
    std::uint64_t _step = 0;
    std::uint32_t _dwell = 0;
    std::uint32_t _pass = 0;
    std::size_t _patternPos = 0;
};

/**
 * A fixed pseudo-random page sequence replayed many times: history
 * repeats exactly (RP/MP-friendly) while the distances are drawn from a
 * small alphabet whose successor structure is only @c skew consistent
 * (bounding what DP can learn).  ASP sees a single PC with incoherent
 * strides and learns nothing.
 *
 * This models the paper's history-driven applications (gcc, crafty,
 * ammp, mcf, vpr, twolf, lucas, ...).
 */
class HistoryLoop : public RefStream
{
  public:
    struct Config
    {
        Vpn basePage = 1ull << 20;
        std::uint64_t footprintPages = 512; ///< distinct pages (approx)
        std::uint64_t seqLen = 512;         ///< steps per pass
        std::uint32_t alphabetSize = 12;    ///< distinct distances used
        double skew = 0.7; ///< P(distance follows its canonical successor)
        std::uint32_t refsPerStep = 16;
        std::uint32_t passes = 8;
        std::uint64_t seed = 1;
        Addr pcBase = 0x400000;
        /**
         * Probability that a step is part of a burst (dwell of only
         * 1-3 references before the next page, so misses cluster
         * back-to-back).  Non-burst steps dwell longer to keep the
         * average miss rate at ~1/refsPerStep.  Real pointer codes
         * miss in bursts, which is what exposes RP's per-miss memory
         * traffic in the paper's Table 3 cycle experiment.
         */
        double burstiness = 0.0;
    };

    explicit HistoryLoop(const Config &config);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string describe() const override;

    /** The generated page sequence (tests). */
    const std::vector<Vpn> &sequence() const { return _sequence; }

  private:
    void buildSequence();
    std::uint32_t stepDwell();

    Config _config;
    std::vector<Vpn> _sequence;
    Rng _dwellRng{1};
    std::uint64_t _pos = 0;
    std::uint32_t _dwell = 0;
    std::uint32_t _dwellTarget = 0;
    std::uint32_t _pass = 0;
};

/**
 * Alternating traversals of the same page set under two different
 * permutations — the paper's parser/vortex pattern where each page has
 * two alternating successors, which MP's two slots capture but RP's
 * single stack neighbourhood cannot.
 */
class AlternatingPermutations : public RefStream
{
  public:
    struct Config
    {
        Vpn basePage = 1ull << 20;
        std::uint64_t numPages = 256;
        std::uint32_t rounds = 16; ///< total traversals (S1,S2,S1,...)
        std::uint32_t refsPerStep = 16;
        std::uint64_t seed = 1;
        Addr pcBase = 0x400000;
    };

    explicit AlternatingPermutations(const Config &config);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string describe() const override;

  private:
    Config _config;
    std::vector<Vpn> _perm[2];
    std::uint64_t _pos = 0;
    std::uint32_t _dwell = 0;
    std::uint32_t _round = 0;
};

/**
 * Zipf-popularity references over a spatially shuffled page set: no
 * strides, no repeating history (category (e), fma3d-like).
 */
class ZipfMix : public RefStream
{
  public:
    struct Config
    {
        Vpn basePage = 1ull << 20;
        std::uint64_t numPages = 4096;
        double zipfSkew = 0.9;
        std::uint64_t steps = 100000;
        std::uint32_t refsPerStep = 8;
        std::uint64_t seed = 1;
        Addr pcBase = 0x400000;
    };

    explicit ZipfMix(const Config &config);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string describe() const override;

  private:
    Config _config;
    Rng _rng;
    ZipfSampler _zipf;
    std::vector<Vpn> _pageMap; ///< rank -> shuffled page
    std::uint64_t _step = 0;
    std::uint32_t _dwell = 0;
    Vpn _page;
};

/**
 * Assigns instruction counts to a composed stream: reference i carries
 * icount = round(i * instr_per_ref).  Applied once, outermost.
 */
class PaceStream : public RefStream
{
  public:
    PaceStream(std::unique_ptr<RefStream> inner, double instr_per_ref);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *buf, std::size_t n) override;
    void reset() override;
    std::string describe() const override;

    double instrPerRef() const { return _instrPerRef; }

  private:
    std::unique_ptr<RefStream> _inner;
    double _instrPerRef;
    std::uint64_t _emitted = 0;
};

/**
 * Interleave @p streams round-robin with @p chunk references from each
 * stream per turn (distinct arrays walked by distinct loop PCs).
 */
std::unique_ptr<RefStream>
makeMultiStreamScan(std::vector<StridedScan::Config> streams,
                    std::uint32_t chunk = 1);

} // namespace tlbpf

#endif // TLBPF_WORKLOAD_GENERATORS_HH
