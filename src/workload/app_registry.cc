#include "workload/app_registry.hh"

#include "trace/adaptors.hh"
#include "util/logging.hh"
#include "workload/generators.hh"

namespace tlbpf
{

const std::vector<AppModel> &
appRegistry()
{
    static const std::vector<AppModel> registry = [] {
        std::vector<AppModel> models;
        detail::addSpecModels(models);
        detail::addMediaModels(models);
        detail::addEtchAndPtrModels(models);
        tlbpf_assert(models.size() == 56,
                     "expected 56 application models, got ",
                     models.size());
        return models;
    }();
    return registry;
}

const AppModel &
findApp(const std::string &name)
{
    if (const AppModel *app = findAppOrNull(name))
        return *app;
    tlbpf_fatal("unknown application model '", name, "'");
}

const AppModel *
findAppOrNull(const std::string &name)
{
    for (const AppModel &app : appRegistry())
        if (app.name == name)
            return &app;
    return nullptr;
}

std::vector<const AppModel *>
appsInSuite(const std::string &suite)
{
    std::vector<const AppModel *> out;
    for (const AppModel &app : appRegistry())
        if (app.suite == suite)
            out.push_back(&app);
    return out;
}

std::unique_ptr<RefStream>
buildApp(const AppModel &app, std::uint64_t refs)
{
    if (refs == 0)
        tlbpf_fatal("need a positive reference budget");
    auto raw = app.build(refs);
    auto taken = std::make_unique<TakeStream>(std::move(raw), refs);
    return std::make_unique<PaceStream>(std::move(taken),
                                        app.instrPerRef);
}

std::unique_ptr<RefStream>
buildApp(const std::string &name, std::uint64_t refs)
{
    return buildApp(findApp(name), refs);
}

const std::vector<std::string> &
highMissRateApps()
{
    static const std::vector<std::string> apps = {
        "vpr", "mcf", "twolf", "galgel",
        "ammp", "lucas", "apsi", "adpcm-enc",
    };
    return apps;
}

const std::vector<std::string> &
table3Apps()
{
    static const std::vector<std::string> apps = {
        "ammp", "mcf", "vpr", "twolf", "lucas",
    };
    return apps;
}

} // namespace tlbpf
