/**
 * @file
 * Composition helpers for building application models out of generator
 * primitives: sizing passes to a target reference budget, sequential
 * phase concatenation, and weighted interleaving.
 */

#ifndef TLBPF_WORKLOAD_PHASE_MIX_HH
#define TLBPF_WORKLOAD_PHASE_MIX_HH

#include <memory>
#include <vector>

#include "trace/adaptors.hh"
#include "workload/generators.hh"

namespace tlbpf
{

/** ceil(a / b) for positive integers. */
std::uint64_t ceilDiv(std::uint64_t a, std::uint64_t b);

/**
 * Looped scan over a region of @p footprint_pages pages at
 * @p stride_bytes, with passes sized to produce ~@p total_refs
 * references.
 */
std::unique_ptr<RefStream>
makeLoopedScan(Vpn base_page, std::int64_t stride_bytes,
               std::uint64_t footprint_pages, std::uint64_t total_refs,
               Addr pc, std::uint32_t shuffle_block_pages = 0,
               std::uint64_t seed = 1);

/** HistoryLoop with passes sized to ~@p total_refs. */
std::unique_ptr<RefStream>
makeHistory(HistoryLoop::Config config, std::uint64_t total_refs);

/** DistancePatternWalk with passes sized to ~@p total_refs. */
std::unique_ptr<RefStream>
makePattern(DistancePatternWalk::Config config,
            std::uint64_t total_refs);

/** AlternatingPermutations with rounds sized to ~@p total_refs. */
std::unique_ptr<RefStream>
makeAlternating(AlternatingPermutations::Config config,
                std::uint64_t total_refs);

/** ZipfMix with steps sized to ~@p total_refs. */
std::unique_ptr<RefStream>
makeZipf(ZipfMix::Config config, std::uint64_t total_refs);

/** Sequential phases. */
std::unique_ptr<RefStream>
phases(std::vector<std::unique_ptr<RefStream>> streams);

/** Weighted round-robin mix. */
std::unique_ptr<RefStream>
mixed(std::vector<std::unique_ptr<RefStream>> streams,
      std::vector<std::uint32_t> weights);

} // namespace tlbpf

#endif // TLBPF_WORKLOAD_PHASE_MIX_HH
