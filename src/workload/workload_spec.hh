/**
 * @file
 * First-class workload addressing: the WorkloadSpec value type.
 *
 * Every experiment cell needs to name "what reference stream am I
 * simulating?".  Historically that was a bare registry app name; a
 * WorkloadSpec generalises it to a small tagged grammar that covers
 * everything the sweep layer can drive:
 *
 *   mcf                      registry app (canonical form; "app:mcf"
 *                            is accepted as input sugar)
 *   trace:path/to/file.tpf   binary trace file replayed from disk
 *   mix:mcf+gcc@100k         multi-programmed mix: the parts run in
 *                            disjoint address spaces and are
 *                            interleaved every <quantum> references
 *                            (quantum suffixes: k = 1e3, m = 1e6)
 *   <spec>#k/N               shard k of N: the cell simulates the
 *                            whole stream but records only its slice
 *                            of the reference window, so N merged
 *                            shards are bit-identical to the
 *                            unsharded run
 *
 * parse() and label() round-trip: parse(s.label()) == s for every
 * valid spec, so a spec can travel through CLI flags, CSV/JSON sinks
 * and determinism tests unchanged.  Syntax errors throw
 * std::invalid_argument (parse is pure syntax; whether an app or
 * trace file actually exists is checked by build()).
 */

#ifndef TLBPF_WORKLOAD_WORKLOAD_SPEC_HH
#define TLBPF_WORKLOAD_WORKLOAD_SPEC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/ref_stream.hh"

namespace tlbpf
{

/**
 * Virtual-address stride separating the parts of a mix: part i's
 * references are offset by i * kMixAddressStride, so interleaved
 * address spaces never collide (the paper's multi-programmed setting).
 */
constexpr Addr kMixAddressStride = 1ull << 44;

/** A workload denotation: registry app, trace file, or mix; optionally sharded. */
struct WorkloadSpec
{
    enum class Kind
    {
        App,   ///< synthetic registry model, by name
        Trace, ///< binary .tpf trace file, by path
        Mix    ///< multi-programmed interleaving of inner specs
    };

    Kind kind = Kind::App;
    std::string appName;            ///< Kind::App: registry model name
    std::string tracePath;          ///< Kind::Trace: file path
    std::vector<WorkloadSpec> parts;///< Kind::Mix: >= 2 App/Trace specs
    std::uint64_t quantum = 0;      ///< Kind::Mix: refs per schedule slice

    std::uint32_t shardIndex = 0;   ///< k in [0, shardCount)
    std::uint32_t shardCount = 1;   ///< N >= 1; 1 means unsharded

    /** Registry-app spec. */
    static WorkloadSpec app(std::string name);
    /** Trace-file spec. */
    static WorkloadSpec trace(std::string path);
    /**
     * Mix spec over >= 2 App/Trace parts at @p quantum refs/slice.
     * Throws std::invalid_argument for fewer than two parts or a zero
     * quantum — degenerate interleavings are rejected at construction.
     */
    static WorkloadSpec mix(std::vector<WorkloadSpec> mix_parts,
                            std::uint64_t quantum);

    /** Copy of this spec denoting shard @p k of @p n. */
    WorkloadSpec withShard(std::uint32_t k, std::uint32_t n) const;

    /** Copy of this spec with sharding stripped. */
    WorkloadSpec base() const;

    bool sharded() const { return shardCount > 1; }

    /**
     * Parse the textual grammar above; throws std::invalid_argument
     * with a description on malformed input.
     */
    static WorkloadSpec parse(const std::string &text);

    /** Canonical textual form; parse(label()) reproduces this spec. */
    std::string label() const;

    /**
     * Check structural validity (non-empty names, >= 2 mix parts,
     * positive quantum, shardIndex < shardCount, no nested mixes);
     * throws std::invalid_argument on violation.
     */
    void validate() const;

    /**
     * Build the ready-to-simulate stream for this spec, truncated to
     * at most @p refs references (a shorter trace ends earlier).
     * Sharding does not change the stream — a shard simulates the
     * full stream and windows its *counters* — so build() always
     * returns the base stream.  Throws std::invalid_argument for an
     * unknown app, an unreadable/invalid trace file, or a structural
     * error, so engine worker threads surface bad workloads as batch
     * failures instead of exiting mid-pool.
     */
    std::unique_ptr<RefStream> build(std::uint64_t refs) const;

    /**
     * Half-open counter-recording window [begin, end) of this shard
     * within a @p refs-reference run.  Windows of all N shards
     * partition [0, refs), sized within one reference of each other.
     */
    std::pair<std::uint64_t, std::uint64_t>
    shardWindow(std::uint64_t refs) const;

    bool operator==(const WorkloadSpec &other) const = default;
};

/**
 * parse() for bench/CLI entry points: converts a syntax error into
 * the documented clean fatal exit instead of an exception.
 */
WorkloadSpec parseWorkloadOrDie(const std::string &text);

} // namespace tlbpf

#endif // TLBPF_WORKLOAD_WORKLOAD_SPEC_HH
