#include "sim/experiment.hh"

#include <stdexcept>

#include "run/sweep_engine.hh"
#include "util/logging.hh"

namespace tlbpf
{

namespace
{

std::vector<MechanismSpec>
parseSpecTable(const char *const *table, std::size_t n)
{
    std::vector<MechanismSpec> specs;
    specs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        specs.push_back(MechanismSpec::parse(table[i]));
    return specs;
}

} // namespace

std::vector<MechanismSpec>
figure7Specs()
{
    // The figure legend, verbatim: each entry is a mechanism spec in
    // the registry's figure-legend grammar, so the list doubles as a
    // parse round-trip fixture (parse(label(s)) == s for all of them).
    static const char *const kLegend[] = {
        "RP",
        "MP,1024,D", "MP,1024,4", "MP,1024,2", "MP,512,D", "MP,512,4",
        "MP,256,D",  "MP,256,4",  "MP,256,F",
        "DP,1024,D", "DP,512,D",  "DP,256,D",  "DP,128,D", "DP,64,D",
        "DP,32,D",
        "ASP,1024,D", "ASP,512,D", "ASP,256,D", "ASP,128,D", "ASP,64,D",
        "ASP,32,D",
    };
    return parseSpecTable(kLegend, std::size(kLegend));
}

std::vector<MechanismSpec>
table2Specs()
{
    static const char *const kLegend[] = {
        "DP,256,D", "RP", "ASP,256,D", "MP,256,D",
    };
    return parseSpecTable(kLegend, std::size(kLegend));
}

namespace
{

/**
 * Run one cell on the calling thread, converting the engine's
 * std::invalid_argument (refs == 0, unknown app) back into the
 * fatal exit these entry points have always documented.
 */
SweepResult
runCellOrDie(const SweepJob &job)
{
    try {
        return runSweepJob(job);
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }
}

} // namespace

SimResult
runFunctional(const WorkloadSpec &workload, const MechanismSpec &spec,
              std::uint64_t refs, const SimConfig &config)
{
    return runCellOrDie(
               SweepJob::functional(workload, spec, refs, config))
        .functional;
}

TimingResult
runTimed(const WorkloadSpec &workload, const MechanismSpec &spec,
         std::uint64_t refs, const SimConfig &config,
         const TimingConfig &timing)
{
    return runCellOrDie(
               SweepJob::timed(workload, spec, refs, config, timing))
        .timed;
}

SimResult
runFunctional(const std::string &workload, const MechanismSpec &spec,
              std::uint64_t refs, const SimConfig &config)
{
    return runFunctional(parseWorkloadOrDie(workload), spec, refs,
                         config);
}

TimingResult
runTimed(const std::string &workload, const MechanismSpec &spec,
         std::uint64_t refs, const SimConfig &config,
         const TimingConfig &timing)
{
    return runTimed(parseWorkloadOrDie(workload), spec, refs, config,
                    timing);
}

std::vector<AccuracyCell>
accuracySweep(const WorkloadSpec &workload,
              const std::vector<MechanismSpec> &specs,
              std::uint64_t refs, const SimConfig &config,
              unsigned threads)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(specs.size());
    for (const MechanismSpec &spec : specs)
        jobs.push_back(
            SweepJob::functional(workload, spec, refs, config));

    SweepEngine engine(threads);
    std::vector<SweepResult> results;
    try {
        // One workload, N mechanisms: the canonical single-pass
        // shape — the stream is generated once for all cells.
        results = engine.run(jobs, PassMode::SinglePass);
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }

    std::vector<AccuracyCell> cells;
    cells.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        cells.push_back(AccuracyCell{jobs[i].spec.label(),
                                     results[i].accuracy(),
                                     results[i].missRate()});
    return cells;
}

std::vector<AccuracyCell>
accuracySweep(const std::string &workload,
              const std::vector<MechanismSpec> &specs,
              std::uint64_t refs, const SimConfig &config,
              unsigned threads)
{
    return accuracySweep(parseWorkloadOrDie(workload), specs, refs,
                         config, threads);
}

} // namespace tlbpf
