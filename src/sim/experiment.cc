#include "sim/experiment.hh"

#include <stdexcept>

#include "run/sweep_engine.hh"
#include "util/logging.hh"

namespace tlbpf
{

std::vector<PrefetcherSpec>
figure7Specs()
{
    std::vector<PrefetcherSpec> specs;

    PrefetcherSpec rp;
    rp.scheme = Scheme::RP;
    specs.push_back(rp);

    // MP: 1024,D / 1024,4 / 1024,2 / 512,D / 512,4 / 256,D / 256,4 /
    // 256,F (paper legend order).
    const std::pair<std::uint32_t, TableAssoc> mp_configs[] = {
        {1024, TableAssoc::Direct}, {1024, TableAssoc::FourWay},
        {1024, TableAssoc::TwoWay}, {512, TableAssoc::Direct},
        {512, TableAssoc::FourWay}, {256, TableAssoc::Direct},
        {256, TableAssoc::FourWay}, {256, TableAssoc::Full},
    };
    for (const auto &[rows, assoc] : mp_configs) {
        PrefetcherSpec spec;
        spec.scheme = Scheme::MP;
        spec.table = TableConfig{rows, assoc};
        spec.slots = 2;
        specs.push_back(spec);
    }

    // DP and ASP: direct-mapped, r descending 1024..32.
    for (Scheme scheme : {Scheme::DP, Scheme::ASP}) {
        for (std::uint32_t rows : {1024u, 512u, 256u, 128u, 64u, 32u}) {
            PrefetcherSpec spec;
            spec.scheme = scheme;
            spec.table = TableConfig{rows, TableAssoc::Direct};
            spec.slots = 2;
            specs.push_back(spec);
        }
    }
    return specs;
}

std::vector<PrefetcherSpec>
table2Specs()
{
    std::vector<PrefetcherSpec> specs;
    for (Scheme scheme :
         {Scheme::DP, Scheme::RP, Scheme::ASP, Scheme::MP}) {
        PrefetcherSpec spec;
        spec.scheme = scheme;
        spec.table = TableConfig{256, TableAssoc::Direct};
        spec.slots = 2;
        specs.push_back(spec);
    }
    return specs;
}

namespace
{

/**
 * Run one cell on the calling thread, converting the engine's
 * std::invalid_argument (refs == 0, unknown app) back into the
 * fatal exit these entry points have always documented.
 */
SweepResult
runCellOrDie(const SweepJob &job)
{
    try {
        return runSweepJob(job);
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }
}

} // namespace

SimResult
runFunctional(const WorkloadSpec &workload, const PrefetcherSpec &spec,
              std::uint64_t refs, const SimConfig &config)
{
    return runCellOrDie(
               SweepJob::functional(workload, spec, refs, config))
        .functional;
}

TimingResult
runTimed(const WorkloadSpec &workload, const PrefetcherSpec &spec,
         std::uint64_t refs, const SimConfig &config,
         const TimingConfig &timing)
{
    return runCellOrDie(
               SweepJob::timed(workload, spec, refs, config, timing))
        .timed;
}

SimResult
runFunctional(const std::string &workload, const PrefetcherSpec &spec,
              std::uint64_t refs, const SimConfig &config)
{
    return runFunctional(parseWorkloadOrDie(workload), spec, refs,
                         config);
}

TimingResult
runTimed(const std::string &workload, const PrefetcherSpec &spec,
         std::uint64_t refs, const SimConfig &config,
         const TimingConfig &timing)
{
    return runTimed(parseWorkloadOrDie(workload), spec, refs, config,
                    timing);
}

std::vector<AccuracyCell>
accuracySweep(const WorkloadSpec &workload,
              const std::vector<PrefetcherSpec> &specs,
              std::uint64_t refs, const SimConfig &config,
              unsigned threads)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(specs.size());
    for (const PrefetcherSpec &spec : specs)
        jobs.push_back(
            SweepJob::functional(workload, spec, refs, config));

    SweepEngine engine(threads);
    std::vector<SweepResult> results;
    try {
        results = engine.run(jobs);
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }

    std::vector<AccuracyCell> cells;
    cells.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        cells.push_back(AccuracyCell{jobs[i].spec.label(),
                                     results[i].accuracy(),
                                     results[i].missRate()});
    return cells;
}

std::vector<AccuracyCell>
accuracySweep(const std::string &workload,
              const std::vector<PrefetcherSpec> &specs,
              std::uint64_t refs, const SimConfig &config,
              unsigned threads)
{
    return accuracySweep(parseWorkloadOrDie(workload), specs, refs,
                         config, threads);
}

} // namespace tlbpf
