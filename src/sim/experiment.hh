/**
 * @file
 * Experiment drivers shared by the bench binaries: the standard
 * mechanism configurations from the paper's figures, and one-call
 * helpers that build an application model and simulate it.
 */

#ifndef TLBPF_SIM_EXPERIMENT_HH
#define TLBPF_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "prefetch/factory.hh"
#include "sim/functional_sim.hh"
#include "sim/timing_sim.hh"
#include "workload/app_registry.hh"

namespace tlbpf
{

/** Default per-application reference budget for the benches. */
constexpr std::uint64_t kDefaultBenchRefs = 1'000'000;

/**
 * The mechanism configurations plotted in Figures 7/8, in legend
 * order: RP; MP with r in {1024,512,256} and D/4/2/F variants; DP with
 * r in {1024..32} direct-mapped; ASP with r in {1024..32}.
 */
std::vector<PrefetcherSpec> figure7Specs();

/** Compact comparison set: RP, MP/DP/ASP at r=256 D, s=2 (Table 2). */
std::vector<PrefetcherSpec> table2Specs();

/** Run one app under one mechanism (functional). */
SimResult runFunctional(const std::string &app,
                        const PrefetcherSpec &spec, std::uint64_t refs,
                        const SimConfig &config = SimConfig{});

/** Run one app under the timing model. */
TimingResult runTimed(const std::string &app, const PrefetcherSpec &spec,
                      std::uint64_t refs,
                      const SimConfig &config = SimConfig{},
                      const TimingConfig &timing = TimingConfig{});

/** A (mechanism label, accuracy) cell for figure-style output. */
struct AccuracyCell
{
    std::string label;
    double accuracy = 0.0;
    double missRate = 0.0;
};

/**
 * Evaluate @p specs against one app; cells in spec order.  With
 * @p threads > 1 the cells run on a SweepEngine; the output is
 * bit-identical to the serial run (threads == 1) by the engine's
 * determinism contract.  threads == 0 selects hardware concurrency.
 */
std::vector<AccuracyCell>
accuracySweep(const std::string &app,
              const std::vector<PrefetcherSpec> &specs,
              std::uint64_t refs,
              const SimConfig &config = SimConfig{},
              unsigned threads = 1);

} // namespace tlbpf

#endif // TLBPF_SIM_EXPERIMENT_HH
