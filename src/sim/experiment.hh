/**
 * @file
 * Experiment drivers shared by the bench binaries: the standard
 * mechanism configurations from the paper's figures (as spec-string
 * tables resolved against the MechanismRegistry), and one-call
 * helpers that build an application model and simulate it.
 */

#ifndef TLBPF_SIM_EXPERIMENT_HH
#define TLBPF_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "prefetch/mech_spec.hh"
#include "sim/functional_sim.hh"
#include "sim/timing_sim.hh"
#include "workload/app_registry.hh"
#include "workload/workload_spec.hh"

namespace tlbpf
{

/** Default per-application reference budget for the benches. */
constexpr std::uint64_t kDefaultBenchRefs = 1'000'000;

/**
 * The mechanism configurations plotted in Figures 7/8, in legend
 * order: RP; MP with r in {1024,512,256} and D/4/2/F variants; DP with
 * r in {1024..32} direct-mapped; ASP with r in {1024..32}.
 */
std::vector<MechanismSpec> figure7Specs();

/** Compact comparison set: DP, RP, ASP, MP at r=256 D, s=2 (Table 2). */
std::vector<MechanismSpec> table2Specs();

/** Run one workload under one mechanism (functional). */
SimResult runFunctional(const WorkloadSpec &workload,
                        const MechanismSpec &spec, std::uint64_t refs,
                        const SimConfig &config = SimConfig{});

/** Run one workload under the timing model. */
TimingResult runTimed(const WorkloadSpec &workload,
                      const MechanismSpec &spec, std::uint64_t refs,
                      const SimConfig &config = SimConfig{},
                      const TimingConfig &timing = TimingConfig{});

/**
 * String sugar for the entry points above: the text is parsed as a
 * WorkloadSpec (a bare name denotes a registry app; trace:/mix:/#k/N
 * all work), with a parse error producing the documented fatal exit.
 */
SimResult runFunctional(const std::string &workload,
                        const MechanismSpec &spec, std::uint64_t refs,
                        const SimConfig &config = SimConfig{});
TimingResult runTimed(const std::string &workload,
                      const MechanismSpec &spec, std::uint64_t refs,
                      const SimConfig &config = SimConfig{},
                      const TimingConfig &timing = TimingConfig{});

/** A (mechanism label, accuracy) cell for figure-style output. */
struct AccuracyCell
{
    std::string label;
    double accuracy = 0.0;
    double missRate = 0.0;
};

/**
 * Evaluate @p specs against one workload; cells in spec order.  With
 * @p threads > 1 the cells run on a SweepEngine; the output is
 * bit-identical to the serial run (threads == 1) by the engine's
 * determinism contract.  threads == 0 selects hardware concurrency.
 */
std::vector<AccuracyCell>
accuracySweep(const WorkloadSpec &workload,
              const std::vector<MechanismSpec> &specs,
              std::uint64_t refs,
              const SimConfig &config = SimConfig{},
              unsigned threads = 1);

/** String sugar; see runFunctional(const std::string&, ...). */
std::vector<AccuracyCell>
accuracySweep(const std::string &workload,
              const std::vector<MechanismSpec> &specs,
              std::uint64_t refs,
              const SimConfig &config = SimConfig{},
              unsigned threads = 1);

} // namespace tlbpf

#endif // TLBPF_SIM_EXPERIMENT_HH
