/**
 * @file
 * Functional TLB-prefetching simulator — the sim-cache analogue the
 * paper uses for its prediction-accuracy results (Figures 7-9,
 * Table 2).
 *
 * Per-reference flow (paper Section 2):
 *   1. probe the TLB (and, conceptually in parallel, the prefetch
 *      buffer);
 *   2. on a TLB miss that hits the buffer, promote the entry into the
 *      TLB and count a successful prediction;
 *   3. on a full miss, demand-fetch the translation;
 *   4. either way, hand the miss to the prefetching mechanism, which
 *      may queue prefetches into the buffer (duplicates against the
 *      TLB and buffer suppressed).
 *
 * Prediction accuracy = buffer hits / TLB misses.
 */

#ifndef TLBPF_SIM_FUNCTIONAL_SIM_HH
#define TLBPF_SIM_FUNCTIONAL_SIM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/page_table.hh"
#include "prefetch/mech_spec.hh"
#include "prefetch/prefetcher.hh"
#include "tlb/prefetch_buffer.hh"
#include "tlb/tlb.hh"
#include "trace/ref_stream.hh"
#include "util/snapshot.hh"

namespace tlbpf
{

/** Geometry shared by the functional and timing simulators. */
struct SimConfig
{
    TlbConfig tlb{128, 0};        ///< paper default: 128-entry FA
    std::uint32_t pbEntries = 16; ///< paper default: b = 16
    std::uint64_t pageBytes = kDefaultPageBytes;
    /**
     * Ablation switch: feed the prefetcher the *full reference
     * stream* instead of only the TLB miss stream.  The paper places
     * every mechanism after the TLB (miss stream only) and remarks
     * that this "does not seem to penalize DP in any significant
     * way"; this flag lets the ablation bench quantify that.  Only
     * meaningful for the on-chip schemes (RP's stack semantics are
     * tied to TLB evictions, so it ignores the flag).
     */
    bool trainOnAllRefs = false;
    /**
     * Multiprogramming model (the paper's "ongoing work" on flushing
     * or switching the prefetch tables): every this many references a
     * context switch flushes the TLB, the prefetch buffer and the
     * prefetcher's on-chip prediction state.  0 disables switching.
     * RP's in-memory stack survives a flush in reality; the reset
     * here conservatively clears it too, modelling a different
     * process's page table becoming active.
     */
    std::uint64_t contextSwitchInterval = 0;

    bool operator==(const SimConfig &other) const = default;
};

/** Counters produced by a simulation run. */
struct SimResult
{
    std::uint64_t refs = 0;
    std::uint64_t misses = 0;       ///< TLB misses (incl. buffer hits)
    std::uint64_t pbHits = 0;       ///< misses satisfied by the buffer
    std::uint64_t demandFetches = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesSuppressed = 0; ///< duplicate targets
    std::uint64_t stateOps = 0;     ///< RP pointer-word traffic
    std::uint64_t pbEvictedUnused = 0;
    std::uint64_t footprintPages = 0;
    std::uint64_t contextSwitches = 0;

    /** Counter-for-counter equality (bit-identity assertions). */
    bool operator==(const SimResult &other) const = default;

    /** TLB miss rate per reference. */
    double
    missRate() const
    {
        return refs ? static_cast<double>(misses) /
                          static_cast<double>(refs)
                    : 0.0;
    }

    /** The paper's prediction accuracy metric. */
    double
    accuracy() const
    {
        return misses ? static_cast<double>(pbHits) /
                            static_cast<double>(misses)
                      : 0.0;
    }

    /** Memory operations per miss (state + prefetch fetches). */
    double
    memOpsPerMiss() const
    {
        return misses ? static_cast<double>(stateOps +
                                            prefetchesIssued) /
                            static_cast<double>(misses)
                      : 0.0;
    }
};

/**
 * A serialized simulator-state checkpoint: everything process() can
 * observe — counters, TLB, prefetch buffer, page table and mechanism
 * prediction state — as one stable byte string.  Produced by
 * FunctionalSimulator::snapshot() and consumed by restore() on a
 * simulator built from the same SimConfig and MechanismSpec, so a
 * run can be split at any reference boundary and continued
 * bit-identically (the checkpoint-chained shard warm-up in
 * SweepEngine::runSharded).
 */
struct SimState
{
    std::vector<std::uint8_t> bytes;

    bool empty() const { return bytes.empty(); }
};

/** Stepping functional simulator. */
class FunctionalSimulator
{
  public:
    FunctionalSimulator(const SimConfig &config,
                        const MechanismSpec &spec);

    /** Feed one reference. */
    void process(const MemRef &ref);

    /** Counters so far (footprint refreshed on each call). */
    const SimResult &result();

    /**
     * True if the whole simulator state can round-trip through
     * snapshot()/restore(): always, unless the mechanism is an
     * open-registry entry that has not opted into checkpointing
     * (Prefetcher::checkpointable()).
     */
    bool checkpointable() const;

    /**
     * Serialize the exact simulator state.  Continuing a restored
     * simulator over the same remaining reference stream reproduces
     * the uninterrupted run's counters bit-for-bit.  Throws
     * std::invalid_argument if !checkpointable().
     */
    SimState snapshot() const;

    /**
     * Restore state captured by snapshot() on a simulator with the
     * same configuration and mechanism; throws std::invalid_argument
     * on a truncated/foreign checkpoint or a config/mechanism
     * mismatch.
     */
    void restore(const SimState &state);

    const Tlb &tlb() const { return _tlb; }
    const PrefetchBuffer &buffer() const { return _buffer; }
    const PageTable &pageTable() const { return _pt; }
    Prefetcher *prefetcher() { return _prefetcher.get(); }

  private:
    Vpn pageOf(const MemRef &ref) const;

    SimConfig _config;
    std::string _mechLabel;
    /** log2(pageBytes) when it is a power of two, else UINT32_MAX. */
    std::uint32_t _pageShift = UINT32_MAX;
    PageTable _pt;
    Tlb _tlb;
    PrefetchBuffer _buffer;
    std::unique_ptr<Prefetcher> _prefetcher;
    PrefetchDecision _decision;
    SimResult _result;
};

/**
 * References pulled per nextBatch call by the batched simulate loops:
 * large enough to amortise the virtual dispatch, small enough that the
 * block stays cache-resident while N simulators consume it.
 */
constexpr std::size_t kSimBatchRefs = 4096;

/** Run @p stream to exhaustion under @p spec and return the counters. */
SimResult simulate(const SimConfig &config, const MechanismSpec &spec,
                   RefStream &stream);

/**
 * Run @p stream to exhaustion once, feeding every reference block to
 * one independent simulator per mechanism in @p specs — the
 * single-pass multi-mechanism mode.  The simulators share nothing but
 * the decoded reference blocks, so result i is bit-identical to
 * simulate(config, specs[i], stream) over a fresh stream; the stream
 * generation/decode cost is paid once instead of specs.size() times.
 */
std::vector<SimResult> simulateMany(const SimConfig &config,
                                    const std::vector<MechanismSpec> &specs,
                                    RefStream &stream);

/**
 * Add every counter of @p from into @p into — the reduce step that
 * merges sharded cells.  All SimResult fields are monotone counters
 * (footprintPages and pbEvictedUnused included), so summing the
 * per-window deltas of a partition of [0, refs) reproduces the
 * unsharded run's counters bit-for-bit.
 */
void addCounters(SimResult &into, const SimResult &from);

/**
 * Simulate a *window* of @p stream: the first @p skip references warm
 * the full simulator state by replay (exact, not approximated), the
 * next @p take references are recorded, and the returned result is
 * the counter delta over the recorded window.  Used by sharded cells;
 * shard k of N records window [k*refs/N, (k+1)*refs/N) so that the
 * merged counters equal the unsharded run exactly.
 */
SimResult simulateWindow(const SimConfig &config,
                         const MechanismSpec &spec, RefStream &stream,
                         std::uint64_t skip, std::uint64_t take);

/**
 * Simulate a window of @p stream starting from a checkpoint instead
 * of a prefix replay: the simulator is constructed fresh, warmed by
 * restoring @p warm (nullptr starts cold — the window begins at
 * reference 0), fed the next @p take references of @p stream (which
 * must already be positioned at the window start), and the counter
 * delta over the window is returned.  If @p end_state is non-null it
 * receives the end-of-window snapshot, ready to warm the next shard
 * in a checkpoint chain.  Chaining N windows this way reproduces the
 * serial run's counters bit-for-bit at ~1x total work, versus
 * ~(N+1)/2x for N prefix-replaying shards.
 */
SimResult simulateWindowFrom(const SimConfig &config,
                             const MechanismSpec &spec,
                             RefStream &stream, const SimState *warm,
                             std::uint64_t take, SimState *end_state);

} // namespace tlbpf

#endif // TLBPF_SIM_FUNCTIONAL_SIM_HH
