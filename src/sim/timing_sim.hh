/**
 * @file
 * Timing simulator — the sim-outorder analogue behind the paper's
 * Table 3 (normalised execution cycles, RP vs DP).
 *
 * Cycle model, following Section 3.2 exactly:
 *  - the CPU retires instructions at a base CPI; time advances with the
 *    reference stream's instruction counts plus accumulated stalls;
 *  - a TLB miss that hits the prefetch buffer stalls only until the
 *    in-flight prefetch completes (zero if it already has);
 *  - a full miss pays a constant 100-cycle penalty, and its demand
 *    fetch is delayed further if previously issued prefetch traffic is
 *    still in flight;
 *  - every prefetch memory operation (RP's pointer manipulations, and
 *    PTE fetches for all schemes) costs 50 cycles on a serialising
 *    channel that contends only with other prefetch traffic — the
 *    paper's deliberately RP-favouring bias;
 *  - RP's benefit of the doubt: if earlier prefetch traffic is still in
 *    flight at miss time, RP performs only its (up to) 4 pointer
 *    updates and skips the 2 neighbour fetches.
 */

#ifndef TLBPF_SIM_TIMING_SIM_HH
#define TLBPF_SIM_TIMING_SIM_HH

#include <memory>

#include "mem/page_table.hh"
#include "mem/prefetch_channel.hh"
#include "prefetch/mech_spec.hh"
#include "sim/functional_sim.hh"
#include "tlb/prefetch_buffer.hh"
#include "tlb/tlb.hh"
#include "trace/ref_stream.hh"

namespace tlbpf
{

/** Cycle-model parameters (paper defaults). */
struct TimingConfig
{
    double baseCpi = 1.0;     ///< cycles per instruction, no TLB stalls
    Tick missPenalty = 100;   ///< constant TLB miss penalty
    Tick memOpCost = 50;      ///< per prefetch/state memory operation
};

/** Timing counters. */
struct TimingResult
{
    SimResult functional;       ///< the same counters as the fast sim
    Tick cycles = 0;            ///< total execution cycles
    Tick stallCycles = 0;       ///< cycles lost to TLB handling
    Tick computeCycles = 0;     ///< icount * baseCpi
    std::uint64_t memoryOps = 0;///< prefetch-channel operations
    std::uint64_t prefetchesSkippedBusy = 0; ///< RP benefit-of-doubt
    std::uint64_t inFlightHits = 0; ///< buffer hits that still stalled

    /** Counter-for-counter equality (bit-identity assertions). */
    bool operator==(const TimingResult &other) const = default;
};

/** Stepping timing simulator. */
class TimingSimulator
{
  public:
    TimingSimulator(const SimConfig &config, const TimingConfig &timing,
                    const MechanismSpec &spec);

    void process(const MemRef &ref);

    /** Counters so far. */
    const TimingResult &result();

    const PrefetchChannel &channel() const { return _channel; }

  private:
    SimConfig _config;
    TimingConfig _timing;
    PageTable _pt;
    Tlb _tlb;
    PrefetchBuffer _buffer;
    PrefetchChannel _channel;
    std::unique_ptr<Prefetcher> _prefetcher;
    PrefetchDecision _decision;
    TimingResult _result;
    std::uint64_t _lastIcount = 0;
};

/** Run a stream to exhaustion under the timing model. */
TimingResult simulateTimed(const SimConfig &config,
                           const TimingConfig &timing,
                           const MechanismSpec &spec,
                           RefStream &stream);

} // namespace tlbpf

#endif // TLBPF_SIM_TIMING_SIM_HH
