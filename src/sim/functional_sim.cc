#include "sim/functional_sim.hh"

namespace tlbpf
{

FunctionalSimulator::FunctionalSimulator(const SimConfig &config,
                                         const MechanismSpec &spec)
    : _config(config),
      _tlb(config.tlb),
      _buffer(config.pbEntries),
      _prefetcher(spec.build(_pt))
{
}

void
FunctionalSimulator::process(const MemRef &ref)
{
    if (_config.contextSwitchInterval &&
        _result.refs > 0 &&
        _result.refs % _config.contextSwitchInterval == 0) {
        _tlb.flush();
        _buffer.flush();
        if (_prefetcher)
            _prefetcher->reset();
        ++_result.contextSwitches;
    }
    ++_result.refs;
    Vpn vpn = ref.vpn(_config.pageBytes);

    if (_tlb.access(vpn)) {
        // Ablation mode: the prefetcher observes hits as well (it sits
        // on the reference stream rather than the miss stream).  RP is
        // excluded — its stack is defined by TLB evictions.
        if (_config.trainOnAllRefs && _prefetcher &&
            _prefetcher->name() != "RP") {
            _decision.clear();
            TlbMiss observed{vpn, ref.pc, false, kNoPage};
            _prefetcher->onMiss(observed, _decision);
            for (Vpn target : _decision.targets) {
                if (target == vpn || _tlb.contains(target) ||
                    _buffer.contains(target)) {
                    ++_result.prefetchesSuppressed;
                    continue;
                }
                _buffer.insert(target, 0);
                ++_result.prefetchesIssued;
            }
        }
        return;
    }

    ++_result.misses;
    _pt.lookup(vpn); // materialise the translation

    Tick ready_at = 0;
    bool pb_hit = _buffer.hitAndPromote(vpn, ready_at);
    if (pb_hit)
        ++_result.pbHits;
    else
        ++_result.demandFetches;

    std::optional<Vpn> evicted = _tlb.insert(vpn);

    if (!_prefetcher)
        return;

    _decision.clear();
    TlbMiss miss{vpn, ref.pc, pb_hit, evicted.value_or(kNoPage)};
    _prefetcher->onMiss(miss, _decision);
    _result.stateOps += _decision.stateOps;

    for (Vpn target : _decision.targets) {
        if (target == vpn || _tlb.contains(target) ||
            _buffer.contains(target)) {
            ++_result.prefetchesSuppressed;
            continue;
        }
        _buffer.insert(target, 0);
        ++_result.prefetchesIssued;
    }
}

const SimResult &
FunctionalSimulator::result()
{
    _result.footprintPages = _pt.size();
    _result.pbEvictedUnused = _buffer.evictedUnused();
    return _result;
}

SimResult
simulate(const SimConfig &config, const MechanismSpec &spec,
         RefStream &stream)
{
    FunctionalSimulator sim(config, spec);
    MemRef ref;
    while (stream.next(ref))
        sim.process(ref);
    return sim.result();
}

void
addCounters(SimResult &into, const SimResult &from)
{
    into.refs += from.refs;
    into.misses += from.misses;
    into.pbHits += from.pbHits;
    into.demandFetches += from.demandFetches;
    into.prefetchesIssued += from.prefetchesIssued;
    into.prefetchesSuppressed += from.prefetchesSuppressed;
    into.stateOps += from.stateOps;
    into.pbEvictedUnused += from.pbEvictedUnused;
    into.footprintPages += from.footprintPages;
    into.contextSwitches += from.contextSwitches;
}

namespace
{

/** Field-wise @p end - @p start; valid because every field is monotone. */
SimResult
counterDelta(const SimResult &end, const SimResult &start)
{
    SimResult delta;
    delta.refs = end.refs - start.refs;
    delta.misses = end.misses - start.misses;
    delta.pbHits = end.pbHits - start.pbHits;
    delta.demandFetches = end.demandFetches - start.demandFetches;
    delta.prefetchesIssued =
        end.prefetchesIssued - start.prefetchesIssued;
    delta.prefetchesSuppressed =
        end.prefetchesSuppressed - start.prefetchesSuppressed;
    delta.stateOps = end.stateOps - start.stateOps;
    delta.pbEvictedUnused = end.pbEvictedUnused - start.pbEvictedUnused;
    delta.footprintPages = end.footprintPages - start.footprintPages;
    delta.contextSwitches = end.contextSwitches - start.contextSwitches;
    return delta;
}

} // namespace

SimResult
simulateWindow(const SimConfig &config, const MechanismSpec &spec,
               RefStream &stream, std::uint64_t skip,
               std::uint64_t take)
{
    FunctionalSimulator sim(config, spec);
    MemRef ref;
    std::uint64_t processed = 0;
    while (processed < skip && stream.next(ref)) {
        sim.process(ref);
        ++processed;
    }
    SimResult start = sim.result();
    std::uint64_t end = take > ~0ull - skip ? ~0ull : skip + take;
    while (processed < end && stream.next(ref)) {
        sim.process(ref);
        ++processed;
    }
    return counterDelta(sim.result(), start);
}

} // namespace tlbpf
