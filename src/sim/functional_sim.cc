#include "sim/functional_sim.hh"

#include <algorithm>
#include <stdexcept>

#include "util/bits.hh"
#include "util/check.hh"

namespace tlbpf
{

FunctionalSimulator::FunctionalSimulator(const SimConfig &config,
                                         const MechanismSpec &spec)
    : _config(config),
      _mechLabel(spec.label()),
      _tlb(config.tlb),
      _buffer(config.pbEntries),
      _prefetcher(spec.build(_pt))
{
    if (isPowerOfTwo(_config.pageBytes))
        _pageShift = floorLog2(_config.pageBytes);
}

Vpn
FunctionalSimulator::pageOf(const MemRef &ref) const
{
    // The paper's page sizes are powers of two, so the hot path is a
    // shift; the division is kept for exotic configs.
    return _pageShift != UINT32_MAX ? ref.vaddr >> _pageShift
                                    : ref.vpn(_config.pageBytes);
}

void
FunctionalSimulator::process(const MemRef &ref)
{
    if (_config.contextSwitchInterval &&
        _result.refs > 0 &&
        _result.refs % _config.contextSwitchInterval == 0) {
        _tlb.flush();
        _buffer.flush();
        if (_prefetcher)
            _prefetcher->reset();
        ++_result.contextSwitches;
    }
    ++_result.refs;
    Vpn vpn = pageOf(ref);

    if (_tlb.access(vpn)) {
        // Ablation mode: the prefetcher observes hits as well (it sits
        // on the reference stream rather than the miss stream).  RP is
        // excluded — its stack is defined by TLB evictions.
        if (_config.trainOnAllRefs && _prefetcher &&
            _prefetcher->name() != "RP") {
            _decision.clear();
            TlbMiss observed{vpn, ref.pc, false, kNoPage};
            _prefetcher->onMiss(observed, _decision);
            for (Vpn target : _decision.targets) {
                if (target == vpn || _tlb.contains(target) ||
                    _buffer.contains(target)) {
                    ++_result.prefetchesSuppressed;
                    continue;
                }
                _buffer.insert(target, 0);
                ++_result.prefetchesIssued;
            }
        }
        return;
    }

    ++_result.misses;
    _pt.lookup(vpn); // materialise the translation

    Tick ready_at = 0;
    bool pb_hit = _buffer.hitAndPromote(vpn, ready_at);
    if (pb_hit)
        ++_result.pbHits;
    else
        ++_result.demandFetches;

    std::optional<Vpn> evicted = _tlb.insert(vpn);

    if (!_prefetcher)
        return;

    _decision.clear();
    TlbMiss miss{vpn, ref.pc, pb_hit, evicted.value_or(kNoPage)};
    _prefetcher->onMiss(miss, _decision);
    _result.stateOps += _decision.stateOps;

    for (Vpn target : _decision.targets) {
        if (target == vpn || _tlb.contains(target) ||
            _buffer.contains(target)) {
            ++_result.prefetchesSuppressed;
            continue;
        }
        _buffer.insert(target, 0);
        ++_result.prefetchesIssued;
    }
}

const SimResult &
FunctionalSimulator::result()
{
    _result.footprintPages = _pt.size();
    _result.pbEvictedUnused = _buffer.evictedUnused();
    return _result;
}

namespace
{

/** Leading bytes of every checkpoint: "TPFS" + format version. */
constexpr std::uint32_t kSnapshotMagic = 0x53465054; // 'T','P','F','S'
constexpr std::uint8_t kSnapshotVersion = 1;

void
writeCounters(SnapshotWriter &out, const SimResult &r)
{
    out.u64(r.refs);
    out.u64(r.misses);
    out.u64(r.pbHits);
    out.u64(r.demandFetches);
    out.u64(r.prefetchesIssued);
    out.u64(r.prefetchesSuppressed);
    out.u64(r.stateOps);
    out.u64(r.pbEvictedUnused);
    out.u64(r.footprintPages);
    out.u64(r.contextSwitches);
}

void
readCounters(SnapshotReader &in, SimResult &r)
{
    r.refs = in.u64();
    r.misses = in.u64();
    r.pbHits = in.u64();
    r.demandFetches = in.u64();
    r.prefetchesIssued = in.u64();
    r.prefetchesSuppressed = in.u64();
    r.stateOps = in.u64();
    r.pbEvictedUnused = in.u64();
    r.footprintPages = in.u64();
    r.contextSwitches = in.u64();
}

} // namespace

bool
FunctionalSimulator::checkpointable() const
{
    return !_prefetcher || _prefetcher->checkpointable();
}

SimState
FunctionalSimulator::snapshot() const
{
    if (!checkpointable())
        throw std::invalid_argument(
            "mechanism '" + _mechLabel +
            "' does not support checkpointing; use replay warm-up");
    SnapshotWriter out;
    // Rough upper bound on the serialized size: page table entries
    // dominate (33 bytes each), then TLB slots and buffer nodes.
    out.reserve(512 + 40 * _pt.size() +
                17 * static_cast<std::size_t>(_config.tlb.entries) +
                16 * static_cast<std::size_t>(_config.pbEntries));
    out.u32(kSnapshotMagic);
    out.u8(kSnapshotVersion);

    // Configuration signature: a checkpoint only restores into a
    // simulator that would have produced it.
    out.u32(_config.tlb.entries);
    out.u32(_config.tlb.assoc);
    out.u32(_config.pbEntries);
    out.u64(_config.pageBytes);
    out.boolean(_config.trainOnAllRefs);
    out.u64(_config.contextSwitchInterval);
    out.str(_mechLabel);

    writeCounters(out, _result);
    _tlb.snapshotState(out);
    _buffer.snapshotState(out);
    _pt.snapshotState(out);
    out.boolean(_prefetcher != nullptr);
    if (_prefetcher)
        _prefetcher->snapshotState(out);
    return SimState{out.take()};
}

void
FunctionalSimulator::restore(const SimState &state)
{
    SnapshotReader in(state.bytes);
    if (in.u32() != kSnapshotMagic)
        SnapshotReader::fail("bad magic (not a simulator checkpoint)");
    if (std::uint8_t version = in.u8(); version != kSnapshotVersion)
        SnapshotReader::fail("unsupported checkpoint version " +
                             std::to_string(version));

    if (in.u32() != _config.tlb.entries ||
        in.u32() != _config.tlb.assoc ||
        in.u32() != _config.pbEntries ||
        in.u64() != _config.pageBytes ||
        in.boolean() != _config.trainOnAllRefs ||
        in.u64() != _config.contextSwitchInterval)
        SnapshotReader::fail(
            "simulator configuration does not match the checkpoint");
    if (std::string mech = in.str(); mech != _mechLabel)
        SnapshotReader::fail("checkpoint was taken under mechanism '" +
                             mech + "', this simulator runs '" +
                             _mechLabel + "'");

    readCounters(in, _result);
    _tlb.restoreState(in);
    _buffer.restoreState(in);
    _pt.restoreState(in); // before the mechanism: RP links live here
    bool has_prefetcher = in.boolean();
    if (has_prefetcher != (_prefetcher != nullptr))
        SnapshotReader::fail(
            "checkpoint and simulator disagree on mechanism presence");
    if (_prefetcher)
        _prefetcher->restoreState(in);
    if (!in.atEnd())
        SnapshotReader::fail("trailing bytes after checkpoint");
    // The whole checkpoint design rests on restore() being the exact
    // inverse of snapshot(): shard chains and the persistent store
    // both assume a restored simulator re-serializes to the same
    // bytes.  A component whose restoreState() loses state (a rebuilt
    // index that reorders, an LRU clock that resets) would silently
    // skew every downstream window; catch it at the boundary.
    TLBPF_DCHECK_MSG(snapshot().bytes == state.bytes,
                     "restore() is not the inverse of snapshot() for "
                     "mechanism '", _mechLabel, "'");
}

SimResult
simulate(const SimConfig &config, const MechanismSpec &spec,
         RefStream &stream)
{
    FunctionalSimulator sim(config, spec);
    std::vector<MemRef> block(kSimBatchRefs);
    std::size_t got;
    while ((got = stream.nextBatch(block.data(), block.size())) > 0) {
        for (std::size_t i = 0; i < got; ++i)
            sim.process(block[i]);
    }
    return sim.result();
}

std::vector<SimResult>
simulateMany(const SimConfig &config,
             const std::vector<MechanismSpec> &specs, RefStream &stream)
{
    // unique_ptr, not by value: a simulator's prefetcher holds a
    // reference to the simulator's own page table, so the object must
    // never relocate.
    std::vector<std::unique_ptr<FunctionalSimulator>> sims;
    sims.reserve(specs.size());
    for (const MechanismSpec &spec : specs)
        sims.push_back(
            std::make_unique<FunctionalSimulator>(config, spec));
    std::vector<MemRef> block(kSimBatchRefs);
    std::size_t got;
    while ((got = stream.nextBatch(block.data(), block.size())) > 0) {
        for (auto &sim : sims) {
            for (std::size_t i = 0; i < got; ++i)
                sim->process(block[i]);
        }
    }
    std::vector<SimResult> results;
    results.reserve(sims.size());
    for (auto &sim : sims)
        results.push_back(sim->result());
    return results;
}

void
addCounters(SimResult &into, const SimResult &from)
{
    into.refs += from.refs;
    into.misses += from.misses;
    into.pbHits += from.pbHits;
    into.demandFetches += from.demandFetches;
    into.prefetchesIssued += from.prefetchesIssued;
    into.prefetchesSuppressed += from.prefetchesSuppressed;
    into.stateOps += from.stateOps;
    into.pbEvictedUnused += from.pbEvictedUnused;
    into.footprintPages += from.footprintPages;
    into.contextSwitches += from.contextSwitches;
}

namespace
{

/** Field-wise @p end - @p start; valid because every field is monotone. */
SimResult
counterDelta(const SimResult &end, const SimResult &start)
{
    SimResult delta;
    delta.refs = end.refs - start.refs;
    delta.misses = end.misses - start.misses;
    delta.pbHits = end.pbHits - start.pbHits;
    delta.demandFetches = end.demandFetches - start.demandFetches;
    delta.prefetchesIssued =
        end.prefetchesIssued - start.prefetchesIssued;
    delta.prefetchesSuppressed =
        end.prefetchesSuppressed - start.prefetchesSuppressed;
    delta.stateOps = end.stateOps - start.stateOps;
    delta.pbEvictedUnused = end.pbEvictedUnused - start.pbEvictedUnused;
    delta.footprintPages = end.footprintPages - start.footprintPages;
    delta.contextSwitches = end.contextSwitches - start.contextSwitches;
    return delta;
}

/**
 * Feed @p sim batched references until @p processed reaches @p limit
 * or the stream ends.
 */
void
simulateUpTo(FunctionalSimulator &sim, RefStream &stream,
             std::uint64_t limit, std::uint64_t &processed)
{
    std::vector<MemRef> block(kSimBatchRefs);
    while (processed < limit) {
        std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(limit - processed, block.size()));
        std::size_t got = stream.nextBatch(block.data(), want);
        for (std::size_t i = 0; i < got; ++i)
            sim.process(block[i]);
        processed += got;
        if (got < want)
            break;
    }
}

} // namespace

SimResult
simulateWindow(const SimConfig &config, const MechanismSpec &spec,
               RefStream &stream, std::uint64_t skip,
               std::uint64_t take)
{
    FunctionalSimulator sim(config, spec);
    std::uint64_t processed = 0;
    simulateUpTo(sim, stream, skip, processed);
    SimResult start = sim.result();
    std::uint64_t end = take > ~0ull - skip ? ~0ull : skip + take;
    simulateUpTo(sim, stream, end, processed);
    return counterDelta(sim.result(), start);
}

SimResult
simulateWindowFrom(const SimConfig &config, const MechanismSpec &spec,
                   RefStream &stream, const SimState *warm,
                   std::uint64_t take, SimState *end_state)
{
    FunctionalSimulator sim(config, spec);
    if (warm)
        sim.restore(*warm);
    SimResult start = sim.result();
    std::uint64_t processed = 0;
    simulateUpTo(sim, stream, take, processed);
    SimResult delta = counterDelta(sim.result(), start);
    // Window attribution: every reference fed in this window — and
    // none from the restored prefix — lands in the delta, or sharded
    // merges would drift from the unsharded run.
    TLBPF_DCHECK_MSG(delta.refs == processed,
                     "window of ", processed, " refs recorded ",
                     delta.refs, " in its counter delta");
    if (end_state)
        *end_state = sim.snapshot();
    return delta;
}

} // namespace tlbpf
