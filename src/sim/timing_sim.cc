#include "sim/timing_sim.hh"

#include <cmath>

namespace tlbpf
{

TimingSimulator::TimingSimulator(const SimConfig &config,
                                 const TimingConfig &timing,
                                 const MechanismSpec &spec)
    : _config(config),
      _timing(timing),
      _tlb(config.tlb),
      _buffer(config.pbEntries),
      _channel(timing.memOpCost),
      _prefetcher(spec.build(_pt))
{
}

void
TimingSimulator::process(const MemRef &ref)
{
    ++_result.functional.refs;
    _lastIcount = ref.icount;
    Vpn vpn = ref.vpn(_config.pageBytes);

    if (_tlb.access(vpn))
        return;

    ++_result.functional.misses;
    _pt.lookup(vpn);

    // Current time: compute progress plus every stall so far.
    Tick now = static_cast<Tick>(std::llround(
                   static_cast<double>(ref.icount) * _timing.baseCpi)) +
               _result.stallCycles;

    Tick ready_at = 0;
    bool pb_hit = _buffer.hitAndPromote(vpn, ready_at);
    if (pb_hit) {
        ++_result.functional.pbHits;
        if (ready_at > now) {
            // Prefetch still in flight: stall until it lands.
            _result.stallCycles += ready_at - now;
            ++_result.inFlightHits;
        }
    } else {
        ++_result.functional.demandFetches;
        // The demand fetch is delayed by in-flight prefetch traffic.
        Tick start = std::max(now, _channel.busyUntil());
        Tick done = start + _timing.missPenalty;
        _result.stallCycles += done - now;
    }

    std::optional<Vpn> evicted = _tlb.insert(vpn);

    if (!_prefetcher)
        return;

    // The RP benefit-of-the-doubt rule keys off whether earlier
    // prefetch traffic is still outstanding when this miss arrives.
    bool busy_at_miss = _channel.busyAt(now);

    _decision.clear();
    TlbMiss miss{vpn, ref.pc, pb_hit, evicted.value_or(kNoPage)};
    _prefetcher->onMiss(miss, _decision);

    if (_decision.stateOps > 0) {
        _channel.issue(now, _decision.stateOps);
        _result.functional.stateOps += _decision.stateOps;
        _result.memoryOps += _decision.stateOps;
    }

    if (busy_at_miss && _prefetcher->dropPrefetchesWhenBusy()) {
        _result.prefetchesSkippedBusy += _decision.targets.size();
        return;
    }

    for (Vpn target : _decision.targets) {
        if (target == vpn || _tlb.contains(target) ||
            _buffer.contains(target)) {
            ++_result.functional.prefetchesSuppressed;
            continue;
        }
        PrefetchChannel::Issue issue = _channel.issue(now, 1);
        _buffer.insert(target, issue.done);
        ++_result.functional.prefetchesIssued;
        ++_result.memoryOps;
    }
}

const TimingResult &
TimingSimulator::result()
{
    _result.functional.footprintPages = _pt.size();
    _result.functional.pbEvictedUnused = _buffer.evictedUnused();
    _result.computeCycles = static_cast<Tick>(std::llround(
        static_cast<double>(_lastIcount) * _timing.baseCpi));
    _result.cycles = _result.computeCycles + _result.stallCycles;
    return _result;
}

TimingResult
simulateTimed(const SimConfig &config, const TimingConfig &timing,
              const MechanismSpec &spec, RefStream &stream)
{
    TimingSimulator sim(config, timing, spec);
    MemRef ref;
    while (stream.next(ref))
        sim.process(ref);
    return sim.result();
}

} // namespace tlbpf
