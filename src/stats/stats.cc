#include "stats/stats.hh"

#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace tlbpf
{

StatBase::StatBase(std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
}

Ratio::Ratio(std::string name, std::string desc, const StatBase &numer,
             const StatBase &denom)
    : StatBase(std::move(name), std::move(desc)),
      _numer(numer),
      _denom(denom)
{
}

double
Ratio::value() const
{
    double d = _denom.value();
    return d == 0.0 ? 0.0 : _numer.value() / d;
}

Counter &
StatRegistry::counter(const std::string &name, const std::string &desc)
{
    return static_cast<Counter &>(
        add(std::make_unique<Counter>(name, desc)));
}

Average &
StatRegistry::average(const std::string &name, const std::string &desc)
{
    return static_cast<Average &>(
        add(std::make_unique<Average>(name, desc)));
}

Ratio &
StatRegistry::ratio(const std::string &name, const std::string &desc,
                    const StatBase &numer, const StatBase &denom)
{
    return static_cast<Ratio &>(
        add(std::make_unique<Ratio>(name, desc, numer, denom)));
}

StatBase &
StatRegistry::add(std::unique_ptr<StatBase> stat)
{
    tlbpf_assert(find(stat->name()) == nullptr,
                 "duplicate stat name '", stat->name(), "'");
    _stats.push_back(std::move(stat));
    return *_stats.back();
}

void
StatRegistry::resetAll()
{
    for (auto &stat : _stats)
        stat->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &stat : _stats) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6f", stat->value());
        os << stat->name() << " " << buf << " # " << stat->desc() << "\n";
    }
}

const StatBase *
StatRegistry::find(const std::string &name) const
{
    for (const auto &stat : _stats)
        if (stat->name() == name)
            return stat.get();
    return nullptr;
}

} // namespace tlbpf
