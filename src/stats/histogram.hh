/**
 * @file
 * Histograms for distribution-shaped statistics (e.g. the distribution
 * of miss distances that motivates distance prefetching).
 */

#ifndef TLBPF_STATS_HISTOGRAM_HH
#define TLBPF_STATS_HISTOGRAM_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

namespace tlbpf
{

/**
 * Exact sparse histogram over signed integer keys.
 *
 * Suitable for distance distributions where a handful of distinct
 * distances dominate; memory is proportional to the number of distinct
 * keys observed.
 */
class SparseHistogram
{
  public:
    void sample(std::int64_t key, std::uint64_t weight = 1);

    std::uint64_t total() const { return _total; }
    std::uint64_t countOf(std::int64_t key) const;
    std::size_t distinct() const { return _bins.size(); }

    /** Keys sorted by descending count (ties by ascending key). */
    std::vector<std::pair<std::int64_t, std::uint64_t>>
    topK(std::size_t k) const;

    /** Fraction of all samples covered by the k most frequent keys. */
    double coverage(std::size_t k) const;

    void reset();
    void print(std::ostream &os, std::size_t top_k = 16) const;

  private:
    std::map<std::int64_t, std::uint64_t> _bins;
    std::uint64_t _total = 0;
};

/**
 * Fixed-width bucketed histogram over non-negative values, for
 * latency/occupancy distributions in the timing model.
 */
class BucketHistogram
{
  public:
    /**
     * @param bucket_width width of each bucket (> 0)
     * @param num_buckets  number of buckets; values beyond the last
     *                     bucket land in an overflow bin
     */
    BucketHistogram(std::uint64_t bucket_width, std::size_t num_buckets);

    void sample(std::uint64_t value);

    std::uint64_t total() const { return _total; }
    std::uint64_t bucketCount(std::size_t idx) const;
    std::uint64_t overflow() const { return _overflow; }
    double mean() const;

    /** Smallest value v such that at least q of the mass is <= v. */
    std::uint64_t quantile(double q) const;

    void reset();

  private:
    std::uint64_t _width;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _overflow = 0;
    std::uint64_t _total = 0;
    double _sum = 0.0;
};

} // namespace tlbpf

#endif // TLBPF_STATS_HISTOGRAM_HH
