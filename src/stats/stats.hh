/**
 * @file
 * Lightweight statistics package modeled on gem5's: named scalar
 * counters, averages and ratio formulas collected into a registry that
 * can be dumped in a stable, diffable format.
 */

#ifndef TLBPF_STATS_STATS_HH
#define TLBPF_STATS_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace tlbpf
{

class StatRegistry;

/** Base class for all named statistics. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc);
    virtual ~StatBase() = default;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Current value as a double (for dumping/formulas). */
    virtual double value() const = 0;

    /** Reset to the post-construction state. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** Monotonic event counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++_count; return *this; }
    Counter &operator+=(std::uint64_t n) { _count += n; return *this; }

    std::uint64_t count() const { return _count; }
    double value() const override
    {
        return static_cast<double>(_count);
    }
    void reset() override { _count = 0; }

  private:
    std::uint64_t _count = 0;
};

/** Running mean of samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double v)
    {
        _sum += v;
        ++_n;
    }

    std::uint64_t samples() const { return _n; }
    double value() const override { return _n ? _sum / _n : 0.0; }
    void reset() override
    {
        _sum = 0.0;
        _n = 0;
    }

  private:
    double _sum = 0.0;
    std::uint64_t _n = 0;
};

/** Ratio of two other stats, evaluated lazily at dump time. */
class Ratio : public StatBase
{
  public:
    Ratio(std::string name, std::string desc, const StatBase &numer,
          const StatBase &denom);

    double value() const override;
    void reset() override {}

  private:
    const StatBase &_numer;
    const StatBase &_denom;
};

/**
 * Owns a set of statistics and dumps them in registration order.
 *
 * Components create their stats through the registry so a simulator
 * run's full state can be printed with one call.
 */
class StatRegistry
{
  public:
    /** Create and register a counter. */
    Counter &counter(const std::string &name, const std::string &desc);

    /** Create and register an average. */
    Average &average(const std::string &name, const std::string &desc);

    /** Create and register a ratio over two existing stats. */
    Ratio &ratio(const std::string &name, const std::string &desc,
                 const StatBase &numer, const StatBase &denom);

    /** Reset every registered stat. */
    void resetAll();

    /** Print "name value # desc" lines, gem5-style. */
    void dump(std::ostream &os) const;

    /** Find a stat by name; nullptr if missing. */
    const StatBase *find(const std::string &name) const;

    std::size_t size() const { return _stats.size(); }

  private:
    StatBase &add(std::unique_ptr<StatBase> stat);

    std::vector<std::unique_ptr<StatBase>> _stats;
};

} // namespace tlbpf

#endif // TLBPF_STATS_STATS_HH
