#include "stats/histogram.hh"

#include <algorithm>
#include <ostream>

#include "util/logging.hh"

namespace tlbpf
{

void
SparseHistogram::sample(std::int64_t key, std::uint64_t weight)
{
    _bins[key] += weight;
    _total += weight;
}

std::uint64_t
SparseHistogram::countOf(std::int64_t key) const
{
    auto it = _bins.find(key);
    return it == _bins.end() ? 0 : it->second;
}

std::vector<std::pair<std::int64_t, std::uint64_t>>
SparseHistogram::topK(std::size_t k) const
{
    std::vector<std::pair<std::int64_t, std::uint64_t>> items(
        _bins.begin(), _bins.end());
    std::sort(items.begin(), items.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    if (items.size() > k)
        items.resize(k);
    return items;
}

double
SparseHistogram::coverage(std::size_t k) const
{
    if (_total == 0)
        return 0.0;
    std::uint64_t covered = 0;
    for (const auto &[key, count] : topK(k))
        covered += count;
    return static_cast<double>(covered) / static_cast<double>(_total);
}

void
SparseHistogram::reset()
{
    _bins.clear();
    _total = 0;
}

void
SparseHistogram::print(std::ostream &os, std::size_t top_k) const
{
    os << "total " << _total << ", distinct " << _bins.size() << "\n";
    for (const auto &[key, count] : topK(top_k)) {
        os << "  " << key << ": " << count << " ("
           << (100.0 * static_cast<double>(count) /
               static_cast<double>(_total ? _total : 1))
           << "%)\n";
    }
}

BucketHistogram::BucketHistogram(std::uint64_t bucket_width,
                                 std::size_t num_buckets)
    : _width(bucket_width), _buckets(num_buckets, 0)
{
    tlbpf_assert(bucket_width > 0, "bucket width must be positive");
    tlbpf_assert(num_buckets > 0, "need at least one bucket");
}

void
BucketHistogram::sample(std::uint64_t value)
{
    std::size_t idx = value / _width;
    if (idx >= _buckets.size())
        ++_overflow;
    else
        ++_buckets[idx];
    ++_total;
    _sum += static_cast<double>(value);
}

std::uint64_t
BucketHistogram::bucketCount(std::size_t idx) const
{
    tlbpf_assert(idx < _buckets.size(), "bucket index out of range");
    return _buckets[idx];
}

double
BucketHistogram::mean() const
{
    return _total ? _sum / static_cast<double>(_total) : 0.0;
}

std::uint64_t
BucketHistogram::quantile(double q) const
{
    if (_total == 0)
        return 0;
    auto threshold =
        static_cast<std::uint64_t>(q * static_cast<double>(_total));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        running += _buckets[i];
        if (running >= threshold)
            return (i + 1) * _width - 1;
    }
    return _buckets.size() * _width; // overflow region
}

void
BucketHistogram::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _overflow = 0;
    _total = 0;
    _sum = 0.0;
}

} // namespace tlbpf
