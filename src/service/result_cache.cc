#include "service/result_cache.hh"

#include <stdexcept>

#include "service/protocol.hh"
#include "service/store_util.hh"

namespace tlbpf
{

std::string
encodeCacheEntry(const std::string &key, const SweepResult &result)
{
    JsonObjectWriter out;
    out.str("key", key);
    out.str("workload", result.workload);
    out.str("mechanism", result.mechanism);
    out.str("mode",
            result.mode == JobMode::Timed ? "timed" : "functional");
    out.raw("counters", encodeCounters(result.functional));
    if (result.mode == JobMode::Timed)
        out.raw("timing", encodeTiming(result.timed));
    return out.take();
}

SweepResult
decodeCacheEntry(const std::string &text,
                 const std::string &expected_key)
{
    JsonValue entry = JsonValue::parse(text);
    if (!entry.isObject())
        throw std::invalid_argument(
            "cache entry must be a JSON object");
    if (entry.at("key").asString() != expected_key)
        throw std::invalid_argument(
            "cache entry key does not match its content address");
    SweepResult result;
    result.workload = entry.at("workload").asString();
    result.mechanism = entry.at("mechanism").asString();
    const std::string &mode = entry.at("mode").asString();
    if (mode == "timed")
        result.mode = JobMode::Timed;
    else if (mode == "functional")
        result.mode = JobMode::Functional;
    else
        throw std::invalid_argument("cache entry has unknown mode '" +
                                    mode + "'");
    result.functional = decodeCounters(entry.at("counters"));
    if (result.mode == JobMode::Timed) {
        result.timed = decodeTiming(entry.at("timing"));
        result.timed.functional = result.functional;
    } else if (entry.find("timing")) {
        throw std::invalid_argument(
            "cache entry: functional cells carry no timing member");
    }
    return result;
}

ResultCache::ResultCache(std::size_t capacity,
                         const std::string &directory)
    : _capacity(capacity ? capacity : 1), _directory(directory)
{
    if (!_directory.empty())
        ensureDirectory(_directory);
    _stats.capacity = _capacity;
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return _directory + "/" + contentAddress(key) + ".cell";
}

bool
ResultCache::loadFromDisk(const std::string &key, SweepResult &out)
{
    if (_directory.empty())
        return false;
    std::vector<std::uint8_t> bytes;
    if (!readFileBytes(entryPath(key), bytes))
        return false;
    try {
        out = decodeCacheEntry(
            std::string(bytes.begin(), bytes.end()), key);
        // A disk hit refreshes the entry's mtime, which is the
        // recency order the --store-max-bytes eviction sweep uses.
        touchFile(entryPath(key));
        return true;
    } catch (const std::invalid_argument &) {
        return false; // corrupt or colliding entry: a miss
    }
}

void
ResultCache::storeToMemory(const std::string &key,
                           const SweepResult &result)
{
    auto it = _index.find(key);
    if (it != _index.end()) {
        it->second->second = result;
        _lru.splice(_lru.begin(), _lru, it->second);
        return;
    }
    _lru.emplace_front(key, result);
    _index.emplace(key, _lru.begin());
    while (_lru.size() > _capacity) {
        _index.erase(_lru.back().first);
        _lru.pop_back();
        ++_stats.evictions;
    }
}

bool
ResultCache::lookup(const std::string &key, SweepResult &out)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _index.find(key);
    if (it != _index.end()) {
        _lru.splice(_lru.begin(), _lru, it->second);
        out = it->second->second;
        ++_stats.hits;
        return true;
    }
    if (loadFromDisk(key, out)) {
        storeToMemory(key, out);
        ++_stats.hits;
        return true;
    }
    ++_stats.misses;
    return false;
}

void
ResultCache::insert(const std::string &key, const SweepResult &result)
{
    std::lock_guard<std::mutex> lock(_mutex);
    storeToMemory(key, result);
    if (!_directory.empty()) {
        std::string text = encodeCacheEntry(key, result);
        writeFileBytesAtomic(
            entryPath(key),
            reinterpret_cast<const std::uint8_t *>(text.data()),
            text.size());
    }
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Stats stats = _stats;
    stats.entries = _lru.size();
    return stats;
}

} // namespace tlbpf
