/**
 * @file
 * Durable end-of-window SimState store behind the engine's
 * CheckpointHook: checkpoint-mode shard chains deposit every window
 * boundary they pass through, and explicit `spec#k/N` cells warm up
 * from a stored boundary instead of replaying their stream prefix —
 * across requests, and (with a directory) across server restarts.
 *
 * Snapshots are kept in a bounded in-memory LRU and, when a directory
 * is configured, written through as one content-addressed file per
 * key (the SnapshotWriter byte format with the key embedded for
 * verification).  The store never has to be *right* about anything
 * but bytes: the simulator re-verifies geometry and mechanism
 * identity on restore, and the engine falls back to prefix replay if
 * a restore throws — so a corrupt file costs time, never correctness.
 *
 * Thread-safe: the engine calls load()/store() from worker threads.
 */

#ifndef TLBPF_SERVICE_CHECKPOINT_STORE_HH
#define TLBPF_SERVICE_CHECKPOINT_STORE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "run/sweep_engine.hh"

namespace tlbpf
{

class CheckpointStore : public CheckpointHook
{
  public:
    /**
     * @param directory optional persistence directory; created if
     *                  absent (std::invalid_argument on failure);
     *                  empty keeps snapshots in memory only.
     * @param capacity  max snapshots resident in memory (>= 1).
     */
    explicit CheckpointStore(const std::string &directory = "",
                             std::size_t capacity = 256);

    bool load(const std::string &key, SimState &out) override;
    void store(const std::string &key, const SimState &state) override;

    /** Successful load() calls (memory or disk). */
    std::uint64_t loaded() const;

    /** store() calls accepted. */
    std::uint64_t stored() const;

  private:
    std::string entryPath(const std::string &key) const;
    void storeToMemory(const std::string &key, const SimState &state);

    using Entry = std::pair<std::string, SimState>;

    mutable std::mutex _mutex;
    std::string _directory;
    std::size_t _capacity;
    std::list<Entry> _lru; ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> _index;
    std::uint64_t _loaded = 0;
    std::uint64_t _stored = 0;
};

} // namespace tlbpf

#endif // TLBPF_SERVICE_CHECKPOINT_STORE_HH
