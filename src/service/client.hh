/**
 * @file
 * Blocking client for the sweep service: connect, submit a sweep
 * request, consume the streamed cell replies in submission order, and
 * hand back results that are bit-identical to a local engine run
 * (counters cross the wire as exact integers).
 *
 * Error split: TransportError means the server is unreachable or died
 * mid-stream (retryable); std::runtime_error carries a server-side
 * "error" frame's message (the request was wrong — not retryable);
 * std::invalid_argument means the server sent a frame this client
 * cannot decode (version skew or a hostile peer).
 */

#ifndef TLBPF_SERVICE_CLIENT_HH
#define TLBPF_SERVICE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "service/protocol.hh"

namespace tlbpf
{

class ServiceClient
{
  public:
    /** What one sweep request produced, after the stream drained. */
    struct SweepOutcome
    {
        /** One result per cell, in submission (grid) order. */
        std::vector<SweepResult> results;
        /** Cells the server answered from its result cache. */
        std::uint64_t cachedCells = 0;
        DoneReply done;
    };

    /** Per-cell progress hook; invoked as each cell frame arrives. */
    using CellCallback = std::function<void(const CellReply &)>;

    /** Connect to @p host:@p port; TransportError on failure. */
    ServiceClient(const std::string &host, std::uint16_t port);

    /**
     * Submit @p request and consume its reply stream.  Verifies the
     * stream shape (batch header, strictly sequential cell indices,
     * terminal done frame with consistent counts); any violation
     * throws std::invalid_argument.
     */
    SweepOutcome sweep(const SweepRequest &request,
                       const CellCallback &on_cell = CellCallback());

    StatsReply stats();

    /** Round-trip a ping (liveness probe). */
    void ping();

    /** Ask the server to exit after this connection. */
    void shutdown();

  private:
    JsonValue request(const std::string &payload,
                      const std::string &expect_type);

    OwnedFd _fd;
};

} // namespace tlbpf

#endif // TLBPF_SERVICE_CLIENT_HH
