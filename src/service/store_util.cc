#include "service/store_util.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <dirent.h>
#include <fcntl.h>
#include <stdexcept>
#include <sys/stat.h>
#include <unistd.h>

namespace tlbpf
{

std::string
contentAddress(const std::string &key)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : key) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hash));
    return hex;
}

void
ensureDirectory(const std::string &path)
{
    if (path.empty())
        throw std::invalid_argument(
            "store directory path must not be empty");
    if (::mkdir(path.c_str(), 0755) == 0)
        return;
    if (errno != EEXIST)
        throw std::invalid_argument("cannot create directory '" +
                                    path + "': " +
                                    std::strerror(errno));
    struct stat st;
    if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        throw std::invalid_argument("'" + path +
                                    "' exists and is not a directory");
}

bool
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    std::vector<std::uint8_t> bytes;
    std::uint8_t block[1 << 16];
    std::size_t got;
    while ((got = std::fread(block, 1, sizeof(block), file)) > 0)
        bytes.insert(bytes.end(), block, block + got);
    bool ok = !std::ferror(file);
    std::fclose(file);
    if (!ok)
        return false;
    out = std::move(bytes);
    return true;
}

bool
writeFileBytesAtomic(const std::string &path, const std::uint8_t *bytes,
                     std::size_t count)
{
    std::string tmp = path + ".tmp." +
                      std::to_string(static_cast<long>(::getpid()));
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file)
        return false;
    bool ok = count == 0 || std::fwrite(bytes, 1, count, file) == count;
    ok = (std::fclose(file) == 0) && ok;
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0)
        ok = false;
    if (!ok)
        ::unlink(tmp.c_str());
    return ok;
}

void
touchFile(const std::string &path)
{
    ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
}

namespace
{

struct StoreFile
{
    std::string path;
    std::time_t mtime;
    std::uint64_t bytes;
};

/** Every committed (non-".tmp.") regular file under @p dir. */
void
collectStoreFiles(const std::string &dir, std::vector<StoreFile> &out)
{
    DIR *handle = ::opendir(dir.c_str());
    if (!handle)
        return;
    while (const dirent *entry = ::readdir(handle)) {
        std::string name = entry->d_name;
        if (name == "." || name == ".." ||
            name.find(".tmp.") != std::string::npos)
            continue;
        std::string path = dir + "/" + name;
        struct stat st;
        if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode))
            continue;
        out.push_back({std::move(path), st.st_mtime,
                       static_cast<std::uint64_t>(st.st_size)});
    }
    ::closedir(handle);
}

} // namespace

EvictStats
evictStaleStoreFiles(const std::vector<std::string> &dirs,
                     std::uint64_t max_total_bytes,
                     std::uint64_t ttl_seconds)
{
    EvictStats evicted;
    if (max_total_bytes == 0 && ttl_seconds == 0)
        return evicted;

    std::vector<StoreFile> files;
    for (const std::string &dir : dirs)
        if (!dir.empty())
            collectStoreFiles(dir, files);

    std::uint64_t total = 0;
    for (const StoreFile &file : files)
        total += file.bytes;

    std::time_t now = std::time(nullptr);
    std::vector<StoreFile> survivors;
    survivors.reserve(files.size());
    for (StoreFile &file : files) {
        bool expired =
            ttl_seconds != 0 && file.mtime <= now &&
            static_cast<std::uint64_t>(now - file.mtime) > ttl_seconds;
        if (expired && ::unlink(file.path.c_str()) == 0) {
            ++evicted.files;
            evicted.bytes += file.bytes;
            total -= file.bytes;
        } else {
            survivors.push_back(std::move(file));
        }
    }

    if (max_total_bytes == 0 || total <= max_total_bytes)
        return evicted;
    std::sort(survivors.begin(), survivors.end(),
              [](const StoreFile &a, const StoreFile &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    for (const StoreFile &file : survivors) {
        if (total <= max_total_bytes)
            break;
        if (::unlink(file.path.c_str()) == 0) {
            ++evicted.files;
            evicted.bytes += file.bytes;
            total -= file.bytes;
        }
    }
    return evicted;
}

} // namespace tlbpf
