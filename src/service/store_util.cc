#include "service/store_util.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <sys/stat.h>
#include <unistd.h>

namespace tlbpf
{

std::string
contentAddress(const std::string &key)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : key) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hash));
    return hex;
}

void
ensureDirectory(const std::string &path)
{
    if (path.empty())
        throw std::invalid_argument(
            "store directory path must not be empty");
    if (::mkdir(path.c_str(), 0755) == 0)
        return;
    if (errno != EEXIST)
        throw std::invalid_argument("cannot create directory '" +
                                    path + "': " +
                                    std::strerror(errno));
    struct stat st;
    if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        throw std::invalid_argument("'" + path +
                                    "' exists and is not a directory");
}

bool
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    std::vector<std::uint8_t> bytes;
    std::uint8_t block[1 << 16];
    std::size_t got;
    while ((got = std::fread(block, 1, sizeof(block), file)) > 0)
        bytes.insert(bytes.end(), block, block + got);
    bool ok = !std::ferror(file);
    std::fclose(file);
    if (!ok)
        return false;
    out = std::move(bytes);
    return true;
}

bool
writeFileBytesAtomic(const std::string &path, const std::uint8_t *bytes,
                     std::size_t count)
{
    std::string tmp = path + ".tmp." +
                      std::to_string(static_cast<long>(::getpid()));
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file)
        return false;
    bool ok = count == 0 || std::fwrite(bytes, 1, count, file) == count;
    ok = (std::fclose(file) == 0) && ok;
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0)
        ok = false;
    if (!ok)
        ::unlink(tmp.c_str());
    return ok;
}

} // namespace tlbpf
