/**
 * @file
 * The sweep service's wire protocol: length-prefixed JSON frames.
 *
 * A frame is a 4-byte little-endian payload length followed by that
 * many bytes of UTF-8 JSON — one message per frame, one JSON object
 * per message, discriminated by a "type" member.  The framing layer
 * is deliberately dumb (no compression, no multiplexing): the
 * payloads are small and the value of the service is the result
 * cache and the warm checkpoints behind it, not wire cleverness.
 *
 * Client -> server requests:
 *   {"type":"sweep", "workloads":[...], "mechanisms":[...],
 *    "refs":N, "mode":"functional"|"timed", "shards":N,
 *    "shard_warmup":"replay"|"checkpoint",
 *    "pass_mode":"per-mechanism"|"single-pass", "config":{...}?}
 *   {"type":"stats"}     {"type":"ping"}     {"type":"shutdown"}
 *
 * Server -> client responses (sweep answers are a *stream*):
 *   {"type":"batch","cells":N}            then, in submission order,
 *   {"type":"cell","index":i,...}         one per cell as it
 *                                         completes (cache hits
 *                                         arrive first, instantly),
 *   {"type":"done","cells":N,"cache_hits":H,"simulated":M}
 *   {"type":"stats",...}   {"type":"pong"}   {"type":"error",...}
 *   {"type":"bye"}         acknowledges a shutdown request
 *
 * Decoding is strict: a missing or wrongly-typed member, an unknown
 * "type", an oversized length prefix, a truncated frame, or trailing
 * bytes after the JSON document all throw std::invalid_argument with
 * an actionable message.  The server answers a decode failure with
 * an "error" frame and drops only that connection; transport
 * failures (peer vanished mid-frame) throw TransportError so callers
 * can tell a hostile frame from a dead socket.
 *
 * Counter exactness: all simulation counters are emitted as bare
 * JSON integers and re-parsed from their digit text (JsonValue::
 * asU64), so a result that crossed the wire is bit-identical to one
 * computed locally — the property the client's byte-identical
 * CSV/JSON output contract rests on.
 */

#ifndef TLBPF_SERVICE_PROTOCOL_HH
#define TLBPF_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "run/job.hh"
#include "run/sweep_engine.hh"
#include "service/json.hh"

namespace tlbpf
{

/** Default TCP port of tlbpf-server (loopback service). */
constexpr std::uint16_t kDefaultServicePort = 7733;

/**
 * Hard ceiling on one frame's payload.  Large enough for any real
 * sweep batch (a 10k-cell request is ~1 MB), small enough that a
 * hostile length prefix cannot make the server allocate the moon.
 */
constexpr std::uint32_t kMaxFrameBytes = 1u << 26;

/** The socket died mid-conversation (EOF inside a frame, EPIPE...). */
class TransportError : public std::runtime_error
{
  public:
    explicit TransportError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Owning file descriptor (socket) with close-on-destroy. */
class OwnedFd
{
  public:
    OwnedFd() = default;
    explicit OwnedFd(int fd) : _fd(fd) {}
    OwnedFd(OwnedFd &&other) noexcept : _fd(other.release()) {}
    OwnedFd &operator=(OwnedFd &&other) noexcept;
    OwnedFd(const OwnedFd &) = delete;
    OwnedFd &operator=(const OwnedFd &) = delete;
    ~OwnedFd() { close(); }

    int fd() const { return _fd; }
    bool valid() const { return _fd >= 0; }
    int release();
    void close();

  private:
    int _fd = -1;
};

/**
 * Write one frame; throws TransportError on any short/failed write
 * (SIGPIPE is suppressed per-call, so a vanished peer surfaces as an
 * exception, not a process signal).
 */
void writeFrame(int fd, const std::string &payload);

/**
 * Read one frame payload.  Returns false on a clean EOF *between*
 * frames (the peer closed politely).  Throws std::invalid_argument
 * on an oversized length prefix and TransportError on EOF or a read
 * failure mid-frame.
 */
bool readFrame(int fd, std::string &payload);

/** readFrame + JsonValue::parse + require an object with "type". */
bool readMessage(int fd, JsonValue &message, std::string &type);

/** Canonical wire value of a JobMode: "functional" or "timed". */
const char *jobModeName(JobMode mode);

/**
 * Parse a job-mode wire value; throws std::invalid_argument on
 * anything but "functional"/"timed".
 */
JobMode parseJobMode(const std::string &text);

/**
 * Reject members outside @p allowed, so a typo'd request field fails
 * loudly instead of silently running with a default — the strict-
 * decode backbone of every protocol struct (including the dispatch
 * subsystem's worker verbs).
 */
void requireKnownKeys(const JsonValue &object, const char *what,
                      const std::vector<std::string> &allowed);

/** Simulator geometry as a JSON object (exact integers). */
std::string encodeConfig(const SimConfig &config);

/** Strict inverse of encodeConfig(); throws std::invalid_argument. */
SimConfig decodeConfig(const JsonValue &object);

/** One simulation counter block as a JSON object (exact integers). */
std::string encodeCounters(const SimResult &counters);

/** Strict inverse of encodeCounters(); throws std::invalid_argument. */
SimResult decodeCounters(const JsonValue &object);

/** One timing counter block as a JSON object (exact integers). */
std::string encodeTiming(const TimingResult &timed);

/** Strict inverse of encodeTiming(); throws std::invalid_argument. */
TimingResult decodeTiming(const JsonValue &object);

/** A sweep batch request: the (workload x mechanism) grid to run. */
struct SweepRequest
{
    std::vector<std::string> workloads;  ///< WorkloadSpec strings
    std::vector<std::string> mechanisms; ///< MechanismSpec strings
    std::uint64_t refs = 0;
    JobMode mode = JobMode::Functional;
    std::uint32_t shards = 1;
    ShardWarmup shardWarmup = ShardWarmup::Checkpoint;
    PassMode passMode = PassMode::SinglePass;
    SimConfig config{}; ///< geometry (paper defaults when omitted)

    std::string encode() const;
    /** Strict decode; throws std::invalid_argument on any violation. */
    static SweepRequest decode(const JsonValue &message);

    /**
     * Expand into the submission-order job grid (workload-major, the
     * same order the direct bench path uses) after parsing and
     * validating every spec string; throws std::invalid_argument.
     */
    std::vector<SweepJob> expand() const;
};

/** One streamed per-cell answer. */
struct CellReply
{
    std::uint64_t index = 0; ///< submission index within the batch
    std::string workload;    ///< resolved workload label
    std::string mechanism;   ///< figure-legend mechanism label
    JobMode mode = JobMode::Functional;
    bool cached = false;     ///< served from the result cache
    SimResult counters;
    TimingResult timed;      ///< valid only in timed mode

    std::string encode() const;
    static CellReply decode(const JsonValue &message);

    /** Convert to the engine's result type (for shared rendering). */
    SweepResult toResult() const;
};

/** Terminal frame of a sweep stream. */
struct DoneReply
{
    std::uint64_t cells = 0;
    std::uint64_t cacheHits = 0; ///< served without simulation
    std::uint64_t simulated = 0; ///< cells actually run

    std::string encode() const;
    static DoneReply decode(const JsonValue &message);
};

/** Server counters (the "stats" reply). */
struct StatsReply
{
    std::uint64_t requests = 0;   ///< sweep requests handled
    std::uint64_t cells = 0;      ///< cells answered in total
    std::uint64_t cacheHits = 0;  ///< of which from the result cache
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheEvictions = 0;
    std::uint64_t cacheEntries = 0;   ///< resident entries now
    std::uint64_t cacheCapacity = 0;  ///< LRU bound
    std::uint64_t checkpointsStored = 0;
    std::uint64_t checkpointsLoaded = 0;
    /* Dispatch-subsystem counters (worker fleet). */
    std::uint64_t workers = 0;        ///< workers registered now
    std::uint64_t leasesGranted = 0;  ///< lifetime lease grants
    std::uint64_t leaseReclaims = 0;  ///< expired/dead-worker reclaims
    std::uint64_t cellsDispatched = 0; ///< cells completed remotely
    /* On-disk store eviction counters (--store-max-bytes/--store-ttl). */
    std::uint64_t storeEvictedFiles = 0;
    std::uint64_t storeEvictedBytes = 0;

    std::string encode() const;
    static StatsReply decode(const JsonValue &message);
};

/** {"type":"error","message":...} */
std::string encodeError(const std::string &message);

/** {"type":"batch","cells":N} */
std::string encodeBatch(std::uint64_t cells);

} // namespace tlbpf

#endif // TLBPF_SERVICE_PROTOCOL_HH
