/**
 * @file
 * Minimal strict JSON for the service protocol.
 *
 * The repo has always *emitted* JSON (JsonSink) but never consumed
 * it; the sweep service's request/response frames need both sides.
 * JsonValue is a small tagged tree with the strictness the protocol
 * layer wants: parse() accepts exactly one RFC 8259 value with
 * nothing but whitespace after it, rejects unbalanced structures,
 * bad escapes, bare NaN/Infinity and input nested deeper than a
 * fixed bound (a hostile frame must not recurse the stack away), and
 * every error is a std::invalid_argument naming the byte offset —
 * the same clean-failure policy the snapshot codec uses, so a
 * malformed frame surfaces as a protocol error, never an abort.
 *
 * Numbers keep their raw source text alongside the double value:
 * simulation counters are u64 and a double loses exactness past
 * 2^53, so asU64() re-parses the original digits and round-trips
 * every counter bit-exactly.
 */

#ifndef TLBPF_SERVICE_JSON_HH
#define TLBPF_SERVICE_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tlbpf
{

/** One parsed JSON value (null/bool/number/string/array/object). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    /**
     * Parse exactly one JSON document; throws std::invalid_argument
     * (with the byte offset) on any syntax error, trailing garbage,
     * or nesting beyond kMaxDepth.
     */
    static JsonValue parse(const std::string &text);

    /** Structures deeper than this are rejected, not recursed. */
    static constexpr std::size_t kMaxDepth = 64;

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }
    bool isObject() const { return _kind == Kind::Object; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isString() const { return _kind == Kind::String; }
    bool isNumber() const { return _kind == Kind::Number; }
    bool isBool() const { return _kind == Kind::Bool; }

    /* Checked accessors: throw std::invalid_argument on a kind
     * mismatch so protocol decoding never reads a wrong union arm. */
    bool asBool() const;
    double asDouble() const;
    /** Exact unsigned counter; throws unless the source text is a
     *  plain non-negative integer that fits in 64 bits. */
    std::uint64_t asU64() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;

    /** Object member, or nullptr when absent (objects only). */
    const JsonValue *find(const std::string &key) const;
    /** Object member that must exist; throws when absent. */
    const JsonValue &at(const std::string &key) const;
    /** Member keys in source order (objects only). */
    const std::vector<std::string> &keys() const;

  private:
    friend class JsonParser;

    Kind _kind = Kind::Null;
    bool _bool = false;
    double _number = 0;
    std::string _text; ///< string value, or a number's raw digits
    std::vector<JsonValue> _array;
    std::vector<std::string> _keys; ///< object keys, source order
    std::map<std::string, JsonValue> _members;
};

/**
 * Incremental JSON object writer for protocol frames: append typed
 * key/value pairs, take the finished text.  Strings are escaped per
 * RFC 8259 (shares JsonSink's escaper); u64 counters are emitted as
 * bare digit runs so they survive the round-trip exactly.
 */
class JsonObjectWriter
{
  public:
    JsonObjectWriter() : _text("{") {}

    void str(const std::string &key, const std::string &value);
    void u64(const std::string &key, std::uint64_t value);
    void boolean(const std::string &key, bool value);
    void number(const std::string &key, double value);
    /** Append an already-serialized JSON value verbatim. */
    void raw(const std::string &key, const std::string &json);

    /** Close the object and return the document. */
    std::string take();

  private:
    void keyPrefix(const std::string &key);

    std::string _text;
    bool _first = true;
};

/** Serialize a list of strings as a JSON array. */
std::string jsonStringArray(const std::vector<std::string> &items);

} // namespace tlbpf

#endif // TLBPF_SERVICE_JSON_HH
