#include "service/json.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "run/result_sink.hh"

namespace tlbpf
{

namespace
{

[[noreturn]] void
jsonFail(std::size_t at, const std::string &why)
{
    throw std::invalid_argument("json: " + why + " at byte " +
                                std::to_string(at));
}

} // namespace

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _text(text) {}

    JsonValue
    document()
    {
        JsonValue value = parseValue(0);
        skipSpace();
        if (_at != _text.size())
            jsonFail(_at, "trailing characters after the document");
        return value;
    }

  private:
    void
    skipSpace()
    {
        while (_at < _text.size() &&
               (_text[_at] == ' ' || _text[_at] == '\t' ||
                _text[_at] == '\n' || _text[_at] == '\r'))
            ++_at;
    }

    char
    peek()
    {
        if (_at >= _text.size())
            jsonFail(_at, "unexpected end of document");
        return _text[_at];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            jsonFail(_at, std::string("expected '") + c + "', got '" +
                              _text[_at] + "'");
        ++_at;
    }

    bool
    consume(char c)
    {
        if (_at < _text.size() && _text[_at] == c) {
            ++_at;
            return true;
        }
        return false;
    }

    void
    literal(const char *word)
    {
        std::size_t start = _at;
        for (const char *p = word; *p; ++p, ++_at)
            if (_at >= _text.size() || _text[_at] != *p)
                jsonFail(start, std::string("invalid literal (wanted "
                                            "'") +
                                    word + "')");
    }

    JsonValue
    parseValue(std::size_t depth)
    {
        if (depth > JsonValue::kMaxDepth)
            jsonFail(_at, "nesting exceeds the protocol depth bound");
        skipSpace();
        char c = peek();
        JsonValue value;
        switch (c) {
          case '{':
            return parseObject(depth);
          case '[':
            return parseArray(depth);
          case '"':
            value._kind = JsonValue::Kind::String;
            value._text = parseString();
            return value;
          case 't':
            literal("true");
            value._kind = JsonValue::Kind::Bool;
            value._bool = true;
            return value;
          case 'f':
            literal("false");
            value._kind = JsonValue::Kind::Bool;
            value._bool = false;
            return value;
          case 'n':
            literal("null");
            value._kind = JsonValue::Kind::Null;
            return value;
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            jsonFail(_at, std::string("unexpected character '") + c +
                              "'");
        }
    }

    JsonValue
    parseObject(std::size_t depth)
    {
        JsonValue value;
        value._kind = JsonValue::Kind::Object;
        expect('{');
        skipSpace();
        if (consume('}'))
            return value;
        while (true) {
            skipSpace();
            std::size_t key_at = _at;
            if (peek() != '"')
                jsonFail(_at, "object key must be a string");
            std::string key = parseString();
            if (value._members.contains(key))
                jsonFail(key_at, "duplicate object key '" + key + "'");
            skipSpace();
            expect(':');
            value._keys.push_back(key);
            value._members.emplace(std::move(key),
                                   parseValue(depth + 1));
            skipSpace();
            if (consume(','))
                continue;
            expect('}');
            return value;
        }
    }

    JsonValue
    parseArray(std::size_t depth)
    {
        JsonValue value;
        value._kind = JsonValue::Kind::Array;
        expect('[');
        skipSpace();
        if (consume(']'))
            return value;
        while (true) {
            value._array.push_back(parseValue(depth + 1));
            skipSpace();
            if (consume(','))
                continue;
            expect(']');
            return value;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_at >= _text.size())
                jsonFail(_at, "unterminated string");
            unsigned char c =
                static_cast<unsigned char>(_text[_at]);
            if (c == '"') {
                ++_at;
                return out;
            }
            if (c < 0x20)
                jsonFail(_at, "raw control character in string");
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                ++_at;
                continue;
            }
            ++_at; // the backslash
            char esc = peek();
            ++_at;
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                unsigned code = parseHex4();
                // The protocol is ASCII-clean; non-BMP text would
                // need surrogate handling this codec does not model.
                if (code >= 0xD800 && code <= 0xDFFF)
                    jsonFail(_at, "surrogate escapes are not "
                                  "supported by the protocol codec");
                appendUtf8(out, code);
                break;
              }
              default:
                jsonFail(_at - 1, "invalid escape sequence");
            }
        }
    }

    unsigned
    parseHex4()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            char c = peek();
            ++_at;
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                jsonFail(_at - 1, "invalid \\u escape digit");
        }
        return code;
    }

    static void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = _at;
        consume('-');
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            jsonFail(_at, "malformed number");
        if (!consume('0'))
            while (_at < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_at])))
                ++_at;
        if (consume('.')) {
            if (_at >= _text.size() ||
                !std::isdigit(static_cast<unsigned char>(_text[_at])))
                jsonFail(_at, "malformed number (empty fraction)");
            while (_at < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_at])))
                ++_at;
        }
        if (_at < _text.size() &&
            (_text[_at] == 'e' || _text[_at] == 'E')) {
            ++_at;
            if (_at < _text.size() &&
                (_text[_at] == '+' || _text[_at] == '-'))
                ++_at;
            if (_at >= _text.size() ||
                !std::isdigit(static_cast<unsigned char>(_text[_at])))
                jsonFail(_at, "malformed number (empty exponent)");
            while (_at < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_at])))
                ++_at;
        }
        JsonValue value;
        value._kind = JsonValue::Kind::Number;
        value._text = _text.substr(start, _at - start);
        errno = 0;
        value._number = std::strtod(value._text.c_str(), nullptr);
        if (errno == ERANGE)
            jsonFail(start, "number out of double range");
        return value;
    }

    const std::string &_text;
    std::size_t _at = 0;
};

JsonValue
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).document();
}

namespace
{

[[noreturn]] void
kindFail(const char *wanted)
{
    throw std::invalid_argument(
        std::string("json: value is not a ") + wanted);
}

} // namespace

bool
JsonValue::asBool() const
{
    if (_kind != Kind::Bool)
        kindFail("boolean");
    return _bool;
}

double
JsonValue::asDouble() const
{
    if (_kind != Kind::Number)
        kindFail("number");
    return _number;
}

std::uint64_t
JsonValue::asU64() const
{
    if (_kind != Kind::Number)
        kindFail("number");
    // Exactness matters: counters round-trip through the raw digit
    // text, never through the double.
    const std::string &digits = _text;
    if (digits.empty() || digits[0] == '-' ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        throw std::invalid_argument(
            "json: '" + digits + "' is not an unsigned integer");
    errno = 0;
    char *end = nullptr;
    unsigned long long value =
        std::strtoull(digits.c_str(), &end, 10);
    if (errno == ERANGE || end != digits.c_str() + digits.size())
        throw std::invalid_argument(
            "json: unsigned integer '" + digits + "' out of range");
    return value;
}

const std::string &
JsonValue::asString() const
{
    if (_kind != Kind::String)
        kindFail("string");
    return _text;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (_kind != Kind::Array)
        kindFail("array");
    return _array;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (_kind != Kind::Object)
        kindFail("object");
    auto it = _members.find(key);
    return it == _members.end() ? nullptr : &it->second;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *value = find(key);
    if (!value)
        throw std::invalid_argument(
            "json: missing required member '" + key + "'");
    return *value;
}

const std::vector<std::string> &
JsonValue::keys() const
{
    if (_kind != Kind::Object)
        kindFail("object");
    return _keys;
}

void
JsonObjectWriter::keyPrefix(const std::string &key)
{
    if (!_first)
        _text += ",";
    _first = false;
    _text += JsonSink::quote(key);
    _text += ":";
}

void
JsonObjectWriter::str(const std::string &key, const std::string &value)
{
    keyPrefix(key);
    _text += JsonSink::quote(value);
}

void
JsonObjectWriter::u64(const std::string &key, std::uint64_t value)
{
    keyPrefix(key);
    _text += std::to_string(value);
}

void
JsonObjectWriter::boolean(const std::string &key, bool value)
{
    keyPrefix(key);
    _text += value ? "true" : "false";
}

void
JsonObjectWriter::number(const std::string &key, double value)
{
    keyPrefix(key);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    _text += buf;
}

void
JsonObjectWriter::raw(const std::string &key, const std::string &json)
{
    keyPrefix(key);
    _text += json;
}

std::string
JsonObjectWriter::take()
{
    _text += "}";
    return std::move(_text);
}

std::string
jsonStringArray(const std::vector<std::string> &items)
{
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += ",";
        out += JsonSink::quote(items[i]);
    }
    out += "]";
    return out;
}

} // namespace tlbpf
