/**
 * @file
 * Filesystem plumbing shared by the sweep service's persistent stores
 * (ResultCache entries, CheckpointStore snapshots): content-addressed
 * file names and atomic whole-file writes.
 *
 * Keys are arbitrary strings (canonical cell identities, checkpoint
 * identities) and may contain characters no filesystem accepts, so a
 * store file is named by the FNV-1a hash of its key and the key is
 * repeated *inside* the file — readers verify it, so a hash collision
 * degrades to a cache miss, never to a wrong answer.
 */

#ifndef TLBPF_SERVICE_STORE_UTIL_HH
#define TLBPF_SERVICE_STORE_UTIL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tlbpf
{

/** 64-bit FNV-1a of @p key as 16 lowercase hex digits. */
std::string contentAddress(const std::string &key);

/**
 * Create @p path as a directory if it does not exist (one level; the
 * parent must exist).  Throws std::invalid_argument when the path
 * cannot be created or names something that is not a directory.
 */
void ensureDirectory(const std::string &path);

/**
 * Read the whole file at @p path.  Returns false (leaving @p out
 * untouched) when the file does not exist or cannot be read — stores
 * treat both as a miss.
 */
bool readFileBytes(const std::string &path,
                   std::vector<std::uint8_t> &out);

/**
 * Replace the file at @p path with @p bytes atomically (write to a
 * sibling temp file, then rename), so a concurrent reader sees the
 * old entry or the new one, never a torn write.  Returns false on
 * failure — persistence is an accelerator, so callers drop the entry
 * rather than fail the request.
 */
bool writeFileBytesAtomic(const std::string &path,
                          const std::uint8_t *bytes, std::size_t count);

/**
 * Refresh @p path's mtime to now (best-effort).  The stores touch an
 * entry on every disk hit, which is what turns the eviction sweep's
 * by-mtime order into a by-recency (LRU) order.
 */
void touchFile(const std::string &path);

/** What one eviction sweep removed. */
struct EvictStats
{
    std::uint64_t files = 0;
    std::uint64_t bytes = 0;
};

/**
 * The shared eviction/TTL sweep over the persistent stores'
 * directories: delete every regular file whose mtime is older than
 * @p ttl_seconds (0 disables the TTL pass), then, oldest-mtime first
 * across all of @p dirs together, delete files until the combined
 * size is at most @p max_total_bytes (0 = unbounded).  In-flight
 * ".tmp." files from writeFileBytesAtomic() are skipped.
 *
 * Deletion is a plain unlink, so it is atomic with respect to
 * readers: a reader that already opened the file keeps its data, and
 * one that opens after the unlink sees a miss — eviction of an
 * in-use entry degrades to a cache miss, never a torn read.
 * Missing directories contribute nothing; unlink races (two sweeps,
 * or a concurrent re-write) are counted only when this call's unlink
 * succeeded.
 */
EvictStats evictStaleStoreFiles(const std::vector<std::string> &dirs,
                                std::uint64_t max_total_bytes,
                                std::uint64_t ttl_seconds);

} // namespace tlbpf

#endif // TLBPF_SERVICE_STORE_UTIL_HH
