#include "service/server.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <stdexcept>
#include <sys/socket.h>

#include "service/store_util.hh"

namespace tlbpf
{

namespace
{

/** "<root>/<name>", creating <root>; "" stays "" (memory-only). */
std::string
storeSubdir(const std::string &root, const char *name)
{
    if (root.empty())
        return "";
    ensureDirectory(root);
    return root + "/" + name;
}

CellReply
makeReply(std::size_t index, const SweepResult &result, bool cached)
{
    CellReply reply;
    reply.index = index;
    reply.workload = result.workload;
    reply.mechanism = result.mechanism;
    reply.mode = result.mode;
    reply.cached = cached;
    reply.counters = result.functional;
    reply.timed = result.timed;
    return reply;
}

} // namespace

SweepServer::SweepServer(const ServerOptions &options)
    : _options(options), _engine(options.threads),
      _cache(options.cacheCapacity,
             storeSubdir(options.cacheDir, "cells")),
      _checkpoints(storeSubdir(options.cacheDir, "checkpoints"),
                   options.checkpointCapacity)
{
    _engine.setCheckpointHook(&_checkpoints);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) !=
        1)
        throw std::invalid_argument(
            "'" + options.host +
            "' is not a dotted-quad IPv4 address");

    int raw = ::socket(AF_INET, SOCK_STREAM, 0);
    if (raw < 0)
        throw TransportError(std::string("cannot create socket: ") +
                             std::strerror(errno));
    OwnedFd sock(raw);
    int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (::bind(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throw TransportError("cannot bind " + options.host + ":" +
                             std::to_string(options.port) + ": " +
                             std::strerror(errno));
    if (::listen(sock.fd(), 8) != 0)
        throw TransportError(std::string("cannot listen: ") +
                             std::strerror(errno));
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) != 0)
        throw TransportError(std::string("getsockname failed: ") +
                             std::strerror(errno));
    _port = ntohs(bound.sin_port);
    _listen = std::move(sock);
}

void
SweepServer::serve()
{
    while (!_stop.load()) {
        int fd = ::accept(_listen.fd(), nullptr, nullptr);
        if (fd < 0) {
            // EINTR is the requestStop() signal path; the loop
            // condition decides whether to keep accepting.
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            throw TransportError(std::string("accept failed: ") +
                                 std::strerror(errno));
        }
        OwnedFd conn(fd);
        handleConnection(conn.fd());
    }
}

void
SweepServer::handleConnection(int fd)
{
    try {
        JsonValue message;
        std::string type;
        while (readMessage(fd, message, type)) {
            if (type == "ping") {
                writeFrame(fd, "{\"type\":\"pong\"}");
            } else if (type == "stats") {
                writeFrame(fd, stats().encode());
            } else if (type == "shutdown") {
                writeFrame(fd, "{\"type\":\"bye\"}");
                _stop.store(true);
                return;
            } else if (type == "sweep") {
                handleSweep(fd, message);
            } else {
                throw std::invalid_argument(
                    "unknown request type '" + type + "'");
            }
        }
    } catch (const std::invalid_argument &e) {
        // Hostile or malformed input: answer with the reason
        // (best-effort) and drop only this connection.
        try {
            writeFrame(fd, encodeError(e.what()));
        } catch (const TransportError &) {
        }
    } catch (const TransportError &) {
        // The peer vanished; nothing left to answer.
    }
}

void
SweepServer::handleSweep(int fd, const JsonValue &message)
{
    SweepRequest request = SweepRequest::decode(message);
    std::vector<SweepJob> jobs = request.expand();
    _requests.fetch_add(1);
    _cells.fetch_add(jobs.size());

    std::size_t n = jobs.size();
    std::vector<std::string> keys(n);
    std::vector<SweepResult> results(n);
    std::vector<char> ready(n, 0);
    std::vector<char> cached(n, 0);
    std::vector<SweepJob> pending;
    std::vector<std::size_t> pending_index;
    for (std::size_t i = 0; i < n; ++i) {
        keys[i] = cellKey(jobs[i]);
        if (_cache.lookup(keys[i], results[i])) {
            ready[i] = 1;
            cached[i] = 1;
        } else {
            pending.push_back(jobs[i]);
            pending_index.push_back(i);
        }
    }

    writeFrame(fd, encodeBatch(n));
    bool broken = false;
    std::size_t next = 0;
    auto emitReady = [&]() {
        while (next < n && ready[next]) {
            if (!broken) {
                try {
                    writeFrame(fd, makeReply(next, results[next],
                                             cached[next] != 0)
                                       .encode());
                } catch (const TransportError &) {
                    // The client vanished mid-stream.  Keep running:
                    // the batch's results still populate the cache,
                    // so the retry is (mostly) free.
                    broken = true;
                }
            }
            ++next;
        }
    };
    emitReady();

    if (!pending.empty()) {
        // Invoked serialized and in submission order by the engine
        // (ResultCallback contract), so `next`/`ready` need no lock.
        auto on_result = [&](std::size_t sub,
                             const SweepResult &result) {
            std::size_t i = pending_index[sub];
            results[i] = result;
            _cache.insert(keys[i], result);
            ready[i] = 1;
            emitReady();
        };
        if (request.shards > 1 &&
            request.mode == JobMode::Functional) {
            ShardPlan plan = expandShards(pending, request.shards);
            _engine.runSharded(plan, request.shardWarmup, on_result);
        } else {
            _engine.run(pending, request.passMode, on_result);
        }
    }

    if (broken)
        throw TransportError("client disconnected mid-stream");
    DoneReply done;
    done.cells = n;
    done.simulated = pending.size();
    done.cacheHits = n - pending.size();
    writeFrame(fd, done.encode());
}

StatsReply
SweepServer::stats() const
{
    ResultCache::Stats cache = _cache.stats();
    StatsReply reply;
    reply.requests = _requests.load();
    reply.cells = _cells.load();
    reply.cacheHits = cache.hits;
    reply.cacheMisses = cache.misses;
    reply.cacheEvictions = cache.evictions;
    reply.cacheEntries = cache.entries;
    reply.cacheCapacity = cache.capacity;
    reply.checkpointsStored = _checkpoints.stored();
    reply.checkpointsLoaded = _checkpoints.loaded();
    return reply;
}

} // namespace tlbpf
