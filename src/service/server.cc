#include "service/server.hh"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <utility>

#include "service/store_util.hh"

namespace tlbpf
{

namespace
{

/** "<root>/<name>", creating <root>; "" stays "" (memory-only). */
std::string
storeSubdir(const std::string &root, const char *name)
{
    if (root.empty())
        return "";
    ensureDirectory(root);
    return root + "/" + name;
}

CellReply
makeReply(std::size_t index, const SweepResult &result, bool cached)
{
    CellReply reply;
    reply.index = index;
    reply.workload = result.workload;
    reply.mechanism = result.mechanism;
    reply.mode = result.mode;
    reply.cached = cached;
    reply.counters = result.functional;
    reply.timed = result.timed;
    return reply;
}

DispatcherOptions
dispatcherOptions(const ServerOptions &options)
{
    DispatcherOptions out;
    out.leaseTimeoutMs =
        options.leaseTimeoutMs ? options.leaseTimeoutMs : 1;
    return out;
}

} // namespace

SweepServer::SweepServer(const ServerOptions &options)
    : _options(options), _engine(options.threads),
      _cache(options.cacheCapacity,
             storeSubdir(options.cacheDir, "cells")),
      _checkpoints(storeSubdir(options.cacheDir, "checkpoints"),
                   options.checkpointCapacity),
      _dispatcher(_engine, dispatcherOptions(options))
{
    _engine.setCheckpointHook(&_checkpoints);
    if (!options.cacheDir.empty()) {
        _storeDirs.push_back(options.cacheDir + "/cells");
        _storeDirs.push_back(options.cacheDir + "/checkpoints");
    }
    evictStores(); // a restart honours the budget before serving

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) !=
        1)
        throw std::invalid_argument(
            "'" + options.host +
            "' is not a dotted-quad IPv4 address");

    int raw = ::socket(AF_INET, SOCK_STREAM, 0);
    if (raw < 0)
        throw TransportError(std::string("cannot create socket: ") +
                             std::strerror(errno));
    OwnedFd sock(raw);
    int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (::bind(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throw TransportError("cannot bind " + options.host + ":" +
                             std::to_string(options.port) + ": " +
                             std::strerror(errno));
    if (::listen(sock.fd(), 16) != 0)
        throw TransportError(std::string("cannot listen: ") +
                             std::strerror(errno));
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) != 0)
        throw TransportError(std::string("getsockname failed: ") +
                             std::strerror(errno));
    _port = ntohs(bound.sin_port);
    _listen = std::move(sock);
}

SweepServer::~SweepServer()
{
    _stop.store(true);
    reapSessions(/*all=*/true);
}

void
SweepServer::reapSessions(bool all)
{
    std::list<std::unique_ptr<Session>> finished;
    {
        std::lock_guard<std::mutex> lock(_sessionsMutex);
        for (auto it = _sessions.begin(); it != _sessions.end();) {
            if (all || (*it)->done.load()) {
                if (all)
                    // Kick a session blocked in read(); its loop sees
                    // the dead socket and unwinds (a worker's leases
                    // are reclaimed on the way out).
                    ::shutdown((*it)->fd.fd(), SHUT_RDWR);
                finished.push_back(std::move(*it));
                it = _sessions.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto &session : finished)
        if (session->thread.joinable())
            session->thread.join();
}

void
SweepServer::serve()
{
    while (!_stop.load()) {
        pollfd waiter{};
        waiter.fd = _listen.fd();
        waiter.events = POLLIN;
        int readable = ::poll(&waiter, 1, 200);
        reapSessions(/*all=*/false);
        if (readable <= 0) {
            if (readable < 0 && errno != EINTR && errno != EAGAIN)
                throw TransportError(std::string("poll failed: ") +
                                     std::strerror(errno));
            continue;
        }
        int fd = ::accept(_listen.fd(), nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED ||
                errno == EAGAIN)
                continue;
            throw TransportError(std::string("accept failed: ") +
                                 std::strerror(errno));
        }
        OwnedFd conn(fd);

        std::lock_guard<std::mutex> lock(_sessionsMutex);
        if (_sessions.size() >= _options.maxClients) {
            // Shed instead of letting the connection queue silently:
            // the peer learns why immediately.
            _shedded.fetch_add(1);
            try {
                writeFrame(conn.fd(),
                           encodeError(
                               "server at capacity (" +
                               std::to_string(_options.maxClients) +
                               " sessions; --max-clients)"));
            } catch (const TransportError &) {
            }
            continue;
        }
        auto session = std::make_unique<Session>();
        session->fd = std::move(conn);
        Session *raw_session = session.get();
        session->thread = std::thread([this, raw_session] {
            handleConnection(raw_session->fd.fd());
            raw_session->done.store(true);
        });
        _sessions.push_back(std::move(session));
    }
    reapSessions(/*all=*/true);
}

void
SweepServer::handleConnection(int fd)
{
    try {
        JsonValue message;
        std::string type;
        while (readMessage(fd, message, type)) {
            if (type == "ping") {
                writeFrame(fd, "{\"type\":\"pong\"}");
            } else if (type == "stats") {
                writeFrame(fd, stats().encode());
            } else if (type == "shutdown") {
                writeFrame(fd, "{\"type\":\"bye\"}");
                _stop.store(true);
                return;
            } else if (type == "sweep") {
                handleSweep(fd, message);
            } else if (type == "worker_hello") {
                handleWorker(fd, message);
                return; // the whole session was the worker loop
            } else {
                throw std::invalid_argument(
                    "unknown request type '" + type + "'");
            }
        }
    } catch (const std::invalid_argument &e) {
        // Hostile or malformed input: answer with the reason
        // (best-effort) and drop only this connection.
        try {
            writeFrame(fd, encodeError(e.what()));
        } catch (const TransportError &) {
        }
    } catch (const TransportError &) {
        // The peer vanished; nothing left to answer.
    }
}

void
SweepServer::handleWorker(int fd, const JsonValue &hello_message)
{
    WorkerHello hello = WorkerHello::decode(hello_message);
    std::uint64_t id = _dispatcher.registerWorker(hello.threads);
    try {
        WorkerWelcome welcome;
        welcome.worker = id;
        // Several refreshes fit in one lease window, so a single
        // delayed heartbeat never costs a healthy worker its lease.
        welcome.heartbeatMs =
            std::max<std::uint64_t>(1, _options.leaseTimeoutMs / 4);
        writeFrame(fd, welcome.encode());
        workerLoop(fd, id);
    } catch (...) {
        // Connection gone or worker misbehaved: its leases re-run
        // locally, the batch never notices beyond latency.
        _dispatcher.unregisterWorker(id);
        throw;
    }
    _dispatcher.unregisterWorker(id);
}

void
SweepServer::workerLoop(int fd, std::uint64_t worker)
{
    JsonValue message;
    std::string type;
    while (readMessage(fd, message, type)) {
        if (type == "lease") {
            if (decodeLeaseRequest(message) != worker)
                throw std::invalid_argument(
                    "lease names a different worker id");
            LeaseGrant grant;
            if (_dispatcher.lease(worker, grant))
                writeFrame(fd, grant.encode());
            else
                writeFrame(fd, encodeLeaseIdle());
        } else if (type == "heartbeat") {
            // One-way by contract: no reply, so the worker's
            // heartbeat thread never races its main reader.
            if (decodeHeartbeat(message) != worker)
                throw std::invalid_argument(
                    "heartbeat names a different worker id");
            _dispatcher.heartbeat(worker);
        } else if (type == "cell_result") {
            CellResultMsg result = CellResultMsg::decode(message);
            bool accepted = false;
            if (result.failed())
                _dispatcher.failLease(result.lease);
            else
                accepted = _dispatcher.completeLease(
                    result.lease, std::move(result.results));
            writeFrame(fd, encodeResultAck(accepted));
        } else {
            throw std::invalid_argument(
                "unexpected verb '" + type + "' on a worker session");
        }
    }
}

void
SweepServer::handleSweep(int fd, const JsonValue &message)
{
    SweepRequest request = SweepRequest::decode(message);
    std::vector<SweepJob> jobs = request.expand();
    _requests.fetch_add(1);
    _cells.fetch_add(jobs.size());

    std::size_t n = jobs.size();
    // The batch header goes out before the batch lock: a client
    // queued behind another batch sees its request was accepted
    // instead of a silent stall.
    writeFrame(fd, encodeBatch(n));

    // One client batch at a time: the lookup + run + fill span is
    // atomic w.r.t. other clients, so overlapping grids account
    // their shared cells exactly (second batch hits what the first
    // filled).  Worker traffic does NOT take this mutex — remote
    // progress happens inside this span.
    std::lock_guard<std::mutex> batch_lock(_batchMutex);

    std::vector<std::string> keys(n);
    std::vector<SweepResult> results(n);
    std::vector<char> ready(n, 0);
    std::vector<char> cached(n, 0);
    std::vector<SweepJob> pending;
    std::vector<std::size_t> pending_index;
    for (std::size_t i = 0; i < n; ++i) {
        keys[i] = cellKey(jobs[i]);
        if (_cache.lookup(keys[i], results[i])) {
            ready[i] = 1;
            cached[i] = 1;
        } else {
            pending.push_back(jobs[i]);
            pending_index.push_back(i);
        }
    }

    bool broken = false;
    std::size_t next = 0;
    auto emitReady = [&]() {
        while (next < n && ready[next]) {
            if (!broken) {
                try {
                    writeFrame(fd, makeReply(next, results[next],
                                             cached[next] != 0)
                                       .encode());
                } catch (const TransportError &) {
                    // The client vanished mid-stream.  Keep running:
                    // the batch's results still populate the cache,
                    // so the retry is (mostly) free.
                    broken = true;
                }
            }
            ++next;
        }
    };
    emitReady();

    if (!pending.empty()) {
        // Invoked serialized and in submission order by the engine
        // (ResultCallback contract), so `next`/`ready` need no lock.
        auto on_result = [&](std::size_t sub,
                             const SweepResult &result) {
            std::size_t i = pending_index[sub];
            results[i] = result;
            _cache.insert(keys[i], result);
            ready[i] = 1;
            emitReady();
        };
        ShardPlan plan;
        if (request.shards > 1 &&
            request.mode == JobMode::Functional) {
            plan = expandShards(pending, request.shards);
        } else {
            plan.jobs = pending;
            plan.groupSizes.assign(pending.size(), 1);
        }
        // With no workers registered this is exactly the engine's
        // own run()/runSharded() path; with workers, cells are
        // leased out and reintegrated in the same stream order.
        _dispatcher.runBatch(plan, request.shardWarmup,
                             request.passMode, on_result);
    }

    evictStores();

    if (broken)
        throw TransportError("client disconnected mid-stream");
    DoneReply done;
    done.cells = n;
    done.simulated = pending.size();
    done.cacheHits = n - pending.size();
    writeFrame(fd, done.encode());
}

void
SweepServer::evictStores()
{
    if (_storeDirs.empty() ||
        (_options.storeMaxBytes == 0 && _options.storeTtlSeconds == 0))
        return;
    EvictStats swept = evictStaleStoreFiles(
        _storeDirs, _options.storeMaxBytes, _options.storeTtlSeconds);
    _storeEvictedFiles.fetch_add(swept.files);
    _storeEvictedBytes.fetch_add(swept.bytes);
}

StatsReply
SweepServer::stats() const
{
    ResultCache::Stats cache = _cache.stats();
    Dispatcher::Counters fleet = _dispatcher.counters();
    StatsReply reply;
    reply.requests = _requests.load();
    reply.cells = _cells.load();
    reply.cacheHits = cache.hits;
    reply.cacheMisses = cache.misses;
    reply.cacheEvictions = cache.evictions;
    reply.cacheEntries = cache.entries;
    reply.cacheCapacity = cache.capacity;
    reply.checkpointsStored = _checkpoints.stored();
    reply.checkpointsLoaded = _checkpoints.loaded();
    reply.workers = fleet.workers;
    reply.leasesGranted = fleet.leasesGranted;
    reply.leaseReclaims = fleet.leaseReclaims;
    reply.cellsDispatched = fleet.cellsDispatched;
    reply.storeEvictedFiles = _storeEvictedFiles.load();
    reply.storeEvictedBytes = _storeEvictedBytes.load();
    return reply;
}

} // namespace tlbpf
