/**
 * @file
 * The tlbpf sweep service: a loopback TCP daemon that runs sweep
 * batches on a shared SweepEngine behind a persistent ResultCache and
 * CheckpointStore.
 *
 * One accept loop, one connection at a time: parallelism lives
 * *inside* a batch (the engine's work-stealing pool), not across
 * clients, which keeps every determinism contract of the direct CLI
 * path — cells stream back in submission order and a repeat sweep is
 * answered entirely from the cache, bit-identical to the first run.
 *
 * Failure policy mirrors the engine's: a malformed request gets an
 * "error" frame and only that connection is dropped; a client that
 * vanishes mid-stream (TransportError) aborts its stream but the
 * in-flight batch still completes and populates the cache; the server
 * keeps serving in both cases.  requestStop() (async-signal-safe) or
 * a "shutdown" request ends the accept loop after the current
 * connection finishes — in-flight batches always drain.
 */

#ifndef TLBPF_SERVICE_SERVER_HH
#define TLBPF_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "run/sweep_engine.hh"
#include "service/checkpoint_store.hh"
#include "service/protocol.hh"
#include "service/result_cache.hh"

namespace tlbpf
{

struct ServerOptions
{
    std::string host = "127.0.0.1"; ///< dotted-quad bind address
    std::uint16_t port = kDefaultServicePort; ///< 0 = ephemeral
    unsigned threads = 0;          ///< engine workers; 0 = hardware
    std::size_t cacheCapacity = 4096; ///< result-cache LRU bound
    std::size_t checkpointCapacity = 256; ///< snapshot LRU bound
    std::string cacheDir; ///< persistence root; empty = memory only
};

class SweepServer
{
  public:
    /**
     * Bind and listen.  Throws std::invalid_argument on a bad host or
     * an unusable cache directory, TransportError when the socket
     * cannot be bound.  With port 0 the kernel picks a free port —
     * read it back via port().
     */
    explicit SweepServer(const ServerOptions &options);

    /** The actually-bound port (resolves an ephemeral request). */
    std::uint16_t port() const { return _port; }

    /**
     * Accept-and-serve until requestStop() or a "shutdown" request.
     * Runs on the calling thread.
     */
    void serve();

    /**
     * Stop the accept loop after the connection in progress (if any)
     * completes.  Async-signal-safe: safe to call from a SIGINT or
     * SIGTERM handler (pair with an interrupting sigaction so a
     * blocking accept() returns EINTR).
     */
    void requestStop() { _stop.store(true); }

    /** Server-lifetime counters (also the "stats" reply). */
    StatsReply stats() const;

  private:
    void handleConnection(int fd);
    void handleSweep(int fd, const JsonValue &message);

    ServerOptions _options;
    OwnedFd _listen;
    std::uint16_t _port = 0;
    SweepEngine _engine;
    ResultCache _cache;
    CheckpointStore _checkpoints;
    std::atomic<bool> _stop{false};
    std::atomic<std::uint64_t> _requests{0}; ///< sweep batches handled
    std::atomic<std::uint64_t> _cells{0}; ///< cells answered in total
};

} // namespace tlbpf

#endif // TLBPF_SERVICE_SERVER_HH
