/**
 * @file
 * The tlbpf sweep service: a loopback TCP daemon that runs sweep
 * batches on a shared SweepEngine behind a persistent ResultCache and
 * CheckpointStore, and fans batch cells out to registered
 * tlbpf-worker processes through the dispatch subsystem.
 *
 * Concurrency model: the accept loop is a 200ms poll() tick that
 * spawns one session thread per connection (bounded by
 * --max-clients; excess connections get an "error" frame and are
 * closed instead of silently queueing in the backlog).  Client
 * *batches* still run one at a time — a mutex serializes the
 * cache-lookup + run + cache-fill span, which is what keeps a repeat
 * sweep bit-identical and two concurrent clients' shared-cache
 * accounting exact — but worker sessions bypass that mutex entirely:
 * lease, heartbeat and cell_result verbs land directly on the
 * Dispatcher, which is how remote workers make progress *inside*
 * another connection's batch.
 *
 * Failure policy mirrors the engine's: a malformed request gets an
 * "error" frame and only that connection is dropped (a worker's
 * leases are reclaimed and re-run locally); a client that vanishes
 * mid-stream (TransportError) aborts its stream but the in-flight
 * batch still completes and populates the cache; the server keeps
 * serving in both cases.  requestStop() (async-signal-safe) or a
 * "shutdown" request ends the accept loop — in-flight batches always
 * drain before serve() returns.
 *
 * Disk stores: with --store-max-bytes / --store-ttl set, the cell and
 * checkpoint directories are swept (oldest mtime first, shared
 * budget) at startup and after every sweep; reads touch their file's
 * mtime, so the sweep is an LRU over both stores together.
 */

#ifndef TLBPF_SERVICE_SERVER_HH
#define TLBPF_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dispatch/dispatcher.hh"
#include "run/sweep_engine.hh"
#include "service/checkpoint_store.hh"
#include "service/protocol.hh"
#include "service/result_cache.hh"

namespace tlbpf
{

struct ServerOptions
{
    std::string host = "127.0.0.1"; ///< dotted-quad bind address
    std::uint16_t port = kDefaultServicePort; ///< 0 = ephemeral
    unsigned threads = 0;          ///< engine workers; 0 = hardware
    std::size_t cacheCapacity = 4096; ///< result-cache LRU bound
    std::size_t checkpointCapacity = 256; ///< snapshot LRU bound
    std::string cacheDir; ///< persistence root; empty = memory only
    std::size_t maxClients = 64; ///< concurrent sessions; excess shed
    std::uint64_t leaseTimeoutMs = 2000; ///< worker-lease reclaim window
    std::uint64_t storeMaxBytes = 0; ///< disk budget; 0 = unbounded
    std::uint64_t storeTtlSeconds = 0; ///< disk entry TTL; 0 = none
};

class SweepServer
{
  public:
    /**
     * Bind and listen.  Throws std::invalid_argument on a bad host or
     * an unusable cache directory, TransportError when the socket
     * cannot be bound.  With port 0 the kernel picks a free port —
     * read it back via port().
     */
    explicit SweepServer(const ServerOptions &options);

    ~SweepServer();

    /** The actually-bound port (resolves an ephemeral request). */
    std::uint16_t port() const { return _port; }

    /**
     * Accept-and-serve until requestStop() or a "shutdown" request.
     * Runs the accept loop on the calling thread; sessions run on
     * their own threads and are joined before this returns.
     */
    void serve();

    /**
     * Stop serve() at its next poll tick (<= ~200ms).  Async-signal-
     * safe: safe to call from a SIGINT or SIGTERM handler.
     */
    void requestStop() { _stop.store(true); }

    /** Server-lifetime counters (also the "stats" reply). */
    StatsReply stats() const;

  private:
    struct Session
    {
        OwnedFd fd;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void handleConnection(int fd);
    void handleSweep(int fd, const JsonValue &message);
    void handleWorker(int fd, const JsonValue &hello_message);
    void workerLoop(int fd, std::uint64_t worker);
    /** Apply --store-max-bytes/--store-ttl to the disk stores. */
    void evictStores();
    /** Join (and drop) finished session threads. */
    void reapSessions(bool all);

    ServerOptions _options;
    OwnedFd _listen;
    std::uint16_t _port = 0;
    SweepEngine _engine;
    ResultCache _cache;
    CheckpointStore _checkpoints;
    Dispatcher _dispatcher;
    std::vector<std::string> _storeDirs; ///< on-disk store roots
    std::mutex _batchMutex; ///< one client batch at a time
    std::mutex _sessionsMutex;
    std::list<std::unique_ptr<Session>> _sessions;
    std::atomic<bool> _stop{false};
    std::atomic<std::uint64_t> _requests{0}; ///< sweep batches handled
    std::atomic<std::uint64_t> _cells{0}; ///< cells answered in total
    std::atomic<std::uint64_t> _shedded{0}; ///< connections refused
    std::atomic<std::uint64_t> _storeEvictedFiles{0};
    std::atomic<std::uint64_t> _storeEvictedBytes{0};
};

} // namespace tlbpf

#endif // TLBPF_SERVICE_SERVER_HH
