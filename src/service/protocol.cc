#include "service/protocol.hh"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace tlbpf
{

OwnedFd &
OwnedFd::operator=(OwnedFd &&other) noexcept
{
    if (this != &other) {
        close();
        _fd = other.release();
    }
    return *this;
}

int
OwnedFd::release()
{
    int fd = _fd;
    _fd = -1;
    return fd;
}

void
OwnedFd::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

namespace
{

/**
 * send() with SIGPIPE suppressed, falling back to write() for
 * non-socket fds (the framing tests drive the codec over pipes).
 */
ssize_t
writeSome(int fd, const char *data, std::size_t count)
{
    ssize_t n = ::send(fd, data, count, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK)
        n = ::write(fd, data, count);
    return n;
}

void
writeAll(int fd, const char *data, std::size_t count)
{
    while (count > 0) {
        ssize_t n = writeSome(fd, data, count);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw TransportError(
                std::string("frame write failed: ") +
                std::strerror(errno));
        }
        data += n;
        count -= static_cast<std::size_t>(n);
    }
}

/**
 * Read exactly @p count bytes.  Returns false only when EOF arrives
 * before the *first* byte and @p eof_ok — the clean between-frames
 * close; EOF any later is a truncated frame.
 */
bool
readAll(int fd, char *data, std::size_t count, bool eof_ok)
{
    std::size_t got = 0;
    while (got < count) {
        ssize_t n = ::read(fd, data + got, count - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw TransportError(
                std::string("frame read failed: ") +
                std::strerror(errno));
        }
        if (n == 0) {
            if (got == 0 && eof_ok)
                return false;
            throw TransportError(
                "peer closed the connection mid-frame (got " +
                std::to_string(got) + " of " + std::to_string(count) +
                " bytes)");
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

void
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        throw std::invalid_argument(
            "frame payload of " + std::to_string(payload.size()) +
            " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
            "-byte frame bound");
    char header[4];
    std::uint32_t length = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        header[i] = static_cast<char>(length >> (8 * i));
    writeAll(fd, header, sizeof(header));
    writeAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, std::string &payload)
{
    char header[4];
    if (!readAll(fd, header, sizeof(header), true))
        return false;
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i)
        length |= static_cast<std::uint32_t>(
                      static_cast<unsigned char>(header[i]))
                  << (8 * i);
    if (length > kMaxFrameBytes)
        throw std::invalid_argument(
            "frame length prefix of " + std::to_string(length) +
            " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
            "-byte frame bound");
    payload.resize(length);
    if (length > 0)
        readAll(fd, payload.data(), length, false);
    return true;
}

bool
readMessage(int fd, JsonValue &message, std::string &type)
{
    std::string payload;
    if (!readFrame(fd, payload))
        return false;
    message = JsonValue::parse(payload);
    if (!message.isObject())
        throw std::invalid_argument(
            "protocol message must be a JSON object");
    type = message.at("type").asString();
    return true;
}

const char *
jobModeName(JobMode mode)
{
    return mode == JobMode::Timed ? "timed" : "functional";
}

JobMode
parseJobMode(const std::string &text)
{
    if (text == "functional")
        return JobMode::Functional;
    if (text == "timed")
        return JobMode::Timed;
    throw std::invalid_argument("unknown job mode '" + text +
                                "' (expected functional or timed)");
}

void
requireKnownKeys(const JsonValue &object, const char *what,
                 const std::vector<std::string> &allowed)
{
    for (const std::string &key : object.keys()) {
        bool known = false;
        for (const std::string &ok : allowed)
            if (key == ok) {
                known = true;
                break;
            }
        if (!known)
            throw std::invalid_argument(
                std::string(what) + ": unknown member '" + key + "'");
    }
}

std::string
encodeConfig(const SimConfig &config)
{
    JsonObjectWriter out;
    out.u64("tlb_entries", config.tlb.entries);
    out.u64("tlb_assoc", config.tlb.assoc);
    out.u64("pb_entries", config.pbEntries);
    out.u64("page_bytes", config.pageBytes);
    out.boolean("train_on_all_refs", config.trainOnAllRefs);
    out.u64("context_switch_interval", config.contextSwitchInterval);
    return out.take();
}

SimConfig
decodeConfig(const JsonValue &object)
{
    requireKnownKeys(object, "config",
                     {"tlb_entries", "tlb_assoc", "pb_entries",
                      "page_bytes", "train_on_all_refs",
                      "context_switch_interval"});
    SimConfig config;
    if (const JsonValue *v = object.find("tlb_entries"))
        config.tlb.entries = static_cast<std::uint32_t>(v->asU64());
    if (const JsonValue *v = object.find("tlb_assoc"))
        config.tlb.assoc = static_cast<std::uint32_t>(v->asU64());
    if (const JsonValue *v = object.find("pb_entries"))
        config.pbEntries = static_cast<std::uint32_t>(v->asU64());
    if (const JsonValue *v = object.find("page_bytes"))
        config.pageBytes = v->asU64();
    if (const JsonValue *v = object.find("train_on_all_refs"))
        config.trainOnAllRefs = v->asBool();
    if (const JsonValue *v = object.find("context_switch_interval"))
        config.contextSwitchInterval = v->asU64();
    return config;
}

std::string
encodeCounters(const SimResult &counters)
{
    JsonObjectWriter out;
    out.u64("refs", counters.refs);
    out.u64("misses", counters.misses);
    out.u64("pb_hits", counters.pbHits);
    out.u64("demand_fetches", counters.demandFetches);
    out.u64("prefetches_issued", counters.prefetchesIssued);
    out.u64("prefetches_suppressed", counters.prefetchesSuppressed);
    out.u64("state_ops", counters.stateOps);
    out.u64("pb_evicted_unused", counters.pbEvictedUnused);
    out.u64("footprint_pages", counters.footprintPages);
    out.u64("context_switches", counters.contextSwitches);
    return out.take();
}

SimResult
decodeCounters(const JsonValue &object)
{
    requireKnownKeys(object, "counters",
                     {"refs", "misses", "pb_hits", "demand_fetches",
                      "prefetches_issued", "prefetches_suppressed",
                      "state_ops", "pb_evicted_unused",
                      "footprint_pages", "context_switches"});
    SimResult counters;
    counters.refs = object.at("refs").asU64();
    counters.misses = object.at("misses").asU64();
    counters.pbHits = object.at("pb_hits").asU64();
    counters.demandFetches = object.at("demand_fetches").asU64();
    counters.prefetchesIssued =
        object.at("prefetches_issued").asU64();
    counters.prefetchesSuppressed =
        object.at("prefetches_suppressed").asU64();
    counters.stateOps = object.at("state_ops").asU64();
    counters.pbEvictedUnused =
        object.at("pb_evicted_unused").asU64();
    counters.footprintPages = object.at("footprint_pages").asU64();
    counters.contextSwitches =
        object.at("context_switches").asU64();
    return counters;
}

std::string
encodeTiming(const TimingResult &timed)
{
    JsonObjectWriter out;
    out.u64("cycles", timed.cycles);
    out.u64("stall_cycles", timed.stallCycles);
    out.u64("compute_cycles", timed.computeCycles);
    out.u64("memory_ops", timed.memoryOps);
    out.u64("prefetches_skipped_busy", timed.prefetchesSkippedBusy);
    out.u64("in_flight_hits", timed.inFlightHits);
    return out.take();
}

TimingResult
decodeTiming(const JsonValue &object)
{
    requireKnownKeys(object, "timing",
                     {"cycles", "stall_cycles", "compute_cycles",
                      "memory_ops", "prefetches_skipped_busy",
                      "in_flight_hits"});
    TimingResult timed;
    timed.cycles = object.at("cycles").asU64();
    timed.stallCycles = object.at("stall_cycles").asU64();
    timed.computeCycles = object.at("compute_cycles").asU64();
    timed.memoryOps = object.at("memory_ops").asU64();
    timed.prefetchesSkippedBusy =
        object.at("prefetches_skipped_busy").asU64();
    timed.inFlightHits = object.at("in_flight_hits").asU64();
    return timed;
}

namespace
{

std::vector<std::string>
decodeStringArray(const JsonValue &value, const char *what)
{
    std::vector<std::string> out;
    for (const JsonValue &item : value.asArray()) {
        if (!item.isString())
            throw std::invalid_argument(
                std::string(what) +
                " must be an array of spec strings");
        out.push_back(item.asString());
    }
    return out;
}

} // namespace

std::string
SweepRequest::encode() const
{
    JsonObjectWriter out;
    out.str("type", "sweep");
    out.raw("workloads", jsonStringArray(workloads));
    out.raw("mechanisms", jsonStringArray(mechanisms));
    out.u64("refs", refs);
    out.str("mode", jobModeName(mode));
    out.u64("shards", shards);
    out.str("shard_warmup", shardWarmupName(shardWarmup));
    out.str("pass_mode", passModeName(passMode));
    out.raw("config", encodeConfig(config));
    return out.take();
}

SweepRequest
SweepRequest::decode(const JsonValue &message)
{
    requireKnownKeys(message, "sweep request",
                     {"type", "workloads", "mechanisms", "refs",
                      "mode", "shards", "shard_warmup", "pass_mode",
                      "config"});
    SweepRequest request;
    request.workloads =
        decodeStringArray(message.at("workloads"), "workloads");
    request.mechanisms =
        decodeStringArray(message.at("mechanisms"), "mechanisms");
    request.refs = message.at("refs").asU64();
    if (const JsonValue *v = message.find("mode"))
        request.mode = parseJobMode(v->asString());
    if (const JsonValue *v = message.find("shards")) {
        std::uint64_t shards = v->asU64();
        if (shards < 1 || shards > 4096)
            throw std::invalid_argument(
                "sweep request: shards must be in [1, 4096], got " +
                std::to_string(shards));
        request.shards = static_cast<std::uint32_t>(shards);
    }
    if (const JsonValue *v = message.find("shard_warmup"))
        request.shardWarmup = parseShardWarmup(v->asString());
    if (const JsonValue *v = message.find("pass_mode"))
        request.passMode = parsePassMode(v->asString());
    if (const JsonValue *v = message.find("config"))
        request.config = decodeConfig(*v);
    if (request.workloads.empty())
        throw std::invalid_argument(
            "sweep request names no workloads");
    if (request.mechanisms.empty())
        throw std::invalid_argument(
            "sweep request names no mechanisms");
    if (request.refs == 0)
        throw std::invalid_argument(
            "sweep request needs a positive reference budget");
    return request;
}

std::vector<SweepJob>
SweepRequest::expand() const
{
    std::vector<WorkloadSpec> parsed_workloads;
    parsed_workloads.reserve(workloads.size());
    for (const std::string &text : workloads)
        parsed_workloads.push_back(WorkloadSpec::parse(text));
    std::vector<MechanismSpec> parsed_mechs;
    parsed_mechs.reserve(mechanisms.size());
    for (const std::string &text : mechanisms)
        parsed_mechs.push_back(MechanismSpec::parse(text));
    if (refs == 0)
        throw std::invalid_argument(
            "sweep request needs a positive reference budget");

    std::vector<SweepJob> jobs;
    jobs.reserve(parsed_workloads.size() * parsed_mechs.size());
    for (const WorkloadSpec &workload : parsed_workloads)
        for (const MechanismSpec &spec : parsed_mechs)
            jobs.push_back(
                mode == JobMode::Timed
                    ? SweepJob::timed(workload, spec, refs, config)
                    : SweepJob::functional(workload, spec, refs,
                                           config));
    return jobs;
}

std::string
CellReply::encode() const
{
    JsonObjectWriter out;
    out.str("type", "cell");
    out.u64("index", index);
    out.str("workload", workload);
    out.str("mechanism", mechanism);
    out.str("mode", jobModeName(mode));
    out.boolean("cached", cached);
    out.raw("counters", encodeCounters(counters));
    if (mode == JobMode::Timed)
        out.raw("timing", encodeTiming(timed));
    return out.take();
}

CellReply
CellReply::decode(const JsonValue &message)
{
    requireKnownKeys(message, "cell reply",
                     {"type", "index", "workload", "mechanism",
                      "mode", "cached", "counters", "timing"});
    CellReply reply;
    reply.index = message.at("index").asU64();
    reply.workload = message.at("workload").asString();
    reply.mechanism = message.at("mechanism").asString();
    reply.mode = parseJobMode(message.at("mode").asString());
    reply.cached = message.at("cached").asBool();
    reply.counters = decodeCounters(message.at("counters"));
    if (reply.mode == JobMode::Timed) {
        reply.timed = decodeTiming(message.at("timing"));
        reply.timed.functional = reply.counters;
    } else if (message.find("timing")) {
        throw std::invalid_argument(
            "cell reply: functional cells carry no timing member");
    }
    return reply;
}

SweepResult
CellReply::toResult() const
{
    SweepResult result;
    result.mode = mode;
    result.workload = workload;
    result.mechanism = mechanism;
    result.functional = counters;
    result.timed = timed;
    return result;
}

std::string
DoneReply::encode() const
{
    JsonObjectWriter out;
    out.str("type", "done");
    out.u64("cells", cells);
    out.u64("cache_hits", cacheHits);
    out.u64("simulated", simulated);
    return out.take();
}

DoneReply
DoneReply::decode(const JsonValue &message)
{
    requireKnownKeys(message, "done reply",
                     {"type", "cells", "cache_hits", "simulated"});
    DoneReply reply;
    reply.cells = message.at("cells").asU64();
    reply.cacheHits = message.at("cache_hits").asU64();
    reply.simulated = message.at("simulated").asU64();
    return reply;
}

std::string
StatsReply::encode() const
{
    JsonObjectWriter out;
    out.str("type", "stats");
    out.u64("requests", requests);
    out.u64("cells", cells);
    out.u64("cache_hits", cacheHits);
    out.u64("cache_misses", cacheMisses);
    out.u64("cache_evictions", cacheEvictions);
    out.u64("cache_entries", cacheEntries);
    out.u64("cache_capacity", cacheCapacity);
    out.u64("checkpoints_stored", checkpointsStored);
    out.u64("checkpoints_loaded", checkpointsLoaded);
    out.u64("workers", workers);
    out.u64("leases_granted", leasesGranted);
    out.u64("lease_reclaims", leaseReclaims);
    out.u64("cells_dispatched", cellsDispatched);
    out.u64("store_evicted_files", storeEvictedFiles);
    out.u64("store_evicted_bytes", storeEvictedBytes);
    return out.take();
}

StatsReply
StatsReply::decode(const JsonValue &message)
{
    requireKnownKeys(message, "stats reply",
                     {"type", "requests", "cells", "cache_hits",
                      "cache_misses", "cache_evictions",
                      "cache_entries", "cache_capacity",
                      "checkpoints_stored", "checkpoints_loaded",
                      "workers", "leases_granted", "lease_reclaims",
                      "cells_dispatched", "store_evicted_files",
                      "store_evicted_bytes"});
    StatsReply reply;
    reply.requests = message.at("requests").asU64();
    reply.cells = message.at("cells").asU64();
    reply.cacheHits = message.at("cache_hits").asU64();
    reply.cacheMisses = message.at("cache_misses").asU64();
    reply.cacheEvictions = message.at("cache_evictions").asU64();
    reply.cacheEntries = message.at("cache_entries").asU64();
    reply.cacheCapacity = message.at("cache_capacity").asU64();
    reply.checkpointsStored =
        message.at("checkpoints_stored").asU64();
    reply.checkpointsLoaded =
        message.at("checkpoints_loaded").asU64();
    reply.workers = message.at("workers").asU64();
    reply.leasesGranted = message.at("leases_granted").asU64();
    reply.leaseReclaims = message.at("lease_reclaims").asU64();
    reply.cellsDispatched = message.at("cells_dispatched").asU64();
    reply.storeEvictedFiles =
        message.at("store_evicted_files").asU64();
    reply.storeEvictedBytes =
        message.at("store_evicted_bytes").asU64();
    return reply;
}

std::string
encodeError(const std::string &message)
{
    JsonObjectWriter out;
    out.str("type", "error");
    out.str("message", message);
    return out.take();
}

std::string
encodeBatch(std::uint64_t cells)
{
    JsonObjectWriter out;
    out.str("type", "batch");
    out.u64("cells", cells);
    return out.take();
}

} // namespace tlbpf
