/**
 * @file
 * Bounded LRU cache of finished sweep cells, keyed by the canonical
 * cell identity (cellKey(): workload label + canonical mechanism +
 * geometry signature + reference budget), optionally persisted to a
 * directory so a restarted server answers repeat sweeps without
 * re-simulating anything.
 *
 * Keying through the canonical forms means every alias spelling of
 * the same experiment — "ASQ" vs "sp(adaptive)", a figure-legend
 * mechanism vs its grammar form — lands on the same entry.
 *
 * The in-memory side is a strict LRU over `capacity` entries; the
 * on-disk side (when a directory is configured) is unbounded and
 * written through on every insert, one content-addressed file per
 * entry with the key verified on read — a hash collision or a corrupt
 * file degrades to a miss, never a wrong result.  All operations are
 * thread-safe; persistence failures are swallowed (the cache is an
 * accelerator, not a source of truth).
 */

#ifndef TLBPF_SERVICE_RESULT_CACHE_HH
#define TLBPF_SERVICE_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "run/job.hh"

namespace tlbpf
{

class ResultCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;      ///< lookups served (memory or disk)
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0; ///< LRU entries dropped from memory
        std::uint64_t entries = 0;   ///< resident in memory now
        std::uint64_t capacity = 0;  ///< memory bound
    };

    /**
     * @param capacity  max resident entries (>= 1).
     * @param directory optional persistence directory; created if
     *                  absent (std::invalid_argument on failure);
     *                  empty disables persistence.
     */
    explicit ResultCache(std::size_t capacity,
                         const std::string &directory = "");

    /**
     * Fetch the result cached under @p key into @p out; refreshes the
     * entry's recency.  A memory miss consults the persistence
     * directory and promotes a disk hit into memory.
     */
    bool lookup(const std::string &key, SweepResult &out);

    /** Insert (or refresh) @p result under @p key; writes through. */
    void insert(const std::string &key, const SweepResult &result);

    Stats stats() const;

  private:
    std::string entryPath(const std::string &key) const;
    bool loadFromDisk(const std::string &key, SweepResult &out);
    void storeToMemory(const std::string &key,
                       const SweepResult &result);

    using Entry = std::pair<std::string, SweepResult>;

    mutable std::mutex _mutex;
    std::size_t _capacity;
    std::string _directory;
    std::list<Entry> _lru; ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> _index;
    Stats _stats;
};

/** Serialize one cache entry (also the on-disk file format). */
std::string encodeCacheEntry(const std::string &key,
                             const SweepResult &result);

/**
 * Strict inverse of encodeCacheEntry(); throws std::invalid_argument
 * on malformed input or when the embedded key differs from
 * @p expected_key (content-address collision).
 */
SweepResult decodeCacheEntry(const std::string &text,
                             const std::string &expected_key);

} // namespace tlbpf

#endif // TLBPF_SERVICE_RESULT_CACHE_HH
