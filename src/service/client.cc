#include "service/client.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <stdexcept>
#include <sys/socket.h>

namespace tlbpf
{

namespace
{

[[noreturn]] void
serverError(const JsonValue &message)
{
    const JsonValue *reason = message.find("message");
    throw std::runtime_error(
        "server error: " +
        (reason ? reason->asString() : std::string("(no message)")));
}

} // namespace

ServiceClient::ServiceClient(const std::string &host,
                             std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw std::invalid_argument(
            "'" + host + "' is not a dotted-quad IPv4 address");
    int raw = ::socket(AF_INET, SOCK_STREAM, 0);
    if (raw < 0)
        throw TransportError(std::string("cannot create socket: ") +
                             std::strerror(errno));
    OwnedFd sock(raw);
    if (::connect(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        throw TransportError("cannot connect to " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
    _fd = std::move(sock);
}

JsonValue
ServiceClient::request(const std::string &payload,
                       const std::string &expect_type)
{
    writeFrame(_fd.fd(), payload);
    JsonValue message;
    std::string type;
    if (!readMessage(_fd.fd(), message, type))
        throw TransportError(
            "server closed the connection before replying");
    if (type == "error")
        serverError(message);
    if (type != expect_type)
        throw std::invalid_argument("expected a '" + expect_type +
                                    "' reply, got '" + type + "'");
    return message;
}

ServiceClient::SweepOutcome
ServiceClient::sweep(const SweepRequest &request_body,
                     const CellCallback &on_cell)
{
    JsonValue batch = request(request_body.encode(), "batch");
    std::uint64_t cells = batch.at("cells").asU64();

    SweepOutcome outcome;
    outcome.results.reserve(cells);
    JsonValue message;
    std::string type;
    while (true) {
        if (!readMessage(_fd.fd(), message, type))
            throw TransportError("server closed the connection "
                                 "mid-stream (got " +
                                 std::to_string(
                                     outcome.results.size()) +
                                 " of " + std::to_string(cells) +
                                 " cells)");
        if (type == "error")
            serverError(message);
        if (type == "done")
            break;
        if (type != "cell")
            throw std::invalid_argument(
                "expected a 'cell' or 'done' frame, got '" + type +
                "'");
        CellReply reply = CellReply::decode(message);
        if (reply.index != outcome.results.size())
            throw std::invalid_argument(
                "cell stream out of order: expected index " +
                std::to_string(outcome.results.size()) + ", got " +
                std::to_string(reply.index));
        if (reply.index >= cells)
            throw std::invalid_argument(
                "cell stream overruns the announced batch of " +
                std::to_string(cells) + " cells");
        if (reply.cached)
            ++outcome.cachedCells;
        if (on_cell)
            on_cell(reply);
        outcome.results.push_back(reply.toResult());
    }
    outcome.done = DoneReply::decode(message);
    if (outcome.done.cells != cells ||
        outcome.results.size() != cells)
        throw std::invalid_argument(
            "done frame disagrees with the cell stream (" +
            std::to_string(outcome.results.size()) + " cells seen, " +
            std::to_string(outcome.done.cells) + " announced)");
    return outcome;
}

StatsReply
ServiceClient::stats()
{
    return StatsReply::decode(
        request("{\"type\":\"stats\"}", "stats"));
}

void
ServiceClient::ping()
{
    request("{\"type\":\"ping\"}", "pong");
}

void
ServiceClient::shutdown()
{
    request("{\"type\":\"shutdown\"}", "bye");
}

} // namespace tlbpf
