#include "service/checkpoint_store.hh"

#include <stdexcept>

#include "service/store_util.hh"
#include "util/snapshot.hh"

namespace tlbpf
{

namespace
{

constexpr std::uint32_t kCheckpointFileVersion = 1;

std::vector<std::uint8_t>
encodeCheckpointFile(const std::string &key, const SimState &state)
{
    SnapshotWriter writer;
    writer.reserve(16 + key.size() + state.bytes.size());
    writer.u32(kCheckpointFileVersion);
    writer.str(key);
    writer.u64(state.bytes.size());
    std::vector<std::uint8_t> bytes = writer.take();
    bytes.insert(bytes.end(), state.bytes.begin(), state.bytes.end());
    return bytes;
}

/** Throws std::invalid_argument on any mismatch or truncation. */
SimState
decodeCheckpointFile(const std::vector<std::uint8_t> &bytes,
                     const std::string &expected_key)
{
    SnapshotReader reader(bytes);
    if (reader.u32() != kCheckpointFileVersion)
        SnapshotReader::fail("checkpoint file has unknown version");
    if (reader.str() != expected_key)
        SnapshotReader::fail(
            "checkpoint file key does not match its content address");
    std::uint64_t size = reader.u64();
    if (size != reader.remaining())
        SnapshotReader::fail(
            "checkpoint file payload length mismatch");
    SimState state;
    state.bytes.assign(bytes.end() - static_cast<std::ptrdiff_t>(size),
                       bytes.end());
    return state;
}

} // namespace

CheckpointStore::CheckpointStore(const std::string &directory,
                                 std::size_t capacity)
    : _directory(directory), _capacity(capacity ? capacity : 1)
{
    if (!_directory.empty())
        ensureDirectory(_directory);
}

std::string
CheckpointStore::entryPath(const std::string &key) const
{
    return _directory + "/" + contentAddress(key) + ".ckpt";
}

void
CheckpointStore::storeToMemory(const std::string &key,
                               const SimState &state)
{
    auto it = _index.find(key);
    if (it != _index.end()) {
        it->second->second = state;
        _lru.splice(_lru.begin(), _lru, it->second);
        return;
    }
    _lru.emplace_front(key, state);
    _index.emplace(key, _lru.begin());
    while (_lru.size() > _capacity) {
        _index.erase(_lru.back().first);
        _lru.pop_back();
    }
}

bool
CheckpointStore::load(const std::string &key, SimState &out)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _index.find(key);
    if (it != _index.end()) {
        _lru.splice(_lru.begin(), _lru, it->second);
        out = it->second->second;
        ++_loaded;
        return true;
    }
    if (_directory.empty())
        return false;
    std::vector<std::uint8_t> bytes;
    if (!readFileBytes(entryPath(key), bytes))
        return false;
    try {
        SimState state = decodeCheckpointFile(bytes, key);
        storeToMemory(key, state);
        out = std::move(state);
        ++_loaded;
        // A disk hit refreshes the entry's mtime, which is the
        // recency order the --store-max-bytes eviction sweep uses.
        touchFile(entryPath(key));
        return true;
    } catch (const std::invalid_argument &) {
        return false; // corrupt or colliding file: a miss
    }
}

void
CheckpointStore::store(const std::string &key, const SimState &state)
{
    if (state.empty())
        return;
    std::lock_guard<std::mutex> lock(_mutex);
    storeToMemory(key, state);
    ++_stored;
    if (!_directory.empty()) {
        std::vector<std::uint8_t> bytes =
            encodeCheckpointFile(key, state);
        writeFileBytesAtomic(entryPath(key), bytes.data(),
                             bytes.size());
    }
}

std::uint64_t
CheckpointStore::loaded() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _loaded;
}

std::uint64_t
CheckpointStore::stored() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _stored;
}

} // namespace tlbpf
