#include "prefetch/distance.hh"

namespace tlbpf
{

DistancePrefetcher::DistancePrefetcher(const TableConfig &table,
                                       std::uint32_t slots)
    : _predictor(DistancePredictorConfig{table, slots})
{
}

void
DistancePrefetcher::onMiss(const TlbMiss &miss,
                           PrefetchDecision &decision)
{
    _scratch.clear();
    _predictor.observe(miss.vpn, _scratch);
    for (std::uint64_t target : _scratch)
        decision.targets.push_back(target);
}

void
DistancePrefetcher::reset()
{
    _predictor.reset();
}

void
DistancePrefetcher::snapshotState(SnapshotWriter &out) const
{
    _predictor.snapshotState(out);
}

void
DistancePrefetcher::restoreState(SnapshotReader &in)
{
    _predictor.restoreState(in);
}

std::string
DistancePrefetcher::label() const
{
    const auto &table = _predictor.config().table;
    return "DP," + std::to_string(table.rows) + "," +
           assocLabel(table.assoc);
}

HardwareProfile
DistancePrefetcher::hardwareProfile() const
{
    return HardwareProfile{
        "r",
        "Distance Tag, " +
            std::to_string(_predictor.config().slots) +
            " Prediction Distances",
        "On-Chip",
        "Distance",
        0,
        std::to_string(_predictor.config().slots),
    };
}

} // namespace tlbpf
