/**
 * @file
 * Tagged Sequential Prefetching (SP), paper Section 2.1.
 *
 * On every demand fetch and on every first hit to a prefetched entry, a
 * prefetch is initiated for the next sequential page (stride = +1).
 * Because entries are removed from the prefetch buffer when they hit,
 * every buffer hit is a first hit, so SP simply prefetches vpn+1 on
 * every TLB miss.
 *
 * The paper folds SP into ASP in the results (ASP subsumes it); SP is
 * kept here for completeness and for the ablation benches.
 */

#ifndef TLBPF_PREFETCH_SEQUENTIAL_HH
#define TLBPF_PREFETCH_SEQUENTIAL_HH

#include "prefetch/prefetcher.hh"

namespace tlbpf
{

/** Tagged sequential prefetcher. */
class SequentialPrefetcher : public Prefetcher
{
  public:
    /** @param degree how many sequential pages to prefetch (default 1). */
    explicit SequentialPrefetcher(unsigned degree = 1);

    void onMiss(const TlbMiss &miss, PrefetchDecision &decision) override;
    void reset() override {}

    std::string name() const override { return "SP"; }
    std::string label() const override;
    HardwareProfile hardwareProfile() const override;

    /** SP is stateless; a checkpoint carries no bytes. */
    bool checkpointable() const override { return true; }
    void snapshotState(SnapshotWriter &out) const override;
    void restoreState(SnapshotReader &in) override;

  private:
    unsigned _degree;
};

/**
 * Adaptive sequential prefetching after Dahlgren, Dubois & Stenstrom
 * (paper Section 2.1): the prefetch degree is raised while prefetches
 * are succeeding and lowered when they are not.  Success is observed
 * through the miss stream itself — a miss that hits the prefetch
 * buffer was a successful prefetch.
 */
class AdaptiveSequentialPrefetcher : public Prefetcher
{
  public:
    /**
     * @param window  misses per adaptation epoch
     * @param max_degree largest degree the controller may reach
     */
    explicit AdaptiveSequentialPrefetcher(unsigned window = 64,
                                          unsigned max_degree = 8);

    void onMiss(const TlbMiss &miss, PrefetchDecision &decision) override;
    void reset() override;

    std::string name() const override { return "ASQ"; }
    std::string label() const override;
    HardwareProfile hardwareProfile() const override;

    bool checkpointable() const override { return true; }
    void snapshotState(SnapshotWriter &out) const override;
    void restoreState(SnapshotReader &in) override;

    unsigned degree() const { return _degree; }

  private:
    unsigned _window;
    unsigned _maxDegree;
    unsigned _degree = 1;
    unsigned _epochMisses = 0;
    unsigned _epochHits = 0;
};

} // namespace tlbpf

#endif // TLBPF_PREFETCH_SEQUENTIAL_HH
