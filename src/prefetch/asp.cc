#include "prefetch/asp.hh"

namespace tlbpf
{

AspPrefetcher::AspPrefetcher(const TableConfig &table)
    : _table(table)
{
}

void
AspPrefetcher::onMiss(const TlbMiss &miss, PrefetchDecision &decision)
{
    // ASP indexes the RPT by the PC of the missing reference.  Word
    // alignment is stripped so consecutive instructions map to
    // consecutive rows.
    std::uint64_t key = miss.pc >> 2;

    RptRow *row = _table.find(key);
    if (!row) {
        RptRow &fresh = _table.findOrInsert(key);
        fresh.prevPage = miss.vpn;
        fresh.stride = 0;
        fresh.state = RptState::Initial;
        return;
    }

    std::int64_t new_stride = static_cast<std::int64_t>(miss.vpn) -
                              static_cast<std::int64_t>(row->prevPage);
    bool correct = (new_stride == row->stride);

    // Chen & Baer state transitions.
    switch (row->state) {
      case RptState::Initial:
        if (correct) {
            row->state = RptState::Steady;
        } else {
            row->stride = new_stride;
            row->state = RptState::Transient;
        }
        break;
      case RptState::Transient:
        if (correct) {
            row->state = RptState::Steady;
        } else {
            row->stride = new_stride;
            row->state = RptState::NoPred;
        }
        break;
      case RptState::Steady:
        if (!correct)
            row->state = RptState::Initial;
        break;
      case RptState::NoPred:
        if (correct) {
            row->state = RptState::Transient;
        } else {
            row->stride = new_stride;
        }
        break;
    }

    row->prevPage = miss.vpn;

    if (row->state == RptState::Steady && row->stride != 0) {
        std::int64_t target = static_cast<std::int64_t>(miss.vpn) +
                              row->stride;
        if (target >= 0)
            decision.targets.push_back(static_cast<Vpn>(target));
    }
}

void
AspPrefetcher::reset()
{
    _table.reset();
}

void
AspPrefetcher::snapshotState(SnapshotWriter &out) const
{
    _table.snapshotState(out, [](SnapshotWriter &w, const RptRow &row) {
        w.u64(row.prevPage);
        w.i64(row.stride);
        w.u8(static_cast<std::uint8_t>(row.state));
    });
}

void
AspPrefetcher::restoreState(SnapshotReader &in)
{
    _table.restoreState(in, [](SnapshotReader &r, RptRow &row) {
        row.prevPage = r.u64();
        row.stride = r.i64();
        std::uint8_t state = r.u8();
        if (state > static_cast<std::uint8_t>(RptState::NoPred))
            SnapshotReader::fail("RPT state out of range");
        row.state = static_cast<RptState>(state);
    });
}

std::string
AspPrefetcher::label() const
{
    return "ASP," + std::to_string(_table.config().rows) + "," +
           assocLabel(_table.config().assoc);
}

HardwareProfile
AspPrefetcher::hardwareProfile() const
{
    return HardwareProfile{
        "r",
        "PC Tag, Page #, Stride and State",
        "On-Chip",
        "PC",
        0,
        "1",
    };
}

AspPrefetcher::RowView
AspPrefetcher::inspect(Addr pc) const
{
    const RptRow *row = _table.peek(pc >> 2);
    if (!row)
        return RowView{0, 0, RptState::Initial, false};
    return RowView{row->prevPage, row->stride, row->state, true};
}

} // namespace tlbpf
