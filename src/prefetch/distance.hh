/**
 * @file
 * Distance Prefetching (DP) for TLBs — the paper's proposal (Section
 * 2.5), a thin adaptor over the generic core DistancePredictor.
 */

#ifndef TLBPF_PREFETCH_DISTANCE_HH
#define TLBPF_PREFETCH_DISTANCE_HH

#include "core/distance_predictor.hh"
#include "prefetch/prefetcher.hh"

namespace tlbpf
{

/** Distance prefetcher: predicts TLB misses from miss-distance history. */
class DistancePrefetcher : public Prefetcher
{
  public:
    /**
     * @param table table geometry (the paper's r and associativity)
     * @param slots predicted distances per row (the paper's s)
     */
    explicit DistancePrefetcher(const TableConfig &table,
                                std::uint32_t slots = 2);

    void onMiss(const TlbMiss &miss, PrefetchDecision &decision) override;
    void reset() override;

    std::string name() const override { return "DP"; }
    std::string label() const override;
    HardwareProfile hardwareProfile() const override;

    bool checkpointable() const override { return true; }
    void snapshotState(SnapshotWriter &out) const override;
    void restoreState(SnapshotReader &in) override;

    const DistancePredictor &predictor() const { return _predictor; }

  private:
    DistancePredictor _predictor;
    std::vector<std::uint64_t> _scratch;
};

} // namespace tlbpf

#endif // TLBPF_PREFETCH_DISTANCE_HH
