/**
 * @file
 * Construction of prefetchers from a declarative spec, used by the
 * sweep drivers and bench binaries.
 */

#ifndef TLBPF_PREFETCH_FACTORY_HH
#define TLBPF_PREFETCH_FACTORY_HH

#include <memory>
#include <string>

#include "core/prediction_table.hh"
#include "prefetch/prefetcher.hh"

namespace tlbpf
{

/** Mechanism selector. */
enum class Scheme
{
    None, ///< no prefetching (baseline)
    SP,
    ASP,
    MP,
    RP,
    DP
};

std::string schemeName(Scheme scheme);
Scheme parseScheme(const std::string &name);

/** Declarative prefetcher configuration. */
struct PrefetcherSpec
{
    Scheme scheme = Scheme::None;
    TableConfig table{256, TableAssoc::Direct}; ///< ASP/MP/DP
    std::uint32_t slots = 2;                    ///< MP/DP s value
    unsigned degree = 1;                        ///< SP only
    bool adaptive = false; ///< SP: Dahlgren-style adaptive degree
    unsigned rpReach = 1;  ///< RP: stack neighbours per side

    /** Figure-legend style label, e.g. "DP,256,D". */
    std::string label() const;
};

/**
 * Build a prefetcher.  @p pt is required for RP (its state lives in
 * the page table) and ignored by the on-chip schemes.  Returns nullptr
 * for Scheme::None.
 */
std::unique_ptr<Prefetcher> makePrefetcher(const PrefetcherSpec &spec,
                                           PageTable &pt);

} // namespace tlbpf

#endif // TLBPF_PREFETCH_FACTORY_HH
