#include "prefetch/prefetcher.hh"

// The interface is header-only today; this translation unit anchors the
// vtable so the library has a home for Prefetcher's key function.

namespace tlbpf
{
} // namespace tlbpf
