#include "prefetch/prefetcher.hh"

#include <stdexcept>

namespace tlbpf
{

void
Prefetcher::snapshotState(SnapshotWriter &) const
{
    throw std::invalid_argument(
        "mechanism '" + label() +
        "' does not support checkpointing (override snapshotState/"
        "restoreState/checkpointable, or use replay warm-up)");
}

void
Prefetcher::restoreState(SnapshotReader &)
{
    throw std::invalid_argument(
        "mechanism '" + label() +
        "' does not support checkpointing (override snapshotState/"
        "restoreState/checkpointable, or use replay warm-up)");
}

} // namespace tlbpf
