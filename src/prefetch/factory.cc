#include "prefetch/factory.hh"

#include "prefetch/asp.hh"
#include "prefetch/distance.hh"
#include "prefetch/markov.hh"
#include "prefetch/recency.hh"
#include "prefetch/sequential.hh"
#include "util/logging.hh"

namespace tlbpf
{

std::string
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::None:
        return "none";
      case Scheme::SP:
        return "SP";
      case Scheme::ASP:
        return "ASP";
      case Scheme::MP:
        return "MP";
      case Scheme::RP:
        return "RP";
      case Scheme::DP:
        return "DP";
    }
    tlbpf_panic("unreachable scheme value");
}

Scheme
parseScheme(const std::string &name)
{
    if (name == "none")
        return Scheme::None;
    if (name == "SP" || name == "sp")
        return Scheme::SP;
    if (name == "ASP" || name == "asp")
        return Scheme::ASP;
    if (name == "MP" || name == "mp")
        return Scheme::MP;
    if (name == "RP" || name == "rp")
        return Scheme::RP;
    if (name == "DP" || name == "dp")
        return Scheme::DP;
    tlbpf_fatal("unknown prefetching scheme '", name, "'");
}

std::string
PrefetcherSpec::label() const
{
    switch (scheme) {
      case Scheme::None:
        return "none";
      case Scheme::SP:
        return adaptive ? "ASQ" : "SP," + std::to_string(degree);
      case Scheme::RP:
        return rpReach == 1 ? "RP" : "RP," + std::to_string(2 * rpReach);
      case Scheme::ASP:
        return "ASP," + std::to_string(table.rows) + "," +
               assocLabel(table.assoc);
      case Scheme::MP:
      case Scheme::DP:
        return schemeName(scheme) + "," + std::to_string(table.rows) +
               "," + assocLabel(table.assoc);
    }
    tlbpf_panic("unreachable scheme value");
}

std::unique_ptr<Prefetcher>
makePrefetcher(const PrefetcherSpec &spec, PageTable &pt)
{
    switch (spec.scheme) {
      case Scheme::None:
        return nullptr;
      case Scheme::SP:
        if (spec.adaptive)
            return std::make_unique<AdaptiveSequentialPrefetcher>();
        return std::make_unique<SequentialPrefetcher>(spec.degree);
      case Scheme::ASP:
        return std::make_unique<AspPrefetcher>(spec.table);
      case Scheme::MP:
        return std::make_unique<MarkovPrefetcher>(spec.table, spec.slots);
      case Scheme::RP:
        return std::make_unique<RecencyPrefetcher>(pt, spec.rpReach);
      case Scheme::DP:
        return std::make_unique<DistancePrefetcher>(spec.table,
                                                    spec.slots);
    }
    tlbpf_panic("unreachable scheme value");
}

} // namespace tlbpf
