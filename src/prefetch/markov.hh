/**
 * @file
 * Markov Prefetching (MP), paper Section 2.3, after Joseph & Grunwald,
 * adapted to the TLB miss stream.
 *
 * The table is indexed by the missing virtual page number.  Each row
 * holds up to @c s pages that missed immediately after this page in the
 * past (LRU-ordered).  On a miss, the row for the missing page supplies
 * the prefetch candidates, and the row for the *previous* missing page
 * learns the current page as a successor.
 */

#ifndef TLBPF_PREFETCH_MARKOV_HH
#define TLBPF_PREFETCH_MARKOV_HH

#include "core/prediction_table.hh"
#include "prefetch/prefetcher.hh"

namespace tlbpf
{

/** Markov (page-successor) prefetcher. */
class MarkovPrefetcher : public Prefetcher
{
  public:
    /**
     * @param table table geometry (the paper's r and associativity)
     * @param slots successors kept per row (the paper's s, default 2)
     */
    MarkovPrefetcher(const TableConfig &table, std::uint32_t slots = 2);

    void onMiss(const TlbMiss &miss, PrefetchDecision &decision) override;
    void reset() override;

    std::string name() const override { return "MP"; }
    std::string label() const override;
    HardwareProfile hardwareProfile() const override;

    bool checkpointable() const override { return true; }
    void snapshotState(SnapshotWriter &out) const override;
    void restoreState(SnapshotReader &in) override;

    /** Successors currently recorded for @p vpn (tests). */
    std::vector<Vpn> successorsOf(Vpn vpn) const;

  private:
    using Slots = SlotLru<Vpn>;

    TableConfig _tableConfig;
    std::uint32_t _slots;
    PredictionTable<Slots> _table;

    Vpn _prevMiss = kNoPage;
};

} // namespace tlbpf

#endif // TLBPF_PREFETCH_MARKOV_HH
