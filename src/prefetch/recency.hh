/**
 * @file
 * Recency-based Prefetching (RP), paper Section 2.4, after Saulsbury,
 * Dahlgren & Stenstrom.
 *
 * RP threads an LRU stack of TLB-evicted pages through the page table
 * (two pointer words per PTE, in memory).  On a miss the missing page
 * is unlinked from the stack and its two stack neighbours are
 * prefetched; the entry just evicted from the TLB is pushed on top.
 * The pointer manipulations cost up to 4 memory operations per miss on
 * top of the 2 neighbour fetches — RP's bandwidth downside that
 * Table 3 quantifies.
 */

#ifndef TLBPF_PREFETCH_RECENCY_HH
#define TLBPF_PREFETCH_RECENCY_HH

#include "mem/page_table.hh"
#include "prefetch/prefetcher.hh"

namespace tlbpf
{

/** Recency (LRU-stack) prefetcher. */
class RecencyPrefetcher : public Prefetcher
{
  public:
    /**
     * @param pt    the page table whose PTEs carry the stack links.
     * @param reach stack neighbours prefetched per side: 1 is the
     *              paper's evaluated RP (two prefetches); 2 models the
     *              wider variant mentioned in Saulsbury et al. (each
     *              extra neighbour costs one more memory fetch).
     */
    explicit RecencyPrefetcher(PageTable &pt, unsigned reach = 1);

    void onMiss(const TlbMiss &miss, PrefetchDecision &decision) override;
    void reset() override;

    std::string name() const override { return "RP"; }
    std::string label() const override;
    HardwareProfile hardwareProfile() const override;

    /** RP skips its prefetches when earlier traffic is in flight. */
    bool dropPrefetchesWhenBusy() const override { return true; }

    /**
     * RP's stack links live in the page table, which the simulator
     * checkpoints separately; the mechanism itself carries only the
     * stack head and link count.
     */
    bool checkpointable() const override { return true; }
    void snapshotState(SnapshotWriter &out) const override;
    void restoreState(SnapshotReader &in) override;

    const RecencyStack &stack() const { return _stack; }

  private:
    PageTable &_pt;
    RecencyStack _stack;
    unsigned _reach;
};

} // namespace tlbpf

#endif // TLBPF_PREFETCH_RECENCY_HH
