#include "prefetch/hybrid.hh"

#include <algorithm>
#include <stdexcept>

#include "prefetch/mech_spec.hh"
#include "util/logging.hh"

namespace tlbpf
{

HybridPrefetcher::HybridPrefetcher(
    std::vector<std::unique_ptr<Prefetcher>> children)
    : _children(std::move(children))
{
    tlbpf_assert(_children.size() >= 2, "hybrid needs >= 2 children");
    for (const auto &child : _children)
        tlbpf_assert(child != nullptr, "hybrid child must prefetch");
}

void
HybridPrefetcher::onMiss(const TlbMiss &miss,
                         PrefetchDecision &decision)
{
    for (const auto &child : _children) {
        _scratch.clear();
        child->onMiss(miss, _scratch);
        decision.stateOps += _scratch.stateOps;
        for (Vpn target : _scratch.targets) {
            if (std::find(decision.targets.begin(),
                          decision.targets.end(),
                          target) == decision.targets.end())
                decision.targets.push_back(target);
        }
    }
}

void
HybridPrefetcher::reset()
{
    for (const auto &child : _children)
        child->reset();
}

std::string
HybridPrefetcher::label() const
{
    std::string out = "hybrid(";
    for (std::size_t i = 0; i < _children.size(); ++i) {
        if (i > 0)
            out += '+';
        out += _children[i]->label();
    }
    return out + ")";
}

HardwareProfile
HybridPrefetcher::hardwareProfile() const
{
    HardwareProfile profile;
    for (std::size_t i = 0; i < _children.size(); ++i) {
        HardwareProfile child = _children[i]->hardwareProfile();
        const char *sep = i > 0 ? " + " : "";
        profile.rows += sep + child.rows;
        profile.rowContents += sep + child.rowContents;
        if (profile.tableLocation.find(child.tableLocation) ==
            std::string::npos)
            profile.tableLocation +=
                (profile.tableLocation.empty() ? "" : " + ") +
                child.tableLocation;
        profile.indexedBy += sep + child.indexedBy;
        profile.memOpsPerMiss += child.memOpsPerMiss;
        profile.maxPrefetches += sep + child.maxPrefetches;
    }
    return profile;
}

bool
HybridPrefetcher::dropPrefetchesWhenBusy() const
{
    return std::all_of(_children.begin(), _children.end(),
                       [](const std::unique_ptr<Prefetcher> &child) {
                           return child->dropPrefetchesWhenBusy();
                       });
}

bool
HybridPrefetcher::checkpointable() const
{
    return std::all_of(_children.begin(), _children.end(),
                       [](const std::unique_ptr<Prefetcher> &child) {
                           return child->checkpointable();
                       });
}

void
HybridPrefetcher::snapshotState(SnapshotWriter &out) const
{
    out.u64(_children.size());
    for (const auto &child : _children)
        child->snapshotState(out);
}

void
HybridPrefetcher::restoreState(SnapshotReader &in)
{
    std::uint64_t count = in.u64();
    if (count != _children.size())
        SnapshotReader::fail(
            "hybrid checkpoint has " + std::to_string(count) +
            " children, expected " +
            std::to_string(_children.size()));
    for (const auto &child : _children)
        child->restoreState(in);
}

void
registerHybridMechanism(MechanismRegistry &registry)
{
    MechanismEntry hybrid;
    hybrid.name = "hybrid";
    hybrid.shortName = "HYB";
    hybrid.summary = "composite: feeds each miss to every child and "
                     "unions/deduplicates their prefetch targets";
    hybrid.composite = true;
    hybrid.minChildren = 2;
    hybrid.maxChildren = 8;
    hybrid.validate = [](const MechanismSpec &spec) {
        for (const MechanismSpec &child : spec.children)
            if (child.name == "none")
                throw std::invalid_argument(
                    "hybrid child 'none' prefetches nothing; drop it "
                    "from the child list");
    };
    hybrid.build = [](const MechanismSpec &spec, PageTable &pt) {
        std::vector<std::unique_ptr<Prefetcher>> children;
        children.reserve(spec.children.size());
        for (const MechanismSpec &child : spec.children)
            children.push_back(child.build(pt));
        return std::unique_ptr<Prefetcher>(
            std::make_unique<HybridPrefetcher>(std::move(children)));
    };
    hybrid.legend = [](const MechanismSpec &spec) {
        std::string out = "hybrid(";
        for (std::size_t i = 0; i < spec.children.size(); ++i) {
            if (i > 0)
                out += '+';
            out += spec.children[i].label();
        }
        return out + ")";
    };
    registry.add(std::move(hybrid));
}

} // namespace tlbpf
