#include "prefetch/sequential.hh"

#include "util/logging.hh"

namespace tlbpf
{

SequentialPrefetcher::SequentialPrefetcher(unsigned degree)
    : _degree(degree)
{
    tlbpf_assert(degree >= 1, "SP degree must be at least 1");
}

void
SequentialPrefetcher::onMiss(const TlbMiss &miss,
                             PrefetchDecision &decision)
{
    for (unsigned i = 1; i <= _degree; ++i)
        decision.targets.push_back(miss.vpn + i);
}

std::string
SequentialPrefetcher::label() const
{
    return "SP," + std::to_string(_degree);
}

HardwareProfile
SequentialPrefetcher::hardwareProfile() const
{
    return HardwareProfile{
        "0",
        "- (stateless)",
        "On-Chip",
        "-",
        0,
        std::to_string(_degree),
    };
}

void
SequentialPrefetcher::snapshotState(SnapshotWriter &) const
{
}

void
SequentialPrefetcher::restoreState(SnapshotReader &)
{
}

AdaptiveSequentialPrefetcher::AdaptiveSequentialPrefetcher(
    unsigned window, unsigned max_degree)
    : _window(window), _maxDegree(max_degree)
{
    tlbpf_assert(window >= 4, "adaptation window too small");
    tlbpf_assert(max_degree >= 1, "max degree must be at least 1");
}

void
AdaptiveSequentialPrefetcher::onMiss(const TlbMiss &miss,
                                     PrefetchDecision &decision)
{
    ++_epochMisses;
    _epochHits += miss.pbHit ? 1 : 0;
    if (_epochMisses >= _window) {
        double ratio = static_cast<double>(_epochHits) /
                       static_cast<double>(_epochMisses);
        // Dahlgren-style two-threshold controller.
        if (ratio > 0.6 && _degree < _maxDegree)
            ++_degree;
        else if (ratio < 0.3 && _degree > 1)
            --_degree;
        _epochMisses = 0;
        _epochHits = 0;
    }
    for (unsigned i = 1; i <= _degree; ++i)
        decision.targets.push_back(miss.vpn + i);
}

void
AdaptiveSequentialPrefetcher::reset()
{
    _degree = 1;
    _epochMisses = 0;
    _epochHits = 0;
}

void
AdaptiveSequentialPrefetcher::snapshotState(SnapshotWriter &out) const
{
    out.u32(_degree);
    out.u32(_epochMisses);
    out.u32(_epochHits);
}

void
AdaptiveSequentialPrefetcher::restoreState(SnapshotReader &in)
{
    _degree = in.u32();
    _epochMisses = in.u32();
    _epochHits = in.u32();
    if (_degree < 1 || _degree > _maxDegree)
        SnapshotReader::fail("adaptive degree out of range");
}

std::string
AdaptiveSequentialPrefetcher::label() const
{
    return "ASQ," + std::to_string(_maxDegree);
}

HardwareProfile
AdaptiveSequentialPrefetcher::hardwareProfile() const
{
    return HardwareProfile{
        "0",
        "degree + epoch counters",
        "On-Chip",
        "-",
        0,
        "1-" + std::to_string(_maxDegree),
    };
}

} // namespace tlbpf
