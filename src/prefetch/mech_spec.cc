#include "prefetch/mech_spec.hh"

#include <algorithm>
#include <cctype>
#include <optional>
#include <stdexcept>

#include "mem/page_table.hh"
#include "prefetch/asp.hh"
#include "prefetch/distance.hh"
#include "prefetch/hybrid.hh"
#include "prefetch/markov.hh"
#include "prefetch/recency.hh"
#include "prefetch/sequential.hh"
#include "util/logging.hh"

namespace tlbpf
{

namespace
{

[[noreturn]] void
malformed(const std::string &text, const std::string &why)
{
    throw std::invalid_argument("malformed mechanism spec '" + text +
                                "': " + why);
}

std::string
lowered(const std::string &text)
{
    std::string out = text;
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

std::string
trimmed(const std::string &text)
{
    std::size_t begin = text.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    std::size_t end = text.find_last_not_of(" \t");
    return text.substr(begin, end - begin + 1);
}

/** Split on @p sep at parenthesis depth 0 (tokens trimmed). */
std::vector<std::string>
splitTopLevel(const std::string &text, char sep)
{
    std::vector<std::string> tokens;
    std::string token;
    int depth = 0;
    for (char c : text) {
        if (c == '(')
            ++depth;
        else if (c == ')')
            --depth;
        if (c == sep && depth == 0) {
            tokens.push_back(trimmed(token));
            token.clear();
            continue;
        }
        token.push_back(c);
    }
    tokens.push_back(trimmed(token));
    return tokens;
}

std::uint64_t
parseUIntValue(const std::string &value, const std::string &whole,
               const std::string &context)
{
    if (value.empty())
        malformed(whole, context + " needs a number");
    std::uint64_t out = 0;
    for (char c : value) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            malformed(whole,
                      context + " '" + value + "' is not a number");
        std::uint64_t next =
            out * 10 + static_cast<std::uint64_t>(c - '0');
        if (next < out)
            malformed(whole, context + " '" + value + "' overflows");
        out = next;
    }
    return out;
}

/** The canonical string form of a parameter's default value. */
std::string
defaultValueString(const MechParam &param)
{
    switch (param.kind) {
      case MechParam::Kind::UInt:
        return std::to_string(param.dflt);
      case MechParam::Kind::Flag:
        return param.dflt ? "1" : "0";
      case MechParam::Kind::Choice:
        return param.choices.front();
    }
    return "";
}

/** Schema-order parameter list for an entry, with @p args applied. */
std::vector<std::pair<std::string, std::string>>
resolveParams(
    const MechanismEntry &entry,
    const std::vector<std::pair<std::string, std::string>> &args,
    const std::string &whole)
{
    auto schemaOf =
        [&entry](const std::string &key) -> const MechParam * {
        for (const MechParam &param : entry.params)
            if (param.key == key)
                return &param;
        return nullptr;
    };

    std::vector<std::pair<std::string, std::string>> resolved;
    for (const auto &[key, raw] : args) {
        const MechParam *schema = schemaOf(key);
        if (!schema) {
            std::string known;
            for (const MechParam &param : entry.params)
                known += (known.empty() ? "" : ", ") + param.key;
            malformed(whole, "unknown parameter '" + key +
                                 "' for mechanism '" + entry.name +
                                 "' (parameters: " +
                                 (known.empty() ? "none" : known) +
                                 ")");
        }
        for (const auto &[seen, value] : resolved) {
            (void)value;
            if (seen == key)
                malformed(whole, "parameter '" + key +
                                     "' given more than once");
        }

        std::string canonical;
        switch (schema->kind) {
          case MechParam::Kind::UInt: {
              std::uint64_t value = parseUIntValue(
                  raw, whole, "parameter '" + key + "'");
              if (value < schema->min || value > schema->max)
                  malformed(whole,
                            "parameter '" + key + "' must be in [" +
                                std::to_string(schema->min) + ", " +
                                std::to_string(schema->max) +
                                "], got " + raw);
              canonical = std::to_string(value);
              break;
          }
          case MechParam::Kind::Flag: {
              std::string v = lowered(raw);
              if (v.empty() || v == "1" || v == "true" || v == "on")
                  canonical = "1";
              else if (v == "0" || v == "false" || v == "off")
                  canonical = "0";
              else
                  malformed(whole, "flag '" + key +
                                       "' takes no value (or "
                                       "true/false), got '" +
                                       raw + "'");
              break;
          }
          case MechParam::Kind::Choice: {
              std::string v = lowered(raw);
              for (const std::string &choice : schema->choices)
                  if (v == choice)
                      canonical = choice;
              if (canonical.empty())
                  for (const auto &[alias, choice] :
                       schema->choiceAliases)
                      if (v == alias)
                          canonical = choice;
              if (canonical.empty()) {
                  std::string options;
                  for (const std::string &choice : schema->choices)
                      options +=
                          (options.empty() ? "" : "/") + choice;
                  malformed(whole, "parameter '" + key + "' must be " +
                                       options + ", got '" + raw +
                                       "'");
              }
              break;
          }
        }
        resolved.emplace_back(key, std::move(canonical));
    }

    // Fill defaults and order by schema.
    std::vector<std::pair<std::string, std::string>> ordered;
    ordered.reserve(entry.params.size());
    for (const MechParam &param : entry.params) {
        std::string value;
        for (const auto &[key, v] : resolved)
            if (key == param.key)
                value = v;
        if (value.empty())
            value = defaultValueString(param);
        ordered.emplace_back(param.key, std::move(value));
    }
    return ordered;
}

MechanismSpec parseSpec(const std::string &text,
                        const std::string &whole);

/** Resolve a head name to an entry, expanding parameterised aliases. */
const MechanismEntry &
resolveEntry(const std::string &name, const std::string &whole,
             bool args_follow, std::optional<MechanismSpec> &alias_spec)
{
    MechanismRegistry &registry = MechanismRegistry::instance();
    std::string head = trimmed(name);
    if (head.empty())
        malformed(whole, "empty mechanism name");
    if (const MechanismEntry *entry = registry.find(head))
        return *entry;
    if (const std::string *expansion =
            registry.aliasExpansion(head)) {
        if (args_follow)
            malformed(whole, "alias '" + head +
                                 "' carries preset parameters and "
                                 "takes no arguments (it expands to '" +
                                 *expansion + "')");
        alias_spec = parseSpec(*expansion, whole);
        return *registry.find(alias_spec->name);
    }
    malformed(whole, "unknown mechanism '" + head + "' (known: " +
                         registry.knownNames() +
                         "; see --list-mechanisms)");
}

MechanismSpec
parseSpec(const std::string &text, const std::string &whole)
{
    std::string body = trimmed(text);
    if (body.empty())
        malformed(whole, "empty mechanism spec");

    std::size_t open = body.find('(');
    if (open != std::string::npos) {
        // Canonical grammar: name(args).
        if (body.back() != ')')
            malformed(whole, "expected ')' to close '" +
                                 body.substr(0, open) + "('");
        std::string name = body.substr(0, open);
        std::string args =
            body.substr(open + 1, body.size() - open - 2);
        int depth = 0;
        for (char c : args) {
            depth += c == '(' ? 1 : c == ')' ? -1 : 0;
            if (depth < 0)
                malformed(whole, "unbalanced parentheses");
        }
        if (depth != 0)
            malformed(whole, "unbalanced parentheses");

        std::optional<MechanismSpec> alias_spec;
        const MechanismEntry &entry =
            resolveEntry(name, whole, true, alias_spec);

        MechanismSpec spec;
        spec.name = entry.name;
        if (entry.composite) {
            if (trimmed(args).empty())
                malformed(whole, "mechanism '" + entry.name +
                                     "' needs a '+'-separated child "
                                     "list, e.g. " +
                                     entry.name + "(dp+sp)");
            for (const std::string &child :
                 splitTopLevel(args, '+')) {
                if (child.empty())
                    malformed(whole, "mechanism '" + entry.name +
                                         "' has an empty child");
                spec.children.push_back(parseSpec(child, whole));
            }
            if (spec.children.size() < entry.minChildren ||
                spec.children.size() > entry.maxChildren)
                malformed(whole,
                          "mechanism '" + entry.name + "' takes " +
                              std::to_string(entry.minChildren) +
                              ".." +
                              std::to_string(entry.maxChildren) +
                              " children, got " +
                              std::to_string(spec.children.size()));
            spec.params = resolveParams(entry, {}, whole);
        } else {
            std::vector<std::pair<std::string, std::string>> kv;
            if (!trimmed(args).empty()) {
                for (const std::string &arg :
                     splitTopLevel(args, ',')) {
                    if (arg.empty())
                        malformed(whole, "empty parameter");
                    std::size_t eq = arg.find('=');
                    if (eq == std::string::npos)
                        kv.emplace_back(arg, ""); // bare flag
                    else
                        kv.emplace_back(trimmed(arg.substr(0, eq)),
                                        trimmed(arg.substr(eq + 1)));
                }
            }
            spec.params = resolveParams(entry, kv, whole);
        }
        if (entry.validate)
            entry.validate(spec);
        return spec;
    }

    if (body.find(',') != std::string::npos) {
        // Figure-legend grammar: NAME,field,field.
        std::vector<std::string> fields = splitTopLevel(body, ',');
        std::string head = fields.front();
        fields.erase(fields.begin());

        // args_follow = true: a parameterised alias ("ASQ") cannot
        // take legend fields on top of its preset.
        std::optional<MechanismSpec> alias_spec;
        const MechanismEntry &entry =
            resolveEntry(head, whole, true, alias_spec);

        if (!entry.parseLegend)
            malformed(whole, "mechanism '" + entry.name +
                                 "' takes no legend fields; use " +
                                 entry.name + "(key=value,...)");
        std::vector<std::pair<std::string, std::string>> kv;
        entry.parseLegend(fields, kv);
        MechanismSpec spec;
        spec.name = entry.name;
        spec.params = resolveParams(entry, kv, whole);
        if (entry.validate)
            entry.validate(spec);
        return spec;
    }

    // Bare name (entry or alias).
    std::optional<MechanismSpec> alias_spec;
    const MechanismEntry &entry =
        resolveEntry(body, whole, false, alias_spec);
    if (alias_spec)
        return *alias_spec;
    if (entry.composite)
        malformed(whole, "mechanism '" + entry.name +
                             "' needs a '+'-separated child list, "
                             "e.g. " +
                             entry.name + "(dp+sp)");
    MechanismSpec spec;
    spec.name = entry.name;
    spec.params = resolveParams(entry, {}, whole);
    if (entry.validate)
        entry.validate(spec);
    return spec;
}

const MechanismEntry &
entryOf(const MechanismSpec &spec)
{
    const MechanismEntry *entry =
        MechanismRegistry::instance().find(spec.name);
    if (!entry)
        throw std::invalid_argument(
            "mechanism spec names unknown mechanism '" + spec.name +
            "' (known: " +
            MechanismRegistry::instance().knownNames() + ")");
    return *entry;
}

} // namespace

MechParam
MechParam::makeUInt(std::string key, std::string help,
                    std::uint64_t dflt, std::uint64_t min,
                    std::uint64_t max)
{
    MechParam param;
    param.key = std::move(key);
    param.kind = Kind::UInt;
    param.help = std::move(help);
    param.dflt = dflt;
    param.min = min;
    param.max = max;
    return param;
}

MechParam
MechParam::makeFlag(std::string key, std::string help)
{
    MechParam param;
    param.key = std::move(key);
    param.kind = Kind::Flag;
    param.help = std::move(help);
    return param;
}

MechParam
MechParam::makeChoice(
    std::string key, std::string help, std::vector<std::string> choices,
    std::vector<std::pair<std::string, std::string>> aliases)
{
    tlbpf_assert(!choices.empty(), "choice parameter needs choices");
    MechParam param;
    param.key = std::move(key);
    param.kind = Kind::Choice;
    param.help = std::move(help);
    param.choices = std::move(choices);
    param.choiceAliases = std::move(aliases);
    return param;
}

MechanismSpec
MechanismSpec::parse(const std::string &text)
{
    return parseSpec(text, text);
}

MechanismSpec
MechanismSpec::none()
{
    MechanismSpec spec;
    spec.name = "none";
    return spec;
}

std::string
MechanismSpec::label() const
{
    const MechanismEntry &entry = entryOf(*this);
    return entry.legend ? entry.legend(*this) : entry.name;
}

std::string
MechanismSpec::canonical() const
{
    const MechanismEntry &entry = entryOf(*this);
    if (entry.composite) {
        std::string out = entry.name + "(";
        for (std::size_t i = 0; i < children.size(); ++i) {
            if (i > 0)
                out += '+';
            out += children[i].canonical();
        }
        return out + ")";
    }
    std::string args;
    for (const MechParam &param : entry.params) {
        std::string value;
        for (const auto &[key, v] : params)
            if (key == param.key)
                value = v;
        if (value == defaultValueString(param) || value.empty())
            continue;
        if (!args.empty())
            args += ',';
        if (param.kind == MechParam::Kind::Flag)
            args += param.key; // bare flag
        else
            args += param.key + "=" + value;
    }
    return args.empty() ? entry.name : entry.name + "(" + args + ")";
}

std::string
MechanismSpec::shortName() const
{
    return entryOf(*this).shortName;
}

std::unique_ptr<Prefetcher>
MechanismSpec::build(PageTable &pt) const
{
    validate();
    return entryOf(*this).build(*this, pt);
}

HardwareProfile
MechanismSpec::hardwareProfile() const
{
    const MechanismEntry &entry = entryOf(*this);
    if (entry.profile)
        return entry.profile(*this);
    PageTable pt;
    std::unique_ptr<Prefetcher> built = build(pt);
    if (!built)
        return HardwareProfile{"-", "-", "-", "-", 0, "0"};
    return built->hardwareProfile();
}

void
MechanismSpec::validate() const
{
    const MechanismEntry &entry = entryOf(*this);
    // Re-resolve so hand-assembled specs get the same checking as
    // parsed ones (fills nothing: params are already canonical).
    std::vector<std::pair<std::string, std::string>> resolved =
        resolveParams(entry, params, name);
    if (resolved != params)
        throw std::invalid_argument(
            "mechanism spec '" + name +
            "' has unresolved parameters; construct specs with "
            "MechanismSpec::parse()");
    if (entry.composite) {
        if (children.size() < entry.minChildren ||
            children.size() > entry.maxChildren)
            throw std::invalid_argument(
                "mechanism '" + name + "' takes " +
                std::to_string(entry.minChildren) + ".." +
                std::to_string(entry.maxChildren) + " children, got " +
                std::to_string(children.size()));
        for (const MechanismSpec &child : children)
            child.validate();
    } else if (!children.empty()) {
        throw std::invalid_argument("mechanism '" + name +
                                    "' takes no children");
    }
    if (entry.validate)
        entry.validate(*this);
}

std::uint64_t
MechanismSpec::uintParam(const std::string &key) const
{
    for (const auto &[k, v] : params)
        if (k == key)
            return parseUIntValue(v, name, "parameter '" + key + "'");
    throw std::invalid_argument("mechanism '" + name +
                                "' has no parameter '" + key + "'");
}

bool
MechanismSpec::flagParam(const std::string &key) const
{
    for (const auto &[k, v] : params)
        if (k == key)
            return v == "1";
    throw std::invalid_argument("mechanism '" + name +
                                "' has no parameter '" + key + "'");
}

const std::string &
MechanismSpec::choiceParam(const std::string &key) const
{
    for (const auto &[k, v] : params)
        if (k == key)
            return v;
    throw std::invalid_argument("mechanism '" + name +
                                "' has no parameter '" + key + "'");
}

TableConfig
MechanismSpec::tableParam() const
{
    const std::string &assoc = choiceParam("assoc");
    TableAssoc ta = TableAssoc::Direct;
    if (assoc == "2w")
        ta = TableAssoc::TwoWay;
    else if (assoc == "4w")
        ta = TableAssoc::FourWay;
    else if (assoc == "fa")
        ta = TableAssoc::Full;
    return TableConfig{
        static_cast<std::uint32_t>(uintParam("rows")), ta};
}

namespace
{

constexpr std::uint64_t kMaxTableRows = 1u << 20;

MechParam
rowsParam()
{
    return MechParam::makeUInt(
        "rows", "prediction-table rows (sets must be a power of two)",
        256, 1, kMaxTableRows);
}

MechParam
assocParam()
{
    return MechParam::makeChoice(
        "assoc", "table indexing: dm/2w/4w/fa",
        {"dm", "2w", "4w", "fa"},
        {{"d", "dm"}, {"direct", "dm"}, {"2", "2w"}, {"4", "4w"},
         {"f", "fa"}, {"full", "fa"}});
}

MechParam
slotsParam()
{
    return MechParam::makeUInt(
        "slots", "prediction slots per row (the paper's s)", 2, 1, 8);
}

/** Rows/assoc cross-checks PredictionTable would otherwise fatal on. */
void
validateTableGeometry(const MechanismSpec &spec)
{
    TableConfig table = spec.tableParam();
    if (table.rows % table.ways() != 0)
        throw std::invalid_argument(
            "mechanism '" + spec.name + "': rows (" +
            std::to_string(table.rows) +
            ") must be a multiple of the associativity ways (" +
            std::to_string(table.ways()) + ")");
    if (!isPowerOfTwo(table.numSets()))
        throw std::invalid_argument(
            "mechanism '" + spec.name + "': rows (" +
            std::to_string(table.rows) + ") at " +
            spec.choiceParam("assoc") +
            " indexing gives a non-power-of-two set count");
}

/** Legend fields [rows [, assoc]] shared by the table mechanisms. */
void
parseTableLegend(
    const std::vector<std::string> &fields,
    std::vector<std::pair<std::string, std::string>> &args)
{
    if (fields.size() > 2)
        throw std::invalid_argument(
            "table-mechanism legend takes NAME,rows,assoc");
    if (!fields.empty())
        args.emplace_back("rows", fields[0]);
    if (fields.size() == 2)
        args.emplace_back("assoc", fields[1]);
}

/**
 * True if every parameter outside @p legend_keys is at its default —
 * the condition for the figure-legend form to round-trip losslessly.
 * Entries whose legend covers only part of the schema fall back to
 * canonical() when it does not, keeping parse(label(s)) == s
 * universally while leaving the paper's default-geometry legends
 * byte-identical.
 */
bool
legendCoversSpec(const MechanismSpec &spec,
                 std::initializer_list<const char *> legend_keys)
{
    const MechanismEntry *entry =
        MechanismRegistry::instance().find(spec.name);
    if (!entry)
        return false;
    for (const MechParam &param : entry->params) {
        bool in_legend = false;
        for (const char *key : legend_keys)
            if (param.key == key)
                in_legend = true;
        if (in_legend)
            continue;
        for (const auto &[key, value] : spec.params)
            if (key == param.key &&
                value != defaultValueString(param))
                return false;
    }
    return true;
}

std::string
tableLegend(const MechanismSpec &spec)
{
    if (!legendCoversSpec(spec, {"rows", "assoc"}))
        return spec.canonical();
    return spec.shortName() + "," +
           std::to_string(spec.uintParam("rows")) + "," +
           assocLabel(spec.tableParam().assoc);
}

void
registerBuiltins(MechanismRegistry &registry)
{
    {
        MechanismEntry none;
        none.name = "none";
        none.shortName = "none";
        none.summary = "no prefetching (baseline)";
        none.build = [](const MechanismSpec &, PageTable &) {
            return std::unique_ptr<Prefetcher>();
        };
        registry.add(std::move(none));
    }
    {
        MechanismEntry sp;
        sp.name = "sp";
        sp.shortName = "SP";
        sp.summary = "tagged sequential prefetching; adaptive engages "
                     "the Dahlgren degree controller";
        sp.aliases = {{"ASQ", "sp(adaptive)"}};
        sp.params = {
            MechParam::makeUInt("degree",
                                "sequential pages prefetched per miss",
                                1, 1, 64),
            MechParam::makeFlag("adaptive",
                                "Dahlgren-style adaptive degree"),
        };
        sp.build = [](const MechanismSpec &spec, PageTable &) {
            if (spec.flagParam("adaptive"))
                return std::unique_ptr<Prefetcher>(
                    std::make_unique<AdaptiveSequentialPrefetcher>());
            return std::unique_ptr<Prefetcher>(
                std::make_unique<SequentialPrefetcher>(
                    static_cast<unsigned>(spec.uintParam("degree"))));
        };
        sp.legend = [](const MechanismSpec &spec) {
            if (spec.flagParam("adaptive")) {
                // "ASQ" only covers the default degree; fall back to
                // the canonical grammar when it would lose a value.
                return legendCoversSpec(spec, {"adaptive"})
                           ? std::string("ASQ")
                           : spec.canonical();
            }
            return "SP," + std::to_string(spec.uintParam("degree"));
        };
        sp.parseLegend =
            [](const std::vector<std::string> &fields,
               std::vector<std::pair<std::string, std::string>>
                   &args) {
                if (fields.size() > 1)
                    throw std::invalid_argument(
                        "SP legend takes SP,degree");
                if (!fields.empty())
                    args.emplace_back("degree", fields[0]);
            };
        registry.add(std::move(sp));
    }
    {
        MechanismEntry asp;
        asp.name = "asp";
        asp.shortName = "ASP";
        asp.summary = "arbitrary stride prefetching (Chen-Baer RPT, "
                      "PC-indexed)";
        asp.aliases = {{"stride", "asp"}};
        asp.params = {rowsParam(), assocParam()};
        asp.build = [](const MechanismSpec &spec, PageTable &) {
            return std::unique_ptr<Prefetcher>(
                std::make_unique<AspPrefetcher>(spec.tableParam()));
        };
        asp.legend = tableLegend;
        asp.parseLegend = parseTableLegend;
        asp.validate = validateTableGeometry;
        registry.add(std::move(asp));
    }
    {
        MechanismEntry mp;
        mp.name = "mp";
        mp.shortName = "MP";
        mp.summary = "Markov prefetching (page-successor table, "
                     "Joseph-Grunwald)";
        mp.aliases = {{"markov", "mp"}};
        mp.params = {rowsParam(), assocParam(), slotsParam()};
        mp.build = [](const MechanismSpec &spec, PageTable &) {
            return std::unique_ptr<Prefetcher>(
                std::make_unique<MarkovPrefetcher>(
                    spec.tableParam(),
                    static_cast<std::uint32_t>(
                        spec.uintParam("slots"))));
        };
        mp.legend = tableLegend;
        mp.parseLegend = parseTableLegend;
        mp.validate = validateTableGeometry;
        registry.add(std::move(mp));
    }
    {
        MechanismEntry rp;
        rp.name = "rp";
        rp.shortName = "RP";
        rp.summary = "recency-based prefetching (LRU stack threaded "
                     "through the page table, Saulsbury et al.)";
        rp.aliases = {{"recency", "rp"}};
        rp.params = {MechParam::makeUInt(
            "reach", "stack neighbours prefetched per side", 1, 1, 8)};
        rp.build = [](const MechanismSpec &spec, PageTable &pt) {
            return std::unique_ptr<Prefetcher>(
                std::make_unique<RecencyPrefetcher>(
                    pt,
                    static_cast<unsigned>(spec.uintParam("reach"))));
        };
        rp.legend = [](const MechanismSpec &spec) {
            std::uint64_t reach = spec.uintParam("reach");
            return reach == 1 ? std::string("RP")
                              : "RP," + std::to_string(2 * reach);
        };
        rp.parseLegend =
            [](const std::vector<std::string> &fields,
               std::vector<std::pair<std::string, std::string>>
                   &args) {
                if (fields.empty())
                    return;
                if (fields.size() > 1)
                    throw std::invalid_argument(
                        "RP legend takes RP,prefetches-per-miss");
                std::uint64_t n = parseUIntValue(
                    fields[0], fields[0], "RP legend field");
                if (n == 0 || n % 2 != 0)
                    throw std::invalid_argument(
                        "RP legend field is the prefetch count "
                        "(2 per reach), so it must be even");
                args.emplace_back("reach", std::to_string(n / 2));
            };
        registry.add(std::move(rp));
    }
    {
        MechanismEntry dp;
        dp.name = "dp";
        dp.shortName = "DP";
        dp.summary = "distance prefetching (the paper's proposal: "
                     "miss-distance-indexed table)";
        dp.aliases = {{"distance", "dp"}};
        dp.params = {rowsParam(), assocParam(), slotsParam()};
        dp.build = [](const MechanismSpec &spec, PageTable &) {
            return std::unique_ptr<Prefetcher>(
                std::make_unique<DistancePrefetcher>(
                    spec.tableParam(),
                    static_cast<std::uint32_t>(
                        spec.uintParam("slots"))));
        };
        dp.legend = tableLegend;
        dp.parseLegend = parseTableLegend;
        dp.validate = validateTableGeometry;
        registry.add(std::move(dp));
    }
}

} // namespace

MechanismRegistry::MechanismRegistry()
{
    registerBuiltins(*this);
    registerHybridMechanism(*this);
}

MechanismRegistry &
MechanismRegistry::instance()
{
    static MechanismRegistry registry;
    return registry;
}

void
MechanismRegistry::add(MechanismEntry entry)
{
    if (entry.name.empty())
        throw std::invalid_argument("mechanism entry needs a name");
    if (!entry.build)
        throw std::invalid_argument("mechanism entry '" + entry.name +
                                    "' needs a build hook");
    if (entry.composite &&
        (entry.minChildren < 2 ||
         entry.maxChildren < entry.minChildren))
        throw std::invalid_argument(
            "composite mechanism entry '" + entry.name +
            "' needs minChildren >= 2 and maxChildren >= minChildren");
    if (entry.shortName.empty())
        entry.shortName = entry.name;
    std::string key = lowered(entry.name);
    if (_entries.contains(key) || _aliases.contains(key))
        throw std::invalid_argument("mechanism name '" + entry.name +
                                    "' is already registered");
    for (const auto &[alias, target] : entry.aliases) {
        (void)target;
        std::string akey = lowered(alias);
        if (_entries.contains(akey) || _aliases.contains(akey))
            throw std::invalid_argument(
                "mechanism alias '" + alias + "' of '" + entry.name +
                "' is already registered");
    }
    for (const auto &[alias, target] : entry.aliases)
        _aliases.emplace(lowered(alias), target);
    _entries.emplace(std::move(key), std::move(entry));
}

const MechanismEntry *
MechanismRegistry::find(const std::string &name) const
{
    auto it = _entries.find(lowered(name));
    if (it != _entries.end())
        return &it->second;
    // A bare-name alias whose expansion is itself a bare entry name
    // resolves straight to that entry ("markov" -> "mp").
    auto alias = _aliases.find(lowered(name));
    if (alias != _aliases.end()) {
        auto target = _entries.find(lowered(alias->second));
        if (target != _entries.end())
            return &target->second;
    }
    return nullptr;
}

const std::string *
MechanismRegistry::aliasExpansion(const std::string &name) const
{
    auto alias = _aliases.find(lowered(name));
    if (alias == _aliases.end())
        return nullptr;
    // Plain renames are handled by find(); only parameterised
    // expansions need the spec-string path.
    if (_entries.contains(lowered(alias->second)))
        return nullptr;
    return &alias->second;
}

std::vector<const MechanismEntry *>
MechanismRegistry::entries() const
{
    std::vector<const MechanismEntry *> out;
    out.reserve(_entries.size());
    for (const auto &[name, entry] : _entries) {
        (void)name;
        out.push_back(&entry);
    }
    return out;
}

std::string
MechanismRegistry::knownNames() const
{
    std::string out;
    for (const auto &[name, entry] : _entries) {
        (void)entry;
        out += (out.empty() ? "" : ", ") + name;
    }
    return out;
}

std::vector<MechanismSpec>
parseMechanismList(const std::string &text)
{
    std::vector<MechanismSpec> specs;
    std::string body = trimmed(text);
    if (body.empty())
        return specs;

    // Legend forms use commas internally ("DP,256,D"), so a comma is
    // ambiguous between a field and a list separator.  Resolve by
    // greedy longest-match: at each position take the longest run of
    // comma-joined tokens that parses as one spec, so both
    // "DP,256,D" (one spec) and "hybrid(dp+sp),DP,256,D,RP" (three)
    // mean what they look like.
    std::vector<std::string> tokens = splitTopLevel(body, ',');
    std::size_t i = 0;
    while (i < tokens.size()) {
        std::size_t taken = 0;
        MechanismSpec parsed;
        std::string run;
        for (std::size_t j = i; j < tokens.size(); ++j) {
            run += (j > i ? "," : "") + tokens[j];
            try {
                parsed = MechanismSpec::parse(run);
                taken = j - i + 1;
            } catch (const std::invalid_argument &) {
                // Longer runs may still parse while the run is a
                // truncated legend ("DP" < "DP,256"); once a run has
                // parsed, the first failure ends the spec.
                if (taken)
                    break;
            }
        }
        if (!taken)
            MechanismSpec::parse(tokens[i]); // throws with context
        specs.push_back(std::move(parsed));
        i += taken;
    }
    return specs;
}

MechanismSpec
parseMechanismOrDie(const std::string &text)
{
    try {
        return MechanismSpec::parse(text);
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }
}

std::vector<MechanismSpec>
parseMechanismListOrDie(const std::string &text)
{
    try {
        return parseMechanismList(text);
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }
}

} // namespace tlbpf
