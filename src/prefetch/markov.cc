#include "prefetch/markov.hh"

namespace tlbpf
{

MarkovPrefetcher::MarkovPrefetcher(const TableConfig &table,
                                   std::uint32_t slots)
    : _tableConfig(table), _slots(slots), _table(table)
{
    if (slots < 1 || slots > 8)
        tlbpf_fatal("MP slots must be in [1, 8]");
}

void
MarkovPrefetcher::onMiss(const TlbMiss &miss, PrefetchDecision &decision)
{
    // Learn: the previous miss's row gains the current page as a
    // successor.  This may allocate (and possibly evict) a row.
    if (_prevMiss != kNoPage && _prevMiss != miss.vpn) {
        Slots &slots = _table.findOrInsert(_prevMiss);
        slots.setCapacity(_slots);
        slots.addOrPromote(miss.vpn);
    }

    // Predict: the current page's recorded successors.  The paper adds
    // the row for a never-seen page with empty slots so its successors
    // can accumulate; findOrInsert does exactly that.
    Slots &slots = _table.findOrInsert(miss.vpn);
    slots.setCapacity(_slots);
    std::size_t n = std::min<std::size_t>(slots.size(), _slots);
    for (std::size_t i = 0; i < n; ++i)
        decision.targets.push_back(slots[i]);

    _prevMiss = miss.vpn;
}

void
MarkovPrefetcher::reset()
{
    _table.reset();
    _prevMiss = kNoPage;
}

void
MarkovPrefetcher::snapshotState(SnapshotWriter &out) const
{
    _table.snapshotSlotState(out);
    out.u64(_prevMiss);
}

void
MarkovPrefetcher::restoreState(SnapshotReader &in)
{
    _table.restoreSlotState(in, _slots);
    _prevMiss = in.u64();
}

std::string
MarkovPrefetcher::label() const
{
    return "MP," + std::to_string(_tableConfig.rows) + "," +
           assocLabel(_tableConfig.assoc);
}

HardwareProfile
MarkovPrefetcher::hardwareProfile() const
{
    return HardwareProfile{
        "r",
        "Page # Tag, " + std::to_string(_slots) + " Prediction Page #s",
        "On-Chip",
        "Page #",
        0,
        std::to_string(_slots),
    };
}

std::vector<Vpn>
MarkovPrefetcher::successorsOf(Vpn vpn) const
{
    std::vector<Vpn> out;
    if (const Slots *slots = _table.peek(vpn))
        for (std::size_t i = 0; i < slots->size(); ++i)
            out.push_back((*slots)[i]);
    return out;
}

} // namespace tlbpf
