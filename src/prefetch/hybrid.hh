/**
 * @file
 * Hybrid prefetching: a composite mechanism that arbitrates the
 * decisions of two or more child mechanisms.
 *
 * The paper evaluates each mechanism in isolation; a natural question
 * it leaves open is whether their predictions are complementary (DP
 * captures strided distance patterns, SP the dense-sequential tail,
 * RP pure temporal recency).  HybridPrefetcher feeds every TLB miss
 * to each child and unions their prefetch targets, deduplicating in
 * child order, while state-maintenance costs accumulate — an upper
 * bound on the coverage a combined predictor could reach with the
 * same tables.
 *
 * The mechanism is registered with the open MechanismRegistry through
 * its public API only — no central enum or switch knows it exists —
 * as `hybrid(<child>+<child>...)`, e.g. `hybrid(dp+sp)`: the proof
 * that the registry is genuinely extensible.
 */

#ifndef TLBPF_PREFETCH_HYBRID_HH
#define TLBPF_PREFETCH_HYBRID_HH

#include <memory>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace tlbpf
{

class MechanismRegistry;

/** Composite prefetcher: union-with-dedup over child decisions. */
class HybridPrefetcher : public Prefetcher
{
  public:
    /** @param children >= 2 built child mechanisms (none may be null). */
    explicit HybridPrefetcher(
        std::vector<std::unique_ptr<Prefetcher>> children);

    void onMiss(const TlbMiss &miss, PrefetchDecision &decision) override;
    void reset() override;

    std::string name() const override { return "HYB"; }
    std::string label() const override;
    HardwareProfile hardwareProfile() const override;

    /** Drop only if every child would (the least favourable policy). */
    bool dropPrefetchesWhenBusy() const override;

    /** Checkpointable iff every child is; serialized child-by-child. */
    bool checkpointable() const override;
    void snapshotState(SnapshotWriter &out) const override;
    void restoreState(SnapshotReader &in) override;

    const std::vector<std::unique_ptr<Prefetcher>> &
    childMechanisms() const
    {
        return _children;
    }

  private:
    std::vector<std::unique_ptr<Prefetcher>> _children;
    PrefetchDecision _scratch;
};

/** Register the `hybrid(...)` entry (called once at registry setup). */
void registerHybridMechanism(MechanismRegistry &registry);

} // namespace tlbpf

#endif // TLBPF_PREFETCH_HYBRID_HH
