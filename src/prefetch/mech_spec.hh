/**
 * @file
 * First-class mechanism addressing: the MechanismSpec value type and
 * the open MechanismRegistry it resolves against.
 *
 * The other half of every experiment cell (WorkloadSpec names the
 * reference stream) is "what prefetching mechanism am I running?".
 * Historically that was a closed Scheme enum plus a monolithic
 * PrefetcherSpec struct whose fields only applied to some schemes; a
 * MechanismSpec generalises it to a small textual grammar resolved
 * against a registry of self-describing entries, so new mechanisms —
 * hybrids, experimental predictors, whole plugins — can be added
 * without editing any central switch:
 *
 *   dp                          registry mechanism, all defaults
 *   dp(rows=512,assoc=4w)       key=value parameters from the entry's
 *                               typed schema (defaults filled in,
 *                               unknown keys and out-of-range values
 *                               rejected with an actionable message)
 *   sp(degree=2)  sp(adaptive)  flags are bare keys
 *   hybrid(dp+sp)               composite entry: '+'-separated child
 *                               specs, arbitrated by the entry
 *   DP,256,D   SP,1   RP   ASQ  the paper's figure-legend forms also
 *                               parse, so label() round-trips
 *
 * parse() and label() round-trip: parse(s.label()) == s for every
 * valid spec, while label() keeps emitting the paper's figure-legend
 * form ("DP,256,D") so rendered tables and CSV files are byte-
 * identical to the closed-enum era.  canonical() emits the grammar
 * form above (defaults elided) and round-trips too.  All resolution
 * errors throw std::invalid_argument so engine worker threads surface
 * a bad mechanism as a clean batch failure; bench binaries convert
 * that to the documented fatal exit via parseMechanismOrDie().
 */

#ifndef TLBPF_PREFETCH_MECH_SPEC_HH
#define TLBPF_PREFETCH_MECH_SPEC_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/prediction_table.hh"
#include "prefetch/prefetcher.hh"

namespace tlbpf
{

class PageTable;
struct MechanismSpec;

/** One typed parameter a mechanism entry accepts. */
struct MechParam
{
    enum class Kind
    {
        UInt,  ///< decimal integer with an inclusive [min, max] range
        Flag,  ///< boolean; given as a bare key (or key=true/false)
        Choice ///< one of a fixed token set (e.g. table associativity)
    };

    std::string key;
    Kind kind = Kind::UInt;
    std::string help;

    std::uint64_t dflt = 0;      ///< UInt default; Flag default (0/1)
    std::uint64_t min = 0;       ///< UInt range, inclusive
    std::uint64_t max = ~0ull;

    /** Choice: canonical tokens; choices.front() is the default. */
    std::vector<std::string> choices;
    /** Choice: accepted aliases, each mapping to a canonical token. */
    std::vector<std::pair<std::string, std::string>> choiceAliases;

    static MechParam makeUInt(std::string key, std::string help,
                              std::uint64_t dflt, std::uint64_t min,
                              std::uint64_t max);
    static MechParam makeFlag(std::string key, std::string help);
    static MechParam
    makeChoice(std::string key, std::string help,
               std::vector<std::string> choices,
               std::vector<std::pair<std::string, std::string>> aliases);
};

/**
 * A mechanism denotation: a registry entry name plus its fully
 * resolved parameters (every schema key present, defaults filled in)
 * and, for composite entries, the child specs.  Construct with
 * parse(); the typed accessors assume the spec was resolved against
 * the registry.
 */
struct MechanismSpec
{
    std::string name = "none"; ///< canonical registry entry name
    /** Resolved (key, canonical value) pairs in schema order. */
    std::vector<std::pair<std::string, std::string>> params;
    std::vector<MechanismSpec> children; ///< composite entries only

    /**
     * Parse either grammar (canonical or figure-legend); throws
     * std::invalid_argument with an actionable description on unknown
     * mechanisms, unknown parameter keys, out-of-range values and
     * malformed composite child lists.
     */
    static MechanismSpec parse(const std::string &text);

    /** The baseline spec (no prefetching). */
    static MechanismSpec none();

    /**
     * Figure-legend label, e.g. "DP,256,D", "SP,1", "RP", "ASQ",
     * "hybrid(DP,256,D+SP,1)".  parse(label()) reproduces this spec.
     */
    std::string label() const;

    /**
     * Canonical grammar form with defaulted parameters elided, e.g.
     * "dp", "dp(rows=512)", "hybrid(dp+sp)".  Round-trips via parse().
     */
    std::string canonical() const;

    /** Short display name of the entry, e.g. "DP", "HYB", "none". */
    std::string shortName() const;

    /**
     * Build the prefetcher.  @p pt is required by mechanisms whose
     * state lives in the page table (RP) and ignored by the on-chip
     * ones.  Returns nullptr for the "none" baseline.  Throws
     * std::invalid_argument if the spec does not resolve.
     */
    std::unique_ptr<Prefetcher> build(PageTable &pt) const;

    /** Table 1 row for this mechanism. */
    HardwareProfile hardwareProfile() const;

    /** Re-check this spec against the registry; throws on violation. */
    void validate() const;

    /* Typed parameter accessors (key must exist in the entry schema). */
    std::uint64_t uintParam(const std::string &key) const;
    bool flagParam(const std::string &key) const;
    const std::string &choiceParam(const std::string &key) const;

    /** rows/assoc parameter pair as a prediction-table geometry. */
    TableConfig tableParam() const;

    bool operator==(const MechanismSpec &other) const = default;
};

/** A self-describing registry entry for one mechanism. */
struct MechanismEntry
{
    std::string name;      ///< canonical name (lowercase)
    std::string shortName; ///< display name, e.g. "DP"
    std::string summary;   ///< one-line description for listings
    /** Extra accepted names; an alias may expand to a parameterised
     *  spec string (e.g. "ASQ" -> "sp(adaptive)"). */
    std::vector<std::pair<std::string, std::string>> aliases;
    std::vector<MechParam> params; ///< typed parameter schema

    /** Composite entries take '+'-separated child specs as argument. */
    bool composite = false;
    std::size_t minChildren = 0;
    std::size_t maxChildren = 0;

    /** Construct the prefetcher (may return nullptr: no prefetching). */
    std::function<std::unique_ptr<Prefetcher>(const MechanismSpec &,
                                              PageTable &)>
        build;

    /** Figure-legend emission; nullptr emits the entry name. */
    std::function<std::string(const MechanismSpec &)> legend;

    /**
     * Parse figure-legend fields (the comma-separated tokens after the
     * name, e.g. {"256", "D"}) into key=value argument pairs; nullptr
     * rejects any fields.  Throws std::invalid_argument on mismatch.
     */
    std::function<void(
        const std::vector<std::string> &,
        std::vector<std::pair<std::string, std::string>> &)>
        parseLegend;

    /** Extra cross-parameter validation (throw std::invalid_argument). */
    std::function<void(const MechanismSpec &)> validate;

    /** Table 1 row; nullptr builds a throwaway instance and asks it. */
    std::function<HardwareProfile(const MechanismSpec &)> profile;
};

/**
 * The open mechanism registry.  The paper's five schemes plus the
 * baseline and the hybrid combinator are pre-registered; anything —
 * benches, tests, plugins — may add() further entries through this
 * public API before running sweeps.  Registration is not thread-safe
 * against concurrent parsing: register before fanning out on the
 * engine (lookups during a sweep are read-only).
 */
class MechanismRegistry
{
  public:
    static MechanismRegistry &instance();

    /**
     * Register an entry.  Throws std::invalid_argument on a missing
     * name/build hook or on a name/alias that is already taken.
     */
    void add(MechanismEntry entry);

    /** Entry by name or alias (case-insensitive); nullptr if absent. */
    const MechanismEntry *find(const std::string &name) const;

    /**
     * If @p name is an alias carrying a parameter preset, the spec
     * string it expands to; nullptr otherwise.
     */
    const std::string *aliasExpansion(const std::string &name) const;

    /** All entries in registration-name order. */
    std::vector<const MechanismEntry *> entries() const;

    /** Comma-separated entry names (for error messages/usage). */
    std::string knownNames() const;

  private:
    MechanismRegistry();

    std::map<std::string, MechanismEntry> _entries; // key: lowercase
    std::map<std::string, std::string> _aliases; // lowercase -> target
};

/**
 * Parse a comma-separated list of mechanism specs.  The text is first
 * tried as a single spec (so legend forms like "DP,256,D" work), then
 * split on top-level commas (parentheses nest, so "hybrid(dp+sp),rp"
 * is two specs).  Throws std::invalid_argument.
 */
std::vector<MechanismSpec> parseMechanismList(const std::string &text);

/**
 * parse() for bench/CLI entry points: converts a resolution error
 * into the documented clean fatal exit instead of an exception.
 */
MechanismSpec parseMechanismOrDie(const std::string &text);

/** parseMechanismList() with the fatal-exit policy above. */
std::vector<MechanismSpec>
parseMechanismListOrDie(const std::string &text);

} // namespace tlbpf

#endif // TLBPF_PREFETCH_MECH_SPEC_HH
