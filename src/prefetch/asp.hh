/**
 * @file
 * Arbitrary Stride Prefetching (ASP), paper Section 2.2, after Chen &
 * Baer's Reference Prediction Table.
 *
 * The RPT is indexed by the PC of the missing reference.  Each row
 * stores the page last missed by that PC, the stride between its last
 * two misses, and a two-bit state.  A prefetch (one page: last + stride)
 * is issued only in the Steady state, i.e. after the stride has been
 * confirmed at least twice — the paper's safeguard against spurious
 * stride changes.
 */

#ifndef TLBPF_PREFETCH_ASP_HH
#define TLBPF_PREFETCH_ASP_HH

#include "core/prediction_table.hh"
#include "prefetch/prefetcher.hh"

namespace tlbpf
{

/** Chen-Baer RPT states. */
enum class RptState : std::uint8_t
{
    Initial,   ///< first sighting, stride unconfirmed
    Transient, ///< stride just changed
    Steady,    ///< stride confirmed; prefetching enabled
    NoPred     ///< stride keeps changing; prefetching disabled
};

/** Arbitrary stride prefetcher. */
class AspPrefetcher : public Prefetcher
{
  public:
    explicit AspPrefetcher(const TableConfig &table);

    void onMiss(const TlbMiss &miss, PrefetchDecision &decision) override;
    void reset() override;

    std::string name() const override { return "ASP"; }
    std::string label() const override;
    HardwareProfile hardwareProfile() const override;

    bool checkpointable() const override { return true; }
    void snapshotState(SnapshotWriter &out) const override;
    void restoreState(SnapshotReader &in) override;

    /** Expose a row's state for white-box tests. */
    struct RowView
    {
        Vpn prevPage;
        std::int64_t stride;
        RptState state;
        bool valid;
    };
    RowView inspect(Addr pc) const;

  private:
    struct RptRow
    {
        Vpn prevPage = 0;
        std::int64_t stride = 0;
        RptState state = RptState::Initial;
    };

    PredictionTable<RptRow> _table;
};

} // namespace tlbpf

#endif // TLBPF_PREFETCH_ASP_HH
