#include "prefetch/recency.hh"

namespace tlbpf
{

RecencyPrefetcher::RecencyPrefetcher(PageTable &pt, unsigned reach)
    : _pt(pt), _stack(pt), _reach(reach)
{
}

void
RecencyPrefetcher::onMiss(const TlbMiss &miss, PrefetchDecision &decision)
{
    RecencyStack::UpdateResult res =
        _stack.onMiss(miss.vpn, miss.evictedVpn, _reach);
    for (unsigned i = 0; i < res.numNeighbors; ++i)
        decision.targets.push_back(res.neighbors[i]);
    decision.stateOps = res.pointerOps;
}

void
RecencyPrefetcher::snapshotState(SnapshotWriter &out) const
{
    _stack.snapshotState(out);
}

void
RecencyPrefetcher::restoreState(SnapshotReader &in)
{
    _stack.restoreState(in);
}

std::string
RecencyPrefetcher::label() const
{
    return _reach == 1 ? "RP" : "RP," + std::to_string(2 * _reach);
}

void
RecencyPrefetcher::reset()
{
    _stack.reset();
}

HardwareProfile
RecencyPrefetcher::hardwareProfile() const
{
    return HardwareProfile{
        "No. of PTEs",
        "next, prev pointers",
        "In Memory",
        "Page #",
        4,
        "2",
    };
}

} // namespace tlbpf
