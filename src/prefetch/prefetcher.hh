/**
 * @file
 * Common interface for the TLB prefetching mechanisms.
 *
 * Every mechanism, as in the paper, sits *after* the TLB: it sees only
 * the miss stream (plus the PC of the missing reference, which ASP
 * needs) and the identity of the entry the TLB evicted (which RP
 * needs).  It never sees TLB hits.
 */

#ifndef TLBPF_PREFETCH_PREFETCHER_HH
#define TLBPF_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/page_table.hh"
#include "trace/ref_stream.hh"
#include "util/snapshot.hh"

namespace tlbpf
{

/** Everything a mechanism may observe about one TLB miss. */
struct TlbMiss
{
    Vpn vpn = 0;          ///< the missing virtual page
    Addr pc = 0;          ///< PC of the missing reference (ASP)
    bool pbHit = false;   ///< the miss was satisfied by the buffer
    Vpn evictedVpn = kNoPage; ///< page evicted from the TLB, if any
};

/** What a mechanism wants done about one TLB miss. */
struct PrefetchDecision
{
    /** Pages to bring into the prefetch buffer. */
    std::vector<Vpn> targets;
    /**
     * Memory word operations needed to maintain prediction state
     * (RP's pointer manipulations; 0 for the on-chip schemes).
     */
    unsigned stateOps = 0;

    void
    clear()
    {
        targets.clear();
        stateOps = 0;
    }
};

/** Hardware-cost summary for the paper's Table 1. */
struct HardwareProfile
{
    std::string rows;          ///< number of rows expression
    std::string rowContents;   ///< what one row stores
    std::string tableLocation; ///< "On-Chip" or "In Memory"
    std::string indexedBy;     ///< PC / Page # / Distance
    unsigned memOpsPerMiss = 0;///< state-maintenance ops (excl. prefetch)
    std::string maxPrefetches; ///< prefetches per miss
};

/** Abstract TLB prefetching mechanism. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe one TLB miss and fill @p decision (cleared first by the
     * caller contract; implementations may assume it is empty).
     */
    virtual void onMiss(const TlbMiss &miss,
                        PrefetchDecision &decision) = 0;

    /** Forget all prediction state (context switch). */
    virtual void reset() = 0;

    /** Mechanism short name: SP, ASP, MP, RP, DP. */
    virtual std::string name() const = 0;

    /** Parameterised label, e.g. "DP,256,D". */
    virtual std::string label() const = 0;

    /** Table 1 row for this mechanism. */
    virtual HardwareProfile hardwareProfile() const = 0;

    /**
     * Timing-model policy: when the prefetch channel is still busy at
     * miss time, should the prefetch fetches be skipped (state updates
     * still charged)?  The paper grants RP this benefit of the doubt.
     */
    virtual bool dropPrefetchesWhenBusy() const { return false; }

    /**
     * Whether this mechanism implements exact state snapshot/restore.
     * Mechanisms registered through the open MechanismRegistry opt in
     * by overriding the three checkpoint hooks (every in-tree
     * mechanism and the bench-registered dpx do); the sweep engine
     * falls back to prefix replay for shards of a mechanism that does
     * not, preserving bit-identity either way.
     */
    virtual bool checkpointable() const { return false; }

    /**
     * Serialize all prediction state into @p out.  Only called when
     * checkpointable(); the default throws std::invalid_argument
     * naming the mechanism.
     */
    virtual void snapshotState(SnapshotWriter &out) const;

    /**
     * Restore state written by snapshotState() into a mechanism built
     * from the same spec; throws std::invalid_argument on mismatch.
     */
    virtual void restoreState(SnapshotReader &in);
};

} // namespace tlbpf

#endif // TLBPF_PREFETCH_PREFETCHER_HH
