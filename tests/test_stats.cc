/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/histogram.hh"
#include "stats/stats.hh"

namespace tlbpf
{
namespace
{

TEST(Counter, IncrementAndAdd)
{
    StatRegistry reg;
    Counter &c = reg.counter("hits", "hit count");
    ++c;
    c += 10;
    EXPECT_EQ(c.count(), 11u);
    EXPECT_DOUBLE_EQ(c.value(), 11.0);
}

TEST(Average, ComputesMean)
{
    StatRegistry reg;
    Average &a = reg.average("lat", "latency");
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.value(), 20.0);
    EXPECT_EQ(a.samples(), 3u);
}

TEST(Ratio, DividesAndHandlesZeroDenominator)
{
    StatRegistry reg;
    Counter &n = reg.counter("n", "numer");
    Counter &d = reg.counter("d", "denom");
    Ratio &r = reg.ratio("r", "ratio", n, d);
    EXPECT_DOUBLE_EQ(r.value(), 0.0); // no division by zero
    n += 3;
    d += 4;
    EXPECT_DOUBLE_EQ(r.value(), 0.75);
}

TEST(Registry, ResetAllClearsCounters)
{
    StatRegistry reg;
    Counter &c = reg.counter("c", "");
    Average &a = reg.average("a", "");
    c += 5;
    a.sample(1.0);
    reg.resetAll();
    EXPECT_EQ(c.count(), 0u);
    EXPECT_EQ(a.samples(), 0u);
}

TEST(Registry, DumpInRegistrationOrder)
{
    StatRegistry reg;
    reg.counter("zeta", "last letter");
    reg.counter("alpha", "first letter");
    std::ostringstream oss;
    reg.dump(oss);
    std::string out = oss.str();
    EXPECT_LT(out.find("zeta"), out.find("alpha"));
    EXPECT_NE(out.find("# last letter"), std::string::npos);
}

TEST(Registry, FindByName)
{
    StatRegistry reg;
    reg.counter("x", "");
    EXPECT_NE(reg.find("x"), nullptr);
    EXPECT_EQ(reg.find("y"), nullptr);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, DuplicateNamePanics)
{
    StatRegistry reg;
    reg.counter("dup", "");
    EXPECT_DEATH(reg.counter("dup", ""), "duplicate stat");
}

TEST(SparseHistogram, CountsAndTotal)
{
    SparseHistogram h;
    h.sample(5);
    h.sample(5);
    h.sample(-3);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.countOf(5), 2u);
    EXPECT_EQ(h.countOf(-3), 1u);
    EXPECT_EQ(h.countOf(99), 0u);
    EXPECT_EQ(h.distinct(), 2u);
}

TEST(SparseHistogram, TopKOrdering)
{
    SparseHistogram h;
    h.sample(1, 5);
    h.sample(2, 10);
    h.sample(3, 1);
    auto top = h.topK(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].first, 2);
    EXPECT_EQ(top[1].first, 1);
}

TEST(SparseHistogram, Coverage)
{
    SparseHistogram h;
    h.sample(1, 80);
    h.sample(2, 20);
    EXPECT_DOUBLE_EQ(h.coverage(1), 0.8);
    EXPECT_DOUBLE_EQ(h.coverage(2), 1.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.coverage(1), 0.0);
}

TEST(BucketHistogram, BucketsAndOverflow)
{
    BucketHistogram h(10, 4); // [0,10) [10,20) [20,30) [30,40)
    h.sample(0);
    h.sample(9);
    h.sample(15);
    h.sample(100);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(BucketHistogram, Mean)
{
    BucketHistogram h(10, 10);
    h.sample(10);
    h.sample(20);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(BucketHistogram, Quantile)
{
    BucketHistogram h(10, 10);
    for (int i = 0; i < 90; ++i)
        h.sample(5);
    for (int i = 0; i < 10; ++i)
        h.sample(55);
    EXPECT_LE(h.quantile(0.5), 9u);
    EXPECT_GE(h.quantile(0.99), 50u);
}

TEST(BucketHistogram, ResetClears)
{
    BucketHistogram h(10, 2);
    h.sample(5);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

} // namespace
} // namespace tlbpf
