/**
 * @file
 * Tests for the timing simulator's cycle accounting: the constant miss
 * penalty, in-flight prefetch stalls, channel contention, and RP's
 * benefit-of-the-doubt rule.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/timing_sim.hh"
#include "trace/ref_stream.hh"

namespace tlbpf
{
namespace
{

std::vector<MemRef>
pagedRefs(std::initializer_list<Vpn> pages, std::uint64_t instr_gap)
{
    std::vector<MemRef> refs;
    std::uint64_t icount = 0;
    for (Vpn p : pages) {
        refs.push_back(MemRef{p * kDefaultPageBytes, 0x4000, false,
                              icount});
        icount += instr_gap;
    }
    return refs;
}

SimConfig
tinyConfig()
{
    SimConfig config;
    config.tlb = TlbConfig{4, 0};
    config.pbEntries = 4;
    return config;
}

MechanismSpec
spec(const std::string &text)
{
    return MechanismSpec::parse(text);
}

TEST(TimingSim, NoMissesMeansNoStalls)
{
    VectorStream stream(pagedRefs({1, 1, 1, 1}, 10));
    TimingResult r =
        simulateTimed(tinyConfig(), TimingConfig{}, spec("none"),
                      stream);
    EXPECT_EQ(r.stallCycles, 100u); // only the single cold miss
    EXPECT_EQ(r.computeCycles, 30u);
    EXPECT_EQ(r.cycles, 130u);
}

TEST(TimingSim, EachDemandMissCostsThePenalty)
{
    VectorStream stream(pagedRefs({1, 2, 3}, 1000));
    TimingResult r =
        simulateTimed(tinyConfig(), TimingConfig{}, spec("none"),
                      stream);
    EXPECT_EQ(r.stallCycles, 300u);
}

TEST(TimingSim, BaseCpiScalesComputeCycles)
{
    TimingConfig timing;
    timing.baseCpi = 2.0;
    VectorStream stream(pagedRefs({1, 1}, 50));
    TimingResult r = simulateTimed(tinyConfig(), timing,
                                   spec("none"), stream);
    EXPECT_EQ(r.computeCycles, 100u);
}

TEST(TimingSim, CompletedPrefetchEliminatesStall)
{
    // Page 2 prefetched at the miss on page 1; the next reference is
    // far enough in the future that the prefetch has landed.
    VectorStream stream(pagedRefs({1, 2}, 1000));
    TimingResult r = simulateTimed(tinyConfig(), TimingConfig{},
                                   spec("sp"), stream);
    EXPECT_EQ(r.functional.pbHits, 1u);
    EXPECT_EQ(r.inFlightHits, 0u);
    EXPECT_EQ(r.stallCycles, 100u); // only the cold miss on page 1
}

TEST(TimingSim, InFlightPrefetchStallsPartially)
{
    // With a 300-cycle memory op, the prefetch of page 2 (issued at
    // the miss on page 1) is still in flight when page 2 is
    // referenced: the CPU stalls only for the remainder.
    TimingConfig timing;
    timing.memOpCost = 300;
    VectorStream stream(pagedRefs({1, 2}, 3));
    TimingResult r =
        simulateTimed(tinyConfig(), timing, spec("sp"), stream);
    EXPECT_EQ(r.functional.pbHits, 1u);
    EXPECT_EQ(r.inFlightHits, 1u);
    // Cold miss (100) + remaining in-flight time (300 - 103 = 197).
    EXPECT_EQ(r.stallCycles, 297u);
}

TEST(TimingSim, DemandFetchDelayedByChannelBacklog)
{
    // Miss on 1 issues a 500-cycle prefetch; the unrelated miss on 10
    // (at now = 101) must wait for the channel to clear (t = 500)
    // before its own 100-cycle walk starts.
    TimingConfig timing;
    timing.memOpCost = 500;
    VectorStream stream(pagedRefs({1, 10}, 1));
    TimingResult r =
        simulateTimed(tinyConfig(), timing, spec("sp"), stream);
    // 100 (cold) + (500 - 101 + 100) for the delayed demand fetch.
    EXPECT_EQ(r.stallCycles, 100u + 499u);
}

TEST(TimingSim, RpSkipsPrefetchesWhenChannelBusy)
{
    // Back-to-back history misses keep the channel busy with RP's
    // pointer updates, so some neighbour fetches are skipped.
    std::vector<MemRef> refs;
    std::uint64_t icount = 0;
    for (int pass = 0; pass < 6; ++pass) {
        for (Vpn p = 0; p < 12; ++p) {
            refs.push_back(MemRef{p * kDefaultPageBytes, 0, false,
                                  icount});
            icount += 2;
        }
    }
    VectorStream stream(std::move(refs));
    TimingResult r = simulateTimed(tinyConfig(), TimingConfig{},
                                   spec("rp"), stream);
    EXPECT_GT(r.prefetchesSkippedBusy, 0u);
}

TEST(TimingSim, DpNeverSkips)
{
    std::vector<MemRef> refs;
    std::uint64_t icount = 0;
    for (int pass = 0; pass < 6; ++pass) {
        for (Vpn p = 0; p < 12; ++p) {
            refs.push_back(MemRef{p * kDefaultPageBytes, 0, false,
                                  icount});
            icount += 2;
        }
    }
    VectorStream stream(std::move(refs));
    TimingResult r = simulateTimed(tinyConfig(), TimingConfig{},
                                   spec("dp(rows=64)"), stream);
    EXPECT_EQ(r.prefetchesSkippedBusy, 0u);
}

TEST(TimingSim, RpGeneratesMoreMemoryTrafficThanDp)
{
    // Paper Section 3.2: RP's traffic is 2-3x DP's.
    TimingResult rp = runTimed("ammp", spec("rp"), 200000);
    TimingResult dp = runTimed("ammp", spec("dp(rows=64)"), 200000);
    EXPECT_GT(rp.memoryOps, dp.memoryOps);
    EXPECT_GE(static_cast<double>(rp.memoryOps),
              1.5 * static_cast<double>(dp.memoryOps));
}

TEST(TimingSim, MemOpCostScalesChannelPressure)
{
    TimingConfig cheap;
    cheap.memOpCost = 1;
    TimingConfig expensive;
    expensive.memOpCost = 200;
    std::vector<MemRef> refs;
    std::uint64_t icount = 0;
    for (int pass = 0; pass < 5; ++pass)
        for (Vpn p = 0; p < 12; ++p) {
            refs.push_back(MemRef{p * kDefaultPageBytes, 0, false,
                                  icount});
            icount += 3;
        }
    VectorStream s1(refs);
    VectorStream s2(refs);
    TimingResult fast =
        simulateTimed(tinyConfig(), cheap, spec("rp"), s1);
    TimingResult slow =
        simulateTimed(tinyConfig(), expensive, spec("rp"), s2);
    EXPECT_LT(fast.cycles, slow.cycles);
}

TEST(TimingSim, FunctionalCountersMatchFunctionalSimWithoutPrefetch)
{
    auto stream1 = buildApp("gcc", 100000);
    auto stream2 = buildApp("gcc", 100000);
    SimResult functional =
        simulate(SimConfig{}, spec("none"), *stream1);
    TimingResult timed = simulateTimed(SimConfig{}, TimingConfig{},
                                       spec("none"), *stream2);
    EXPECT_EQ(timed.functional.refs, functional.refs);
    EXPECT_EQ(timed.functional.misses, functional.misses);
}

TEST(TimingSim, PrefetchingSpeedsUpStridedApp)
{
    // galgel: strided re-touch; DP should clearly beat no-prefetching.
    TimingResult base = runTimed("galgel", spec("none"), 150000);
    TimingResult dp = runTimed("galgel", spec("dp(rows=64)"), 150000);
    EXPECT_LT(dp.cycles, base.cycles);
}

} // namespace
} // namespace tlbpf
