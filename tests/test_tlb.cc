/**
 * @file
 * Unit tests for the TLB and the prefetch buffer.
 */

#include <gtest/gtest.h>

#include "tlb/prefetch_buffer.hh"
#include "tlb/tlb.hh"

namespace tlbpf
{
namespace
{

TEST(Tlb, MissThenHitAfterInsert)
{
    Tlb tlb({4, 0});
    EXPECT_FALSE(tlb.access(1));
    EXPECT_EQ(tlb.insert(1), std::nullopt);
    EXPECT_TRUE(tlb.access(1));
    EXPECT_TRUE(tlb.contains(1));
    EXPECT_EQ(tlb.residentCount(), 1u);
}

TEST(Tlb, FullyAssociativeEvictsTrueLru)
{
    Tlb tlb({3, 0});
    tlb.insert(1);
    tlb.insert(2);
    tlb.insert(3);
    tlb.access(1); // 2 is now LRU
    auto evicted = tlb.insert(4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 2u);
    EXPECT_TRUE(tlb.contains(1));
    EXPECT_FALSE(tlb.contains(2));
}

TEST(Tlb, SetAssociativeConflictsWithinSet)
{
    // 4 entries, 2-way: 2 sets; even pages -> set 0, odd -> set 1.
    Tlb tlb({4, 2});
    tlb.insert(0);
    tlb.insert(2);
    tlb.insert(1); // odd set untouched by the evens
    auto evicted = tlb.insert(4); // third even page: evicts LRU even
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 0u);
    EXPECT_TRUE(tlb.contains(1));
    EXPECT_TRUE(tlb.contains(2));
}

TEST(Tlb, InsertIntoFreeWayEvictsNothing)
{
    Tlb tlb({4, 2});
    EXPECT_EQ(tlb.insert(0), std::nullopt);
    EXPECT_EQ(tlb.insert(2), std::nullopt);
    EXPECT_EQ(tlb.insert(1), std::nullopt);
    EXPECT_EQ(tlb.insert(3), std::nullopt);
}

TEST(Tlb, AccessRefreshesLru)
{
    Tlb tlb({2, 0});
    tlb.insert(1);
    tlb.insert(2);
    tlb.access(1);
    EXPECT_EQ(*tlb.insert(3), 2u);
}

TEST(Tlb, FlushEmptiesEverything)
{
    Tlb tlb({4, 0});
    tlb.insert(1);
    tlb.insert(2);
    tlb.flush();
    EXPECT_EQ(tlb.residentCount(), 0u);
    EXPECT_FALSE(tlb.contains(1));
    EXPECT_EQ(tlb.insert(1), std::nullopt);
}

TEST(Tlb, DoubleInsertPanics)
{
    Tlb tlb({4, 0});
    tlb.insert(1);
    EXPECT_DEATH(tlb.insert(1), "double insert");
}

TEST(Tlb, BadGeometryIsRejected)
{
    EXPECT_DEATH(Tlb({100, 3}), "multiple of associativity");
    EXPECT_DEATH(Tlb({96, 2}), "power of two");
}

TEST(Tlb, PaperConfigurationsConstruct)
{
    for (std::uint32_t entries : {64u, 128u, 256u}) {
        for (std::uint32_t assoc : {0u, 2u, 4u}) {
            Tlb tlb({entries, assoc});
            EXPECT_EQ(tlb.config().entries, entries);
        }
    }
}

TEST(PrefetchBuffer, HitRemovesEntry)
{
    PrefetchBuffer pb(4);
    pb.insert(10, 123);
    EXPECT_TRUE(pb.contains(10));
    Tick ready = 0;
    EXPECT_TRUE(pb.hitAndPromote(10, ready));
    EXPECT_EQ(ready, 123u);
    EXPECT_FALSE(pb.contains(10));
    EXPECT_FALSE(pb.hitAndPromote(10, ready));
    EXPECT_EQ(pb.hits(), 1u);
}

TEST(PrefetchBuffer, EvictsLruWhenFull)
{
    PrefetchBuffer pb(2);
    pb.insert(1);
    pb.insert(2);
    pb.insert(3); // evicts 1
    EXPECT_FALSE(pb.contains(1));
    EXPECT_TRUE(pb.contains(2));
    EXPECT_TRUE(pb.contains(3));
    EXPECT_EQ(pb.evictedUnused(), 1u);
    EXPECT_EQ(pb.size(), 2u);
}

TEST(PrefetchBuffer, ReinsertRefreshesRecencyAndKeepsEarlierReadyTime)
{
    PrefetchBuffer pb(2);
    pb.insert(1, 100);
    pb.insert(2, 200);
    pb.insert(1, 500); // refresh: 2 becomes LRU, ready stays 100
    pb.insert(3, 300); // evicts 2
    EXPECT_TRUE(pb.contains(1));
    EXPECT_FALSE(pb.contains(2));
    Tick ready = 0;
    pb.hitAndPromote(1, ready);
    EXPECT_EQ(ready, 100u);
    // Refresh does not double-count inserts.
    EXPECT_EQ(pb.inserts(), 3u);
}

TEST(PrefetchBuffer, FlushDropsAll)
{
    PrefetchBuffer pb(4);
    pb.insert(1);
    pb.insert(2);
    pb.flush();
    EXPECT_EQ(pb.size(), 0u);
    EXPECT_FALSE(pb.contains(1));
}

TEST(PrefetchBuffer, CapacityNeverExceeded)
{
    PrefetchBuffer pb(3);
    for (Vpn v = 0; v < 100; ++v) {
        pb.insert(v);
        EXPECT_LE(pb.size(), 3u);
    }
    EXPECT_EQ(pb.evictedUnused(), 97u);
}

} // namespace
} // namespace tlbpf
