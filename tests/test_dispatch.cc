/**
 * @file
 * Tests for the distributed dispatch subsystem: the worker wire verbs
 * (strict encode/decode), the Dispatcher's lease lifecycle under
 * failure (dead worker mid-lease, expired lease discarded without
 * double-counting, heartbeats keeping a slow-but-alive worker's work,
 * worker-side errors requeueing local-only, chains granted alone and
 * merged bit-identically), the server's worker sessions (malformed
 * cell_result drops only that worker; --max-clients sheds with an
 * error frame; concurrent clients account a shared cache exactly; a
 * worker fleet produces byte-identical sweeps), and the disk-store
 * eviction sweep (TTL, LRU budget, touch-on-read recency).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <cstdlib>
#include <fcntl.h>
#include <netinet/in.h>
#include <stdexcept>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "dispatch/dispatch_protocol.hh"
#include "dispatch/dispatcher.hh"
#include "dispatch/worker.hh"
#include "run/sweep_engine.hh"
#include "service/client.hh"
#include "service/json.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "service/store_util.hh"
#include "util/check.hh"

namespace tlbpf
{
namespace
{

constexpr std::uint64_t kRefs = 20000;

/** A fresh empty directory under the test temp root. */
std::string
makeTempDir()
{
    std::string pattern = ::testing::TempDir() + "tlbpf_dsp_XXXXXX";
    std::vector<char> buf(pattern.begin(), pattern.end());
    buf.push_back('\0');
    const char *dir = ::mkdtemp(buf.data());
    EXPECT_NE(dir, nullptr);
    return dir ? dir : "";
}

/** Raw client socket, for tests that speak the wire by hand. */
OwnedFd
rawConnect(std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return OwnedFd(fd);
}

/** A grid of plain functional cells (one group per cell). */
std::vector<SweepJob>
functionalGrid(const std::vector<const char *> &apps,
               const std::vector<const char *> &mechs,
               std::uint64_t refs = kRefs)
{
    std::vector<SweepJob> jobs;
    for (const char *app : apps)
        for (const char *mech : mechs)
            jobs.push_back(SweepJob::functional(
                WorkloadSpec::app(app), MechanismSpec::parse(mech),
                refs));
    return jobs;
}

ShardPlan
singletonPlan(std::vector<SweepJob> jobs)
{
    ShardPlan plan;
    plan.groupSizes.assign(jobs.size(), 1);
    plan.jobs = std::move(jobs);
    return plan;
}

/** Register + promote a raw socket to a worker session by hand. */
WorkerWelcome
rawWorkerHello(int fd, unsigned threads = 2)
{
    WorkerHello hello;
    hello.threads = threads;
    writeFrame(fd, hello.encode());
    JsonValue message;
    std::string type;
    EXPECT_TRUE(readMessage(fd, message, type));
    EXPECT_EQ(type, "worker_welcome");
    return WorkerWelcome::decode(message);
}

/** Set a file's mtime to @p seconds_ago before now. */
void
ageFile(const std::string &path, std::uint64_t seconds_ago)
{
    timespec times[2];
    ::clock_gettime(CLOCK_REALTIME, &times[0]);
    times[0].tv_sec -= static_cast<time_t>(seconds_ago);
    times[1] = times[0];
    ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0);
}

void
writeBytes(const std::string &path, std::size_t count)
{
    std::vector<std::uint8_t> bytes(count, 0x5a);
    ASSERT_TRUE(writeFileBytesAtomic(path, bytes.data(), count));
}

bool
fileExists(const std::string &path)
{
    struct stat info;
    return ::stat(path.c_str(), &info) == 0;
}

/**
 * Heavy enough that a batch is in flight for ~100ms — plenty for the
 * lease-acquisition spin below to win against the local drain loops.
 */
constexpr std::uint64_t kSlowRefs = 1000000;

/**
 * Spin for a lease while the batch is still running.  Returns false
 * (instead of hanging) if the batch drained before a grant landed —
 * callers ASSERT on it, so a scheduling fluke fails loudly and fast.
 */
bool
leaseSoon(Dispatcher &dispatcher, std::uint64_t worker,
          LeaseGrant &out, const std::atomic<bool> &batch_done)
{
    while (!batch_done.load()) {
        if (dispatcher.lease(worker, out))
            return true;
        std::this_thread::yield();
    }
    return false;
}

// --------------------------------------------------------- wire verbs

TEST(DispatchProtocol, VerbsRoundTripExactly)
{
    WorkerHello hello;
    hello.threads = 8;
    WorkerHello hello2 =
        WorkerHello::decode(JsonValue::parse(hello.encode()));
    EXPECT_EQ(hello2.protocol, kDispatchProtocolVersion);
    EXPECT_EQ(hello2.threads, 8u);

    WorkerWelcome welcome;
    welcome.worker = 7;
    welcome.heartbeatMs = 500;
    WorkerWelcome welcome2 =
        WorkerWelcome::decode(JsonValue::parse(welcome.encode()));
    EXPECT_EQ(welcome2.worker, 7u);
    EXPECT_EQ(welcome2.heartbeatMs, 500u);

    LeaseGrant grant;
    grant.lease = 42;
    grant.chain = true;
    grant.jobs = functionalGrid({"gcc"}, {"rp", "dp"});
    LeaseGrant grant2 =
        LeaseGrant::decode(JsonValue::parse(grant.encode()));
    EXPECT_EQ(grant2.lease, 42u);
    EXPECT_TRUE(grant2.chain);
    ASSERT_EQ(grant2.jobs.size(), 2u);
    EXPECT_EQ(grant2.jobs[0].workload.label(),
              grant.jobs[0].workload.label());
    EXPECT_EQ(grant2.jobs[1].spec.canonical(),
              grant.jobs[1].spec.canonical());
    EXPECT_EQ(grant2.jobs[0].refs, kRefs);

    EXPECT_EQ(decodeLeaseRequest(
                  JsonValue::parse(encodeLeaseRequest(3))),
              3u);
    EXPECT_EQ(decodeHeartbeat(JsonValue::parse(encodeHeartbeat(9))),
              9u);
    EXPECT_EQ(JsonValue::parse(encodeLeaseIdle()).at("type").asString(),
              "lease_idle");
    EXPECT_TRUE(
        decodeResultAck(JsonValue::parse(encodeResultAck(true))));
    EXPECT_FALSE(
        decodeResultAck(JsonValue::parse(encodeResultAck(false))));

    // A completed lease's counters survive the wire bit-for-bit.
    CellResultMsg answer;
    answer.lease = 42;
    answer.results.push_back(runSweepJob(grant.jobs[0]));
    answer.results.push_back(runSweepJob(grant.jobs[1]));
    CellResultMsg answer2 =
        CellResultMsg::decode(JsonValue::parse(answer.encode()));
    EXPECT_FALSE(answer2.failed());
    ASSERT_EQ(answer2.results.size(), 2u);
    EXPECT_EQ(answer2.results[0].functional,
              answer.results[0].functional);
    EXPECT_EQ(answer2.results[1].functional,
              answer.results[1].functional);

    CellResultMsg failure;
    failure.lease = 42;
    failure.error = "no such trace";
    CellResultMsg failure2 =
        CellResultMsg::decode(JsonValue::parse(failure.encode()));
    EXPECT_TRUE(failure2.failed());
    EXPECT_EQ(failure2.error, "no such trace");
}

TEST(DispatchProtocol, RejectsMalformedVerbs)
{
    for (const char *bad : {
             // Wrong protocol version.
             "{\"type\":\"worker_hello\",\"protocol\":2,"
             "\"threads\":1}",
             // Unknown key (strictness contract).
             "{\"type\":\"worker_hello\",\"protocol\":1,"
             "\"threads\":1,\"x\":1}",
             // Zero threads.
             "{\"type\":\"worker_hello\",\"protocol\":1,"
             "\"threads\":0}",
         })
        EXPECT_THROW(
            WorkerHello::decode(JsonValue::parse(bad)),
            std::invalid_argument)
            << "input: " << bad;

    // A grant must carry at least one job.
    EXPECT_THROW(LeaseGrant::decode(JsonValue::parse(
                     "{\"type\":\"lease_grant\",\"lease\":1,"
                     "\"chain\":false,\"jobs\":[]}")),
                 std::invalid_argument);

    // A cell_result is a success XOR an error, never both or neither.
    for (const char *bad : {
             "{\"type\":\"cell_result\",\"lease\":1}",
             "{\"type\":\"cell_result\",\"lease\":1,"
             "\"results\":[]}",
             "{\"type\":\"cell_result\",\"lease\":1,\"error\":\"\"}",
         })
        EXPECT_THROW(
            CellResultMsg::decode(JsonValue::parse(bad)),
            std::invalid_argument)
            << "input: " << bad;
}

// --------------------------------------------- dispatcher lease cycle

TEST(Dispatcher, DeadWorkerMidLeaseIsReclaimedAndBatchCompletes)
{
    SweepEngine engine(2);
    DispatcherOptions options;
    options.leaseTimeoutMs = 60000; // only the death path reclaims
    Dispatcher dispatcher(engine, options);

    std::vector<SweepJob> jobs = functionalGrid(
        {"gcc", "mcf", "swim", "art"}, {"rp", "dp"}, kSlowRefs);
    ShardPlan plan = singletonPlan(jobs);

    std::uint64_t worker = dispatcher.registerWorker(2);
    std::atomic<bool> batch_done{false};
    std::vector<std::size_t> order;
    std::vector<SweepResult> results;
    std::thread batch([&] {
        results = dispatcher.runBatch(
            plan, ShardWarmup::Replay, PassMode::PerMechanism,
            [&](std::size_t i, const SweepResult &) {
                order.push_back(i);
            });
        batch_done.store(true);
    });

    // Take a lease, then die without answering it.
    LeaseGrant grant;
    ASSERT_TRUE(leaseSoon(dispatcher, worker, grant, batch_done));
    EXPECT_GT(grant.jobs.size(), 0u);
    dispatcher.unregisterWorker(worker);
    batch.join();

    // The batch completed locally, every cell exactly once, in
    // submission order, bit-identical to a plain engine run.
    ASSERT_EQ(order.size(), jobs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
    std::vector<SweepResult> direct = engine.run(jobs);
    ASSERT_EQ(results.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(results[i].functional, direct[i].functional)
            << "cell " << i;
    EXPECT_GE(dispatcher.counters().leaseReclaims, 1u);

    // A result for the dead worker's lease is discarded, not applied.
    EXPECT_FALSE(dispatcher.completeLease(grant.lease, {}));
    EXPECT_EQ(dispatcher.lastBatchStats().remoteCells, 0u);
}

TEST(Dispatcher, ExpiredLeaseResultIsDiscardedNotDoubleCounted)
{
    SweepEngine engine(2);
    DispatcherOptions options;
    options.leaseTimeoutMs = 150; // expire fast; never heartbeat
    Dispatcher dispatcher(engine, options);

    std::vector<SweepJob> jobs =
        functionalGrid({"gcc", "mcf"}, {"rp", "dp"}, kSlowRefs);
    ShardPlan plan = singletonPlan(jobs);

    std::uint64_t worker = dispatcher.registerWorker(1);
    std::atomic<bool> batch_done{false};
    std::atomic<std::uint64_t> streamed{0};
    std::vector<SweepResult> results;
    std::thread batch([&] {
        results = dispatcher.runBatch(
            plan, ShardWarmup::Replay, PassMode::PerMechanism,
            [&](std::size_t, const SweepResult &) {
                streamed.fetch_add(1);
            });
        batch_done.store(true);
    });

    LeaseGrant grant;
    ASSERT_TRUE(leaseSoon(dispatcher, worker, grant, batch_done));
    // Sit on the lease past its deadline: a local drain loop reclaims
    // it and the batch finishes without us.
    batch.join();
    EXPECT_GE(dispatcher.counters().leaseReclaims, 1u);

    // The late result must be discarded — its cells were already
    // emitted once by the reclaim path.
    std::vector<SweepResult> late(grant.jobs.size());
    EXPECT_FALSE(dispatcher.completeLease(grant.lease,
                                          std::move(late)));
    EXPECT_EQ(streamed.load(), jobs.size()); // exactly once each

    std::vector<SweepResult> direct = engine.run(jobs);
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(results[i].functional, direct[i].functional);
    dispatcher.unregisterWorker(worker);
}

/**
 * The OrderedEmitter sits between the dispatcher and the caller's
 * callback: results may complete in any order, but delivery is
 * submission order, and the TLBPF_DCHECK layer guards the two ways
 * that contract can rot — double completion and range overrun.
 */
TEST(OrderedEmitter, DeliversSubmissionOrderAcrossAnyCompletionOrder)
{
    std::vector<SweepResult> results(4);
    std::vector<std::size_t> order;
    SweepEngine::ResultCallback cb =
        [&](std::size_t i, const SweepResult &) {
            order.push_back(i);
        };
    OrderedEmitter emitter(cb, results);
    emitter.complete(2, 1);
    emitter.complete(3, 1);
    EXPECT_TRUE(order.empty()); // slot 0 still pending
    emitter.complete(0, 1);
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], 0u);
    emitter.complete(1, 1); // releases the whole held-back tail
    ASSERT_EQ(order.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(OrderedEmitter, DoubleCompletionTripsTheInvariant)
{
    if (!dchecksEnabled())
        GTEST_SKIP() << "TLBPF_DCHECK is compiled out of this build";
    ScopedCheckFailThrow guard;
    std::vector<SweepResult> results(3);
    SweepEngine::ResultCallback cb;
    OrderedEmitter emitter(cb, results);
    emitter.complete(1, 1);
    // Completing the same slot again is the double-accounting the
    // dispatcher's lease-discard path exists to prevent.
    EXPECT_THROW(emitter.complete(1, 1), CheckFailure);
    // Overlap through a range hits the same wall.
    EXPECT_THROW(emitter.complete(0, 2), CheckFailure);
}

TEST(OrderedEmitter, CompletionBeyondTheBatchTripsTheInvariant)
{
    if (!dchecksEnabled())
        GTEST_SKIP() << "TLBPF_DCHECK is compiled out of this build";
    ScopedCheckFailThrow guard;
    std::vector<SweepResult> results(4);
    SweepEngine::ResultCallback cb;
    OrderedEmitter emitter(cb, results);
    EXPECT_THROW(emitter.complete(3, 2), CheckFailure);
    EXPECT_THROW(emitter.complete(5, 0), CheckFailure);
    emitter.complete(3, 1); // the in-range suffix is still fine
}

/**
 * A result for a reclaimed lease must take the graceful discard path
 * (completeLease == false) and never reach the emitter — whose
 * double-completion DCHECK stays armed throughout to prove it.  The
 * wrong-size payload on a live lease is the protocol-level rejection
 * (invalid_argument), not an invariant failure.
 */
TEST(Dispatcher, ReclaimedLeaseCompletionIsDiscardedNotDoubleEmitted)
{
    ScopedCheckFailThrow guard; // any stray DCHECK becomes a throw
    SweepEngine engine(2);
    DispatcherOptions options;
    options.leaseTimeoutMs = 150; // expire fast; never heartbeat
    Dispatcher dispatcher(engine, options);

    std::vector<SweepJob> jobs =
        functionalGrid({"gcc", "mcf"}, {"rp", "dp"}, kSlowRefs);
    ShardPlan plan = singletonPlan(jobs);

    std::uint64_t worker = dispatcher.registerWorker(1);
    std::atomic<bool> batch_done{false};
    std::atomic<std::uint64_t> streamed{0};
    std::thread batch([&] {
        (void)dispatcher.runBatch(
            plan, ShardWarmup::Replay, PassMode::PerMechanism,
            [&](std::size_t, const SweepResult &) {
                streamed.fetch_add(1);
            });
        batch_done.store(true);
    });

    LeaseGrant grant;
    ASSERT_TRUE(leaseSoon(dispatcher, worker, grant, batch_done));
    batch.join(); // the deadline passes; the batch drains locally
    EXPECT_GE(dispatcher.counters().leaseReclaims, 1u);

    // A correctly-shaped payload for the reclaimed lease: discarded,
    // and the emitter (already fully completed once) never sees it.
    std::vector<SweepResult> late(grant.jobs.size());
    EXPECT_FALSE(
        dispatcher.completeLease(grant.lease, std::move(late)));
    EXPECT_EQ(streamed.load(), jobs.size());
    dispatcher.unregisterWorker(worker);
}

TEST(Dispatcher, WrongSizedPayloadOnALiveLeaseIsRejected)
{
    SweepEngine engine(2);
    DispatcherOptions options;
    options.leaseTimeoutMs = 60000; // stays live for the whole test
    Dispatcher dispatcher(engine, options);

    std::vector<SweepJob> jobs =
        functionalGrid({"gcc", "mcf"}, {"rp", "dp"}, kSlowRefs);
    ShardPlan plan = singletonPlan(jobs);

    std::uint64_t worker = dispatcher.registerWorker(1);
    std::atomic<bool> batch_done{false};
    std::thread batch([&] {
        (void)dispatcher.runBatch(
            plan, ShardWarmup::Replay, PassMode::PerMechanism,
            SweepEngine::ResultCallback());
        batch_done.store(true);
    });

    LeaseGrant grant;
    ASSERT_TRUE(leaseSoon(dispatcher, worker, grant, batch_done));
    std::vector<SweepResult> short_payload(grant.jobs.size() - 1);
    EXPECT_THROW(
        dispatcher.completeLease(grant.lease,
                                 std::move(short_payload)),
        std::invalid_argument);
    // The lease is still live after the rejection; the real payload
    // completes it normally.
    std::vector<SweepResult> payload(grant.jobs.size());
    EXPECT_TRUE(
        dispatcher.completeLease(grant.lease, std::move(payload)));
    batch.join();
    dispatcher.unregisterWorker(worker);
}

TEST(Dispatcher, HeartbeatKeepsASlowButAliveWorkersLease)
{
    SweepEngine engine(1);
    DispatcherOptions options;
    options.leaseTimeoutMs = 250;
    Dispatcher dispatcher(engine, options);

    std::vector<SweepJob> jobs =
        functionalGrid({"gcc", "mcf"}, {"rp", "dp"}, kSlowRefs);
    ShardPlan plan = singletonPlan(jobs);

    std::uint64_t worker = dispatcher.registerWorker(2);
    std::atomic<bool> batch_done{false};
    std::vector<SweepResult> results;
    std::thread batch([&] {
        results = dispatcher.runBatch(
            plan, ShardWarmup::Replay, PassMode::PerMechanism,
            [](std::size_t, const SweepResult &) {});
        batch_done.store(true);
    });

    LeaseGrant grant;
    ASSERT_TRUE(leaseSoon(dispatcher, worker, grant, batch_done));

    // Hold the lease well past two full timeout windows, heartbeating
    // the whole way: the dispatcher must NOT reclaim it.  The pulse
    // keeps running through the compute below, as a real worker's
    // heartbeat thread does (compute alone can outlast the timeout on
    // instrumented builds).
    std::atomic<bool> hold_done{false};
    std::thread pulse([&] {
        while (!hold_done.load()) {
            dispatcher.heartbeat(worker);
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    std::vector<SweepResult> computed;
    for (const SweepJob &job : grant.jobs)
        computed.push_back(runSweepJob(job));
    EXPECT_TRUE(
        dispatcher.completeLease(grant.lease, std::move(computed)));
    hold_done.store(true);
    pulse.join();
    batch.join();

    EXPECT_EQ(dispatcher.counters().leaseReclaims, 0u);
    Dispatcher::BatchStats stats = dispatcher.lastBatchStats();
    EXPECT_EQ(stats.remoteCells, grant.jobs.size());
    EXPECT_EQ(stats.cells, jobs.size());
    double busy = 0;
    for (const auto &entry : stats.workerBusy)
        if (entry.first == worker)
            busy = entry.second;
    EXPECT_GT(busy, 0.4); // it held the lease for >= 600ms

    std::vector<SweepResult> direct = engine.run(jobs);
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(results[i].functional, direct[i].functional);
    dispatcher.unregisterWorker(worker);
}

TEST(Dispatcher, FailedLeaseRerunsLocallyOnly)
{
    SweepEngine engine(2);
    DispatcherOptions options;
    options.leaseTimeoutMs = 60000;
    Dispatcher dispatcher(engine, options);

    std::vector<SweepJob> jobs =
        functionalGrid({"gcc", "mcf"}, {"rp", "dp"}, kSlowRefs);
    ShardPlan plan = singletonPlan(jobs);

    std::uint64_t worker = dispatcher.registerWorker(1);
    std::atomic<bool> batch_done{false};
    std::vector<SweepResult> results;
    std::thread batch([&] {
        results = dispatcher.runBatch(
            plan, ShardWarmup::Replay, PassMode::PerMechanism,
            [](std::size_t, const SweepResult &) {});
        batch_done.store(true);
    });

    LeaseGrant grant;
    ASSERT_TRUE(leaseSoon(dispatcher, worker, grant, batch_done));
    dispatcher.failLease(grant.lease); // "I cannot run these cells"
    batch.join();

    EXPECT_EQ(dispatcher.counters().remoteFailures, 1u);
    EXPECT_EQ(dispatcher.lastBatchStats().remoteCells, 0u);
    std::vector<SweepResult> direct = engine.run(jobs);
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(results[i].functional, direct[i].functional);
    dispatcher.unregisterWorker(worker);
}

TEST(Dispatcher, ChainIsGrantedAloneAndMergesBitIdentically)
{
    SweepEngine engine(1);
    DispatcherOptions options;
    options.leaseTimeoutMs = 60000;
    Dispatcher dispatcher(engine, options);

    std::vector<SweepJob> jobs =
        functionalGrid({"gcc", "mcf"}, {"rp"}, kSlowRefs);
    ShardPlan plan = expandShards(jobs, 4);

    std::uint64_t worker = dispatcher.registerWorker(8);
    std::atomic<bool> batch_done{false};
    std::vector<SweepResult> results;
    std::thread batch([&] {
        results = dispatcher.runBatch(
            plan, ShardWarmup::Replay, PassMode::PerMechanism,
            [](std::size_t, const SweepResult &) {});
        batch_done.store(true);
    });

    LeaseGrant grant;
    ASSERT_TRUE(leaseSoon(dispatcher, worker, grant, batch_done));
    // However wide the worker claims to be, a chain travels alone:
    // its shards depend on each other's boundary state.
    EXPECT_TRUE(grant.chain);
    EXPECT_EQ(grant.jobs.size(), 4u);

    // Run the shards sequentially (replay warm-up), like the worker
    // binary does; the dispatcher folds the windows back into the
    // pre-expansion cell.
    std::vector<SweepResult> computed;
    for (const SweepJob &job : grant.jobs)
        computed.push_back(runSweepJob(job));
    EXPECT_TRUE(
        dispatcher.completeLease(grant.lease, std::move(computed)));
    batch.join();

    std::vector<SweepResult> direct = engine.run(jobs);
    ASSERT_EQ(results.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(results[i].functional, direct[i].functional)
            << "cell " << i;
    dispatcher.unregisterWorker(worker);
}

// ------------------------------------------------ server worker verbs

TEST(DispatchServer, MalformedCellResultDropsOnlyThatWorker)
{
    ServerOptions options;
    options.port = 0;
    options.threads = 1;
    SweepServer server(options);
    std::thread serving([&] { server.serve(); });

    OwnedFd sick = rawConnect(server.port());
    OwnedFd healthy = rawConnect(server.port());
    WorkerWelcome sick_id = rawWorkerHello(sick.fd());
    WorkerWelcome healthy_id = rawWorkerHello(healthy.fd());
    EXPECT_NE(sick_id.worker, healthy_id.worker);

    // An empty results array is a protocol violation: the server
    // answers with an error frame and drops that session.
    writeFrame(sick.fd(), "{\"type\":\"cell_result\",\"lease\":1,"
                          "\"results\":[]}");
    JsonValue message;
    std::string type;
    ASSERT_TRUE(readMessage(sick.fd(), message, type));
    EXPECT_EQ(type, "error");
    std::string payload;
    EXPECT_FALSE(readFrame(sick.fd(), payload)); // connection closed

    // The other worker's session is untouched; so are clients.
    writeFrame(healthy.fd(),
               encodeLeaseRequest(healthy_id.worker));
    ASSERT_TRUE(readMessage(healthy.fd(), message, type));
    EXPECT_EQ(type, "lease_idle");
    ServiceClient("127.0.0.1", server.port()).ping();

    // The sick worker was unregistered (poll: teardown is async).
    StatsReply stats;
    for (int i = 0; i < 200; ++i) {
        stats = ServiceClient("127.0.0.1", server.port()).stats();
        if (stats.workers == 1)
            break;
        ::usleep(10 * 1000);
    }
    EXPECT_EQ(stats.workers, 1u);

    healthy.close();
    ServiceClient("127.0.0.1", server.port()).shutdown();
    serving.join();
}

TEST(DispatchServer, MaxClientsShedsWithAnErrorFrame)
{
    ServerOptions options;
    options.port = 0;
    options.threads = 1;
    options.maxClients = 2;
    SweepServer server(options);
    std::thread serving([&] { server.serve(); });

    // Two idle sessions fill the table; the third is shed with an
    // explanation instead of queueing silently in the backlog.
    OwnedFd first = rawConnect(server.port());
    OwnedFd second = rawConnect(server.port());
    writeFrame(first.fd(), "{\"type\":\"ping\"}");
    writeFrame(second.fd(), "{\"type\":\"ping\"}");
    JsonValue message;
    std::string type;
    ASSERT_TRUE(readMessage(first.fd(), message, type));
    ASSERT_TRUE(readMessage(second.fd(), message, type));

    OwnedFd third = rawConnect(server.port());
    ASSERT_TRUE(readMessage(third.fd(), message, type));
    EXPECT_EQ(type, "error");
    EXPECT_NE(message.at("message").asString().find("capacity"),
              std::string::npos);
    third.close();

    // Freeing a slot lets the next connection through (the accept
    // loop reaps finished sessions on its poll tick).
    first.close();
    second.close();
    for (int i = 0; i < 200; ++i) {
        try {
            ServiceClient("127.0.0.1", server.port()).ping();
            break;
        } catch (const std::exception &) {
            ::usleep(20 * 1000);
        }
    }
    ServiceClient("127.0.0.1", server.port()).shutdown();
    serving.join();
}

TEST(DispatchServer, ConcurrentClientsAccountASharedCacheExactly)
{
    ServerOptions options;
    options.port = 0;
    options.threads = 2;
    SweepServer server(options);
    std::thread serving([&] { server.serve(); });

    // Overlapping grids, submitted concurrently: the batch mutex
    // makes lookup+run+fill atomic per batch, so whichever runs
    // second hits exactly the overlap (app:mcf x rp).
    SweepRequest one;
    one.workloads = {"app:gcc", "app:mcf"};
    one.mechanisms = {"rp"};
    one.refs = kRefs;
    SweepRequest two;
    two.workloads = {"app:mcf", "app:swim"};
    two.mechanisms = {"rp"};
    two.refs = kRefs;

    ServiceClient::SweepOutcome out1, out2;
    std::thread client1([&] {
        out1 = ServiceClient("127.0.0.1", server.port()).sweep(one);
    });
    std::thread client2([&] {
        out2 = ServiceClient("127.0.0.1", server.port()).sweep(two);
    });
    client1.join();
    client2.join();

    EXPECT_EQ(out1.done.cells, 2u);
    EXPECT_EQ(out2.done.cells, 2u);
    StatsReply stats =
        ServiceClient("127.0.0.1", server.port()).stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.cells, 4u);
    EXPECT_EQ(stats.cacheMisses, 3u); // the three unique cells
    EXPECT_EQ(stats.cacheHits, 1u);   // the shared one, second batch

    // Both clients' results are bit-identical to direct runs.
    SweepEngine local(2);
    std::vector<SweepResult> direct1 = local.run(
        SweepRequest::decode(JsonValue::parse(one.encode())).expand());
    std::vector<SweepResult> direct2 = local.run(
        SweepRequest::decode(JsonValue::parse(two.encode())).expand());
    for (std::size_t i = 0; i < direct1.size(); ++i)
        EXPECT_EQ(out1.results[i].functional, direct1[i].functional);
    for (std::size_t i = 0; i < direct2.size(); ++i)
        EXPECT_EQ(out2.results[i].functional, direct2[i].functional);

    ServiceClient("127.0.0.1", server.port()).shutdown();
    serving.join();
}

TEST(DispatchServer, WorkerFleetSweepIsByteIdenticalToLocal)
{
    SweepRequest request;
    request.workloads = {"app:gcc", "app:mcf", "app:art"};
    request.mechanisms = {"rp", "dp"};
    request.refs = kRefs;
    request.shards = 2;

    // Baseline: a 0-worker server.
    ServerOptions base_options;
    base_options.port = 0;
    base_options.threads = 2;
    base_options.cacheDir = makeTempDir();
    SweepServer base(base_options);
    std::thread base_serving([&] { base.serve(); });
    ServiceClient::SweepOutcome plain =
        ServiceClient("127.0.0.1", base.port()).sweep(request);
    ServiceClient("127.0.0.1", base.port()).shutdown();
    base_serving.join();

    // The same sweep through a server with a two-worker fleet.
    ServerOptions fleet_options = base_options;
    fleet_options.cacheDir = makeTempDir();
    SweepServer fleet(fleet_options);
    std::thread fleet_serving([&] { fleet.serve(); });

    DispatchWorkerOptions worker_options;
    worker_options.port = fleet.port();
    worker_options.threads = 2;
    worker_options.cacheDir = fleet_options.cacheDir;
    worker_options.idlePollMs = 1;
    DispatchWorker worker1(worker_options), worker2(worker_options);
    std::thread pulling1([&] { worker1.run(); });
    std::thread pulling2([&] { worker2.run(); });
    StatsReply stats;
    for (int i = 0; i < 500 && stats.workers != 2; ++i) {
        stats = ServiceClient("127.0.0.1", fleet.port()).stats();
        ::usleep(5 * 1000);
    }
    ASSERT_EQ(stats.workers, 2u);

    ServiceClient::SweepOutcome fanned =
        ServiceClient("127.0.0.1", fleet.port()).sweep(request);

    worker1.requestStop();
    worker2.requestStop();
    pulling1.join();
    pulling2.join();
    ServiceClient("127.0.0.1", fleet.port()).shutdown();
    fleet_serving.join();

    // Byte-identity is the dispatch contract: same cells, same
    // counters, same order, whoever simulated them.
    ASSERT_EQ(fanned.results.size(), plain.results.size());
    for (std::size_t i = 0; i < plain.results.size(); ++i) {
        EXPECT_EQ(fanned.results[i].functional,
                  plain.results[i].functional)
            << "cell " << i;
        EXPECT_EQ(fanned.results[i].workload,
                  plain.results[i].workload);
        EXPECT_EQ(fanned.results[i].mechanism,
                  plain.results[i].mechanism);
    }
}

TEST(DispatchServer, WorkerVanishingMidLeaseNeverLosesTheBatch)
{
    ServerOptions options;
    options.port = 0;
    options.threads = 1; // slow server: the worker gets its grant
    SweepServer server(options);
    std::thread serving([&] { server.serve(); });

    SweepRequest request;
    request.workloads = {"app:gcc", "app:mcf", "app:swim", "app:art"};
    request.mechanisms = {"rp", "dp"};
    request.refs = 60000;

    std::atomic<bool> sweep_done{false};
    std::atomic<bool> got_grant{false};
    // A worker that takes one lease and dies without answering it.
    std::thread deserter([&] {
        OwnedFd fd = rawConnect(server.port());
        WorkerWelcome welcome = rawWorkerHello(fd.fd());
        JsonValue message;
        std::string type;
        while (!sweep_done.load()) {
            writeFrame(fd.fd(), encodeLeaseRequest(welcome.worker));
            if (!readMessage(fd.fd(), message, type))
                return;
            if (type == "lease_grant") {
                got_grant.store(true);
                return; // vanish with the lease — an abrupt close
            }
            ::usleep(2 * 1000);
        }
    });

    ServiceClient::SweepOutcome out =
        ServiceClient("127.0.0.1", server.port()).sweep(request);
    sweep_done.store(true);
    deserter.join();

    EXPECT_EQ(out.done.cells, 8u);
    SweepEngine local(1);
    std::vector<SweepResult> direct = local.run(
        SweepRequest::decode(JsonValue::parse(request.encode()))
            .expand());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(out.results[i].functional, direct[i].functional)
            << "cell " << i;

    StatsReply stats =
        ServiceClient("127.0.0.1", server.port()).stats();
    if (got_grant.load()) {
        EXPECT_GE(stats.leaseReclaims, 1u);
    }
    ServiceClient("127.0.0.1", server.port()).shutdown();
    serving.join();
}

// ------------------------------------------------ disk-store eviction

TEST(StoreEviction, TtlSweepRemovesOnlyStaleFiles)
{
    std::string dir = makeTempDir();
    writeBytes(dir + "/old", 100);
    writeBytes(dir + "/fresh", 100);
    ageFile(dir + "/old", 3600);

    EvictStats swept = evictStaleStoreFiles({dir}, 0, 600);
    EXPECT_EQ(swept.files, 1u);
    EXPECT_EQ(swept.bytes, 100u);
    EXPECT_FALSE(fileExists(dir + "/old"));
    EXPECT_TRUE(fileExists(dir + "/fresh"));
}

TEST(StoreEviction, BudgetSweepIsOldestFirstAcrossDirsTogether)
{
    // The budget is shared across the cell and checkpoint stores, so
    // the sweep must interleave both by age, not clear one dir first.
    std::string cells = makeTempDir();
    std::string checkpoints = makeTempDir();
    writeBytes(cells + "/a", 400);
    writeBytes(checkpoints + "/b", 400);
    writeBytes(cells + "/c", 400);
    writeBytes(checkpoints + "/d", 400);
    ageFile(cells + "/a", 400);
    ageFile(checkpoints + "/b", 300);
    ageFile(cells + "/c", 200);
    ageFile(checkpoints + "/d", 100);

    EvictStats swept =
        evictStaleStoreFiles({cells, checkpoints}, 800, 0);
    EXPECT_EQ(swept.files, 2u);
    EXPECT_EQ(swept.bytes, 800u);
    EXPECT_FALSE(fileExists(cells + "/a"));      // oldest
    EXPECT_FALSE(fileExists(checkpoints + "/b")); // second oldest
    EXPECT_TRUE(fileExists(cells + "/c"));
    EXPECT_TRUE(fileExists(checkpoints + "/d"));
}

TEST(StoreEviction, SkipsInFlightTempFilesAndHonoursTouch)
{
    std::string dir = makeTempDir();
    // A writer's in-flight temp file must never be swept out from
    // under its rename.
    writeBytes(dir + "/.tmp.partial", 4096);
    ageFile(dir + "/.tmp.partial", 7200);
    // touchFile() is what the stores call on a disk read: it makes an
    // old entry young again, so the LRU keeps hot entries resident.
    writeBytes(dir + "/read-recently", 100);
    ageFile(dir + "/read-recently", 7200);
    touchFile(dir + "/read-recently");

    EvictStats swept = evictStaleStoreFiles({dir}, 0, 600);
    EXPECT_EQ(swept.files, 0u);
    EXPECT_TRUE(fileExists(dir + "/.tmp.partial"));
    EXPECT_TRUE(fileExists(dir + "/read-recently"));
}

TEST(StoreEviction, ServerEnforcesTheBudgetAroundSweeps)
{
    ServerOptions options;
    options.port = 0;
    options.threads = 2;
    options.cacheDir = makeTempDir();
    options.storeMaxBytes = 1; // evict (almost) everything, always
    SweepServer server(options);
    std::thread serving([&] { server.serve(); });

    SweepRequest request;
    request.workloads = {"app:gcc"};
    request.mechanisms = {"rp", "dp"};
    request.refs = kRefs;
    ServiceClient("127.0.0.1", server.port()).sweep(request);

    StatsReply stats =
        ServiceClient("127.0.0.1", server.port()).stats();
    EXPECT_GT(stats.storeEvictedFiles, 0u);
    EXPECT_GT(stats.storeEvictedBytes, 0u);

    // In-memory entries still answer; only the disk copies went.
    ServiceClient::SweepOutcome again =
        ServiceClient("127.0.0.1", server.port()).sweep(request);
    EXPECT_EQ(again.done.cacheHits, 2u);

    ServiceClient("127.0.0.1", server.port()).shutdown();
    serving.join();
}

} // namespace
} // namespace tlbpf
