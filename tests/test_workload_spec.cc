/**
 * @file
 * Unit tests for WorkloadSpec: the parse()/label() round-trip,
 * malformed-spec rejection, stream building for app/trace/mix
 * workloads, shard windows, and the bit-identity of sharded-and-
 * merged counters against the unsharded run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "run/sweep_engine.hh"
#include "sim/experiment.hh"
#include "trace/trace_file.hh"
#include "workload/app_registry.hh"
#include "workload/workload_spec.hh"

#ifndef TLBPF_TEST_DATA_DIR
#error "tests must be compiled with TLBPF_TEST_DATA_DIR"
#endif

namespace tlbpf
{
namespace
{

const std::string kSampleTrace =
    std::string(TLBPF_TEST_DATA_DIR) + "/sample.tpf";

TEST(WorkloadSpecParse, BareNameIsAnApp)
{
    WorkloadSpec spec = WorkloadSpec::parse("mcf");
    EXPECT_EQ(spec.kind, WorkloadSpec::Kind::App);
    EXPECT_EQ(spec.appName, "mcf");
    EXPECT_FALSE(spec.sharded());
    EXPECT_EQ(spec.label(), "mcf");
}

TEST(WorkloadSpecParse, AppPrefixIsSugarForBareName)
{
    EXPECT_EQ(WorkloadSpec::parse("app:mcf"), WorkloadSpec::parse("mcf"));
    // The canonical form drops the app: prefix.
    EXPECT_EQ(WorkloadSpec::parse("app:mcf").label(), "mcf");
}

/**
 * Regression from fuzz_spec (the committed crashing input lives in
 * tests/data/fuzz_regressions/): 'app:app:m=2w)' used to parse as an
 * app literally named "app:m=2w)", whose label re-parsed as the app
 * "m=2w)" — one experiment, two result-cache identities.  App names
 * may not contain the scheme separator.
 */
TEST(WorkloadSpecParse, FuzzRegressionAppNamesWithColonsAreRejected)
{
    std::string input;
    {
        std::FILE *f = std::fopen(
            (std::string(TLBPF_TEST_DATA_DIR) +
             "/fuzz_regressions/spec_app_colon_label_roundtrip.txt")
                .c_str(),
            "rb");
        ASSERT_NE(f, nullptr);
        int c;
        while ((c = std::fgetc(f)) != EOF)
            input.push_back(static_cast<char>(c));
        std::fclose(f);
    }
    ASSERT_FALSE(input.empty());
    EXPECT_THROW(WorkloadSpec::parse(input), std::invalid_argument);
    EXPECT_THROW(WorkloadSpec::parse("app:app:mcf"),
                 std::invalid_argument);
    // The legitimate spellings still parse, with stable labels.
    EXPECT_EQ(WorkloadSpec::parse("app:mcf").label(), "mcf");
    // (the quantum canonicalizes to "5k"; the label must be a fixed
    // point of parse → label)
    const std::string canonical =
        WorkloadSpec::parse("mix:mcf+trace:x.tpf@5000").label();
    EXPECT_EQ(canonical, "mix:mcf+trace:x.tpf@5k");
    EXPECT_EQ(WorkloadSpec::parse(canonical).label(), canonical);
}

TEST(WorkloadSpecParse, TraceSpec)
{
    WorkloadSpec spec = WorkloadSpec::parse("trace:path/to/run.tpf");
    EXPECT_EQ(spec.kind, WorkloadSpec::Kind::Trace);
    EXPECT_EQ(spec.tracePath, "path/to/run.tpf");
    EXPECT_EQ(spec.label(), "trace:path/to/run.tpf");
}

TEST(WorkloadSpecParse, MixSpecWithQuantumSuffixes)
{
    WorkloadSpec spec = WorkloadSpec::parse("mix:mcf+gcc@100k");
    EXPECT_EQ(spec.kind, WorkloadSpec::Kind::Mix);
    ASSERT_EQ(spec.parts.size(), 2u);
    EXPECT_EQ(spec.parts[0].appName, "mcf");
    EXPECT_EQ(spec.parts[1].appName, "gcc");
    EXPECT_EQ(spec.quantum, 100000u);

    EXPECT_EQ(WorkloadSpec::parse("mix:a+b@2m").quantum, 2000000u);
    EXPECT_EQ(WorkloadSpec::parse("mix:a+b@1234").quantum, 1234u);
    WorkloadSpec with_trace =
        WorkloadSpec::parse("mix:mcf+trace:x.tpf@5000");
    EXPECT_EQ(with_trace.parts[1].kind, WorkloadSpec::Kind::Trace);
}

TEST(WorkloadSpecParse, ShardSuffix)
{
    WorkloadSpec spec = WorkloadSpec::parse("mcf#2/8");
    EXPECT_TRUE(spec.sharded());
    EXPECT_EQ(spec.shardIndex, 2u);
    EXPECT_EQ(spec.shardCount, 8u);
    EXPECT_EQ(spec.base(), WorkloadSpec::app("mcf"));
}

TEST(WorkloadSpecParse, LabelRoundTrips)
{
    for (const char *text : {
             "mcf",
             "trace:/tmp/a.tpf",
             "mix:mcf+gcc@100k",
             "mix:mcf+gcc+swim@2m",
             "mix:mcf+trace:x.tpf@1234",
             "mcf#0/4",
             "trace:/tmp/a.tpf#3/7",
             "mix:mcf+gcc@100k#2/8",
         }) {
        WorkloadSpec spec = WorkloadSpec::parse(text);
        EXPECT_EQ(spec.label(), text) << text;
        EXPECT_EQ(WorkloadSpec::parse(spec.label()), spec) << text;
    }
}

TEST(WorkloadSpecParse, MalformedSpecsThrow)
{
    for (const char *text : {
             "",                     // empty
             "app:",                 // app with no name
             "trace:",               // trace with no path
             "foo:bar",              // unknown scheme prefix
             "mix:@100k",            // zero apps
             "mix:mcf@100k",         // one app is not a mix
             "mix:mcf+gcc",          // missing quantum
             "mix:mcf+gcc@",         // empty quantum
             "mix:mcf+gcc@0",        // zero quantum
             "mix:mcf+gcc@12q",      // bad suffix
             "mix:mcf+gcc@k",        // suffix without digits
             "mix:a+mix:b+c@5@9",    // nested mix
             "mcf#5/3",              // shard index out of range
             "mcf#3/3",              // shard index == count
             "mcf#/4",               // missing index
             "mcf#1/",               // missing count
             "mcf#x/y",              // non-numeric shard
             "mcf#2",                // no slash
             "#1/2",                 // shard of nothing
             "mix:mcf+gcc#0/2@5k",   // shard inside the part list
         }) {
        EXPECT_THROW(WorkloadSpec::parse(text), std::invalid_argument)
            << "'" << text << "' should not parse";
    }
}

TEST(WorkloadSpecBuild, UnknownAppThrows)
{
    EXPECT_THROW(WorkloadSpec::app("no-such-app").build(1000),
                 std::invalid_argument);
    EXPECT_THROW(
        WorkloadSpec::parse("mix:mcf+no-such-app@1k").build(1000),
        std::invalid_argument);
}

TEST(WorkloadSpecBuild, MissingOrInvalidTraceThrows)
{
    EXPECT_THROW(
        WorkloadSpec::trace("/nonexistent/trace.tpf").build(1000),
        std::invalid_argument);

    std::string bogus = ::testing::TempDir() + "bogus.tpf";
    std::FILE *f = std::fopen(bogus.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOT A TRACE", f);
    std::fclose(f);
    EXPECT_THROW(WorkloadSpec::trace(bogus).build(1000),
                 std::invalid_argument);
    std::remove(bogus.c_str());
}

TEST(WorkloadSpecBuild, ZeroRefsThrows)
{
    EXPECT_THROW(WorkloadSpec::app("mcf").build(0),
                 std::invalid_argument);
}

TEST(WorkloadSpecBuild, TraceStreamReplaysTheSample)
{
    auto stream = WorkloadSpec::trace(kSampleTrace).build(1000000);
    auto refs = collect(*stream);
    TraceReader direct(kSampleTrace);
    EXPECT_EQ(refs.size(), direct.count());
    EXPECT_GT(refs.size(), 100u);
}

TEST(WorkloadSpecBuild, MixInterleavesDisjointAddressSpaces)
{
    auto spec = WorkloadSpec::parse("mix:mcf+gcc@50");
    auto stream = spec.build(2000);
    auto refs = collect(*stream);
    ASSERT_EQ(refs.size(), 2000u);

    bool saw_low = false;
    bool saw_high = false;
    std::uint64_t prev_icount = 0;
    for (const MemRef &ref : refs) {
        if (ref.vaddr < kMixAddressStride)
            saw_low = true;
        else
            saw_high = true;
        // The global instruction counter must be monotone even
        // though each part carries its own icounts.
        EXPECT_GE(ref.icount, prev_icount);
        prev_icount = ref.icount;
    }
    EXPECT_TRUE(saw_low);
    EXPECT_TRUE(saw_high);

    // Deterministic rebuild and reset().
    auto again = collect(*spec.build(2000));
    EXPECT_EQ(refs, again);
    stream->reset();
    EXPECT_EQ(collect(*stream), refs);
}

TEST(WorkloadSpecShard, WindowsPartitionTheBudget)
{
    std::uint64_t covered = 0;
    std::uint64_t expected_begin = 0;
    for (std::uint32_t k = 0; k < 8; ++k) {
        auto [begin, end] =
            WorkloadSpec::app("mcf").withShard(k, 8).shardWindow(1003);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_GE(end, begin);
        covered += end - begin;
        expected_begin = end;
    }
    EXPECT_EQ(covered, 1003u);
}

TEST(WorkloadSpecShard, PrimeRefCountsPartitionExactly)
{
    // refs % N != 0: every window must be non-empty, contiguous and
    // cover [0, refs) exactly — no reference simulated twice, none
    // dropped.
    for (std::uint64_t refs : {1009u, 7919u, 104729u}) {
        for (std::uint32_t shards : {2u, 3u, 8u, 64u}) {
            std::uint64_t expected_begin = 0;
            for (std::uint32_t k = 0; k < shards; ++k) {
                auto [begin, end] = WorkloadSpec::app("mcf")
                                        .withShard(k, shards)
                                        .shardWindow(refs);
                EXPECT_EQ(begin, expected_begin)
                    << refs << " refs, shard " << k << "/" << shards;
                EXPECT_GT(end, begin)
                    << refs << " refs, shard " << k << "/" << shards
                    << " is empty";
                expected_begin = end;
            }
            EXPECT_EQ(expected_begin, refs);
        }
    }
}

TEST(WorkloadSpecMix, DegenerateMixesAreRejectedAtConstruction)
{
    // quantum = 0 and single-part mixes must fail with an actionable
    // error instead of building a degenerate interleaving.
    EXPECT_THROW(WorkloadSpec::mix({WorkloadSpec::app("mcf")}, 1000),
                 std::invalid_argument);
    EXPECT_THROW(WorkloadSpec::mix({}, 1000), std::invalid_argument);
    EXPECT_THROW(WorkloadSpec::mix({WorkloadSpec::app("mcf"),
                                    WorkloadSpec::app("gcc")},
                                   0),
                 std::invalid_argument);
    try {
        WorkloadSpec::mix({WorkloadSpec::app("mcf")}, 0);
        FAIL() << "single-part mix must throw";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("two parts"),
                  std::string::npos)
            << "error should explain the two-part requirement: "
            << e.what();
    }

    // The parse path rejects the same shapes with the mix label.
    EXPECT_THROW(WorkloadSpec::parse("mix:mcf@100k"),
                 std::invalid_argument);
    EXPECT_THROW(WorkloadSpec::parse("mix:mcf+gcc@0"),
                 std::invalid_argument);
}

TEST(WorkloadSpecShard, WithShardValidates)
{
    EXPECT_THROW(WorkloadSpec::app("mcf").withShard(3, 3),
                 std::invalid_argument);
    EXPECT_THROW(WorkloadSpec::app("mcf").withShard(0, 0),
                 std::invalid_argument);
}

/** Every counter of a SimResult, in declaration order. */
std::vector<std::uint64_t>
counters(const SimResult &r)
{
    return {r.refs,
            r.misses,
            r.pbHits,
            r.demandFetches,
            r.prefetchesIssued,
            r.prefetchesSuppressed,
            r.stateOps,
            r.pbEvictedUnused,
            r.footprintPages,
            r.contextSwitches};
}

TEST(WorkloadSpecShard, ExpandShardsClampsFanoutToRefs)
{
    MechanismSpec dp = MechanismSpec::parse("dp");

    // N = refs + 1 (and far beyond): the fan-out must clamp to refs
    // single-reference windows, never produce an empty shard.
    for (std::uint64_t refs : {1u, 5u, 7u}) {
        SweepJob job =
            SweepJob::functional(WorkloadSpec::app("gcc"), dp, refs);
        std::uint32_t shards = static_cast<std::uint32_t>(refs) + 1;
        ShardPlan plan = expandShards({job}, shards);
        if (refs == 1) {
            // A single reference cannot be split at all.
            ASSERT_EQ(plan.jobs.size(), 1u);
            EXPECT_FALSE(plan.jobs[0].workload.sharded());
        } else {
            ASSERT_EQ(plan.jobs.size(), refs);
        }
        std::uint64_t expected_begin = 0;
        for (const SweepJob &shard : plan.jobs) {
            auto [begin, end] = shard.workload.shardWindow(refs);
            EXPECT_EQ(begin, expected_begin);
            EXPECT_GT(end, begin);
            expected_begin = end;
        }
        EXPECT_EQ(expected_begin, refs);

        // And the merged counters still equal the unsharded run, in
        // both warm-up modes.
        SweepResult unsharded = runSweepJob(job);
        for (ShardWarmup warmup :
             {ShardWarmup::Replay, ShardWarmup::Checkpoint}) {
            std::vector<SweepResult> merged =
                SweepEngine(2).runSharded({job}, shards, warmup);
            ASSERT_EQ(merged.size(), 1u);
            EXPECT_EQ(counters(merged[0].functional),
                      counters(unsharded.functional))
                << refs << " refs at " << shards << " shards, "
                << shardWarmupName(warmup) << " warm-up";
        }
    }

    // A prime ref budget through the full map/reduce.
    SweepJob prime =
        SweepJob::functional(WorkloadSpec::app("gcc"), dp, 1009);
    SweepResult unsharded = runSweepJob(prime);
    for (ShardWarmup warmup :
         {ShardWarmup::Replay, ShardWarmup::Checkpoint}) {
        std::vector<SweepResult> merged =
            SweepEngine(2).runSharded({prime}, 8, warmup);
        ASSERT_EQ(merged.size(), 1u);
        EXPECT_EQ(counters(merged[0].functional),
                  counters(unsharded.functional))
            << shardWarmupName(warmup);
    }
}

TEST(WorkloadSpecShard, MergedCountersAreBitIdenticalToUnsharded)
{
    constexpr std::uint64_t kRefs = 30000;
    MechanismSpec dp = MechanismSpec::parse("dp");

    for (const char *workload :
         {"gcc", "mix:mcf+gcc@1k"}) {
        SweepJob cell = SweepJob::functional(
            WorkloadSpec::parse(workload), dp, kRefs);
        SweepResult unsharded = runSweepJob(cell);

        for (std::uint32_t shards : {2u, 8u}) {
            ShardPlan plan = expandShards({cell}, shards);
            ASSERT_EQ(plan.jobs.size(), shards);
            ASSERT_EQ(plan.groupSizes,
                      std::vector<std::uint32_t>{shards});
            std::vector<SweepResult> merged = mergeShardResults(
                plan, SweepEngine(4).run(plan.jobs));
            ASSERT_EQ(merged.size(), 1u);
            EXPECT_EQ(counters(merged[0].functional),
                      counters(unsharded.functional))
                << workload << " at " << shards << " shards";
            EXPECT_EQ(merged[0].workload, unsharded.workload);
        }
    }
}

TEST(WorkloadSpecShard, EngineRunShardedMatchesPlainRun)
{
    constexpr std::uint64_t kRefs = 20000;
    MechanismSpec dp = MechanismSpec::parse("dp");
    std::vector<SweepJob> jobs = {
        SweepJob::functional(WorkloadSpec::app("gcc"), dp, kRefs),
        SweepJob::functional(WorkloadSpec::app("swim"), dp, kRefs),
    };
    SweepEngine engine(4);
    std::vector<SweepResult> plain = engine.run(jobs);
    std::vector<SweepResult> sharded = engine.runSharded(jobs, 4);
    ASSERT_EQ(sharded.size(), plain.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
        EXPECT_EQ(counters(sharded[i].functional),
                  counters(plain[i].functional))
            << "cell " << i;
}

TEST(WorkloadSpecShard, ExplicitSingleShardJobsPassThroughUnmerged)
{
    // A caller distributing a sweep across machines submits explicit
    // spec#k/N cells and must get each shard's own result back —
    // never a merge error, and never accidental folding of adjacent
    // cells that happen to look like consecutive shards.
    constexpr std::uint64_t kRefs = 20000;
    MechanismSpec dp = MechanismSpec::parse("dp");
    SweepEngine engine(2);
    std::vector<SweepJob> both = {
        SweepJob::functional(WorkloadSpec::parse("gcc#0/2"), dp,
                             kRefs),
        SweepJob::functional(WorkloadSpec::parse("gcc#1/2"), dp,
                             kRefs),
    };
    ShardPlan plan = expandShards(both, 4); // --shards must not touch
    ASSERT_EQ(plan.jobs.size(), 2u);
    ASSERT_EQ(plan.groupSizes, (std::vector<std::uint32_t>{1, 1}));
    std::vector<SweepResult> results =
        mergeShardResults(plan, engine.run(plan.jobs));
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].workload, "gcc#0/2");
    EXPECT_EQ(results[1].workload, "gcc#1/2");

    // Folding the distributed slices back together is a manual
    // addCounters fold, and reproduces the unsharded run.
    SimResult folded;
    addCounters(folded, results[0].functional);
    addCounters(folded, results[1].functional);
    SweepResult unsharded = runSweepJob(
        SweepJob::functional(WorkloadSpec::app("gcc"), dp, kRefs));
    EXPECT_EQ(counters(folded), counters(unsharded.functional));
}

TEST(WorkloadSpecBuild, CorruptTraceBodyThrowsInsteadOfExiting)
{
    // A trace with a valid header whose body is truncated (the count
    // field promises more records than the file holds) must surface
    // as std::invalid_argument from an engine batch — never a
    // worker-thread exit.
    std::string truncated = ::testing::TempDir() + "truncated.tpf";
    {
        std::string bytes;
        std::FILE *f = std::fopen(kSampleTrace.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        int c;
        while ((c = std::fgetc(f)) != EOF)
            bytes.push_back(static_cast<char>(c));
        std::fclose(f);
        f = std::fopen(truncated.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
        std::fclose(f);
    }
    MechanismSpec dp = MechanismSpec::parse("dp");
    SweepEngine engine(4);
    EXPECT_THROW(
        engine.run({SweepJob::functional(
            WorkloadSpec::trace(truncated), dp, 1000000)}),
        std::invalid_argument);
    std::remove(truncated.c_str());
}

TEST(WorkloadSpecShard, ShardedTimingCellIsRejected)
{
    MechanismSpec dp = MechanismSpec::parse("dp");
    SweepJob job = SweepJob::timed(
        WorkloadSpec::app("gcc").withShard(0, 2), dp, 1000);
    EXPECT_THROW(runSweepJob(job), std::invalid_argument);
}

TEST(SweepResultLabels, ResolvedWorkloadLabelIsRecorded)
{
    MechanismSpec dp = MechanismSpec::parse("dp");
    SweepResult r = runSweepJob(SweepJob::functional(
        WorkloadSpec::parse("mix:mcf+gcc@1k"), dp, 5000));
    EXPECT_EQ(r.workload, "mix:mcf+gcc@1k");

    SweepResult shard = runSweepJob(SweepJob::functional(
        WorkloadSpec::parse("gcc#1/4"), dp, 5000));
    EXPECT_EQ(shard.workload, "gcc#1/4");
}

TEST(WorkloadSpecCli, ParseWorkloadOrDieExitsOnSyntaxError)
{
    EXPECT_EQ(parseWorkloadOrDie("mcf"), WorkloadSpec::app("mcf"));
    EXPECT_EXIT((void)parseWorkloadOrDie("mix:@100k"),
                ::testing::ExitedWithCode(1), "malformed workload");
}

/**
 * nextBatch() must be observationally identical to a next() loop on
 * every stream the workload layer can build: all 56 registered app
 * models (which between them exercise every synthetic generator, the
 * adaptors and the pacing wrapper), a mix, and a trace replay.
 */
TEST(StreamBatching, NextBatchMatchesNextOnEveryWorkloadShape)
{
    constexpr std::uint64_t kRefs = 2000;
    std::vector<std::string> specs;
    for (const AppModel &app : appRegistry())
        specs.push_back(app.name);
    specs.push_back("mix:mcf+gcc@500");
    specs.push_back("trace:" + kSampleTrace);

    for (const std::string &text : specs) {
        WorkloadSpec spec = WorkloadSpec::parse(text);
        auto via_next = spec.build(kRefs);
        std::vector<MemRef> expected;
        MemRef r;
        while (via_next->next(r))
            expected.push_back(r);

        for (std::size_t batch : {1u, 7u, 64u}) {
            auto via_batch = spec.build(kRefs);
            std::vector<MemRef> got_refs;
            std::vector<MemRef> buf(batch);
            std::size_t got;
            while ((got = via_batch->nextBatch(buf.data(), batch)) >
                   0) {
                got_refs.insert(
                    got_refs.end(), buf.begin(),
                    buf.begin() + static_cast<std::ptrdiff_t>(got));
                if (got < batch)
                    break;
            }
            ASSERT_EQ(got_refs.size(), expected.size())
                << text << " batch " << batch;
            EXPECT_TRUE(got_refs == expected)
                << text << " batch " << batch
                << ": batched refs diverge from next() refs";
        }

        // Mixing the two call styles mid-stream is equally exact.
        auto mixed = spec.build(kRefs);
        std::vector<MemRef> got_refs;
        std::vector<MemRef> buf(13);
        for (;;) {
            if (got_refs.size() % 2 == 0) {
                if (!mixed->next(r))
                    break;
                got_refs.push_back(r);
            } else {
                std::size_t got =
                    mixed->nextBatch(buf.data(), buf.size());
                got_refs.insert(
                    got_refs.end(), buf.begin(),
                    buf.begin() + static_cast<std::ptrdiff_t>(got));
                if (got < buf.size())
                    break;
            }
        }
        EXPECT_TRUE(got_refs == expected)
            << text << ": interleaved next/nextBatch diverges";
    }
}

} // namespace
} // namespace tlbpf
