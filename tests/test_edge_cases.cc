/**
 * @file
 * Degenerate-configuration behaviour: invalid geometries must die
 * cleanly through tlbpf_fatal (exit code 1 with a diagnostic), never
 * crash, and legal-but-extreme inputs (empty streams, one-entry
 * structures) must simulate without incident.
 */

#include <gtest/gtest.h>

#include "core/distance_predictor.hh"
#include "prefetch/mech_spec.hh"
#include "sim/functional_sim.hh"
#include "tlb/prefetch_buffer.hh"
#include "tlb/tlb.hh"
#include "trace/ref_stream.hh"
#include "workload/app_registry.hh"

namespace tlbpf
{
namespace
{

MechanismSpec
spec(const std::string &text)
{
    return MechanismSpec::parse(text);
}

// ------------------------------------------------------------- death

using EdgeCaseDeathTest = ::testing::Test;

TEST(EdgeCaseDeathTest, ZeroEntryTlbExitsCleanly)
{
    EXPECT_EXIT(Tlb(TlbConfig{0, 0}), ::testing::ExitedWithCode(1),
                "TLB needs at least one entry");
}

TEST(EdgeCaseDeathTest, IndivisibleTlbAssocExitsCleanly)
{
    EXPECT_EXIT(Tlb(TlbConfig{128, 3}), ::testing::ExitedWithCode(1),
                "multiple of associativity");
}

TEST(EdgeCaseDeathTest, NonPowerOfTwoTlbSetsExitsCleanly)
{
    // 96 entries / 8 ways = 12 sets: indexable only with a pow2 mask.
    EXPECT_EXIT(Tlb(TlbConfig{96, 8}), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(EdgeCaseDeathTest, ZeroRowPredictionTableExitsCleanly)
{
    DistancePredictorConfig config{TableConfig{0, TableAssoc::Direct}, 2};
    EXPECT_EXIT(DistancePredictor dp(config),
                ::testing::ExitedWithCode(1),
                "prediction table needs rows");
}

TEST(EdgeCaseDeathTest, ZeroSlotPredictorExitsCleanly)
{
    DistancePredictorConfig config{TableConfig{64, TableAssoc::Direct},
                                   0};
    EXPECT_EXIT(DistancePredictor dp(config),
                ::testing::ExitedWithCode(1), "slots must be in");
}

TEST(EdgeCaseDeathTest, ZeroReferenceBudgetExitsCleanly)
{
    // Reachable from every bench binary via --refs 0.
    EXPECT_EXIT(buildApp("gcc", 0), ::testing::ExitedWithCode(1),
                "positive reference budget");
}

TEST(EdgeCaseDeathTest, ZeroEntryPrefetchBufferExitsCleanly)
{
    EXPECT_EXIT(PrefetchBuffer pb(0), ::testing::ExitedWithCode(1),
                "prefetch buffer needs at least one entry");
}

TEST(EdgeCaseDeathTest, ZeroEntryTlbInsideSimulatorExitsCleanly)
{
    SimConfig config;
    config.tlb = TlbConfig{0, 0};
    std::vector<MemRef> refs;
    VectorStream stream(std::move(refs));
    EXPECT_EXIT(simulate(config, spec("dp(rows=64)"), stream),
                ::testing::ExitedWithCode(1),
                "TLB needs at least one entry");
}

// ------------------------------------------------- legal extremes

TEST(EdgeCase, EmptyStreamYieldsZeroedCounters)
{
    for (const char *mech : {"none", "sp", "asp(rows=64)",
                              "mp(rows=64)", "rp", "dp(rows=64)"}) {
        VectorStream stream({});
        SimResult r = simulate(SimConfig{}, spec(mech), stream);
        EXPECT_EQ(r.refs, 0u) << mech;
        EXPECT_EQ(r.misses, 0u) << mech;
        EXPECT_EQ(r.prefetchesIssued, 0u) << mech;
        EXPECT_EQ(r.footprintPages, 0u) << mech;
        // The derived metrics must not divide by zero.
        EXPECT_DOUBLE_EQ(r.missRate(), 0.0) << mech;
        EXPECT_DOUBLE_EQ(r.accuracy(), 0.0) << mech;
        EXPECT_DOUBLE_EQ(r.memOpsPerMiss(), 0.0) << mech;
    }
}

TEST(EdgeCase, SingleReferenceStream)
{
    for (const char *mech : {"none", "sp", "asp(rows=64)",
                              "mp(rows=64)", "rp", "dp(rows=64)"}) {
        VectorStream stream({MemRef{0x1000, 0x400, false, 0}});
        SimResult r = simulate(SimConfig{}, spec(mech), stream);
        EXPECT_EQ(r.refs, 1u) << mech;
        EXPECT_EQ(r.misses, 1u) << mech;
        EXPECT_EQ(r.pbHits, 0u) << mech;
        EXPECT_EQ(r.footprintPages, 1u) << mech;
    }
}

TEST(EdgeCase, OneEntryTlbAndBufferStillSimulate)
{
    SimConfig config;
    config.tlb = TlbConfig{1, 0};
    config.pbEntries = 1;
    std::vector<MemRef> refs;
    for (int i = 0; i < 64; ++i) {
        Vpn page = static_cast<Vpn>(i % 4);
        refs.push_back(MemRef{page * kDefaultPageBytes, 0x400, false,
                              static_cast<std::uint64_t>(3 * i)});
    }
    for (const char *mech : {"none", "sp", "mp(rows=64)", "rp",
                              "dp(rows=64)"}) {
        VectorStream stream(refs);
        SimResult r = simulate(config, spec(mech), stream);
        EXPECT_EQ(r.refs, 64u) << mech;
        EXPECT_GE(r.misses, 1u) << mech;
        EXPECT_LE(r.pbHits, r.misses) << mech;
    }
}

TEST(EdgeCase, MinimalPredictionTableGeometry)
{
    // One row, one slot: legal, if useless — must predict without
    // reading out of bounds.
    DistancePredictorConfig config{TableConfig{1, TableAssoc::Direct},
                                   1};
    DistancePredictor dp(config);
    std::vector<std::uint64_t> predictions;
    for (std::uint64_t page = 100; page < 400; page += 3) {
        predictions.clear();
        dp.observe(page, predictions);
        EXPECT_LE(predictions.size(), 1u);
    }
}

} // namespace
} // namespace tlbpf
