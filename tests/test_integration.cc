/**
 * @file
 * Integration tests: end-to-end runs of application models under all
 * mechanisms, asserting the qualitative orderings the paper reports
 * (which mechanism class wins on which behaviour class).
 *
 * These use shortened streams (200-400k references), so the bands are
 * deliberately generous; the bench binaries reproduce the full
 * figures.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace tlbpf
{
namespace
{

constexpr std::uint64_t kRefs = 400000;

MechanismSpec
spec(const std::string &text)
{
    return MechanismSpec::parse(text);
}

double
accuracy(const std::string &app, const MechanismSpec &s,
         std::uint64_t refs = kRefs)
{
    return runFunctional(app, s, refs).accuracy();
}

TEST(Integration, ColdStridedFavoursAspAndDp)
{
    // gzip: first-touch strided references (paper Section 3.2).
    double asp = accuracy("gzip", spec("asp"));
    double dp = accuracy("gzip", spec("dp"));
    double rp = accuracy("gzip", spec("rp"));
    double mp = accuracy("gzip", spec("mp"));
    EXPECT_GT(asp, 0.9);
    EXPECT_GT(dp, 0.9);
    EXPECT_LT(rp, 0.1);
    EXPECT_LT(mp, 0.1);
}

TEST(Integration, HistoryAppsFavourRp)
{
    // gcc: "RP giving the best, or close to the best performance".
    double rp = accuracy("gcc", spec("rp"));
    double dp = accuracy("gcc", spec("dp"));
    double asp = accuracy("gcc", spec("asp"));
    EXPECT_GT(rp, 0.8);
    EXPECT_GT(rp, dp);
    EXPECT_LT(asp, 0.2);
}

TEST(Integration, AlternationFavoursMpOverRp)
{
    // parser/vortex: MP's two slots capture alternating successors.
    for (const char *app : {"parser", "vortex"}) {
        double mp = accuracy(app, spec("mp"));
        double rp = accuracy(app, spec("rp"));
        double asp = accuracy(app, spec("asp"));
        EXPECT_GT(mp, rp) << app;
        EXPECT_GT(mp, 0.8) << app;
        EXPECT_LT(asp, 0.1) << app;
    }
}

TEST(Integration, DistancePatternsAreDpOnly)
{
    // swim/mgrid/applu: DP much better than everything else.
    for (const char *app : {"swim", "mgrid", "applu"}) {
        double dp = accuracy(app, spec("dp"));
        double rp = accuracy(app, spec("rp"));
        double mp = accuracy(app, spec("mp"));
        double asp = accuracy(app, spec("asp"));
        EXPECT_GT(dp, 0.8) << app;
        EXPECT_GT(dp, rp + 0.5) << app;
        EXPECT_GT(dp, mp + 0.5) << app;
        EXPECT_GT(dp, asp + 0.5) << app;
    }
}

TEST(Integration, GsmJpegOnlyDpPredicts)
{
    // "DP is the only mechanism which makes any noticeable
    // predictions (even if the accuracy does not exceed 20%)".
    for (const char *app : {"gsm-enc", "jpeg-dec"}) {
        double dp = accuracy(app, spec("dp"));
        double rp = accuracy(app, spec("rp"));
        double asp = accuracy(app, spec("asp"));
        double mp = accuracy(app, spec("mp"));
        EXPECT_GT(dp, 0.2) << app;
        EXPECT_LT(rp, 0.1) << app;
        EXPECT_LT(asp, 0.1) << app;
        EXPECT_LT(mp, 0.1) << app;
    }
}

TEST(Integration, NobodyPredictsTheIrregularApps)
{
    for (const char *app : {"fma3d", "eon", "pgp-dec"}) {
        for (const char *mech : {"dp", "rp", "asp", "mp"}) {
            EXPECT_LT(accuracy(app, spec(mech)), 0.25)
                << app << "/" << mech;
        }
    }
}

TEST(Integration, StreamingAppsDefeatSmallMarkovTables)
{
    // adpcm: footprint far larger than the MP table -> MP near zero
    // while RP/ASP/DP all do well (paper's headline MP failure).
    double mp = accuracy("adpcm-enc", spec("mp"));
    double rp = accuracy("adpcm-enc", spec("rp"));
    double asp = accuracy("adpcm-enc", spec("asp"));
    double dp = accuracy("adpcm-enc", spec("dp"));
    EXPECT_LT(mp, 0.05);
    EXPECT_GT(rp, 0.8);
    EXPECT_GT(asp, 0.7);
    EXPECT_GT(dp, 0.7);
}

TEST(Integration, AllSchemesGoodOnRegularReTouch)
{
    // mesa/gap/facerec: "nearly all mechanisms give quite good
    // prediction accuracies" (MP included: footprint fits the table).
    for (const char *app : {"gap", "facerec"}) {
        EXPECT_GT(accuracy(app, spec("dp")), 0.8) << app;
        EXPECT_GT(accuracy(app, spec("rp")), 0.8) << app;
        EXPECT_GT(accuracy(app, spec("asp")), 0.8) << app;
        EXPECT_GT(accuracy(app, spec("mp")), 0.8) << app;
    }
}

TEST(Integration, GalgelMpNeedsLargeTable)
{
    // galgel: MP poor at small r, because the data set needs more
    // rows than the table has (paper Section 3.2).
    double mp_small = accuracy("galgel", spec("mp"));
    double mp_large = accuracy("galgel", spec("mp(rows=1024)"));
    EXPECT_LT(mp_small, 0.1);
    EXPECT_GT(mp_large, mp_small + 0.3);
}

TEST(Integration, Table3AppsRpAccuracyAboveDp)
{
    // The five applications of Table 3 are exactly those where RP's
    // prediction accuracy is (somewhat) above DP's.  RP needs enough
    // passes over each footprint to amortise its cold first pass, so
    // this test runs longer streams than the others.
    for (const std::string &app : table3Apps()) {
        double rp = accuracy(app, spec("rp"), 1000000);
        double dp = accuracy(app, spec("dp"), 1000000);
        EXPECT_GT(rp, dp) << app;
        EXPECT_GT(dp, 0.4) << app; // but DP is not far behind
    }
}

TEST(Integration, Table3DpWinsCyclesDespiteLowerAccuracy)
{
    // The paper's headline: despite RP's higher accuracy, DP comes
    // out ahead in execution cycles because RP's stack maintenance
    // costs up to 6 memory operations per miss.
    MechanismSpec none = spec("none");
    for (const std::string &app : {std::string("ammp"),
                                   std::string("mcf")}) {
        TimingResult base = runTimed(app, none, kRefs);
        TimingResult rp = runTimed(app, spec("rp"), kRefs);
        TimingResult dp = runTimed(app, spec("dp"), kRefs);
        double rp_norm = static_cast<double>(rp.cycles) /
                         static_cast<double>(base.cycles);
        double dp_norm = static_cast<double>(dp.cycles) /
                         static_cast<double>(base.cycles);
        EXPECT_LT(dp_norm, rp_norm) << app;
        EXPECT_LT(dp_norm, 1.0) << app;
    }
}

TEST(Integration, McfRpSlowerThanNoPrefetching)
{
    // Paper Table 3: mcf RP = 1.09 — prefetching makes it *slower*.
    TimingResult base = runTimed("mcf", spec("none"), kRefs);
    TimingResult rp = runTimed("mcf", spec("rp"), kRefs);
    EXPECT_GT(rp.cycles, base.cycles);
}

TEST(Integration, DpSmallTableCloseToLarge)
{
    // Figure 9: "even a r=32 predictor table for DP gives very good
    // predictions".
    for (const char *app : {"galgel", "adpcm-enc", "swim"}) {
        double dp32 = accuracy(app, spec("dp(rows=32)"));
        double dp1024 = accuracy(app, spec("dp(rows=1024)"));
        EXPECT_GT(dp32, dp1024 - 0.15) << app;
    }
}

TEST(Integration, AverageAccuracyOrderingMatchesTable2)
{
    // Table 2 (unweighted averages over the suite): DP first, MP
    // last, RP and ASP in between.  A 12-app cross-section keeps the
    // runtime reasonable.
    const char *apps[] = {"gzip", "gcc", "mcf", "parser", "swim",
                          "galgel", "vortex", "ammp", "adpcm-enc",
                          "gsm-enc", "mpegply", "anagram"};
    double sum[4] = {0, 0, 0, 0};
    const char *const schemes[] = {"dp", "rp", "asp", "mp"};
    for (const char *app : apps) {
        for (int i = 0; i < 4; ++i)
            sum[i] += accuracy(app, spec(schemes[i]), 200000);
    }
    double dp = sum[0], rp = sum[1], asp = sum[2], mp = sum[3];
    EXPECT_GT(dp, rp);
    EXPECT_GT(dp, asp);
    EXPECT_GT(rp, mp);
    EXPECT_GT(asp, mp);
}

} // namespace
} // namespace tlbpf
