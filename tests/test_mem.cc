/**
 * @file
 * Unit tests for the memory substrate: page table, the RP recency
 * stack threaded through it, and the prefetch channel timing model.
 */

#include <gtest/gtest.h>

#include "mem/page_table.hh"
#include "mem/prefetch_channel.hh"

namespace tlbpf
{
namespace
{

TEST(PageTable, AllocatesOnFirstTouch)
{
    PageTable pt;
    EXPECT_EQ(pt.find(42), nullptr);
    PageTableEntry &pte = pt.lookup(42);
    EXPECT_EQ(pt.size(), 1u);
    EXPECT_EQ(pt.find(42), &pte);
    EXPECT_FALSE(pte.inStack);
}

TEST(PageTable, LookupIsIdempotent)
{
    PageTable pt;
    Pfn pfn = pt.lookup(7).pfn;
    EXPECT_EQ(pt.lookup(7).pfn, pfn);
    EXPECT_EQ(pt.size(), 1u);
}

TEST(PageTable, DistinctPagesGetDistinctFrames)
{
    PageTable pt;
    EXPECT_NE(pt.lookup(1).pfn, pt.lookup(2).pfn);
}

TEST(PageTable, RecencyOverheadCountsTwoWordsPerPte)
{
    PageTable pt;
    pt.lookup(1);
    pt.lookup(2);
    EXPECT_EQ(pt.recencyOverheadBytes(), 32u);
}

TEST(PageTable, ClearDropsEverything)
{
    PageTable pt;
    pt.lookup(1);
    pt.clear();
    EXPECT_EQ(pt.size(), 0u);
    EXPECT_EQ(pt.find(1), nullptr);
}

class RecencyStackTest : public ::testing::Test
{
  protected:
    PageTable pt;
    RecencyStack stack{pt};
};

TEST_F(RecencyStackTest, StartsEmpty)
{
    EXPECT_EQ(stack.top(), kNoPage);
    EXPECT_EQ(stack.linkedCount(), 0u);
}

TEST_F(RecencyStackTest, PushOnEvictionOnly)
{
    // Miss to page 1 with no TLB eviction: nothing enters the stack.
    auto res = stack.onMiss(1, kNoPage);
    EXPECT_EQ(res.numNeighbors, 0u);
    EXPECT_EQ(res.pointerOps, 0u);
    EXPECT_EQ(stack.linkedCount(), 0u);

    // Miss to page 2 evicting page 1: page 1 goes on top.
    res = stack.onMiss(2, 1);
    EXPECT_EQ(stack.top(), 1u);
    EXPECT_EQ(stack.linkedCount(), 1u);
    EXPECT_TRUE(stack.contains(1));
    EXPECT_GE(res.pointerOps, 1u);
}

TEST_F(RecencyStackTest, NeighborsReportedOnUnlink)
{
    // Build stack: evictions 1, 2, 3 (3 on top).
    stack.onMiss(100, 1);
    stack.onMiss(101, 2);
    stack.onMiss(102, 3);
    EXPECT_EQ(stack.linkedCount(), 3u);
    EXPECT_EQ(stack.top(), 3u);

    // Miss to 2 (middle of stack): neighbours are 3 (prev) and 1
    // (next); 2 leaves the stack, and evicted 102 is pushed.
    auto res = stack.onMiss(2, 102);
    ASSERT_EQ(res.numNeighbors, 2u);
    EXPECT_EQ(res.neighbors[0], 3u);
    EXPECT_EQ(res.neighbors[1], 1u);
    EXPECT_FALSE(stack.contains(2));
    EXPECT_TRUE(stack.contains(102));
    EXPECT_EQ(stack.top(), 102u);
    // Middle unlink (2 writes) + push onto non-empty stack (2 writes).
    EXPECT_EQ(res.pointerOps, 4u);
}

TEST_F(RecencyStackTest, UnlinkHeadHasOneNeighbor)
{
    stack.onMiss(100, 1);
    stack.onMiss(101, 2); // stack: 2, 1
    auto res = stack.onMiss(2, kNoPage);
    ASSERT_EQ(res.numNeighbors, 1u);
    EXPECT_EQ(res.neighbors[0], 1u);
    EXPECT_EQ(stack.top(), 1u);
}

TEST_F(RecencyStackTest, UnlinkTailHasOneNeighbor)
{
    stack.onMiss(100, 1);
    stack.onMiss(101, 2); // stack: 2, 1
    auto res = stack.onMiss(1, kNoPage);
    ASSERT_EQ(res.numNeighbors, 1u);
    EXPECT_EQ(res.neighbors[0], 2u);
}

TEST_F(RecencyStackTest, TemporalNeighborhoodPredictsRepeatedOrder)
{
    // Evict pages in the order 10, 11, 12, 13 (a scan), then miss on
    // 11: its stack neighbours are exactly its eviction-time
    // neighbours 12 and 10 — the mechanism's core bet.
    stack.onMiss(100, 10);
    stack.onMiss(101, 11);
    stack.onMiss(102, 12);
    stack.onMiss(103, 13);
    auto res = stack.onMiss(11, kNoPage);
    ASSERT_EQ(res.numNeighbors, 2u);
    EXPECT_EQ(res.neighbors[0], 12u);
    EXPECT_EQ(res.neighbors[1], 10u);
}

TEST_F(RecencyStackTest, ResetUnlinksAll)
{
    stack.onMiss(100, 1);
    stack.onMiss(101, 2);
    stack.reset();
    EXPECT_EQ(stack.top(), kNoPage);
    EXPECT_EQ(stack.linkedCount(), 0u);
    EXPECT_FALSE(stack.contains(1));
    EXPECT_FALSE(stack.contains(2));
    // Stack is usable again after reset.
    stack.onMiss(102, 3);
    EXPECT_EQ(stack.top(), 3u);
}

TEST_F(RecencyStackTest, DoublePushPanics)
{
    stack.onMiss(100, 1);
    EXPECT_DEATH(stack.onMiss(101, 1), "already in recency stack");
}

TEST(PrefetchChannel, OpsSerialise)
{
    PrefetchChannel ch(50);
    auto first = ch.issue(0, 2);
    EXPECT_EQ(first.start, 0u);
    EXPECT_EQ(first.done, 100u);
    auto second = ch.issue(10, 1); // queued behind the first batch
    EXPECT_EQ(second.start, 100u);
    EXPECT_EQ(second.done, 150u);
    EXPECT_EQ(ch.totalOps(), 3u);
}

TEST(PrefetchChannel, IdleChannelStartsImmediately)
{
    PrefetchChannel ch(50);
    ch.issue(0, 1);
    auto late = ch.issue(500, 1);
    EXPECT_EQ(late.start, 500u);
    EXPECT_EQ(late.done, 550u);
}

TEST(PrefetchChannel, BusyAt)
{
    PrefetchChannel ch(50);
    EXPECT_FALSE(ch.busyAt(0));
    ch.issue(0, 1);
    EXPECT_TRUE(ch.busyAt(0));
    EXPECT_TRUE(ch.busyAt(49));
    EXPECT_FALSE(ch.busyAt(50));
}

TEST(PrefetchChannel, BusyCyclesAccumulate)
{
    PrefetchChannel ch(50);
    ch.issue(0, 1);
    ch.issue(100, 1);
    EXPECT_EQ(ch.busyCycles(), 100u);
}

TEST(PrefetchChannel, ResetClearsState)
{
    PrefetchChannel ch(50);
    ch.issue(0, 3);
    ch.reset();
    EXPECT_EQ(ch.totalOps(), 0u);
    EXPECT_EQ(ch.busyUntil(), 0u);
    EXPECT_FALSE(ch.busyAt(0));
}

TEST(PrefetchChannel, ZeroOpsIsFree)
{
    PrefetchChannel ch(50);
    auto res = ch.issue(7, 0);
    EXPECT_EQ(res.start, res.done);
    EXPECT_FALSE(ch.busyAt(7));
}

} // namespace
} // namespace tlbpf
