/**
 * @file
 * Tests for the extension features: adaptive sequential prefetching,
 * the wider-reach RP variant, single-entry TLB invalidation and the
 * inclusive two-level TLB hierarchy.
 */

#include <gtest/gtest.h>

#include "prefetch/recency.hh"
#include "prefetch/sequential.hh"
#include "tlb/two_level.hh"

namespace tlbpf
{
namespace
{

PrefetchDecision
miss(Prefetcher &pf, Vpn vpn, Vpn evicted = kNoPage,
     bool pb_hit = false)
{
    PrefetchDecision decision;
    pf.onMiss(TlbMiss{vpn, 0x4000, pb_hit, evicted}, decision);
    return decision;
}

// ------------------------------------------------- adaptive SP

TEST(AdaptiveSp, StartsAtDegreeOne)
{
    AdaptiveSequentialPrefetcher sp(8, 4);
    auto d = miss(sp, 100);
    EXPECT_EQ(d.targets.size(), 1u);
    EXPECT_EQ(sp.degree(), 1u);
}

TEST(AdaptiveSp, RampsUpUnderSuccess)
{
    AdaptiveSequentialPrefetcher sp(8, 4);
    // Every miss reports a buffer hit: the controller should ramp the
    // degree to its maximum across epochs.
    for (int i = 0; i < 8 * 8; ++i)
        miss(sp, 100 + i, kNoPage, true);
    EXPECT_EQ(sp.degree(), 4u);
    auto d = miss(sp, 999, kNoPage, true);
    EXPECT_EQ(d.targets.size(), 4u);
    EXPECT_EQ(d.targets[3], 1003u);
}

TEST(AdaptiveSp, RampsDownUnderFailure)
{
    AdaptiveSequentialPrefetcher sp(8, 4);
    for (int i = 0; i < 8 * 8; ++i)
        miss(sp, 100 + i, kNoPage, true); // degree -> 4
    for (int i = 0; i < 8 * 8; ++i)
        miss(sp, 5000 + 97 * i, kNoPage, false); // all failures
    EXPECT_EQ(sp.degree(), 1u);
}

TEST(AdaptiveSp, ResetRestoresInitialDegree)
{
    AdaptiveSequentialPrefetcher sp(8, 4);
    for (int i = 0; i < 8 * 4; ++i)
        miss(sp, 100 + i, kNoPage, true);
    EXPECT_GT(sp.degree(), 1u);
    sp.reset();
    EXPECT_EQ(sp.degree(), 1u);
}

// ------------------------------------------------- RP reach

TEST(RecencyReach, WiderReachPrefetchesFourNeighbours)
{
    PageTable pt;
    RecencyPrefetcher rp(pt, 2);
    // Eviction order 1,2,3,4,5: stack top-to-bottom is 5,4,3,2,1.
    for (Vpn v = 1; v <= 5; ++v)
        miss(rp, 100 + v, v);
    // Miss on 3: immediate neighbours 4 (prev) and 2 (next), wider
    // neighbours 5 and 1.
    auto d = miss(rp, 3, kNoPage);
    ASSERT_EQ(d.targets.size(), 4u);
    EXPECT_EQ(d.targets[0], 4u);
    EXPECT_EQ(d.targets[1], 2u);
    EXPECT_EQ(d.targets[2], 5u);
    EXPECT_EQ(d.targets[3], 1u);
    EXPECT_EQ(rp.label(), "RP,4");
}

TEST(RecencyReach, ReachAtStackEdgeTruncates)
{
    PageTable pt;
    RecencyPrefetcher rp(pt, 2);
    miss(rp, 100, 1);
    miss(rp, 101, 2); // stack: 2, 1
    auto d = miss(rp, 2, kNoPage); // head: only next-side exists
    ASSERT_EQ(d.targets.size(), 1u);
    EXPECT_EQ(d.targets[0], 1u);
}

TEST(RecencyReach, DefaultReachUnchanged)
{
    PageTable pt;
    RecencyPrefetcher rp(pt);
    for (Vpn v = 1; v <= 4; ++v)
        miss(rp, 100 + v, v);
    auto d = miss(rp, 2, kNoPage);
    EXPECT_EQ(d.targets.size(), 2u);
    EXPECT_EQ(rp.label(), "RP");
}

// ------------------------------------------------- Tlb::invalidate

TEST(TlbInvalidate, RemovesEntry)
{
    Tlb tlb({4, 0});
    tlb.insert(7);
    EXPECT_TRUE(tlb.invalidate(7));
    EXPECT_FALSE(tlb.contains(7));
    EXPECT_EQ(tlb.residentCount(), 0u);
    EXPECT_FALSE(tlb.invalidate(7)); // already gone
    // Slot is reusable.
    EXPECT_EQ(tlb.insert(7), std::nullopt);
}

// ------------------------------------------------- two-level TLB

TEST(TwoLevelTlb, MissFillsBothLevels)
{
    TwoLevelTlb tlb({2, 0}, {8, 0});
    EXPECT_EQ(tlb.access(1), TlbLevelHit::Miss);
    tlb.insert(1);
    EXPECT_EQ(tlb.access(1), TlbLevelHit::L1);
    EXPECT_TRUE(tlb.l2().contains(1));
}

TEST(TwoLevelTlb, L1VictimHitsInL2)
{
    TwoLevelTlb tlb({2, 0}, {8, 0});
    tlb.insert(1);
    tlb.insert(2);
    tlb.insert(3); // 1 falls out of the L1, stays in L2
    EXPECT_FALSE(tlb.l1().contains(1));
    EXPECT_EQ(tlb.access(1), TlbLevelHit::L2);
    // ...and the L2 hit promoted it back into the L1.
    EXPECT_TRUE(tlb.l1().contains(1));
}

TEST(TwoLevelTlb, InclusionMaintainedOnL2Eviction)
{
    TwoLevelTlb tlb({2, 0}, {4, 0});
    for (Vpn v = 1; v <= 4; ++v)
        tlb.insert(v);
    // L1 holds {3,4}; inserting 5 evicts the L2's LRU.
    auto victim = tlb.insert(5);
    ASSERT_TRUE(victim.has_value());
    EXPECT_FALSE(tlb.l1().contains(*victim));
    EXPECT_FALSE(tlb.l2().contains(*victim));
    EXPECT_FALSE(tlb.contains(*victim));
}

TEST(TwoLevelTlb, MissCountersTrackLevels)
{
    TwoLevelTlb tlb({2, 0}, {8, 0});
    tlb.access(1); // miss both
    tlb.insert(1);
    tlb.access(1); // L1 hit
    tlb.insert(2);
    tlb.insert(3);
    tlb.access(1); // L1 miss (evicted by 2,3), L2 hit
    EXPECT_EQ(tlb.accesses(), 3u);
    EXPECT_EQ(tlb.l1Misses(), 2u);
    EXPECT_EQ(tlb.l2Misses(), 1u);
}

TEST(TwoLevelTlb, FlushEmptiesBoth)
{
    TwoLevelTlb tlb({2, 0}, {8, 0});
    tlb.insert(1);
    tlb.flush();
    EXPECT_FALSE(tlb.contains(1));
    EXPECT_EQ(tlb.access(1), TlbLevelHit::Miss);
}

TEST(TwoLevelTlb, RejectsL1LargerThanL2)
{
    EXPECT_DEATH(TwoLevelTlb({16, 0}, {8, 0}), "at least as large");
}

} // namespace
} // namespace tlbpf
