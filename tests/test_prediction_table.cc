/**
 * @file
 * Unit and parameterised tests for the generic prediction table and
 * the per-row SlotLru payload.
 */

#include <gtest/gtest.h>

#include "core/prediction_table.hh"

namespace tlbpf
{
namespace
{

struct Payload
{
    int value = 0;
};

TEST(PredictionTable, MissThenHit)
{
    PredictionTable<Payload> table({8, TableAssoc::Direct});
    EXPECT_EQ(table.find(5), nullptr);
    table.findOrInsert(5).value = 7;
    Payload *p = table.find(5);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->value, 7);
    EXPECT_EQ(table.hits(), 1u);
    EXPECT_EQ(table.misses(), 1u);
}

TEST(PredictionTable, DirectMappedConflictEvicts)
{
    PredictionTable<Payload> table({4, TableAssoc::Direct});
    table.findOrInsert(1).value = 10;
    table.findOrInsert(5).value = 50; // 5 % 4 == 1: same row
    EXPECT_EQ(table.find(1), nullptr);
    ASSERT_NE(table.find(5), nullptr);
    EXPECT_EQ(table.find(5)->value, 50);
    EXPECT_EQ(table.evictions(), 1u);
}

TEST(PredictionTable, TwoWayHoldsConflictingPair)
{
    PredictionTable<Payload> table({4, TableAssoc::TwoWay}); // 2 sets
    table.findOrInsert(0).value = 1;
    table.findOrInsert(2).value = 2; // 2 % 2 == 0: same set, way 2
    EXPECT_NE(table.find(0), nullptr);
    EXPECT_NE(table.find(2), nullptr);
    table.findOrInsert(4).value = 3; // evicts LRU of set 0
    EXPECT_EQ(table.occupancy(), 2u);
}

TEST(PredictionTable, SetLruRespectsAccessOrder)
{
    PredictionTable<Payload> table({4, TableAssoc::TwoWay});
    table.findOrInsert(0);
    table.findOrInsert(2);
    table.find(0);           // 2 becomes LRU in set 0
    table.findOrInsert(4);   // evicts 2
    EXPECT_NE(table.find(0), nullptr);
    EXPECT_EQ(table.find(2), nullptr);
    EXPECT_NE(table.find(4), nullptr);
}

TEST(PredictionTable, FullyAssociativeUsesAllRows)
{
    PredictionTable<Payload> table({4, TableAssoc::Full});
    for (std::uint64_t k = 0; k < 4; ++k)
        table.findOrInsert(k * 4); // all alias to set 0 in D mapping
    EXPECT_EQ(table.occupancy(), 4u);
    EXPECT_EQ(table.evictions(), 0u);
    table.findOrInsert(100);
    EXPECT_EQ(table.evictions(), 1u);
}

TEST(PredictionTable, PeekDoesNotDisturbState)
{
    PredictionTable<Payload> table({4, TableAssoc::Direct});
    table.findOrInsert(1);
    std::uint64_t hits = table.hits();
    EXPECT_NE(table.peek(1), nullptr);
    EXPECT_EQ(table.peek(3), nullptr);
    EXPECT_EQ(table.hits(), hits);
}

TEST(PredictionTable, ResetClearsRowsAndCounters)
{
    PredictionTable<Payload> table({4, TableAssoc::Direct});
    table.findOrInsert(1);
    table.reset();
    EXPECT_EQ(table.occupancy(), 0u);
    EXPECT_EQ(table.find(1), nullptr);
    EXPECT_EQ(table.hits(), 0u);
    EXPECT_EQ(table.misses(), 0u); // plain find() never counts misses
}

TEST(PredictionTable, ReinsertAfterEvictionGetsFreshPayload)
{
    PredictionTable<Payload> table({2, TableAssoc::Direct});
    table.findOrInsert(0).value = 99;
    table.findOrInsert(2); // evicts key 0
    EXPECT_EQ(table.findOrInsert(0).value, 0);
}

/** Geometry sweep: the invariants must hold for every paper config. */
class TableGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 TableAssoc>>
{
};

TEST_P(TableGeometry, OccupancyBoundedAndKeysFindable)
{
    auto [rows, assoc] = GetParam();
    PredictionTable<Payload> table({rows, assoc});
    // Insert 4x the capacity with scattered keys.
    for (std::uint64_t k = 0; k < rows * 4ull; ++k) {
        table.findOrInsert(k * 7 + 1).value = static_cast<int>(k);
        EXPECT_LE(table.occupancy(), rows);
    }
    // A freshly inserted key is immediately findable.
    table.findOrInsert(999999).value = -1;
    ASSERT_NE(table.find(999999), nullptr);
    EXPECT_EQ(table.find(999999)->value, -1);
}

TEST_P(TableGeometry, WaysMatchAssoc)
{
    auto [rows, assoc] = GetParam();
    TableConfig config{rows, assoc};
    if (assoc == TableAssoc::Full) {
        EXPECT_EQ(config.ways(), rows);
        EXPECT_EQ(config.numSets(), 1u);
    } else {
        EXPECT_EQ(config.ways(), static_cast<std::uint32_t>(assoc));
        EXPECT_EQ(config.numSets() * config.ways(), rows);
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, TableGeometry,
    ::testing::Combine(::testing::Values(32u, 64u, 128u, 256u, 512u,
                                         1024u),
                       ::testing::Values(TableAssoc::Direct,
                                         TableAssoc::TwoWay,
                                         TableAssoc::FourWay,
                                         TableAssoc::Full)));

TEST(AssocLabel, RoundTrips)
{
    for (TableAssoc assoc : {TableAssoc::Direct, TableAssoc::TwoWay,
                             TableAssoc::FourWay, TableAssoc::Full})
        EXPECT_EQ(parseAssoc(assocLabel(assoc)), assoc);
    EXPECT_EXIT(parseAssoc("8"), ::testing::ExitedWithCode(1),
                "bad table associativity");
}

TEST(SlotLru, InsertsAtFront)
{
    SlotLru<int> slots(3);
    slots.addOrPromote(1);
    slots.addOrPromote(2);
    ASSERT_EQ(slots.size(), 2u);
    EXPECT_EQ(slots[0], 2);
    EXPECT_EQ(slots[1], 1);
}

TEST(SlotLru, PromoteMovesToFrontWithoutGrowth)
{
    SlotLru<int> slots(3);
    slots.addOrPromote(1);
    slots.addOrPromote(2);
    slots.addOrPromote(3);
    slots.addOrPromote(1);
    ASSERT_EQ(slots.size(), 3u);
    EXPECT_EQ(slots[0], 1);
    EXPECT_EQ(slots[1], 3);
    EXPECT_EQ(slots[2], 2);
}

TEST(SlotLru, EvictsLruWhenFull)
{
    SlotLru<int> slots(2);
    slots.addOrPromote(1);
    slots.addOrPromote(2);
    slots.addOrPromote(3); // evicts 1
    ASSERT_EQ(slots.size(), 2u);
    EXPECT_EQ(slots[0], 3);
    EXPECT_EQ(slots[1], 2);
}

TEST(SlotLru, SetCapacityShrinksFromLruEnd)
{
    SlotLru<int> slots(4);
    slots.addOrPromote(1);
    slots.addOrPromote(2);
    slots.addOrPromote(3);
    slots.setCapacity(2);
    ASSERT_EQ(slots.size(), 2u);
    EXPECT_EQ(slots[0], 3);
    EXPECT_EQ(slots[1], 2);
}

TEST(SlotLru, ClearEmpties)
{
    SlotLru<int> slots(2);
    slots.addOrPromote(1);
    slots.clear();
    EXPECT_EQ(slots.size(), 0u);
}

} // namespace
} // namespace tlbpf
