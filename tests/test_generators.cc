/**
 * @file
 * Unit tests for the synthetic workload generators.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "trace/ref_stream.hh"
#include "workload/generators.hh"
#include "workload/phase_mix.hh"

namespace tlbpf
{
namespace
{

std::vector<MemRef>
drain(RefStream &s, std::size_t cap = 1u << 22)
{
    return collect(s, cap);
}

TEST(StridedScan, AddressesFollowStride)
{
    StridedScan::Config config;
    config.base = 1000;
    config.strideBytes = 64;
    config.count = 4;
    config.passes = 2;
    StridedScan scan(config);
    auto v = drain(scan);
    ASSERT_EQ(v.size(), 8u);
    EXPECT_EQ(v[0].vaddr, 1000u);
    EXPECT_EQ(v[1].vaddr, 1064u);
    EXPECT_EQ(v[3].vaddr, 1192u);
    EXPECT_EQ(v[4].vaddr, 1000u); // second pass restarts
    EXPECT_EQ(v[0].pc, config.pc);
}

TEST(StridedScan, NegativeStrideWalksDown)
{
    StridedScan::Config config;
    config.base = 10000;
    config.strideBytes = -16;
    config.count = 3;
    StridedScan scan(config);
    auto v = drain(scan);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[2].vaddr, 10000u - 32u);
}

TEST(StridedScan, ResetReplaysIdentically)
{
    StridedScan::Config config;
    config.count = 100;
    config.passes = 2;
    StridedScan scan(config);
    auto a = drain(scan);
    scan.reset();
    auto b = drain(scan);
    EXPECT_EQ(a, b);
}

TEST(StridedScan, BlockShufflePermutesPagesStably)
{
    StridedScan::Config config;
    config.base = 1ull << 30;
    config.strideBytes = 4096;
    config.count = 64;
    config.passes = 2;
    config.shuffleBlockPages = 4;
    config.seed = 42;
    StridedScan scan(config);
    auto v = drain(scan);
    ASSERT_EQ(v.size(), 128u);
    // Pass 1 and pass 2 visit identical page sequences.
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(v[i].vaddr, v[64 + i].vaddr);
    // All 64 pages are still visited exactly once per pass.
    std::set<Vpn> pages;
    for (int i = 0; i < 64; ++i)
        pages.insert(v[i].vpn());
    EXPECT_EQ(pages.size(), 64u);
    // And the order is not plain sequential.
    bool sequential = true;
    for (int i = 1; i < 64; ++i)
        sequential = sequential && v[i].vpn() == v[i - 1].vpn() + 1;
    EXPECT_FALSE(sequential);
}

TEST(ChangingStrideScan, PhasesChangeStride)
{
    ChangingStrideScan::Config config;
    config.base = 0x1000;
    config.phases = {{16, 3}, {256, 2}};
    config.passes = 1;
    ChangingStrideScan scan(config);
    auto v = drain(scan);
    ASSERT_EQ(v.size(), 5u);
    EXPECT_EQ(v[1].vaddr - v[0].vaddr, 16u);
    EXPECT_EQ(v[4].vaddr - v[3].vaddr, 256u);
}

TEST(ChangingStrideScan, PassesRestartFromBase)
{
    ChangingStrideScan::Config config;
    config.base = 0x1000;
    config.phases = {{8, 2}};
    config.passes = 2;
    ChangingStrideScan scan(config);
    auto v = drain(scan);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[2].vaddr, 0x1000u);
}

TEST(DistancePatternWalk, FollowsPatternWithoutNoise)
{
    DistancePatternWalk::Config config;
    config.basePage = 1000;
    config.regionPages = 1 << 20;
    config.pattern = {1, 5, -2};
    config.steps = 9;
    config.refsPerStep = 1;
    config.passes = 1;
    config.noise = 0.0;
    DistancePatternWalk walk(config);
    auto v = drain(walk);
    ASSERT_EQ(v.size(), 9u);
    EXPECT_EQ(v[0].vpn(), 1000u);
    EXPECT_EQ(v[1].vpn(), 1001u);
    EXPECT_EQ(v[2].vpn(), 1006u);
    EXPECT_EQ(v[3].vpn(), 1004u);
    EXPECT_EQ(v[4].vpn(), 1005u);
}

TEST(DistancePatternWalk, DwellStaysOnPage)
{
    DistancePatternWalk::Config config;
    config.basePage = 1000;
    config.pattern = {3};
    config.steps = 2;
    config.refsPerStep = 4;
    DistancePatternWalk walk(config);
    auto v = drain(walk);
    ASSERT_EQ(v.size(), 8u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(v[i].vpn(), 1000u);
    for (int i = 4; i < 8; ++i)
        EXPECT_EQ(v[i].vpn(), 1003u);
}

TEST(DistancePatternWalk, ResetIsDeterministicEvenWithNoise)
{
    DistancePatternWalk::Config config;
    config.pattern = {1, 7, -3};
    config.steps = 500;
    config.refsPerStep = 2;
    config.noise = 0.3;
    config.seed = 99;
    DistancePatternWalk walk(config);
    auto a = drain(walk);
    walk.reset();
    auto b = drain(walk);
    EXPECT_EQ(a, b);
}

TEST(DistancePatternWalk, WrapsInsideRegion)
{
    DistancePatternWalk::Config config;
    config.basePage = 100;
    config.regionPages = 10;
    config.pattern = {7};
    config.steps = 50;
    config.refsPerStep = 1;
    DistancePatternWalk walk(config);
    MemRef r;
    while (walk.next(r)) {
        EXPECT_GE(r.vpn(), 100u);
        EXPECT_LT(r.vpn(), 110u);
    }
}

TEST(HistoryLoop, SequenceLengthMatchesConfig)
{
    HistoryLoop::Config config;
    config.footprintPages = 64;
    config.seqLen = 64;
    config.alphabetSize = 6;
    config.refsPerStep = 2;
    config.passes = 1;
    HistoryLoop loop(config);
    EXPECT_EQ(loop.sequence().size(), 64u);
    EXPECT_EQ(drain(loop).size(), 64u * 2u);
}

TEST(HistoryLoop, NearPermutationVisitsEachPageOnce)
{
    // With seqLen == footprint, every page is visited exactly once
    // per pass — the property that makes RP/MP history stable.
    HistoryLoop::Config config;
    config.footprintPages = 200;
    config.seqLen = 200;
    config.alphabetSize = 8;
    config.seed = 5;
    HistoryLoop loop(config);
    std::set<Vpn> pages(loop.sequence().begin(), loop.sequence().end());
    EXPECT_EQ(pages.size(), 200u);
}

TEST(HistoryLoop, PagesStayInFootprint)
{
    HistoryLoop::Config config;
    config.basePage = 5000;
    config.footprintPages = 100;
    config.seqLen = 100;
    HistoryLoop loop(config);
    for (Vpn vpn : loop.sequence()) {
        EXPECT_GE(vpn, 5000u);
        EXPECT_LT(vpn, 5100u);
    }
}

TEST(HistoryLoop, PassesReplayTheSameSequence)
{
    HistoryLoop::Config config;
    config.footprintPages = 50;
    config.seqLen = 50;
    config.refsPerStep = 1;
    config.passes = 2;
    HistoryLoop loop(config);
    auto v = drain(loop);
    ASSERT_EQ(v.size(), 100u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(v[i].vpn(), v[50 + i].vpn());
}

TEST(HistoryLoop, BurstinessPreservesMeanDwell)
{
    HistoryLoop::Config config;
    config.footprintPages = 500;
    config.seqLen = 500;
    config.refsPerStep = 40;
    config.passes = 4;
    config.burstiness = 0.4;
    config.seed = 77;
    HistoryLoop loop(config);
    auto v = drain(loop);
    double refs_per_step = static_cast<double>(v.size()) / (500.0 * 4);
    EXPECT_NEAR(refs_per_step, 40.0, 6.0);
}

TEST(HistoryLoop, ResetDeterministicWithBurstiness)
{
    HistoryLoop::Config config;
    config.footprintPages = 64;
    config.seqLen = 64;
    config.refsPerStep = 10;
    config.burstiness = 0.5;
    config.passes = 2;
    HistoryLoop loop(config);
    auto a = drain(loop);
    loop.reset();
    auto b = drain(loop);
    EXPECT_EQ(a, b);
}

TEST(AlternatingPermutations, RoundsAlternateBetweenTwoOrders)
{
    AlternatingPermutations::Config config;
    config.basePage = 100;
    config.numPages = 16;
    config.rounds = 4;
    config.refsPerStep = 1;
    AlternatingPermutations alt(config);
    auto v = drain(alt);
    ASSERT_EQ(v.size(), 64u);
    // Rounds 0 and 2 identical, 1 and 3 identical, 0 and 1 different.
    bool differ = false;
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(v[i].vpn(), v[32 + i].vpn());
        EXPECT_EQ(v[16 + i].vpn(), v[48 + i].vpn());
        differ = differ || v[i].vpn() != v[16 + i].vpn();
    }
    EXPECT_TRUE(differ);
}

TEST(AlternatingPermutations, EachRoundIsAPermutation)
{
    AlternatingPermutations::Config config;
    config.basePage = 100;
    config.numPages = 32;
    config.rounds = 2;
    config.refsPerStep = 1;
    AlternatingPermutations alt(config);
    auto v = drain(alt);
    for (int round = 0; round < 2; ++round) {
        std::set<Vpn> pages;
        for (int i = 0; i < 32; ++i)
            pages.insert(v[round * 32 + i].vpn());
        EXPECT_EQ(pages.size(), 32u);
        EXPECT_EQ(*pages.begin(), 100u);
        EXPECT_EQ(*pages.rbegin(), 131u);
    }
}

TEST(ZipfMix, StaysInRangeAndIsDeterministic)
{
    ZipfMix::Config config;
    config.basePage = 700;
    config.numPages = 64;
    config.steps = 300;
    config.refsPerStep = 2;
    config.seed = 3;
    ZipfMix mix(config);
    auto a = drain(mix);
    EXPECT_EQ(a.size(), 600u);
    for (const MemRef &r : a) {
        EXPECT_GE(r.vpn(), 700u);
        EXPECT_LT(r.vpn(), 764u);
    }
    mix.reset();
    EXPECT_EQ(drain(mix), a);
}

TEST(ZipfMix, PopularPagesDominante)
{
    ZipfMix::Config config;
    config.numPages = 1000;
    config.zipfSkew = 1.2;
    config.steps = 5000;
    config.refsPerStep = 1;
    ZipfMix mix(config);
    std::unordered_map<Vpn, int> counts;
    MemRef r;
    while (mix.next(r))
        ++counts[r.vpn()];
    int max_count = 0;
    for (const auto &[vpn, c] : counts)
        max_count = std::max(max_count, c);
    EXPECT_GT(max_count, 100); // top page ≫ uniform share of 5
}

TEST(PaceStream, AssignsMonotonicInstructionCounts)
{
    StridedScan::Config scan;
    scan.count = 10;
    PaceStream paced(std::make_unique<StridedScan>(scan), 3.0);
    auto v = drain(paced);
    ASSERT_EQ(v.size(), 10u);
    EXPECT_EQ(v[0].icount, 0u);
    EXPECT_EQ(v[1].icount, 3u);
    EXPECT_EQ(v[9].icount, 27u);
}

TEST(PaceStream, ResetRestartsPacing)
{
    StridedScan::Config scan;
    scan.count = 5;
    PaceStream paced(std::make_unique<StridedScan>(scan), 2.0);
    drain(paced);
    paced.reset();
    auto v = drain(paced);
    EXPECT_EQ(v[0].icount, 0u);
}

TEST(PhaseMix, LoopedScanHitsRefBudget)
{
    auto s = makeLoopedScan(1000, 256, 10, 5000, 0x400000);
    auto v = drain(*s);
    EXPECT_GE(v.size(), 5000u);
    // footprint 10 pages at stride 256 = 160 refs/pass
    EXPECT_LT(v.size(), 5000u + 160u);
}

TEST(PhaseMix, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_EQ(ceilDiv(1, 100), 1u);
}

TEST(MultiStreamScan, InterleavesDistinctPcs)
{
    std::vector<StridedScan::Config> streams(2);
    streams[0].base = 0x10000;
    streams[0].pc = 0x4000;
    streams[0].count = 4;
    streams[1].base = 0x90000;
    streams[1].pc = 0x5000;
    streams[1].count = 4;
    auto s = makeMultiStreamScan(std::move(streams), 1);
    auto v = drain(*s);
    ASSERT_EQ(v.size(), 8u);
    EXPECT_EQ(v[0].pc, 0x4000u);
    EXPECT_EQ(v[1].pc, 0x5000u);
    EXPECT_EQ(v[2].pc, 0x4000u);
}

} // namespace
} // namespace tlbpf
