/**
 * @file
 * Tests for the core DistancePredictor — the paper's mechanism in its
 * generic (unit-agnostic) form, including the worked examples from
 * Section 2.5.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/distance_predictor.hh"

namespace tlbpf
{
namespace
{

std::vector<std::uint64_t>
observe(DistancePredictor &dp, std::uint64_t unit)
{
    std::vector<std::uint64_t> out;
    dp.observe(unit, out);
    return out;
}

DistancePredictorConfig
config(std::uint32_t rows = 256, std::uint32_t slots = 2,
       TableAssoc assoc = TableAssoc::Direct)
{
    return DistancePredictorConfig{TableConfig{rows, assoc}, slots};
}

TEST(DistancePredictor, FirstObservationPredictsNothing)
{
    DistancePredictor dp(config());
    EXPECT_TRUE(observe(dp, 100).empty());
}

TEST(DistancePredictor, SequentialScanPredictsFromSecondDistance)
{
    // Units 1,2,3,...: a single "1 -> 1" row suffices (the paper's
    // sequential example).
    DistancePredictor dp(config());
    observe(dp, 1);
    observe(dp, 2); // dist 1 seen, row for 1 still empty
    auto p = observe(dp, 3); // row[1] = {1} learned: predict 4
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p[0], 4u);
    EXPECT_LE(dp.tableOccupancy(), 1u);
}

TEST(DistancePredictor, PaperExampleTwoEntryTable)
{
    // The paper's reference string 1, 2, 4, 5, 7, 8: distance 1 is
    // followed by 2 and vice versa, needing only a 2-entry table.
    DistancePredictor dp(config(256, 2));
    observe(dp, 1);
    observe(dp, 2);           // dist 1
    observe(dp, 4);           // dist 2, learned 1 -> 2
    auto at5 = observe(dp, 5);// dist 1, learned 2 -> 1; row[1]={2}
    ASSERT_EQ(at5.size(), 1u);
    EXPECT_EQ(at5[0], 7u); // 5 + 2
    auto at7 = observe(dp, 7); // dist 2; row[2]={1}
    ASSERT_EQ(at7.size(), 1u);
    EXPECT_EQ(at7[0], 8u); // 7 + 1
    EXPECT_EQ(dp.tableOccupancy(), 2u);
}

TEST(DistancePredictor, NegativeDistancesWork)
{
    // Descending scan 100, 99, 98...
    DistancePredictor dp(config());
    observe(dp, 100);
    observe(dp, 99);
    auto p = observe(dp, 98);
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p[0], 97u);
}

TEST(DistancePredictor, PredictionsNeverGoNegative)
{
    DistancePredictor dp(config());
    observe(dp, 10);
    observe(dp, 5); // dist -5
    auto p = observe(dp, 0); // dist -5 again: would predict -5
    EXPECT_TRUE(p.empty());
}

TEST(DistancePredictor, SlotsBoundPredictions)
{
    for (std::uint32_t s : {1u, 2u, 4u, 6u}) {
        DistancePredictor dp(config(256, s));
        // Distance 1 followed by many different distances.
        std::uint64_t unit = 1000;
        observe(dp, unit);
        std::uint64_t deltas[] = {1, 5, 1, 9, 1, 13, 1, 17, 1, 21};
        std::size_t max_seen = 0;
        for (std::uint64_t d : deltas) {
            unit += d;
            max_seen = std::max(max_seen, observe(dp, unit).size());
        }
        EXPECT_LE(max_seen, s);
    }
}

TEST(DistancePredictor, LruSlotKeepsTwoAlternatingFollowers)
{
    // Distance 1 alternately followed by +3 and +5: with s=2 both
    // followers stay resident and both targets are predicted.
    DistancePredictor dp(config(256, 2));
    std::uint64_t unit = 100;
    observe(dp, unit);
    std::uint64_t deltas[] = {1, 3, 1, 5, 1, 3, 1, 5};
    std::vector<std::uint64_t> last;
    for (std::uint64_t d : deltas) {
        unit += d;
        last.clear();
        dp.observe(unit, last);
    }
    // unit now at the end of a +5; last observation was distance 5.
    // Next distance-1 observation should predict both unit+3 and
    // unit+5.
    unit += 1;
    auto p = observe(dp, unit);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_TRUE((p[0] == unit + 3 && p[1] == unit + 5) ||
                (p[0] == unit + 5 && p[1] == unit + 3));
}

TEST(DistancePredictor, ResetForgetsEverything)
{
    DistancePredictor dp(config());
    observe(dp, 1);
    observe(dp, 2);
    observe(dp, 3);
    dp.reset();
    EXPECT_EQ(dp.observations(), 0u);
    EXPECT_EQ(dp.tableOccupancy(), 0u);
    observe(dp, 50);
    EXPECT_TRUE(observe(dp, 51).empty()); // history gone
}

TEST(DistancePredictor, ObservationCounter)
{
    DistancePredictor dp(config());
    for (std::uint64_t u = 0; u < 10; ++u)
        observe(dp, u * 2);
    EXPECT_EQ(dp.observations(), 10u);
}

TEST(DistancePredictor, StorageBitsScaleWithRowsAndSlots)
{
    DistancePredictor small(config(32, 2));
    DistancePredictor big(config(256, 2));
    DistancePredictor wide(config(32, 6));
    EXPECT_LT(small.storageBits(), big.storageBits());
    EXPECT_LT(small.storageBits(), wide.storageBits());
    EXPECT_EQ(big.storageBits() % 256, 0u);
}

TEST(DistancePredictor, SmallTableSufficesForPatternedStream)
{
    // A repeating distance pattern with 4 distinct distances needs
    // only a handful of rows — the paper's key space argument.  Count
    // correct predictions with a 32-row table vs a 1024-row table.
    auto run = [](std::uint32_t rows) {
        DistancePredictor dp(config(rows, 2));
        std::int64_t pattern[] = {1, 7, -3, 9};
        std::uint64_t unit = 10000;
        std::uint64_t correct = 0;
        std::vector<std::uint64_t> predicted;
        std::vector<std::uint64_t> p;
        for (int i = 0; i < 4000; ++i) {
            bool was_predicted =
                std::find(predicted.begin(), predicted.end(), unit) !=
                predicted.end();
            correct += was_predicted;
            p.clear();
            dp.observe(unit, p);
            predicted = p;
            unit = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(unit) + pattern[i % 4]);
        }
        return correct;
    };
    std::uint64_t small = run(32);
    std::uint64_t big = run(1024);
    EXPECT_GT(small, 3900u);
    // Within 1% of the big table: r-insensitivity.
    EXPECT_NEAR(static_cast<double>(small), static_cast<double>(big),
                40.0);
}

TEST(DistancePredictor, RejectsBadSlotCount)
{
    EXPECT_DEATH(DistancePredictor dp(config(256, 0)), "slots");
    EXPECT_DEATH(DistancePredictor dp(config(256, 9)), "slots");
}

} // namespace
} // namespace tlbpf
