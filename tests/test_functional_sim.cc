/**
 * @file
 * Tests for the functional simulator: metric definitions, the
 * prefetch-buffer promotion flow, and duplicate suppression.
 */

#include <gtest/gtest.h>

#include "sim/functional_sim.hh"
#include "trace/ref_stream.hh"
#include "util/random.hh"

namespace tlbpf
{
namespace
{

std::unique_ptr<VectorStream>
pageStream(std::initializer_list<Vpn> pages, Addr pc = 0x4000)
{
    std::vector<MemRef> refs;
    std::uint64_t icount = 0;
    for (Vpn p : pages) {
        refs.push_back(MemRef{p * kDefaultPageBytes, pc, false, icount});
        icount += 3;
    }
    return std::make_unique<VectorStream>(std::move(refs));
}

SimConfig
tinyConfig()
{
    SimConfig config;
    config.tlb = TlbConfig{4, 0};
    config.pbEntries = 4;
    return config;
}

MechanismSpec
spec(const std::string &text)
{
    return MechanismSpec::parse(text);
}

TEST(FunctionalSim, CountsRefsAndMisses)
{
    auto stream = pageStream({1, 1, 2, 1, 3});
    SimResult r = simulate(tinyConfig(), spec("none"), *stream);
    EXPECT_EQ(r.refs, 5u);
    EXPECT_EQ(r.misses, 3u); // 1, 2, 3 cold; repeats hit
    EXPECT_EQ(r.demandFetches, 3u);
    EXPECT_EQ(r.pbHits, 0u);
    EXPECT_DOUBLE_EQ(r.missRate(), 0.6);
    EXPECT_DOUBLE_EQ(r.accuracy(), 0.0);
    EXPECT_EQ(r.footprintPages, 3u);
}

TEST(FunctionalSim, LruEvictionCausesCapacityMisses)
{
    // TLB of 4 entries cycling over 5 pages: every access misses after
    // warmup.
    std::vector<MemRef> refs;
    for (int pass = 0; pass < 3; ++pass)
        for (Vpn p = 0; p < 5; ++p)
            refs.push_back(MemRef{p * kDefaultPageBytes, 0, false, 0});
    VectorStream stream(std::move(refs));
    SimResult r = simulate(tinyConfig(), spec("none"), stream);
    EXPECT_EQ(r.misses, 15u);
}

TEST(FunctionalSim, SequentialPrefetcherConvertsMissesToBufferHits)
{
    // Pages 0..9 once: SP prefetches p+1 on each miss, so only page 0
    // truly demand-misses.
    std::vector<MemRef> refs;
    for (Vpn p = 0; p < 10; ++p)
        refs.push_back(MemRef{p * kDefaultPageBytes, 0, false, 0});
    VectorStream stream(std::move(refs));
    SimResult r = simulate(tinyConfig(), spec("sp"), stream);
    EXPECT_EQ(r.misses, 10u); // still TLB misses by definition
    EXPECT_EQ(r.pbHits, 9u);
    EXPECT_EQ(r.demandFetches, 1u);
    EXPECT_DOUBLE_EQ(r.accuracy(), 0.9);
}

TEST(FunctionalSim, PrefetchingNeverChangesTlbMissCount)
{
    // The buffer is outside the TLB: on every miss the page enters the
    // TLB either way, so the TLB miss sequence is identical across
    // schemes (the paper: prefetching cannot increase the miss rate).
    std::vector<MemRef> refs;
    std::uint64_t x = 12345;
    for (int i = 0; i < 4000; ++i) {
        Vpn p = splitMix64(x) % 64;
        refs.push_back(MemRef{p * kDefaultPageBytes,
                              0x4000 + (p % 7) * 4, false,
                              static_cast<std::uint64_t>(i) * 3});
    }
    std::uint64_t baseline = 0;
    bool first = true;
    for (const char *text : {"none", "sp", "asp(rows=64)",
                             "mp(rows=64)", "rp", "dp(rows=64)"}) {
        VectorStream stream(refs);
        SimResult r = simulate(tinyConfig(), spec(text), stream);
        if (first) {
            baseline = r.misses;
            first = false;
        }
        EXPECT_EQ(r.misses, baseline) << text;
    }
    EXPECT_GT(baseline, 0u);
}

TEST(FunctionalSim, DuplicatePrefetchesSuppressed)
{
    // Sequential stream with SP: each miss wants p+1, which is never
    // already buffered (it was consumed), but p+1 may be in the TLB on
    // wrap-around.  Craft a direct duplicate: page already in TLB.
    auto stream = pageStream({5, 4, 5, 6});
    // miss 5 -> prefetch 6; miss 4 -> prefetch 5 (5 is in TLB:
    // suppressed); 5 hits TLB; 6 hits buffer.
    SimResult r = simulate(tinyConfig(), spec("sp"), *stream);
    EXPECT_GE(r.prefetchesSuppressed, 1u);
    EXPECT_EQ(r.pbHits, 1u);
}

TEST(FunctionalSim, BufferHitPromotesToTlb)
{
    FunctionalSimulator sim(tinyConfig(), spec("sp"));
    auto feed = [&sim](Vpn p) {
        sim.process(MemRef{p * kDefaultPageBytes, 0, false, 0});
    };
    feed(1); // miss, prefetch 2
    EXPECT_TRUE(sim.buffer().contains(2));
    feed(2); // buffer hit -> promoted
    EXPECT_FALSE(sim.buffer().contains(2));
    EXPECT_TRUE(sim.tlb().contains(2));
    EXPECT_EQ(sim.result().pbHits, 1u);
}

TEST(FunctionalSim, RpStateOpsCounted)
{
    std::vector<MemRef> refs;
    for (int pass = 0; pass < 4; ++pass)
        for (Vpn p = 0; p < 12; ++p)
            refs.push_back(MemRef{p * kDefaultPageBytes, 0, false, 0});
    VectorStream stream(std::move(refs));
    SimResult rp = simulate(tinyConfig(), spec("rp"), stream);
    EXPECT_GT(rp.stateOps, 0u);
    stream.reset();
    SimResult dp = simulate(tinyConfig(), spec("dp(rows=64)"), stream);
    EXPECT_EQ(dp.stateOps, 0u);
    EXPECT_GT(rp.memOpsPerMiss(), dp.memOpsPerMiss());
}

TEST(FunctionalSim, AccuracyIsZeroWithoutPrefetcher)
{
    auto stream = pageStream({1, 2, 3, 1, 2, 3});
    SimResult r = simulate(tinyConfig(), spec("none"), *stream);
    EXPECT_EQ(r.prefetchesIssued, 0u);
    EXPECT_DOUBLE_EQ(r.accuracy(), 0.0);
}

TEST(FunctionalSim, EmptyStreamYieldsZeroedResult)
{
    VectorStream stream(std::vector<MemRef>{});
    SimResult r = simulate(tinyConfig(), spec("dp(rows=64)"), stream);
    EXPECT_EQ(r.refs, 0u);
    EXPECT_DOUBLE_EQ(r.missRate(), 0.0);
    EXPECT_DOUBLE_EQ(r.accuracy(), 0.0);
}

TEST(FunctionalSim, SmallerTlbMissesMore)
{
    std::vector<MemRef> refs;
    std::uint64_t x = 777;
    for (int i = 0; i < 5000; ++i) {
        Vpn p = splitMix64(x) % 32;
        refs.push_back(MemRef{p * kDefaultPageBytes, 0, false, 0});
    }
    SimConfig small = tinyConfig(); // 4 entries
    SimConfig large = tinyConfig();
    large.tlb.entries = 16;
    VectorStream s1(refs);
    VectorStream s2(refs);
    SimResult r_small = simulate(small, spec("none"), s1);
    SimResult r_large = simulate(large, spec("none"), s2);
    EXPECT_GT(r_small.misses, r_large.misses);
}

TEST(FunctionalSim, ContextSwitchFlushesEverything)
{
    // 3 pages fit the 4-entry TLB, so after warmup there are no
    // misses — unless context switches flush the TLB.
    std::vector<MemRef> refs;
    for (int pass = 0; pass < 100; ++pass)
        for (Vpn p = 0; p < 3; ++p)
            refs.push_back(MemRef{p * kDefaultPageBytes, 0, false, 0});
    SimConfig no_switch = tinyConfig();
    SimConfig switching = tinyConfig();
    switching.contextSwitchInterval = 30;
    VectorStream s1(refs);
    VectorStream s2(refs);
    SimResult base = simulate(no_switch, spec("none"), s1);
    SimResult flushed = simulate(switching, spec("none"), s2);
    EXPECT_EQ(base.misses, 3u);
    EXPECT_EQ(flushed.contextSwitches, 9u); // 300 refs / 30 - 1
    EXPECT_EQ(flushed.misses, 3u + 9u * 3u);
}

TEST(FunctionalSim, ContextSwitchResetsPrefetcherState)
{
    // DP on a sequential stream: with switching, the first post-flush
    // miss cannot be predicted (history gone), so accuracy drops.
    std::vector<MemRef> refs;
    for (Vpn p = 0; p < 600; ++p)
        refs.push_back(MemRef{p * kDefaultPageBytes, 0, false, 0});
    SimConfig no_switch = tinyConfig();
    SimConfig switching = tinyConfig();
    switching.contextSwitchInterval = 10;
    VectorStream s1(refs);
    VectorStream s2(refs);
    SimResult base = simulate(no_switch, spec("dp(rows=64)"), s1);
    SimResult flushed = simulate(switching, spec("dp(rows=64)"), s2);
    EXPECT_GT(base.accuracy(), flushed.accuracy());
    EXPECT_GT(flushed.accuracy(), 0.0); // but DP re-learns quickly
}

TEST(FunctionalSim, TrainOnAllRefsFeedsHitsToThePrefetcher)
{
    // One page referenced repeatedly with stride-0 hits between the
    // misses: in full-feed mode DP observes the hits too (distance 0
    // self-loop) and behaviour stays well-defined.
    SimConfig full = tinyConfig();
    full.trainOnAllRefs = true;
    std::vector<MemRef> refs;
    for (Vpn p = 0; p < 40; ++p)
        for (int rep = 0; rep < 4; ++rep)
            refs.push_back(MemRef{p * kDefaultPageBytes, 0, false, 0});
    VectorStream s1(refs);
    SimResult r = simulate(full, spec("dp(rows=64)"), s1);
    EXPECT_LE(r.pbHits, r.misses);
    EXPECT_GT(r.accuracy(), 0.5); // sequential page walk still caught
}

TEST(FunctionalSim, PageSizeChangesFootprint)
{
    SimConfig base = tinyConfig();
    SimConfig big_pages = tinyConfig();
    big_pages.pageBytes = 16384;
    std::vector<MemRef> refs;
    for (Addr a = 0; a < 64 * 4096; a += 4096)
        refs.push_back(MemRef{a, 0, false, 0});
    VectorStream s1(refs);
    VectorStream s2(refs);
    SimResult r4k = simulate(base, spec("none"), s1);
    SimResult r16k = simulate(big_pages, spec("none"), s2);
    EXPECT_EQ(r4k.footprintPages, 64u);
    EXPECT_EQ(r16k.footprintPages, 16u);
    EXPECT_GT(r4k.misses, r16k.misses);
}

} // namespace
} // namespace tlbpf
