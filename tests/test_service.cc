/**
 * @file
 * Tests for the sweep service stack: the strict JSON codec, the
 * length-prefixed framing (including hostile/truncated input), the
 * canonical cell keys, the result cache and checkpoint store (LRU,
 * persistence, corruption tolerance), the engine's streaming result
 * callback, and an end-to-end server/client exchange — repeat sweeps
 * served entirely from cache, alias spellings hitting the same
 * entries, mid-stream disconnects leaving the server serving, and no
 * leaked file descriptors.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <netinet/in.h>
#include <stdexcept>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "run/sweep_engine.hh"
#include "service/checkpoint_store.hh"
#include "service/client.hh"
#include "service/json.hh"
#include "service/protocol.hh"
#include "service/result_cache.hh"
#include "service/server.hh"
#include "service/store_util.hh"

namespace tlbpf
{
namespace
{

constexpr std::uint64_t kRefs = 20000;

/** A fresh empty directory under the test temp root. */
std::string
makeTempDir()
{
    std::string pattern = ::testing::TempDir() + "tlbpf_svc_XXXXXX";
    std::vector<char> buf(pattern.begin(), pattern.end());
    buf.push_back('\0');
    const char *dir = ::mkdtemp(buf.data());
    EXPECT_NE(dir, nullptr);
    return dir ? dir : "";
}

/** Open fds of this process (server + client live in-process). */
std::size_t
openFdCount()
{
    DIR *dir = ::opendir("/proc/self/fd");
    if (!dir)
        return 0;
    std::size_t count = 0;
    while (::readdir(dir))
        ++count;
    ::closedir(dir);
    return count;
}

/** Raw client socket, for tests that misbehave on purpose. */
OwnedFd
rawConnect(std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return OwnedFd(fd);
}

// --------------------------------------------------------------- JSON

TEST(Json, ParsesAndRoundTripsTypedValues)
{
    JsonValue v = JsonValue::parse(
        "{\"s\":\"a\\nb\",\"n\":-2.5,\"u\":42,\"b\":true,"
        "\"z\":null,\"a\":[1,2,3]}");
    EXPECT_EQ(v.at("s").asString(), "a\nb");
    EXPECT_DOUBLE_EQ(v.at("n").asDouble(), -2.5);
    EXPECT_EQ(v.at("u").asU64(), 42u);
    EXPECT_TRUE(v.at("b").asBool());
    EXPECT_TRUE(v.at("z").isNull());
    EXPECT_EQ(v.at("a").asArray().size(), 3u);
    EXPECT_EQ(v.keys(),
              (std::vector<std::string>{"s", "n", "u", "b", "z",
                                        "a"}));
}

TEST(Json, U64RoundTripsExactlyPastDoublePrecision)
{
    // 2^53 + 1 is not representable as a double; the codec must keep
    // the digits, not the rounded double.
    JsonValue v = JsonValue::parse("{\"c\":9007199254740993}");
    EXPECT_EQ(v.at("c").asU64(), 9007199254740993ull);
    JsonObjectWriter out;
    out.u64("c", 9007199254740993ull);
    EXPECT_EQ(out.take(), "{\"c\":9007199254740993}");
}

TEST(Json, RejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "{\"a\":}", "{\"a\":1,}", "[1,]", "nul",
          "{\"a\":1}x", "{\"a\":1,\"a\":2}", "\"unterminated",
          "\"bad\\q\"", "01", "1.", "1e", "-", "{\"a\":\"\x01\"}",
          "{1:2}"}) {
        EXPECT_THROW(JsonValue::parse(bad), std::invalid_argument)
            << "input: " << bad;
    }
    // Nesting past the depth bound.
    std::string deep(JsonValue::kMaxDepth + 2, '[');
    EXPECT_THROW(JsonValue::parse(deep), std::invalid_argument);
    // A negative or fractional number is not a u64.
    EXPECT_THROW(JsonValue::parse("{\"c\":-1}").at("c").asU64(),
                 std::invalid_argument);
    EXPECT_THROW(JsonValue::parse("{\"c\":1.5}").at("c").asU64(),
                 std::invalid_argument);
}

// ------------------------------------------------------------ framing

TEST(Framing, RoundTripsAndSignalsCleanEof)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    OwnedFd reader(fds[0]), writer(fds[1]);
    writeFrame(writer.fd(), "{\"type\":\"ping\"}");
    writeFrame(writer.fd(), "");
    std::string payload;
    EXPECT_TRUE(readFrame(reader.fd(), payload));
    EXPECT_EQ(payload, "{\"type\":\"ping\"}");
    EXPECT_TRUE(readFrame(reader.fd(), payload));
    EXPECT_EQ(payload, "");
    writer.close();
    EXPECT_FALSE(readFrame(reader.fd(), payload)); // clean EOF
}

TEST(Framing, TruncatedFrameIsATransportError)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    OwnedFd reader(fds[0]), writer(fds[1]);
    // Header promises 10 bytes; only 3 arrive before EOF.
    const char header[4] = {10, 0, 0, 0};
    ASSERT_EQ(::write(writer.fd(), header, 4), 4);
    ASSERT_EQ(::write(writer.fd(), "abc", 3), 3);
    writer.close();
    std::string payload;
    EXPECT_THROW(readFrame(reader.fd(), payload), TransportError);
}

TEST(Framing, OversizedLengthPrefixIsRejected)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    OwnedFd reader(fds[0]), writer(fds[1]);
    std::uint32_t huge = kMaxFrameBytes + 1;
    char header[4];
    std::memcpy(header, &huge, 4); // test host is little-endian
    ASSERT_EQ(::write(writer.fd(), header, 4), 4);
    std::string payload;
    EXPECT_THROW(readFrame(reader.fd(), payload),
                 std::invalid_argument);
    EXPECT_THROW(writeFrame(writer.fd(),
                            std::string(kMaxFrameBytes + 1, 'x')),
                 std::invalid_argument);
}

/**
 * Fuzz-corpus regressions (tests/data/fuzz_regressions/): hostile
 * byte streams from the fuzz_frame corpus, replayed through the same
 * pipe transport.  Each must end in the documented rejection —
 * TransportError for a peer that vanished mid-frame,
 * invalid_argument for a hostile prefix — and never anything else.
 */
TEST(Framing, FuzzRegressionStreamsFailTheDocumentedWay)
{
    struct Case {
        const char *file;
        bool transport; // else invalid_argument
    };
    for (const Case &c :
         {Case{"frame_truncated_header.bin", true},
          Case{"frame_oversize_prefix.bin", false}}) {
        std::string bytes;
        {
            std::string path = std::string(TLBPF_TEST_DATA_DIR) +
                               "/fuzz_regressions/" + c.file;
            std::FILE *f = std::fopen(path.c_str(), "rb");
            ASSERT_NE(f, nullptr) << c.file;
            int ch;
            while ((ch = std::fgetc(f)) != EOF)
                bytes.push_back(static_cast<char>(ch));
            std::fclose(f);
        }
        ASSERT_FALSE(bytes.empty()) << c.file;
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        OwnedFd reader(fds[0]), writer(fds[1]);
        ASSERT_EQ(::write(writer.fd(), bytes.data(), bytes.size()),
                  static_cast<ssize_t>(bytes.size()));
        writer.close();
        JsonValue message;
        std::string type;
        auto drain = [&] {
            while (readMessage(reader.fd(), message, type)) {
            }
        };
        if (c.transport) {
            EXPECT_THROW(drain(), TransportError) << c.file;
        } else {
            EXPECT_THROW(drain(), std::invalid_argument) << c.file;
        }
    }
}

TEST(Framing, GarbageJsonIsRejectedByReadMessage)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    OwnedFd reader(fds[0]), writer(fds[1]);
    writeFrame(writer.fd(), "this is not json");
    JsonValue message;
    std::string type;
    EXPECT_THROW(readMessage(reader.fd(), message, type),
                 std::invalid_argument);
    writeFrame(writer.fd(), "[1,2,3]"); // valid JSON, not an object
    EXPECT_THROW(readMessage(reader.fd(), message, type),
                 std::invalid_argument);
    writeFrame(writer.fd(), "{\"notype\":1}");
    EXPECT_THROW(readMessage(reader.fd(), message, type),
                 std::invalid_argument);
}

// ----------------------------------------------------------- protocol

TEST(Protocol, SweepRequestRoundTripsAndValidates)
{
    SweepRequest request;
    request.workloads = {"app:gcc", "app:mcf"};
    request.mechanisms = {"rp", "sp(adaptive)"};
    request.refs = 123456789;
    request.shards = 8;
    request.shardWarmup = ShardWarmup::Replay;
    request.passMode = PassMode::PerMechanism;
    SweepRequest back =
        SweepRequest::decode(JsonValue::parse(request.encode()));
    EXPECT_EQ(back.workloads, request.workloads);
    EXPECT_EQ(back.mechanisms, request.mechanisms);
    EXPECT_EQ(back.refs, request.refs);
    EXPECT_EQ(back.shards, 8u);
    EXPECT_EQ(back.shardWarmup, ShardWarmup::Replay);
    EXPECT_EQ(back.passMode, PassMode::PerMechanism);
    EXPECT_EQ(back.expand().size(), 4u);

    auto reject = [](const std::string &json) {
        EXPECT_THROW(
            SweepRequest::decode(JsonValue::parse(json)),
            std::invalid_argument)
            << "input: " << json;
    };
    reject("{\"type\":\"sweep\",\"workloads\":[\"app:gcc\"],"
           "\"mechanisms\":[\"rp\"],\"refs\":1,\"bogus\":1}");
    reject("{\"type\":\"sweep\",\"workloads\":[],"
           "\"mechanisms\":[\"rp\"],\"refs\":1}");
    reject("{\"type\":\"sweep\",\"workloads\":[\"app:gcc\"],"
           "\"mechanisms\":[\"rp\"],\"refs\":0}");
    reject("{\"type\":\"sweep\",\"workloads\":[\"app:gcc\"],"
           "\"mechanisms\":[\"rp\"],\"refs\":1,\"shards\":0}");
    reject("{\"type\":\"sweep\",\"workloads\":[\"app:gcc\"],"
           "\"mechanisms\":[\"rp\"],\"refs\":1,\"shards\":5000}");
}

TEST(Protocol, CellReplyRoundTripsExactCounters)
{
    CellReply reply;
    reply.index = 7;
    reply.workload = "gcc";
    reply.mechanism = "RP";
    reply.mode = JobMode::Timed;
    reply.cached = true;
    reply.counters.refs = 9007199254740993ull; // > 2^53
    reply.counters.misses = 3;
    reply.timed.cycles = 18014398509481985ull; // > 2^54
    CellReply back = CellReply::decode(JsonValue::parse(reply.encode()));
    EXPECT_EQ(back.index, 7u);
    EXPECT_EQ(back.counters.refs, 9007199254740993ull);
    EXPECT_EQ(back.timed.cycles, 18014398509481985ull);
    EXPECT_TRUE(back.cached);
    EXPECT_EQ(back.timed.functional.refs, back.counters.refs);

    // A functional cell must not carry a timing member.
    CellReply functional;
    functional.workload = "gcc";
    functional.mechanism = "RP";
    std::string json = functional.encode();
    json.insert(json.size() - 1, ",\"timing\":{\"cycles\":1,"
                                 "\"stall_cycles\":0,"
                                 "\"compute_cycles\":0,"
                                 "\"memory_ops\":0,"
                                 "\"prefetches_skipped_busy\":0,"
                                 "\"in_flight_hits\":0}");
    EXPECT_THROW(CellReply::decode(JsonValue::parse(json)),
                 std::invalid_argument);
}

// ----------------------------------------------------- canonical keys

TEST(CellKey, AliasSpellingsShareOneCacheKey)
{
    WorkloadSpec gcc = WorkloadSpec::app("gcc");
    SweepJob a = SweepJob::functional(
        gcc, MechanismSpec::parse("ASQ"), kRefs);
    SweepJob b = SweepJob::functional(
        gcc, MechanismSpec::parse("sp(adaptive)"), kRefs);
    EXPECT_EQ(cellKey(a), cellKey(b));

    SweepJob c = SweepJob::functional(
        gcc, MechanismSpec::parse("RP"), kRefs);
    SweepJob d = SweepJob::functional(
        gcc, MechanismSpec::parse("rp"), kRefs);
    EXPECT_EQ(cellKey(c), cellKey(d));
    EXPECT_NE(cellKey(a), cellKey(c));

    // Budget, geometry and mode all separate keys.
    SweepJob e = SweepJob::functional(
        gcc, MechanismSpec::parse("rp"), kRefs + 1);
    EXPECT_NE(cellKey(c), cellKey(e));
    SimConfig big;
    big.tlb.entries *= 2;
    SweepJob f = SweepJob::functional(
        gcc, MechanismSpec::parse("rp"), kRefs, big);
    EXPECT_NE(cellKey(c), cellKey(f));
    SweepJob g =
        SweepJob::timed(gcc, MechanismSpec::parse("rp"), kRefs);
    EXPECT_NE(cellKey(c), cellKey(g));
}

TEST(CellKey, CheckpointKeyIgnoresBudgetAndShardSuffix)
{
    WorkloadSpec base = WorkloadSpec::app("gcc");
    SweepJob quarter = SweepJob::functional(
        base.withShard(1, 4), MechanismSpec::parse("rp"), kRefs);
    SweepJob half = SweepJob::functional(
        base.withShard(1, 2), MechanismSpec::parse("rp"),
        2 * kRefs);
    // Same stream position => same state identity, whatever fan-out
    // or budget produced it.
    EXPECT_EQ(checkpointKey(quarter, kRefs / 2),
              checkpointKey(half, kRefs / 2));
    EXPECT_NE(checkpointKey(quarter, kRefs / 2),
              checkpointKey(quarter, kRefs / 4));
}

// ------------------------------------------------------- result cache

SweepResult
fakeResult(std::uint64_t misses)
{
    SweepResult result;
    result.workload = "gcc";
    result.mechanism = "RP";
    result.functional.refs = kRefs;
    result.functional.misses = misses;
    return result;
}

TEST(ResultCache, LruEvictsOldestAndCountsEverything)
{
    ResultCache cache(2);
    SweepResult out;
    EXPECT_FALSE(cache.lookup("a", out));
    cache.insert("a", fakeResult(1));
    cache.insert("b", fakeResult(2));
    EXPECT_TRUE(cache.lookup("a", out)); // refreshes a
    cache.insert("c", fakeResult(3));    // evicts b, the LRU entry
    EXPECT_FALSE(cache.lookup("b", out));
    EXPECT_TRUE(cache.lookup("a", out));
    EXPECT_EQ(out.functional.misses, 1u);
    EXPECT_TRUE(cache.lookup("c", out));
    ResultCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.capacity, 2u);
}

TEST(ResultCache, PersistsAcrossInstances)
{
    std::string dir = makeTempDir();
    {
        ResultCache cache(8, dir);
        SweepResult timed = fakeResult(9);
        timed.mode = JobMode::Timed;
        timed.timed.cycles = 12345;
        timed.timed.functional = timed.functional;
        cache.insert("k1", fakeResult(7));
        cache.insert("k2", timed);
    }
    ResultCache reborn(8, dir);
    SweepResult out;
    EXPECT_TRUE(reborn.lookup("k1", out));
    EXPECT_EQ(out.functional.misses, 7u);
    EXPECT_TRUE(reborn.lookup("k2", out));
    EXPECT_EQ(out.mode, JobMode::Timed);
    EXPECT_EQ(out.timed.cycles, 12345u);
    EXPECT_FALSE(reborn.lookup("k3", out));

    // A corrupt entry file degrades to a miss, not a failure.
    std::string path = dir + "/" + contentAddress("k1") + ".cell";
    std::string junk = "not a cache entry";
    ASSERT_TRUE(writeFileBytesAtomic(
        path, reinterpret_cast<const std::uint8_t *>(junk.data()),
        junk.size()));
    ResultCache corrupted(8, dir);
    EXPECT_FALSE(corrupted.lookup("k1", out));
}

TEST(ResultCache, EntryCodecRejectsForeignKeys)
{
    std::string text = encodeCacheEntry("right", fakeResult(1));
    EXPECT_NO_THROW(decodeCacheEntry(text, "right"));
    EXPECT_THROW(decodeCacheEntry(text, "wrong"),
                 std::invalid_argument);
}

// --------------------------------------------------- checkpoint store

TEST(CheckpointStore, RoundTripsMemoryAndDisk)
{
    std::string dir = makeTempDir();
    SimState state;
    state.bytes = {1, 2, 3, 4, 5};
    {
        CheckpointStore store(dir, 4);
        store.store("pos", state);
        EXPECT_EQ(store.stored(), 1u);
        SimState out;
        EXPECT_TRUE(store.load("pos", out));
        EXPECT_EQ(out.bytes, state.bytes);
        EXPECT_FALSE(store.load("other", out));
    }
    CheckpointStore reborn(dir, 4);
    SimState out;
    EXPECT_TRUE(reborn.load("pos", out)); // from disk
    EXPECT_EQ(out.bytes, state.bytes);
    EXPECT_EQ(reborn.loaded(), 1u);

    // Corrupt file: a miss, never an error.
    std::string path = dir + "/" + contentAddress("pos") + ".ckpt";
    std::uint8_t junk[3] = {9, 9, 9};
    ASSERT_TRUE(writeFileBytesAtomic(path, junk, sizeof(junk)));
    CheckpointStore corrupted(dir, 4);
    EXPECT_FALSE(corrupted.load("pos", out));
}

TEST(CheckpointStore, WarmsExplicitShardCellsBitIdentically)
{
    WorkloadSpec base = WorkloadSpec::app("gcc");
    MechanismSpec rp = MechanismSpec::parse("rp");
    CheckpointStore store("", 16);

    SweepJob shard1 =
        SweepJob::functional(base.withShard(1, 4), rp, kRefs);
    SweepResult cold = runSweepJob(shard1); // no hook: pure replay
    SweepResult first = runSweepJob(shard1, &store);
    EXPECT_EQ(first.functional, cold.functional);
    EXPECT_GE(store.stored(), 2u); // window start + window end

    // The second run warms from the stored prefix state.
    std::uint64_t loaded_before = store.loaded();
    SweepResult warm = runSweepJob(shard1, &store);
    EXPECT_EQ(warm.functional, cold.functional);
    EXPECT_GT(store.loaded(), loaded_before);

    // Shard 2 warms from shard 1's end-of-window state.
    SweepJob shard2 =
        SweepJob::functional(base.withShard(2, 4), rp, kRefs);
    SweepResult chained = runSweepJob(shard2, &store);
    EXPECT_EQ(chained.functional, runSweepJob(shard2).functional);
}

TEST(CheckpointStore, LyingHookFallsBackToReplay)
{
    /** Serves a syntactically-valid state for the wrong mechanism. */
    class LyingHook : public CheckpointHook
    {
      public:
        explicit LyingHook(SimState state) : _state(std::move(state))
        {
        }
        bool
        load(const std::string &, SimState &out) override
        {
            out = _state;
            return true;
        }
        void store(const std::string &, const SimState &) override {}

      private:
        SimState _state;
    };

    WorkloadSpec base = WorkloadSpec::app("gcc");
    // Capture a genuine state under a *different* mechanism, then
    // serve it for every key: restore must throw inside the engine
    // and the job must fall back to replay, bit-identically.
    CheckpointStore donor("", 4);
    SweepJob foreign = SweepJob::functional(
        base.withShard(1, 4), MechanismSpec::parse("dp"), kRefs);
    runSweepJob(foreign, &donor);
    SimState wrong;
    ASSERT_TRUE(donor.load(checkpointKey(foreign, kRefs / 4), wrong));

    LyingHook liar(wrong);
    SweepJob job = SweepJob::functional(
        base.withShard(1, 4), MechanismSpec::parse("rp"), kRefs);
    SweepResult result = runSweepJob(job, &liar);
    EXPECT_EQ(result.functional, runSweepJob(job).functional);
}

// -------------------------------------------------- streaming results

TEST(Streaming, CallbackDeliversEveryResultInSubmissionOrder)
{
    std::vector<SweepJob> jobs;
    for (const char *app : {"gcc", "mcf"})
        for (const char *mech : {"rp", "dp", "sp"})
            jobs.push_back(SweepJob::functional(
                WorkloadSpec::app(app), MechanismSpec::parse(mech),
                kRefs));
    SweepEngine engine(4);
    std::vector<std::size_t> order;
    std::vector<SweepResult> streamed(jobs.size());
    std::vector<SweepResult> results = engine.run(
        jobs, PassMode::SinglePass,
        [&](std::size_t i, const SweepResult &r) {
            order.push_back(i);
            streamed[i] = r;
        });
    ASSERT_EQ(order.size(), jobs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(streamed[i].functional, results[i].functional)
            << "cell " << i;
}

TEST(Streaming, ShardedRunStreamsMergedResultsInOrder)
{
    std::vector<SweepJob> jobs;
    for (const char *mech : {"rp", "dp"})
        jobs.push_back(SweepJob::functional(WorkloadSpec::app("gcc"),
                                            MechanismSpec::parse(mech),
                                            kRefs));
    SweepEngine engine(4);
    ShardPlan plan = expandShards(jobs, 4);
    std::vector<std::size_t> order;
    std::vector<SweepResult> merged = engine.runSharded(
        plan, ShardWarmup::Replay,
        [&](std::size_t i, const SweepResult &r) {
            order.push_back(i);
            EXPECT_EQ(r.workload, "gcc");
        });
    ASSERT_EQ(merged.size(), jobs.size());
    ASSERT_EQ(order.size(), jobs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
    // Merged streaming results match the plain unsharded run.
    std::vector<SweepResult> direct = engine.run(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(merged[i].functional, direct[i].functional);
}

TEST(Streaming, DeliveryStopsBeforeAFailingCell)
{
    std::vector<SweepJob> jobs;
    jobs.push_back(SweepJob::functional(WorkloadSpec::app("gcc"),
                                        MechanismSpec::parse("rp"),
                                        kRefs));
    jobs.push_back(SweepJob::functional(
        WorkloadSpec::parse("trace:/nonexistent.tpf"),
        MechanismSpec::parse("rp"), kRefs));
    jobs.push_back(SweepJob::functional(WorkloadSpec::app("mcf"),
                                        MechanismSpec::parse("rp"),
                                        kRefs));
    SweepEngine engine(2);
    std::vector<std::size_t> order;
    EXPECT_THROW(
        engine.run(jobs, PassMode::PerMechanism,
                   [&](std::size_t i, const SweepResult &) {
                       order.push_back(i);
                   }),
        std::invalid_argument);
    // Only the cell before the failing index may have streamed.
    ASSERT_LE(order.size(), 1u);
    if (!order.empty()) {
        EXPECT_EQ(order[0], 0u);
    }
}

// ------------------------------------------------------------- server

TEST(Server, EndToEndSweepCacheAndResilience)
{
    ServerOptions options;
    options.port = 0; // ephemeral
    options.threads = 2;
    options.cacheDir = makeTempDir();
    SweepServer server(options);
    std::thread serving([&] { server.serve(); });

    SweepRequest request;
    request.workloads = {"app:gcc", "app:mcf"};
    request.mechanisms = {"RP", "ASQ"};
    request.refs = kRefs;

    // First sweep simulates everything; results match a local run.
    // The server serves one connection at a time, so every client
    // below is scoped to its exchange.
    ServiceClient::SweepOutcome cold =
        ServiceClient("127.0.0.1", server.port()).sweep(request);
    EXPECT_EQ(cold.done.cells, 4u);
    EXPECT_EQ(cold.done.simulated, 4u);
    EXPECT_EQ(cold.done.cacheHits, 0u);
    EXPECT_EQ(cold.cachedCells, 0u);
    SweepEngine local(2);
    std::vector<SweepResult> direct = local.run(
        SweepRequest::decode(JsonValue::parse(request.encode()))
            .expand());
    ASSERT_EQ(cold.results.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(cold.results[i].functional, direct[i].functional)
            << "cell " << i;
        EXPECT_EQ(cold.results[i].workload, direct[i].workload);
        EXPECT_EQ(cold.results[i].mechanism, direct[i].mechanism);
    }

    // The identical resubmit is served entirely from the cache.
    ServiceClient::SweepOutcome hot =
        ServiceClient("127.0.0.1", server.port()).sweep(request);
    EXPECT_EQ(hot.done.simulated, 0u);
    EXPECT_EQ(hot.done.cacheHits, 4u);
    EXPECT_EQ(hot.cachedCells, 4u);
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(hot.results[i].functional, direct[i].functional);

    // Alias spellings of the same mechanisms also hit.
    SweepRequest aliased = request;
    aliased.mechanisms = {"rp", "sp(adaptive)"};
    ServiceClient::SweepOutcome alias_hit =
        ServiceClient("127.0.0.1", server.port()).sweep(aliased);
    EXPECT_EQ(alias_hit.done.simulated, 0u);
    EXPECT_EQ(alias_hit.done.cacheHits, 4u);

    // A malformed request gets an error frame; the connection dies
    // but the server keeps serving.
    {
        OwnedFd bad = rawConnect(server.port());
        writeFrame(bad.fd(), "{\"type\":\"gibberish\"}");
        JsonValue message;
        std::string type;
        ASSERT_TRUE(readMessage(bad.fd(), message, type));
        EXPECT_EQ(type, "error");
    }

    // A client that vanishes mid-stream doesn't stop the batch: the
    // cells it abandoned are in the cache for the next client.
    {
        SweepRequest abandoned = request;
        abandoned.workloads = {"app:swim"};
        abandoned.mechanisms = {"RP"};
        OwnedFd quitter = rawConnect(server.port());
        writeFrame(quitter.fd(), abandoned.encode());
        std::string payload;
        ASSERT_TRUE(readFrame(quitter.fd(), payload)); // batch header
        quitter.close();                               // vanish

        ServiceClient::SweepOutcome retry =
            ServiceClient("127.0.0.1", server.port()).sweep(abandoned);
        EXPECT_EQ(retry.done.simulated, 0u);
        EXPECT_EQ(retry.done.cacheHits, 1u);
    }

    // Stats reflect everything above: 5 sweep requests answered
    // 4+4+4+1+1 = 14 cells; the 4 cold cells and the abandoned cell
    // missed, everything else hit.
    StatsReply stats =
        ServiceClient("127.0.0.1", server.port()).stats();
    EXPECT_EQ(stats.requests, 5u);
    EXPECT_EQ(stats.cells, 14u);
    EXPECT_EQ(stats.cacheMisses, 5u);
    EXPECT_EQ(stats.cacheHits, 9u);

    // Connections don't leak fds: a burst of pings returns the
    // process to its steady-state count.  A finished session's fd is
    // only released by the serve loop's reap pass (every 200ms poll
    // tick), so "stable" must mean unchanged across a full reap
    // cycle, not just two adjacent samples.
    auto stableFdCount = [] {
        std::size_t count = openFdCount();
        int held = 0;
        for (int i = 0; i < 400 && held < 30; ++i) {
            ::usleep(10 * 1000);
            std::size_t next = openFdCount();
            if (next == count) {
                ++held;
            } else {
                held = 0;
                count = next;
            }
        }
        return count;
    };
    std::size_t baseline = stableFdCount();
    for (int i = 0; i < 10; ++i)
        ServiceClient("127.0.0.1", server.port()).ping();
    EXPECT_EQ(stableFdCount(), baseline);

    ServiceClient("127.0.0.1", server.port()).shutdown();
    serving.join();

    // A fresh server over the same cache directory answers from disk.
    ServerOptions reopened = options;
    SweepServer server2(reopened);
    std::thread serving2([&] { server2.serve(); });
    ServiceClient::SweepOutcome from_disk =
        ServiceClient("127.0.0.1", server2.port()).sweep(request);
    EXPECT_EQ(from_disk.done.simulated, 0u);
    EXPECT_EQ(from_disk.done.cacheHits, 4u);
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(from_disk.results[i].functional,
                  direct[i].functional);
    ServiceClient("127.0.0.1", server2.port()).shutdown();
    serving2.join();
}

TEST(Server, ShardedRequestsShareCheckpointsAcrossRequests)
{
    ServerOptions options;
    options.port = 0;
    options.threads = 2;
    SweepServer server(options);
    std::thread serving([&] { server.serve(); });

    // One explicit shard cell simulates and deposits its window
    // boundaries; the *next* shard of the same cell warms from them.
    SweepRequest head;
    head.workloads = {"app:gcc#0/4", "app:gcc#1/4"};
    head.mechanisms = {"RP"};
    head.refs = kRefs;
    ServiceClient("127.0.0.1", server.port()).sweep(head);
    StatsReply after_head =
        ServiceClient("127.0.0.1", server.port()).stats();
    EXPECT_GT(after_head.checkpointsStored, 0u);

    SweepRequest tail = head;
    tail.workloads = {"app:gcc#2/4"};
    ServiceClient::SweepOutcome out =
        ServiceClient("127.0.0.1", server.port()).sweep(tail);
    StatsReply after_tail =
        ServiceClient("127.0.0.1", server.port()).stats();
    EXPECT_GT(after_tail.checkpointsLoaded,
              after_head.checkpointsLoaded);

    // Bit-identical to the direct path despite the warm start.
    SweepJob job = SweepJob::functional(
        WorkloadSpec::parse("app:gcc#2/4"),
        MechanismSpec::parse("RP"), kRefs);
    EXPECT_EQ(out.results[0].functional,
              runSweepJob(job).functional);

    // A full sharded sweep request also round-trips bit-identically.
    SweepRequest fanned;
    fanned.workloads = {"app:mcf"};
    fanned.mechanisms = {"RP", "dp"};
    fanned.refs = kRefs;
    fanned.shards = 4;
    ServiceClient::SweepOutcome sharded =
        ServiceClient("127.0.0.1", server.port()).sweep(fanned);
    SweepEngine local(2);
    std::vector<SweepResult> direct =
        local.run(SweepRequest::decode(
                      JsonValue::parse(fanned.encode()))
                      .expand());
    ASSERT_EQ(sharded.results.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(sharded.results[i].functional,
                  direct[i].functional);

    ServiceClient("127.0.0.1", server.port()).shutdown();
    serving.join();
}

} // namespace
} // namespace tlbpf
