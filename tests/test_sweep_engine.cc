/**
 * @file
 * Unit tests for the parallel sweep engine and its thread pool:
 * submission-order results, empty/single batches, exception
 * propagation from failing jobs (including bad workloads surfacing
 * as a clean fatal at the bench boundary instead of an abort from a
 * worker), and the ResultSink renderers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "run/result_sink.hh"
#include "run/sweep_engine.hh"
#include "sim/experiment.hh"
#include "util/logging.hh"

namespace tlbpf
{
namespace
{

constexpr std::uint64_t kRefs = 20000;

std::vector<SweepJob>
mixedBatch()
{
    std::vector<SweepJob> jobs;
    for (const char *app : {"gcc", "mcf", "swim"})
        for (const MechanismSpec &spec : table2Specs())
            jobs.push_back(SweepJob::functional(WorkloadSpec::app(app),
                                                spec, kRefs));
    MechanismSpec rp = MechanismSpec::parse("rp");
    jobs.push_back(SweepJob::timed(WorkloadSpec::app("ammp"), rp,
                                   kRefs));
    return jobs;
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h = 0;
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(100, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum, 4950u) << "round " << round;
    }
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, LowestIndexExceptionWins)
{
    ThreadPool pool(4);
    for (int round = 0; round < 3; ++round) {
        try {
            pool.parallelFor(64, [&](std::size_t i) {
                if (i % 7 == 3) // lowest failing index is 3
                    throw std::runtime_error(
                        "index " + std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "index 3");
        }
    }
    // The pool survives a failed batch.
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 8);
}

/**
 * The skewed batch the work-stealing scheduler exists for: a few
 * jobs dominate the runtime.  Every worker must execute at least one
 * of the 64 jobs (LPT seeding gives each deque a share, and the
 * sleeps keep the batch alive long enough for every worker to wake),
 * every index must run exactly once, and the telemetry must add up.
 */
TEST(ThreadPool, EveryWorkerParticipatesInUnevenWeightedBatch)
{
    ThreadPool pool(4);
    constexpr std::size_t kJobs = 64;
    std::vector<std::uint64_t> weights(kJobs);
    for (std::size_t i = 0; i < kJobs; ++i)
        weights[i] = (i % 9 == 0) ? 400 : 25; // ~16x cost skew
    std::vector<std::atomic<int>> hits(kJobs);
    for (auto &h : hits)
        h = 0;
    pool.parallelForWeighted(weights, [&](std::size_t i) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(weights[i] * 5));
        ++hits[i];
    });
    for (std::size_t i = 0; i < kJobs; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;

    const ThreadPool::BatchStats &stats = pool.lastBatchStats();
    EXPECT_EQ(stats.jobs, kJobs);
    EXPECT_GT(stats.seconds, 0.0);
    ASSERT_EQ(stats.workers.size(), 4u);
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t backoffs = 0;
    for (std::size_t w = 0; w < stats.workers.size(); ++w) {
        EXPECT_GE(stats.workers[w].jobs, 1u)
            << "worker " << w << " sat out the batch";
        EXPECT_LE(stats.workers[w].steals, stats.workers[w].jobs);
        EXPECT_GE(stats.workers[w].busySeconds, 0.0);
        executed += stats.workers[w].jobs;
        steals += stats.workers[w].steals;
        backoffs += stats.workers[w].backoffs;
    }
    EXPECT_EQ(executed, kJobs);
    EXPECT_EQ(stats.stealEvents(), steals);
    EXPECT_EQ(stats.backoffEvents(), backoffs);
    EXPECT_GE(stats.lptImbalance, 1.0);
    EXPECT_GE(stats.busyFractionMin(), 0.0);
    EXPECT_GE(stats.busyFractionMax(), stats.busyFractionMin());
}

TEST(ThreadPool, SerialPoolRunsWeightedBatchInline)
{
    ThreadPool pool(1);
    std::vector<std::uint64_t> weights = {50, 1, 1, 90, 1, 7};
    std::vector<std::atomic<int>> hits(weights.size());
    for (auto &h : hits)
        h = 0;
    pool.parallelForWeighted(weights,
                             [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
    const ThreadPool::BatchStats &stats = pool.lastBatchStats();
    ASSERT_EQ(stats.workers.size(), 1u);
    EXPECT_EQ(stats.workers[0].jobs, weights.size());
    EXPECT_EQ(stats.stealEvents(), 0u);
    EXPECT_DOUBLE_EQ(stats.lptImbalance, 1.0);
}

/**
 * Exception determinism under stealing: no matter which worker ends
 * up with which index (the sleeps plus the cost skew force steals on
 * multi-core hosts), the exception rethrown to the caller must be
 * the one from the lowest *submission* index, and every other index
 * must still have run.
 */
TEST(ThreadPool, LowestIndexExceptionWinsUnderWeightedStealing)
{
    ThreadPool pool(4);
    constexpr std::size_t kJobs = 64;
    std::vector<std::uint64_t> weights(kJobs);
    for (std::size_t i = 0; i < kJobs; ++i)
        weights[i] = kJobs - i; // descending: LPT scatters indices
    for (int round = 0; round < 3; ++round) {
        std::vector<std::atomic<int>> hits(kJobs);
        for (auto &h : hits)
            h = 0;
        try {
            pool.parallelForWeighted(weights, [&](std::size_t i) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ++hits[i];
                if (i % 7 == 5) // lowest failing index is 5
                    throw std::runtime_error(
                        "index " + std::to_string(i));
            });
            FAIL() << "expected an exception in round " << round;
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "index 5") << "round " << round;
        }
        for (std::size_t i = 0; i < kJobs; ++i)
            EXPECT_EQ(hits[i], 1)
                << "index " << i << " skipped after a failure";
    }
}

TEST(SweepEngine, EmptyBatch)
{
    SweepEngine engine(4);
    EXPECT_TRUE(engine.run({}).empty());
}

TEST(SweepEngine, SingleJobMatchesDirectRun)
{
    MechanismSpec dp = MechanismSpec::parse("dp");
    SweepEngine engine(4);
    std::vector<SweepResult> results =
        engine.run({SweepJob::functional(WorkloadSpec::app("gcc"),
                                         dp, kRefs)});
    ASSERT_EQ(results.size(), 1u);
    SimResult direct = runFunctional("gcc", dp, kRefs);
    EXPECT_EQ(results[0].functional.misses, direct.misses);
    EXPECT_EQ(results[0].functional.pbHits, direct.pbHits);
    EXPECT_EQ(results[0].mode, JobMode::Functional);
}

TEST(SweepEngine, ResultsComeBackInSubmissionOrder)
{
    std::vector<SweepJob> jobs = mixedBatch();
    SweepEngine engine(4);
    std::vector<SweepResult> parallel = engine.run(jobs);
    ASSERT_EQ(parallel.size(), jobs.size());
    // Slot i must hold exactly job i's outcome: compare against each
    // job run standalone.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SweepResult direct = runSweepJob(jobs[i]);
        EXPECT_EQ(parallel[i].functional.misses,
                  direct.functional.misses)
            << "slot " << i;
        EXPECT_EQ(parallel[i].functional.pbHits,
                  direct.functional.pbHits)
            << "slot " << i;
        EXPECT_EQ(parallel[i].mode, jobs[i].mode) << "slot " << i;
        if (jobs[i].mode == JobMode::Timed) {
            EXPECT_EQ(parallel[i].timed.cycles, direct.timed.cycles)
                << "slot " << i;
        }
    }
}

/**
 * Single-pass mode must be an invisible optimization: every counter
 * of every cell equals the per-mechanism run, for batches that group
 * fully (one workload, N mechanisms), batches that cannot group at
 * all, and batches that group piecewise (workload changes mid-batch,
 * timed cells interleaved).
 */
TEST(SweepEngine, SinglePassMatchesPerMechanismCellForCell)
{
    std::vector<std::vector<SweepJob>> batches;

    // The canonical shape: one workload, several mechanisms.
    std::vector<SweepJob> uniform;
    for (const char *spec : {"DP,256,D", "RP", "ASP,256,D", "MP,256,D"})
        uniform.push_back(
            SweepJob::functional(WorkloadSpec::app("mcf"),
                                 MechanismSpec::parse(spec), kRefs));
    batches.push_back(uniform);

    // Piecewise: workload flips mid-batch, a timed cell splits a
    // group, and a tail cell stands alone.
    std::vector<SweepJob> piecewise;
    MechanismSpec dp = MechanismSpec::parse("dp");
    MechanismSpec rp = MechanismSpec::parse("rp");
    piecewise.push_back(
        SweepJob::functional(WorkloadSpec::app("mcf"), dp, kRefs));
    piecewise.push_back(
        SweepJob::functional(WorkloadSpec::app("mcf"), rp, kRefs));
    piecewise.push_back(
        SweepJob::functional(WorkloadSpec::app("gcc"), dp, kRefs));
    piecewise.push_back(
        SweepJob::timed(WorkloadSpec::app("gcc"), dp, kRefs));
    piecewise.push_back(
        SweepJob::functional(WorkloadSpec::app("gcc"), rp, kRefs));
    batches.push_back(piecewise);

    for (const std::vector<SweepJob> &jobs : batches) {
        SweepEngine engine(2);
        std::vector<SweepResult> per_mech =
            engine.run(jobs, PassMode::PerMechanism);
        std::vector<SweepResult> single_pass =
            engine.run(jobs, PassMode::SinglePass);
        ASSERT_EQ(per_mech.size(), jobs.size());
        ASSERT_EQ(single_pass.size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const SimResult &a = per_mech[i].functional;
            const SimResult &b = single_pass[i].functional;
            EXPECT_EQ(a.refs, b.refs) << "slot " << i;
            EXPECT_EQ(a.misses, b.misses) << "slot " << i;
            EXPECT_EQ(a.pbHits, b.pbHits) << "slot " << i;
            EXPECT_EQ(a.demandFetches, b.demandFetches) << "slot " << i;
            EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued)
                << "slot " << i;
            EXPECT_EQ(a.prefetchesSuppressed, b.prefetchesSuppressed)
                << "slot " << i;
            EXPECT_EQ(a.stateOps, b.stateOps) << "slot " << i;
            EXPECT_EQ(a.footprintPages, b.footprintPages)
                << "slot " << i;
            EXPECT_EQ(per_mech[i].mode, single_pass[i].mode)
                << "slot " << i;
            EXPECT_EQ(per_mech[i].mechanism, single_pass[i].mechanism)
                << "slot " << i;
            EXPECT_EQ(per_mech[i].workload, single_pass[i].workload)
                << "slot " << i;
        }
    }
}

TEST(SweepEngine, LastBatchStatsReflectTheMostRecentRun)
{
    std::vector<SweepJob> jobs = mixedBatch();
    SweepEngine engine(2);
    (void)engine.run(jobs);
    const ThreadPool::BatchStats &stats = engine.lastBatchStats();
    EXPECT_EQ(stats.jobs, jobs.size());
    ASSERT_EQ(stats.workers.size(), 2u);
    std::uint64_t executed = 0;
    for (const ThreadPool::WorkerStats &w : stats.workers)
        executed += w.jobs;
    EXPECT_EQ(executed, jobs.size());
    EXPECT_GE(stats.busyFractionMax(), stats.busyFractionMin());
}

TEST(SweepEngine, PassModeNamesRoundTrip)
{
    EXPECT_STREQ(passModeName(PassMode::PerMechanism),
                 "per-mechanism");
    EXPECT_STREQ(passModeName(PassMode::SinglePass), "single-pass");
    EXPECT_EQ(parsePassMode("per-mechanism"), PassMode::PerMechanism);
    EXPECT_EQ(parsePassMode("single-pass"), PassMode::SinglePass);
    EXPECT_THROW(parsePassMode("both"), std::invalid_argument);
}

TEST(SweepEngine, ZeroRefJobThrowsFromWorker)
{
    MechanismSpec dp = MechanismSpec::parse("dp");
    std::vector<SweepJob> jobs = {
        SweepJob::functional(WorkloadSpec::app("gcc"), dp, kRefs),
        SweepJob::functional(WorkloadSpec::app("mcf"), dp,
                             0), // malformed
        SweepJob::functional(WorkloadSpec::app("swim"), dp, kRefs),
    };
    SweepEngine engine(4);
    EXPECT_THROW(engine.run(jobs), std::invalid_argument);
}

TEST(SweepEngine, UnknownAppThrowsFromWorker)
{
    MechanismSpec dp = MechanismSpec::parse("dp");
    SweepEngine engine(2);
    EXPECT_THROW(
        engine.run({SweepJob::functional(
            WorkloadSpec::app("no-such-app"), dp, kRefs)}),
        std::invalid_argument);
}

TEST(SweepEngine, BadWorkloadsInsideABatchThrowAfterTheBatchDrains)
{
    // Every flavour of bad workload must come back as the engine's
    // std::invalid_argument — never a process exit from a worker
    // thread — even when sandwiched between healthy cells.
    MechanismSpec dp = MechanismSpec::parse("dp");
    for (const char *bad :
         {"no-such-app", "trace:/nonexistent/trace.tpf",
          "mix:gcc+no-such-app@1k"}) {
        std::vector<SweepJob> jobs = {
            SweepJob::functional(WorkloadSpec::app("gcc"), dp, kRefs),
            SweepJob::functional(WorkloadSpec::parse(bad), dp, kRefs),
            SweepJob::functional(WorkloadSpec::app("swim"), dp, kRefs),
        };
        SweepEngine engine(4);
        EXPECT_THROW(engine.run(jobs), std::invalid_argument) << bad;
    }
}

/** The bench boundary: engine exception -> tlbpf_fatal. */
void
runBatchAtBenchBoundary()
{
    MechanismSpec dp = MechanismSpec::parse("dp");
    std::vector<SweepJob> jobs;
    jobs.push_back(
        SweepJob::functional(WorkloadSpec::app("gcc"), dp, kRefs));
    jobs.push_back(SweepJob::functional(
        WorkloadSpec::app("no-such-app"), dp, kRefs));
    SweepEngine engine(4);
    try {
        engine.run(jobs);
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }
    std::exit(2); // not reached
}

TEST(SweepEngine, BenchBoundaryConvertsBatchFailureToCleanFatalExit)
{
    // The bench binaries catch the engine's exception and
    // tlbpf_fatal from the main thread — the documented clean
    // fatal exit (code 1 with the offending workload named), not an
    // abort mid-pool.
    EXPECT_EXIT(runBatchAtBenchBoundary(),
                ::testing::ExitedWithCode(1),
                "unknown application model");
}

TEST(ResultSink, CsvQuotingAndLayout)
{
    std::ostringstream os;
    CsvSink csv(os);
    csv.header({"app", "note"});
    csv.row({"gcc", "plain"});
    csv.row({"mcf", "has,comma"});
    csv.finish();
    EXPECT_EQ(os.str(),
              "app,note\ngcc,plain\nmcf,\"has,comma\"\n");
}

TEST(ResultSink, JsonTypesNumbersAndStrings)
{
    std::ostringstream os;
    JsonSink json(os);
    json.header({"app", "accuracy", "n"});
    json.row({"gcc", "0.500000", "42"});
    json.row({"say \"hi\"", "-0.25", "1e3"});
    json.finish();
    EXPECT_EQ(os.str(),
              "[\n"
              "  {\"app\": \"gcc\", \"accuracy\": 0.500000, "
              "\"n\": 42},\n"
              "  {\"app\": \"say \\\"hi\\\"\", \"accuracy\": -0.25, "
              "\"n\": 1e3}\n"
              "]\n");
}

TEST(ResultSink, JsonRejectsNonJsonNumbers)
{
    EXPECT_EQ(JsonSink::cellValue("nan"), "\"nan\"");
    EXPECT_EQ(JsonSink::cellValue("-nan"), "\"-nan\"");
    EXPECT_EQ(JsonSink::cellValue("inf"), "\"inf\"");
    EXPECT_EQ(JsonSink::cellValue("-infinity"), "\"-infinity\"");
    EXPECT_EQ(JsonSink::cellValue("0x10"), "\"0x10\"");
    EXPECT_EQ(JsonSink::cellValue("12abc"), "\"12abc\"");
    EXPECT_EQ(JsonSink::cellValue("007"), "\"007\"");
    EXPECT_EQ(JsonSink::cellValue("1."), "\"1.\"");
    EXPECT_EQ(JsonSink::cellValue(".5"), "\".5\"");
    EXPECT_EQ(JsonSink::cellValue("-"), "\"-\"");
    EXPECT_EQ(JsonSink::cellValue("1e"), "\"1e\"");
    EXPECT_EQ(JsonSink::cellValue(""), "\"\"");
    EXPECT_EQ(JsonSink::cellValue("-3.5"), "-3.5");
    EXPECT_EQ(JsonSink::cellValue("0.25"), "0.25");
    EXPECT_EQ(JsonSink::cellValue("2e-3"), "2e-3");
    EXPECT_EQ(JsonSink::cellValue("0"), "0");
}

TEST(ResultSink, MultiSinkFansOut)
{
    std::ostringstream csv_os;
    std::ostringstream json_os;
    MultiSink multi;
    EXPECT_TRUE(multi.empty());
    multi.add(std::make_unique<CsvSink>(csv_os));
    multi.add(std::make_unique<JsonSink>(json_os));
    EXPECT_FALSE(multi.empty());
    multi.header({"k"});
    multi.row({"v"});
    multi.finish();
    EXPECT_EQ(csv_os.str(), "k\nv\n");
    EXPECT_NE(json_os.str().find("\"k\": \"v\""), std::string::npos);
}

TEST(Experiment, ParallelAccuracySweepMatchesSerial)
{
    std::vector<AccuracyCell> serial =
        accuracySweep("galgel", table2Specs(), kRefs, SimConfig{}, 1);
    std::vector<AccuracyCell> parallel =
        accuracySweep("galgel", table2Specs(), kRefs, SimConfig{}, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].label, parallel[i].label);
        EXPECT_EQ(serial[i].accuracy, parallel[i].accuracy);
        EXPECT_EQ(serial[i].missRate, parallel[i].missRate);
    }
}

} // namespace
} // namespace tlbpf
