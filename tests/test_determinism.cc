/**
 * @file
 * Determinism guard: with a fixed workload seed, the functional and
 * timing simulators must produce bit-identical statistics across
 * repeated runs — and, since the sweep engine landed, across any
 * thread count: a mixed functional/timing batch (registry apps,
 * trace-file workloads, multi-programmed mixes and sharded cells
 * alike) must yield identical counters and identical CSV bytes at
 * 1, 4 and 8 threads.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "run/result_sink.hh"
#include "run/sweep_engine.hh"
#include "sim/experiment.hh"
#include "util/table_printer.hh"
#include "workload/app_registry.hh"

namespace tlbpf
{
namespace
{

constexpr std::uint64_t kRefs = 50000;

/** Every counter in a SimResult, in declaration order. */
std::vector<std::uint64_t>
counters(const SimResult &r)
{
    return {r.refs,
            r.misses,
            r.pbHits,
            r.demandFetches,
            r.prefetchesIssued,
            r.prefetchesSuppressed,
            r.stateOps,
            r.pbEvictedUnused,
            r.footprintPages,
            r.contextSwitches};
}

std::vector<std::uint64_t>
counters(const TimingResult &r)
{
    std::vector<std::uint64_t> all = counters(r.functional);
    all.push_back(r.cycles);
    all.push_back(r.stallCycles);
    all.push_back(r.computeCycles);
    all.push_back(r.memoryOps);
    all.push_back(r.prefetchesSkippedBusy);
    all.push_back(r.inFlightHits);
    return all;
}

TEST(Determinism, FunctionalRunsAreBitIdentical)
{
    for (const char *app : {"gcc", "galgel", "mcf"}) {
        for (const MechanismSpec &spec : table2Specs()) {
            SimResult first = runFunctional(app, spec, kRefs);
            SimResult second = runFunctional(app, spec, kRefs);
            EXPECT_EQ(counters(first), counters(second))
                << app << " under " << spec.label();
        }
    }
}

TEST(Determinism, FunctionalRunsSurviveInterleavedWork)
{
    // A run sandwiched between unrelated simulations must not change:
    // no hidden global state may leak between simulator instances.
    MechanismSpec dp = MechanismSpec::parse("dp");
    SimResult baseline = runFunctional("swim", dp, kRefs);

    MechanismSpec rp = MechanismSpec::parse("rp");
    (void)runFunctional("gcc", rp, kRefs);

    SimResult again = runFunctional("swim", dp, kRefs);
    EXPECT_EQ(counters(baseline), counters(again));
}

TEST(Determinism, TimedRunsAreBitIdentical)
{
    MechanismSpec spec = MechanismSpec::parse("dp");
    TimingResult first = runTimed("gcc", spec, kRefs);
    TimingResult second = runTimed("gcc", spec, kRefs);
    EXPECT_EQ(counters(first), counters(second));
}

/**
 * A mixed functional/timing batch covering every mechanism class,
 * several geometries, an ablation flag, and every workload kind
 * (registry app, trace file, multi-programmed mix, sharded cell) —
 * the shape of a real figure regeneration.
 */
std::vector<SweepJob>
mixedJobBatch()
{
    std::vector<SweepJob> jobs;
    for (const char *app : {"gcc", "mcf", "galgel"})
        for (const MechanismSpec &spec : table2Specs())
            jobs.push_back(SweepJob::functional(WorkloadSpec::app(app),
                                                spec, kRefs));

    MechanismSpec dp = MechanismSpec::parse("dp");
    SimConfig flushing;
    flushing.contextSwitchInterval = 10000;
    jobs.push_back(SweepJob::functional(WorkloadSpec::app("swim"), dp,
                                        kRefs, flushing));

    // Trace-file, mix and sharded workload cells.
    jobs.push_back(SweepJob::functional(
        WorkloadSpec::trace(std::string(TLBPF_TEST_DATA_DIR) +
                            "/sample.tpf"),
        dp, kRefs));
    jobs.push_back(SweepJob::functional(
        WorkloadSpec::parse("mix:mcf+gcc@1k"), dp, kRefs, flushing));
    for (std::uint32_t k = 0; k < 3; ++k)
        jobs.push_back(SweepJob::functional(
            WorkloadSpec::app("galgel").withShard(k, 3), dp, kRefs));

    for (const char *mech : {"none", "rp", "dp"})
        jobs.push_back(SweepJob::timed(WorkloadSpec::app("ammp"),
                                       MechanismSpec::parse(mech),
                                       kRefs));
    return jobs;
}

/** All counters of a SweepResult, both modes. */
std::vector<std::uint64_t>
counters(const SweepResult &r)
{
    std::vector<std::uint64_t> all = counters(r.functional);
    if (r.mode == JobMode::Timed) {
        std::vector<std::uint64_t> timed = counters(r.timed);
        all.insert(all.end(), timed.begin(), timed.end());
    }
    return all;
}

/** Render a batch's results as CSV bytes, the way the benches do. */
std::string
csvBytes(const std::vector<SweepJob> &jobs,
         const std::vector<SweepResult> &results)
{
    std::ostringstream os;
    CsvSink csv(os);
    csv.header({"app", "mechanism", "accuracy", "miss_rate",
                "cycles"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        csv.row({results[i].workload, jobs[i].spec.label(),
                 TablePrinter::num(results[i].accuracy(), 6),
                 TablePrinter::num(results[i].missRate(), 6),
                 TablePrinter::num(static_cast<std::uint64_t>(
                     results[i].mode == JobMode::Timed
                         ? results[i].timed.cycles
                         : 0))});
    }
    csv.finish();
    return os.str();
}

TEST(ParallelDeterminism, ThreadCountDoesNotChangeStats)
{
    std::vector<SweepJob> jobs = mixedJobBatch();
    std::vector<SweepResult> serial = SweepEngine(1).run(jobs);
    ASSERT_EQ(serial.size(), jobs.size());
    for (unsigned threads : {4u, 8u}) {
        std::vector<SweepResult> parallel =
            SweepEngine(threads).run(jobs);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(counters(serial[i]), counters(parallel[i]))
                << "cell " << i << " (" << jobs[i].workload.label()
                << " under "
                << jobs[i].spec.label() << ") at " << threads
                << " threads";
    }
}

TEST(ParallelDeterminism, ThreadCountDoesNotChangeCsvBytes)
{
    std::vector<SweepJob> jobs = mixedJobBatch();
    std::string serial = csvBytes(jobs, SweepEngine(1).run(jobs));
    EXPECT_FALSE(serial.empty());
    for (unsigned threads : {4u, 8u})
        EXPECT_EQ(serial, csvBytes(jobs, SweepEngine(threads).run(jobs)))
            << threads << " threads";
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreBitIdentical)
{
    std::vector<SweepJob> jobs = mixedJobBatch();
    SweepEngine engine(4);
    std::vector<SweepResult> first = engine.run(jobs);
    std::vector<SweepResult> second = engine.run(jobs);
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(counters(first[i]), counters(second[i]))
            << "cell " << i;
}

/**
 * Snapshot/restore bit-identity, mechanism by mechanism: a simulator
 * restored from a mid-run checkpoint must (a) re-serialize to the
 * exact same bytes and (b) produce the exact same counters as the
 * uninterrupted run over the remaining references.  The spec list
 * covers every component with state: TLB + buffer + page table
 * (always), each prefetcher family, the recency stack, and the
 * hybrid composite's child-by-child serialization.
 */
TEST(Checkpoint, SnapshotRestoreRoundTripsPerMechanism)
{
    constexpr std::uint64_t kPrefix = 20000;
    constexpr std::uint64_t kTail = 20000;
    for (const char *mech :
         {"none", "SP,1", "sp(degree=4)", "sp(adaptive)", "ASP,256,D",
          "mp(rows=64,assoc=2w)", "DP,256,D", "dp(rows=64,slots=4)",
          "rp", "rp(reach=2)", "hybrid(dp+sp)",
          "hybrid(dp+rp+sp(adaptive))"}) {
        MechanismSpec spec = MechanismSpec::parse(mech);
        SimConfig config;
        config.contextSwitchInterval = 7000; // cross a flush boundary
        auto refs =
            collect(*buildApp("mcf", kPrefix + kTail), kPrefix + kTail);
        ASSERT_EQ(refs.size(), kPrefix + kTail);

        FunctionalSimulator full(config, spec);
        for (std::uint64_t i = 0; i < kPrefix; ++i)
            full.process(refs[i]);
        ASSERT_TRUE(full.checkpointable()) << mech;
        SimState snap = full.snapshot();

        FunctionalSimulator restored(config, spec);
        restored.restore(snap);
        EXPECT_EQ(restored.snapshot().bytes, snap.bytes)
            << mech << ": restore + re-snapshot changed the bytes";

        for (std::uint64_t i = kPrefix; i < refs.size(); ++i) {
            full.process(refs[i]);
            restored.process(refs[i]);
        }
        EXPECT_EQ(counters(full.result()),
                  counters(restored.result()))
            << mech << ": restored run diverged over the tail";
    }
}

TEST(Checkpoint, MismatchedRestoreThrows)
{
    SimConfig config;
    MechanismSpec dp = MechanismSpec::parse("dp");
    auto refs = collect(*buildApp("gcc", 5000), 5000);
    FunctionalSimulator sim(config, dp);
    for (const MemRef &ref : refs)
        sim.process(ref);
    SimState snap = sim.snapshot();

    // Wrong mechanism.
    FunctionalSimulator rp(config, MechanismSpec::parse("rp"));
    EXPECT_THROW(rp.restore(snap), std::invalid_argument);

    // Wrong geometry.
    SimConfig small;
    small.tlb.entries = 64;
    FunctionalSimulator other(small, dp);
    EXPECT_THROW(other.restore(snap), std::invalid_argument);

    // Truncated bytes.
    SimState cut{std::vector<std::uint8_t>(
        snap.bytes.begin(), snap.bytes.begin() +
                                static_cast<std::ptrdiff_t>(
                                    snap.bytes.size() / 2))};
    FunctionalSimulator third(config, dp);
    EXPECT_THROW(third.restore(cut), std::invalid_argument);

    // Not a checkpoint at all.
    EXPECT_THROW(third.restore(SimState{{1, 2, 3}}),
                 std::invalid_argument);
}

/**
 * The 1-vs-8-shard CSV byte compare, in both warm-up modes: sharding
 * a batch must never change a single output byte, whether shards
 * replay their prefix or chain checkpoints, at any thread count.
 */
TEST(Checkpoint, ShardWarmupModesPreserveCsvBytes)
{
    MechanismSpec dp = MechanismSpec::parse("dp");
    std::vector<SweepJob> jobs = {
        SweepJob::functional(WorkloadSpec::app("mcf"), dp, kRefs),
        SweepJob::functional(WorkloadSpec::parse("mix:mcf+gcc@1k"),
                             MechanismSpec::parse("hybrid(dp+sp)"),
                             kRefs),
        SweepJob::functional(
            WorkloadSpec::trace(std::string(TLBPF_TEST_DATA_DIR) +
                                "/sample.tpf"),
            MechanismSpec::parse("rp"), kRefs),
        SweepJob::timed(WorkloadSpec::app("ammp"), dp, kRefs),
    };
    std::string plain = csvBytes(jobs, SweepEngine(1).run(jobs));
    EXPECT_FALSE(plain.empty());
    for (ShardWarmup warmup :
         {ShardWarmup::Replay, ShardWarmup::Checkpoint})
        for (unsigned threads : {1u, 4u})
            EXPECT_EQ(plain,
                      csvBytes(jobs, SweepEngine(threads).runSharded(
                                         jobs, 8, warmup)))
                << shardWarmupName(warmup) << " warm-up at "
                << threads << " threads";
}

/**
 * The scheduler-hostile shape: a couple of 8-shard checkpoint chains
 * (each a long serialized task) surrounded by trivial cells an order
 * of magnitude cheaper.  The LPT seeding and any steal interleaving
 * it provokes must not change a single CSV byte across thread counts,
 * in either warm-up mode.  The plan is hand-built so only the heavy
 * cells fan out — expandShards() would shard the trivial cells too
 * and flatten the skew this test exists to cover.
 */
TEST(ParallelDeterminism, SkewedShardChainBatchIsThreadCountInvariant)
{
    MechanismSpec dp = MechanismSpec::parse("dp");
    MechanismSpec rp = MechanismSpec::parse("rp");
    ShardPlan plan;
    std::vector<SweepJob> display; // one pre-expansion job per group
    for (const char *heavy : {"mcf", "gcc"}) {
        SweepJob cell = SweepJob::functional(WorkloadSpec::app(heavy),
                                             dp, kRefs);
        display.push_back(cell);
        plan.groupSizes.push_back(8);
        for (std::uint32_t k = 0; k < 8; ++k) {
            SweepJob shard = cell;
            shard.workload =
                WorkloadSpec::app(heavy).withShard(k, 8);
            plan.jobs.push_back(shard);
        }
        for (const char *cheap : {"swim", "ammp", "galgel"}) {
            SweepJob tiny = SweepJob::functional(
                WorkloadSpec::app(cheap), rp, kRefs / 16);
            display.push_back(tiny);
            plan.groupSizes.push_back(1);
            plan.jobs.push_back(tiny);
        }
    }
    for (ShardWarmup warmup :
         {ShardWarmup::Replay, ShardWarmup::Checkpoint}) {
        std::string serial = csvBytes(
            display, SweepEngine(1).runSharded(plan, warmup));
        EXPECT_FALSE(serial.empty());
        for (unsigned threads : {4u, 8u})
            EXPECT_EQ(serial,
                      csvBytes(display, SweepEngine(threads)
                                            .runSharded(plan, warmup)))
                << shardWarmupName(warmup) << " warm-up at "
                << threads << " threads";
    }
}

/**
 * The same invariance for the other task-shape extreme: wide
 * single-pass groups (one stream pass feeding four simulators, so
 * one task carries 4x a cell's weight) interleaved with trivial
 * singleton cells and a timed cell that cannot batch.
 */
TEST(ParallelDeterminism, SkewedSinglePassBatchIsThreadCountInvariant)
{
    std::vector<SweepJob> jobs;
    for (const char *app : {"mcf", "gcc"}) {
        for (const char *spec :
             {"DP,256,D", "RP", "ASP,256,D", "MP,256,D"})
            jobs.push_back(
                SweepJob::functional(WorkloadSpec::app(app),
                                     MechanismSpec::parse(spec),
                                     kRefs));
        jobs.push_back(SweepJob::functional(
            WorkloadSpec::app("swim"), MechanismSpec::parse("rp"),
            kRefs / 16));
        jobs.push_back(SweepJob::timed(WorkloadSpec::app("ammp"),
                                       MechanismSpec::parse("dp"),
                                       kRefs / 16));
    }
    std::string serial =
        csvBytes(jobs, SweepEngine(1).run(jobs, PassMode::SinglePass));
    EXPECT_FALSE(serial.empty());
    // Single-pass must also match the per-mechanism path itself.
    EXPECT_EQ(serial, csvBytes(jobs, SweepEngine(1).run(
                                         jobs, PassMode::PerMechanism)));
    for (unsigned threads : {4u, 8u})
        EXPECT_EQ(serial,
                  csvBytes(jobs, SweepEngine(threads)
                                     .run(jobs, PassMode::SinglePass)))
            << threads << " threads";
}

TEST(Determinism, RebuiltAppModelsReplayIdentically)
{
    // The registry must hand out streams that regenerate the same
    // references on every build and after reset().
    auto a = buildApp("vortex", 5000);
    auto b = buildApp("vortex", 5000);
    MemRef ra, rb;
    std::uint64_t n = 0;
    while (a->next(ra)) {
        ASSERT_TRUE(b->next(rb)) << "stream b shorter at ref " << n;
        ASSERT_EQ(ra, rb) << "divergence at ref " << n;
        ++n;
    }
    EXPECT_FALSE(b->next(rb));

    a->reset();
    auto c = buildApp("vortex", 5000);
    MemRef rc;
    while (c->next(rc)) {
        ASSERT_TRUE(a->next(ra));
        ASSERT_EQ(ra, rc);
    }
}

} // namespace
} // namespace tlbpf
