/**
 * @file
 * Determinism guard: with a fixed workload seed, the functional and
 * timing simulators must produce bit-identical statistics across
 * repeated runs — and, since the sweep engine landed, across any
 * thread count: a mixed functional/timing batch (registry apps,
 * trace-file workloads, multi-programmed mixes and sharded cells
 * alike) must yield identical counters and identical CSV bytes at
 * 1, 4 and 8 threads.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "run/result_sink.hh"
#include "run/sweep_engine.hh"
#include "sim/experiment.hh"
#include "util/table_printer.hh"
#include "workload/app_registry.hh"

namespace tlbpf
{
namespace
{

constexpr std::uint64_t kRefs = 50000;

/** Every counter in a SimResult, in declaration order. */
std::vector<std::uint64_t>
counters(const SimResult &r)
{
    return {r.refs,
            r.misses,
            r.pbHits,
            r.demandFetches,
            r.prefetchesIssued,
            r.prefetchesSuppressed,
            r.stateOps,
            r.pbEvictedUnused,
            r.footprintPages,
            r.contextSwitches};
}

std::vector<std::uint64_t>
counters(const TimingResult &r)
{
    std::vector<std::uint64_t> all = counters(r.functional);
    all.push_back(r.cycles);
    all.push_back(r.stallCycles);
    all.push_back(r.computeCycles);
    all.push_back(r.memoryOps);
    all.push_back(r.prefetchesSkippedBusy);
    all.push_back(r.inFlightHits);
    return all;
}

TEST(Determinism, FunctionalRunsAreBitIdentical)
{
    for (const char *app : {"gcc", "galgel", "mcf"}) {
        for (const MechanismSpec &spec : table2Specs()) {
            SimResult first = runFunctional(app, spec, kRefs);
            SimResult second = runFunctional(app, spec, kRefs);
            EXPECT_EQ(counters(first), counters(second))
                << app << " under " << spec.label();
        }
    }
}

TEST(Determinism, FunctionalRunsSurviveInterleavedWork)
{
    // A run sandwiched between unrelated simulations must not change:
    // no hidden global state may leak between simulator instances.
    MechanismSpec dp = MechanismSpec::parse("dp");
    SimResult baseline = runFunctional("swim", dp, kRefs);

    MechanismSpec rp = MechanismSpec::parse("rp");
    (void)runFunctional("gcc", rp, kRefs);

    SimResult again = runFunctional("swim", dp, kRefs);
    EXPECT_EQ(counters(baseline), counters(again));
}

TEST(Determinism, TimedRunsAreBitIdentical)
{
    MechanismSpec spec = MechanismSpec::parse("dp");
    TimingResult first = runTimed("gcc", spec, kRefs);
    TimingResult second = runTimed("gcc", spec, kRefs);
    EXPECT_EQ(counters(first), counters(second));
}

/**
 * A mixed functional/timing batch covering every mechanism class,
 * several geometries, an ablation flag, and every workload kind
 * (registry app, trace file, multi-programmed mix, sharded cell) —
 * the shape of a real figure regeneration.
 */
std::vector<SweepJob>
mixedJobBatch()
{
    std::vector<SweepJob> jobs;
    for (const char *app : {"gcc", "mcf", "galgel"})
        for (const MechanismSpec &spec : table2Specs())
            jobs.push_back(SweepJob::functional(WorkloadSpec::app(app),
                                                spec, kRefs));

    MechanismSpec dp = MechanismSpec::parse("dp");
    SimConfig flushing;
    flushing.contextSwitchInterval = 10000;
    jobs.push_back(SweepJob::functional(WorkloadSpec::app("swim"), dp,
                                        kRefs, flushing));

    // Trace-file, mix and sharded workload cells.
    jobs.push_back(SweepJob::functional(
        WorkloadSpec::trace(std::string(TLBPF_TEST_DATA_DIR) +
                            "/sample.tpf"),
        dp, kRefs));
    jobs.push_back(SweepJob::functional(
        WorkloadSpec::parse("mix:mcf+gcc@1k"), dp, kRefs, flushing));
    for (std::uint32_t k = 0; k < 3; ++k)
        jobs.push_back(SweepJob::functional(
            WorkloadSpec::app("galgel").withShard(k, 3), dp, kRefs));

    for (const char *mech : {"none", "rp", "dp"})
        jobs.push_back(SweepJob::timed(WorkloadSpec::app("ammp"),
                                       MechanismSpec::parse(mech),
                                       kRefs));
    return jobs;
}

/** All counters of a SweepResult, both modes. */
std::vector<std::uint64_t>
counters(const SweepResult &r)
{
    std::vector<std::uint64_t> all = counters(r.functional);
    if (r.mode == JobMode::Timed) {
        std::vector<std::uint64_t> timed = counters(r.timed);
        all.insert(all.end(), timed.begin(), timed.end());
    }
    return all;
}

/** Render a batch's results as CSV bytes, the way the benches do. */
std::string
csvBytes(const std::vector<SweepJob> &jobs,
         const std::vector<SweepResult> &results)
{
    std::ostringstream os;
    CsvSink csv(os);
    csv.header({"app", "mechanism", "accuracy", "miss_rate",
                "cycles"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        csv.row({results[i].workload, jobs[i].spec.label(),
                 TablePrinter::num(results[i].accuracy(), 6),
                 TablePrinter::num(results[i].missRate(), 6),
                 TablePrinter::num(static_cast<std::uint64_t>(
                     results[i].mode == JobMode::Timed
                         ? results[i].timed.cycles
                         : 0))});
    }
    csv.finish();
    return os.str();
}

TEST(ParallelDeterminism, ThreadCountDoesNotChangeStats)
{
    std::vector<SweepJob> jobs = mixedJobBatch();
    std::vector<SweepResult> serial = SweepEngine(1).run(jobs);
    ASSERT_EQ(serial.size(), jobs.size());
    for (unsigned threads : {4u, 8u}) {
        std::vector<SweepResult> parallel =
            SweepEngine(threads).run(jobs);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(counters(serial[i]), counters(parallel[i]))
                << "cell " << i << " (" << jobs[i].workload.label()
                << " under "
                << jobs[i].spec.label() << ") at " << threads
                << " threads";
    }
}

TEST(ParallelDeterminism, ThreadCountDoesNotChangeCsvBytes)
{
    std::vector<SweepJob> jobs = mixedJobBatch();
    std::string serial = csvBytes(jobs, SweepEngine(1).run(jobs));
    EXPECT_FALSE(serial.empty());
    for (unsigned threads : {4u, 8u})
        EXPECT_EQ(serial, csvBytes(jobs, SweepEngine(threads).run(jobs)))
            << threads << " threads";
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreBitIdentical)
{
    std::vector<SweepJob> jobs = mixedJobBatch();
    SweepEngine engine(4);
    std::vector<SweepResult> first = engine.run(jobs);
    std::vector<SweepResult> second = engine.run(jobs);
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(counters(first[i]), counters(second[i]))
            << "cell " << i;
}

TEST(Determinism, RebuiltAppModelsReplayIdentically)
{
    // The registry must hand out streams that regenerate the same
    // references on every build and after reset().
    auto a = buildApp("vortex", 5000);
    auto b = buildApp("vortex", 5000);
    MemRef ra, rb;
    std::uint64_t n = 0;
    while (a->next(ra)) {
        ASSERT_TRUE(b->next(rb)) << "stream b shorter at ref " << n;
        ASSERT_EQ(ra, rb) << "divergence at ref " << n;
        ++n;
    }
    EXPECT_FALSE(b->next(rb));

    a->reset();
    auto c = buildApp("vortex", 5000);
    MemRef rc;
    while (c->next(rc)) {
        ASSERT_TRUE(a->next(ra));
        ASSERT_EQ(ra, rc);
    }
}

} // namespace
} // namespace tlbpf
