/**
 * @file
 * Determinism guard: with a fixed workload seed, the functional and
 * timing simulators must produce bit-identical statistics across
 * repeated runs.  Future parallelism/sharding work must keep this
 * suite green.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/experiment.hh"
#include "workload/app_registry.hh"

namespace tlbpf
{
namespace
{

constexpr std::uint64_t kRefs = 50000;

/** Every counter in a SimResult, in declaration order. */
std::vector<std::uint64_t>
counters(const SimResult &r)
{
    return {r.refs,
            r.misses,
            r.pbHits,
            r.demandFetches,
            r.prefetchesIssued,
            r.prefetchesSuppressed,
            r.stateOps,
            r.pbEvictedUnused,
            r.footprintPages,
            r.contextSwitches};
}

std::vector<std::uint64_t>
counters(const TimingResult &r)
{
    std::vector<std::uint64_t> all = counters(r.functional);
    all.push_back(r.cycles);
    all.push_back(r.stallCycles);
    all.push_back(r.computeCycles);
    all.push_back(r.memoryOps);
    all.push_back(r.prefetchesSkippedBusy);
    all.push_back(r.inFlightHits);
    return all;
}

TEST(Determinism, FunctionalRunsAreBitIdentical)
{
    for (const char *app : {"gcc", "galgel", "mcf"}) {
        for (const PrefetcherSpec &spec : table2Specs()) {
            SimResult first = runFunctional(app, spec, kRefs);
            SimResult second = runFunctional(app, spec, kRefs);
            EXPECT_EQ(counters(first), counters(second))
                << app << " under " << spec.label();
        }
    }
}

TEST(Determinism, FunctionalRunsSurviveInterleavedWork)
{
    // A run sandwiched between unrelated simulations must not change:
    // no hidden global state may leak between simulator instances.
    PrefetcherSpec dp;
    dp.scheme = Scheme::DP;
    SimResult baseline = runFunctional("swim", dp, kRefs);

    PrefetcherSpec rp;
    rp.scheme = Scheme::RP;
    (void)runFunctional("gcc", rp, kRefs);

    SimResult again = runFunctional("swim", dp, kRefs);
    EXPECT_EQ(counters(baseline), counters(again));
}

TEST(Determinism, TimedRunsAreBitIdentical)
{
    PrefetcherSpec spec;
    spec.scheme = Scheme::DP;
    TimingResult first = runTimed("gcc", spec, kRefs);
    TimingResult second = runTimed("gcc", spec, kRefs);
    EXPECT_EQ(counters(first), counters(second));
}

TEST(Determinism, RebuiltAppModelsReplayIdentically)
{
    // The registry must hand out streams that regenerate the same
    // references on every build and after reset().
    auto a = buildApp("vortex", 5000);
    auto b = buildApp("vortex", 5000);
    MemRef ra, rb;
    std::uint64_t n = 0;
    while (a->next(ra)) {
        ASSERT_TRUE(b->next(rb)) << "stream b shorter at ref " << n;
        ASSERT_EQ(ra, rb) << "divergence at ref " << n;
        ++n;
    }
    EXPECT_FALSE(b->next(rb));

    a->reset();
    auto c = buildApp("vortex", 5000);
    MemRef rc;
    while (c->next(rc)) {
        ASSERT_TRUE(a->next(ra));
        ASSERT_EQ(ra, rc);
    }
}

} // namespace
} // namespace tlbpf
