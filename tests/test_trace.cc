/**
 * @file
 * Unit tests for the reference-stream substrate: records, vector
 * streams, adaptors and the binary trace file format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "trace/adaptors.hh"
#include "trace/ref_stream.hh"
#include "trace/trace_file.hh"

namespace tlbpf
{
namespace
{

MemRef
ref(Addr vaddr, Addr pc = 0x400000, bool write = false,
    std::uint64_t icount = 0)
{
    return MemRef{vaddr, pc, write, icount};
}

std::unique_ptr<VectorStream>
stream(std::initializer_list<Addr> addrs)
{
    std::vector<MemRef> refs;
    for (Addr a : addrs)
        refs.push_back(ref(a));
    return std::make_unique<VectorStream>(std::move(refs));
}

TEST(MemRef, VpnUsesPageSize)
{
    MemRef r = ref(4096 * 7 + 123);
    EXPECT_EQ(r.vpn(), 7u);
    EXPECT_EQ(r.vpn(8192), 3u);
}

TEST(VectorStream, YieldsAllThenEnds)
{
    auto s = stream({1, 2, 3});
    MemRef r;
    EXPECT_TRUE(s->next(r));
    EXPECT_EQ(r.vaddr, 1u);
    EXPECT_TRUE(s->next(r));
    EXPECT_TRUE(s->next(r));
    EXPECT_FALSE(s->next(r));
    EXPECT_FALSE(s->next(r)); // stays ended
}

TEST(VectorStream, ResetRewinds)
{
    auto s = stream({10, 20});
    collect(*s);
    s->reset();
    auto again = collect(*s);
    ASSERT_EQ(again.size(), 2u);
    EXPECT_EQ(again[0].vaddr, 10u);
}

TEST(Collect, RespectsLimit)
{
    auto s = stream({1, 2, 3, 4});
    auto v = collect(*s, 2);
    EXPECT_EQ(v.size(), 2u);
}

TEST(DistinctPages, CountsPages)
{
    auto s = stream({0, 100, 4096, 8192, 8200});
    EXPECT_EQ(distinctPages(*s), 3u);
}

TEST(TakeStream, TruncatesAndResets)
{
    auto t = TakeStream(stream({1, 2, 3, 4, 5}), 3);
    EXPECT_EQ(collect(t).size(), 3u);
    t.reset();
    EXPECT_EQ(collect(t).size(), 3u);
}

TEST(TakeStream, ShortInnerEndsEarly)
{
    auto t = TakeStream(stream({1, 2}), 10);
    EXPECT_EQ(collect(t).size(), 2u);
}

TEST(SkipStream, DropsPrefix)
{
    auto s = SkipStream(stream({1, 2, 3, 4}), 2);
    auto v = collect(s);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0].vaddr, 3u);
    s.reset();
    EXPECT_EQ(collect(s).size(), 2u);
}

TEST(SkipStream, SkipBeyondEndYieldsNothing)
{
    auto s = SkipStream(stream({1, 2}), 5);
    EXPECT_TRUE(collect(s).empty());
}

TEST(InterleaveStream, RoundRobinWithWeights)
{
    std::vector<std::unique_ptr<RefStream>> inners;
    inners.push_back(stream({1, 2, 3, 4}));
    inners.push_back(stream({100, 200}));
    InterleaveStream s(std::move(inners), {2, 1});
    auto v = collect(s);
    ASSERT_EQ(v.size(), 6u);
    EXPECT_EQ(v[0].vaddr, 1u);
    EXPECT_EQ(v[1].vaddr, 2u);
    EXPECT_EQ(v[2].vaddr, 100u);
    EXPECT_EQ(v[3].vaddr, 3u);
    EXPECT_EQ(v[4].vaddr, 4u);
    EXPECT_EQ(v[5].vaddr, 200u);
}

TEST(InterleaveStream, DrainsLongerStreamAfterShortEnds)
{
    std::vector<std::unique_ptr<RefStream>> inners;
    inners.push_back(stream({1}));
    inners.push_back(stream({100, 200, 300}));
    InterleaveStream s(std::move(inners), {1, 1});
    auto v = collect(s);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v.back().vaddr, 300u);
}

TEST(InterleaveStream, ResetReplaysIdentically)
{
    std::vector<std::unique_ptr<RefStream>> inners;
    inners.push_back(stream({1, 2, 3}));
    inners.push_back(stream({4, 5}));
    InterleaveStream s(std::move(inners), {1, 2});
    auto first = collect(s);
    s.reset();
    auto second = collect(s);
    EXPECT_EQ(first, second);
}

TEST(ConcatStream, PlaysInOrder)
{
    std::vector<std::unique_ptr<RefStream>> inners;
    inners.push_back(stream({1, 2}));
    inners.push_back(stream({3}));
    ConcatStream s(std::move(inners));
    auto v = collect(s);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[2].vaddr, 3u);
    s.reset();
    EXPECT_EQ(collect(s).size(), 3u);
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _path = ::testing::TempDir() + "trace_test.tpft";
    }

    void TearDown() override { std::remove(_path.c_str()); }

    std::string _path;
};

TEST_F(TraceFileTest, RoundTripPreservesRecords)
{
    std::vector<MemRef> refs = {
        ref(4096, 0x1000, false, 0),
        ref(8192, 0x1004, true, 3),
        ref(100, 0x999, false, 10),          // backward jump
        ref(1ull << 44, 0x1000, true, 1000), // large forward jump
    };
    {
        TraceWriter writer(_path);
        for (const MemRef &r : refs)
            writer.write(r);
        writer.close();
        EXPECT_EQ(writer.written(), refs.size());
    }
    TraceReader reader(_path);
    EXPECT_EQ(reader.count(), refs.size());
    auto out = collect(reader);
    EXPECT_EQ(out, refs);
}

TEST_F(TraceFileTest, ResetReplays)
{
    {
        TraceWriter writer(_path);
        writer.write(ref(1));
        writer.write(ref(2));
    }
    TraceReader reader(_path);
    auto a = collect(reader);
    reader.reset();
    auto b = collect(reader);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 2u);
}

TEST_F(TraceFileTest, DumpTraceCopiesWholeStream)
{
    auto s = stream({5, 6, 7});
    EXPECT_EQ(dumpTrace(*s, _path), 3u);
    TraceReader reader(_path);
    EXPECT_EQ(collect(reader).size(), 3u);
}

TEST_F(TraceFileTest, ProbeReportsProblemsWithoutExiting)
{
    EXPECT_NE(probeTraceFile("/nonexistent/trace.tpft"), "");
    {
        std::FILE *f = std::fopen(_path.c_str(), "wb");
        std::fputs("NOT A TRACE FILE AT ALL BUT LONG ENOUGH....", f);
        std::fclose(f);
    }
    EXPECT_NE(probeTraceFile(_path), "");
    {
        TraceWriter writer(_path);
        writer.write(ref(1));
    }
    EXPECT_EQ(probeTraceFile(_path), "");
}

/**
 * The committed sample trace (tests/data/sample.tpf) that CI uses for
 * trace-backed WorkloadSpecs: it must decode, and re-encoding its
 * records must reproduce the committed bytes exactly (the writer
 * round-trip guard for the on-disk format).
 */
class SampleTraceTest : public ::testing::Test
{
  protected:
    static std::string samplePath()
    {
        return std::string(TLBPF_TEST_DATA_DIR) + "/sample.tpf";
    }

    static std::string
    fileBytes(const std::string &path)
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        EXPECT_NE(f, nullptr) << path;
        std::string bytes;
        int c;
        while ((c = std::fgetc(f)) != EOF)
            bytes.push_back(static_cast<char>(c));
        std::fclose(f);
        return bytes;
    }
};

TEST_F(SampleTraceTest, DecodesAFewHundredRefs)
{
    ASSERT_EQ(probeTraceFile(samplePath()), "");
    TraceReader reader(samplePath());
    auto refs = collect(reader);
    EXPECT_EQ(refs.size(), reader.count());
    EXPECT_GE(refs.size(), 200u);
    EXPECT_LE(refs.size(), 2000u);
    // icounts are monotone, as the simulators assume.
    for (std::size_t i = 1; i < refs.size(); ++i)
        ASSERT_GE(refs[i].icount, refs[i - 1].icount) << i;
}

TEST_F(SampleTraceTest, WriterRoundTripReproducesCommittedBytes)
{
    TraceReader reader(samplePath());
    auto refs = collect(reader);
    std::string rewritten = ::testing::TempDir() + "sample_rt.tpf";
    {
        TraceWriter writer(rewritten);
        for (const MemRef &r : refs)
            writer.write(r);
    }
    EXPECT_EQ(fileBytes(rewritten), fileBytes(samplePath()));
    std::remove(rewritten.c_str());
}

/**
 * The on-disk header is an explicit little-endian byte layout, not a
 * host-endian struct image: bytes 0-3 magic "TPFT", 4-7 version as a
 * LE u32, 8-15 record count as a LE u64.  This is what makes traces
 * portable across hosts, so it is pinned byte-by-byte.
 */
TEST_F(TraceFileTest, HeaderBytesAreExplicitLittleEndian)
{
    {
        TraceWriter writer(_path);
        for (int i = 0; i < 300; ++i) // count >= 256 exercises byte 9
            writer.write(ref(4096u * (i + 1)));
    }
    std::FILE *f = std::fopen(_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    unsigned char hdr[kTraceHeaderBytes];
    ASSERT_EQ(std::fread(hdr, 1, sizeof(hdr), f), sizeof(hdr));
    std::fclose(f);
    EXPECT_EQ(hdr[0], 'T');
    EXPECT_EQ(hdr[1], 'P');
    EXPECT_EQ(hdr[2], 'F');
    EXPECT_EQ(hdr[3], 'T');
    // Version 1 as a little-endian u32.
    EXPECT_EQ(hdr[4], 1u);
    EXPECT_EQ(hdr[5], 0u);
    EXPECT_EQ(hdr[6], 0u);
    EXPECT_EQ(hdr[7], 0u);
    // Record count 300 = 0x12c as a little-endian u64.
    EXPECT_EQ(hdr[8], 0x2cu);
    EXPECT_EQ(hdr[9], 0x01u);
    for (int i = 10; i < 16; ++i)
        EXPECT_EQ(hdr[i], 0u) << "header byte " << i;
}

/**
 * A dump onto a full disk must die naming the path, not leave a
 * truncated trace behind a valid-looking header.  /dev/full fails
 * every flush, so the error surfaces at close() at the latest.
 */
TEST_F(TraceFileTest, WriteErrorIsFatalAndNamesThePath)
{
    std::FILE *probe = std::fopen("/dev/full", "wb");
    if (!probe)
        GTEST_SKIP() << "/dev/full not available on this host";
    std::fclose(probe);
    EXPECT_EXIT(
        {
            TraceWriter writer("/dev/full");
            for (int i = 0; i < 100000; ++i)
                writer.write(ref(4096u * (i + 1)));
            writer.close();
        },
        ::testing::ExitedWithCode(1), "/dev/full");
}

TEST_F(TraceFileTest, ResetAfterPartialReadRewindsDeltaState)
{
    std::vector<MemRef> refs = {
        ref(1ull << 40, 0x1000, false, 0),
        ref(4096, 0x2000, true, 10),
        ref(1ull << 33, 0x3000, false, 20),
        ref(8192, 0x1000, true, 30),
    };
    {
        TraceWriter writer(_path);
        for (const MemRef &r : refs)
            writer.write(r);
    }
    TraceReader reader(_path);
    // Stop mid-stream: the reader's delta state (_prev) and progress
    // counter now sit at record 2.
    MemRef r;
    ASSERT_TRUE(reader.next(r));
    ASSERT_TRUE(reader.next(r));
    reader.reset();
    // A rewound reader must replay from scratch; stale delta state
    // would corrupt the very first record.
    EXPECT_EQ(collect(reader), refs);
}

TEST_F(TraceFileTest, MalformedVarintThrowsUnderThrowPolicy)
{
    {
        TraceWriter writer(_path);
        writer.write(ref(4096));
    }
    {
        // Append a record whose varint never terminates (11 bytes of
        // 0xff exceeds the 64-bit continuation limit) and patch the
        // header count so the reader expects it.
        std::FILE *f = std::fopen(_path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        std::fputc(0x00, f); // flags byte
        for (int i = 0; i < 12; ++i)
            std::fputc(0xff, f);
        std::fseek(f, 8, SEEK_SET);
        std::fputc(2, f); // LE count low byte: now 2 records
        std::fclose(f);
    }
    TraceReader reader(_path, TraceReader::ErrorPolicy::Throw);
    MemRef r;
    EXPECT_TRUE(reader.next(r));
    EXPECT_THROW(reader.next(r), std::invalid_argument);
}

TEST_F(TraceFileTest, TruncatedRecordThrowsUnderThrowPolicy)
{
    {
        TraceWriter writer(_path);
        writer.write(ref(4096));
        writer.write(ref(1ull << 44)); // multi-byte varint delta
    }
    {
        // Chop the tail of the last record; the header still promises
        // two records.
        std::FILE *f = std::fopen(_path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::string bytes;
        int c;
        while ((c = std::fgetc(f)) != EOF)
            bytes.push_back(static_cast<char>(c));
        std::fclose(f);
        ASSERT_GT(bytes.size(), kTraceHeaderBytes + 4);
        f = std::fopen(_path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(bytes.data(), 1, bytes.size() - 2, f);
        std::fclose(f);
    }
    TraceReader reader(_path, TraceReader::ErrorPolicy::Throw);
    MemRef r;
    EXPECT_TRUE(reader.next(r));
    EXPECT_THROW(reader.next(r), std::invalid_argument);
}

/**
 * Fuzz-corpus regressions (tests/data/fuzz_regressions/): hostile
 * .tpf files from the fuzz_trace corpus must keep failing the same
 * way the harness demands — the cheap probe and the throwing reader
 * agree, and a decode attempt raises invalid_argument rather than
 * crashing or returning silent garbage.
 */
TEST(TraceFuzzRegressions, HostileFilesAreRejectedNotDecoded)
{
    for (const char *name :
         {"trace_truncated.tpf", "trace_magic_only.tpf"}) {
        std::string path = std::string(TLBPF_TEST_DATA_DIR) +
                           "/fuzz_regressions/" + name;
        std::string probe = probeTraceFile(path);
        bool rejected = false;
        try {
            TraceReader reader(path,
                               TraceReader::ErrorPolicy::Throw);
            EXPECT_EQ(probe, "")
                << name
                << ": the probe rejected what the reader accepted";
            MemRef r;
            while (reader.next(r)) {
            }
        } catch (const std::invalid_argument &) {
            rejected = true;
        }
        EXPECT_TRUE(rejected) << name << " decoded without an error";
    }
}

TEST_F(TraceFileTest, NextBatchMatchesNextAndInterleaves)
{
    std::vector<MemRef> refs;
    for (int i = 0; i < 500; ++i) {
        // Mixed deltas, directions, flags and icount gaps so every
        // varint width shows up.
        Addr page = (i % 7 == 0) ? (1ull << 35) + i * 4096u
                                 : 4096u * ((i * 37) % 97);
        refs.push_back(ref(page + i, 0x400000 + (i % 3) * 8, i % 2,
                           static_cast<std::uint64_t>(i) * 5));
    }
    {
        TraceWriter writer(_path);
        for (const MemRef &r : refs)
            writer.write(r);
    }
    // Pure batch drain, at several batch sizes.
    for (std::size_t batch : {1u, 3u, 7u, 64u}) {
        TraceReader reader(_path);
        std::vector<MemRef> out;
        std::vector<MemRef> buf(batch);
        std::size_t got;
        while ((got = reader.nextBatch(buf.data(), batch)) > 0) {
            out.insert(out.end(), buf.begin(),
                       buf.begin() + static_cast<std::ptrdiff_t>(got));
            if (got < batch)
                break;
        }
        EXPECT_EQ(out, refs) << "batch size " << batch;
    }
    // next() and nextBatch() interleaved mid-stream are equivalent.
    TraceReader reader(_path);
    std::vector<MemRef> out;
    MemRef one;
    std::vector<MemRef> buf(13);
    for (;;) {
        if (out.size() % 2 == 0) {
            if (!reader.next(one))
                break;
            out.push_back(one);
        } else {
            std::size_t got = reader.nextBatch(buf.data(), buf.size());
            out.insert(out.end(), buf.begin(),
                       buf.begin() + static_cast<std::ptrdiff_t>(got));
            if (got < buf.size())
                break;
        }
    }
    EXPECT_EQ(out, refs);
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_EXIT({ TraceReader reader("/nonexistent/trace.tpft"); },
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST_F(TraceFileTest, BadMagicIsFatal)
{
    {
        std::FILE *f = std::fopen(_path.c_str(), "wb");
        std::fputs("NOT A TRACE FILE AT ALL", f);
        std::fclose(f);
    }
    EXPECT_EXIT({ TraceReader reader(_path); },
                ::testing::ExitedWithCode(1), "bad magic");
}

} // namespace
} // namespace tlbpf
