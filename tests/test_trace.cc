/**
 * @file
 * Unit tests for the reference-stream substrate: records, vector
 * streams, adaptors and the binary trace file format.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/adaptors.hh"
#include "trace/ref_stream.hh"
#include "trace/trace_file.hh"

namespace tlbpf
{
namespace
{

MemRef
ref(Addr vaddr, Addr pc = 0x400000, bool write = false,
    std::uint64_t icount = 0)
{
    return MemRef{vaddr, pc, write, icount};
}

std::unique_ptr<VectorStream>
stream(std::initializer_list<Addr> addrs)
{
    std::vector<MemRef> refs;
    for (Addr a : addrs)
        refs.push_back(ref(a));
    return std::make_unique<VectorStream>(std::move(refs));
}

TEST(MemRef, VpnUsesPageSize)
{
    MemRef r = ref(4096 * 7 + 123);
    EXPECT_EQ(r.vpn(), 7u);
    EXPECT_EQ(r.vpn(8192), 3u);
}

TEST(VectorStream, YieldsAllThenEnds)
{
    auto s = stream({1, 2, 3});
    MemRef r;
    EXPECT_TRUE(s->next(r));
    EXPECT_EQ(r.vaddr, 1u);
    EXPECT_TRUE(s->next(r));
    EXPECT_TRUE(s->next(r));
    EXPECT_FALSE(s->next(r));
    EXPECT_FALSE(s->next(r)); // stays ended
}

TEST(VectorStream, ResetRewinds)
{
    auto s = stream({10, 20});
    collect(*s);
    s->reset();
    auto again = collect(*s);
    ASSERT_EQ(again.size(), 2u);
    EXPECT_EQ(again[0].vaddr, 10u);
}

TEST(Collect, RespectsLimit)
{
    auto s = stream({1, 2, 3, 4});
    auto v = collect(*s, 2);
    EXPECT_EQ(v.size(), 2u);
}

TEST(DistinctPages, CountsPages)
{
    auto s = stream({0, 100, 4096, 8192, 8200});
    EXPECT_EQ(distinctPages(*s), 3u);
}

TEST(TakeStream, TruncatesAndResets)
{
    auto t = TakeStream(stream({1, 2, 3, 4, 5}), 3);
    EXPECT_EQ(collect(t).size(), 3u);
    t.reset();
    EXPECT_EQ(collect(t).size(), 3u);
}

TEST(TakeStream, ShortInnerEndsEarly)
{
    auto t = TakeStream(stream({1, 2}), 10);
    EXPECT_EQ(collect(t).size(), 2u);
}

TEST(SkipStream, DropsPrefix)
{
    auto s = SkipStream(stream({1, 2, 3, 4}), 2);
    auto v = collect(s);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0].vaddr, 3u);
    s.reset();
    EXPECT_EQ(collect(s).size(), 2u);
}

TEST(SkipStream, SkipBeyondEndYieldsNothing)
{
    auto s = SkipStream(stream({1, 2}), 5);
    EXPECT_TRUE(collect(s).empty());
}

TEST(InterleaveStream, RoundRobinWithWeights)
{
    std::vector<std::unique_ptr<RefStream>> inners;
    inners.push_back(stream({1, 2, 3, 4}));
    inners.push_back(stream({100, 200}));
    InterleaveStream s(std::move(inners), {2, 1});
    auto v = collect(s);
    ASSERT_EQ(v.size(), 6u);
    EXPECT_EQ(v[0].vaddr, 1u);
    EXPECT_EQ(v[1].vaddr, 2u);
    EXPECT_EQ(v[2].vaddr, 100u);
    EXPECT_EQ(v[3].vaddr, 3u);
    EXPECT_EQ(v[4].vaddr, 4u);
    EXPECT_EQ(v[5].vaddr, 200u);
}

TEST(InterleaveStream, DrainsLongerStreamAfterShortEnds)
{
    std::vector<std::unique_ptr<RefStream>> inners;
    inners.push_back(stream({1}));
    inners.push_back(stream({100, 200, 300}));
    InterleaveStream s(std::move(inners), {1, 1});
    auto v = collect(s);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v.back().vaddr, 300u);
}

TEST(InterleaveStream, ResetReplaysIdentically)
{
    std::vector<std::unique_ptr<RefStream>> inners;
    inners.push_back(stream({1, 2, 3}));
    inners.push_back(stream({4, 5}));
    InterleaveStream s(std::move(inners), {1, 2});
    auto first = collect(s);
    s.reset();
    auto second = collect(s);
    EXPECT_EQ(first, second);
}

TEST(ConcatStream, PlaysInOrder)
{
    std::vector<std::unique_ptr<RefStream>> inners;
    inners.push_back(stream({1, 2}));
    inners.push_back(stream({3}));
    ConcatStream s(std::move(inners));
    auto v = collect(s);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[2].vaddr, 3u);
    s.reset();
    EXPECT_EQ(collect(s).size(), 3u);
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _path = ::testing::TempDir() + "trace_test.tpft";
    }

    void TearDown() override { std::remove(_path.c_str()); }

    std::string _path;
};

TEST_F(TraceFileTest, RoundTripPreservesRecords)
{
    std::vector<MemRef> refs = {
        ref(4096, 0x1000, false, 0),
        ref(8192, 0x1004, true, 3),
        ref(100, 0x999, false, 10),          // backward jump
        ref(1ull << 44, 0x1000, true, 1000), // large forward jump
    };
    {
        TraceWriter writer(_path);
        for (const MemRef &r : refs)
            writer.write(r);
        writer.close();
        EXPECT_EQ(writer.written(), refs.size());
    }
    TraceReader reader(_path);
    EXPECT_EQ(reader.count(), refs.size());
    auto out = collect(reader);
    EXPECT_EQ(out, refs);
}

TEST_F(TraceFileTest, ResetReplays)
{
    {
        TraceWriter writer(_path);
        writer.write(ref(1));
        writer.write(ref(2));
    }
    TraceReader reader(_path);
    auto a = collect(reader);
    reader.reset();
    auto b = collect(reader);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 2u);
}

TEST_F(TraceFileTest, DumpTraceCopiesWholeStream)
{
    auto s = stream({5, 6, 7});
    EXPECT_EQ(dumpTrace(*s, _path), 3u);
    TraceReader reader(_path);
    EXPECT_EQ(collect(reader).size(), 3u);
}

TEST_F(TraceFileTest, ProbeReportsProblemsWithoutExiting)
{
    EXPECT_NE(probeTraceFile("/nonexistent/trace.tpft"), "");
    {
        std::FILE *f = std::fopen(_path.c_str(), "wb");
        std::fputs("NOT A TRACE FILE AT ALL BUT LONG ENOUGH....", f);
        std::fclose(f);
    }
    EXPECT_NE(probeTraceFile(_path), "");
    {
        TraceWriter writer(_path);
        writer.write(ref(1));
    }
    EXPECT_EQ(probeTraceFile(_path), "");
}

/**
 * The committed sample trace (tests/data/sample.tpf) that CI uses for
 * trace-backed WorkloadSpecs: it must decode, and re-encoding its
 * records must reproduce the committed bytes exactly (the writer
 * round-trip guard for the on-disk format).
 */
class SampleTraceTest : public ::testing::Test
{
  protected:
    static std::string samplePath()
    {
        return std::string(TLBPF_TEST_DATA_DIR) + "/sample.tpf";
    }

    static std::string
    fileBytes(const std::string &path)
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        EXPECT_NE(f, nullptr) << path;
        std::string bytes;
        int c;
        while ((c = std::fgetc(f)) != EOF)
            bytes.push_back(static_cast<char>(c));
        std::fclose(f);
        return bytes;
    }
};

TEST_F(SampleTraceTest, DecodesAFewHundredRefs)
{
    ASSERT_EQ(probeTraceFile(samplePath()), "");
    TraceReader reader(samplePath());
    auto refs = collect(reader);
    EXPECT_EQ(refs.size(), reader.count());
    EXPECT_GE(refs.size(), 200u);
    EXPECT_LE(refs.size(), 2000u);
    // icounts are monotone, as the simulators assume.
    for (std::size_t i = 1; i < refs.size(); ++i)
        ASSERT_GE(refs[i].icount, refs[i - 1].icount) << i;
}

TEST_F(SampleTraceTest, WriterRoundTripReproducesCommittedBytes)
{
    TraceReader reader(samplePath());
    auto refs = collect(reader);
    std::string rewritten = ::testing::TempDir() + "sample_rt.tpf";
    {
        TraceWriter writer(rewritten);
        for (const MemRef &r : refs)
            writer.write(r);
    }
    EXPECT_EQ(fileBytes(rewritten), fileBytes(samplePath()));
    std::remove(rewritten.c_str());
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_EXIT({ TraceReader reader("/nonexistent/trace.tpft"); },
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST_F(TraceFileTest, BadMagicIsFatal)
{
    {
        std::FILE *f = std::fopen(_path.c_str(), "wb");
        std::fputs("NOT A TRACE FILE AT ALL", f);
        std::fclose(f);
    }
    EXPECT_EXIT({ TraceReader reader(_path); },
                ::testing::ExitedWithCode(1), "bad magic");
}

} // namespace
} // namespace tlbpf
