/**
 * @file
 * Tests for the experiment drivers: the canned figure/table
 * configuration lists, the sweep helpers, and end-to-end behaviour of
 * the prefetcher variants (adaptive SP, wide-reach RP) inside the
 * full simulator.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "trace/ref_stream.hh"

namespace tlbpf
{
namespace
{

TEST(Figure7Specs, MatchesPaperLegend)
{
    auto specs = figure7Specs();
    // RP + 8 MP configs + 6 DP + 6 ASP = 21 bars per application.
    ASSERT_EQ(specs.size(), 21u);
    EXPECT_EQ(specs[0].label(), "RP");
    EXPECT_EQ(specs[1].label(), "MP,1024,D");
    EXPECT_EQ(specs[8].label(), "MP,256,F");
    EXPECT_EQ(specs[9].label(), "DP,1024,D");
    EXPECT_EQ(specs[14].label(), "DP,32,D");
    EXPECT_EQ(specs[15].label(), "ASP,1024,D");
    EXPECT_EQ(specs[20].label(), "ASP,32,D");
    for (const MechanismSpec &spec : specs) {
        if (spec.name == "mp" || spec.name == "dp") {
            EXPECT_EQ(spec.uintParam("slots"), 2u) << spec.label();
        }
    }
}

TEST(Table2Specs, FourSchemesAt256)
{
    auto specs = table2Specs();
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].name, "dp");
    EXPECT_EQ(specs[1].name, "rp");
    EXPECT_EQ(specs[2].name, "asp");
    EXPECT_EQ(specs[3].name, "mp");
    for (const MechanismSpec &spec : specs) {
        if (spec.name != "rp") {
            EXPECT_EQ(spec.uintParam("rows"), 256u);
        }
    }
}

TEST(AccuracySweep, CellsMatchIndividualRuns)
{
    std::vector<MechanismSpec> specs = table2Specs();
    auto cells = accuracySweep("galgel", specs, 100000);
    ASSERT_EQ(cells.size(), 4u);
    SimResult direct = runFunctional("galgel", specs[0], 100000);
    EXPECT_DOUBLE_EQ(cells[0].accuracy, direct.accuracy());
    EXPECT_DOUBLE_EQ(cells[0].missRate, direct.missRate());
    EXPECT_EQ(cells[0].label, "DP,256,D");
}

TEST(RunTimed, NormalisesSanely)
{
    TimingResult r = runTimed("eon", MechanismSpec::none(), 50000);
    // eon barely misses: cycles ~ compute cycles.
    EXPECT_LT(r.stallCycles, r.computeCycles / 10);
    EXPECT_EQ(r.cycles, r.computeCycles + r.stallCycles);
}

TEST(Variants, AdaptiveSpBeatsFixedDegreeOneOnSequentialBursts)
{
    // On a pure sequential stream both saturate; on a faster page
    // walk the adaptive version's higher degree covers more lookahead
    // within the buffer.
    std::vector<MemRef> refs;
    for (Vpn p = 0; p < 30000; ++p)
        refs.push_back(MemRef{p * kDefaultPageBytes, 0x4000, false, p});

    MechanismSpec fixed = MechanismSpec::parse("sp(degree=1)");
    MechanismSpec adaptive = MechanismSpec::parse("sp(adaptive)");

    VectorStream s1(refs);
    VectorStream s2(refs);
    SimResult f = simulate(SimConfig{}, fixed, s1);
    SimResult a = simulate(SimConfig{}, adaptive, s2);
    EXPECT_GT(f.accuracy(), 0.99); // both easily cover stride-1
    EXPECT_GT(a.accuracy(), 0.99);
    // The adaptive controller issued more prefetches (degree > 1).
    EXPECT_GT(a.prefetchesIssued + a.prefetchesSuppressed,
              f.prefetchesIssued + f.prefetchesSuppressed);
}

TEST(Variants, WideReachRpLiftsAccuracyOnHistoryApp)
{
    // The 3-entry-style RP variant prefetches deeper into the stack
    // neighbourhood; on a history app it should not do worse, and it
    // issues more prefetch traffic.
    MechanismSpec rp2 = MechanismSpec::parse("rp(reach=1)");
    MechanismSpec rp4 = MechanismSpec::parse("rp(reach=2)");
    SimResult narrow = runFunctional("gcc", rp2, 300000);
    SimResult wide = runFunctional("gcc", rp4, 300000);
    EXPECT_GE(wide.accuracy(), narrow.accuracy() - 0.02);
    EXPECT_GT(wide.prefetchesIssued, narrow.prefetchesIssued);
}

TEST(Variants, FactoryLabelsForVariants)
{
    MechanismSpec spec = MechanismSpec::parse("ASQ");
    EXPECT_EQ(spec.label(), "ASQ");
    PageTable pt;
    auto pf = spec.build(pt);
    EXPECT_EQ(pf->name(), "ASQ");

    spec = MechanismSpec::parse("rp(reach=2)");
    EXPECT_EQ(spec.label(), "RP,4");
    EXPECT_EQ(MechanismSpec::parse("RP,4"), spec);
    auto rp = spec.build(pt);
    EXPECT_EQ(rp->label(), "RP,4");
}

TEST(DefaultBenchRefs, IsAMillion)
{
    EXPECT_EQ(kDefaultBenchRefs, 1000000u);
}

} // namespace
} // namespace tlbpf
