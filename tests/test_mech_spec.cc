/**
 * @file
 * Tests for MechanismSpec and the open MechanismRegistry: the
 * parse()/label()/canonical() round-trips, the typed parameter
 * schema's error paths (unknown mechanisms and keys, out-of-range
 * values, malformed composite child lists — all actionable
 * std::invalid_argument, with the fatal-exit conversion at the bench
 * boundary), registry openness through the public add() API, and the
 * hybrid combinator end to end on the SweepEngine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "mem/page_table.hh"
#include "prefetch/hybrid.hh"
#include "prefetch/mech_spec.hh"
#include "run/sweep_engine.hh"
#include "sim/experiment.hh"

namespace tlbpf
{
namespace
{

// ------------------------------------------------------- round-trips

TEST(MechSpecRoundTrip, LabelRoundTripsForEveryFigure7Spec)
{
    // The satellite property: parse(label(s)) == s for every spec the
    // figures sweep, so rendered legends are canonical addresses.
    for (const MechanismSpec &spec : figure7Specs()) {
        EXPECT_EQ(MechanismSpec::parse(spec.label()), spec)
            << spec.label();
    }
}

TEST(MechSpecRoundTrip, LabelRoundTripsForEveryTable2Spec)
{
    for (const MechanismSpec &spec : table2Specs()) {
        EXPECT_EQ(MechanismSpec::parse(spec.label()), spec)
            << spec.label();
    }
}

TEST(MechSpecRoundTrip, CanonicalRoundTrips)
{
    for (const char *text :
         {"none", "sp", "sp(degree=2)", "sp(adaptive)", "rp",
          "rp(reach=4)", "dp", "dp(rows=512,assoc=4w)",
          "mp(rows=64,slots=4)", "asp(rows=32)", "hybrid(dp+sp)",
          "hybrid(dp(rows=64)+rp+sp(adaptive))"}) {
        MechanismSpec spec = MechanismSpec::parse(text);
        EXPECT_EQ(MechanismSpec::parse(spec.canonical()), spec)
            << text << " -> " << spec.canonical();
        EXPECT_EQ(MechanismSpec::parse(spec.label()), spec)
            << text << " -> " << spec.label();
    }
}

TEST(MechSpecRoundTrip, CanonicalElidesDefaults)
{
    EXPECT_EQ(MechanismSpec::parse("dp(rows=256,assoc=dm,slots=2)")
                  .canonical(),
              "dp");
    EXPECT_EQ(MechanismSpec::parse("dp(rows=512)").canonical(),
              "dp(rows=512)");
    EXPECT_EQ(MechanismSpec::parse("ASQ").canonical(),
              "sp(adaptive)");
}

TEST(MechSpecRoundTrip, LegendFormsMatchTheClosedEnumEra)
{
    // The figure-legend emissions that make table/CSV output
    // byte-identical to the pre-registry factory.
    EXPECT_EQ(MechanismSpec::parse("dp").label(), "DP,256,D");
    EXPECT_EQ(MechanismSpec::parse("mp(rows=1024,assoc=2w)").label(),
              "MP,1024,2");
    EXPECT_EQ(MechanismSpec::parse("asp(assoc=fa)").label(),
              "ASP,256,F");
    EXPECT_EQ(MechanismSpec::parse("sp(degree=3)").label(), "SP,3");
    EXPECT_EQ(MechanismSpec::parse("sp(adaptive)").label(), "ASQ");
    EXPECT_EQ(MechanismSpec::parse("rp(reach=2)").label(), "RP,4");
    EXPECT_EQ(MechanismSpec::parse("hybrid(dp+sp)").label(),
              "hybrid(DP,256,D+SP,1)");
}

TEST(MechSpec, AliasesResolve)
{
    EXPECT_EQ(MechanismSpec::parse("distance"),
              MechanismSpec::parse("dp"));
    EXPECT_EQ(MechanismSpec::parse("markov"),
              MechanismSpec::parse("mp"));
    EXPECT_EQ(MechanismSpec::parse("ASQ"),
              MechanismSpec::parse("sp(adaptive)"));
    // Case-insensitive names.
    EXPECT_EQ(MechanismSpec::parse("DP"), MechanismSpec::parse("dp"));
}

TEST(MechSpec, TypedAccessors)
{
    MechanismSpec spec = MechanismSpec::parse("dp(rows=512,assoc=4w)");
    EXPECT_EQ(spec.uintParam("rows"), 512u);
    EXPECT_EQ(spec.choiceParam("assoc"), "4w");
    EXPECT_EQ(spec.uintParam("slots"), 2u); // default filled in
    EXPECT_EQ(spec.tableParam().rows, 512u);
    EXPECT_EQ(spec.tableParam().assoc, TableAssoc::FourWay);
    EXPECT_TRUE(MechanismSpec::parse("sp(adaptive)")
                    .flagParam("adaptive"));
    EXPECT_FALSE(MechanismSpec::parse("sp").flagParam("adaptive"));
    EXPECT_THROW(spec.uintParam("nope"), std::invalid_argument);
}

TEST(MechSpecList, GreedyLongestMatchSplitsLegendsAndLists)
{
    // One legend spec.
    std::vector<MechanismSpec> one = parseMechanismList("DP,256,D");
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].label(), "DP,256,D");

    // Legend forms mixed with composites and bare names.
    std::vector<MechanismSpec> many =
        parseMechanismList("hybrid(dp+sp),DP,512,D,rp,SP,2");
    ASSERT_EQ(many.size(), 4u);
    EXPECT_EQ(many[0].label(), "hybrid(DP,256,D+SP,1)");
    EXPECT_EQ(many[1].label(), "DP,512,D");
    EXPECT_EQ(many[2].label(), "RP");
    EXPECT_EQ(many[3].label(), "SP,2");

    EXPECT_TRUE(parseMechanismList("").empty());
    EXPECT_THROW(parseMechanismList("dp,XYZ"), std::invalid_argument);
}

// ------------------------------------------------------- error paths

TEST(MechSpecErrors, UnknownMechanismThrowsActionably)
{
    try {
        MechanismSpec::parse("nosuch");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("unknown mechanism 'nosuch'"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("dp"), std::string::npos) << what;
    }
}

TEST(MechSpecErrors, UnknownParameterKeyNamesTheSchema)
{
    try {
        MechanismSpec::parse("dp(bogus=1)");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("unknown parameter 'bogus'"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("rows"), std::string::npos) << what;
    }
}

TEST(MechSpecErrors, OutOfRangeValueNamesTheRange)
{
    try {
        MechanismSpec::parse("mp(slots=99)");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("must be in [1, 8]"), std::string::npos)
            << what;
    }
    EXPECT_THROW(MechanismSpec::parse("sp(degree=0)"),
                 std::invalid_argument);
    EXPECT_THROW(MechanismSpec::parse("dp(rows=notanumber)"),
                 std::invalid_argument);
    EXPECT_THROW(MechanismSpec::parse("dp(assoc=8w)"),
                 std::invalid_argument);
    // Cross-parameter geometry checks surface at parse time, not as a
    // process abort inside PredictionTable.
    EXPECT_THROW(MechanismSpec::parse("dp(rows=7)"),
                 std::invalid_argument);
    EXPECT_THROW(MechanismSpec::parse("dp(rows=6,assoc=4w)"),
                 std::invalid_argument);
}

TEST(MechSpecErrors, MalformedSyntaxThrows)
{
    for (const char *bad :
         {"", "   ", "dp(", "dp(rows=256", "dp)", "dp(rows)",
          "dp(rows=256,rows=512)", "sp(adaptive=maybe)",
          "ASQ(degree=2)", "DP,256,D,extra"}) {
        EXPECT_THROW(MechanismSpec::parse(bad), std::invalid_argument)
            << "'" << bad << "'";
    }
}

TEST(MechSpecErrors, MalformedHybridChildListThrows)
{
    for (const char *bad :
         {"hybrid", "hybrid()", "hybrid(dp)", "hybrid(dp+)",
          "hybrid(+dp)", "hybrid(dp+nosuch)", "hybrid(dp+none)",
          "hybrid(dp+sp+dp+sp+dp+sp+dp+sp+dp)"}) {
        EXPECT_THROW(MechanismSpec::parse(bad), std::invalid_argument)
            << "'" << bad << "'";
    }
}

TEST(MechSpecErrors, RpLegendFieldMustBeEven)
{
    EXPECT_EQ(MechanismSpec::parse("RP,4").uintParam("reach"), 2u);
    EXPECT_THROW(MechanismSpec::parse("RP,3"), std::invalid_argument);
    EXPECT_THROW(MechanismSpec::parse("RP,0"), std::invalid_argument);
}

TEST(MechSpecErrors, HandAssembledSpecsAreValidated)
{
    MechanismSpec bogus;
    bogus.name = "dp";
    bogus.params = {{"rows", "512"}}; // missing schema keys
    EXPECT_THROW(bogus.validate(), std::invalid_argument);
    PageTable pt;
    EXPECT_THROW(bogus.build(pt), std::invalid_argument);

    MechanismSpec stray = MechanismSpec::parse("dp");
    stray.children.push_back(MechanismSpec::parse("sp"));
    EXPECT_THROW(stray.validate(), std::invalid_argument);
}

/** The bench boundary converts resolution errors to clean exits. */
using MechSpecDeathTest = ::testing::Test;

TEST(MechSpecDeathTest, ParseMechanismOrDieExitsOneWithMessage)
{
    EXPECT_EXIT((void)parseMechanismOrDie("nosuch"),
                ::testing::ExitedWithCode(1), "unknown mechanism");
    EXPECT_EXIT((void)parseMechanismOrDie("dp(bogus=1)"),
                ::testing::ExitedWithCode(1), "unknown parameter");
    EXPECT_EXIT((void)parseMechanismOrDie("mp(slots=99)"),
                ::testing::ExitedWithCode(1), "must be in");
    EXPECT_EXIT((void)parseMechanismListOrDie("hybrid(dp)"),
                ::testing::ExitedWithCode(1), "children");
}

// -------------------------------------------------- registry openness

TEST(MechRegistry, PublicAddRegistersAndResolves)
{
    // A brand-new mechanism through the public API only — no switch,
    // no enum, no core edits.  Uses a unique name so repeated suite
    // runs in one process don't collide.
    MechanismEntry entry;
    entry.name = "testmech";
    entry.shortName = "TM";
    entry.summary = "registered by test_mech_spec";
    entry.params = {MechParam::makeUInt("depth", "test depth", 3, 1,
                                        10)};
    // Reuse SP as the engine; the point is the registration path.
    entry.build = [](const MechanismSpec &spec, PageTable &pt) {
        return MechanismSpec::parse(
                   "sp(degree=" +
                   std::to_string(spec.uintParam("depth")) + ")")
            .build(pt);
    };
    MechanismRegistry::instance().add(entry);

    MechanismSpec spec = MechanismSpec::parse("testmech(depth=5)");
    EXPECT_EQ(spec.uintParam("depth"), 5u);
    EXPECT_EQ(spec.shortName(), "TM");
    PageTable pt;
    auto built = spec.build(pt);
    ASSERT_NE(built, nullptr);
    EXPECT_EQ(built->name(), "SP");

    // Names and aliases are claimed once.
    EXPECT_THROW(MechanismRegistry::instance().add(entry),
                 std::invalid_argument);
    MechanismEntry nameless;
    EXPECT_THROW(MechanismRegistry::instance().add(nameless),
                 std::invalid_argument);
}

TEST(MechRegistry, ListingsCoverTheBuiltins)
{
    std::string names = MechanismRegistry::instance().knownNames();
    for (const char *name :
         {"none", "sp", "asp", "mp", "rp", "dp", "hybrid"})
        EXPECT_NE(names.find(name), std::string::npos) << name;
    EXPECT_NE(MechanismRegistry::instance().find("DP"), nullptr);
    EXPECT_EQ(MechanismRegistry::instance().find("nosuch"), nullptr);
}

// ------------------------------------------------------------ hybrid

TEST(Hybrid, UnionsAndDeduplicatesChildTargets)
{
    PageTable pt;
    auto hybrid = MechanismSpec::parse("hybrid(dp+sp)").build(pt);
    auto dp = MechanismSpec::parse("dp").build(pt);
    auto sp = MechanismSpec::parse("sp").build(pt);
    ASSERT_NE(hybrid, nullptr);

    // Warm all three identically: misses at a constant distance of 1,
    // so DP learns distance 1 and predicts vpn+1 — the same target SP
    // proposes.  The hybrid must emit it once.
    PrefetchDecision dh, dd, ds;
    for (Vpn vpn = 100; vpn < 120; ++vpn) {
        TlbMiss miss{vpn, 0x4000, false, kNoPage};
        dh.clear();
        dd.clear();
        ds.clear();
        hybrid->onMiss(miss, dh);
        dp->onMiss(miss, dd);
        sp->onMiss(miss, ds);
    }
    ASSERT_FALSE(dh.targets.empty());
    ASSERT_FALSE(dd.targets.empty());
    ASSERT_FALSE(ds.targets.empty());
    // Both children propose vpn+1 = 120; the union holds it once.
    EXPECT_EQ(dd.targets.front(), 120u);
    EXPECT_EQ(ds.targets.front(), 120u);
    EXPECT_EQ(
        std::count(dh.targets.begin(), dh.targets.end(), Vpn{120}),
        1);
}

TEST(Hybrid, HardwareProfileAccumulatesChildren)
{
    MechanismSpec spec = MechanismSpec::parse("hybrid(dp+rp)");
    HardwareProfile profile = spec.hardwareProfile();
    HardwareProfile dp =
        MechanismSpec::parse("dp").hardwareProfile();
    HardwareProfile rp =
        MechanismSpec::parse("rp").hardwareProfile();
    EXPECT_EQ(profile.memOpsPerMiss,
              dp.memOpsPerMiss + rp.memOpsPerMiss);
}

TEST(Hybrid, RunsEndToEndOnTheSweepEngineBitIdentically)
{
    // The acceptance cell: hybrid(dp+sp) through accuracySweep on the
    // engine, 1 thread vs N threads, bit-identical.
    std::vector<MechanismSpec> specs = {
        MechanismSpec::parse("hybrid(dp+sp)"),
        MechanismSpec::parse("dp"),
        MechanismSpec::parse("sp"),
    };
    auto serial = accuracySweep("gcc", specs, 30000, SimConfig{}, 1);
    auto parallel = accuracySweep("gcc", specs, 30000, SimConfig{}, 4);
    ASSERT_EQ(serial.size(), 3u);
    ASSERT_EQ(parallel.size(), 3u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].label, parallel[i].label);
        EXPECT_DOUBLE_EQ(serial[i].accuracy, parallel[i].accuracy);
        EXPECT_DOUBLE_EQ(serial[i].missRate, parallel[i].missRate);
    }
    // The union can only help: hybrid accuracy >= each child's.
    EXPECT_GE(serial[0].accuracy, serial[1].accuracy - 1e-12);
    EXPECT_GE(serial[0].accuracy, serial[2].accuracy - 1e-12);

    // And as an engine batch with a labelled result row.
    SweepResult cell = runSweepJob(SweepJob::functional(
        WorkloadSpec::app("gcc"), specs[0], 30000));
    EXPECT_EQ(cell.mechanism, "hybrid(DP,256,D+SP,1)");
    EXPECT_GT(cell.functional.misses, 0u);
}

} // namespace
} // namespace tlbpf
