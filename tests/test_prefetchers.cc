/**
 * @file
 * Unit tests for the five prefetching mechanisms and the factory.
 */

#include <gtest/gtest.h>

#include "prefetch/asp.hh"
#include "prefetch/distance.hh"
#include "prefetch/mech_spec.hh"
#include "prefetch/markov.hh"
#include "prefetch/recency.hh"
#include "prefetch/sequential.hh"

namespace tlbpf
{
namespace
{

PrefetchDecision
miss(Prefetcher &pf, Vpn vpn, Addr pc = 0x4000,
     Vpn evicted = kNoPage, bool pb_hit = false)
{
    PrefetchDecision decision;
    pf.onMiss(TlbMiss{vpn, pc, pb_hit, evicted}, decision);
    return decision;
}

// ---------------------------------------------------------------- SP

TEST(Sequential, PrefetchesNextPage)
{
    SequentialPrefetcher sp;
    auto d = miss(sp, 100);
    ASSERT_EQ(d.targets.size(), 1u);
    EXPECT_EQ(d.targets[0], 101u);
    EXPECT_EQ(d.stateOps, 0u);
}

TEST(Sequential, DegreeControlsCount)
{
    SequentialPrefetcher sp(3);
    auto d = miss(sp, 10);
    ASSERT_EQ(d.targets.size(), 3u);
    EXPECT_EQ(d.targets[2], 13u);
    EXPECT_EQ(sp.label(), "SP,3");
}

// --------------------------------------------------------------- ASP

TEST(Asp, NoPrefetchUntilSteady)
{
    AspPrefetcher asp({256, TableAssoc::Direct});
    // Same PC, stride 2 in pages.
    EXPECT_TRUE(miss(asp, 10).targets.empty());  // allocate
    EXPECT_TRUE(miss(asp, 12).targets.empty());  // initial->transient
    auto d = miss(asp, 14); // stride confirmed: transient->steady
    ASSERT_EQ(d.targets.size(), 1u);
    EXPECT_EQ(d.targets[0], 16u);
}

TEST(Asp, InitialWithZeroStrideGoesSteadyButSuppressessZeroStride)
{
    AspPrefetcher asp({256, TableAssoc::Direct});
    miss(asp, 10);
    auto d = miss(asp, 10); // stride 0 matches initial stride 0
    EXPECT_TRUE(d.targets.empty()); // zero stride never prefetches
    EXPECT_EQ(asp.inspect(0x4000).state, RptState::Steady);
}

TEST(Asp, StrideChangeLeavesSteady)
{
    AspPrefetcher asp({256, TableAssoc::Direct});
    miss(asp, 10);
    miss(asp, 12);
    miss(asp, 14); // steady
    auto d = miss(asp, 20); // stride broke: steady->initial, no pf
    EXPECT_TRUE(d.targets.empty());
    EXPECT_EQ(asp.inspect(0x4000).state, RptState::Initial);
    // Stride is kept through steady->initial (Chen-Baer), so one
    // matching observation returns to steady and prefetching resumes.
    auto d2 = miss(asp, 22);
    EXPECT_EQ(asp.inspect(0x4000).state, RptState::Steady);
    ASSERT_EQ(d2.targets.size(), 1u);
    EXPECT_EQ(d2.targets[0], 24u);
}

TEST(Asp, ChaoticStrideReachesNoPred)
{
    AspPrefetcher asp({256, TableAssoc::Direct});
    miss(asp, 10);
    miss(asp, 13);  // initial -> transient (stride 3)
    miss(asp, 14);  // wrong (1 != 3): transient -> nopred
    EXPECT_EQ(asp.inspect(0x4000).state, RptState::NoPred);
    miss(asp, 20);  // still chaotic: stays nopred
    EXPECT_EQ(asp.inspect(0x4000).state, RptState::NoPred);
    EXPECT_TRUE(miss(asp, 100).targets.empty());
}

TEST(Asp, NoPredRecoversViaTransient)
{
    AspPrefetcher asp({256, TableAssoc::Direct});
    miss(asp, 10);
    miss(asp, 13);
    miss(asp, 14); // nopred, stride 1
    miss(asp, 15); // correct: nopred -> transient
    EXPECT_EQ(asp.inspect(0x4000).state, RptState::Transient);
    auto d = miss(asp, 16); // transient -> steady
    ASSERT_EQ(d.targets.size(), 1u);
    EXPECT_EQ(d.targets[0], 17u);
}

TEST(Asp, DistinctPcsTrackIndependentStreams)
{
    AspPrefetcher asp({256, TableAssoc::Direct});
    // Stream A at PC 0x4000 (stride 1), stream B at 0x4004 (stride 4):
    // adjacent instructions, distinct RPT rows.
    for (int i = 0; i < 3; ++i) {
        miss(asp, 100 + i, 0x4000);
        miss(asp, 1000 + 4 * i, 0x4004);
    }
    auto a = miss(asp, 103, 0x4000);
    auto b = miss(asp, 1012, 0x4004);
    ASSERT_EQ(a.targets.size(), 1u);
    EXPECT_EQ(a.targets[0], 104u);
    ASSERT_EQ(b.targets.size(), 1u);
    EXPECT_EQ(b.targets[0], 1016u);
}

TEST(Asp, LabelAndProfile)
{
    AspPrefetcher asp({512, TableAssoc::Direct});
    EXPECT_EQ(asp.label(), "ASP,512,D");
    EXPECT_EQ(asp.hardwareProfile().indexedBy, "PC");
    EXPECT_EQ(asp.hardwareProfile().memOpsPerMiss, 0u);
    EXPECT_FALSE(asp.dropPrefetchesWhenBusy());
}

// ---------------------------------------------------------------- MP

TEST(Markov, LearnsSuccessorAfterOneTransition)
{
    MarkovPrefetcher mp({256, TableAssoc::Direct}, 2);
    miss(mp, 10);
    miss(mp, 20); // row[10] learns 20
    auto d = miss(mp, 10);
    ASSERT_EQ(d.targets.size(), 1u);
    EXPECT_EQ(d.targets[0], 20u);
}

TEST(Markov, KeepsTwoSuccessorsInLruOrder)
{
    MarkovPrefetcher mp({256, TableAssoc::Direct}, 2);
    miss(mp, 10);
    miss(mp, 20);
    miss(mp, 10);
    miss(mp, 30);
    miss(mp, 10);
    miss(mp, 20); // successors of 10: {20 (MRU), 30}
    auto succ = mp.successorsOf(10);
    ASSERT_EQ(succ.size(), 2u);
    EXPECT_EQ(succ[0], 20u);
    EXPECT_EQ(succ[1], 30u);
}

TEST(Markov, ThirdSuccessorEvictsLru)
{
    MarkovPrefetcher mp({256, TableAssoc::Direct}, 2);
    for (Vpn next : {20u, 30u, 40u}) {
        miss(mp, 10);
        miss(mp, next);
    }
    auto succ = mp.successorsOf(10);
    ASSERT_EQ(succ.size(), 2u);
    EXPECT_EQ(succ[0], 40u);
    EXPECT_EQ(succ[1], 30u);
}

TEST(Markov, AlternationCapturedBySlots)
{
    // The paper's parser/vortex argument: a page whose successor
    // alternates keeps both candidates with s=2.
    MarkovPrefetcher mp({256, TableAssoc::Direct}, 2);
    for (int round = 0; round < 3; ++round) {
        miss(mp, 1);
        miss(mp, round % 2 ? 5 : 2);
    }
    miss(mp, 99); // decouple
    auto d = miss(mp, 1);
    EXPECT_EQ(d.targets.size(), 2u);
}

TEST(Markov, SmallTableThrashesOnLargeFootprint)
{
    // Footprint of 64 pages with a 16-row table: rows are evicted
    // before their history is consulted again.
    MarkovPrefetcher mp({16, TableAssoc::Direct}, 2);
    std::uint64_t predicted = 0;
    for (int pass = 0; pass < 4; ++pass)
        for (Vpn v = 0; v < 64; ++v)
            predicted += miss(mp, v * 131 % 64 + 1000).targets.size();
    EXPECT_EQ(predicted, 0u);
}

TEST(Markov, SelfSuccessorIgnored)
{
    MarkovPrefetcher mp({256, TableAssoc::Direct}, 2);
    miss(mp, 10);
    miss(mp, 10);
    EXPECT_TRUE(mp.successorsOf(10).empty());
}

TEST(Markov, ResetClearsHistory)
{
    MarkovPrefetcher mp({256, TableAssoc::Direct}, 2);
    miss(mp, 10);
    miss(mp, 20);
    mp.reset();
    EXPECT_TRUE(mp.successorsOf(10).empty());
    // prev-miss pointer cleared: the first post-reset miss must not
    // create a phantom 20 -> 77 edge.
    miss(mp, 77);
    EXPECT_TRUE(mp.successorsOf(20).empty());
    EXPECT_TRUE(miss(mp, 10).targets.empty());
}

// ---------------------------------------------------------------- RP

TEST(Recency, PrefetchesStackNeighbours)
{
    PageTable pt;
    RecencyPrefetcher rp(pt);
    // Build eviction history 1,2,3 then miss on 2.
    miss(rp, 100, 0, 1);
    miss(rp, 101, 0, 2);
    miss(rp, 102, 0, 3);
    auto d = miss(rp, 2, 0, 103);
    ASSERT_EQ(d.targets.size(), 2u);
    EXPECT_EQ(d.targets[0], 3u);
    EXPECT_EQ(d.targets[1], 1u);
    EXPECT_EQ(d.stateOps, 4u); // 2 unlink writes + 2 push writes
}

TEST(Recency, FirstTouchMissesPredictNothing)
{
    PageTable pt;
    RecencyPrefetcher rp(pt);
    auto d = miss(rp, 7);
    EXPECT_TRUE(d.targets.empty());
    EXPECT_EQ(d.stateOps, 0u);
}

TEST(Recency, StateLivesInPageTable)
{
    PageTable pt;
    RecencyPrefetcher rp(pt);
    miss(rp, 100, 0, 1);
    EXPECT_TRUE(pt.find(1)->inStack);
    EXPECT_EQ(rp.stack().top(), 1u);
}

TEST(Recency, DropsPrefetchesWhenBusyAndProfileSaysInMemory)
{
    PageTable pt;
    RecencyPrefetcher rp(pt);
    EXPECT_TRUE(rp.dropPrefetchesWhenBusy());
    EXPECT_EQ(rp.hardwareProfile().tableLocation, "In Memory");
    EXPECT_EQ(rp.hardwareProfile().memOpsPerMiss, 4u);
}

TEST(Recency, ResetEmptiesStack)
{
    PageTable pt;
    RecencyPrefetcher rp(pt);
    miss(rp, 100, 0, 1);
    miss(rp, 101, 0, 2);
    rp.reset();
    EXPECT_EQ(rp.stack().linkedCount(), 0u);
    auto d = miss(rp, 1, 0, kNoPage);
    EXPECT_TRUE(d.targets.empty());
}

// ---------------------------------------------------------------- DP

TEST(Distance, AdapterMatchesCorePredictor)
{
    DistancePrefetcher dp({256, TableAssoc::Direct}, 2);
    miss(dp, 1);
    miss(dp, 2);
    auto d = miss(dp, 3);
    ASSERT_EQ(d.targets.size(), 1u);
    EXPECT_EQ(d.targets[0], 4u);
    EXPECT_EQ(d.stateOps, 0u);
}

TEST(Distance, LabelAndProfile)
{
    DistancePrefetcher dp({64, TableAssoc::Full}, 4);
    EXPECT_EQ(dp.label(), "DP,64,F");
    EXPECT_EQ(dp.hardwareProfile().indexedBy, "Distance");
    EXPECT_EQ(dp.hardwareProfile().maxPrefetches, "4");
}

TEST(Distance, ResetClears)
{
    DistancePrefetcher dp({256, TableAssoc::Direct}, 2);
    miss(dp, 1);
    miss(dp, 2);
    miss(dp, 3);
    dp.reset();
    miss(dp, 50);
    EXPECT_TRUE(miss(dp, 51).targets.empty());
}

// ---------------------------------------------------------- registry

TEST(Factory, BuildsEveryMechanism)
{
    PageTable pt;
    const std::pair<const char *, const char *> cases[] = {
        {"sp", "SP"}, {"asp", "ASP"}, {"mp", "MP"},
        {"rp", "RP"}, {"dp", "DP"}};
    for (const auto &[text, name] : cases) {
        auto pf = MechanismSpec::parse(text).build(pt);
        ASSERT_NE(pf, nullptr) << text;
        EXPECT_EQ(pf->name(), name);
    }
}

TEST(Factory, NoneYieldsNull)
{
    PageTable pt;
    EXPECT_EQ(MechanismSpec::none().build(pt), nullptr);
    EXPECT_EQ(MechanismSpec::parse("none").build(pt), nullptr);
}

TEST(Factory, MechanismNamesRoundTrip)
{
    for (const char *name : {"none", "SP,1", "ASP,256,D", "MP,256,D",
                             "RP", "DP,256,D"}) {
        MechanismSpec spec = MechanismSpec::parse(name);
        EXPECT_EQ(spec.label(), name);
        EXPECT_EQ(MechanismSpec::parse(spec.label()), spec);
    }
    EXPECT_EXIT(parseMechanismOrDie("XYZ"),
                ::testing::ExitedWithCode(1), "unknown mechanism");
}

TEST(Factory, SpecLabels)
{
    EXPECT_EQ(MechanismSpec::parse("dp(rows=128,assoc=2w)").label(),
              "DP,128,2");
    EXPECT_EQ(MechanismSpec::parse("rp").label(), "RP");
    EXPECT_EQ(MechanismSpec::none().label(), "none");
}

} // namespace
} // namespace tlbpf
