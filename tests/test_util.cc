/**
 * @file
 * Unit tests for the utility substrate: logging, RNG, bit helpers,
 * CLI parsing, CSV quoting, the ASCII table printer, and the
 * work-stealing deque underneath the thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/bits.hh"
#include "util/check.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/table_printer.hh"
#include "util/work_deque.hh"

namespace tlbpf
{
namespace
{

TEST(Logging, WarnIncrementsCounter)
{
    auto before = Logger::instance().warnCount();
    tlbpf_warn("test warning ", 42);
    EXPECT_EQ(Logger::instance().warnCount(), before + 1);
}

TEST(Logging, FormatConcatenatesArguments)
{
    EXPECT_EQ(detail::format("a", 1, "-", 2.5), "a1-2.5");
    EXPECT_EQ(detail::format(), "");
}

TEST(Logging, AssertFiresOnFalse)
{
    EXPECT_DEATH({ tlbpf_assert(1 == 2, "math broke"); }, "math broke");
}

TEST(Logging, FatalExitsWithCodeOne)
{
    EXPECT_EXIT({ tlbpf_fatal("bad config"); },
                ::testing::ExitedWithCode(1), "bad config");
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversSmallRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(rng.nextBelow(4));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(13);
    bool hit_lo = false;
    bool hit_hi = false;
    for (int i = 0; i < 500; ++i) {
        std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo = hit_lo || v == -3;
        hit_hi = hit_hi || v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(23);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(29);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

TEST(Zipf, SamplesInRange)
{
    Rng rng(31);
    ZipfSampler zipf(100, 0.9);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(zipf.sample(rng), 100u);
}

TEST(Zipf, LowRanksMorePopular)
{
    Rng rng(37);
    ZipfSampler zipf(1000, 0.9);
    std::uint64_t low = 0;
    std::uint64_t high = 0;
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t r = zipf.sample(rng);
        low += r < 10;
        high += r >= 500;
    }
    EXPECT_GT(low, high);
}

TEST(Bits, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
}

TEST(Bits, ZigZagRoundTrip)
{
    for (std::int64_t v :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
          std::int64_t{2}, std::int64_t{-2}, std::int64_t{1000000},
          std::int64_t{-1000000}, std::int64_t{INT64_MAX / 2},
          std::int64_t{INT64_MIN / 2}})
        EXPECT_EQ(zigZagDecode(zigZagEncode(v)), v);
}

TEST(Bits, ZigZagSmallMagnitudesGetSmallCodes)
{
    EXPECT_EQ(zigZagEncode(0), 0u);
    EXPECT_EQ(zigZagEncode(-1), 1u);
    EXPECT_EQ(zigZagEncode(1), 2u);
    EXPECT_EQ(zigZagEncode(-2), 3u);
    EXPECT_EQ(zigZagEncode(2), 4u);
}

TEST(Cli, ParsesEqualsAndSpaceForms)
{
    const char *argv[] = {"prog", "--refs=100", "--app", "mcf", "pos"};
    CliArgs args(5, argv, {"refs", "app"});
    EXPECT_EQ(args.getInt("refs", 0), 100);
    EXPECT_EQ(args.get("app"), "mcf");
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "pos");
}

TEST(Cli, DefaultsWhenAbsent)
{
    const char *argv[] = {"prog"};
    CliArgs args(1, argv, {"refs"});
    EXPECT_FALSE(args.has("refs"));
    EXPECT_EQ(args.getInt("refs", 42), 42);
    EXPECT_DOUBLE_EQ(args.getDouble("refs", 2.5), 2.5);
    EXPECT_EQ(args.get("refs", "x"), "x");
}

TEST(Cli, UnknownOptionIsFatal)
{
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_EXIT({ CliArgs args(2, argv, {"refs"}); },
                ::testing::ExitedWithCode(1), "unknown option");
}

TEST(Cli, BadIntegerIsFatal)
{
    const char *argv[] = {"prog", "--refs=abc"};
    EXPECT_EXIT(
        {
            CliArgs args(2, argv, {"refs"});
            args.getInt("refs", 0);
        },
        ::testing::ExitedWithCode(1), "expects an integer");
}

TEST(Cli, ParseIntList)
{
    auto v = parseIntList("32,64,128");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], 32);
    EXPECT_EQ(v[2], 128);
    EXPECT_TRUE(parseIntList("").empty());
}

TEST(Cli, ParseStringList)
{
    auto v = parseStringList("a,b,,c");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[1], "b");
}

TEST(Csv, QuotesOnlyWhenNeeded)
{
    EXPECT_EQ(CsvWriter::quote("plain"), "plain");
    EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    std::ostringstream oss;
    table.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(TablePrinter, NumFormatting)
{
    EXPECT_EQ(TablePrinter::num(0.1234, 2), "0.12");
    EXPECT_EQ(TablePrinter::num(static_cast<std::int64_t>(-7)), "-7");
}

TEST(TablePrinter, ArityMismatchPanics)
{
    TablePrinter table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "row arity");
}

TEST(WorkDeque, OwnerPopsLifoThievesStealFifo)
{
    WorkDeque dq;
    dq.reset(6);
    for (std::size_t i = 0; i < 6; ++i)
        dq.push(i);

    std::size_t out = 0;
    // Owner works newest-first...
    ASSERT_TRUE(dq.pop(out));
    EXPECT_EQ(out, 5u);
    // ...while thieves drain oldest-first from the other end.
    ASSERT_TRUE(dq.steal(out));
    EXPECT_EQ(out, 0u);
    ASSERT_TRUE(dq.steal(out));
    EXPECT_EQ(out, 1u);
    ASSERT_TRUE(dq.pop(out));
    EXPECT_EQ(out, 4u);
    ASSERT_TRUE(dq.pop(out));
    EXPECT_EQ(out, 3u);
    ASSERT_TRUE(dq.steal(out));
    EXPECT_EQ(out, 2u);
    EXPECT_TRUE(dq.empty());
    EXPECT_FALSE(dq.pop(out));
    EXPECT_FALSE(dq.steal(out));
}

TEST(WorkDeque, ResetReusesAndClears)
{
    WorkDeque dq;
    dq.reset(3);
    dq.push(7);
    dq.push(8);
    dq.reset(3); // must discard the leftovers
    EXPECT_TRUE(dq.empty());
    std::size_t out = 0;
    EXPECT_FALSE(dq.steal(out));
    dq.push(9);
    ASSERT_TRUE(dq.pop(out));
    EXPECT_EQ(out, 9u);
}

/**
 * The race the scheduler lives on: one owner popping while several
 * thieves steal concurrently.  Every seeded index must be consumed
 * exactly once — no loss, no duplication — including the
 * last-element owner-vs-thief CAS race, which thousands of elements
 * across repeated rounds exercise reliably.
 */
TEST(WorkDeque, ConcurrentStealsConsumeEveryIndexExactlyOnce)
{
    constexpr std::size_t kElems = 20000;
    constexpr int kThieves = 3;
    WorkDeque dq;
    for (int round = 0; round < 3; ++round) {
        dq.reset(kElems);
        for (std::size_t i = 0; i < kElems; ++i)
            dq.push(i);

        std::vector<std::atomic<std::uint32_t>> hits(kElems);
        for (auto &h : hits)
            h = 0;
        std::atomic<std::size_t> consumed{0};

        std::vector<std::thread> thieves;
        for (int t = 0; t < kThieves; ++t) {
            thieves.emplace_back([&] {
                std::size_t out = 0;
                while (consumed.load() < kElems) {
                    if (dq.steal(out)) {
                        ++hits[out];
                        ++consumed;
                    } else {
                        std::this_thread::yield();
                    }
                }
            });
        }
        std::size_t out = 0;
        while (dq.pop(out)) {
            ++hits[out];
            ++consumed;
        }
        for (std::thread &t : thieves)
            t.join();

        EXPECT_EQ(consumed.load(), kElems) << "round " << round;
        for (std::size_t i = 0; i < kElems; ++i)
            ASSERT_EQ(hits[i].load(), 1u)
                << "index " << i << " in round " << round;
        EXPECT_TRUE(dq.empty());
    }
}

// ------------------------------------- TLBPF_DCHECK invariant layer

TEST(Check, PassingChecksAreSilent)
{
    ScopedCheckFailThrow guard;
    TLBPF_DCHECK(1 + 1 == 2);
    TLBPF_DCHECK_MSG(true, "never formatted");
}

/**
 * The compiled-out form must not evaluate its condition (so a DCHECK
 * can never perturb Release behavior); the compiled-in form must.
 */
TEST(Check, ConditionEvaluationMatchesBuildFlavor)
{
    int evaluations = 0;
    TLBPF_DCHECK((++evaluations, true));
    EXPECT_EQ(evaluations, dchecksEnabled() ? 1 : 0);
}

TEST(Check, FailureCarriesExpressionMessageAndLocation)
{
    if (!dchecksEnabled())
        GTEST_SKIP() << "TLBPF_DCHECK is compiled out of this build";
    ScopedCheckFailThrow guard;
    try {
        TLBPF_DCHECK_MSG(2 + 2 == 5, "math is ", "broken");
        FAIL() << "the check never fired";
    } catch (const CheckFailure &failure) {
        std::string what = failure.what();
        EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
        EXPECT_NE(what.find("math is broken"), std::string::npos)
            << what;
        EXPECT_NE(what.find("test_util.cc"), std::string::npos) << what;
    }
}

TEST(Check, ScopedThrowRestoresThePreviousHandlerOnExit)
{
    if (!dchecksEnabled())
        GTEST_SKIP() << "TLBPF_DCHECK is compiled out of this build";
    {
        ScopedCheckFailThrow outer;
        {
            ScopedCheckFailThrow inner;
            EXPECT_THROW(TLBPF_DCHECK(false), CheckFailure);
        }
        // The outer scope's throwing handler is back in place.
        EXPECT_THROW(TLBPF_DCHECK(false), CheckFailure);
    }
}

/**
 * Seeding-time contract violations the scheduler must never commit:
 * pushing into a deque that was never sized, and pushing more than
 * the reset() capacity (which would silently overwrite an unclaimed
 * index and lose a job).
 */
TEST(WorkDeque, PushBeforeResetTripsTheInvariant)
{
    if (!dchecksEnabled())
        GTEST_SKIP() << "TLBPF_DCHECK is compiled out of this build";
    ScopedCheckFailThrow guard;
    WorkDeque dq;
    EXPECT_THROW(dq.push(0), CheckFailure);
}

TEST(WorkDeque, PushBeyondResetCapacityTripsTheInvariant)
{
    if (!dchecksEnabled())
        GTEST_SKIP() << "TLBPF_DCHECK is compiled out of this build";
    ScopedCheckFailThrow guard;
    WorkDeque dq;
    dq.reset(4); // ring rounds up to exactly 4 slots
    for (std::size_t i = 0; i < 4; ++i)
        dq.push(i);
    EXPECT_THROW(dq.push(4), CheckFailure);
    // Draining frees the slots again; refilling is legal.
    std::size_t out = 0;
    for (std::size_t i = 0; i < 4; ++i)
        ASSERT_TRUE(dq.pop(out));
    dq.reset(4);
    dq.push(0);
}

/**
 * The one-element owner-vs-thief race, re-run many times with the
 * checking handler installed: exactly one side may win, and the
 * pop-side invariant (a lost CAS means top passed the claim) must
 * hold in every interleaving.
 */
TEST(WorkDeque, OneElementRaceHasExactlyOneWinnerUnderChecking)
{
    ScopedCheckFailThrow guard;
    WorkDeque dq;
    std::atomic<int> check_failures{0};
    for (int round = 0; round < 2000; ++round) {
        dq.reset(1);
        dq.push(static_cast<std::size_t>(round));

        std::atomic<bool> go{false};
        bool thief_won = false;
        std::thread thief([&] {
            std::size_t out = 0;
            while (!go.load())
                std::this_thread::yield();
            try {
                thief_won = dq.steal(out);
            } catch (const CheckFailure &) {
                check_failures.fetch_add(1);
            }
        });
        std::size_t out = 0;
        bool owner_won = false;
        go.store(true);
        try {
            owner_won = dq.pop(out);
        } catch (const CheckFailure &) {
            check_failures.fetch_add(1);
        }
        thief.join();

        ASSERT_EQ(check_failures.load(), 0) << "round " << round;
        ASSERT_NE(owner_won, thief_won) << "round " << round;
        EXPECT_TRUE(dq.empty());
    }
}

} // namespace
} // namespace tlbpf
