/**
 * @file
 * Tests for the 56-application model registry: completeness, suite
 * membership, determinism, and the miss-rate calibration bands the
 * paper reports for the Figure 9 applications.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/experiment.hh"
#include "trace/ref_stream.hh"
#include "workload/app_registry.hh"

namespace tlbpf
{
namespace
{

TEST(Registry, Has56Applications)
{
    EXPECT_EQ(appRegistry().size(), 56u);
}

TEST(Registry, SuiteSizesMatchPaper)
{
    EXPECT_EQ(appsInSuite(kSuiteSpec).size(), 26u);
    EXPECT_EQ(appsInSuite(kSuiteMedia).size(), 20u);
    EXPECT_EQ(appsInSuite(kSuiteEtch).size(), 5u);
    EXPECT_EQ(appsInSuite(kSuitePtr).size(), 5u);
}

TEST(Registry, NamesAreUnique)
{
    std::set<std::string> names;
    for (const AppModel &app : appRegistry())
        names.insert(app.name);
    EXPECT_EQ(names.size(), 56u);
}

TEST(Registry, PaperFigureOrderSpotChecks)
{
    const auto &apps = appRegistry();
    EXPECT_EQ(apps[0].name, "gzip");
    EXPECT_EQ(apps[3].name, "mcf");
    EXPECT_EQ(apps[25].name, "apsi");
    EXPECT_EQ(apps[26].name, "adpcm-enc");
    EXPECT_EQ(apps[46].name, "bcc");
    EXPECT_EQ(apps[55].name, "yacr2");
}

TEST(Registry, FindAppByName)
{
    EXPECT_EQ(findApp("mcf").suite, kSuiteSpec);
    EXPECT_EQ(findApp("adpcm-enc").suite, kSuiteMedia);
    EXPECT_EQ(findApp("winword").suite, kSuiteEtch);
    EXPECT_EQ(findApp("yacr2").suite, kSuitePtr);
}

TEST(Registry, UnknownAppIsFatal)
{
    EXPECT_EXIT(findApp("not-a-benchmark"),
                ::testing::ExitedWithCode(1), "unknown application");
}

TEST(Registry, EveryModelHasNotesAndPacing)
{
    for (const AppModel &app : appRegistry()) {
        EXPECT_FALSE(app.notes.empty()) << app.name;
        EXPECT_GE(app.instrPerRef, 1.0) << app.name;
        EXPECT_TRUE(app.build != nullptr) << app.name;
    }
}

TEST(Registry, HighMissRateListMatchesPaper)
{
    const auto &apps = highMissRateApps();
    EXPECT_EQ(apps.size(), 8u);
    for (const char *name : {"vpr", "mcf", "twolf", "galgel", "ammp",
                             "lucas", "apsi", "adpcm-enc"})
        EXPECT_NE(std::find(apps.begin(), apps.end(), name),
                  apps.end());
}

TEST(Registry, Table3ListMatchesPaper)
{
    const auto &apps = table3Apps();
    EXPECT_EQ(apps.size(), 5u);
    EXPECT_EQ(apps[0], "ammp");
    EXPECT_EQ(apps[1], "mcf");
}

TEST(BuildApp, ProducesExactlyRequestedRefs)
{
    for (const char *name : {"gzip", "mcf", "gsm-enc", "bc"}) {
        auto stream = buildApp(name, 5000);
        EXPECT_EQ(collect(*stream).size(), 5000u) << name;
    }
}

TEST(BuildApp, DeterministicAcrossBuilds)
{
    auto a = collect(*buildApp("swim", 3000));
    auto b = collect(*buildApp("swim", 3000));
    EXPECT_EQ(a, b);
}

TEST(BuildApp, InstructionCountsMonotonic)
{
    auto stream = buildApp("vpr", 2000);
    MemRef r;
    std::uint64_t prev = 0;
    bool first = true;
    while (stream->next(r)) {
        if (!first) {
            EXPECT_GE(r.icount, prev);
        }
        prev = r.icount;
        first = false;
    }
    // vpr paces 3 instructions per reference.
    EXPECT_NEAR(static_cast<double>(prev), 3.0 * 2000, 16.0);
}

TEST(BuildApp, EveryModelBuildsAndRuns)
{
    // Smoke: all 56 models produce references without tripping any
    // internal assertion.
    for (const AppModel &app : appRegistry()) {
        auto stream = buildApp(app, 2000);
        EXPECT_EQ(collect(*stream).size(), 2000u) << app.name;
    }
}

/** Miss-rate calibration bands (paper Section 3.2, 128-entry FA TLB). */
struct MissRateBand
{
    const char *app;
    double lo;
    double hi;
};

class MissRateCalibration : public ::testing::TestWithParam<MissRateBand>
{
};

TEST_P(MissRateCalibration, WithinBand)
{
    const MissRateBand &band = GetParam();
    MechanismSpec none = MechanismSpec::none();
    SimResult r = runFunctional(band.app, none, 400000);
    EXPECT_GE(r.missRate(), band.lo) << band.app;
    EXPECT_LE(r.missRate(), band.hi) << band.app;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, MissRateCalibration,
    ::testing::Values(
        // paper: galgel 0.228 — the highest of all 56
        MissRateBand{"galgel", 0.15, 0.30},
        // paper: adpcm-enc 0.192
        MissRateBand{"adpcm-enc", 0.12, 0.25},
        // paper: mcf 0.090
        MissRateBand{"mcf", 0.06, 0.12},
        // paper: apsi 0.018
        MissRateBand{"apsi", 0.010, 0.030},
        // paper: vpr 0.016
        MissRateBand{"vpr", 0.008, 0.028},
        // paper: lucas 0.016
        MissRateBand{"lucas", 0.008, 0.028},
        // paper: twolf 0.013
        MissRateBand{"twolf", 0.006, 0.024},
        // paper: ammp 0.0113
        MissRateBand{"ammp", 0.005, 0.022},
        // eon: too few misses to matter
        MissRateBand{"eon", 0.0, 0.002},
        // g721: TLB-resident
        MissRateBand{"g721-enc", 0.0, 0.002}),
    [](const ::testing::TestParamInfo<MissRateBand> &info) {
        std::string name = info.param.app;
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

} // namespace
} // namespace tlbpf
