/**
 * @file
 * Property-based tests (parameterised sweeps) over the simulator's
 * core invariants:
 *
 *  P1. Prefetching never changes the TLB miss sequence (the buffer is
 *      outside the TLB) — for every scheme, geometry and workload.
 *  P2. Counter sanity: pbHits <= misses <= refs; accuracy in [0,1].
 *  P3. The TLB behaves exactly like a reference LRU model.
 *  P4. Determinism: identical runs produce identical counters.
 *  P5. Larger prefetch buffers never hurt... is NOT an invariant (an
 *      aggressive scheme can pollute); what must hold is that the
 *      buffer never exceeds capacity — checked in P2's sweep.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>

#include "core/distance_predictor.hh"
#include "sim/experiment.hh"
#include "sim/functional_sim.hh"
#include "trace/ref_stream.hh"
#include "util/random.hh"

namespace tlbpf
{
namespace
{

/** Mixed synthetic stream exercising strides, reuse and randomness. */
std::vector<MemRef>
mixedStream(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<MemRef> refs;
    refs.reserve(n);
    Vpn page = 1000;
    for (std::size_t i = 0; i < n; ++i) {
        switch (rng.nextBelow(4)) {
          case 0:
            page += 1; // sequential
            break;
          case 1:
            page = 1000 + rng.nextBelow(40); // hot set
            break;
          case 2:
            page += 17; // stride
            break;
          default:
            page = 5000 + rng.nextBelow(5000); // cold randomness
            break;
        }
        refs.push_back(MemRef{page * kDefaultPageBytes,
                              0x4000 + (rng.nextBelow(8) * 4), false,
                              i * 2});
    }
    return refs;
}

struct SweepParam
{
    const char *mech;
    std::uint32_t tlbEntries;
    std::uint32_t tlbAssoc;
    std::uint32_t pbEntries;
};

class SchemeSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(SchemeSweep, MissSequenceInvariantAndCounterSanity)
{
    const SweepParam &param = GetParam();
    SimConfig config;
    config.tlb = TlbConfig{param.tlbEntries, param.tlbAssoc};
    config.pbEntries = param.pbEntries;

    MechanismSpec none = MechanismSpec::none();
    MechanismSpec spec = MechanismSpec::parse(param.mech);

    auto refs = mixedStream(param.tlbEntries * 7919 + param.pbEntries,
                            20000);
    VectorStream s1(refs);
    VectorStream s2(refs);

    SimResult base = simulate(config, none, s1);
    SimResult with = simulate(config, spec, s2);

    // P1: prefetching cannot change what the TLB misses on.
    EXPECT_EQ(with.misses, base.misses);
    EXPECT_EQ(with.refs, base.refs);

    // P2: counter sanity.
    EXPECT_LE(with.pbHits, with.misses);
    EXPECT_LE(with.misses, with.refs);
    EXPECT_EQ(with.pbHits + with.demandFetches, with.misses);
    EXPECT_GE(with.accuracy(), 0.0);
    EXPECT_LE(with.accuracy(), 1.0);
    EXPECT_EQ(with.footprintPages, base.footprintPages);

    // P4: determinism.
    VectorStream s3(refs);
    SimResult again = simulate(config, spec, s3);
    EXPECT_EQ(again.pbHits, with.pbHits);
    EXPECT_EQ(again.prefetchesIssued, with.prefetchesIssued);
    EXPECT_EQ(again.stateOps, with.stateOps);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllGeometries, SchemeSweep,
    ::testing::Values(
        SweepParam{"sp", 64, 0, 16},
        SweepParam{"sp", 128, 4, 32},
        SweepParam{"asp(rows=64)", 64, 2, 16},
        SweepParam{"asp(rows=64)", 128, 0, 16},
        SweepParam{"asp(rows=64)", 256, 4, 64},
        SweepParam{"mp(rows=64)", 64, 0, 16},
        SweepParam{"mp(rows=64)", 128, 2, 32},
        SweepParam{"mp(rows=64)", 256, 0, 16},
        SweepParam{"rp", 64, 0, 16},
        SweepParam{"rp", 128, 0, 64},
        SweepParam{"rp", 256, 2, 16},
        SweepParam{"dp(rows=64)", 64, 0, 16},
        SweepParam{"dp(rows=64)", 128, 2, 16},
        SweepParam{"dp(rows=64)", 256, 4, 32}),
    [](const ::testing::TestParamInfo<SweepParam> &info) {
        const SweepParam &p = info.param;
        return MechanismSpec::parse(p.mech).shortName() + "_t" +
               std::to_string(p.tlbEntries) + "w" +
               std::to_string(p.tlbAssoc) + "b" +
               std::to_string(p.pbEntries);
    });

/** P3: cross-check the TLB against a reference true-LRU model. */
class TlbVsReference
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(TlbVsReference, MatchesReferenceLru)
{
    auto [entries, assoc] = GetParam();
    Tlb tlb({entries, assoc});
    std::uint32_t ways = assoc == 0 ? entries : assoc;
    std::uint32_t sets = entries / ways;

    // Reference model: per-set list, front = MRU.
    std::map<std::uint64_t, std::list<Vpn>> model;

    Rng rng(entries * 31 + assoc);
    for (int i = 0; i < 50000; ++i) {
        Vpn vpn = rng.nextBelow(entries * 3);
        std::uint64_t set = vpn % sets;
        auto &lru = model[set];
        auto it = std::find(lru.begin(), lru.end(), vpn);

        bool model_hit = it != lru.end();
        bool tlb_hit = tlb.access(vpn);
        ASSERT_EQ(tlb_hit, model_hit) << "ref " << i;

        if (model_hit) {
            lru.erase(it);
            lru.push_front(vpn);
        } else {
            auto evicted = tlb.insert(vpn);
            if (lru.size() >= ways) {
                ASSERT_TRUE(evicted.has_value());
                ASSERT_EQ(*evicted, lru.back());
                lru.pop_back();
            } else {
                ASSERT_EQ(evicted, std::nullopt);
            }
            lru.push_front(vpn);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbVsReference,
    ::testing::Values(std::make_pair(4u, 0u), std::make_pair(8u, 2u),
                      std::make_pair(16u, 4u), std::make_pair(64u, 0u),
                      std::make_pair(128u, 2u),
                      std::make_pair(128u, 0u)),
    [](const auto &info) {
        std::string name = "e";
        name += std::to_string(info.param.first);
        name += "w";
        name += std::to_string(info.param.second);
        return name;
    });

/** DP parameter sweep: predictions bounded and deterministic. */
class DpParams
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t,
                                                 TableAssoc>>
{
};

TEST_P(DpParams, PredictionsBoundedBySlots)
{
    auto [rows, slots, assoc] = GetParam();
    DistancePredictor dp(
        DistancePredictorConfig{TableConfig{rows, assoc}, slots});
    Rng rng(rows * 131 + slots);
    std::vector<std::uint64_t> predictions;
    for (int i = 0; i < 5000; ++i) {
        predictions.clear();
        dp.observe(1000000 + rng.nextBelow(4000), predictions);
        EXPECT_LE(predictions.size(), slots);
    }
}

TEST_P(DpParams, ResetThenReplayIsIdentical)
{
    auto [rows, slots, assoc] = GetParam();
    DistancePredictor dp(
        DistancePredictorConfig{TableConfig{rows, assoc}, slots});
    auto run = [&dp] {
        std::vector<std::size_t> sizes;
        std::vector<std::uint64_t> p;
        std::uint64_t unit = 5000;
        for (int i = 0; i < 500; ++i) {
            unit += (i % 7) + 1;
            p.clear();
            dp.observe(unit, p);
            sizes.push_back(p.size());
        }
        return sizes;
    };
    auto first = run();
    dp.reset();
    auto second = run();
    EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DpParams,
    ::testing::Combine(::testing::Values(32u, 256u, 1024u),
                       ::testing::Values(1u, 2u, 4u, 6u),
                       ::testing::Values(TableAssoc::Direct,
                                         TableAssoc::Full)),
    [](const auto &info) {
        std::string name = "r";
        name += std::to_string(std::get<0>(info.param));
        name += "s";
        name += std::to_string(std::get<1>(info.param));
        name += assocLabel(std::get<2>(info.param));
        return name;
    });

/** Prefetch-buffer sweep: accuracy is monotone-ish in b for SP on a
 *  sequential stream, and capacity is always respected. */
class BufferSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BufferSweep, SequentialSpAccuracyHighForAnyCapacity)
{
    SimConfig config;
    config.tlb = TlbConfig{16, 0};
    config.pbEntries = GetParam();
    MechanismSpec sp = MechanismSpec::parse("sp");
    std::vector<MemRef> refs;
    for (Vpn p = 0; p < 2000; ++p)
        refs.push_back(MemRef{p * kDefaultPageBytes, 0, false, p});
    VectorStream stream(std::move(refs));
    SimResult r = simulate(config, sp, stream);
    EXPECT_GT(r.accuracy(), 0.99);
}

INSTANTIATE_TEST_SUITE_P(Capacities, BufferSweep,
                         ::testing::Values(1u, 2u, 16u, 32u, 64u));

/** Timing model: cycles are monotone in the miss penalty. */
class PenaltySweep : public ::testing::TestWithParam<Tick>
{
};

TEST_P(PenaltySweep, CyclesGrowWithPenalty)
{
    TimingConfig cheap;
    cheap.missPenalty = GetParam();
    TimingConfig costly;
    costly.missPenalty = GetParam() * 2;
    auto refs = mixedStream(99, 20000);
    VectorStream s1(refs);
    VectorStream s2(refs);
    MechanismSpec none = MechanismSpec::none();
    SimConfig config;
    TimingResult a = simulateTimed(config, cheap, none, s1);
    TimingResult b = simulateTimed(config, costly, none, s2);
    EXPECT_LT(a.cycles, b.cycles);
    EXPECT_EQ(a.functional.misses, b.functional.misses);
}

INSTANTIATE_TEST_SUITE_P(Penalties, PenaltySweep,
                         ::testing::Values(30u, 50u, 100u, 200u));

} // namespace
} // namespace tlbpf
