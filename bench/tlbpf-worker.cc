/**
 * @file
 * tlbpf-worker: a dispatch-fleet worker process.  Connects to a
 * tlbpf-server, registers over the worker verbs, and pulls sweep
 * cells on lease until stopped — the horizontal-scaling half of the
 * sweep service (see src/dispatch/).
 *
 *   tlbpf-worker [--host 127.0.0.1] [--port 7733] [--threads N]
 *                [--cache-dir DIR] [--idle-poll-ms N]
 *                [--reconnect-ms N] [--max-reconnects N]
 *
 * --cache-dir should name the same directory the server persists to:
 * the worker then warms chained shard cells from checkpoints the
 * server (or other workers) already deposited, and deposits the
 * boundaries it crosses.  The worker reconnects with backoff when
 * the server goes away (--max-reconnects 0 = keep trying forever);
 * SIGINT/SIGTERM exit cleanly, printing the lifetime counters.
 */

#include <arpa/inet.h>
#include <csignal>
#include <cstdio>

#include "bench_common.hh"
#include "dispatch/worker.hh"
#include "service/store_util.hh"

namespace
{

tlbpf::DispatchWorker *g_worker = nullptr;

void
onStopSignal(int)
{
    if (g_worker)
        g_worker->requestStop();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tlbpf;

    CliArgs args(argc, argv,
                 {"host", "port", "threads", "cache-dir",
                  "idle-poll-ms", "reconnect-ms", "max-reconnects"});
    DispatchWorkerOptions options;
    options.host = args.get("host", "127.0.0.1");
    sockaddr_in probe{};
    if (::inet_pton(AF_INET, options.host.c_str(), &probe.sin_addr) !=
        1)
        tlbpf_fatal("--host must be a dotted-quad IPv4 address, "
                    "got '",
                    options.host, "'");
    options.port = static_cast<std::uint16_t>(bench::boundedCountFlag(
        args, "port", 1, 65535,
        static_cast<std::int64_t>(kDefaultServicePort)));
    // --threads 0 is the engine's "use hardware concurrency".
    options.threads = static_cast<unsigned>(
        bench::boundedCountFlag(args, "threads", 0, 4096, 1));
    options.idlePollMs = static_cast<std::uint64_t>(
        bench::boundedCountFlag(args, "idle-poll-ms", 1, 60000, 20));
    options.reconnectMs = static_cast<std::uint64_t>(
        bench::boundedCountFlag(args, "reconnect-ms", 1, 600000, 500));
    options.maxReconnectAttempts = static_cast<std::uint64_t>(
        bench::boundedCountFlag(args, "max-reconnects", 0,
                                std::int64_t(1) << 40, 0));
    options.cacheDir = args.get("cache-dir");
    if (!options.cacheDir.empty()) {
        try {
            ensureDirectory(options.cacheDir);
        } catch (const std::invalid_argument &e) {
            tlbpf_fatal("--cache-dir: ", e.what());
        }
    }

    try {
        DispatchWorker worker(options);
        g_worker = &worker;
        // No SA_RESTART: requestStop() also shuts the live socket
        // down, so a blocked read unwinds promptly either way.
        struct sigaction action
        {
        };
        action.sa_handler = onStopSignal;
        sigemptyset(&action.sa_mask);
        sigaction(SIGINT, &action, nullptr);
        sigaction(SIGTERM, &action, nullptr);

        std::fprintf(
            stderr,
            "tlbpf-worker serving %s:%u (threads=%u%s%s)\n",
            options.host.c_str(), options.port,
            options.threads ? options.threads
                            : ThreadPool::defaultThreadCount(),
            options.cacheDir.empty() ? "" : ", cache-dir=",
            options.cacheDir.c_str());
        worker.run();

        std::fprintf(
            stderr,
            "tlbpf-worker exiting: %llu cells completed, "
            "%llu discarded, %llu leases, %llu sessions\n",
            static_cast<unsigned long long>(worker.cellsCompleted()),
            static_cast<unsigned long long>(worker.cellsDiscarded()),
            static_cast<unsigned long long>(worker.leasesCompleted()),
            static_cast<unsigned long long>(worker.sessions()));
        g_worker = nullptr;
    } catch (const std::exception &e) {
        tlbpf_fatal(e.what());
    }
    return 0;
}
