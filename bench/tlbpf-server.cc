/**
 * @file
 * tlbpf-server: the sweep service daemon.  Accepts framed sweep
 * requests on a loopback TCP port, runs them on a shared SweepEngine
 * behind a persistent result cache and checkpoint store, and streams
 * per-cell results back as they complete.  See src/service/server.hh
 * for the protocol and failure policy.
 *
 *   tlbpf-server [--host 127.0.0.1] [--port 7733] [--threads N]
 *                [--cache-dir DIR] [--cache-capacity N]
 *                [--max-clients N] [--lease-timeout-ms N]
 *                [--store-max-bytes N] [--store-ttl SECONDS]
 *
 * tlbpf-worker processes that connect to the same port join the
 * dispatch fleet and pull sweep cells on lease (see src/dispatch/).
 * --store-max-bytes/--store-ttl bound the on-disk cell + checkpoint
 * stores under --cache-dir (LRU by mtime, shared budget).
 *
 * SIGINT/SIGTERM stop the accept loop after the in-flight request
 * drains; the exit line reports the lifetime counters.
 */

#include <arpa/inet.h>
#include <csignal>
#include <cstdio>

#include "bench_common.hh"
#include "service/server.hh"
#include "service/store_util.hh"

namespace
{

tlbpf::SweepServer *g_server = nullptr;

void
onStopSignal(int)
{
    if (g_server)
        g_server->requestStop();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tlbpf;

    CliArgs args(argc, argv,
                 {"host", "port", "threads", "cache-dir",
                  "cache-capacity", "max-clients", "lease-timeout-ms",
                  "store-max-bytes", "store-ttl"});
    ServerOptions options;
    options.port = static_cast<std::uint16_t>(bench::boundedCountFlag(
        args, "port", 1, 65535,
        static_cast<std::int64_t>(kDefaultServicePort)));
    options.host = args.get("host", "127.0.0.1");
    sockaddr_in probe{};
    if (::inet_pton(AF_INET, options.host.c_str(), &probe.sin_addr) !=
        1)
        tlbpf_fatal("--host must be a dotted-quad IPv4 address, "
                    "got '",
                    options.host, "'");
    // --threads 0 is the engine's "use hardware concurrency".
    options.threads = static_cast<unsigned>(
        bench::boundedCountFlag(args, "threads", 0, 4096, 0));
    options.cacheCapacity = static_cast<std::size_t>(
        bench::boundedCountFlag(args, "cache-capacity", 1,
                                std::int64_t(1) << 20, 4096));
    options.maxClients = static_cast<std::size_t>(
        bench::boundedCountFlag(args, "max-clients", 1, 4096, 64));
    options.leaseTimeoutMs = static_cast<std::uint64_t>(
        bench::boundedCountFlag(args, "lease-timeout-ms", 1,
                                std::int64_t(1) << 30, 2000));
    // 0 disables the respective bound (unbounded store / no TTL).
    options.storeMaxBytes = static_cast<std::uint64_t>(
        bench::boundedCountFlag(args, "store-max-bytes", 0,
                                std::int64_t(1) << 50, 0));
    options.storeTtlSeconds = static_cast<std::uint64_t>(
        bench::boundedCountFlag(args, "store-ttl", 0,
                                std::int64_t(1) << 40, 0));
    options.cacheDir = args.get("cache-dir");
    if (!options.cacheDir.empty()) {
        try {
            ensureDirectory(options.cacheDir);
        } catch (const std::invalid_argument &e) {
            tlbpf_fatal("--cache-dir: ", e.what());
        }
    }

    try {
        SweepServer server(options);
        g_server = &server;
        // No SA_RESTART: a blocking accept() must return EINTR so
        // serve() re-checks the stop flag.
        struct sigaction action
        {
        };
        action.sa_handler = onStopSignal;
        sigemptyset(&action.sa_mask);
        sigaction(SIGINT, &action, nullptr);
        sigaction(SIGTERM, &action, nullptr);

        std::fprintf(
            stderr,
            "tlbpf-server listening on %s:%u (threads=%u, "
            "cache-capacity=%zu%s%s)\n",
            options.host.c_str(), server.port(),
            options.threads ? options.threads
                            : ThreadPool::defaultThreadCount(),
            options.cacheCapacity,
            options.cacheDir.empty() ? "" : ", cache-dir=",
            options.cacheDir.c_str());
        server.serve();

        StatsReply stats = server.stats();
        std::fprintf(
            stderr,
            "tlbpf-server exiting: %llu requests, %llu cells "
            "(%llu cache hits, %llu misses), %llu checkpoints "
            "stored, %llu loaded, %llu cells dispatched "
            "(%llu lease reclaims), %llu store files evicted\n",
            static_cast<unsigned long long>(stats.requests),
            static_cast<unsigned long long>(stats.cells),
            static_cast<unsigned long long>(stats.cacheHits),
            static_cast<unsigned long long>(stats.cacheMisses),
            static_cast<unsigned long long>(stats.checkpointsStored),
            static_cast<unsigned long long>(stats.checkpointsLoaded),
            static_cast<unsigned long long>(stats.cellsDispatched),
            static_cast<unsigned long long>(stats.leaseReclaims),
            static_cast<unsigned long long>(stats.storeEvictedFiles));
        g_server = nullptr;
    } catch (const std::exception &e) {
        tlbpf_fatal(e.what());
    }
    return 0;
}
