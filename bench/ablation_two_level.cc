/**
 * @file
 * Extension bench: prefetching in a two-level TLB hierarchy.
 *
 * The paper evaluates a single-level TLB; real d-TLBs are two-level
 * (a point its Section 1 raises via [28, 7]).  This bench places the
 * prefetch logic after the L2 (it observes only L2 misses, an even
 * sparser stream than the paper's) and asks whether DP still predicts:
 * distances between L2 misses remain patterned, so it should.
 *
 * Geometry: 32-entry FA L1 + 128/256-entry FA L2, b = 16.
 *
 * Usage: ablation_two_level [--refs N]
 */

#include <cstdio>

#include "bench_common.hh"
#include "tlb/prefetch_buffer.hh"
#include "tlb/two_level.hh"

namespace
{

using namespace tlbpf;
using namespace tlbpf::bench;

struct TwoLevelResult
{
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t pbHits = 0;

    double
    accuracy() const
    {
        return l2Misses ? static_cast<double>(pbHits) /
                              static_cast<double>(l2Misses)
                        : 0.0;
    }
};

TwoLevelResult
run(const std::string &app, Scheme scheme, std::uint32_t l2_entries,
    std::uint64_t refs)
{
    TwoLevelTlb tlb({32, 0}, {l2_entries, 0});
    PrefetchBuffer buffer(16);
    PageTable pt;
    PrefetcherSpec spec;
    spec.scheme = scheme;
    spec.table = TableConfig{256, TableAssoc::Direct};
    spec.slots = 2;
    auto prefetcher = makePrefetcher(spec, pt);

    TwoLevelResult result;
    PrefetchDecision decision;
    auto stream = buildApp(app, refs);
    MemRef ref;
    while (stream->next(ref)) {
        Vpn vpn = ref.vpn();
        TlbLevelHit hit = tlb.access(vpn);
        if (hit == TlbLevelHit::L1)
            continue;
        ++result.l1Misses;
        if (hit == TlbLevelHit::L2)
            continue;
        ++result.l2Misses;
        pt.lookup(vpn);

        Tick ready = 0;
        bool pb_hit = buffer.hitAndPromote(vpn, ready);
        result.pbHits += pb_hit;
        std::optional<Vpn> evicted = tlb.insert(vpn);

        if (!prefetcher)
            continue;
        decision.clear();
        prefetcher->onMiss(
            TlbMiss{vpn, ref.pc, pb_hit, evicted.value_or(kNoPage)},
            decision);
        for (Vpn target : decision.targets) {
            if (target == vpn || tlb.contains(target) ||
                buffer.contains(target))
                continue;
            buffer.insert(target, 0);
        }
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchOptions(argc, argv);

    std::printf("=== Extension: two-level TLB (32-entry L1 + L2), "
                "prefetcher after the L2 (refs/app = %llu) ===\n",
                static_cast<unsigned long long>(options.refs));

    TablePrinter out({"app", "L2=128 DP", "L2=128 RP", "L2=256 DP",
                      "L2=256 RP", "L2-miss rate (128)"});
    out.caption("prediction accuracy on the L2 miss stream");
    for (const std::string &app : highMissRateApps()) {
        TwoLevelResult dp128 = run(app, Scheme::DP, 128, options.refs);
        TwoLevelResult rp128 = run(app, Scheme::RP, 128, options.refs);
        TwoLevelResult dp256 = run(app, Scheme::DP, 256, options.refs);
        TwoLevelResult rp256 = run(app, Scheme::RP, 256, options.refs);
        out.addRow({app, TablePrinter::num(dp128.accuracy(), 3),
                    TablePrinter::num(rp128.accuracy(), 3),
                    TablePrinter::num(dp256.accuracy(), 3),
                    TablePrinter::num(rp256.accuracy(), 3),
                    TablePrinter::num(
                        static_cast<double>(dp128.l2Misses) /
                            static_cast<double>(options.refs),
                        4)});
        std::fflush(stdout);
    }
    out.print();
    return 0;
}
