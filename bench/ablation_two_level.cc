/**
 * @file
 * Extension bench: prefetching in a two-level TLB hierarchy.
 *
 * The paper evaluates a single-level TLB; real d-TLBs are two-level
 * (a point its Section 1 raises via [28, 7]).  This bench places the
 * prefetch logic after the L2 (it observes only L2 misses, an even
 * sparser stream than the paper's) and asks whether DP still predicts:
 * distances between L2 misses remain patterned, so it should.
 *
 * Geometry: 32-entry FA L1 + 128/256-entry FA L2, b = 16.
 *
 * Usage: ablation_two_level [--refs N] [--threads N] [--csv out.csv]
 *                           [--json out.json] [--workload spec,...]
 *                           [--mech spec,...] [--list-mechanisms]
 */

#include <cstdio>

#include "bench_common.hh"
#include "tlb/prefetch_buffer.hh"
#include "tlb/two_level.hh"

namespace
{

using namespace tlbpf;
using namespace tlbpf::bench;

struct TwoLevelResult
{
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t pbHits = 0;

    double
    accuracy() const
    {
        return l2Misses ? static_cast<double>(pbHits) /
                              static_cast<double>(l2Misses)
                        : 0.0;
    }
};

TwoLevelResult
run(const WorkloadSpec &workload, const MechanismSpec &spec,
    std::uint32_t l2_entries, std::uint64_t refs)
{
    TwoLevelTlb tlb({32, 0}, {l2_entries, 0});
    PrefetchBuffer buffer(16);
    PageTable pt;
    auto prefetcher = spec.build(pt);

    TwoLevelResult result;
    PrefetchDecision decision;
    auto stream = workload.build(refs);
    MemRef ref;
    while (stream->next(ref)) {
        Vpn vpn = ref.vpn();
        TlbLevelHit hit = tlb.access(vpn);
        if (hit == TlbLevelHit::L1)
            continue;
        ++result.l1Misses;
        if (hit == TlbLevelHit::L2)
            continue;
        ++result.l2Misses;
        pt.lookup(vpn);

        Tick ready = 0;
        bool pb_hit = buffer.hitAndPromote(vpn, ready);
        result.pbHits += pb_hit;
        std::optional<Vpn> evicted = tlb.insert(vpn);

        if (!prefetcher)
            continue;
        decision.clear();
        prefetcher->onMiss(
            TlbMiss{vpn, ref.pc, pb_hit, evicted.value_or(kNoPage)},
            decision);
        for (Vpn target : decision.targets) {
            if (target == vpn || tlb.contains(target) ||
                buffer.contains(target))
                continue;
            buffer.insert(target, 0);
        }
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchOptions(argc, argv);

    std::printf("=== Extension: two-level TLB (32-entry L1 + L2), "
                "prefetcher after the L2 (refs/app = %llu) ===\n",
                static_cast<unsigned long long>(options.refs));

    // The two-level loop is not a registry SweepJob; fan the workload
    // × (mechanism, L2 size) grid out on the thread pool, one slot per
    // cell.  Default cells: dp128 / rp128 / dp256 / rp256; a --mech
    // list replaces the DP/RP pair.  build() throws from the workers;
    // the catch turns that into the clean fatal exit.
    std::vector<WorkloadSpec> workloads =
        selectedWorkloads(options, highMissRateApps());
    requireUnshardedWorkloads(options, workloads, "ablation_two_level");
    std::vector<MechanismSpec> mechs = selectedMechanisms(
        options, std::vector<std::string>{"DP,256,D", "RP"});
    std::vector<std::string> names = mechanismColumnLabels(mechs);
    std::vector<std::pair<std::size_t, std::uint32_t>> cells;
    for (std::uint32_t l2 : {128u, 256u})
        for (std::size_t m = 0; m < mechs.size(); ++m)
            cells.emplace_back(m, l2);
    std::size_t ncells = cells.size();
    std::vector<TwoLevelResult> results(workloads.size() * ncells);
    ThreadPool pool(options.threads);
    try {
        pool.parallelFor(results.size(), [&](std::size_t i) {
            const auto &[m, l2] = cells[i % ncells];
            results[i] = run(workloads[i / ncells], mechs[m], l2,
                             options.refs);
        });
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }

    TableSink out("prediction accuracy on the L2 miss stream");
    std::vector<std::string> header = {"workload"};
    for (const auto &[m, l2] : cells)
        header.push_back("L2=" + std::to_string(l2) + " " + names[m]);
    header.push_back("L2-miss rate (128)");
    out.header(header);
    MultiSink records = recordSinks(options);
    if (!records.empty())
        records.header({"workload", "scheme", "l2_entries", "accuracy",
                        "l2_miss_rate"});
    for (std::size_t a = 0; a < workloads.size(); ++a) {
        const TwoLevelResult &first128 = results[a * ncells];
        std::vector<std::string> row = {workloads[a].label()};
        for (std::size_t c = 0; c < ncells; ++c)
            row.push_back(TablePrinter::num(
                results[a * ncells + c].accuracy(), 3));
        row.push_back(TablePrinter::num(
            static_cast<double>(first128.l2Misses) /
                static_cast<double>(options.refs),
            4));
        out.row(row);
        if (!records.empty())
            for (std::size_t c = 0; c < ncells; ++c)
                records.row(
                    {workloads[a].label(), names[cells[c].first],
                     TablePrinter::num(
                         static_cast<std::uint64_t>(cells[c].second)),
                     TablePrinter::num(
                         results[a * ncells + c].accuracy(), 6),
                     TablePrinter::num(
                         static_cast<double>(
                             results[a * ncells + c].l2Misses) /
                             static_cast<double>(options.refs),
                         6)});
    }
    out.finish();
    records.finish();
    return 0;
}
