/**
 * @file
 * tlbpf-client: submit a sweep to a running tlbpf-server and render
 * the streamed results exactly like the direct CLI path — the table,
 * --csv and --json output go through the same renderAccuracyGrid()
 * the figure benches use, and counters cross the wire as exact
 * integers, so the bytes match a local run of the same grid.
 *
 *   tlbpf-client --workload app:gcc,app:apsi --mech DP,RP,ASQ
 *                [--refs N] [--shards N] [--shard-warmup MODE]
 *                [--single-pass on|off] [--csv F] [--json F]
 *                [--caption TEXT] [--host H] [--port P]
 *                [--connect-retries N]
 *
 * Maintenance verbs (mutually exclusive with a sweep):
 *   --ping       liveness probe (prints "pong")
 *   --stats      print the server's lifetime counters
 *   --shutdown   ask the server to exit
 */

#include <arpa/inet.h>
#include <cstdio>
#include <unistd.h>

#include "bench_common.hh"
#include "service/client.hh"

namespace
{

using namespace tlbpf;

/** Connect, retrying while the server is still coming up. */
ServiceClient
connectOrDie(const std::string &host, std::uint16_t port,
             std::int64_t retries)
{
    for (std::int64_t attempt = 0;; ++attempt) {
        try {
            return ServiceClient(host, port);
        } catch (const TransportError &e) {
            if (attempt >= retries)
                tlbpf_fatal(e.what());
            ::usleep(100 * 1000);
        }
    }
}

void
printStats(const StatsReply &stats)
{
    auto line = [](const char *name, std::uint64_t value) {
        std::printf("%-20s %llu\n", name,
                    static_cast<unsigned long long>(value));
    };
    line("requests", stats.requests);
    line("cells", stats.cells);
    line("cache_hits", stats.cacheHits);
    line("cache_misses", stats.cacheMisses);
    line("cache_evictions", stats.cacheEvictions);
    line("cache_entries", stats.cacheEntries);
    line("cache_capacity", stats.cacheCapacity);
    line("checkpoints_stored", stats.checkpointsStored);
    line("checkpoints_loaded", stats.checkpointsLoaded);
    line("workers", stats.workers);
    line("leases_granted", stats.leasesGranted);
    line("lease_reclaims", stats.leaseReclaims);
    line("cells_dispatched", stats.cellsDispatched);
    line("store_evicted_files", stats.storeEvictedFiles);
    line("store_evicted_bytes", stats.storeEvictedBytes);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"host", "port", "connect-retries", "workload",
                  "app", "mech", "refs", "shards", "shard-warmup",
                  "single-pass", "csv", "json", "caption", "ping",
                  "stats", "shutdown"});

    std::string host = args.get("host", "127.0.0.1");
    sockaddr_in probe{};
    if (::inet_pton(AF_INET, host.c_str(), &probe.sin_addr) != 1)
        tlbpf_fatal("--host must be a dotted-quad IPv4 address, "
                    "got '",
                    host, "'");
    std::uint16_t port = static_cast<std::uint16_t>(
        bench::boundedCountFlag(
            args, "port", 1, 65535,
            static_cast<std::int64_t>(kDefaultServicePort)));
    std::int64_t retries =
        bench::boundedCountFlag(args, "connect-retries", 0, 10000, 50);

    try {
        if (args.has("ping")) {
            connectOrDie(host, port, retries).ping();
            std::printf("pong\n");
            return 0;
        }
        if (args.has("stats")) {
            printStats(connectOrDie(host, port, retries).stats());
            return 0;
        }
        if (args.has("shutdown")) {
            connectOrDie(host, port, retries).shutdown();
            return 0;
        }

        // A sweep: the workload x mechanism grid, like the benches.
        std::vector<std::string> workload_texts =
            parseStringList(args.get("workload"));
        for (const std::string &name :
             parseStringList(args.get("app")))
            workload_texts.push_back("app:" + name);
        if (workload_texts.empty())
            tlbpf_fatal("a sweep needs --workload or --app (or use "
                        "--ping/--stats/--shutdown)");
        if (!args.has("mech"))
            tlbpf_fatal("a sweep needs --mech");

        // Parse locally first: validation errors surface before the
        // request is sent, with the same messages the benches print.
        std::vector<WorkloadSpec> workloads;
        for (const std::string &text : workload_texts)
            workloads.push_back(parseWorkloadOrDie(text));
        std::vector<MechanismSpec> specs =
            parseMechanismListOrDie(args.get("mech"));

        SweepRequest request;
        for (const WorkloadSpec &workload : workloads)
            request.workloads.push_back(workload.label());
        for (const MechanismSpec &spec : specs)
            request.mechanisms.push_back(spec.canonical());
        request.refs =
            static_cast<std::uint64_t>(bench::boundedCountFlag(
                args, "refs", 1,
                std::numeric_limits<std::int64_t>::max(),
                static_cast<std::int64_t>(kDefaultBenchRefs)));
        request.shards = static_cast<std::uint32_t>(
            bench::boundedCountFlag(args, "shards", 1, 4096, 1));
        if (args.has("shard-warmup")) {
            try {
                request.shardWarmup =
                    parseShardWarmup(args.get("shard-warmup"));
            } catch (const std::invalid_argument &e) {
                tlbpf_fatal(e.what());
            }
        }
        if (args.has("single-pass")) {
            std::string value = args.get("single-pass");
            if (value == "on")
                request.passMode = PassMode::SinglePass;
            else if (value == "off")
                request.passMode = PassMode::PerMechanism;
            else
                tlbpf_fatal("--single-pass must be on or off, "
                            "got '",
                            value, "'");
        }

        ServiceClient client = connectOrDie(host, port, retries);
        ServiceClient::SweepOutcome outcome = client.sweep(request);

        bench::BenchOptions render;
        render.csvPath = args.get("csv");
        render.jsonPath = args.get("json");
        MultiSink records = bench::recordSinks(render);
        bench::renderAccuracyGrid(
            args.get("caption", "tlbpf-client sweep"), workloads,
            specs, outcome.results, records);
        std::fprintf(
            stderr,
            "tlbpf-client: %llu cells (%llu from cache, %llu "
            "simulated)\n",
            static_cast<unsigned long long>(outcome.done.cells),
            static_cast<unsigned long long>(outcome.done.cacheHits),
            static_cast<unsigned long long>(outcome.done.simulated));
    } catch (const std::exception &e) {
        tlbpf_fatal(e.what());
    }
    return 0;
}
