/**
 * @file
 * Regenerates paper Figure 8: prediction accuracy of RP, MP, DP and
 * ASP for the MediaBench (20), Etch (5) and Pointer-Intensive (5)
 * applications, same configuration and legend as Figure 7.
 *
 * Each suite's grid runs as one SweepEngine batch (--threads N);
 * note --csv/--json are rewritten per suite, so they capture the
 * last suite printed.
 *
 * Usage: fig8_suites [--refs N] [--apps gsm-enc,...] [--csv out.csv]
 *                    [--json out.json] [--threads N] [--shards N]
 *                    [--workload spec,...]  (an explicit workload list
 *                    replaces every suite's app set)
 *                    [--mech spec,...] [--list-mechanisms]
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;

    BenchOptions options = parseBenchOptions(argc, argv);
    std::printf("=== Figure 8: prediction accuracy, MediaBench / Etch "
                "/ Pointer-Intensive (refs/app = %llu) ===\n",
                static_cast<unsigned long long>(options.refs));
    std::vector<MechanismSpec> specs =
        selectedMechanisms(options, figure7Specs());
    if (!options.workloads.empty()) {
        // An explicit list belongs to no suite; sweep it once.
        printAccuracyFigure("--- explicit workloads ---",
                            options.workloads, specs, options);
        return 0;
    }
    for (const char *suite : {kSuiteMedia, kSuiteEtch, kSuitePtr}) {
        printAccuracyFigure(std::string("--- ") + suite + " ---",
                            selectedWorkloads(options,
                                              appsInSuite(suite)),
                            specs, options);
    }
    return 0;
}
