/**
 * @file
 * Regenerates paper Figure 7: prediction accuracy of RP, MP, DP and
 * ASP for all 26 SPEC CPU2000 applications.
 *
 * Configuration follows Section 3.1: 128-entry fully-associative TLB,
 * 16-entry prefetch buffer, 4 KB pages, s = 2.  The mechanism list and
 * its order match the figure legend: RP; MP with r in {1024,512,256}
 * and D/4/2/F indexing; DP and ASP direct-mapped with r from 1024 down
 * to 32.
 *
 * The 26 × ~21 cell grid is one SweepEngine batch: --threads N runs
 * it on N workers with bit-identical output to --threads 1.
 *
 * Usage: fig7_spec [--refs N] [--apps gzip,mcf,...] [--csv out.csv]
 *                  [--json out.json] [--threads N] [--shards N]
 *                  [--workload spec,...] [--mech spec,...]
 *                  [--list-mechanisms]
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;

    BenchOptions options = parseBenchOptions(argc, argv);
    std::printf("=== Figure 7: prediction accuracy, SPEC CPU2000 "
                "(refs/app = %llu) ===\n",
                static_cast<unsigned long long>(options.refs));
    printAccuracyFigure("128-entry FA TLB, b=16, s=2, 4KB pages",
                        selectedWorkloads(options,
                                          appsInSuite(kSuiteSpec)),
                        selectedMechanisms(options, figure7Specs()),
                        options);
    return 0;
}
