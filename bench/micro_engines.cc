/**
 * @file
 * google-benchmark microbenchmarks of the prediction engines: per-miss
 * train+predict cost of each mechanism and the raw prediction-table
 * primitives.  These back the paper's feasibility argument that the
 * on-chip schemes do trivial work per miss (and in software terms,
 * that the simulator's inner loop is cheap enough for billion-ref
 * sweeps).
 */

#include <benchmark/benchmark.h>

#include "core/distance_predictor.hh"
#include "prefetch/asp.hh"
#include "prefetch/distance.hh"
#include "prefetch/factory.hh"
#include "prefetch/markov.hh"
#include "prefetch/recency.hh"
#include "sim/functional_sim.hh"
#include "util/random.hh"
#include "workload/app_registry.hh"

namespace
{

using namespace tlbpf;

/** Deterministic pseudo-random miss stream shared by the benches. */
std::vector<TlbMiss>
missStream(std::size_t n)
{
    Rng rng(42);
    std::vector<TlbMiss> misses;
    misses.reserve(n);
    Vpn page = 1 << 20;
    for (std::size_t i = 0; i < n; ++i) {
        page += static_cast<Vpn>(rng.nextBelow(32)) - 8;
        misses.push_back(TlbMiss{page, 0x4000 + rng.nextBelow(16) * 4,
                                 false,
                                 i > 128 ? page - 500 : kNoPage});
    }
    return misses;
}

void
benchScheme(benchmark::State &state, Scheme scheme)
{
    PageTable pt;
    PrefetcherSpec spec;
    spec.scheme = scheme;
    spec.table = TableConfig{256, TableAssoc::Direct};
    spec.slots = 2;
    auto prefetcher = makePrefetcher(spec, pt);
    auto misses = missStream(4096);
    // RP requires the missed page to be absent from the stack and the
    // evicted page to be present exactly once, which a canned stream
    // cannot guarantee; drive it via the full simulator loop instead.
    PrefetchDecision decision;
    std::size_t i = 0;
    for (auto _ : state) {
        decision.clear();
        prefetcher->onMiss(misses[i % misses.size()], decision);
        benchmark::DoNotOptimize(decision.targets.data());
        ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(i));
}

void
BM_AspTrainPredict(benchmark::State &state)
{
    benchScheme(state, Scheme::ASP);
}
BENCHMARK(BM_AspTrainPredict);

void
BM_MarkovTrainPredict(benchmark::State &state)
{
    benchScheme(state, Scheme::MP);
}
BENCHMARK(BM_MarkovTrainPredict);

void
BM_DistanceTrainPredict(benchmark::State &state)
{
    benchScheme(state, Scheme::DP);
}
BENCHMARK(BM_DistanceTrainPredict);

void
BM_DistancePredictorCore(benchmark::State &state)
{
    DistancePredictor dp(DistancePredictorConfig{
        TableConfig{static_cast<std::uint32_t>(state.range(0)),
                    TableAssoc::Direct},
        2});
    Rng rng(7);
    std::vector<std::uint64_t> predictions;
    std::uint64_t unit = 1 << 20;
    for (auto _ : state) {
        unit += rng.nextBelow(16);
        predictions.clear();
        dp.observe(unit, predictions);
        benchmark::DoNotOptimize(predictions.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DistancePredictorCore)->Arg(32)->Arg(256)->Arg(1024);

void
BM_FunctionalSimEndToEnd(benchmark::State &state)
{
    // Whole-pipeline throughput: TLB + buffer + DP on a real model.
    for (auto _ : state) {
        state.PauseTiming();
        auto stream = buildApp("swim", 50000);
        state.ResumeTiming();
        PrefetcherSpec spec;
        spec.scheme = Scheme::DP;
        spec.table = TableConfig{256, TableAssoc::Direct};
        SimResult r = simulate(SimConfig{}, spec, *stream);
        benchmark::DoNotOptimize(r.pbHits);
    }
    state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_FunctionalSimEndToEnd)->Unit(benchmark::kMillisecond);

void
BM_RecencyFullLoop(benchmark::State &state)
{
    // RP through the simulator (stack invariants need the real flow).
    for (auto _ : state) {
        state.PauseTiming();
        auto stream = buildApp("gcc", 50000);
        state.ResumeTiming();
        PrefetcherSpec spec;
        spec.scheme = Scheme::RP;
        SimResult r = simulate(SimConfig{}, spec, *stream);
        benchmark::DoNotOptimize(r.pbHits);
    }
    state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_RecencyFullLoop)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
