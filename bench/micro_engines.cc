/**
 * @file
 * google-benchmark microbenchmarks of the prediction engines: per-miss
 * train+predict cost of each mechanism and the raw prediction-table
 * primitives.  These back the paper's feasibility argument that the
 * on-chip schemes do trivial work per miss (and in software terms,
 * that the simulator's inner loop is cheap enough for billion-ref
 * sweeps).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/distance_predictor.hh"
#include "prefetch/mech_spec.hh"
#include "sim/functional_sim.hh"
#include "util/random.hh"
#include "workload/app_registry.hh"

namespace
{

using namespace tlbpf;

/** Deterministic pseudo-random miss stream shared by the benches. */
std::vector<TlbMiss>
missStream(std::size_t n)
{
    Rng rng(42);
    std::vector<TlbMiss> misses;
    misses.reserve(n);
    Vpn page = 1 << 20;
    for (std::size_t i = 0; i < n; ++i) {
        page += static_cast<Vpn>(rng.nextBelow(32)) - 8;
        misses.push_back(TlbMiss{page, 0x4000 + rng.nextBelow(16) * 4,
                                 false,
                                 i > 128 ? page - 500 : kNoPage});
    }
    return misses;
}

void
benchScheme(benchmark::State &state, const std::string &spec_text)
{
    PageTable pt;
    MechanismSpec spec = MechanismSpec::parse(spec_text);
    auto prefetcher = spec.build(pt);
    if (!prefetcher) {
        state.SkipWithError("mechanism 'none' has no engine to time");
        return;
    }
    auto misses = missStream(4096);
    // RP requires the missed page to be absent from the stack and the
    // evicted page to be present exactly once, which a canned stream
    // cannot guarantee; drive it via the full simulator loop instead.
    PrefetchDecision decision;
    std::size_t i = 0;
    for (auto _ : state) {
        decision.clear();
        prefetcher->onMiss(misses[i % misses.size()], decision);
        benchmark::DoNotOptimize(decision.targets.data());
        ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(i));
}

void
BM_AspTrainPredict(benchmark::State &state)
{
    benchScheme(state, "ASP,256,D");
}
BENCHMARK(BM_AspTrainPredict);

void
BM_MarkovTrainPredict(benchmark::State &state)
{
    benchScheme(state, "MP,256,D");
}
BENCHMARK(BM_MarkovTrainPredict);

void
BM_DistanceTrainPredict(benchmark::State &state)
{
    benchScheme(state, "DP,256,D");
}
BENCHMARK(BM_DistanceTrainPredict);

void
BM_DistancePredictorCore(benchmark::State &state)
{
    DistancePredictor dp(DistancePredictorConfig{
        TableConfig{static_cast<std::uint32_t>(state.range(0)),
                    TableAssoc::Direct},
        2});
    Rng rng(7);
    std::vector<std::uint64_t> predictions;
    std::uint64_t unit = 1 << 20;
    for (auto _ : state) {
        unit += rng.nextBelow(16);
        predictions.clear();
        dp.observe(unit, predictions);
        benchmark::DoNotOptimize(predictions.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DistancePredictorCore)->Arg(32)->Arg(256)->Arg(1024);

void
BM_FunctionalSimEndToEnd(benchmark::State &state)
{
    // Whole-pipeline throughput: TLB + buffer + DP on a real model.
    MechanismSpec spec = MechanismSpec::parse("DP,256,D");
    for (auto _ : state) {
        state.PauseTiming();
        auto stream = buildApp("swim", 50000);
        state.ResumeTiming();
        SimResult r = simulate(SimConfig{}, spec, *stream);
        benchmark::DoNotOptimize(r.pbHits);
    }
    state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_FunctionalSimEndToEnd)->Unit(benchmark::kMillisecond);

void
BM_RecencyFullLoop(benchmark::State &state)
{
    // RP through the simulator (stack invariants need the real flow).
    MechanismSpec spec = MechanismSpec::parse("RP");
    for (auto _ : state) {
        state.PauseTiming();
        auto stream = buildApp("gcc", 50000);
        state.ResumeTiming();
        SimResult r = simulate(SimConfig{}, spec, *stream);
        benchmark::DoNotOptimize(r.pbHits);
    }
    state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_RecencyFullLoop)->Unit(benchmark::kMillisecond);

} // namespace

/**
 * Custom main so the registry flags work here too: --list-mechanisms
 * prints the registry and exits; each --mech spec registers an extra
 * train+predict microbenchmark for that mechanism.  Both flags are
 * peeled off before Google Benchmark parses the remainder.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> remaining;
    std::vector<std::string> mech_specs;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-mechanisms") {
            for (const tlbpf::MechanismEntry *entry :
                 tlbpf::MechanismRegistry::instance().entries())
                std::printf("%-8s %s\n", entry->name.c_str(),
                            entry->summary.c_str());
            return 0;
        }
        if (arg == "--mech" && i + 1 < argc) {
            mech_specs.push_back(argv[++i]);
        } else if (arg.rfind("--mech=", 0) == 0) {
            mech_specs.push_back(arg.substr(std::strlen("--mech=")));
        } else {
            remaining.push_back(argv[i]);
        }
    }
    // RP's stack invariants (no double-push, evictions must exist)
    // cannot be met by benchScheme's canned miss stream — drive any
    // RP-containing mechanism through the full simulator loop instead
    // (same treatment as the built-in BM_RecencyFullLoop).
    auto contains_rp = [](const tlbpf::MechanismSpec &spec) {
        auto recurse = [](const tlbpf::MechanismSpec &s,
                          auto &&self) -> bool {
            if (s.name == "rp")
                return true;
            for (const tlbpf::MechanismSpec &child : s.children)
                if (self(child, self))
                    return true;
            return false;
        };
        return recurse(spec, recurse);
    };
    for (const std::string &text : mech_specs) {
        for (const tlbpf::MechanismSpec &spec :
             tlbpf::parseMechanismListOrDie(text)) {
            if (contains_rp(spec)) {
                benchmark::RegisterBenchmark(
                    ("BM_MechFullLoop/" + spec.label()).c_str(),
                    [label = spec.label()](benchmark::State &state) {
                        tlbpf::MechanismSpec mech =
                            tlbpf::MechanismSpec::parse(label);
                        for (auto _ : state) {
                            state.PauseTiming();
                            auto stream = tlbpf::buildApp("gcc", 50000);
                            state.ResumeTiming();
                            tlbpf::SimResult r = tlbpf::simulate(
                                tlbpf::SimConfig{}, mech, *stream);
                            benchmark::DoNotOptimize(r.pbHits);
                        }
                        state.SetItemsProcessed(state.iterations() *
                                                50000);
                    });
                continue;
            }
            benchmark::RegisterBenchmark(
                ("BM_MechTrainPredict/" + spec.label()).c_str(),
                [label = spec.label()](benchmark::State &state) {
                    benchScheme(state, label);
                });
        }
    }
    int remaining_argc = static_cast<int>(remaining.size());
    benchmark::Initialize(&remaining_argc, remaining.data());
    if (benchmark::ReportUnrecognizedArguments(remaining_argc,
                                               remaining.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
