/**
 * @file
 * Regenerates paper Table 1: the hardware-cost comparison of ASP, MP,
 * RP and DP, straight from each mechanism's HardwareProfile, plus the
 * measured RP page-table overhead for a representative run (executed
 * as a one-cell SweepEngine batch).
 *
 * Usage: table1_hardware [--refs N] [--threads N] [--csv out.csv]
 *                        [--json out.json] [--workload spec]
 *                        [--mech spec,...] [--list-mechanisms]
 *                        (--mech replaces the ASP/MP/RP/DP columns —
 *                        e.g. --mech 'hybrid(dp+sp)' prints the
 *                        composite's accumulated hardware cost)
 */

#include <cstdio>

#include "bench_common.hh"
#include "prefetch/distance.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;

    BenchOptions options = parseBenchOptions(argc, argv);

    std::printf("=== Table 1: hardware comparison (s = 2) ===\n");

    std::vector<MechanismSpec> mechs = selectedMechanisms(
        options, std::vector<std::string>{"ASP,256,D", "MP,256,D",
                                          "RP", "DP,256,D"});

    TableSink out;
    MultiSink records = recordSinks(options);
    std::vector<std::string> header = {""};
    std::vector<std::string> record_header = {"property"};
    for (const std::string &name : mechanismColumnLabels(mechs)) {
        header.push_back(name);
        record_header.push_back(name);
    }
    out.header(header);
    if (!records.empty())
        records.header(record_header);

    auto row = [&](const std::string &label, auto field) {
        std::vector<std::string> cells = {label};
        for (const MechanismSpec &spec : mechs)
            cells.push_back(field(spec.hardwareProfile()));
        out.row(cells);
        if (!records.empty())
            records.row(cells);
    };
    row("How many rows?",
        [](const HardwareProfile &p) { return p.rows; });
    row("Contents of a row",
        [](const HardwareProfile &p) { return p.rowContents; });
    row("Where is the table?",
        [](const HardwareProfile &p) { return p.tableLocation; });
    row("Indexed by",
        [](const HardwareProfile &p) { return p.indexedBy; });
    row("Memory ops per miss (excl. prefetch)",
        [](const HardwareProfile &p) {
            return std::to_string(p.memOpsPerMiss);
        });
    row("Prefetches per miss",
        [](const HardwareProfile &p) { return p.maxPrefetches; });
    out.finish();
    records.finish();

    // Quantify RP's in-memory cost and DP's on-chip cost on a real
    // model: RP grows the page table by two words per PTE; DP needs a
    // few hundred bytes of on-chip table.  The representative run
    // defaults to mcf; --workload substitutes any spec.
    MechanismSpec rp_spec = parseMechanismOrDie("rp");
    std::vector<WorkloadSpec> workloads =
        selectedWorkloads(options, std::vector<std::string>{"mcf"});
    if (workloads.empty())
        tlbpf_fatal("no workload selected for the representative run");
    if (workloads.size() > 1)
        tlbpf_fatal("table1_hardware runs one representative cell; "
                    "pass a single --workload spec, got ",
                    workloads.size());
    std::vector<SweepJob> jobs = {
        SweepJob::functional(workloads.front(), rp_spec, options.refs)};
    SimResult run = runBatch(options, jobs)[0].functional;
    std::printf("\nRP page-table overhead on %s (%llu pages touched): "
                "%llu bytes in memory\n",
                workloads.front().label().c_str(),
                static_cast<unsigned long long>(run.footprintPages),
                static_cast<unsigned long long>(run.footprintPages *
                                                16));
    DistancePrefetcher dp(TableConfig{256, TableAssoc::Direct}, 2);
    std::printf("DP on-chip table (r=256, s=2): %llu bytes\n",
                static_cast<unsigned long long>(
                    dp.predictor().storageBits() / 8));
    return 0;
}
