/**
 * @file
 * Regenerates paper Table 1: the hardware-cost comparison of ASP, MP,
 * RP and DP, straight from each mechanism's HardwareProfile, plus the
 * measured RP page-table overhead for a representative run (executed
 * as a one-cell SweepEngine batch).
 *
 * Usage: table1_hardware [--refs N] [--threads N] [--csv out.csv]
 *                        [--json out.json] [--workload spec]
 */

#include <cstdio>

#include "bench_common.hh"
#include "prefetch/asp.hh"
#include "prefetch/distance.hh"
#include "prefetch/markov.hh"
#include "prefetch/recency.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;

    BenchOptions options = parseBenchOptions(argc, argv);

    std::printf("=== Table 1: hardware comparison (s = 2) ===\n");

    PageTable pt;
    TableConfig table{256, TableAssoc::Direct};
    AspPrefetcher asp(table);
    MarkovPrefetcher mp(table, 2);
    RecencyPrefetcher rp(pt);
    DistancePrefetcher dp(table, 2);
    const Prefetcher *schemes[] = {&asp, &mp, &rp, &dp};

    TableSink out;
    MultiSink records = recordSinks(options);
    std::vector<std::string> header = {"", "ASP", "MP", "RP", "DP"};
    out.header(header);
    if (!records.empty())
        records.header({"property", "ASP", "MP", "RP", "DP"});

    auto row = [&](const std::string &label, auto field) {
        std::vector<std::string> cells = {label};
        for (const Prefetcher *scheme : schemes)
            cells.push_back(field(scheme->hardwareProfile()));
        out.row(cells);
        if (!records.empty())
            records.row(cells);
    };
    row("How many rows?",
        [](const HardwareProfile &p) { return p.rows; });
    row("Contents of a row",
        [](const HardwareProfile &p) { return p.rowContents; });
    row("Where is the table?",
        [](const HardwareProfile &p) { return p.tableLocation; });
    row("Indexed by",
        [](const HardwareProfile &p) { return p.indexedBy; });
    row("Memory ops per miss (excl. prefetch)",
        [](const HardwareProfile &p) {
            return std::to_string(p.memOpsPerMiss);
        });
    row("Prefetches per miss",
        [](const HardwareProfile &p) { return p.maxPrefetches; });
    out.finish();
    records.finish();

    // Quantify RP's in-memory cost and DP's on-chip cost on a real
    // model: RP grows the page table by two words per PTE; DP needs a
    // few hundred bytes of on-chip table.  The representative run
    // defaults to mcf; --workload substitutes any spec.
    PrefetcherSpec rp_spec;
    rp_spec.scheme = Scheme::RP;
    std::vector<WorkloadSpec> workloads =
        selectedWorkloads(options, std::vector<std::string>{"mcf"});
    if (workloads.empty())
        tlbpf_fatal("no workload selected for the representative run");
    if (workloads.size() > 1)
        tlbpf_fatal("table1_hardware runs one representative cell; "
                    "pass a single --workload spec, got ",
                    workloads.size());
    std::vector<SweepJob> jobs = {
        SweepJob::functional(workloads.front(), rp_spec, options.refs)};
    SimResult run = runBatch(options, jobs)[0].functional;
    std::printf("\nRP page-table overhead on %s (%llu pages touched): "
                "%llu bytes in memory\n",
                workloads.front().label().c_str(),
                static_cast<unsigned long long>(run.footprintPages),
                static_cast<unsigned long long>(run.footprintPages *
                                                16));
    std::printf("DP on-chip table (r=256, s=2): %llu bytes\n",
                static_cast<unsigned long long>(
                    dp.predictor().storageBits() / 8));
    return 0;
}
