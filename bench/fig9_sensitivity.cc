/**
 * @file
 * Regenerates paper Figure 9: sensitivity of DP to the hardware
 * parameters, on the 8 applications with the highest TLB miss rates
 * (vpr, mcf, twolf, galgel, ammp, lucas, apsi, adpcm).
 *
 *  Panel r:   prediction-table size (32..1024) and indexing (D/2/4/F)
 *  Panel s:   prediction slots per row (2, 4, 6)
 *  Panel b:   prefetch-buffer entries (16, 32, 64)
 *  Panel tlb: TLB size (64, 128, 256 entries, fully associative)
 *
 * The paper's finding: DP is largely insensitive to all of these; a
 * small direct-mapped 32-256 entry table suffices.
 *
 * Usage: fig9_sensitivity [--panel r|s|b|tlb|all] [--refs N]
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace tlbpf;
using namespace tlbpf::bench;

PrefetcherSpec
dpSpec(std::uint32_t rows, TableAssoc assoc, std::uint32_t slots)
{
    PrefetcherSpec spec;
    spec.scheme = Scheme::DP;
    spec.table = TableConfig{rows, assoc};
    spec.slots = slots;
    return spec;
}

void
panelTableGeometry(const BenchOptions &options)
{
    // Legend order from the paper: 1024,D / 1024,4 / 1024,2 / 512,D /
    // 512,4 / 256,D / 256,4 / 256,F / 128,D / 128,F / 64,D / 64,F /
    // 32,D / 32,F.
    const std::pair<std::uint32_t, TableAssoc> configs[] = {
        {1024, TableAssoc::Direct}, {1024, TableAssoc::FourWay},
        {1024, TableAssoc::TwoWay}, {512, TableAssoc::Direct},
        {512, TableAssoc::FourWay}, {256, TableAssoc::Direct},
        {256, TableAssoc::FourWay}, {256, TableAssoc::Full},
        {128, TableAssoc::Direct},  {128, TableAssoc::Full},
        {64, TableAssoc::Direct},   {64, TableAssoc::Full},
        {32, TableAssoc::Direct},   {32, TableAssoc::Full},
    };
    std::vector<std::string> header = {"app"};
    for (const auto &[rows, assoc] : configs)
        header.push_back("DP," + std::to_string(rows) + "," +
                         assocLabel(assoc));
    TablePrinter out(std::move(header));
    out.caption("--- Figure 9 panel: table size r and indexing ---");
    for (const std::string &app : highMissRateApps()) {
        std::vector<std::string> row = {app};
        for (const auto &[rows, assoc] : configs) {
            SimResult r = runFunctional(app, dpSpec(rows, assoc, 2),
                                        options.refs);
            row.push_back(TablePrinter::num(r.accuracy(), 3));
        }
        out.addRow(std::move(row));
        std::fflush(stdout);
    }
    out.print();
}

void
panelSlots(const BenchOptions &options)
{
    TablePrinter out({"app", "s = 2", "s = 4", "s = 6"});
    out.caption("--- Figure 9 panel: prediction slots s ---");
    for (const std::string &app : highMissRateApps()) {
        std::vector<std::string> row = {app};
        for (std::uint32_t s : {2u, 4u, 6u}) {
            SimResult r = runFunctional(
                app, dpSpec(256, TableAssoc::Direct, s), options.refs);
            row.push_back(TablePrinter::num(r.accuracy(), 3));
        }
        out.addRow(std::move(row));
        std::fflush(stdout);
    }
    out.print();
}

void
panelBufferSize(const BenchOptions &options)
{
    TablePrinter out({"app", "b = 16", "b = 32", "b = 64"});
    out.caption("--- Figure 9 panel: prefetch buffer size b ---");
    for (const std::string &app : highMissRateApps()) {
        std::vector<std::string> row = {app};
        for (std::uint32_t b : {16u, 32u, 64u}) {
            SimConfig config;
            config.pbEntries = b;
            SimResult r = runFunctional(
                app, dpSpec(256, TableAssoc::Direct, 2), options.refs,
                config);
            row.push_back(TablePrinter::num(r.accuracy(), 3));
        }
        out.addRow(std::move(row));
        std::fflush(stdout);
    }
    out.print();
}

void
panelTlbSize(const BenchOptions &options)
{
    TablePrinter out({"app", "64-entry TLB", "128-entry TLB",
                      "256-entry TLB"});
    out.caption("--- Figure 9 panel: TLB size ---");
    for (const std::string &app : highMissRateApps()) {
        std::vector<std::string> row = {app};
        for (std::uint32_t entries : {64u, 128u, 256u}) {
            SimConfig config;
            config.tlb = TlbConfig{entries, 0};
            SimResult r = runFunctional(
                app, dpSpec(256, TableAssoc::Direct, 2), options.refs,
                config);
            row.push_back(TablePrinter::num(r.accuracy(), 3));
        }
        out.addRow(std::move(row));
        std::fflush(stdout);
    }
    out.print();
}

void
panelPageSize(const BenchOptions &options)
{
    // The companion technical report [19] also sweeps the page size;
    // larger pages merge neighbouring 4KB-model pages, cutting the
    // miss rate while DP keeps predicting.
    TablePrinter out({"app", "4KB pages", "8KB pages", "16KB pages"});
    out.caption("--- sensitivity panel: page size (tech-report) ---");
    for (const std::string &app : highMissRateApps()) {
        std::vector<std::string> row = {app};
        for (std::uint64_t bytes : {4096u, 8192u, 16384u}) {
            SimConfig config;
            config.pageBytes = bytes;
            SimResult r = runFunctional(
                app, dpSpec(256, TableAssoc::Direct, 2), options.refs,
                config);
            row.push_back(TablePrinter::num(r.accuracy(), 3));
        }
        out.addRow(std::move(row));
        std::fflush(stdout);
    }
    out.print();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchOptions(argc, argv, {"panel"});
    CliArgs args(argc, argv, {"refs", "csv", "apps", "panel"});
    std::string panel = args.get("panel", "all");

    std::printf("=== Figure 9: DP sensitivity analysis (refs/app = "
                "%llu) ===\n",
                static_cast<unsigned long long>(options.refs));
    if (panel == "r" || panel == "all")
        panelTableGeometry(options);
    if (panel == "s" || panel == "all")
        panelSlots(options);
    if (panel == "b" || panel == "all")
        panelBufferSize(options);
    if (panel == "tlb" || panel == "all")
        panelTlbSize(options);
    if (panel == "page" || panel == "all")
        panelPageSize(options);
    return 0;
}
