/**
 * @file
 * Regenerates paper Figure 9: sensitivity of DP to the hardware
 * parameters, on the 8 applications with the highest TLB miss rates
 * (vpr, mcf, twolf, galgel, ammp, lucas, apsi, adpcm).
 *
 *  Panel r:   prediction-table size (32..1024) and indexing (D/2/4/F)
 *  Panel s:   prediction slots per row (2, 4, 6)
 *  Panel b:   prefetch-buffer entries (16, 32, 64)
 *  Panel tlb: TLB size (64, 128, 256 entries, fully associative)
 *
 * The paper's finding: DP is largely insensitive to all of these; a
 * small direct-mapped 32-256 entry table suffices.
 *
 * Every panel is one SweepEngine batch over its app × config grid,
 * run on --threads workers with results rendered in submission order.
 *
 * Usage: fig9_sensitivity [--panel r|s|b|tlb|page|all] [--refs N]
 *                         [--threads N] [--shards N] [--csv out.csv]
 *                         [--json out.json] [--workload spec,...]
 *                         [--mech spec] [--list-mechanisms]
 *
 * --mech substitutes the base mechanism whose sensitivity is swept
 * (default dp).  The r/s panels re-parameterise it by name, so they
 * need a mechanism with rows/assoc/slots parameters; anything else
 * fails with the registry's actionable message.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

using namespace tlbpf;
using namespace tlbpf::bench;

/** The base mechanism the panels sweep (default: the paper's DP). */
MechanismSpec baseMech = MechanismSpec::parse("dp");

/**
 * The base mechanism with the swept parameters overridden in place —
 * every parameter not named here keeps the --mech base's value, so
 * e.g. --mech 'dp(slots=4)' sweeps the r panel at slots=4 throughout.
 * Values must be canonical tokens (numbers, dm/2w/4w/fa).
 */
MechanismSpec
derived(
    std::initializer_list<std::pair<const char *, std::string>>
        overrides)
{
    MechanismSpec spec = baseMech;
    for (const auto &[key, value] : overrides) {
        bool found = false;
        for (auto &[k, v] : spec.params) {
            if (k == key) {
                v = value;
                found = true;
            }
        }
        if (!found)
            tlbpf_fatal("mechanism '", baseMech.canonical(),
                        "' has no '", key,
                        "' parameter to sweep; this panel needs a "
                        "table mechanism (e.g. --mech dp)");
    }
    try {
        spec.validate();
    } catch (const std::invalid_argument &e) {
        tlbpf_fatal(e.what());
    }
    return spec;
}

/** Canonical assoc token for a TableAssoc (derived() override form). */
std::string
assocToken(TableAssoc assoc)
{
    switch (assoc) {
      case TableAssoc::Direct:
        return "dm";
      case TableAssoc::TwoWay:
        return "2w";
      case TableAssoc::FourWay:
        return "4w";
      case TableAssoc::Full:
        return "fa";
    }
    return "dm";
}

/** One Figure-9 panel column: a labelled (spec, geometry) variant. */
struct PanelColumn
{
    std::string label;
    MechanismSpec spec;
    SimConfig config;
};

/**
 * Run the app × column grid as one batch and render the accuracy
 * table, plus long-format --csv/--json records tagged with the panel
 * name.  Note --csv/--json are rewritten per panel; use --panel to
 * capture one.
 */
void
runPanel(const std::string &caption, const std::string &panel,
         const std::vector<PanelColumn> &columns,
         const BenchOptions &options)
{
    std::vector<WorkloadSpec> workloads =
        selectedWorkloads(options, highMissRateApps());

    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size() * columns.size());
    for (const WorkloadSpec &workload : workloads)
        for (const PanelColumn &col : columns)
            jobs.push_back(SweepJob::functional(workload, col.spec,
                                                options.refs,
                                                col.config));
    std::vector<SweepResult> results = runBatch(options, jobs);

    std::vector<std::string> header = {"workload"};
    for (const PanelColumn &col : columns)
        header.push_back(col.label);
    TableSink table(caption);
    table.header(header);

    MultiSink records = recordSinks(options);
    if (!records.empty())
        records.header({"panel", "workload", "column", "accuracy"});

    std::size_t cell = 0;
    for (const WorkloadSpec &workload : workloads) {
        std::vector<std::string> row = {workload.label()};
        for (const PanelColumn &col : columns) {
            const SweepResult &r = results[cell++];
            row.push_back(TablePrinter::num(r.accuracy(), 3));
            if (!records.empty())
                records.row({panel, r.workload, col.label,
                             TablePrinter::num(r.accuracy(), 6)});
        }
        table.row(row);
    }
    table.finish();
    records.finish();
}

std::vector<PanelColumn>
tableGeometryColumns()
{
    // Legend order from the paper: 1024,D / 1024,4 / 1024,2 / 512,D /
    // 512,4 / 256,D / 256,4 / 256,F / 128,D / 128,F / 64,D / 64,F /
    // 32,D / 32,F.
    const std::pair<std::uint32_t, TableAssoc> configs[] = {
        {1024, TableAssoc::Direct}, {1024, TableAssoc::FourWay},
        {1024, TableAssoc::TwoWay}, {512, TableAssoc::Direct},
        {512, TableAssoc::FourWay}, {256, TableAssoc::Direct},
        {256, TableAssoc::FourWay}, {256, TableAssoc::Full},
        {128, TableAssoc::Direct},  {128, TableAssoc::Full},
        {64, TableAssoc::Direct},   {64, TableAssoc::Full},
        {32, TableAssoc::Direct},   {32, TableAssoc::Full},
    };
    std::vector<PanelColumn> columns;
    for (const auto &[rows, assoc] : configs) {
        MechanismSpec spec =
            derived({{"rows", std::to_string(rows)},
                     {"assoc", assocToken(assoc)}});
        columns.push_back({spec.label(), spec, SimConfig{}});
    }
    return columns;
}

std::vector<PanelColumn>
slotColumns()
{
    std::vector<PanelColumn> columns;
    for (std::uint32_t s : {2u, 4u, 6u})
        columns.push_back({"s = " + std::to_string(s),
                           derived({{"slots", std::to_string(s)}}),
                           SimConfig{}});
    return columns;
}

std::vector<PanelColumn>
bufferColumns()
{
    std::vector<PanelColumn> columns;
    for (std::uint32_t b : {16u, 32u, 64u}) {
        SimConfig config;
        config.pbEntries = b;
        columns.push_back({"b = " + std::to_string(b), baseMech,
                           config});
    }
    return columns;
}

std::vector<PanelColumn>
tlbColumns()
{
    std::vector<PanelColumn> columns;
    for (std::uint32_t entries : {64u, 128u, 256u}) {
        SimConfig config;
        config.tlb = TlbConfig{entries, 0};
        columns.push_back({std::to_string(entries) + "-entry TLB",
                           baseMech, config});
    }
    return columns;
}

std::vector<PanelColumn>
pageColumns()
{
    // The companion technical report [19] also sweeps the page size;
    // larger pages merge neighbouring 4KB-model pages, cutting the
    // miss rate while DP keeps predicting.
    std::vector<PanelColumn> columns;
    for (std::uint64_t bytes : {4096u, 8192u, 16384u}) {
        SimConfig config;
        config.pageBytes = bytes;
        columns.push_back({std::to_string(bytes / 1024) + "KB pages",
                           baseMech, config});
    }
    return columns;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchOptions(argc, argv, {"panel"});
    std::vector<std::string> known = standardBenchFlags();
    known.push_back("panel");
    CliArgs args(argc, argv, known);
    std::string panel = args.get("panel", "all");
    if (options.mechs.size() > 1)
        tlbpf_fatal("fig9_sensitivity sweeps one base mechanism; "
                    "pass a single --mech spec, got ",
                    options.mechs.size());
    if (!options.mechs.empty())
        baseMech = options.mechs.front();

    std::printf("=== Figure 9: DP sensitivity analysis (refs/app = "
                "%llu) ===\n",
                static_cast<unsigned long long>(options.refs));
    if (panel == "r" || panel == "all")
        runPanel("--- Figure 9 panel: table size r and indexing ---",
                 "r", tableGeometryColumns(), options);
    if (panel == "s" || panel == "all")
        runPanel("--- Figure 9 panel: prediction slots s ---", "s",
                 slotColumns(), options);
    if (panel == "b" || panel == "all")
        runPanel("--- Figure 9 panel: prefetch buffer size b ---", "b",
                 bufferColumns(), options);
    if (panel == "tlb" || panel == "all")
        runPanel("--- Figure 9 panel: TLB size ---", "tlb",
                 tlbColumns(), options);
    if (panel == "page" || panel == "all")
        runPanel("--- sensitivity panel: page size (tech-report) ---",
                 "page", pageColumns(), options);
    return 0;
}
