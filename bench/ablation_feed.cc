/**
 * @file
 * Ablation A1: miss-stream-only training (the paper's placement, after
 * the TLB) versus full-reference-stream training, for DP, ASP and MP.
 *
 * The paper remarks (Section 3.2) that "examining only the miss stream
 * from the TLB, and not the actual reference stream ... does not seem
 * to penalize DP in any significant way."  This bench quantifies the
 * claim on the high-miss-rate applications.
 *
 * Usage: ablation_feed [--refs N]
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;

    BenchOptions options = parseBenchOptions(argc, argv);

    std::printf("=== Ablation A1: miss-stream vs reference-stream "
                "training (refs/app = %llu) ===\n",
                static_cast<unsigned long long>(options.refs));

    TablePrinter out({"app", "DP miss", "DP full", "ASP miss",
                      "ASP full", "MP miss", "MP full"});
    out.caption("prediction accuracy under each training feed");

    const Scheme schemes[] = {Scheme::DP, Scheme::ASP, Scheme::MP};
    for (const std::string &app : highMissRateApps()) {
        std::vector<std::string> row = {app};
        for (Scheme scheme : schemes) {
            PrefetcherSpec spec;
            spec.scheme = scheme;
            spec.table = TableConfig{256, TableAssoc::Direct};
            spec.slots = 2;
            SimConfig miss_only;
            SimConfig full_feed;
            full_feed.trainOnAllRefs = true;
            SimResult a = runFunctional(app, spec, options.refs,
                                        miss_only);
            SimResult b = runFunctional(app, spec, options.refs,
                                        full_feed);
            row.push_back(TablePrinter::num(a.accuracy(), 3));
            row.push_back(TablePrinter::num(b.accuracy(), 3));
        }
        out.addRow(std::move(row));
        std::fflush(stdout);
    }
    out.print();
    std::printf("(paper expectation: the miss-stream columns are not "
                "significantly below the full-stream ones for DP)\n");
    return 0;
}
