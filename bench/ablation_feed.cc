/**
 * @file
 * Ablation A1: miss-stream-only training (the paper's placement, after
 * the TLB) versus full-reference-stream training, for DP, ASP and MP.
 *
 * The paper remarks (Section 3.2) that "examining only the miss stream
 * from the TLB, and not the actual reference stream ... does not seem
 * to penalize DP in any significant way."  This bench quantifies the
 * claim on the high-miss-rate applications.
 *
 * The app × scheme × feed grid runs as one SweepEngine batch.
 *
 * Usage: ablation_feed [--refs N] [--threads N] [--csv out.csv]
 *                      [--json out.json] [--workload spec,...]
 *                      [--mech spec,...] [--list-mechanisms]
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tlbpf;
    using namespace tlbpf::bench;

    BenchOptions options = parseBenchOptions(argc, argv);

    std::printf("=== Ablation A1: miss-stream vs reference-stream "
                "training (refs/app = %llu) ===\n",
                static_cast<unsigned long long>(options.refs));

    std::vector<MechanismSpec> mechs = selectedMechanisms(
        options,
        std::vector<std::string>{"DP,256,D", "ASP,256,D", "MP,256,D"});
    std::vector<WorkloadSpec> workloads =
        selectedWorkloads(options, highMissRateApps());

    // Workload-major, then mechanism, then (miss-only, full-feed),
    // matching the table's column order.
    std::vector<SweepJob> jobs;
    for (const WorkloadSpec &workload : workloads) {
        for (const MechanismSpec &spec : mechs) {
            SimConfig miss_only;
            SimConfig full_feed;
            full_feed.trainOnAllRefs = true;
            jobs.push_back(SweepJob::functional(workload, spec,
                                                options.refs,
                                                miss_only));
            jobs.push_back(SweepJob::functional(workload, spec,
                                                options.refs,
                                                full_feed));
        }
    }
    std::vector<SweepResult> results = runBatch(options, jobs);

    std::vector<std::string> names = mechanismColumnLabels(mechs);
    TableSink out("prediction accuracy under each training feed");
    std::vector<std::string> header = {"workload"};
    for (const std::string &name : names) {
        header.push_back(name + " miss");
        header.push_back(name + " full");
    }
    out.header(header);
    MultiSink records = recordSinks(options);
    if (!records.empty())
        records.header({"workload", "scheme", "feed", "accuracy"});

    std::size_t cell = 0;
    for (const WorkloadSpec &workload : workloads) {
        std::vector<std::string> row = {workload.label()};
        for (std::size_t m = 0; m < mechs.size(); ++m) {
            const SweepResult &miss = results[cell++];
            const SweepResult &full = results[cell++];
            row.push_back(TablePrinter::num(miss.accuracy(), 3));
            row.push_back(TablePrinter::num(full.accuracy(), 3));
            if (!records.empty()) {
                records.row({miss.workload, names[m], "miss",
                             TablePrinter::num(miss.accuracy(), 6)});
                records.row({full.workload, names[m], "full",
                             TablePrinter::num(full.accuracy(), 6)});
            }
        }
        out.row(row);
    }
    out.finish();
    records.finish();
    std::printf("(paper expectation: the miss-stream columns are not "
                "significantly below the full-stream ones for DP)\n");
    return 0;
}
